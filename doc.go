// Package medea is the root of a from-scratch Go reproduction of
// "MEDEA: a Hybrid Shared-memory/Message-passing Multiprocessor NoC-based
// Architecture" (Tota, Casu, Ruo Roch, Rostagno, Zamboni — DATE 2010).
//
// The simulator, workloads and design-space exploration live under
// internal/ (see DESIGN.md for the system inventory); runnable entry
// points are in cmd/ and examples/; bench_test.go regenerates every table
// and figure of the paper's evaluation.
package medea
