package medea_test

import (
	"context"
	"os"
	"testing"

	"repro/internal/resultcache"
	"repro/internal/scenario"
	"repro/internal/shard"
)

// TestMain doubles as the shard-worker entrypoint for
// BenchmarkShardedSweep: the coordinator re-execs this test binary with
// MEDEA_SHARD_WORKER=1 and the child serves the frame protocol on stdio.
func TestMain(m *testing.M) {
	if os.Getenv("MEDEA_SHARD_WORKER") == "1" {
		cache := resultcache.New(resultcache.NewMemoryStore(0))
		if err := shard.ServeWorker(context.Background(), os.Stdin, os.Stdout, cache); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// BenchmarkShardedSweep times the distributed path of the reference
// sweep: fig8-quick fanned out over 4 worker processes, merged and
// root-verified. Compare against BenchmarkFig8 (the single-process cost)
// to read the fan-out speedup; BENCH_<date>.json snapshots track the
// same pair as the "sharded" entry.
func BenchmarkShardedSweep(b *testing.B) {
	exe, err := os.Executable()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s, err := scenario.Load("examples/scenarios/fig8-quick.json")
		if err != nil {
			b.Fatal(err)
		}
		co := &shard.Coordinator{
			NewWorker: shard.ProcFactory(shard.ProcSpec{
				Command: []string{exe},
				Env:     []string{"MEDEA_SHARD_WORKER=1"},
			}),
			Shards:  4,
			Workers: 4,
		}
		results, _, err := co.Run(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(results)), "points")
			b.ReportMetric(4, "workers")
		}
	}
}
