// Benchmarks regenerating every table and figure of the paper's
// evaluation section. Each Benchmark corresponds to one experiment in
// DESIGN.md's index; the rendered tables land in the benchmark log (-v),
// and key scalar results are reported as custom metrics so -benchmem runs
// record them. Absolute cycle counts are not comparable to the authors'
// Xtensa testbed; the shapes are the reproduction target (DESIGN.md's
// experiment index records what must hold).
//
// The benchmarks use the Quick fidelity grid; run cmd/medea-experiments
// -full for the complete 168-point sweeps.
package medea_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bridge"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/jacobi"
	"repro/internal/matmul"
	"repro/internal/noc"
	"repro/internal/pe"
	"repro/internal/resultcache"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/syncbench"
	"repro/internal/trace"
)

// BenchmarkFig6 regenerates Figure 6: execution time of one 60x60 Jacobi
// iteration across core counts, cache sizes and write policies.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, pts, err := dse.Fig6(dse.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table)
			reportSpread(b, pts)
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: the Pareto/kill-rule speedup-vs-area
// curve for the 60x60 array.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, pts, err := dse.Fig6(dse.Quick)
		if err != nil {
			b.Fatal(err)
		}
		table := dse.Fig7(pts)
		if i == 0 {
			b.Log("\n" + table)
			front := dse.ParetoFront(pts)
			knee := dse.KillRuleKnee(front)
			b.ReportMetric(front[knee].Speedup, "optimal-speedup")
			b.ReportMetric(front[knee].AreaMM2, "optimal-mm2")
		}
	}
}

// BenchmarkFig8 regenerates Figure 8: the 30x30 array, write-back only.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, pts, err := dse.Fig8(dse.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table)
			reportSpread(b, pts)
		}
	}
}

// BenchmarkFig9 regenerates Figure 9: speedup vs area for the 30x30 array.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, pts, err := dse.Fig8(dse.Quick)
		if err != nil {
			b.Fatal(err)
		}
		table := dse.Fig9(pts)
		if i == 0 {
			b.Log("\n" + table)
		}
	}
}

// BenchmarkHybridVsSharedMemory regenerates the paper's headline prose
// claim (T-1): hybrid vs pure shared memory, 2x below the cache knee
// growing to >5x at 10 cores / 16 kB.
func BenchmarkHybridVsSharedMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, rows, err := dse.HybridComparison(dse.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table)
			last := rows[len(rows)-1]
			b.ReportMetric(last.FullVsSM, "full-vs-sm-at-max-cores")
			b.ReportMetric(rows[0].FullVsSM, "full-vs-sm-at-2-cores")
		}
	}
}

// BenchmarkSyncVsFullMessagePassing regenerates T-2: in the miss-dominated
// regime the sync-only hybrid tracks the full hybrid within 2-20%.
func BenchmarkSyncVsFullMessagePassing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, rows, err := dse.SmallCacheComparison(dse.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table)
			b.ReportMetric(rows[len(rows)-1].FullVsSync, "full-vs-sync")
		}
	}
}

// BenchmarkSimulatorThroughput documents the simulation speed (the paper's
// T-3: their SystemC model ran 15x faster than HDL-ISS, enabling 168
// configurations per day; this records our cycles/second).
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles int64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(8, 16, cache.WriteBack)
		res, err := jacobi.Run(cfg, jacobi.Spec{N: 60, Warmup: 1, Measured: 1}, jacobi.HybridFull)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.TotalCycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkDeflectionVsXY is the ablation A-1: deflection routing against
// a buffered XY router on adversarial transpose traffic.
func BenchmarkDeflectionVsXY(b *testing.B) {
	topo, _ := noc.NewTopology(4, 4)
	const rate, cycles = 0.4, 5000
	b.Run("deflection", func(b *testing.B) {
		var lat float64
		for i := 0; i < b.N; i++ {
			e := sim.NewEngine()
			n := noc.NewNetwork(e, topo)
			for id := 0; id < topo.NumNodes(); id++ {
				tn := noc.NewTrafficNode(id, topo, noc.TrafficConfig{Pattern: noc.Transpose, Rate: rate}, 1)
				n.Attach(id, tn)
				e.Register(sim.PhaseNode, tn)
			}
			e.Run(cycles)
			lat = n.Stats.Latency.Mean()
		}
		b.ReportMetric(lat, "flit-latency-cycles")
		b.ReportMetric(0, "buffer-flits")
	})
	b.Run("xy-buffered", func(b *testing.B) {
		var lat float64
		var peak int
		for i := 0; i < b.N; i++ {
			e := sim.NewEngine()
			n := noc.NewXYNetwork(e, topo)
			for id := 0; id < topo.NumNodes(); id++ {
				tn := noc.NewTrafficNode(id, topo, noc.TrafficConfig{Pattern: noc.Transpose, Rate: rate}, 1)
				n.Attach(id, tn)
				e.Register(sim.PhaseNode, tn)
			}
			e.Run(cycles)
			lat = n.Stats.Latency.Mean()
			peak = n.PeakBuffer()
		}
		b.ReportMetric(lat, "flit-latency-cycles")
		b.ReportMetric(float64(peak), "buffer-flits")
	})
}

// BenchmarkRouterAblation is the experiment R-1: all four routers under
// identical adversarial transpose traffic, reporting per-router saturation
// throughput and peak buffer occupancy. The ordering assertions live in
// internal/scenario.TestRouterAblationOrdering; this benchmark records the
// numbers behind them.
func BenchmarkRouterAblation(b *testing.B) {
	o := dse.DefaultRouterAblationOptions()
	for i := 0; i < b.N; i++ {
		points, err := dse.RouterAblation(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + dse.RouterAblationTable(o, points))
			sat := dse.SaturationThroughput(points)
			peak := dse.PeakBufferByRouter(points)
			for _, kind := range noc.AllRouters() {
				b.ReportMetric(sat[kind], kind.String()+"-sat-throughput")
				b.ReportMetric(float64(peak[kind]), kind.String()+"-peak-buffer")
			}
		}
	}
}

// BenchmarkTopologyAblation is the experiment T-3: the paper's deflection
// router under identical uniform traffic on all three fabrics serving the
// same endpoint grid, reporting per-fabric saturation throughput and
// worst deflection cost. The ordering assertions live in
// internal/scenario.TestTopologyAblationOrdering; this benchmark records
// the numbers behind them.
func BenchmarkTopologyAblation(b *testing.B) {
	o := dse.DefaultTopologyAblationOptions()
	for i := 0; i < b.N; i++ {
		points, err := dse.TopologyAblation(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + dse.TopologyAblationTable(o, points))
			sat := dse.SaturationThroughputByTopology(points)
			defl := dse.PeakDeflectionRateByTopology(points)
			for _, kind := range noc.AllTopologies() {
				b.ReportMetric(sat[kind], kind.String()+"-sat-throughput")
				b.ReportMetric(defl[kind], kind.String()+"-peak-defl-rate")
			}
		}
	}
}

// BenchmarkKernelAblation is the experiment K-1: every compute kernel
// (jacobi, matmul, syncbench) in both of the paper's programming models
// across core counts, reporting the per-kernel peak message-passing
// speedup and the best shared-memory-over-message cycle ratio. The shape
// assertions live in internal/scenario.TestKernelAblationGolden and
// dse.TestKernelAblationShapes; this benchmark records the numbers behind
// them.
func BenchmarkKernelAblation(b *testing.B) {
	o := dse.DefaultKernelAblationOptions()
	for i := 0; i < b.N; i++ {
		points, err := dse.KernelAblation(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + dse.KernelAblationTable(o, points))
			adv := dse.MessagingAdvantageByKernel(points)
			peak := dse.PeakSpeedupByKernel(points)
			for _, kind := range dse.AllKernels() {
				b.ReportMetric(peak[kind], kind.String()+"-peak-speedup")
				b.ReportMetric(adv[kind], kind.String()+"-sm-over-mp")
			}
		}
	}
}

// BenchmarkArbiterVariants is the ablation A-2: the three NoC-access
// arbiter configurations of Section II-B under the Jacobi workload.
func BenchmarkArbiterVariants(b *testing.B) {
	for _, mode := range []bridge.ArbiterMode{bridge.ArbMux, bridge.ArbSingleFIFO, bridge.ArbDualFIFO} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var cyc int64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(6, 8, cache.WriteBack)
				cfg.Arbiter = mode
				res, err := jacobi.Run(cfg, jacobi.Spec{N: 30, Warmup: 1, Measured: 1}, jacobi.HybridFull)
				if err != nil {
					b.Fatal(err)
				}
				cyc = res.CyclesPerIteration
			}
			b.ReportMetric(float64(cyc), "cycles/iter")
		})
	}
}

// BenchmarkCostModelAblation compares the default core (Multiply High
// option, 26-cycle multiplies) with the 60-cycle-multiply configuration
// the paper mentions as the cheaper alternative.
func BenchmarkCostModelAblation(b *testing.B) {
	run := func(b *testing.B, mulHigh bool) {
		var cyc int64
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig(4, 16, cache.WriteBack)
			if !mulHigh {
				cfg.Cost = pe.MulHighOff()
			}
			res, err := jacobi.Run(cfg, jacobi.Spec{N: 30, Warmup: 1, Measured: 1}, jacobi.HybridFull)
			if err != nil {
				b.Fatal(err)
			}
			cyc = res.CyclesPerIteration
		}
		b.ReportMetric(float64(cyc), "cycles/iter")
	}
	b.Run("mul-high-26cy", func(b *testing.B) { run(b, true) })
	b.Run("no-mul-high-60cy", func(b *testing.B) { run(b, false) })
}

// BenchmarkMatMulBroadcast exercises the future-work kernel (matrix
// multiply): distributing the shared matrix over the message path versus
// every core reading it through the memory node.
func BenchmarkMatMulBroadcast(b *testing.B) {
	run := func(b *testing.B, v matmul.Variant) {
		var total, transfer int64
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig(8, 16, cache.WriteBack)
			res, err := matmul.Run(cfg, matmul.Spec{N: 24}, v)
			if err != nil {
				b.Fatal(err)
			}
			total, transfer = res.TotalCycles, res.TransferCycles
		}
		b.ReportMetric(float64(total), "total-cycles")
		b.ReportMetric(float64(transfer), "transfer-cycles")
	}
	b.Run("message-broadcast", func(b *testing.B) { run(b, matmul.HybridFull) })
	b.Run("shared-memory-reads", func(b *testing.B) { run(b, matmul.PureSM) })
}

// BenchmarkMPMMUCacheSize sweeps the memory node's local cache (the
// paper's stated MPMMU-optimization future work): how much the single
// shared cache in front of DDR matters for the pure shared-memory model.
func BenchmarkMPMMUCacheSize(b *testing.B) {
	for _, kb := range []int{4, 32, 128} {
		kb := kb
		b.Run(byteSizeName(kb), func(b *testing.B) {
			var cyc int64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(6, 16, cache.WriteBack)
				cfg.MPMMUCacheKB = kb
				res, err := jacobi.Run(cfg, jacobi.Spec{N: 60, Warmup: 1, Measured: 1}, jacobi.PureSM)
				if err != nil {
					b.Fatal(err)
				}
				cyc = res.CyclesPerIteration
			}
			b.ReportMetric(float64(cyc), "cycles/iter")
		})
	}
}

func byteSizeName(kb int) string { return fmt.Sprintf("%dkB", kb) }

// BenchmarkAssociativity explores L1 set associativity (the paper does
// not state the Xtensa configuration's; the calibrated experiments use
// direct-mapped): 2-way LRU removes conflict misses at the same capacity.
func BenchmarkAssociativity(b *testing.B) {
	for _, ways := range []int{1, 2, 4} {
		ways := ways
		b.Run(fmt.Sprintf("%d-way", ways), func(b *testing.B) {
			var cyc int64
			var miss float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(6, 8, cache.WriteBack)
				cfg.CacheWays = ways
				res, err := jacobi.Run(cfg, jacobi.Spec{N: 60, Warmup: 1, Measured: 1}, jacobi.HybridFull)
				if err != nil {
					b.Fatal(err)
				}
				cyc, miss = res.CyclesPerIteration, res.MissRate
			}
			b.ReportMetric(float64(cyc), "cycles/iter")
			b.ReportMetric(100*miss, "miss-%")
		})
	}
}

// BenchmarkBarrierLatency measures the synchronization primitives in
// isolation: the eMPI message barrier against the lock-based shared-memory
// barrier (the paper's central "low-latency synchronization" claim,
// without a workload around it).
func BenchmarkBarrierLatency(b *testing.B) {
	for _, kind := range []syncbench.Kind{syncbench.MessageBarrier, syncbench.LockBarrier} {
		for _, cores := range []int{4, 12} {
			kind, cores := kind, cores
			b.Run(fmt.Sprintf("%v/%d-cores", kind, cores), func(b *testing.B) {
				var cyc int64
				for i := 0; i < b.N; i++ {
					res, err := syncbench.Measure(kind, cores, 20)
					if err != nil {
						b.Fatal(err)
					}
					cyc = res.CyclesPerRound
				}
				b.ReportMetric(float64(cyc), "cycles/barrier")
			})
		}
	}
}

// BenchmarkMultiMPMMU scales the number of memory nodes (the paper notes
// "there are no limitations in the number of MPMMUs of the system"):
// line-interleaving shared memory across 1, 2 and 4 MPMMUs relieves the
// serialization bottleneck of the pure shared-memory model.
func BenchmarkMultiMPMMU(b *testing.B) {
	for _, m := range []int{1, 2, 4} {
		m := m
		b.Run(fmt.Sprintf("%d-mmu", m), func(b *testing.B) {
			var cyc int64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(8, 16, cache.WriteBack)
				cfg.NumMPMMUs = m
				res, err := jacobi.Run(cfg, jacobi.Spec{N: 60, Warmup: 1, Measured: 1}, jacobi.PureSM)
				if err != nil {
					b.Fatal(err)
				}
				cyc = res.CyclesPerIteration
			}
			b.ReportMetric(float64(cyc), "cycles/iter")
		})
	}
}

// BenchmarkScenarioPatternSweep runs the shipped all-patterns scenario
// through the declarative runner: 8 patterns x 3 loads x 2 seeds on the
// 4x4 torus. It both times the scenario layer's batch overhead and keeps
// the full pattern library exercised end-to-end.
func BenchmarkScenarioPatternSweep(b *testing.B) {
	s, err := scenario.Load("examples/scenarios/patterns-sweep.json")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		results, err := scenario.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + scenario.Table(results))
			b.ReportMetric(float64(len(results)), "points")
		}
	}
}

// BenchmarkResultCacheWarmSweep measures what the result cache buys a
// rerun: the fig8-quick sweep against a pre-warmed in-memory store, every
// point a hit (cache effectiveness is reported as hit-rate; the cold cost
// is BenchmarkFig8's). This is the number BENCH_<date>.json snapshots
// track as cache.warm_ns.
func BenchmarkResultCacheWarmSweep(b *testing.B) {
	root := resultcache.New(resultcache.NewMemoryStore(0))
	o := dse.Fig8Options(dse.Quick)
	o.Cache = root
	// Warm the store once, outside the timed region.
	cold, err := dse.Sweep(o)
	if err != nil {
		b.Fatal(err)
	}
	o.Cache = root.Scope() // count only the warm reruns
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm, err := dse.Sweep(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if dse.PointsCSV(warm) != dse.PointsCSV(cold) {
				b.Fatal("warm-cache sweep differs from cold sweep")
			}
			b.ReportMetric(float64(len(warm)), "points")
		}
	}
	st := o.Cache.Stats()
	b.ReportMetric(100*st.HitRate(), "hit-rate-%")
}

// BenchmarkResultCacheHit measures the raw per-lookup cost of a store hit
// — the fixed overhead the cache adds to every already-computed point.
func BenchmarkResultCacheHit(b *testing.B) {
	run := func(b *testing.B, store resultcache.Store) {
		c := resultcache.New(store)
		key := resultcache.NewKey("bench").Int("i", 1).Sum()
		payload := []byte(`{"cycles_per_iter":94177,"miss_rate":0.01}`)
		if _, _, err := c.GetOrCompute(key, func() ([]byte, error) { return payload, nil }); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, hit, err := c.GetOrCompute(key, func() ([]byte, error) { return payload, nil })
			if err != nil || !hit {
				b.Fatal("expected a hit")
			}
		}
	}
	b.Run("memory", func(b *testing.B) { run(b, resultcache.NewMemoryStore(0)) })
	b.Run("disk", func(b *testing.B) {
		store, err := resultcache.NewDiskStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		run(b, store)
	})
}

// BenchmarkCacheKeyDerivation measures the canonical key derivation —
// per-point overhead paid even on misses.
func BenchmarkCacheKeyDerivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		resultcache.NewKey("dse/jacobi").
			Int("n", 30).Int("cores", 8).Int("cache_kb", 16).
			Str("policy", "WB").Str("variant", "hybrid-full").
			Int("warmup", 1).Int("measured", 1).Sum()
	}
}

// BenchmarkMerkleLedger measures building the run ledger over a
// fig8-sized result set and diffing two single-point-divergent runs.
func BenchmarkMerkleLedger(b *testing.B) {
	leaves := make([][]byte, 168)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf(`{"cores":%d,"cycles":%d}`, i%14+2, 90000+i))
	}
	mutated := append([][]byte(nil), leaves...)
	mutated[84] = []byte(`{"cores":8,"cycles":1}`)
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			resultcache.NewTree(leaves)
		}
	})
	b.Run("diff", func(b *testing.B) {
		t1 := resultcache.NewTree(leaves)
		t2 := resultcache.NewTree(mutated)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if d := t1.Diff(t2); len(d) != 1 {
				b.Fatalf("diff = %v", d)
			}
		}
		b.ReportMetric(float64(t1.DiffComparisons()), "hash-comparisons")
	})
}

// BenchmarkTraceReplay is the trace workload's replay path: one uniform
// 4x4 run is recorded once in setup, then each iteration replays the
// capture through the deflection torus via the scenario runner — the
// deserialization + replay cost a trace-driven sweep pays per point.
func BenchmarkTraceReplay(b *testing.B) {
	topo, err := noc.NewTopology(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.New(trace.Header{
		Width: 4, Height: 4, Topology: "torus", Router: "deflection",
		Pattern: "uniform", Rate: 0.15, Seed: 1, Warmup: 200, Measure: 4000,
	})
	src, err := noc.MeasureCtx(context.Background(), topo, noc.MeasureConfig{
		Router:  noc.RouterDeflection,
		Traffic: noc.TrafficConfig{Pattern: noc.Uniform, Rate: 0.15, Record: tr},
		Warmup:  200, Measure: 4000, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	data := tr.Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, err := trace.Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		events := make([]noc.ReplayEvent, len(loaded.Events))
		for j, ev := range loaded.Events {
			events[j] = noc.ReplayEvent{Cycle: ev.Cycle, Src: ev.Src, Dst: ev.Dst,
				Meta: ev.Meta, Req: ev.Kind == trace.EventMessage}
		}
		m, err := noc.MeasureReplayCtx(context.Background(), topo, noc.ReplayConfig{
			Router: noc.RouterDeflection, Events: events, Warmup: 200, Measure: 4000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if m.Delivered != src.Delivered {
				b.Fatalf("replay delivered %d, source %d", m.Delivered, src.Delivered)
			}
			b.ReportMetric(float64(len(events)), "events")
			b.ReportMetric(float64(m.CyclesSkipped), "cycles-skipped")
		}
	}
}

// BenchmarkServiceWorkload is the request/response workload's measurement
// path: 12 clients, 4 servers, moderate hotspot skew on the paper's 4x4
// torus — the per-point cost of an S-2 sweep.
func BenchmarkServiceWorkload(b *testing.B) {
	topo, err := noc.NewTopology(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	sc := noc.ServiceMeasureConfig{
		Router:      noc.RouterDeflection,
		Servers:     4,
		ArrivalRate: 0.03,
		ThinkTime:   8,
		HotspotSkew: 0.5,
		Warmup:      200,
		Measure:     4000,
		Seed:        1,
	}
	for i := 0; i < b.N; i++ {
		m, err := noc.MeasureServiceCtx(context.Background(), topo, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(m.Completed), "requests-completed")
			b.ReportMetric(m.P99Server, "p99-server")
		}
	}
}

func reportSpread(b *testing.B, pts []dse.Point) {
	var min, max int64
	for i, p := range pts {
		if i == 0 || p.CyclesPerIter < min {
			min = p.CyclesPerIter
		}
		if p.CyclesPerIter > max {
			max = p.CyclesPerIter
		}
	}
	b.ReportMetric(float64(min), "best-cycles/iter")
	b.ReportMetric(float64(max), "worst-cycles/iter")
}
