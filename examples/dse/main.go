// DSE: a miniature design-space exploration in the style of Figure 7 —
// sweep cores and cache sizes on a 16x16 Jacobi problem, prune to the
// Pareto front and apply the kill rule to pick the area-optimal design.
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/dse"
	"repro/internal/jacobi"
)

func main() {
	log.SetFlags(0)

	o := dse.Options{
		N:        16,
		Cores:    []int{2, 4, 6, 8, 10, 12, 14},
		CachesKB: []int{2, 4, 8, 16},
		Policies: []cache.Policy{cache.WriteBack},
		Variant:  jacobi.HybridFull,
		Warmup:   1,
		Measured: 1,
	}
	fmt.Printf("sweeping %d configurations of a 16x16 Jacobi problem...\n\n",
		len(o.Cores)*len(o.CachesKB))
	points, err := dse.Sweep(o)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(dse.Fig6Table(points, "Execution time (cycles/iteration)"))
	front := dse.ParetoFront(points)
	knee := dse.KillRuleKnee(front)
	fmt.Println(dse.ParetoTable(front, knee, "Pareto front with kill-rule choice"))
	best := front[knee]
	fmt.Printf("area-optimal design: %s — %.2f mm2, speedup %.1fx over the smallest system\n",
		best.Label, best.AreaMM2, best.Speedup)
}
