// Quickstart: build a 4x4 MEDEA system, exchange messages between two
// cores over the TIE/NoC path, touch shared memory through the MPMMU, and
// print the latencies — a five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/pe"
	"repro/internal/tie"
)

func main() {
	log.SetFlags(0)

	// A 4x4 folded torus with 2 compute cores, 8 kB write-back L1s and
	// the MPMMU on node 0 (the paper's smallest interesting system).
	sys, err := core.Build(core.DefaultConfig(2, 8, cache.WriteBack))
	if err != nil {
		log.Fatal(err)
	}
	n0, n1 := sys.NodeOf(0), sys.NodeOf(1)

	var msgRTT, memLat int64
	progs := []pe.Program{
		// Rank 0: ping-pong a message, then time one shared-memory read.
		func(env *pe.Env) {
			t0 := env.Now()
			env.Send(n1, tie.Data, []uint32{0xBEEF})
			env.Recv(n1, tie.Data)
			msgRTT = env.Now() - t0

			addr := sys.Map.SharedAddr(0x100)
			t0 = env.Now()
			_ = env.LoadWordUncached(addr)
			memLat = env.Now() - t0
		},
		// Rank 1: echo.
		func(env *pe.Env) {
			pkt := env.Recv(n0, tie.Data)
			env.Send(n0, tie.Data, pkt.Words[:1])
		},
	}
	sys.Launch(progs)
	if err := sys.Run(1_000_000); err != nil {
		log.Fatal(err)
	}

	fmt.Println("MEDEA quickstart — 4x4 folded torus, deflection routing")
	fmt.Printf("  compute cores:                %d (nodes %d and %d), MPMMU on node %d\n",
		len(sys.Procs), n0, n1, sys.Cfg.MPMMUNode)
	fmt.Printf("  message round trip (1 word):  %d cycles\n", msgRTT)
	fmt.Printf("  shared-memory uncached read:  %d cycles\n", memLat)
	fmt.Printf("  NoC flits delivered:          %d (mean latency %.1f cycles, %d deflections)\n",
		sys.Net.Stats.Delivered.Value(), sys.Net.Stats.Latency.Mean(), sys.Net.TotalDeflections())
	fmt.Println()
	fmt.Println("The gap between those two latencies is the paper's thesis:")
	fmt.Println("synchronization over the NoC message path avoids the memory node.")
}
