// NoC traffic: characterize the bare network with synthetic traffic —
// latency versus offered load for the deflection-routed (hot potato)
// switches and the buffered XY baseline, on uniform and transpose
// patterns. This is the network-level evaluation that motivates the
// paper's router choice: comparable latency at low load with zero flit
// buffering.
package main

import (
	"fmt"
	"log"

	"repro/internal/noc"
	"repro/internal/sim"
)

const (
	warmCycles = 2000
	seed       = 20100308 // DATE 2010 conference date
)

func main() {
	log.SetFlags(0)

	topo, err := noc.NewTopology(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, pattern := range []noc.Pattern{noc.Uniform, noc.Transpose} {
		fmt.Printf("pattern: %v (4x4 folded torus, %d cycles per point)\n", pattern, warmCycles)
		fmt.Printf("  %-8s %-22s %-22s\n", "load", "deflection (lat/defl)", "XY buffered (lat/peak-buf)")
		for _, rate := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5} {
			dLat, defl := runDeflection(topo, pattern, rate)
			xLat, peak := runXY(topo, pattern, rate)
			fmt.Printf("  %-8.2f %6.1f cyc %6d      %6.1f cyc %4d flits\n",
				rate, dLat, defl, xLat, peak)
		}
		fmt.Println()
	}
	fmt.Println("deflection keeps zero per-switch flit storage; the XY router's")
	fmt.Println("peak queue column is the buffering a real implementation needs.")
}

func runDeflection(topo noc.Topology, p noc.Pattern, rate float64) (meanLat float64, deflections int64) {
	e := sim.NewEngine()
	n := noc.NewNetwork(e, topo)
	for i := 0; i < topo.NumNodes(); i++ {
		tn := noc.NewTrafficNode(i, topo, noc.TrafficConfig{Pattern: p, Rate: rate}, seed)
		n.Attach(i, tn)
		e.Register(sim.PhaseNode, tn)
	}
	e.Run(warmCycles)
	return n.Stats.Latency.Mean(), n.TotalDeflections()
}

func runXY(topo noc.Topology, p noc.Pattern, rate float64) (meanLat float64, peakQueue int) {
	e := sim.NewEngine()
	n := noc.NewXYNetwork(e, topo)
	for i := 0; i < topo.NumNodes(); i++ {
		tn := noc.NewTrafficNode(i, topo, noc.TrafficConfig{Pattern: p, Rate: rate}, seed)
		n.Attach(i, tn)
		e.Register(sim.PhaseNode, tn)
	}
	e.Run(warmCycles)
	return n.Stats.Latency.Mean(), n.PeakBuffer()
}
