// Jacobi: run the paper's benchmark workload — one Jacobi iteration of a
// 30x30 Laplace problem on 6 cores — in all three programming-model
// variants, verify each against the sequential reference, and print the
// comparison the paper's Section III makes in prose.
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/jacobi"
)

func main() {
	log.SetFlags(0)

	spec := jacobi.Spec{N: 30, Warmup: 1, Measured: 2}
	cfg := core.DefaultConfig(6, 16, cache.WriteBack)

	fmt.Printf("Jacobi %dx%d on %d cores, %d kB write-back L1s\n\n",
		spec.N, spec.N, cfg.NumCompute, cfg.CacheKB)

	results := map[jacobi.Variant]jacobi.Result{}
	for _, v := range []jacobi.Variant{jacobi.HybridFull, jacobi.HybridSync, jacobi.PureSM} {
		res, err := jacobi.Run(cfg, spec, v)
		if err != nil {
			log.Fatal(err)
		}
		results[v] = res
		fmt.Printf("  %-12s %8d cycles/iter  (miss %4.1f%%, %6d flits, MPMMU busy %d)\n",
			v.String()+":", res.CyclesPerIteration, 100*res.MissRate, res.NoCFlits, res.MPMMUBusy)
	}

	full := float64(results[jacobi.HybridFull].CyclesPerIteration)
	sync := float64(results[jacobi.HybridSync].CyclesPerIteration)
	pure := float64(results[jacobi.PureSM].CyclesPerIteration)
	fmt.Println()
	fmt.Println("every variant verified bit-exact against the sequential solver")
	fmt.Printf("hybrid (data+sync over messages) vs pure shared memory: %.2fx\n", pure/full)
	fmt.Printf("sync-only hybrid vs pure shared memory:                 %.2fx\n", pure/sync)
	fmt.Printf("full hybrid vs sync-only hybrid:                        %.2fx\n", sync/full)
}
