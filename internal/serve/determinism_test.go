package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/scenario"
)

// TestServePathMatchesCLIByteForByte pins the determinism contract of the
// daemon: for the shipped example scenarios, the bytes a client fetches
// from /v1/jobs/{id}/result are identical to what cmd/medea-scenarios
// prints for the same file. Both sides run scenario.RunCtx and render
// through scenario.Render, and the simulations themselves are seeded and
// deterministic, so any divergence is a real regression in the serve
// path (result caching, rendering, or state handling).
//
// The scenario files used here are already golden-pinned against the
// hand-coded dse sweeps by internal/scenario's golden tests, which closes
// the chain: paper tables == CLI output == served output.
func TestServePathMatchesCLIByteForByte(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulations; skipped with -short")
	}
	files := []string{
		"fig8-quick.json",
		"router-ablation.json",
		"kernel-ablation.json",
	}

	s := New(Config{Workers: 2, QueueDepth: len(files)})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Shutdown(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, name := range files {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("..", "..", "examples", "scenarios", name)

			// Reference: the CLI path, in-process.
			sc, err := scenario.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			results, err := scenario.RunCtx(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			want, err := scenario.Render(results, sc.Output)
			if err != nil {
				t.Fatal(err)
			}

			// Served: the same file over HTTP, default format (which must
			// resolve to the scenario's own "output" setting, like the CLI).
			body, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			st := decodeStatus(t, resp)
			deadline := time.Now().Add(5 * time.Minute)
			for {
				cur, err := s.Status(st.ID)
				if err != nil {
					t.Fatal(err)
				}
				if cur.State == StateDone {
					break
				}
				if cur.State.Terminal() {
					t.Fatalf("job %s ended %s: %s", st.ID, cur.State, cur.Error)
				}
				if time.Now().After(deadline) {
					t.Fatalf("job %s still %s after 5m", st.ID, cur.State)
				}
				time.Sleep(50 * time.Millisecond)
			}
			rr, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
			if err != nil {
				t.Fatal(err)
			}
			defer rr.Body.Close()
			if rr.StatusCode != http.StatusOK {
				t.Fatalf("result status = %d", rr.StatusCode)
			}
			got, err := io.ReadAll(rr.Body)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != want {
				t.Errorf("served output differs from CLI output for %s:\nserved %d bytes, CLI %d bytes\nserved:\n%s\nCLI:\n%s",
					name, len(got), len(want), got, want)
			}
		})
	}
}
