package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scenario"
)

// testScenario builds a small valid scenario named name. The noc workload
// keeps it cheap; unit tests here swap the Runner out anyway.
func testScenario(t *testing.T, name string) *scenario.Scenario {
	t.Helper()
	s, err := scenario.Parse([]byte(fmt.Sprintf(`{
		"name": %q,
		"workload": "noc-synthetic",
		"noc": {
			"width": 4, "height": 4,
			"patterns": ["uniform"], "rates": [0.1],
			"warmup_cycles": 100, "measure_cycles": 500
		}
	}`, name)))
	if err != nil {
		t.Fatalf("building test scenario: %v", err)
	}
	return s
}

// blockingRunner blocks each job until release is closed (or its context
// ends), and signals on started as each job begins.
func blockingRunner(started chan<- string, release <-chan struct{}) Runner {
	return func(ctx context.Context, sc *scenario.Scenario) ([]scenario.Result, error) {
		select {
		case started <- sc.Name:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		select {
		case <-release:
			return []scenario.Result{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, s *Server, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s: state %s (error %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func shutdownAll(t *testing.T, s *Server, release chan struct{}) {
	t.Helper()
	if release != nil {
		select {
		case <-release:
		default:
			close(release)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}

func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 1, Runner: blockingRunner(started, release)})
	defer shutdownAll(t, s, release)

	// First job occupies the lone worker...
	if _, err := s.Submit(testScenario(t, "running")); err != nil {
		t.Fatalf("submit running: %v", err)
	}
	<-started
	// ...second fills the queue...
	if _, err := s.Submit(testScenario(t, "queued")); err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	// ...third must be rejected immediately, not buffered.
	_, err := s.Submit(testScenario(t, "rejected"))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit into full queue: err = %v, want ErrQueueFull", err)
	}

	// Backpressure is transient: releasing the workers frees capacity.
	close(release)
	waitState(t, s, "job-000002", StateDone)
	st, err := s.Submit(testScenario(t, "retried"))
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	// The rejected submission must not have burned an id.
	if st.ID != "job-000003" {
		t.Fatalf("id after rejection = %s, want job-000003", st.ID)
	}
	waitState(t, s, st.ID, StateDone)
}

func TestJobTimeoutCancelsNotLeaks(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{}) // never closed: only the deadline ends the job
	s := New(Config{
		Workers: 1, QueueDepth: 4, JobTimeout: 20 * time.Millisecond,
		Runner: blockingRunner(started, release),
	})
	defer shutdownAll(t, s, nil)

	if _, err := s.Submit(testScenario(t, "overlong")); err != nil {
		t.Fatal(err)
	}
	<-started
	st := waitState(t, s, "job-000001", StateCanceled)
	if !strings.Contains(st.Error, context.DeadlineExceeded.Error()) {
		t.Errorf("canceled error = %q, want mention of the deadline", st.Error)
	}
	// The worker must be released: a follow-up job runs and times out too.
	if _, err := s.Submit(testScenario(t, "next")); err != nil {
		t.Fatalf("submit after timeout: %v", err)
	}
	waitState(t, s, "job-000002", StateCanceled)
}

func TestCancelQueuedAndRunning(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 4, Runner: blockingRunner(started, release)})
	defer shutdownAll(t, s, release)

	if _, err := s.Submit(testScenario(t, "running")); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Submit(testScenario(t, "queued")); err != nil {
		t.Fatal(err)
	}

	// A queued job cancels instantly, before any worker touches it.
	st, err := s.Cancel("job-000002")
	if err != nil || st.State != StateCanceled {
		t.Fatalf("cancel queued: state %s, err %v", st.State, err)
	}
	// A running job cancels cooperatively.
	if _, err := s.Cancel("job-000001"); err != nil {
		t.Fatal(err)
	}
	st = waitState(t, s, "job-000001", StateCanceled)
	if !strings.Contains(st.Error, context.Canceled.Error()) {
		t.Errorf("running-cancel error = %q", st.Error)
	}
	// Terminal jobs stay put; canceling again is an idempotent no-op.
	if st, err := s.Cancel("job-000002"); err != nil || st.State != StateCanceled {
		t.Fatalf("re-cancel: state %s, err %v", st.State, err)
	}
	if _, err := s.Cancel("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown: %v, want ErrNotFound", err)
	}
}

func TestPanicIsolation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, Runner: func(ctx context.Context, sc *scenario.Scenario) ([]scenario.Result, error) {
		if sc.Name == "boom" {
			panic("runner exploded")
		}
		return []scenario.Result{}, nil
	}})
	defer shutdownAll(t, s, nil)

	if _, err := s.Submit(testScenario(t, "boom")); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, s, "job-000001", StateFailed)
	if !strings.Contains(st.Error, "serve: job panicked") || !strings.Contains(st.Error, "runner exploded") {
		t.Errorf("panic error = %q, want structured panic report", st.Error)
	}
	// The daemon outlives the panic: the same worker keeps serving.
	if _, err := s.Submit(testScenario(t, "healthy")); err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	waitState(t, s, "job-000002", StateDone)
}

func TestDrainFinishesEverything(t *testing.T) {
	var ran atomic.Int32
	s := New(Config{Workers: 2, QueueDepth: 8, Runner: func(ctx context.Context, sc *scenario.Scenario) ([]scenario.Result, error) {
		ran.Add(1)
		return []scenario.Result{}, nil
	}})

	const n = 6
	for i := 0; i < n; i++ {
		if _, err := s.Submit(testScenario(t, fmt.Sprintf("s%d", i))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	jobs := s.List()
	if len(jobs) != n {
		t.Fatalf("%d jobs after drain, want %d (none lost)", len(jobs), n)
	}
	for _, st := range jobs {
		if st.State != StateDone {
			t.Errorf("%s: state %s after generous drain, want done", st.ID, st.State)
		}
	}
	if got := int(ran.Load()); got != n {
		t.Errorf("runner ran %d times, want %d", got, n)
	}
	// A drained server refuses admission but still answers status reads.
	if !s.Draining() {
		t.Error("Draining() = false after Shutdown")
	}
	if _, err := s.Submit(testScenario(t, "late")); !errors.Is(err, ErrDraining) {
		t.Errorf("submit while draining: %v, want ErrDraining", err)
	}
	if _, err := s.Status("job-000001"); err != nil {
		t.Errorf("status after drain: %v", err)
	}
}

func TestDrainDeadlineCancelsButLosesNoJob(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{}) // never closed: jobs end only via cancellation
	s := New(Config{Workers: 1, QueueDepth: 8, Runner: blockingRunner(started, release)})

	const n = 4 // one running, three queued
	for i := 0; i < n; i++ {
		if _, err := s.Submit(testScenario(t, fmt.Sprintf("s%d", i))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown past deadline: err = %v, want DeadlineExceeded", err)
	}
	// Shutdown has returned, so the worker pool has exited; every accepted
	// job must be terminal and accounted for.
	jobs := s.List()
	if len(jobs) != n {
		t.Fatalf("%d jobs after forced drain, want %d", len(jobs), n)
	}
	for _, st := range jobs {
		if !st.State.Terminal() {
			t.Errorf("%s: non-terminal state %s after Shutdown returned", st.ID, st.State)
		}
		if st.State != StateCanceled {
			t.Errorf("%s: state %s, want canceled (runner never finishes)", st.ID, st.State)
		}
	}
}

func TestShutdownIdempotent(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, Runner: func(ctx context.Context, sc *scenario.Scenario) ([]scenario.Result, error) {
		return nil, nil
	}})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// A second Shutdown must not double-close the queue.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestResultLifecycle(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 4, Runner: blockingRunner(started, release)})
	defer shutdownAll(t, s, release)

	if _, err := s.Submit(testScenario(t, "job")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Result("job-000001", ""); !errors.Is(err, ErrNotFinished) {
		t.Fatalf("result before done: %v, want ErrNotFinished", err)
	}
	if _, _, err := s.Result("nope", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("result of unknown job: %v, want ErrNotFound", err)
	}
	<-started
	close(release)
	waitState(t, s, "job-000001", StateDone)
	out, st, err := s.Result("job-000001", scenario.FormatJSON)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if st.State != StateDone || !strings.HasPrefix(strings.TrimSpace(out), "[") {
		t.Errorf("result = %q (state %s), want JSON array", out, st.State)
	}
	if _, _, err := s.Result("job-000001", "yaml"); err == nil {
		t.Error("unknown format should fail the render")
	}
}

func TestRealSimulationCancelsWithinDeadline(t *testing.T) {
	// End to end against the real runner: a sweep that would simulate two
	// hundred million NoC cycles must die by the job deadline instead —
	// the engine polls its context every few thousand cycles.
	sc, err := scenario.Parse([]byte(`{
		"name": "endless",
		"workload": "noc-synthetic",
		"noc": {
			"width": 4, "height": 4,
			"patterns": ["uniform"], "rates": [0.1],
			"warmup_cycles": 100, "measure_cycles": 200000000
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, QueueDepth: 1, JobTimeout: 50 * time.Millisecond})
	defer shutdownAll(t, s, nil)
	if _, err := s.Submit(sc); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	waitState(t, s, "job-000001", StateCanceled)
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Errorf("cancellation took %s; cooperative abort should be far faster", elapsed)
	}
}

func TestRealSweepWorkerPanicIsolated(t *testing.T) {
	// A jacobi grid too large for the per-core private segment makes the
	// memory layout panic inside a sweep worker goroutine. par.ForEachCtx
	// must convert that into this job's failure — and the server must keep
	// serving afterwards.
	sc, err := scenario.Parse([]byte(`{
		"name": "poisoned",
		"workload": "jacobi",
		"jacobi": {
			"n": 400, "variant": "hybrid-full",
			"cores": [2], "cache_kb": [2], "policies": ["write-back"],
			"warmup": 0, "measured": 1
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer shutdownAll(t, s, nil)
	if _, err := s.Submit(sc); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, s, "job-000001", StateFailed)
	if !strings.Contains(st.Error, "panic") {
		t.Errorf("poisoned job error = %q, want a converted panic", st.Error)
	}
	// The daemon is still healthy: a small real scenario completes.
	if _, err := s.Submit(testScenario(t, "healthy")); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, "job-000002", StateDone)
}
