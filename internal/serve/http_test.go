package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
)

const smallScenarioJSON = `{
	"name": "http-test",
	"workload": "noc-synthetic",
	"noc": {
		"width": 4, "height": 4,
		"patterns": ["uniform"], "rates": [0.1],
		"warmup_cycles": 100, "measure_cycles": 500
	},
	"output": "csv"
}`

func post(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	return resp
}

func get(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) JobStatus {
	t.Helper()
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding JobStatus: %v", err)
	}
	return st
}

func TestHTTPSubmitPollResult(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, Runner: func(ctx context.Context, sc *scenario.Scenario) ([]scenario.Result, error) {
		return []scenario.Result{}, nil
	}})
	defer shutdownAll(t, s, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := post(t, ts, smallScenarioJSON)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	if st.ID != "job-000001" || st.Scenario != "http-test" || st.Points != 1 {
		t.Fatalf("submit returned %+v", st)
	}

	waitState(t, s, st.ID, StateDone)
	resp = get(t, ts, "/v1/jobs/"+st.ID)
	if got := decodeStatus(t, resp); got.State != StateDone {
		t.Fatalf("poll state = %s, want done", got.State)
	}

	resp = get(t, ts, "/v1/jobs/"+st.ID+"/result")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default-format content type = %q", ct)
	}

	resp = get(t, ts, "/v1/jobs/"+st.ID+"/result?format=json")
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json-format content type = %q", ct)
	}

	// The list endpoint reports submission order.
	resp = get(t, ts, "/v1/jobs")
	defer resp.Body.Close()
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != "job-000001" {
		t.Errorf("list = %+v", list)
	}
}

func TestHTTPRejectsBadSubmissions(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, MaxBodyBytes: 4096, Runner: func(ctx context.Context, sc *scenario.Scenario) ([]scenario.Result, error) {
		return nil, nil
	}})
	defer shutdownAll(t, s, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed json", `{"name": "broken", "workload":`, http.StatusBadRequest},
		{"unknown field", `{"name": "x", "workload": "noc-synthetic", "bogus": 1}`, http.StatusBadRequest},
		{"oversized", string(bytes.Repeat([]byte("x"), 8192)), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp := post(t, ts, tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	// None of the rejects may have created a job.
	if jobs := s.List(); len(jobs) != 0 {
		t.Errorf("%d jobs exist after rejected submissions", len(jobs))
	}

	resp := get(t, ts, "/v1/jobs/job-404/result")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown-job result status = %d, want 404", resp.StatusCode)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := New(Config{
		Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second,
		Runner: blockingRunner(started, release),
	})
	defer shutdownAll(t, s, release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Fill the worker, then the queue.
	for i := 0; i < 2; i++ {
		resp := post(t, ts, smallScenarioJSON)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("warm-up submit %d: status %d", i, resp.StatusCode)
		}
		if i == 0 {
			<-started
		}
	}
	resp := post(t, ts, smallScenarioJSON)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want %q", ra, "2")
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Errorf("429 body = %v, %v; want an error message", e, err)
	}
}

// TestRetryAfterClamp pins the backpressure hint's floor. "Retry-After: 0"
// is an immediate-retry instruction — it turns every 429 into a hot retry
// loop — so the rendered value clamps to at least 1 whatever the config
// holds (zero, negative, or sub-second durations included).
func TestRetryAfterClamp(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{-time.Second, 1},
		{time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{time.Minute, 60},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestHTTPRetryAfterSubSecond drives the clamp end to end: a daemon
// configured with a sub-second hint must still advertise a whole positive
// second on its 429s.
func TestHTTPRetryAfterSubSecond(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := New(Config{
		Workers: 1, QueueDepth: 1, RetryAfter: 100 * time.Millisecond,
		Runner: blockingRunner(started, release),
	})
	defer shutdownAll(t, s, release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp := post(t, ts, smallScenarioJSON)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("warm-up submit %d: status %d", i, resp.StatusCode)
		}
		if i == 0 {
			<-started
		}
	}
	resp := post(t, ts, smallScenarioJSON)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want %q (clamped up from 100ms)", ra, "1")
	}
}

func TestHTTPResultConflictStates(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{}) // never closed
	s := New(Config{
		Workers: 1, QueueDepth: 4, JobTimeout: 20 * time.Millisecond,
		Runner: blockingRunner(started, release),
	})
	defer shutdownAll(t, s, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := decodeStatus(t, post(t, ts, smallScenarioJSON))
	<-started
	// Still running: the result endpoint must say so, not block.
	resp := get(t, ts, "/v1/jobs/"+st.ID+"/result")
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of running job: status %d, want 409", resp.StatusCode)
	}
	// Once the deadline kills it, the conflict carries the cause.
	waitState(t, s, st.ID, StateCanceled)
	resp = get(t, ts, "/v1/jobs/"+st.ID+"/result")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of canceled job: status %d, want 409", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["state"] != string(StateCanceled) {
		t.Errorf("conflict body = %v, want state canceled", body)
	}
}

func TestHTTPHealthAndReadiness(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, Runner: func(ctx context.Context, sc *scenario.Scenario) ([]scenario.Result, error) {
		return nil, nil
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp := get(t, ts, path)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d before drain, want 200", path, resp.StatusCode)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Draining: liveness stays green (the process is healthy), readiness
	// flips so load balancers stop routing new work, and submissions 503.
	resp := get(t, ts, "/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200", resp.StatusCode)
	}
	resp = get(t, ts, "/readyz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	resp = post(t, ts, smallScenarioJSON)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", resp.StatusCode)
	}
}

func TestHTTPCancelEndpoint(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 4, Runner: blockingRunner(started, release)})
	defer shutdownAll(t, s, release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := decodeStatus(t, post(t, ts, smallScenarioJSON))
	<-started
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%s", ts.URL, st.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d, want 200", resp.StatusCode)
	}
	waitState(t, s, st.ID, StateCanceled)
}
