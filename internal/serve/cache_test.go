package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/resultcache"
	"repro/internal/scenario"
)

// TestResubmitIsCacheHit pins the daemon's cache contract end to end with
// the real runner: resubmitting an identical scenario serves every point
// from the cache, the job status says so, and the result bytes and run
// ledger root match the first run exactly.
func TestResubmitIsCacheHit(t *testing.T) {
	s := New(Config{
		Workers:    1,
		QueueDepth: 2,
		Cache:      resultcache.New(resultcache.NewMemoryStore(0)),
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Shutdown(ctx)
	}()

	submit := func(name string) JobStatus {
		st, err := s.Submit(testScenario(t, name))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		return waitState(t, s, st.ID, StateDone)
	}
	// The same scenario twice: two distinct jobs, one set of simulations.
	first := submit("cache-rerun")
	second := submit("cache-rerun")

	if first.Cache == nil || second.Cache == nil {
		t.Fatalf("job status missing cache stats: first %+v, second %+v", first.Cache, second.Cache)
	}
	if first.Cache.Hits != 0 || first.Cache.Computes == 0 {
		t.Errorf("first job stats %v, want cold (computes only)", *first.Cache)
	}
	if second.Cache.Hits == 0 || second.Cache.Computes != 0 {
		t.Errorf("resubmit stats %v, want pure hits", *second.Cache)
	}

	if first.MerkleRoot == "" || first.MerkleRoot != second.MerkleRoot {
		t.Errorf("merkle roots differ: first %q, second %q", first.MerkleRoot, second.MerkleRoot)
	}

	out1, _, err := s.Result(first.ID, scenario.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := s.Result(second.ID, scenario.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Errorf("cached rerun rendered differently:\n--- first ---\n%s--- second ---\n%s", out1, out2)
	}
}

// TestCacheOffJobStatus proves a daemon without a cache behaves exactly
// as before: no cache stats in status, results still served.
func TestCacheOffJobStatus(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Shutdown(ctx)
	}()
	st, err := s.Submit(testScenario(t, "no-cache"))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, st.ID, StateDone)
	if done.Cache != nil {
		t.Errorf("cache-off job reported cache stats: %+v", *done.Cache)
	}
	if done.MerkleRoot == "" {
		t.Error("done job has no merkle root")
	}
}
