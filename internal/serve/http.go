package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/scenario"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs             submit a scenario (JSON body) -> 202 JobStatus
//	                            400 invalid scenario, 413 body too large,
//	                            429 queue full (+ Retry-After), 503 draining
//	GET    /v1/jobs             list jobs in submission order
//	GET    /v1/jobs/{id}        one job's status
//	DELETE /v1/jobs/{id}        cancel (idempotent; terminal jobs unchanged)
//	GET    /v1/jobs/{id}/result rendered results (?format=table|csv|json);
//	                            409 until done, 404 unknown id
//	GET    /healthz             process liveness (always 200 while serving)
//	GET    /readyz              admission readiness (503 once draining)
//
// Error responses are JSON: {"error": "..."} plus the job's state where
// one exists.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		// Mid-flight client disconnects land here; the connection is dead,
		// but answer anyway for the cases where it is not.
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	sc, err := scenario.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.Submit(sc)
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

// retryAfterSeconds renders a backpressure hint as whole seconds, never
// below 1: "Retry-After: 0" tells clients to retry immediately, which
// turns the 429 path into a tight retry storm — exactly what the header
// exists to prevent. Sub-second and unset/negative durations (a Server
// constructed without withDefaults) all clamp up to 1.
func retryAfterSeconds(d time.Duration) int {
	if s := int(math.Ceil(d.Seconds())); s > 1 {
		return s
	}
	return 1
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	out, st, err := s.Result(r.PathValue("id"), r.URL.Query().Get("format"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrNotFinished):
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": err.Error(), "id": st.ID, "state": st.State,
		})
	case err != nil && st.State.Terminal() && st.State != StateDone:
		// Failed or canceled: the job is settled, report its cause.
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": err.Error(), "id": st.ID, "state": st.State,
		})
	case err != nil:
		// Render error (unknown format) on a done job.
		writeError(w, http.StatusBadRequest, err)
	default:
		w.Header().Set("Content-Type", contentTypeFor(r.URL.Query().Get("format")))
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, out)
	}
}

// contentTypeFor picks the response media type from the explicit render
// format (text unless JSON was requested).
func contentTypeFor(format string) string {
	if format == scenario.FormatJSON {
		return "application/json"
	}
	return "text/plain; charset=utf-8"
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
