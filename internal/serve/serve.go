// Package serve implements the MEDEA simulation-as-a-service daemon
// behind cmd/medea-serve: an HTTP/JSON front end that accepts scenario
// submissions (validated by the same strict loader the CLI uses), runs
// them on a shared worker pool behind a bounded queue, and exposes
// polling, result retrieval and lifecycle endpoints.
//
// The package is built around four robustness guarantees:
//
//   - Backpressure: the queue is a fixed-depth channel. A submission that
//     finds it full is rejected immediately (HTTP 429 + Retry-After), not
//     buffered without bound.
//   - Cancellation: every job runs under a context derived from the
//     server's base context, optionally deadline-bounded (Config.
//     JobTimeout). Cancellation is cooperative and bounded: the simulation
//     engine polls the context every few thousand simulated cycles and the
//     run aborts its program goroutines, so a canceled job releases its
//     worker quickly and leaks nothing.
//   - Panic isolation: a panic inside one job — in a sweep worker (caught
//     by par.ForEachCtx) or in a simulated program goroutine (caught by
//     pe.Proc.Launch) or anywhere else on the job path (caught here) —
//     fails that job with a structured error; the server keeps serving.
//   - Graceful drain: Shutdown stops admission, lets queued and running
//     jobs finish, and past the drain deadline cancels what is left;
//     every accepted job ends in a terminal state, none are lost.
//
// Results render through scenario.Render, the exact path the CLI uses, so
// serve-path output is byte-identical to cmd/medea-scenarios for the same
// scenario (the determinism tests pin this).
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/resultcache"
	"repro/internal/scenario"
)

// State is a job's lifecycle state. Jobs move queued -> running ->
// (done | failed | canceled); a queued job canceled before a worker picks
// it up moves straight to canceled.
type State string

// The five job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Runner executes one validated scenario. The default is scenario.RunCtx;
// tests inject fakes to exercise the job machinery without multi-second
// simulations.
type Runner func(ctx context.Context, s *scenario.Scenario) ([]scenario.Result, error)

// Config parameterizes a Server. Zero fields take the documented
// defaults.
type Config struct {
	// QueueDepth bounds the number of accepted-but-not-started jobs
	// (default 16). A full queue rejects submissions with ErrQueueFull.
	QueueDepth int
	// Workers is the number of jobs running concurrently (default 2).
	// Each job may itself fan out across Parallelism simulations.
	Workers int
	// JobTimeout is the per-job deadline (0 = none). An expired job is
	// canceled cooperatively — its worker is released, nothing leaks.
	JobTimeout time.Duration
	// RetryAfter is the backpressure hint returned with 429 responses
	// (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds submission bodies (default 1 MiB); larger
	// requests get 413.
	MaxBodyBytes int64
	// Runner executes jobs (default scenario.RunCtx).
	Runner Runner
	// Cache is the daemon-wide result cache (nil = off). Each job runs
	// under its own resultcache scope of it, so a resubmitted scenario is
	// served from the store — job status reports the per-job hit counts —
	// while deduplication and the byte budget stay daemon-global.
	Cache *resultcache.Cache
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Runner == nil {
		c.Runner = scenario.RunCtx
	}
	return c
}

// Sentinel errors of the job API; the HTTP layer maps them to status
// codes (429, 503, 404, 409).
var (
	ErrQueueFull   = errors.New("serve: job queue full")
	ErrDraining    = errors.New("serve: server is draining")
	ErrNotFound    = errors.New("serve: no such job")
	ErrNotFinished = errors.New("serve: job has not finished")
)

// JobStatus is a point-in-time snapshot of one job, also the JSON shape
// of the status endpoints.
type JobStatus struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Scenario string `json:"scenario"`
	// Points is the sweep size (scenario.NumPoints), so clients can judge
	// cost before polling.
	Points int `json:"points"`
	// Error carries the failure or cancellation cause once terminal.
	Error string `json:"error,omitempty"`
	// Cache is this job's result-cache counters (absent when the daemon
	// runs without a cache): live while running, final once terminal. A
	// resubmitted scenario shows hits == points.
	Cache *resultcache.Stats `json:"cache,omitempty"`
	// MerkleRoot is the run ledger root over the job's result set, set
	// once done: one content address for the whole run, equal roots mean
	// point-for-point identical results.
	MerkleRoot string `json:"merkle_root,omitempty"`
}

// job is the server-internal record; all fields below mu-guarded state
// are written under Server.mu.
type job struct {
	id         string
	scenario   *scenario.Scenario
	state      State
	err        string
	results    []scenario.Result
	cancel     context.CancelFunc // non-nil exactly while running
	cache      *resultcache.Cache // per-job scope; nil when the daemon has no cache
	merkleRoot string             // set with StateDone
}

func (j *job) status() JobStatus {
	st := JobStatus{
		ID:         j.id,
		State:      j.state,
		Scenario:   j.scenario.Name,
		Points:     j.scenario.NumPoints(),
		Error:      j.err,
		MerkleRoot: j.merkleRoot,
	}
	if j.cache != nil {
		stats := j.cache.Stats()
		st.Cache = &stats
	}
	return st
}

// Server owns the bounded queue, the worker pool and the job table. Use
// New; the zero value is not runnable.
type Server struct {
	cfg        Config
	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *job
	workers    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for List
	seq      int
	draining bool
}

// New builds a Server and starts its worker pool. Call Shutdown to drain
// it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.QueueDepth),
		jobs:       make(map[string]*job),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Submit enqueues a validated scenario and returns the new job's status.
// It never blocks: a full queue returns ErrQueueFull (backpressure) and a
// draining server returns ErrDraining.
func (s *Server) Submit(sc *scenario.Scenario) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, ErrDraining
	}
	s.seq++
	j := &job{
		id:       fmt.Sprintf("job-%06d", s.seq),
		scenario: sc,
		state:    StateQueued,
	}
	select {
	case s.queue <- j:
	default:
		s.seq-- // the id was never exposed; keep the sequence dense
		return JobStatus{}, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	return j.status(), nil
}

// Status returns a snapshot of one job.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobStatus{}, ErrNotFound
	}
	return j.status(), nil
}

// List returns every job in submission order.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Cancel cancels one job: a queued job moves straight to canceled (its
// queue slot is skipped by the worker that drains it), a running job has
// its context canceled and reaches the canceled state once the simulation
// notices (bounded by the engine's poll interval). Terminal jobs are left
// as they are. The returned status is the state right after the call, so
// a just-canceled running job still reports "running".
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobStatus{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = "canceled before start"
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.status(), nil
}

// Result renders a finished job's results in the given format ("" means
// the scenario's own output setting, else table — exactly the CLI's
// precedence). Non-terminal or unsuccessful jobs return ErrNotFinished or
// the job's own failure alongside the status snapshot.
func (s *Server) Result(id, format string) (string, JobStatus, error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return "", JobStatus{}, ErrNotFound
	}
	st := j.status()
	if j.state != StateDone {
		s.mu.Unlock()
		if st.State.Terminal() {
			return "", st, fmt.Errorf("serve: job %s %s: %s", id, st.State, st.Error)
		}
		return "", st, ErrNotFinished
	}
	results := j.results
	f := j.scenario.Output
	s.mu.Unlock()
	if format != "" {
		f = format
	}
	out, err := scenario.Render(results, f)
	return out, st, err
}

// Draining reports whether Shutdown has been called (readiness turns
// false and submissions are rejected).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the server: admission stops immediately, then queued
// and running jobs are given until ctx expires to finish. Past the
// deadline everything still in flight is canceled cooperatively and
// Shutdown waits for the (bounded) cancellations to land. Either way
// every accepted job ends terminal — finished jobs keep their results,
// interrupted ones read canceled — and the worker pool has exited when
// Shutdown returns. The returned error is ctx's error if the deadline
// forced cancellations, nil if everything finished in time; both are
// clean exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		// Safe: submissions check draining under mu before sending, so no
		// send can race this close.
		close(s.queue)
	}

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel() // cancel in-flight jobs; cancellation is bounded
		<-done
		return ctx.Err()
	}
}

// worker consumes the queue until it is closed and empty (drain).
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob moves one job through running to a terminal state.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.state != StateQueued {
		// Canceled while waiting; its slot drains with no work.
		s.mu.Unlock()
		return
	}
	ctx := s.baseCtx
	var cancel context.CancelFunc
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.state = StateRunning
	j.cancel = cancel
	// The job gets its own scope of the daemon cache: shared store and
	// in-flight table (cross-job deduplication), per-job counters for the
	// status endpoint. On a cacheless daemon both stay nil and the runner
	// sees the documented cache-off mode.
	j.cache = s.cfg.Cache.Scope()
	j.scenario.Cache = j.cache
	s.mu.Unlock()
	defer cancel()

	results, err := runSafely(s.cfg.Runner, ctx, j.scenario)

	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.results = results
		j.merkleRoot = scenario.MerkleRoot(results)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Job deadline, DELETE, or drain-deadline cancellation.
		j.state = StateCanceled
		j.err = err.Error()
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
}

// runSafely is the last line of panic isolation: anything that escapes
// the runner on the worker goroutine becomes this job's structured
// failure instead of crashing the daemon. (Panics inside sweep workers
// and simulated program goroutines are already converted to errors by
// par.ForEachCtx and pe.Proc.Launch respectively.)
func runSafely(run Runner, ctx context.Context, sc *scenario.Scenario) (results []scenario.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return run(ctx, sc)
}
