package perfledger

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sample() *Snapshot {
	return &Snapshot{
		Date:        "2026-08-08",
		GoVersion:   "go1.24",
		CodeVersion: "medea-2026.08",
		Entries: []Entry{
			{Name: "fig8-quick/mem-warm", NsPerOp: 1e6, Metrics: map[string]float64{"points": 28}},
			{Name: "fig8-quick/cache-off", NsPerOp: 5e9},
		},
		Cache:      CacheSummary{ColdNs: 5e9, WarmNs: 1e6, Speedup: 5000, HitRate: 1, Hits: 28},
		MerkleRoot: strings.Repeat("ab", 32),
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName("2026-08-08"))
	s := sample()
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema {
		t.Fatalf("schema %q", got.Schema)
	}
	// Write sorts entries by name; compare against the sorted original.
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
	if got.Entries[0].Name != "fig8-quick/cache-off" {
		t.Fatalf("entries not sorted: %q first", got.Entries[0].Name)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Snapshot){
		"empty date":    func(s *Snapshot) { s.Date = "" },
		"no root":       func(s *Snapshot) { s.MerkleRoot = "" },
		"unnamed entry": func(s *Snapshot) { s.Entries[0].Name = "" },
		"negative ns":   func(s *Snapshot) { s.Entries[0].NsPerOp = -1 },
	}
	for name, mutate := range cases {
		s := sample()
		s.Schema = Schema
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid snapshot", name)
		}
	}
}

func TestFileName(t *testing.T) {
	if got := FileName("2026-08-08"); got != "BENCH_2026-08-08.json" {
		t.Fatalf("FileName = %q", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := sample().Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}

// TestWriteNewRefusesClobber: two -bench-json runs on the same date must
// not silently overwrite each other's snapshot; overwriting is the
// explicit -bench-json-force opt-in (plain Write).
func TestWriteNewRefusesClobber(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName("2026-08-08"))
	s := sample()
	if err := s.WriteNew(path); err != nil {
		t.Fatalf("first WriteNew: %v", err)
	}
	err := s.WriteNew(path)
	if err == nil || !strings.Contains(err.Error(), "-bench-json-force") {
		t.Errorf("second WriteNew = %v, want a refusal naming -bench-json-force", err)
	}
	// The forced path still works and the file stays loadable.
	s.Entries[0].NsPerOp = 2e6
	if err := s.Write(path); err != nil {
		t.Fatalf("forced Write: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries[0].NsPerOp != 2e6 {
		t.Errorf("forced overwrite not applied: %+v", got.Entries)
	}
}

// TestSnapshotHostFields: the host/gomaxprocs stamp survives the
// round trip — consumers comparing wall-clock entries need both.
func TestSnapshotHostFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName("2026-08-08"))
	s := sample()
	s.Host = "bench-box"
	s.GOMAXPROCS = 4
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Host != "bench-box" || got.GOMAXPROCS != 4 {
		t.Errorf("host fields did not round-trip: host=%q gomaxprocs=%d", got.Host, got.GOMAXPROCS)
	}
}
