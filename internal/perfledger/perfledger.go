// Package perfledger records the repository's performance trajectory as
// committed BENCH_<date>.json snapshots: a dated, schema-versioned record
// of benchmark timings, result-cache effectiveness and the Merkle ledger
// root of the reference sweep. Each snapshot is one point on the
// trajectory; diffing two snapshots answers "did the simulator get
// faster, did the cache keep paying, did the reference results change?"
// without rerunning anything.
//
// cmd/medea-experiments -bench-json writes snapshots; CI emits one per
// run as an artifact, and a current one is committed at the repo root so
// the trajectory survives in history.
package perfledger

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Schema identifies the snapshot format; bump on incompatible change.
const Schema = "medea-bench/v1"

// Entry is one timed benchmark in a snapshot.
type Entry struct {
	// Name identifies the benchmark, e.g. "fig8-quick/mem-warm".
	Name string `json:"name"`
	// NsPerOp is the headline wall-clock cost of one operation.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics carries benchmark-specific extras (hit rates, point counts).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// CacheSummary records the result cache's effectiveness on the reference
// trajectory: a cold (empty-store) run against a warm rerun of the same
// sweep.
type CacheSummary struct {
	ColdNs int64 `json:"cold_ns"`
	WarmNs int64 `json:"warm_ns"`
	// Speedup is cold/warm wall clock: how much the cache buys a rerun.
	Speedup float64 `json:"speedup"`
	// HitRate is the warm rerun's cache hit rate (1 = fully served).
	HitRate float64 `json:"hit_rate"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
}

// Snapshot is one point on the performance trajectory.
type Snapshot struct {
	Schema string `json:"schema"`
	// Date is the snapshot day, YYYY-MM-DD (also in the file name).
	Date string `json:"date"`
	// GoVersion stamps the toolchain (runtime.Version()).
	GoVersion string `json:"go_version"`
	// Host names the machine the snapshot was taken on (os.Hostname), and
	// GOMAXPROCS records the scheduler width in effect. Wall-clock numbers
	// are only comparable between snapshots that agree on both.
	Host       string `json:"host,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	// CodeVersion is resultcache.CodeVersion: the simulation-semantics
	// stamp. Two snapshots with equal CodeVersion and different MerkleRoot
	// indicate a reproducibility break.
	CodeVersion string `json:"code_version"`
	// Entries are the timed benchmarks, sorted by name.
	Entries []Entry `json:"entries"`
	// Cache summarizes cold-vs-warm on the reference sweep.
	Cache CacheSummary `json:"cache"`
	// MerkleRoot is the run ledger root of the reference sweep's result
	// set (hex); equal roots across snapshots mean the reference results
	// are still byte-identical.
	MerkleRoot string `json:"merkle_root"`
}

// FileName returns the conventional snapshot name for a date:
// "BENCH_<date>.json".
func FileName(date string) string { return "BENCH_" + date + ".json" }

// Validate checks the invariants consumers rely on.
func (s *Snapshot) Validate() error {
	if s.Schema != Schema {
		return fmt.Errorf("perfledger: schema %q, want %q", s.Schema, Schema)
	}
	if s.Date == "" {
		return fmt.Errorf("perfledger: snapshot has no date")
	}
	if s.MerkleRoot == "" {
		return fmt.Errorf("perfledger: snapshot has no merkle root")
	}
	for _, e := range s.Entries {
		if e.Name == "" {
			return fmt.Errorf("perfledger: entry with empty name")
		}
		if e.NsPerOp < 0 {
			return fmt.Errorf("perfledger: entry %s has negative ns/op", e.Name)
		}
	}
	return nil
}

// Write validates and writes the snapshot as stable, indented JSON
// (entries sorted by name, trailing newline) so committed snapshots diff
// cleanly.
func (s *Snapshot) Write(path string) error {
	if s.Schema == "" {
		s.Schema = Schema
	}
	sort.Slice(s.Entries, func(i, j int) bool { return s.Entries[i].Name < s.Entries[j].Name })
	if err := s.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteNew is Write, except it refuses to clobber an existing snapshot:
// two -bench-json runs on the same date would otherwise silently
// overwrite each other's BENCH_<date>.json. Overwriting is an explicit
// opt-in (-bench-json-force → Write).
func (s *Snapshot) WriteNew(path string) error {
	if _, err := os.Stat(path); err == nil {
		return fmt.Errorf("perfledger: %s already exists (pass -bench-json-force to overwrite)", path)
	} else if !os.IsNotExist(err) {
		return err
	}
	return s.Write(path)
}

// Load reads and validates a snapshot file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perfledger: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("perfledger: %s: %w", path, err)
	}
	return &s, nil
}
