package sim

// RNG is a small deterministic pseudo-random generator (xorshift64*) used
// by traffic generators and randomized tests. It is deliberately not
// math/rand so that simulator behaviour is pinned to this repository rather
// than to the standard library's generator choice.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped so the
// generator never sticks at zero).
func NewRNG(seed int64) *RNG {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &RNG{state: s}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }
