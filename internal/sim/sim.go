// Package sim provides the deterministic, cycle-accurate simulation engine
// that replaces the paper's SystemC models.
//
// The engine is a two-phase synchronous clock: on every cycle each
// registered component's Step method runs exactly once, grouped into
// ordered phases, and then all registers commit. Inter-component state that
// must behave like a hardware register (visible one cycle after it is
// written) lives in Reg values; intra-cycle producer/consumer hand-off
// (e.g. a switch pulling a flit from its local node in the same cycle) is
// expressed by placing the producer in an earlier phase than the consumer.
//
// Determinism: components run in registration order within a phase, all
// randomness flows through explicitly seeded RNGs, and no map iteration
// affects behaviour. Two runs of the same configuration produce identical
// cycle counts, which the integration tests assert.
//
// # Performance
//
// Tick is the simulator's innermost loop: every workload cycle executes
// every component Step plus the register-commit pass, so its constant
// factors multiply across the millions of cycles behind each design-space
// point. The commit pass therefore uses a dirty list instead of scanning
// all registers: Set enqueues the register's index on the engine's
// per-cycle dirty list (a pointer-free int32 slice, so the append has no
// GC write barrier, resolved through a table of pre-bound commit functions
// rather than an interface dispatch), and Tick commits only the registers
// written during the cycle. A register that holds a value but is not
// rewritten must still drain — links do not hold flits across idle cycles
// — which is implemented lazily: commit stamps the register with the one
// cycle during which its value is observable, and Valid/Get compare that
// stamp against the engine clock, so an idle register expires without
// ever being touched again. In a 4x4 mesh at realistic loads the
// overwhelming majority of the 64 link registers are idle on any given
// cycle, and the engine pays nothing for them.
//
// Run `go test ./internal/noc -bench BenchmarkTick -run '^$'` to measure
// the per-cycle cost on the paper's 4x4 mesh, and see the repository
// doc.go Performance section for profiling the full experiment binaries.
package sim

import (
	"context"
	"errors"
	"fmt"
)

// Component is a clocked hardware block. Step is called once per cycle with
// the current cycle number.
type Component interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Step advances the component by one cycle.
	Step(now int64)
}

// Phases used by the MEDEA system. Nodes (PEs, bridges, MPMMU) run before
// switches so that a switch can pull a freshly produced flit in the same
// cycle (1 flit/cycle injection as in the paper).
const (
	PhaseNode   = 0
	PhaseSwitch = 1
	numPhases   = 2
)

// commitFunc commits one dirty register, making its value observable during
// the given cycle. Using a concrete function table instead of an interface
// keeps the commit loop free of interface dispatch.
type commitFunc func(visibleAt int64)

// Engine drives a set of components cycle by cycle.
type Engine struct {
	phases [numPhases][]Component
	// commitFns holds one pre-bound commit function per register, in
	// creation order; a register is addressed by its index. The dirty list
	// stores indices rather than the function values themselves so that
	// enqueueing a register is a pointer-free int32 append (no GC write
	// barrier on the per-cycle path).
	commitFns []commitFunc
	// regSnaps holds the registers' snapshot/restore closures, parallel to
	// commitFns; used only by Snapshot/Restore, never on the tick path.
	regSnaps []regSnapFns
	// dirty holds the registers written during the current cycle (enqueued
	// by Reg.Set); only these commit at the end of the cycle. spare
	// recycles the previous cycle's backing array so steady-state ticking
	// does not allocate.
	dirty []int32
	spare []int32
	cycle int64

	// Idle fast-forward state (see ffwd.go). eventers/skippers cache the
	// capability interfaces of the registered components; nonEventers
	// counts components that cannot report a next-event cycle (any such
	// component disables fast-forward for the whole engine). quiet tracks
	// whether the previous Tick committed nothing, i.e. no register holds
	// an observable value in the current cycle.
	eventers      []NextEventer
	skippers      []Skipper
	nonEventers   int
	quiet         bool
	ffwdOff       bool
	cyclesSkipped int64
	// ctxCheckAt is the next cycle at which the context-aware run loops
	// poll for cancellation. It lives on the engine, not in the loops, so
	// a job composed of many short RunCtx calls still observes
	// cancellation within ctxCheckInterval cycles overall.
	ctxCheckAt int64
}

// addReg registers a commit function plus the snapshot/restore pair for
// the same register and returns the register's index.
func (e *Engine) addReg(fn commitFunc, snap func() any, restore func(any)) int32 {
	e.commitFns = append(e.commitFns, fn)
	e.regSnaps = append(e.regSnaps, regSnapFns{snap: snap, restore: restore})
	return int32(len(e.commitFns) - 1)
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{quiet: true, ffwdOff: !DefaultFastForward()}
}

// Register adds a component to the given phase. Components in lower phases
// step before components in higher phases within one cycle.
func (e *Engine) Register(phase int, c Component) {
	if phase < 0 || phase >= numPhases {
		panic(fmt.Sprintf("sim: invalid phase %d", phase))
	}
	e.phases[phase] = append(e.phases[phase], c)
	if ev, ok := c.(NextEventer); ok {
		e.eventers = append(e.eventers, ev)
	} else {
		e.nonEventers++
	}
	if sk, ok := c.(Skipper); ok {
		e.skippers = append(e.skippers, sk)
	}
}

// Now returns the current cycle number.
func (e *Engine) Now() int64 { return e.cycle }

// Tick runs one full cycle: all phases in order, then the dirty-register
// commit.
func (e *Engine) Tick() {
	now := e.cycle
	for p := 0; p < numPhases; p++ {
		for _, c := range e.phases[p] {
			c.Step(now)
		}
	}
	// Commit the dirty list: exactly the registers written this cycle.
	// Unwritten registers expire by themselves (their validity stamp stops
	// matching the clock), so they cost nothing here. Commit order follows
	// write order, which is deterministic because components step in
	// registration order; commits are independent per register, so order
	// does not affect behaviour.
	visibleAt := e.cycle + 1
	fns := e.commitFns
	for _, i := range e.dirty {
		fns[i](visibleAt)
	}
	// An empty dirty list means no register holds an observable value next
	// cycle — the precondition for idle fast-forward (see ffwd.go).
	e.quiet = len(e.dirty) == 0
	e.dirty, e.spare = e.spare[:0], e.dirty[:0]
	e.cycle++
}

// ErrTimeout is returned by RunUntil when the predicate does not become
// true within the cycle budget.
var ErrTimeout = errors.New("sim: cycle budget exhausted")

// RunUntil ticks the engine until done() reports true or maxCycles
// additional cycles have elapsed, in which case it returns ErrTimeout.
// done is evaluated before each tick, so a predicate that is already true
// costs zero cycles.
func (e *Engine) RunUntil(done func() bool, maxCycles int64) error {
	return e.RunUntilCtx(context.Background(), done, maxCycles)
}

// ctxCheckInterval is how many cycles elapse between context polls in the
// context-aware run loops: frequent enough that a canceled simulation
// stops within microseconds of wall time, rare enough that the check is
// invisible on the tick path.
const ctxCheckInterval = 1024

// pollCtx checks for cancellation when the engine clock has reached the
// next poll point. The poll point is engine state, not loop state: a job
// composed of many short RunCtx calls advances toward the same poll point
// across calls and still observes cancellation within ctxCheckInterval
// cycles overall (a sequence of sub-interval runs previously never
// polled).
func (e *Engine) pollCtx(ctx context.Context) error {
	if e.cycle < e.ctxCheckAt {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sim: run canceled at cycle %d: %w", e.cycle, err)
	}
	e.ctxCheckAt = e.cycle + ctxCheckInterval
	return nil
}

// RunUntilCtx is RunUntil with cooperative cancellation: the context is
// polled every ctxCheckInterval cycles, so a canceled or deadline-exceeded
// run stops in bounded time (mid-simulation, not at run granularity) and
// returns the context's error.
func (e *Engine) RunUntilCtx(ctx context.Context, done func() bool, maxCycles int64) error {
	deadline := e.cycle + maxCycles
	for !done() {
		if e.cycle >= deadline {
			return fmt.Errorf("%w after %d cycles", ErrTimeout, maxCycles)
		}
		if err := e.pollCtx(ctx); err != nil {
			return err
		}
		e.maybeFastForward(deadline)
		if e.cycle >= deadline {
			continue // jumped to the deadline: re-check done, then time out
		}
		e.Tick()
	}
	return nil
}

// Run ticks the engine for n cycles (fewer ticks when idle fast-forward
// jumps the clock; the engine still ends exactly n cycles later).
func (e *Engine) Run(n int64) {
	end := e.cycle + n
	for e.cycle < end {
		e.maybeFastForward(end)
		if e.cycle >= end {
			break
		}
		e.Tick()
	}
}

// RunCtx ticks the engine for n cycles, polling the context every
// ctxCheckInterval cycles; it returns the context's error if canceled
// mid-run, leaving the engine at the cycle it stopped on.
func (e *Engine) RunCtx(ctx context.Context, n int64) error {
	end := e.cycle + n
	for e.cycle < end {
		if err := e.pollCtx(ctx); err != nil {
			return err
		}
		e.maybeFastForward(end)
		if e.cycle >= end {
			break
		}
		e.Tick()
	}
	return nil
}

// Reg is a single hardware register holding a value of type T with a valid
// flag. Reads observe the value committed at the end of the previous cycle;
// writes become visible after the next commit. This gives order-independent
// semantics between components in the same phase.
type Reg[T any] struct {
	eng *Engine
	idx int32 // index into the engine's commit-function table
	// validAt is the single cycle during which cur is observable: a write
	// committed at the end of cycle N is visible during cycle N+1 and
	// expires by itself afterwards (links do not hold flits across idle
	// cycles), without the register ever appearing on a second dirty list.
	validAt   int64
	cur, next T
	written   bool
	name      string
}

// NewReg creates a register attached to the engine.
func NewReg[T any](e *Engine, name string) *Reg[T] {
	r := &Reg[T]{eng: e, name: name, validAt: -1}
	r.idx = e.addReg(r.commit, r.snapshot, r.restore)
	return r
}

// regSnap is one register's checkpointed state: the committed value and
// the single cycle during which it is observable. Pending writes are
// excluded by construction — Snapshot refuses to run with a non-empty
// dirty list.
type regSnap[T any] struct {
	cur     T
	validAt int64
}

// snapshot captures the register for Engine.Snapshot.
func (r *Reg[T]) snapshot() any { return regSnap[T]{cur: r.cur, validAt: r.validAt} }

// restore reinstates a snapshot taken from this same register.
func (r *Reg[T]) restore(s any) {
	rs := s.(regSnap[T])
	r.cur, r.validAt, r.written = rs.cur, rs.validAt, false
}

// Valid reports whether the register currently holds a value.
func (r *Reg[T]) Valid() bool { return r.validAt == r.eng.cycle }

// Get returns the current value and whether it is valid.
func (r *Reg[T]) Get() (T, bool) {
	if r.validAt == r.eng.cycle {
		return r.cur, true
	}
	var zero T
	return zero, false
}

// Set writes a value that becomes visible after the next commit. Writing a
// register twice in one cycle is a wiring bug and panics.
func (r *Reg[T]) Set(v T) {
	if r.written {
		panic("sim: register " + r.name + " written twice in one cycle")
	}
	r.next, r.written = v, true
	r.eng.dirty = append(r.eng.dirty, r.idx)
}

// commit latches next into cur and stamps the cycle during which the value
// is observable. Only written registers are committed; everything else
// expires lazily through the stamp comparison in Valid/Get.
func (r *Reg[T]) commit(visibleAt int64) {
	r.cur = r.next
	r.validAt = visibleAt
	r.written = false
}

// FuncComponent adapts a function to the Component interface, handy in
// tests and small glue blocks.
type FuncComponent struct {
	ComponentName string
	Fn            func(now int64)
}

// Name implements Component.
func (f *FuncComponent) Name() string { return f.ComponentName }

// Step implements Component.
func (f *FuncComponent) Step(now int64) { f.Fn(now) }
