// Package sim provides the deterministic, cycle-accurate simulation engine
// that replaces the paper's SystemC models.
//
// The engine is a two-phase synchronous clock: on every cycle each
// registered component's Step method runs exactly once, grouped into
// ordered phases, and then all registers commit. Inter-component state that
// must behave like a hardware register (visible one cycle after it is
// written) lives in Reg values; intra-cycle producer/consumer hand-off
// (e.g. a switch pulling a flit from its local node in the same cycle) is
// expressed by placing the producer in an earlier phase than the consumer.
//
// Determinism: components run in registration order within a phase, all
// randomness flows through explicitly seeded RNGs, and no map iteration
// affects behaviour. Two runs of the same configuration produce identical
// cycle counts, which the integration tests assert.
package sim

import (
	"errors"
	"fmt"
)

// Component is a clocked hardware block. Step is called once per cycle with
// the current cycle number.
type Component interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Step advances the component by one cycle.
	Step(now int64)
}

// committer is the commit half of a register; all registers commit after
// the last phase of each cycle.
type committer interface {
	commit()
}

// Phases used by the MEDEA system. Nodes (PEs, bridges, MPMMU) run before
// switches so that a switch can pull a freshly produced flit in the same
// cycle (1 flit/cycle injection as in the paper).
const (
	PhaseNode   = 0
	PhaseSwitch = 1
	numPhases   = 2
)

// Engine drives a set of components cycle by cycle.
type Engine struct {
	phases [numPhases][]Component
	regs   []committer
	cycle  int64
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Register adds a component to the given phase. Components in lower phases
// step before components in higher phases within one cycle.
func (e *Engine) Register(phase int, c Component) {
	if phase < 0 || phase >= numPhases {
		panic(fmt.Sprintf("sim: invalid phase %d", phase))
	}
	e.phases[phase] = append(e.phases[phase], c)
}

// addReg registers a register for end-of-cycle commit. Called by NewReg.
func (e *Engine) addReg(r committer) { e.regs = append(e.regs, r) }

// Now returns the current cycle number.
func (e *Engine) Now() int64 { return e.cycle }

// Tick runs one full cycle: all phases in order, then register commit.
func (e *Engine) Tick() {
	now := e.cycle
	for p := 0; p < numPhases; p++ {
		for _, c := range e.phases[p] {
			c.Step(now)
		}
	}
	for _, r := range e.regs {
		r.commit()
	}
	e.cycle++
}

// ErrTimeout is returned by RunUntil when the predicate does not become
// true within the cycle budget.
var ErrTimeout = errors.New("sim: cycle budget exhausted")

// RunUntil ticks the engine until done() reports true or maxCycles
// additional cycles have elapsed, in which case it returns ErrTimeout.
// done is evaluated before each tick, so a predicate that is already true
// costs zero cycles.
func (e *Engine) RunUntil(done func() bool, maxCycles int64) error {
	deadline := e.cycle + maxCycles
	for !done() {
		if e.cycle >= deadline {
			return fmt.Errorf("%w after %d cycles", ErrTimeout, maxCycles)
		}
		e.Tick()
	}
	return nil
}

// Run ticks the engine for exactly n cycles.
func (e *Engine) Run(n int64) {
	for i := int64(0); i < n; i++ {
		e.Tick()
	}
}

// Reg is a single hardware register holding a value of type T with a valid
// flag. Reads observe the value committed at the end of the previous cycle;
// writes become visible after the next commit. This gives order-independent
// semantics between components in the same phase.
type Reg[T any] struct {
	cur, next     T
	curOK, nextOK bool
	written       bool
	name          string
}

// NewReg creates a register attached to the engine's commit list.
func NewReg[T any](e *Engine, name string) *Reg[T] {
	r := &Reg[T]{name: name}
	e.addReg(r)
	return r
}

// Valid reports whether the register currently holds a value.
func (r *Reg[T]) Valid() bool { return r.curOK }

// Get returns the current value and whether it is valid.
func (r *Reg[T]) Get() (T, bool) { return r.cur, r.curOK }

// Set writes a value that becomes visible after the next commit. Writing a
// register twice in one cycle is a wiring bug and panics.
func (r *Reg[T]) Set(v T) {
	if r.written {
		panic("sim: register " + r.name + " written twice in one cycle")
	}
	r.next, r.nextOK, r.written = v, true, true
}

// commit latches next into cur. A cycle with no write leaves the register
// empty (invalid), i.e. links do not hold flits across idle cycles.
func (r *Reg[T]) commit() {
	r.cur, r.curOK = r.next, r.nextOK
	var zero T
	r.next, r.nextOK, r.written = zero, false, false
}

// FuncComponent adapts a function to the Component interface, handy in
// tests and small glue blocks.
type FuncComponent struct {
	ComponentName string
	Fn            func(now int64)
}

// Name implements Component.
func (f *FuncComponent) Name() string { return f.ComponentName }

// Step implements Component.
func (f *FuncComponent) Step(now int64) { f.Fn(now) }
