package sim

// Idle fast-forward: when no register holds an observable value (the
// previous Tick committed nothing) and every registered component can
// report the next cycle at which it may act, the engine jumps the clock to
// the earliest such cycle instead of ticking empty cycles one by one.
// Syncbench episodes and low-load NoC sweeps are mostly idle, so skipping
// the empty cycles is the next multiplier after PR 1's constant-factor
// work on Tick itself.
//
// Correctness contract: a skipped cycle must be indistinguishable from a
// ticked one. Components whose Step mutates state unconditionally every
// cycle (stall counters, round-robin pointers, pre-drawn RNG gating)
// implement Skipper and compensate exactly; everything else must be a pure
// no-op on the cycles being skipped. The differential battery in
// internal/scenario asserts byte-identical results with fast-forward on
// and off across every shipped scenario.

import "math"

// NoEvent is the NextEvent return value meaning "never": the component
// cannot act again until some other component or register wakes it.
const NoEvent = math.MaxInt64

// NextEventer is the optional component capability behind idle
// fast-forward. NextEvent returns the earliest cycle >= now at which the
// component may do anything observable, assuming no register becomes
// valid in the meantime (the engine only asks while the register file is
// quiet). Returning now (or anything <= now) vetoes skipping; returning
// NoEvent means the component is fully passive until external input
// arrives.
type NextEventer interface {
	NextEvent(now int64) int64
}

// Skipper is the optional companion capability for components whose Step
// has unconditional per-cycle effects. When the engine jumps the clock
// from from to to (cycles from..to-1 are never ticked), Skipped must apply
// exactly the state changes those Steps would have made — stall-counter
// increments, round-robin advances, and the like.
type Skipper interface {
	Skipped(from, to int64)
}

// defaultFFwdOff is the process-wide default for new engines; the CLIs'
// -no-ffwd escape hatch sets it before any simulation starts. Inverted so
// the zero value means "fast-forward on".
var defaultFFwdOff bool

// SetDefaultFastForward sets whether newly created engines fast-forward
// idle stretches (default true). Call it before building engines; it is
// the -no-ffwd escape hatch, not a per-run toggle — use
// Engine.SetFastForward for that.
func SetDefaultFastForward(enabled bool) { defaultFFwdOff = !enabled }

// DefaultFastForward reports the process-wide default.
func DefaultFastForward() bool { return !defaultFFwdOff }

// SetFastForward enables or disables idle fast-forward on this engine.
func (e *Engine) SetFastForward(enabled bool) { e.ffwdOff = !enabled }

// CyclesSkipped returns the number of cycles the engine advanced by
// fast-forward jumps instead of ticking. It is a pure performance
// counter: results are byte-identical whatever its value.
func (e *Engine) CyclesSkipped() int64 { return e.cyclesSkipped }

// maybeFastForward jumps the clock to the earliest next-event cycle
// (clamped to limit) when the engine is quiet and every component
// cooperates. Called by the run loops before each Tick; a no-op whenever
// any precondition fails, so engines with non-NextEventer components
// simply never skip.
func (e *Engine) maybeFastForward(limit int64) {
	if e.ffwdOff || !e.quiet || e.nonEventers > 0 || len(e.eventers) == 0 {
		return
	}
	now := e.cycle
	next := limit
	for _, ev := range e.eventers {
		t := ev.NextEvent(now)
		if t <= now {
			return // someone may act this cycle: tick normally
		}
		if t < next {
			next = t
		}
	}
	if next <= now {
		return
	}
	for _, sk := range e.skippers {
		sk.Skipped(now, next)
	}
	e.cyclesSkipped += next - now
	e.cycle = next
}
