package sim

import (
	"errors"
	"testing"
)

func TestEngineTickOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	mk := func(name string, phase int) {
		e.Register(phase, &FuncComponent{ComponentName: name, Fn: func(int64) {
			order = append(order, name)
		}})
	}
	mk("node-a", PhaseNode)
	mk("sw-a", PhaseSwitch)
	mk("node-b", PhaseNode)
	e.Tick()
	want := []string{"node-a", "node-b", "sw-a"}
	for i, n := range want {
		if order[i] != n {
			t.Fatalf("step order %v, want %v", order, want)
		}
	}
	if e.Now() != 1 {
		t.Errorf("Now() = %d after one tick", e.Now())
	}
}

func TestRegSemantics(t *testing.T) {
	e := NewEngine()
	r := NewReg[int](e, "r")
	if r.Valid() {
		t.Fatal("fresh register should be empty")
	}
	r.Set(42)
	if r.Valid() {
		t.Fatal("write must not be visible before commit")
	}
	e.Tick()
	v, ok := r.Get()
	if !ok || v != 42 {
		t.Fatalf("after commit Get() = %v, %v", v, ok)
	}
	// No write this cycle: the register drains.
	e.Tick()
	if r.Valid() {
		t.Error("register must clear when not rewritten")
	}
}

func TestRegDoubleWritePanics(t *testing.T) {
	e := NewEngine()
	r := NewReg[int](e, "r")
	r.Set(1)
	defer func() {
		if recover() == nil {
			t.Error("double Set in one cycle should panic")
		}
	}()
	r.Set(2)
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Register(PhaseNode, &FuncComponent{ComponentName: "c", Fn: func(int64) { count++ }})
	err := e.RunUntil(func() bool { return count >= 10 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
}

func TestRunUntilTimeout(t *testing.T) {
	e := NewEngine()
	err := e.RunUntil(func() bool { return false }, 5)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
	if e.Now() != 5 {
		t.Errorf("Now() = %d, want 5", e.Now())
	}
}

func TestRun(t *testing.T) {
	e := NewEngine()
	e.Run(7)
	if e.Now() != 7 {
		t.Errorf("Now() = %d, want 7", e.Now())
	}
}

func TestInvalidPhasePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("invalid phase should panic")
		}
	}()
	e.Register(99, &FuncComponent{ComponentName: "x", Fn: func(int64) {}})
}

func TestPipelineThroughRegisters(t *testing.T) {
	// A two-stage pipeline: producer -> reg -> consumer. The consumer must
	// see each value exactly one cycle after it was produced.
	e := NewEngine()
	r := NewReg[int](e, "pipe")
	produced := 0
	var seen []int
	e.Register(PhaseNode, &FuncComponent{ComponentName: "prod", Fn: func(now int64) {
		produced++
		r.Set(produced)
	}})
	e.Register(PhaseSwitch, &FuncComponent{ComponentName: "cons", Fn: func(now int64) {
		if v, ok := r.Get(); ok {
			seen = append(seen, v)
		}
	}})
	e.Run(4)
	want := []int{1, 2, 3}
	if len(seen) != len(want) {
		t.Fatalf("seen %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("seen %v, want %v", seen, want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(124)
	same := true
	a2 := NewRNG(123)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed must not stick at zero")
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit only %d values in 1000 draws", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) fired")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) did not fire")
		}
	}
}
