package sim

import "testing"

// ckptComp is a checkpointable component: it accumulates a value through
// a register pipeline (so snapshots must capture both its own state and
// the register's).
type ckptComp struct {
	FuncComponent
	acc int64
}

func (c *ckptComp) Snapshot() any             { return c.acc }
func (c *ckptComp) Restore(snap any)          { c.acc = snap.(int64) }
func (c *ckptComp) NextEvent(now int64) int64 { return now }

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	e := NewEngine()
	r := NewReg[int64](e, "r")
	c := &ckptComp{}
	c.ComponentName = "ckpt"
	c.Fn = func(now int64) {
		if v, ok := r.Get(); ok {
			c.acc += v
		}
		r.Set(now)
	}
	e.Register(PhaseNode, c)
	e.Run(10)

	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cycle() != 10 {
		t.Fatalf("snapshot cycle = %d, want 10", snap.Cycle())
	}

	// Fork A: run on, record the outcome.
	e.Run(20)
	accA, cycleA := c.acc, e.Now()

	// Fork B: rewind and replay; a deterministic model must reconverge
	// exactly.
	if err := e.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d after restore, want 10", e.Now())
	}
	if v, ok := r.Get(); !ok || v != 9 {
		t.Fatalf("register after restore = %d, %v; want 9, true", v, ok)
	}
	e.Run(20)
	if c.acc != accA || e.Now() != cycleA {
		t.Errorf("fork diverged: acc = %d vs %d, cycle = %d vs %d", c.acc, accA, e.Now(), cycleA)
	}

	// Restoring twice from the same snapshot must keep working (the
	// snapshot is not consumed).
	if err := e.Restore(snap); err != nil {
		t.Fatal(err)
	}
	e.Run(20)
	if c.acc != accA {
		t.Errorf("second fork diverged: acc = %d vs %d", c.acc, accA)
	}
}

func TestSnapshotRejectsUncheckpointableComponent(t *testing.T) {
	e := NewEngine()
	e.Register(PhaseNode, &FuncComponent{ComponentName: "plain", Fn: func(int64) {}})
	e.Run(5)
	if _, err := e.Snapshot(); err == nil {
		t.Fatal("Snapshot succeeded with a component that cannot checkpoint")
	}
}

func TestSnapshotRejectsMidCycleState(t *testing.T) {
	e := NewEngine()
	r := NewReg[int](e, "r")
	r.Set(1) // staged but uncommitted
	if _, err := e.Snapshot(); err == nil {
		t.Fatal("Snapshot succeeded with uncommitted register writes")
	}
}
