package sim

// Checkpoint/fork: Snapshot captures the complete simulation state —
// engine clock, register file, and every component's state — and Restore
// reinstates it on the same engine, so sweep points sharing a warmup
// prefix can fork from one warm snapshot instead of re-simulating the
// warmup per point. Snapshots are cheap in-memory value copies, not
// serialized bytes: the fork always happens inside one process, on the
// engine that produced the snapshot.

import (
	"errors"
	"fmt"
)

// Checkpointable is the optional component capability behind
// checkpoint/fork. Snapshot returns an opaque value copy of the
// component's complete mutable state; Restore reinstates a value
// previously returned by the same component's Snapshot. Components built
// on goroutines (the PE program wrappers) cannot implement it — their
// engines refuse to snapshot, and the sweep layers fall back to
// re-simulating warmup.
type Checkpointable interface {
	Snapshot() any
	Restore(snap any)
}

// regSnapFns is one register's snapshot/restore closure pair, registered
// alongside its commit function by NewReg.
type regSnapFns struct {
	snap    func() any
	restore func(any)
}

// Snapshot is a point-in-time copy of an engine's complete state. It is
// only meaningful to the engine that produced it.
type Snapshot struct {
	cycle         int64
	cyclesSkipped int64
	quiet         bool
	regs          []any
	comps         []any
}

// Cycle returns the engine clock at the time of the snapshot.
func (s *Snapshot) Cycle() int64 { return s.cycle }

// Snapshot captures the engine's state between cycles. It fails if any
// registered component does not implement Checkpointable, or if called
// mid-cycle with uncommitted register writes.
func (e *Engine) Snapshot() (*Snapshot, error) {
	if len(e.dirty) != 0 {
		return nil, errors.New("sim: snapshot with uncommitted register writes (only between cycles)")
	}
	s := &Snapshot{cycle: e.cycle, cyclesSkipped: e.cyclesSkipped, quiet: e.quiet}
	s.regs = make([]any, len(e.regSnaps))
	for i, r := range e.regSnaps {
		s.regs[i] = r.snap()
	}
	for p := 0; p < numPhases; p++ {
		for _, c := range e.phases[p] {
			cp, ok := c.(Checkpointable)
			if !ok {
				return nil, fmt.Errorf("sim: component %s is not checkpointable", c.Name())
			}
			s.comps = append(s.comps, cp.Snapshot())
		}
	}
	return s, nil
}

// Restore reinstates a snapshot previously taken from this same engine
// (same registers, same components, in the same order).
func (e *Engine) Restore(s *Snapshot) error {
	if len(s.regs) != len(e.regSnaps) {
		return fmt.Errorf("sim: snapshot has %d registers, engine has %d (foreign snapshot?)",
			len(s.regs), len(e.regSnaps))
	}
	n := 0
	for p := 0; p < numPhases; p++ {
		n += len(e.phases[p])
	}
	if len(s.comps) != n {
		return fmt.Errorf("sim: snapshot has %d components, engine has %d (foreign snapshot?)",
			len(s.comps), n)
	}
	e.cycle, e.cyclesSkipped, e.quiet = s.cycle, s.cyclesSkipped, s.quiet
	e.dirty = e.dirty[:0]
	for i, r := range e.regSnaps {
		r.restore(s.regs[i])
	}
	i := 0
	for p := 0; p < numPhases; p++ {
		for _, c := range e.phases[p] {
			c.(Checkpointable).Restore(s.comps[i])
			i++
		}
	}
	return nil
}
