package sim

import (
	"context"
	"errors"
	"testing"
)

// eventComp is a component that wakes at fixed intervals: it reports its
// next multiple-of-period cycle and counts both real steps and skip
// notifications.
type eventComp struct {
	FuncComponent
	period  int64
	steps   int64
	skipped int64
}

func newEventComp(name string, period int64) *eventComp {
	c := &eventComp{period: period}
	c.ComponentName = name
	c.Fn = func(int64) { c.steps++ }
	return c
}

func (c *eventComp) NextEvent(now int64) int64 {
	if now%c.period == 0 {
		return now
	}
	return now + (c.period - now%c.period)
}

func (c *eventComp) Skipped(from, to int64) { c.skipped += to - from }

func TestFastForwardSkipsIdleCycles(t *testing.T) {
	e := NewEngine()
	c := newEventComp("ev", 100)
	e.Register(PhaseNode, c)
	e.Run(1000)
	if e.Now() != 1000 {
		t.Fatalf("Now() = %d, want 1000", e.Now())
	}
	// The component acts at 0, 100, ..., 900: 10 real ticks, everything
	// between skipped.
	if c.steps != 10 {
		t.Errorf("steps = %d, want 10", c.steps)
	}
	if e.CyclesSkipped() != 990 {
		t.Errorf("CyclesSkipped() = %d, want 990", e.CyclesSkipped())
	}
	if c.skipped != e.CyclesSkipped() {
		t.Errorf("Skipped notifications cover %d cycles, engine skipped %d", c.skipped, e.CyclesSkipped())
	}
}

func TestFastForwardDisabled(t *testing.T) {
	e := NewEngine()
	e.SetFastForward(false)
	c := newEventComp("ev", 100)
	e.Register(PhaseNode, c)
	e.Run(1000)
	if c.steps != 1000 || e.CyclesSkipped() != 0 {
		t.Errorf("with fast-forward off: steps = %d (want 1000), skipped = %d (want 0)", c.steps, e.CyclesSkipped())
	}
}

func TestFastForwardNeedsAllEventers(t *testing.T) {
	e := NewEngine()
	e.Register(PhaseNode, newEventComp("ev", 100))
	// A component without NextEvent makes the whole engine unskippable.
	e.Register(PhaseNode, &FuncComponent{ComponentName: "plain", Fn: func(int64) {}})
	e.Run(1000)
	if e.CyclesSkipped() != 0 {
		t.Errorf("CyclesSkipped() = %d with a capability-less component registered", e.CyclesSkipped())
	}
}

func TestFastForwardVetoedByRegisterTraffic(t *testing.T) {
	e := NewEngine()
	r := NewReg[int](e, "r")
	c := newEventComp("ev", 100)
	c.Fn = func(now int64) {
		c.steps++
		if now < 50 {
			r.Set(int(now)) // keeps the engine non-quiet for 50 cycles
		}
	}
	e.Register(PhaseNode, c)
	e.Run(100)
	// Cycles 1..50 see a committed register (engine not quiet), so ticking
	// must continue despite NextEvent pointing at cycle 100; only after the
	// pipeline drains may the engine jump.
	if c.steps < 51 {
		t.Errorf("steps = %d, want >= 51 (no skipping while registers are live)", c.steps)
	}
	if e.CyclesSkipped() == 0 {
		t.Error("engine never skipped after the register traffic drained")
	}
}

func TestFastForwardRespectsRunBoundary(t *testing.T) {
	e := NewEngine()
	e.Register(PhaseNode, newEventComp("ev", 1000))
	e.Run(300)
	if e.Now() != 300 {
		t.Fatalf("Now() = %d, want exactly 300 (jump must clamp at the run boundary)", e.Now())
	}
	e.Run(300)
	if e.Now() != 600 {
		t.Fatalf("Now() = %d, want 600", e.Now())
	}
}

func TestRunUntilCtxFastForward(t *testing.T) {
	e := NewEngine()
	c := newEventComp("ev", 500)
	e.Register(PhaseNode, c)
	err := e.RunUntilCtx(context.Background(), func() bool { return e.Now() >= 1500 }, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if e.Now() < 1500 || e.CyclesSkipped() == 0 {
		t.Errorf("Now() = %d, skipped = %d", e.Now(), e.CyclesSkipped())
	}
}

// TestRunCtxCancellationAcrossShortRuns is the regression test for the
// context-poll bug: the poll countdown used to be local to each run call,
// so a driver issuing many short runs (each shorter than the poll
// interval) never observed cancellation. The countdown now lives on the
// engine and carries across calls.
func TestRunCtxCancellationAcrossShortRuns(t *testing.T) {
	e := NewEngine()
	e.Register(PhaseNode, &FuncComponent{ComponentName: "busy", Fn: func(int64) {}})
	ctx, cancel := context.WithCancel(context.Background())
	if err := e.RunCtx(ctx, 10); err != nil {
		t.Fatal(err)
	}
	cancel()
	start := e.Now()
	var err error
	calls := 0
	for calls < 100 {
		calls++
		if err = e.RunCtx(ctx, 100); err != nil {
			break
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation never observed across %d short runs (err = %v)", calls, err)
	}
	if ran := e.Now() - start; ran > ctxCheckInterval {
		t.Errorf("ran %d cycles after cancellation, want <= %d", ran, ctxCheckInterval)
	}
}
