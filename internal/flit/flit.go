// Package flit defines the MEDEA network flit and its three-level protocol
// format (Fig. 5 of the paper):
//
//	level 1 (network):     V, X, Y                 — used by NoC switches
//	level 2 (bridge):      TYPE, SUBTYPE, SEQ-NUM  — memory-mapped transactions
//	level 3 (application): BURST, SRC-ID, DATA     — written/read by software
//
// The struct form is what the simulator passes around; Codec packs and
// unpacks the hardware bit layout so the format is round-trip tested
// exactly as an RTL implementation would carry it.
package flit

import "fmt"

// Type is the 3-bit transaction type field (level 2). Seven values are
// defined by the paper: six shared-memory transaction types plus one for
// generic message-passing packets.
type Type uint8

const (
	// SingleRead requests one 32-bit word from the MPMMU.
	SingleRead Type = iota
	// SingleWrite writes one 32-bit word to the MPMMU.
	SingleWrite
	// BlockRead requests a full cache line (4 words) from the MPMMU.
	BlockRead
	// BlockWrite writes a full cache line (4 words) to the MPMMU.
	BlockWrite
	// Lock requests exclusive ownership of a shared-memory word.
	Lock
	// Unlock releases exclusive ownership of a shared-memory word.
	Unlock
	// Message is a generic message-passing flit (TIE port traffic).
	Message

	numTypes = iota
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case SingleRead:
		return "single-read"
	case SingleWrite:
		return "single-write"
	case BlockRead:
		return "block-read"
	case BlockWrite:
		return "block-write"
	case Lock:
		return "lock"
	case Unlock:
		return "unlock"
	case Message:
		return "message"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Valid reports whether t is one of the seven defined transaction types.
func (t Type) Valid() bool { return t < numTypes }

// IsSharedMemory reports whether t belongs to the shared-memory protocol
// (everything except Message).
func (t Type) IsSharedMemory() bool { return t < Message }

// SubType is the 2-bit sub-type field. For shared-memory transactions it
// distinguishes Ack/Nack from Address/Data payloads; for message flits it
// distinguishes request tokens from generic data (the "Data/Req bit").
type SubType uint8

const (
	// SubAck marks an acknowledge (grant / completion) flit.
	SubAck SubType = iota
	// SubNack marks a negative acknowledge flit.
	SubNack
	// SubAddr marks a flit whose payload is an address (a request token).
	SubAddr
	// SubData marks a flit whose payload is data.
	SubData
)

// Message-passing aliases for the Data/Req bit: request packets (used for
// synchronization tokens) reuse the address encoding, data packets the data
// encoding.
const (
	// SubMsgReq marks a message flit belonging to a request/sync packet.
	SubMsgReq = SubAddr
	// SubMsgData marks a message flit belonging to a generic data packet.
	SubMsgData = SubData
)

// String implements fmt.Stringer.
func (s SubType) String() string {
	switch s {
	case SubAck:
		return "ack"
	case SubNack:
		return "nack"
	case SubAddr:
		return "addr/req"
	case SubData:
		return "data"
	}
	return fmt.Sprintf("sub(%d)", uint8(s))
}

// Field widths of the packed format. X/Y widths depend on network size and
// are configured in Codec; the remaining widths are fixed by the paper.
const (
	TypeBits   = 3
	SubBits    = 2
	SeqBits    = 4
	BurstBits  = 2
	SrcBits    = 4
	PktIdxBits = 2
	DataBits   = 32

	// MaxSeq is the largest sequence number (seq field is 4 bits), which
	// bounds the size of a logical packet to 16 flits.
	MaxSeq = 1<<SeqBits - 1
	// MaxLogicalPacket is the maximum number of flits in one logical
	// packet, bounded by the sequence-number field.
	MaxLogicalPacket = 1 << SeqBits
	// MaxSrc is the largest encodable source id (4 bits), which bounds the
	// system to 16 nodes, matching the paper's 4x4 folded torus.
	MaxSrc = 1<<SrcBits - 1
	// NumPktIdx is the size of the receive-side packet-buffer ring
	// addressed by the packet-index field.
	NumPktIdx = 1 << PktIdxBits
)

// burstCodes maps the 2-bit burst field to a logical packet length in
// flits. The paper states the field is 2 bits wide and "indicates how many
// flits belonging to the same logic packet must be expected"; with the
// 4-bit sequence number allowing packets up to 16 flits, the four codes
// cover the packet sizes the system uses (1-flit tokens, 4-flit cache
// lines, and 8/16-flit bulk data fragments).
var burstCodes = [4]int{1, 4, 8, 16}

// EncodeBurst returns the 2-bit code for a logical packet of n flits.
// n must be one of 1, 4, 8, 16.
func EncodeBurst(n int) (uint8, error) {
	for code, v := range burstCodes {
		if v == n {
			return uint8(code), nil
		}
	}
	return 0, fmt.Errorf("flit: invalid logical packet length %d (want 1, 4, 8 or 16)", n)
}

// DecodeBurst returns the logical packet length in flits for a 2-bit code.
func DecodeBurst(code uint8) int { return burstCodes[code&3] }

// RoundUpBurst returns the smallest encodable packet length >= n.
func RoundUpBurst(n int) int {
	for _, v := range burstCodes {
		if v >= n {
			return v
		}
	}
	return MaxLogicalPacket
}

// Flit is one network flow-control unit. The exported fields up to Data are
// part of the hardware format; the Meta fields are simulation-only metadata
// used for statistics and integrity checking and are never packed.
type Flit struct {
	// Network level (level 1).
	DstX, DstY uint8

	// Bridge level (level 2).
	Type Type
	Sub  SubType
	Seq  uint8 // sequence number within the logical packet (4 bits)

	// Application level (level 3).
	Burst uint8 // 2-bit code, see EncodeBurst
	Src   uint8 // source node id (4 bits)
	// PktIdx is a rotating 2-bit logical-packet index that lets the
	// receiver assign out-of-order flits of *consecutive* packets from
	// the same source to distinct reassembly buffers. The paper's format
	// (Fig. 5) uses 52 of the 64 flit bits; this reproduction spends two
	// of the reserved bits here, generalizing the paper's double buffer
	// to a four-buffer ring (see DESIGN.md).
	PktIdx uint8
	Data   uint32 // 32-bit payload

	Meta Meta
}

// Meta carries simulation-only bookkeeping. It is not part of the hardware
// flit format and is ignored by the Codec.
type Meta struct {
	InjectCycle int64  // cycle the flit entered the network
	Hops        int32  // links traversed so far
	Deflections int32  // unproductive hops so far
	PacketID    uint64 // unique logical-packet id for integrity checks
	// VC is the virtual channel the flit occupies on its current link.
	// Only the wormhole router uses it (a real implementation carries it
	// as link sideband wiring, not in the flit format); all other routers
	// leave it zero.
	VC uint8
}

// BurstLen returns the logical packet length in flits encoded in the flit's
// burst field.
func (f Flit) BurstLen() int { return DecodeBurst(f.Burst) }

// String implements fmt.Stringer.
func (f Flit) String() string {
	return fmt.Sprintf("flit{->(%d,%d) %v/%v seq=%d burst=%d src=%d data=%#x}",
		f.DstX, f.DstY, f.Type, f.Sub, f.Seq, f.BurstLen(), f.Src, f.Data)
}
