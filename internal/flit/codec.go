package flit

import "fmt"

// Codec packs and unpacks flits into the on-wire bit layout of Fig. 5.
// The X/Y coordinate widths depend on the network size (2+2 bits for the
// paper's 4x4 folded torus); all other field widths are fixed.
//
// Bit layout, LSB first:
//
//	[0]                valid bit
//	[1 .. xBits]       destination X
//	[.. +yBits]        destination Y
//	[.. +3]            type
//	[.. +2]            sub-type
//	[.. +4]            sequence number
//	[.. +2]            burst size code
//	[.. +4]            source id
//	[.. +2]            packet index
//	[.. +32]           data payload
type Codec struct {
	XBits, YBits uint8
}

// NewCodec returns a codec for a network with the given torus dimensions.
func NewCodec(width, height int) (Codec, error) {
	xb := bitsFor(width)
	yb := bitsFor(height)
	c := Codec{XBits: xb, YBits: yb}
	if c.TotalBits() > 64 {
		return Codec{}, fmt.Errorf("flit: %dx%d torus needs %d flit bits (>64)", width, height, c.TotalBits())
	}
	return c, nil
}

func bitsFor(n int) uint8 {
	if n <= 1 {
		return 1
	}
	b := uint8(0)
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// TotalBits returns the number of bits in the packed representation,
// including the valid bit.
func (c Codec) TotalBits() int {
	return 1 + int(c.XBits) + int(c.YBits) + TypeBits + SubBits + SeqBits + BurstBits + SrcBits + PktIdxBits + DataBits
}

// Pack encodes a flit into a 64-bit word with the valid bit set.
func (c Codec) Pack(f Flit) (uint64, error) {
	if f.DstX >= 1<<c.XBits {
		return 0, fmt.Errorf("flit: dstX %d does not fit in %d bits", f.DstX, c.XBits)
	}
	if f.DstY >= 1<<c.YBits {
		return 0, fmt.Errorf("flit: dstY %d does not fit in %d bits", f.DstY, c.YBits)
	}
	if !f.Type.Valid() {
		return 0, fmt.Errorf("flit: invalid type %d", f.Type)
	}
	if f.Seq > MaxSeq {
		return 0, fmt.Errorf("flit: seq %d does not fit in %d bits", f.Seq, SeqBits)
	}
	if f.Burst > 3 {
		return 0, fmt.Errorf("flit: burst code %d does not fit in %d bits", f.Burst, BurstBits)
	}
	if f.Src > MaxSrc {
		return 0, fmt.Errorf("flit: src %d does not fit in %d bits", f.Src, SrcBits)
	}
	if f.PktIdx >= NumPktIdx {
		return 0, fmt.Errorf("flit: packet index %d does not fit in %d bits", f.PktIdx, PktIdxBits)
	}
	var w uint64
	pos := uint(0)
	put := func(v uint64, bits uint) {
		w |= (v & (1<<bits - 1)) << pos
		pos += bits
	}
	put(1, 1) // valid
	put(uint64(f.DstX), uint(c.XBits))
	put(uint64(f.DstY), uint(c.YBits))
	put(uint64(f.Type), TypeBits)
	put(uint64(f.Sub), SubBits)
	put(uint64(f.Seq), SeqBits)
	put(uint64(f.Burst), BurstBits)
	put(uint64(f.Src), SrcBits)
	put(uint64(f.PktIdx), PktIdxBits)
	put(uint64(f.Data), DataBits)
	return w, nil
}

// Unpack decodes a 64-bit word into a flit. It reports ok=false when the
// valid bit is clear (an idle link), in which case the flit is zero.
func (c Codec) Unpack(w uint64) (f Flit, ok bool) {
	pos := uint(0)
	get := func(bits uint) uint64 {
		v := (w >> pos) & (1<<bits - 1)
		pos += bits
		return v
	}
	if get(1) == 0 {
		return Flit{}, false
	}
	f.DstX = uint8(get(uint(c.XBits)))
	f.DstY = uint8(get(uint(c.YBits)))
	f.Type = Type(get(TypeBits))
	f.Sub = SubType(get(SubBits))
	f.Seq = uint8(get(SeqBits))
	f.Burst = uint8(get(BurstBits))
	f.Src = uint8(get(SrcBits))
	f.PktIdx = uint8(get(PktIdxBits))
	f.Data = uint32(get(DataBits))
	return f, true
}
