package flit

import (
	"testing"
	"testing/quick"
)

func TestTypeStrings(t *testing.T) {
	cases := map[Type]string{
		SingleRead:  "single-read",
		SingleWrite: "single-write",
		BlockRead:   "block-read",
		BlockWrite:  "block-write",
		Lock:        "lock",
		Unlock:      "unlock",
		Message:     "message",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
		if !typ.Valid() {
			t.Errorf("Type %v should be valid", typ)
		}
	}
	if Type(7).Valid() {
		t.Error("Type(7) should be invalid")
	}
}

func TestIsSharedMemory(t *testing.T) {
	for typ := SingleRead; typ <= Unlock; typ++ {
		if !typ.IsSharedMemory() {
			t.Errorf("%v should be shared-memory", typ)
		}
	}
	if Message.IsSharedMemory() {
		t.Error("Message should not be shared-memory")
	}
}

func TestBurstCodes(t *testing.T) {
	for _, n := range []int{1, 4, 8, 16} {
		code, err := EncodeBurst(n)
		if err != nil {
			t.Fatalf("EncodeBurst(%d): %v", n, err)
		}
		if got := DecodeBurst(code); got != n {
			t.Errorf("DecodeBurst(EncodeBurst(%d)) = %d", n, got)
		}
	}
	for _, n := range []int{0, 2, 3, 5, 7, 9, 15, 17, 32} {
		if _, err := EncodeBurst(n); err == nil {
			t.Errorf("EncodeBurst(%d) should fail", n)
		}
	}
}

func TestRoundUpBurst(t *testing.T) {
	cases := map[int]int{1: 1, 2: 4, 3: 4, 4: 4, 5: 8, 8: 8, 9: 16, 16: 16, 20: 16}
	for in, want := range cases {
		if got := RoundUpBurst(in); got != want {
			t.Errorf("RoundUpBurst(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSubTypeAliases(t *testing.T) {
	if SubMsgReq != SubAddr {
		t.Error("SubMsgReq must alias SubAddr (the Data/Req bit)")
	}
	if SubMsgData != SubData {
		t.Error("SubMsgData must alias SubData")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	c, err := NewCodec(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := Flit{
		DstX: 3, DstY: 1,
		Type: BlockRead, Sub: SubData, Seq: 9, Burst: 1,
		Src: 14, Data: 0xDEADBEEF,
	}
	w, err := c.Pack(f)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Unpack(w)
	if !ok {
		t.Fatal("valid bit lost")
	}
	if got != f {
		t.Errorf("round trip mismatch: got %+v want %+v", got, f)
	}
}

func TestCodecIdleWord(t *testing.T) {
	c, _ := NewCodec(4, 4)
	if _, ok := c.Unpack(0); ok {
		t.Error("zero word should be invalid (idle link)")
	}
}

func TestCodecFieldValidation(t *testing.T) {
	c, _ := NewCodec(4, 4)
	bad := []Flit{
		{DstX: 4},       // X out of range for 2 bits
		{DstY: 4},       // Y out of range
		{Type: Type(7)}, // undefined type
		{Seq: 16},       // seq field is 4 bits
		{Burst: 4},      // burst field is 2 bits
		{Src: 16},       // src field is 4 bits
		{PktIdx: 4},     // packet index is 2 bits
	}
	for i, f := range bad {
		if _, err := c.Pack(f); err == nil {
			t.Errorf("case %d: Pack(%+v) should fail", i, f)
		}
	}
}

func TestCodecTotalBits(t *testing.T) {
	c, _ := NewCodec(4, 4)
	// 1 valid + 2 X + 2 Y + 3 type + 2 sub + 4 seq + 2 burst + 4 src +
	// 2 pkt-idx + 32 data. The paper's Fig. 5 layout is 52 bits; this
	// reproduction spends 2 of the 12 reserved bits of the 64-bit flit
	// on the packet index.
	if got := c.TotalBits(); got != 54 {
		t.Errorf("4x4 codec TotalBits = %d, want 54", got)
	}
}

func TestCodecTooWide(t *testing.T) {
	if _, err := NewCodec(1<<10, 1<<10); err == nil {
		t.Error("a torus needing >64 flit bits must be rejected")
	}
}

// TestCodecRoundTripQuick property-tests pack/unpack identity over the
// whole legal field space.
func TestCodecRoundTripQuick(t *testing.T) {
	c, _ := NewCodec(4, 4)
	fn := func(x, y, typ, sub, seq, burst, src, idx uint8, data uint32) bool {
		f := Flit{
			DstX: x & 3, DstY: y & 3,
			Type: Type(typ % 7), Sub: SubType(sub & 3),
			Seq: seq & 15, Burst: burst & 3,
			Src: src & 15, PktIdx: idx & 3, Data: data,
		}
		w, err := c.Pack(f)
		if err != nil {
			return false
		}
		got, ok := c.Unpack(w)
		return ok && got == f
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBurstLen(t *testing.T) {
	f := Flit{Burst: 1}
	if f.BurstLen() != 4 {
		t.Errorf("BurstLen with code 1 = %d, want 4", f.BurstLen())
	}
}

func TestFlitString(t *testing.T) {
	f := Flit{DstX: 1, DstY: 2, Type: Message, Sub: SubMsgData, Src: 3}
	if s := f.String(); s == "" {
		t.Error("String() should not be empty")
	}
}
