package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 100} {
		counts := make([]int32, 37)
		ForEach(len(counts), workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	if ran {
		t.Error("fn ran with n=0")
	}
}

func TestForEachCtxCoversEveryIndexOnce(t *testing.T) {
	counts := make([]int32, 37)
	err := ForEachCtx(context.Background(), len(counts), 3, func(i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	})
	if err != nil {
		t.Fatalf("ForEachCtx: %v", err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Errorf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachCtxCancellationStopsDispatch(t *testing.T) {
	// One worker, cancel from inside the third job: jobs 0-2 complete,
	// jobs 3+ never start, and the error reports the partial count.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	err := ForEachCtx(ctx, 100, 1, func(i int) error {
		ran.Add(1)
		if i == 2 {
			cancel()
		}
		return nil
	})
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("err must unwrap to context.Canceled")
	}
	if ce.Total != 100 {
		t.Errorf("Total = %d, want 100", ce.Total)
	}
	// The dispatch select can lose a few races against an already-waiting
	// worker, but the sweep must stop near-immediately, nowhere close to
	// finishing the 100-job grid.
	if got := int(ran.Load()); got < 3 || got > 20 {
		t.Errorf("%d jobs ran after cancel at job 2, want barely more than 3", got)
	}
	if ce.Done != int(ran.Load()) {
		t.Errorf("Done = %d, but %d jobs completed", ce.Done, ran.Load())
	}
}

func TestForEachCtxPreCanceledStopsAtOnce(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEachCtx(ctx, 100, 2, func(int) error { ran.Add(1); return nil })
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	// Each dispatch iteration is a select between a ready Done channel and
	// a possibly-ready worker, so a short run of jobs can slip through on
	// lost coin flips — but the sweep must die out long before 100 jobs.
	if got := int(ran.Load()); got > 20 {
		t.Errorf("%d jobs ran under a pre-canceled context", got)
	}
	if ce.Done != int(ran.Load()) {
		t.Errorf("Done = %d, but %d jobs completed", ce.Done, ran.Load())
	}
}

func TestForEachCtxPanicIsolatedPerJob(t *testing.T) {
	var ran atomic.Int32
	err := ForEachCtx(context.Background(), 8, 2, func(i int) error {
		ran.Add(1)
		if i == 3 {
			panic("poisoned config")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 3 || pe.Value != "poisoned config" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = {Index:%d Value:%v stack:%d bytes}", pe.Index, pe.Value, len(pe.Stack))
	}
	// The panicking job must not have taken its worker down with it.
	if got := int(ran.Load()); got != 8 {
		t.Errorf("%d jobs ran, want all 8 despite the panic", got)
	}
}

func TestForEachCtxErrorsJoinInIndexOrder(t *testing.T) {
	fail := map[int]bool{5: true, 1: true, 7: true}
	err := ForEachCtx(context.Background(), 9, 4, func(i int) error {
		if fail[i] {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("want a joined error")
	}
	msg := err.Error()
	i1 := strings.Index(msg, "job 1 failed")
	i5 := strings.Index(msg, "job 5 failed")
	i7 := strings.Index(msg, "job 7 failed")
	if i1 < 0 || i5 < 0 || i7 < 0 {
		t.Fatalf("missing failures in %q", msg)
	}
	if !(i1 < i5 && i5 < i7) {
		t.Errorf("errors out of index order in %q", msg)
	}
}

func TestForEachRepanics(t *testing.T) {
	// The legacy shim restores crash-on-bug semantics: the recovered value
	// surfaces as a panic in the caller, not as a swallowed error.
	defer func() {
		if r := recover(); r != "legacy boom" {
			t.Errorf("recovered %v, want the original panic value", r)
		}
	}()
	ForEach(4, 2, func(i int) {
		if i == 2 {
			panic("legacy boom")
		}
	})
	t.Error("ForEach returned instead of re-panicking")
}
