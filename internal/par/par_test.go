package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 100} {
		counts := make([]int32, 37)
		ForEach(len(counts), workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	if ran {
		t.Error("fn ran with n=0")
	}
}
