// Package par provides the fixed worker-pool parallel-for shared by the
// sweep drivers (dse.Sweep, scenario.Run): a bounded number of goroutines
// pulls indices from a channel, so the goroutine count stays constant no
// matter how large the job grid grows.
//
// ForEachCtx is the robust entry point: it stops dispatching new jobs when
// the context is canceled (in-flight jobs finish; the sweep stops at job
// granularity), converts a panicking job into a per-job *PanicError
// instead of crashing the process, and reports partial completion through
// *CanceledError. ForEach is the legacy fire-and-forget shim over it.
package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// PanicError is the structured error a panicking job is converted into:
// the job index, the recovered value and the goroutine stack at the point
// of the panic. The worker that recovered it keeps serving the remaining
// jobs — one poisoned configuration fails its own sweep point only.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("par: job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// CanceledError reports a sweep stopped by context cancellation: Done of
// Total jobs completed before the stop. It unwraps to the context's error
// so errors.Is(err, context.Canceled/DeadlineExceeded) works.
type CanceledError struct {
	Done  int
	Total int
	Err   error
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("par: canceled after %d of %d jobs: %v", e.Done, e.Total, e.Err)
}

// Unwrap exposes the underlying context error.
func (e *CanceledError) Unwrap() error { return e.Err }

// ForEach runs fn(i) for every i in [0, n) on a fixed pool of workers
// goroutines (workers <= 0 means GOMAXPROCS). It returns when all calls
// have completed. fn must synchronize any shared state itself; writing
// each i to its own slot of a pre-sized slice needs no synchronization.
func ForEach(n, workers int, fn func(int)) {
	err := ForEachCtx(context.Background(), n, workers, func(i int) error {
		fn(i)
		return nil
	})
	// The only possible error here is a recovered panic (the context is
	// never canceled and fn returns no errors); re-panic it so legacy
	// callers keep the crash-on-bug semantics they were written against.
	var pe *PanicError
	if errors.As(err, &pe) {
		panic(pe.Value)
	}
}

// ForEachCtx runs fn(i) for every i in [0, n) on a fixed pool of workers
// goroutines (workers <= 0 means GOMAXPROCS) and returns after every
// started call has finished.
//
// Cancellation is cooperative at job granularity: once ctx is canceled no
// further jobs start, in-flight jobs run to completion (long-running jobs
// should additionally watch ctx themselves), and the returned error is a
// *CanceledError wrapping ctx.Err(), joined with any per-job errors.
//
// A job that panics does not crash the process: the panic is recovered in
// the worker and recorded as a *PanicError for that index, and the worker
// moves on to the next job. Per-job errors (returned or recovered) are
// joined in index order, so the combined error is deterministic no matter
// how the jobs interleaved.
func ForEachCtx(ctx context.Context, n, workers int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	done := make([]bool, n)
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				errs[i] = runJob(i, fn)
				done[i] = true
			}
		}()
	}
	canceled := false
dispatch:
	for i := 0; i < n; i++ {
		select {
		case ch <- i:
		case <-ctx.Done():
			canceled = true
			break dispatch
		}
	}
	close(ch)
	wg.Wait()

	// Join per-job errors in index order: deterministic regardless of the
	// execution interleaving.
	var all []error
	completed := 0
	for i := 0; i < n; i++ {
		if done[i] && errs[i] == nil {
			completed++
		}
		if errs[i] != nil {
			all = append(all, errs[i])
		}
	}
	if canceled {
		all = append([]error{&CanceledError{Done: completed, Total: n, Err: ctx.Err()}}, all...)
	}
	return errors.Join(all...)
}

// runJob executes one job with panic isolation.
func runJob(i int, fn func(int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}
