// Package par provides the fixed worker-pool parallel-for shared by the
// sweep drivers (dse.Sweep, scenario.Run): a bounded number of goroutines
// pulls indices from a channel, so the goroutine count stays constant no
// matter how large the job grid grows.
package par

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on a fixed pool of workers
// goroutines (workers <= 0 means GOMAXPROCS). It returns when all calls
// have completed. fn must synchronize any shared state itself; writing
// each i to its own slot of a pre-sized slice needs no synchronization.
func ForEach(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}
