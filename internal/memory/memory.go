// Package memory models the external DDR memory behind the MPMMU: a sparse
// byte-addressable store with a simple latency model (fixed access cost
// plus a per-word streaming cost). The store moves real bytes so that the
// workloads running on the simulated system produce real, checkable
// numerical results.
package memory

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/stats"
)

const pageSize = 1 << 12

// LatencyModel describes DDR timing as seen by the MPMMU.
type LatencyModel struct {
	// AccessCycles is the fixed cost of starting an access (row activate,
	// controller overhead).
	AccessCycles int64
	// PerWordCycles is the additional cost per 32-bit word transferred.
	PerWordCycles int64
}

// DefaultLatency is the timing used unless a configuration overrides it:
// a DDR access costs ~50 core cycles plus one cycle per streamed word,
// a typical ratio for the paper's 2010-era on-chip/off-chip gap.
var DefaultLatency = LatencyModel{AccessCycles: 50, PerWordCycles: 1}

// Cost returns the cycle cost of transferring words 32-bit words.
func (m LatencyModel) Cost(words int) int64 {
	return m.AccessCycles + m.PerWordCycles*int64(words)
}

// DDR is a sparse byte-addressable memory.
type DDR struct {
	Latency LatencyModel
	pages   map[uint32]*[pageSize]byte

	Reads  stats.Counter // word reads
	Writes stats.Counter // word writes
}

// NewDDR returns an empty memory with the given latency model.
func NewDDR(lat LatencyModel) *DDR {
	return &DDR{Latency: lat, pages: make(map[uint32]*[pageSize]byte)}
}

func (d *DDR) page(addr uint32) *[pageSize]byte {
	base := addr &^ (pageSize - 1)
	p := d.pages[base]
	if p == nil {
		p = new([pageSize]byte)
		d.pages[base] = p
	}
	return p
}

// ReadInto copies len(dst) bytes starting at addr into dst without
// allocating, chunking by page so the page lookup runs once per page
// touched rather than once per byte.
func (d *DDR) ReadInto(addr uint32, dst []byte) {
	d.Reads.Add(int64((len(dst) + 3) / 4))
	for len(dst) > 0 {
		off := int(addr & (pageSize - 1))
		n := copy(dst, d.page(addr)[off:])
		addr += uint32(n)
		dst = dst[n:]
	}
}

// Read copies n bytes starting at addr into a fresh slice. Hot paths
// should use ReadInto.
func (d *DDR) Read(addr uint32, n int) []byte {
	out := make([]byte, n)
	d.ReadInto(addr, out)
	return out
}

// Write stores the bytes of b starting at addr.
func (d *DDR) Write(addr uint32, b []byte) {
	d.Writes.Add(int64((len(b) + 3) / 4))
	for len(b) > 0 {
		off := int(addr & (pageSize - 1))
		n := copy(d.page(addr)[off:], b)
		addr += uint32(n)
		b = b[n:]
	}
}

// ReadWord reads a 32-bit little-endian word. addr must be 4-aligned.
func (d *DDR) ReadWord(addr uint32) uint32 {
	mustAlign(addr, 4)
	return binary.LittleEndian.Uint32(d.Read(addr, 4))
}

// WriteWord writes a 32-bit little-endian word. addr must be 4-aligned.
func (d *DDR) WriteWord(addr uint32, v uint32) {
	mustAlign(addr, 4)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	d.Write(addr, b[:])
}

// ReadFloat64 reads an 8-byte IEEE-754 double. addr must be 8-aligned.
func (d *DDR) ReadFloat64(addr uint32) float64 {
	mustAlign(addr, 8)
	return math.Float64frombits(binary.LittleEndian.Uint64(d.Read(addr, 8)))
}

// WriteFloat64 writes an 8-byte IEEE-754 double. addr must be 8-aligned.
func (d *DDR) WriteFloat64(addr uint32, v float64) {
	mustAlign(addr, 8)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	d.Write(addr, b[:])
}

func mustAlign(addr uint32, n uint32) {
	if addr%n != 0 {
		panic(fmt.Sprintf("memory: address %#x not %d-aligned", addr, n))
	}
}
