package memory

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadWriteBytes(t *testing.T) {
	d := NewDDR(DefaultLatency)
	data := []byte{1, 2, 3, 4, 5}
	d.Write(0x1000, data)
	if got := d.Read(0x1000, 5); !bytes.Equal(got, data) {
		t.Errorf("got %v", got)
	}
	// Untouched memory reads zero.
	if got := d.Read(0x2000, 4); !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Errorf("fresh memory not zero: %v", got)
	}
}

func TestCrossPageAccess(t *testing.T) {
	d := NewDDR(DefaultLatency)
	addr := uint32(0x1000 - 2) // straddles a 4 KiB page boundary
	d.Write(addr, []byte{9, 8, 7, 6})
	if got := d.Read(addr, 4); !bytes.Equal(got, []byte{9, 8, 7, 6}) {
		t.Errorf("cross-page round trip failed: %v", got)
	}
}

func TestWordAccessors(t *testing.T) {
	d := NewDDR(DefaultLatency)
	d.WriteWord(0x100, 0xDEADBEEF)
	if got := d.ReadWord(0x100); got != 0xDEADBEEF {
		t.Errorf("got %#x", got)
	}
}

func TestFloat64Accessors(t *testing.T) {
	d := NewDDR(DefaultLatency)
	d.WriteFloat64(0x200, 3.14159)
	if got := d.ReadFloat64(0x200); got != 3.14159 {
		t.Errorf("got %v", got)
	}
}

func TestAlignmentPanics(t *testing.T) {
	d := NewDDR(DefaultLatency)
	for _, fn := range []func(){
		func() { d.ReadWord(2) },
		func() { d.WriteWord(2, 0) },
		func() { d.ReadFloat64(4) },
		func() { d.WriteFloat64(12, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unaligned access should panic")
				}
			}()
			fn()
		}()
	}
}

func TestLatencyCost(t *testing.T) {
	m := LatencyModel{AccessCycles: 50, PerWordCycles: 2}
	if got := m.Cost(4); got != 58 {
		t.Errorf("Cost(4) = %d, want 58", got)
	}
}

func TestAccessCounters(t *testing.T) {
	d := NewDDR(DefaultLatency)
	d.WriteWord(0, 1)
	d.ReadWord(0)
	d.Read(0, 16)
	if d.Writes.Value() != 1 {
		t.Errorf("writes = %d", d.Writes.Value())
	}
	if d.Reads.Value() != 1+4 {
		t.Errorf("reads = %d", d.Reads.Value())
	}
}

// TestSparseRoundTripQuick property-tests that writes at arbitrary
// addresses read back identically.
func TestSparseRoundTripQuick(t *testing.T) {
	d := NewDDR(DefaultLatency)
	fn := func(addr uint32, val uint32) bool {
		a := addr &^ 3
		d.WriteWord(a, val)
		return d.ReadWord(a) == val
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
