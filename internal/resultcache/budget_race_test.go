package resultcache

import (
	"fmt"
	"sync"
	"testing"
)

// TestMemoryStoreBudgetRace hammers the LRU byte-budget accounting from
// many goroutines mixing fitting, oversized and same-key-resized Puts
// (run it with -race; the CI race job does). The invariants: the byte
// counter never goes negative, never settles above the budget, and
// eviction is not wedged — a fresh entry after the storm still lands and
// still evicts.
func TestMemoryStoreBudgetRace(t *testing.T) {
	const budget = 256
	m := NewMemoryStore(budget)
	small := make([]byte, 32)
	large := make([]byte, budget/2)
	oversized := make([]byte, budget+1) // larger than the whole budget: never stored

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// A handful of shared keys, so goroutines race the
				// same-key resize path (small <-> large) as well as
				// insert/evict.
				key := NewKey("race").Int("k", int64((g+i)%6)).Sum()
				switch i % 3 {
				case 0:
					m.Put(key, small)
				case 1:
					m.Put(key, large)
				case 2:
					m.Put(NewKey("race").Int("big", int64(i)).Sum(), oversized)
				}
				if used := m.UsedBytes(); used < 0 {
					t.Errorf("byte counter went negative: %d", used)
					return
				}
				m.Get(key)
			}
		}(g)
	}
	wg.Wait()

	if used := m.UsedBytes(); used < 0 || used > budget {
		t.Errorf("settled byte counter %d outside [0, %d]", used, budget)
	}
	// Eviction must still work: filling the budget with fresh entries
	// succeeds and pushes old ones out rather than wedging.
	evBefore := m.Evictions()
	for i := 0; i < 16; i++ {
		key := NewKey("race").Str("fresh", fmt.Sprint(i)).Sum()
		m.Put(key, large)
		if got, ok := m.Get(key); !ok || len(got) != len(large) {
			t.Fatalf("fresh entry %d not stored after the storm (ok=%v)", i, ok)
		}
	}
	if m.Evictions() == evBefore {
		t.Error("no evictions while overfilling the budget: eviction wedged")
	}
	if used := m.UsedBytes(); used < 0 || used > budget {
		t.Errorf("post-refill byte counter %d outside [0, %d]", used, budget)
	}
}

// TestAddExternalBubbles: a worker's Stats folded into a scope must land
// in the scope and every ancestor, exactly as locally-counted traffic
// does, and stay nil-safe (nil is the documented cache-off mode).
func TestAddExternalBubbles(t *testing.T) {
	root := New(NewMemoryStore(0))
	scope := root.Scope()
	inner := scope.Scope()

	inner.AddExternal(Stats{Hits: 3, Misses: 2, Dedups: 1, Computes: 2})
	want := Stats{Hits: 3, Misses: 2, Dedups: 1, Computes: 2}
	for name, c := range map[string]*Cache{"inner": inner, "scope": scope, "root": root} {
		if got := c.Stats(); got != want {
			t.Errorf("%s stats = %+v, want %+v", name, got, want)
		}
	}

	// A sibling scope must not see the delta.
	if got := root.Scope().Stats(); got != (Stats{}) {
		t.Errorf("sibling scope stats = %+v, want zero", got)
	}

	var nilCache *Cache
	nilCache.AddExternal(Stats{Hits: 1}) // must not panic
	if got := nilCache.Stats(); got != (Stats{}) {
		t.Errorf("nil cache stats = %+v", got)
	}
}
