package resultcache

import "fmt"

// Backend names accepted by Open and the CLIs' -cache flags.
const (
	BackendOff    = "off"
	BackendMemory = "mem"
	BackendDisk   = "disk"
)

// Open builds a Cache from the CLI/daemon flag vocabulary: "off" returns
// a nil cache (every path treats nil as cache-off), "mem" an in-memory
// LRU bounded by budget bytes (<= 0 means DefaultMemoryBudget), "disk"
// an on-disk store rooted at dir. This is the single place the binaries
// (medea-scenarios, medea-serve, medea-experiments) resolve their cache
// flags, so the vocabulary cannot drift between them.
func Open(backend, dir string, budget int64) (*Cache, error) {
	switch backend {
	case "", BackendOff:
		return nil, nil
	case BackendMemory, "memory":
		return New(NewMemoryStore(budget)), nil
	case BackendDisk:
		if dir == "" {
			return nil, fmt.Errorf("resultcache: the disk backend needs a directory (-cache-dir)")
		}
		store, err := NewDiskStore(dir)
		if err != nil {
			return nil, err
		}
		return New(store), nil
	}
	return nil, fmt.Errorf("resultcache: unknown cache backend %q (have: %s, %s, %s)",
		backend, BackendOff, BackendMemory, BackendDisk)
}
