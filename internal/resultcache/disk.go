package resultcache

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// diskMagic versions the on-disk entry format; a format change invalidates
// old entries by turning them into misses.
var diskMagic = []byte("MEDEARC1")

// diskHeaderSize is the fixed prefix: magic plus a SHA-256 of the payload.
const diskHeaderSize = 8 + sha256.Size

// DiskStore is a Store persisted as one file per entry (named by the
// key's hex) under a directory, surviving process restarts so warm
// reruns of a sweep cost file reads instead of simulations.
//
// Every entry carries a checksum of its payload. A corrupted, truncated
// or foreign file — a crash mid-write, bit rot, a stray file with the
// right name — fails the checksum and reads as a miss, never as a wrong
// hit and never as an error the sweep would see: the point recomputes
// and the bad entry is overwritten. Writes go through a temp file and an
// atomic rename, so concurrent processes sharing a directory see either
// the old entry or the new one, not a torn one.
type DiskStore struct {
	dir string
}

// NewDiskStore opens (creating if needed) an on-disk store rooted at dir,
// sweeping temp files orphaned by crashed writers.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: opening disk store: %w", err)
	}
	d := &DiskStore{dir: dir}
	d.sweepOrphanTmp()
	return d, nil
}

// orphanTmpAge is how old a put-*.tmp file must be before the opening
// sweep treats it as an orphan. Live writers hold their temp file for
// milliseconds between CreateTemp and Rename; an hour-old one belongs to
// a process that died mid-Put and would otherwise accumulate forever.
const orphanTmpAge = time.Hour

// sweepOrphanTmp removes stale put-*.tmp leftovers. Best-effort, like Put
// itself: the age guard keeps it safe against concurrent processes
// sharing the directory, whose in-flight temp files are always young.
func (d *DiskStore) sweepOrphanTmp() {
	matches, err := filepath.Glob(filepath.Join(d.dir, "put-*.tmp"))
	if err != nil {
		return
	}
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil || time.Since(fi.ModTime()) < orphanTmpAge {
			continue
		}
		os.Remove(m)
	}
}

// Dir returns the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

func (d *DiskStore) path(key Key) string {
	return filepath.Join(d.dir, key.String()+".entry")
}

// Get implements Store. Unreadable, truncated or checksum-failing
// entries are misses (the failing file is best-effort removed so it is
// rewritten cleanly on the next Put).
func (d *DiskStore) Get(key Key) ([]byte, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	payload, ok := decodeEntry(data)
	if !ok {
		os.Remove(d.path(key))
		return nil, false
	}
	return payload, true
}

// Put implements Store: temp file + rename, best-effort (an IO error
// just leaves the entry absent).
func (d *DiskStore) Put(key Key, val []byte) {
	sum := sha256.Sum256(val)
	buf := make([]byte, 0, diskHeaderSize+len(val))
	buf = append(buf, diskMagic...)
	buf = append(buf, sum[:]...)
	buf = append(buf, val...)

	tmp, err := os.CreateTemp(d.dir, "put-*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, d.path(key)); err != nil {
		os.Remove(name)
	}
}

// Len returns the number of entry files currently present.
func (d *DiskStore) Len() int {
	matches, err := filepath.Glob(filepath.Join(d.dir, "*.entry"))
	if err != nil {
		return 0
	}
	return len(matches)
}

// decodeEntry validates one entry file and returns its payload. It must
// never panic, whatever the bytes are (fuzzed in FuzzDiskEntry).
func decodeEntry(data []byte) ([]byte, bool) {
	if len(data) < diskHeaderSize {
		return nil, false
	}
	if !bytes.Equal(data[:len(diskMagic)], diskMagic) {
		return nil, false
	}
	payload := data[diskHeaderSize:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[len(diskMagic):diskHeaderSize]) {
		return nil, false
	}
	return payload, true
}
