package resultcache

import (
	"container/list"
	"sync"
)

// Store is a pluggable result byte store. Implementations must be safe
// for concurrent use and are allowed to lose entries at any time (LRU
// eviction, corruption, truncation): a lost entry is a miss and the
// caller recomputes. A Store must never return bytes that were not
// stored under the key — the disk backend enforces this with per-entry
// checksums.
type Store interface {
	// Get returns the bytes stored under key, or ok=false on a miss. The
	// returned slice must not be mutated by the caller.
	Get(key Key) ([]byte, bool)
	// Put stores val under key, best-effort: a store is free to drop the
	// entry (budget exceeded, IO error). Put copies val.
	Put(key Key, val []byte)
}

// MemoryStore is an in-memory LRU Store with a byte budget: inserting
// past the budget evicts least-recently-used entries until the new entry
// fits. An entry larger than the whole budget is not stored at all.
type MemoryStore struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used
	items  map[Key]*list.Element

	evictions uint64
}

type memEntry struct {
	key Key
	val []byte
}

// DefaultMemoryBudget is the MemoryStore budget when none is given:
// 64 MiB, thousands of sweep points at typical entry sizes.
const DefaultMemoryBudget = 64 << 20

// NewMemoryStore builds an LRU store holding at most budget bytes of
// values (budget <= 0 means DefaultMemoryBudget).
func NewMemoryStore(budget int64) *MemoryStore {
	if budget <= 0 {
		budget = DefaultMemoryBudget
	}
	return &MemoryStore{
		budget: budget,
		ll:     list.New(),
		items:  make(map[Key]*list.Element),
	}
}

// Get implements Store, marking the entry most recently used.
func (m *MemoryStore) Get(key Key) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		return nil, false
	}
	m.ll.MoveToFront(el)
	return el.Value.(*memEntry).val, true
}

// Put implements Store, evicting LRU entries to fit the budget.
func (m *MemoryStore) Put(key Key, val []byte) {
	if int64(len(val)) > m.budget {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		e := el.Value.(*memEntry)
		m.used += int64(len(val)) - int64(len(e.val))
		e.val = append([]byte(nil), val...)
		m.ll.MoveToFront(el)
	} else {
		e := &memEntry{key: key, val: append([]byte(nil), val...)}
		m.items[key] = m.ll.PushFront(e)
		m.used += int64(len(val))
	}
	for m.used > m.budget {
		back := m.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*memEntry)
		m.ll.Remove(back)
		delete(m.items, e.key)
		m.used -= int64(len(e.val))
		m.evictions++
	}
}

// Len returns the number of entries currently held.
func (m *MemoryStore) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

// UsedBytes returns the bytes of values currently held.
func (m *MemoryStore) UsedBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Evictions returns how many entries the byte budget has pushed out.
func (m *MemoryStore) Evictions() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evictions
}
