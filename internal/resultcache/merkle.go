package resultcache

import "crypto/sha256"

// Merkle run ledger: a run's result set hashes into a binary Merkle tree
// whose root is a single content address for the whole run. Two runs
// with equal roots are byte-identical point-for-point; two runs that
// differ are diffed in O(d log n) hash comparisons (d differing leaves
// among n) by descending only into subtrees whose hashes disagree —
// which is what makes "did this sweep change?" an O(1) root comparison
// and "where?" a logarithmic walk, instead of an O(n) byte diff.

// Domain-separation prefixes: a leaf hash can never be reinterpreted as
// an interior node hash (or vice versa), so a forged single-leaf tree
// cannot collide with an interior node of a larger one.
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// Tree is an immutable Merkle tree over a sequence of leaf byte strings.
// Diff records its comparison count on the receiver, so a Tree must not
// be Diffed from two goroutines at once.
type Tree struct {
	// levels[0] holds the leaf hashes; each higher level pairs the one
	// below (an unpaired last node is promoted unchanged, so the node at
	// (level, idx) always covers leaves [idx*2^level, (idx+1)*2^level));
	// the top level has one entry, the root.
	levels [][]Key

	comparisons int // instrumentation for the O(log n) tests
}

// NewTree hashes the leaves into a tree. An empty leaf set yields the
// well-defined empty-tree root (the hash of the empty string).
func NewTree(leaves [][]byte) *Tree {
	level := make([]Key, len(leaves))
	for i, l := range leaves {
		h := sha256.New()
		h.Write([]byte{leafPrefix})
		h.Write(l)
		h.Sum(level[i][:0])
	}
	t := &Tree{levels: [][]Key{level}}
	for len(level) > 1 {
		next := make([]Key, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			h := sha256.New()
			h.Write([]byte{nodePrefix})
			h.Write(level[i][:])
			h.Write(level[i+1][:])
			var k Key
			h.Sum(k[:0])
			next = append(next, k)
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t
}

// NumLeaves returns the number of leaves the tree was built over.
func (t *Tree) NumLeaves() int { return len(t.levels[0]) }

// Root returns the tree's root hash. The empty tree's root is
// sha256("").
func (t *Tree) Root() Key {
	top := t.levels[len(t.levels)-1]
	if len(top) == 0 {
		return sha256.Sum256(nil)
	}
	return top[0]
}

// Diff returns the indices of leaves whose hashes differ between the two
// trees, in increasing order, descending only into subtrees whose node
// hashes disagree (equal hashes prune the whole subtree; with promotion,
// an equal hash at matching (level, idx) implies the covered leaf ranges
// are identical up to hash collision). Leaves present in only one tree
// (different leaf counts) are all reported. DiffComparisons reports the
// cost of the last Diff.
func (t *Tree) Diff(o *Tree) []int {
	t.comparisons = 0
	n, m := t.NumLeaves(), o.NumLeaves()
	common := min(n, m)
	var out []int
	if common > 0 {
		// Start at the tallest level both trees define; every node there
		// whose span intersects the common range is a diff root.
		level := min(len(t.levels), len(o.levels)) - 1
		for idx := 0; idx<<level < common; idx++ {
			out = t.diffNode(o, level, idx, common, out)
		}
	}
	for i := common; i < max(n, m); i++ {
		out = append(out, i)
	}
	return out
}

// DiffComparisons reports how many node-hash comparisons the last Diff
// call on this receiver performed — O(d log n) for d differing leaves.
func (t *Tree) DiffComparisons() int { return t.comparisons }

func (t *Tree) diffNode(o *Tree, level, idx, common int, out []int) []int {
	t.comparisons++
	if t.levels[level][idx] == o.levels[level][idx] {
		return out
	}
	if level == 0 {
		if idx < common {
			out = append(out, idx)
		}
		return out
	}
	for child := 2 * idx; child <= 2*idx+1; child++ {
		if child<<(level-1) < common {
			out = t.diffNode(o, level-1, child, common, out)
		}
	}
	return out
}
