package resultcache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func diskStore(t *testing.T) *DiskStore {
	t.Helper()
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskRoundTrip(t *testing.T) {
	d := diskStore(t)
	key := testKey(1)
	d.Put(key, []byte("hello"))
	v, ok := d.Get(key)
	if !ok || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("round trip: v=%q ok=%v", v, ok)
	}
	if _, ok := d.Get(testKey(2)); ok {
		t.Fatal("absent key reported present")
	}
	if d.Len() != 1 {
		t.Fatalf("Len=%d, want 1", d.Len())
	}
}

// TestDiskSurvivesReopen: the whole point of the disk backend — a second
// process (or rerun) over the same directory sees the entries.
func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d1.Put(testKey(1), []byte("persisted"))
	d2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := d2.Get(testKey(1))
	if !ok || string(v) != "persisted" {
		t.Fatalf("reopen: v=%q ok=%v", v, ok)
	}
}

// TestDiskCorruptionIsMiss: flip one payload byte; the checksum must turn
// the entry into a miss (and clean up the bad file), never a wrong hit.
func TestDiskCorruptionIsMiss(t *testing.T) {
	d := diskStore(t)
	key := testKey(1)
	d.Put(key, []byte("pristine"))

	path := d.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if v, ok := d.Get(key); ok {
		t.Fatalf("corrupted entry served as hit: %q", v)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupted entry file was not removed")
	}
	// The store heals on the next Put.
	d.Put(key, []byte("pristine"))
	if v, ok := d.Get(key); !ok || string(v) != "pristine" {
		t.Fatalf("store did not heal after corruption: v=%q ok=%v", v, ok)
	}
}

// TestDiskTruncationIsMiss: every possible truncation point — inside the
// magic, inside the checksum, inside the payload — must read as a miss.
func TestDiskTruncationIsMiss(t *testing.T) {
	d := diskStore(t)
	key := testKey(1)
	d.Put(key, []byte("some payload bytes"))
	full, err := os.ReadFile(d.path(key))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(d.path(key), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if v, ok := d.Get(key); ok {
			t.Fatalf("entry truncated to %d/%d bytes served as hit: %q", cut, len(full), v)
		}
	}
}

// TestDiskForeignFileIsMiss: a stray non-entry file with the right name
// (wrong magic) is a miss, not a crash.
func TestDiskForeignFileIsMiss(t *testing.T) {
	d := diskStore(t)
	key := testKey(1)
	if err := os.WriteFile(d.path(key), []byte("not an entry at all, definitely longer than the header would be"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(key); ok {
		t.Fatal("foreign file served as hit")
	}
}

// TestDiskCachedSweepIdentical: end-to-end through the Cache — a
// disk-backed warm rerun returns the exact bytes of the cold run.
func TestDiskCachedSweepIdentical(t *testing.T) {
	d := diskStore(t)
	c := New(d)
	var cold [][]byte
	for i := 0; i < 8; i++ {
		v, hit, err := c.GetOrCompute(testKey(i), func() ([]byte, error) {
			return bytes.Repeat([]byte{byte(i)}, 33), nil
		})
		if err != nil || hit {
			t.Fatalf("cold %d: hit=%v err=%v", i, hit, err)
		}
		cold = append(cold, append([]byte(nil), v...))
	}
	warm := New(d) // fresh cache over the same directory, like a rerun
	for i := 0; i < 8; i++ {
		v, hit, err := warm.GetOrCompute(testKey(i), func() ([]byte, error) {
			t.Errorf("warm %d recomputed", i)
			return nil, nil
		})
		if err != nil || !hit || !bytes.Equal(v, cold[i]) {
			t.Fatalf("warm %d: hit=%v err=%v identical=%v", i, hit, err, bytes.Equal(v, cold[i]))
		}
	}
	if st := warm.Stats(); st.HitRate() != 1 {
		t.Fatalf("warm hit rate %.2f, want 1", st.HitRate())
	}
}

// TestDiskOrphanTmpSweep: opening a store removes temp files a crashed
// writer left behind — but only stale ones (a young temp file may belong
// to a live writer in another process) and never valid entries.
func TestDiskOrphanTmpSweep(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d1.Put(testKey(1), []byte("survivor"))

	// A crashed Put: the temp file exists, the rename never happened.
	stale := filepath.Join(dir, "put-12345.tmp")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * orphanTmpAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	// A live writer's in-flight temp file (fresh mtime).
	fresh := filepath.Join(dir, "put-67890.tmp")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale orphan temp file survived the opening sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp file was swept: %v", err)
	}
	if v, ok := d2.Get(testKey(1)); !ok || string(v) != "survivor" {
		t.Fatalf("valid entry disturbed by the sweep: v=%q ok=%v", v, ok)
	}
}

// TestDiskNoTempLeftovers: Put must not leave temp files behind.
func TestDiskNoTempLeftovers(t *testing.T) {
	d := diskStore(t)
	for i := 0; i < 5; i++ {
		d.Put(testKey(i), []byte("v"))
	}
	tmps, err := filepath.Glob(filepath.Join(d.Dir(), "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}
