package resultcache

import (
	"math"
	"testing"
)

// sampleKey builds a representative sweep-point key, with one field
// optionally overridden — the scaffolding for the mutation tests.
func sampleKey(override func(*KeyBuilder) *KeyBuilder) Key {
	b := NewKey("dse/jacobi").
		Int("n", 30).
		Int("cores", 8).
		Int("cache_kb", 16).
		Str("policy", "write-back").
		Str("variant", "hybrid-full").
		Int("warmup", 1).
		Int("measured", 1)
	if override != nil {
		b = override(b)
	}
	return b.Sum()
}

// TestKeyFieldMutationsChangeKey holds the core falsification property:
// every single-field mutation of a point configuration must produce a
// different key (a collision here would mean a wrong cache hit).
func TestKeyFieldMutationsChangeKey(t *testing.T) {
	base := sampleKey(nil)
	mutations := map[string]Key{
		"n":        NewKey("dse/jacobi").Int("n", 31).Int("cores", 8).Int("cache_kb", 16).Str("policy", "write-back").Str("variant", "hybrid-full").Int("warmup", 1).Int("measured", 1).Sum(),
		"cores":    NewKey("dse/jacobi").Int("n", 30).Int("cores", 9).Int("cache_kb", 16).Str("policy", "write-back").Str("variant", "hybrid-full").Int("warmup", 1).Int("measured", 1).Sum(),
		"cache_kb": NewKey("dse/jacobi").Int("n", 30).Int("cores", 8).Int("cache_kb", 32).Str("policy", "write-back").Str("variant", "hybrid-full").Int("warmup", 1).Int("measured", 1).Sum(),
		"policy":   NewKey("dse/jacobi").Int("n", 30).Int("cores", 8).Int("cache_kb", 16).Str("policy", "write-through").Str("variant", "hybrid-full").Int("warmup", 1).Int("measured", 1).Sum(),
		"variant":  NewKey("dse/jacobi").Int("n", 30).Int("cores", 8).Int("cache_kb", 16).Str("policy", "write-back").Str("variant", "pure-sm").Int("warmup", 1).Int("measured", 1).Sum(),
		"warmup":   NewKey("dse/jacobi").Int("n", 30).Int("cores", 8).Int("cache_kb", 16).Str("policy", "write-back").Str("variant", "hybrid-full").Int("warmup", 2).Int("measured", 1).Sum(),
		"measured": NewKey("dse/jacobi").Int("n", 30).Int("cores", 8).Int("cache_kb", 16).Str("policy", "write-back").Str("variant", "hybrid-full").Int("warmup", 1).Int("measured", 2).Sum(),
		"domain":   NewKey("dse/matmul").Int("n", 30).Int("cores", 8).Int("cache_kb", 16).Str("policy", "write-back").Str("variant", "hybrid-full").Int("warmup", 1).Int("measured", 1).Sum(),
	}
	seen := map[Key]string{base: "base"}
	for name, k := range mutations {
		if k == base {
			t.Errorf("mutating %s left the key unchanged", name)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("mutations %s and %s collide", name, prev)
		}
		seen[k] = name
	}
}

// TestKeyOrderStable: the key must not depend on field insertion order —
// the property that makes keys stable across map iteration order and
// across reparses that assemble fields differently.
func TestKeyOrderStable(t *testing.T) {
	a := NewKey("d").Int("x", 1).Str("y", "v").Float("z", 0.25).Sum()
	b := NewKey("d").Float("z", 0.25).Int("x", 1).Str("y", "v").Sum()
	c := NewKey("d").Str("y", "v").Float("z", 0.25).Int("x", 1).Sum()
	if a != b || b != c {
		t.Fatalf("insertion order changed the key: %s / %s / %s", a, b, c)
	}
}

// TestKeyCodeVersionInvalidates: bumping the code-version stamp must
// change every key, so stale entries from older simulation semantics can
// never be served.
func TestKeyCodeVersionInvalidates(t *testing.T) {
	old := CodeVersion
	defer func() { CodeVersion = old }()
	a := sampleKey(nil)
	CodeVersion = old + "-next"
	b := sampleKey(nil)
	if a == b {
		t.Fatal("CodeVersion bump did not change the key")
	}
}

// TestKeyFramingInjective: length-prefix framing means adjacent fields
// cannot be re-segmented into a colliding encoding.
func TestKeyFramingInjective(t *testing.T) {
	a := NewKey("d").Str("ab", "c").Sum()
	b := NewKey("d").Str("a", "bc").Sum()
	if a == b {
		t.Fatal(`fields ("ab","c") and ("a","bc") collide`)
	}
	c := NewKey("d").Str("a", "").Str("b", "").Sum()
	d := NewKey("d").Str("a", "").Sum()
	if c == d {
		t.Fatal("field count is not part of the encoding")
	}
}

// TestKeyFloatExact: distinct float64 values — including ones that print
// identically at low precision — must key differently, and -0/+0 (same
// formatted string "0"... actually distinct strings) stay distinguishable
// from each other exactly as strconv renders them.
func TestKeyFloatExact(t *testing.T) {
	a := NewKey("d").Float("r", 0.1).Sum()
	b := NewKey("d").Float("r", math.Nextafter(0.1, 1)).Sum()
	if a == b {
		t.Fatal("adjacent float64 values collide")
	}
	if NewKey("d").Float("r", 0.30000000000000004).Sum() == NewKey("d").Float("r", 0.3).Sum() {
		t.Fatal("0.3 and 0.30000000000000004 collide")
	}
}

// TestKeyDuplicateFieldPanics: duplicates would break order independence,
// so Sum refuses them loudly.
func TestKeyDuplicateFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate field name did not panic")
		}
	}()
	NewKey("d").Int("x", 1).Int("x", 2).Sum()
}
