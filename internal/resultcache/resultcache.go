// Package resultcache exploits the simulator's determinism contract —
// every sweep point is a pure function of (configuration, seed, code
// version) — by content-addressing simulation results: a canonical key
// derived from the full point configuration plus a code-version stamp
// names the result bytes, a pluggable Store holds them (in-memory LRU
// with a byte budget, or an on-disk store whose per-entry checksums turn
// corruption into misses), and a singleflight layer collapses concurrent
// computations of the same key into one.
//
// The cache is proven harmless, not assumed so: the differential test
// battery in internal/scenario renders every shipped scenario cold-cache,
// warm-cache, disk-backed and cache-off and requires byte-identical
// output, and the property/fuzz tests here require that any single field
// mutation changes the key and that a corrupted entry is never served.
//
// The package also provides the Merkle run ledger: a result set hashes
// into a Merkle tree whose root names the entire run, and two runs diff
// in O(d log n) leaf comparisons (d differing points among n) by
// descending only the subtrees whose hashes disagree.
//
// A nil *Cache is valid everywhere and means "cache off": lookups miss,
// computes run directly, nothing is stored. That is what lets the cache
// thread through dse.SweepCtx, the scenario runner and internal/serve
// without forking any execution path.
package resultcache

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// CodeVersion stamps every cache key. It names the simulation semantics,
// not the storage format: bump it whenever a change makes any simulated
// cycle count differ (engine, kernels, routers, topologies, cost model),
// and every old entry silently becomes a miss instead of a wrong hit.
// Golden values like the jacobi 94177 cycle count are the tripwire that
// says when a bump is due.
var CodeVersion = "medea-2026.08"

// Stats is a point-in-time counter snapshot of one Cache (or one Scope of
// it). Hits served from the store, Dedups served by joining another
// caller's in-flight compute, Misses that led to a compute of our own.
type Stats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Dedups   uint64 `json:"dedups"`
	Computes uint64 `json:"computes"`
}

// Lookups counts every GetOrCompute call that reached the cache.
func (s Stats) Lookups() uint64 { return s.Hits + s.Dedups + s.Misses }

// HitRate is the fraction of lookups served without a fresh compute
// (store hits plus singleflight joins); 0 when there were no lookups.
func (s Stats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits+s.Dedups) / float64(n)
	}
	return 0
}

// String renders the snapshot for log lines.
func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses, %d dedups, %d computes (hit rate %.0f%%)",
		s.Hits, s.Misses, s.Dedups, s.Computes, 100*s.HitRate())
}

// call is one in-flight computation; joiners wait on done.
type call struct {
	done chan struct{}
	val  []byte
	err  error
}

// Cache fronts a Store with singleflight deduplication and counters. Use
// New; a nil *Cache is the documented "cache off" mode. All methods are
// safe for concurrent use.
type Cache struct {
	store Store

	// root owns the in-flight table; Scope children share it so two jobs
	// computing the same key still collapse to one simulation.
	root *Cache

	mu       sync.Mutex
	inflight map[Key]*call

	hits, misses, dedups, computes atomic.Uint64
	parent                         *Cache // stats bubble up from scopes
}

// New builds a Cache over the store.
func New(store Store) *Cache {
	c := &Cache{store: store, inflight: make(map[Key]*call)}
	c.root = c
	return c
}

// Scope returns a view of the cache with its own zeroed counters: it
// shares the parent's store and in-flight table (so deduplication still
// spans scopes) and every hit or miss counts both locally and in the
// parent chain. internal/serve gives each job a scope so job status can
// report per-job hit counts while the daemon keeps global ones. Scope on
// a nil cache returns nil (still "cache off").
func (c *Cache) Scope() *Cache {
	if c == nil {
		return nil
	}
	return &Cache{store: c.store, root: c.root, parent: c}
}

// Stats returns a snapshot of this cache's (or scope's) counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Dedups:   c.dedups.Load(),
		Computes: c.computes.Load(),
	}
}

func (c *Cache) count(f func(*Cache)) {
	for n := c; n != nil; n = n.parent {
		f(n)
	}
}

// AddExternal folds a Stats delta produced elsewhere — typically a shard
// worker process reporting its own cache counters — into this scope and
// every parent, so distributed runs bubble into the same counters a
// single-process run would have incremented. Nil-safe no-op.
func (c *Cache) AddExternal(s Stats) {
	if c == nil {
		return
	}
	c.count(func(n *Cache) {
		n.hits.Add(s.Hits)
		n.misses.Add(s.Misses)
		n.dedups.Add(s.Dedups)
		n.computes.Add(s.Computes)
	})
}

// GetOrCompute returns the bytes stored under key, computing and storing
// them on a miss. The bool result reports whether the bytes came from the
// cache (a store hit or a singleflight join) rather than a fresh compute.
//
// Concurrent callers of the same uncomputed key run compute exactly once:
// the first becomes the leader, the rest block on its completion and
// share its value. done is re-checked under the in-flight lock, so the
// exactly-once guarantee holds even when a caller races the leader's
// completion. If the leader fails, joiners receive its error; a panic in
// compute propagates on the leader's goroutine (where par.ForEachCtx
// isolates it) and fails the joiners with a structured error instead of
// deadlocking them.
//
// A nil receiver runs compute directly and stores nothing.
func (c *Cache) GetOrCompute(key Key, compute func() ([]byte, error)) ([]byte, bool, error) {
	if c == nil {
		v, err := compute()
		return v, false, err
	}
	r := c.root
	if v, ok := r.store.Get(key); ok {
		c.count(func(n *Cache) { n.hits.Add(1) })
		return v, true, nil
	}
	r.mu.Lock()
	// Re-check the store under the lock: a leader publishes its value to
	// the store before removing its in-flight entry (also under this
	// lock), so a caller that missed above either sees the value here or
	// finds the leader still in flight — never neither.
	if v, ok := r.store.Get(key); ok {
		r.mu.Unlock()
		c.count(func(n *Cache) { n.hits.Add(1) })
		return v, true, nil
	}
	if cl, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		<-cl.done
		if cl.err != nil {
			return nil, false, cl.err
		}
		c.count(func(n *Cache) { n.dedups.Add(1) })
		return cl.val, true, nil
	}
	cl := &call{done: make(chan struct{})}
	r.inflight[key] = cl
	r.mu.Unlock()

	finished := false
	defer func() {
		if !finished {
			// compute panicked: fail the joiners with a structured error
			// and let the panic continue up the leader's stack.
			cl.err = fmt.Errorf("resultcache: compute for %s panicked", key)
		}
		if cl.err == nil {
			// Publish before removing the in-flight entry (the removal is
			// under the same lock readers re-check the store under), so a
			// racing reader either joins this call or hits the store.
			r.store.Put(key, cl.val)
		}
		r.mu.Lock()
		delete(r.inflight, key)
		r.mu.Unlock()
		close(cl.done)
	}()
	cl.val, cl.err = compute()
	finished = true
	if cl.err != nil {
		return nil, false, cl.err
	}
	c.count(func(n *Cache) { n.misses.Add(1); n.computes.Add(1) })
	return cl.val, false, nil
}
