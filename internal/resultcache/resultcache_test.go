package resultcache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func testKey(i int) Key {
	return NewKey("test").Int("i", int64(i)).Sum()
}

// TestSingleflightExactlyOnce is the race-mode concurrency test from the
// issue: N parallel workers requesting one uncomputed key must trigger
// exactly one compute; everyone gets the same bytes.
func TestSingleflightExactlyOnce(t *testing.T) {
	const workers = 32
	c := New(NewMemoryStore(0))
	key := testKey(1)

	var computes atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	vals := make([][]byte, workers)
	cached := make([]bool, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.GetOrCompute(key, func() ([]byte, error) {
				computes.Add(1)
				<-release // hold the compute open so every worker piles up
				return []byte("payload"), nil
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			vals[i], cached[i] = v, hit
		}(i)
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", got)
	}
	fresh := 0
	for i := range vals {
		if !bytes.Equal(vals[i], []byte("payload")) {
			t.Fatalf("worker %d got %q", i, vals[i])
		}
		if !cached[i] {
			fresh++
		}
	}
	if fresh != 1 {
		t.Fatalf("%d workers reported a fresh compute, want exactly 1", fresh)
	}
	st := c.Stats()
	if st.Computes != 1 {
		t.Fatalf("stats report %d computes, want 1", st.Computes)
	}
	if st.Lookups() != workers {
		t.Fatalf("stats report %d lookups, want %d", st.Lookups(), workers)
	}
}

// TestEvictionRecomputesIdentical: entries evicted under byte-budget
// pressure recompute to byte-identical values — eviction can cost time,
// never correctness.
func TestEvictionRecomputesIdentical(t *testing.T) {
	// Budget fits ~4 of the 100-byte entries, so a 32-key sweep thrashes.
	store := NewMemoryStore(400)
	c := New(store)
	value := func(i int) []byte {
		return bytes.Repeat([]byte{byte(i)}, 100)
	}
	first := make(map[int][]byte)
	for i := 0; i < 32; i++ {
		v, _, err := c.GetOrCompute(testKey(i), func() ([]byte, error) { return value(i), nil })
		if err != nil {
			t.Fatal(err)
		}
		first[i] = append([]byte(nil), v...)
	}
	if store.Evictions() == 0 {
		t.Fatal("test is vacuous: no evictions happened under a 400-byte budget")
	}
	for i := 0; i < 32; i++ {
		v, _, err := c.GetOrCompute(testKey(i), func() ([]byte, error) { return value(i), nil })
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v, first[i]) {
			t.Fatalf("key %d: recomputed bytes differ after eviction", i)
		}
	}
	if store.UsedBytes() > 400 {
		t.Fatalf("store holds %d bytes, budget is 400", store.UsedBytes())
	}
}

// TestNilCacheIsOff: the nil receiver is the documented cache-off mode —
// every call computes, nothing is stored, Stats and Scope are safe.
func TestNilCacheIsOff(t *testing.T) {
	var c *Cache
	n := 0
	for i := 0; i < 3; i++ {
		v, hit, err := c.GetOrCompute(testKey(1), func() ([]byte, error) { n++; return []byte("x"), nil })
		if err != nil || hit || string(v) != "x" {
			t.Fatalf("nil cache: v=%q hit=%v err=%v", v, hit, err)
		}
	}
	if n != 3 {
		t.Fatalf("nil cache computed %d times, want 3 (no memoization)", n)
	}
	if c.Scope() != nil {
		t.Fatal("Scope of nil cache must be nil")
	}
	if c.Stats() != (Stats{}) {
		t.Fatal("Stats of nil cache must be zero")
	}
}

// TestScopeStatsBubble: scopes count locally and into the parent chain,
// while sharing the parent's store (a scope hit on a parent-computed key).
func TestScopeStatsBubble(t *testing.T) {
	c := New(NewMemoryStore(0))
	s1 := c.Scope()
	s2 := c.Scope()

	if _, hit, _ := s1.GetOrCompute(testKey(1), func() ([]byte, error) { return []byte("a"), nil }); hit {
		t.Fatal("first compute reported as cache hit")
	}
	if _, hit, _ := s2.GetOrCompute(testKey(1), func() ([]byte, error) { return []byte("a"), nil }); !hit {
		t.Fatal("scope 2 missed a key scope 1 computed: store not shared")
	}

	if st := s1.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("scope 1 stats %+v, want 1 miss 0 hits", st)
	}
	if st := s2.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("scope 2 stats %+v, want 1 hit 0 misses", st)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("parent stats %+v, want the union (1 hit 1 miss)", st)
	}
}

// TestComputeErrorNotCached: a failed compute must not poison the key —
// the error propagates (to joiners too) and the next call retries.
func TestComputeErrorNotCached(t *testing.T) {
	c := New(NewMemoryStore(0))
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(testKey(1), func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	v, hit, err := c.GetOrCompute(testKey(1), func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(v) != "ok" {
		t.Fatalf("retry after error: v=%q hit=%v err=%v", v, hit, err)
	}
	if _, hit, _ = c.GetOrCompute(testKey(1), func() ([]byte, error) { return []byte("ok"), nil }); !hit {
		t.Fatal("successful value was not cached")
	}
}

// TestPanicInComputeFailsJoinersAndPropagates: a panicking compute must
// re-panic on the leader's goroutine (where the worker pool isolates it)
// while joiners get an error, and the key stays usable afterwards.
func TestPanicInComputeFailsJoinersAndPropagates(t *testing.T) {
	c := New(NewMemoryStore(0))
	key := testKey(1)

	entered := make(chan struct{})
	release := make(chan struct{})
	leaderPanicked := make(chan bool, 1)
	go func() {
		defer func() { leaderPanicked <- recover() != nil }()
		c.GetOrCompute(key, func() ([]byte, error) {
			close(entered)
			<-release
			panic("kaboom")
		})
	}()
	<-entered

	joinErr := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(key, func() ([]byte, error) {
			return nil, errors.New("joiner must not compute while leader is in flight")
		})
		joinErr <- err
	}()
	close(release)

	if !<-leaderPanicked {
		t.Fatal("panic did not propagate on the leader goroutine")
	}
	err := <-joinErr
	if err == nil {
		t.Fatal("joiner got nil error from a panicked leader")
	}
	// After the wreckage, the key must still compute normally.
	v, _, err := c.GetOrCompute(key, func() ([]byte, error) { return []byte("after"), nil })
	if err != nil || string(v) != "after" {
		t.Fatalf("key unusable after panic: v=%q err=%v", v, err)
	}
}

// TestMemoryStoreOversizedEntry: an entry larger than the whole budget is
// skipped rather than evicting everything for nothing.
func TestMemoryStoreOversizedEntry(t *testing.T) {
	store := NewMemoryStore(10)
	store.Put(testKey(1), []byte("fits"))
	store.Put(testKey(2), bytes.Repeat([]byte("x"), 11))
	if _, ok := store.Get(testKey(2)); ok {
		t.Fatal("oversized entry was stored")
	}
	if _, ok := store.Get(testKey(1)); !ok {
		t.Fatal("oversized Put evicted an unrelated entry")
	}
}

// TestMemoryStoreLRUOrder: Get refreshes recency, so the least recently
// *used* entry goes first, not the least recently inserted.
func TestMemoryStoreLRUOrder(t *testing.T) {
	store := NewMemoryStore(30)
	store.Put(testKey(1), bytes.Repeat([]byte("a"), 10))
	store.Put(testKey(2), bytes.Repeat([]byte("b"), 10))
	store.Put(testKey(3), bytes.Repeat([]byte("c"), 10))
	store.Get(testKey(1)) // refresh 1; LRU is now 2
	store.Put(testKey(4), bytes.Repeat([]byte("d"), 10))
	if _, ok := store.Get(testKey(2)); ok {
		t.Fatal("LRU entry 2 survived")
	}
	for _, i := range []int{1, 3, 4} {
		if _, ok := store.Get(testKey(i)); !ok {
			t.Fatalf("entry %d evicted out of LRU order", i)
		}
	}
}

// TestOpenVocabulary pins the flag vocabulary every binary shares.
func TestOpenVocabulary(t *testing.T) {
	if c, err := Open("off", "", 0); c != nil || err != nil {
		t.Fatalf("off: c=%v err=%v", c, err)
	}
	if c, err := Open("", "", 0); c != nil || err != nil {
		t.Fatalf("empty: c=%v err=%v", c, err)
	}
	if c, err := Open("mem", "", 0); c == nil || err != nil {
		t.Fatalf("mem: c=%v err=%v", c, err)
	}
	if c, err := Open("disk", t.TempDir(), 0); c == nil || err != nil {
		t.Fatalf("disk: c=%v err=%v", c, err)
	}
	if _, err := Open("disk", "", 0); err == nil {
		t.Fatal("disk without dir must error")
	}
	if _, err := Open("floppy", "", 0); err == nil {
		t.Fatal("unknown backend must error")
	}
}

// TestStatsString smoke-checks the log rendering.
func TestStatsString(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1, Dedups: 0, Computes: 1}
	want := fmt.Sprintf("3 hits, 1 misses, 0 dedups, 1 computes (hit rate %.0f%%)", 75.0)
	if s.String() != want {
		t.Fatalf("got %q, want %q", s.String(), want)
	}
}
