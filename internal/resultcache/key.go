package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
)

// Key is a content address: the SHA-256 of a canonically serialized
// point configuration plus the CodeVersion stamp.
type Key [sha256.Size]byte

// String returns the key as lowercase hex (also the disk store's entry
// file name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// field is one named configuration value, already rendered to its
// canonical string form.
type field struct {
	name, value string
}

// KeyBuilder derives a Key from a domain (which execution path the entry
// belongs to, e.g. "dse/jacobi") and a set of named fields. The
// serialization is canonical:
//
//   - fields are sorted by name before hashing, so the key is independent
//     of insertion order (and therefore of map iteration order in any
//     caller assembling the fields);
//   - every component is length-prefixed, so no concatenation of names
//     and values can collide with another ("ab"+"c" never equals
//     "a"+"bc");
//   - floats render with strconv's shortest-round-trip formatting, which
//     is exact: two different float64 bit patterns (NaNs aside) never
//     produce the same string;
//   - the CodeVersion stamp is hashed first, so bumping it invalidates
//     every key at once.
//
// Duplicate field names are a programming error and make Sum panic: with
// duplicates, sorting could not make the encoding insertion-order
// independent.
type KeyBuilder struct {
	domain string
	fields []field
}

// NewKey starts a key derivation for the given domain.
func NewKey(domain string) *KeyBuilder {
	return &KeyBuilder{domain: domain}
}

// Str adds a string-valued field.
func (b *KeyBuilder) Str(name, v string) *KeyBuilder {
	b.fields = append(b.fields, field{name, v})
	return b
}

// Int adds an integer-valued field.
func (b *KeyBuilder) Int(name string, v int64) *KeyBuilder {
	return b.Str(name, strconv.FormatInt(v, 10))
}

// Float adds a float-valued field, rendered exactly (shortest string that
// round-trips to the same float64).
func (b *KeyBuilder) Float(name string, v float64) *KeyBuilder {
	return b.Str(name, strconv.FormatFloat(v, 'g', -1, 64))
}

// Bool adds a boolean field.
func (b *KeyBuilder) Bool(name string, v bool) *KeyBuilder {
	return b.Str(name, strconv.FormatBool(v))
}

// Sum derives the key. The builder can be reused afterwards (appending
// more fields derives a new, different key).
func (b *KeyBuilder) Sum() Key {
	sorted := append([]field(nil), b.fields...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].name == sorted[i-1].name {
			panic(fmt.Sprintf("resultcache: duplicate key field %q in domain %q", sorted[i].name, b.domain))
		}
	}
	h := sha256.New()
	writeFrame := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeFrame(CodeVersion)
	writeFrame(b.domain)
	for _, f := range sorted {
		writeFrame(f.name)
		writeFrame(f.value)
	}
	var k Key
	h.Sum(k[:0])
	return k
}
