package resultcache

import (
	"bytes"
	"crypto/sha256"
	"os"
	"testing"
)

// FuzzCacheKey drives the key-derivation properties with arbitrary field
// contents: insertion order never matters, any single-field value change
// changes the key, and the domain and CodeVersion are always load-bearing.
func FuzzCacheKey(f *testing.F) {
	f.Add("dse/jacobi", "n", "30", "policy", "write-back", int64(8), 0.02)
	f.Add("scenario/noc", "router", "wormhole", "pattern", "transpose", int64(4096), 0.35)
	f.Add("", "", "", "", "", int64(0), 0.0)
	f.Add("d", "a", "b\x00c", "x", "\xff\xfe", int64(-1), -0.0)
	f.Fuzz(func(t *testing.T, domain, n1, v1, n2, v2 string, iv int64, fv float64) {
		if n1 == n2 || n1 == "i" || n2 == "i" || n1 == "f" || n2 == "f" {
			t.Skip("duplicate field names panic by design")
		}
		base := NewKey(domain).Str(n1, v1).Str(n2, v2).Int("i", iv).Float("f", fv).Sum()

		// Order independence: every other insertion order agrees.
		reordered := NewKey(domain).Float("f", fv).Str(n2, v2).Int("i", iv).Str(n1, v1).Sum()
		if base != reordered {
			t.Fatalf("insertion order changed key: %s vs %s", base, reordered)
		}

		// Single-field mutations change the key.
		if NewKey(domain).Str(n1, v1+"x").Str(n2, v2).Int("i", iv).Float("f", fv).Sum() == base {
			t.Fatalf("mutating field %q value did not change key", n1)
		}
		if NewKey(domain).Str(n1, v1).Str(n2, v2).Int("i", iv+1).Float("f", fv).Sum() == base {
			t.Fatal("mutating int field did not change key")
		}
		if fv == fv { // skip NaN: NaN != NaN makes "different value" ill-defined
			if NewKey(domain).Str(n1, v1).Str(n2, v2).Int("i", iv).Float("f", fv+1).Sum() == base && fv+1 != fv {
				t.Fatal("mutating float field did not change key")
			}
		}
		if NewKey(domain+"x").Str(n1, v1).Str(n2, v2).Int("i", iv).Float("f", fv).Sum() == base {
			t.Fatal("mutating domain did not change key")
		}

		// Dropping a field changes the key.
		if NewKey(domain).Str(n1, v1).Int("i", iv).Float("f", fv).Sum() == base {
			t.Fatalf("dropping field %q did not change key", n2)
		}

		// CodeVersion is part of every key.
		old := CodeVersion
		CodeVersion = old + "!"
		bumped := NewKey(domain).Str(n1, v1).Str(n2, v2).Int("i", iv).Float("f", fv).Sum()
		CodeVersion = old
		if bumped == base {
			t.Fatal("CodeVersion bump did not change key")
		}

		// Rebuilding from scratch (a "reparse") reproduces the key exactly.
		if NewKey(domain).Str(n1, v1).Str(n2, v2).Int("i", iv).Float("f", fv).Sum() != base {
			t.Fatal("key derivation is not deterministic")
		}
	})
}

// FuzzDiskEntry throws arbitrary bytes at the on-disk entry decoder and at
// a store directory: decode must never panic, and must only ever accept
// bytes whose embedded checksum matches — so a Get over a fuzzed file is a
// miss or the exact payload, never garbage.
func FuzzDiskEntry(f *testing.F) {
	d, err := NewDiskStore(f.TempDir())
	if err != nil {
		f.Fatal(err)
	}
	key := testKey(1)
	d.Put(key, []byte("seed payload"))
	if valid, err := os.ReadFile(d.path(key)); err == nil {
		f.Add(valid)
		f.Add(valid[:len(valid)-1])
		f.Add(valid[:diskHeaderSize])
	}
	f.Add([]byte{})
	f.Add([]byte("MEDEARC1"))
	f.Add(bytes.Repeat([]byte{0}, diskHeaderSize+4))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, ok := decodeEntry(data)
		if ok {
			// Accepting means the checksum matched; re-encoding must agree.
			reencoded := encodeForTest(payload)
			if !bytes.Equal(reencoded, data) {
				t.Fatalf("accepted entry does not round-trip")
			}
		}

		// A store Get over these exact bytes behaves identically and never
		// panics, whatever is in the file.
		dir := t.TempDir()
		store, err := NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		k := testKey(2)
		if err := os.WriteFile(store.path(k), data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, hit := store.Get(k)
		if hit != ok {
			t.Fatalf("decodeEntry ok=%v but store hit=%v", ok, hit)
		}
		if hit && !bytes.Equal(got, payload) {
			t.Fatal("store returned different payload than decodeEntry")
		}
		if !hit {
			// Invalid entries are cleaned up so the next Put heals.
			if _, err := os.Stat(store.path(k)); err == nil {
				t.Fatal("invalid entry file was not removed on miss")
			}
		}
	})
}

// encodeForTest mirrors DiskStore.Put's framing for round-trip checks.
func encodeForTest(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	buf := make([]byte, 0, diskHeaderSize+len(payload))
	buf = append(buf, diskMagic...)
	buf = append(buf, sum[:]...)
	return append(buf, payload...)
}
