package resultcache

import (
	"fmt"
	"math/bits"
	"reflect"
	"testing"
)

func leavesN(n int, mutate map[int]string) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		s := fmt.Sprintf("leaf-%d", i)
		if m, ok := mutate[i]; ok {
			s = m
		}
		out[i] = []byte(s)
	}
	return out
}

func TestMerkleRootDeterministic(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 8, 28, 100} {
		a := NewTree(leavesN(n, nil))
		b := NewTree(leavesN(n, nil))
		if a.Root() != b.Root() {
			t.Fatalf("n=%d: same leaves, different roots", n)
		}
		if a.NumLeaves() != n {
			t.Fatalf("n=%d: NumLeaves=%d", n, a.NumLeaves())
		}
	}
}

func TestMerkleRootSensitive(t *testing.T) {
	base := NewTree(leavesN(28, nil)).Root()
	seen := map[Key]int{base: -1}
	for i := 0; i < 28; i++ {
		r := NewTree(leavesN(28, map[int]string{i: "mutated"})).Root()
		if prev, dup := seen[r]; dup {
			t.Fatalf("mutating leaf %d collides with %d", i, prev)
		}
		seen[r] = i
	}
	// Order matters: a permutation is a different run.
	swapped := leavesN(28, nil)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if NewTree(swapped).Root() == base {
		t.Fatal("leaf swap did not change the root")
	}
	// Leaf-count extension matters.
	if NewTree(leavesN(29, nil)).Root() == base {
		t.Fatal("appending a leaf did not change the root")
	}
}

// TestMerkleDomainSeparation: a single leaf whose bytes are exactly a
// node's child-hash concatenation must not hash to that node.
func TestMerkleDomainSeparation(t *testing.T) {
	two := NewTree(leavesN(2, nil))
	forged := append(append([]byte(nil), two.levels[0][0][:]...), two.levels[0][1][:]...)
	if NewTree([][]byte{forged}).Root() == two.Root() {
		t.Fatal("leaf/node domain separation failed")
	}
}

func TestMerkleDiff(t *testing.T) {
	cases := []struct {
		n, m   int
		mutate map[int]string
		want   []int
	}{
		{28, 28, nil, nil},
		{28, 28, map[int]string{0: "x"}, []int{0}},
		{28, 28, map[int]string{27: "x"}, []int{27}},
		{28, 28, map[int]string{3: "x", 17: "y"}, []int{3, 17}},
		{1, 1, map[int]string{0: "x"}, []int{0}},
		{5, 5, map[int]string{0: "a", 1: "b", 2: "c", 3: "d", 4: "e"}, []int{0, 1, 2, 3, 4}},
		// Different leaf counts: the tail is all reported.
		{28, 30, nil, []int{28, 29}},
		{30, 28, map[int]string{2: "x"}, []int{2, 28, 29}},
		{0, 3, nil, []int{0, 1, 2}},
		{0, 0, nil, nil},
	}
	for _, tc := range cases {
		a := NewTree(leavesN(tc.n, nil))
		b := NewTree(leavesN(tc.m, tc.mutate))
		got := a.Diff(b)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Diff(n=%d,m=%d,mut=%v) = %v, want %v", tc.n, tc.m, tc.mutate, got, tc.want)
		}
		// Diff is symmetric in which leaves differ.
		if rev := b.Diff(a); !reflect.DeepEqual(rev, tc.want) {
			t.Errorf("reverse Diff(n=%d,m=%d) = %v, want %v", tc.m, tc.n, rev, tc.want)
		}
	}
}

// TestMerkleDiffLogarithmic pins the O(d log n) claim: a single differing
// leaf among n costs at most ~2*ceil(log2 n)+1 node comparisons, not n.
func TestMerkleDiffLogarithmic(t *testing.T) {
	for _, n := range []int{64, 1000, 4096} {
		a := NewTree(leavesN(n, nil))
		b := NewTree(leavesN(n, map[int]string{n / 2: "x"}))
		got := a.Diff(b)
		if !reflect.DeepEqual(got, []int{n / 2}) {
			t.Fatalf("n=%d: Diff=%v", n, got)
		}
		depth := bits.Len(uint(n - 1))
		bound := 2*depth + 1
		if c := a.DiffComparisons(); c > bound {
			t.Errorf("n=%d: single-leaf diff cost %d comparisons, O(log n) bound is %d", n, c, bound)
		}
	}
	// Identical trees: root comparison(s) only — strictly fewer than n.
	a := NewTree(leavesN(4096, nil))
	b := NewTree(leavesN(4096, nil))
	if diff := a.Diff(b); len(diff) != 0 {
		t.Fatalf("identical trees diff: %v", diff)
	}
	if c := a.DiffComparisons(); c != 1 {
		t.Errorf("identical trees cost %d comparisons, want 1 (root only)", c)
	}
}

// TestMerkleEmptyRoot: the empty tree has a well-defined root distinct
// from any nonempty tree's.
func TestMerkleEmptyRoot(t *testing.T) {
	e1 := NewTree(nil).Root()
	e2 := NewTree([][]byte{}).Root()
	if e1 != e2 {
		t.Fatal("empty roots differ")
	}
	if e1 == NewTree(leavesN(1, nil)).Root() {
		t.Fatal("empty root collides with one-leaf root")
	}
	// An empty leaf is not the same as no leaves.
	if e1 == NewTree([][]byte{nil}).Root() {
		t.Fatal("empty root collides with single-empty-leaf root")
	}
}
