// Package trace implements MEDEA's compact versioned binary trace format:
// a recording of every traffic event of one deterministic run, reusable as
// a test vector or replayed through a different router/topology (the
// scenario runner's "trace" workload). Two event kinds are recorded:
// flit-level injections from the synthetic traffic sources (noc.TrafficNode)
// and eMPI message sends from the kernel workloads (tie.Port.StartSend).
//
// The wire layout mirrors the shard-protocol frame and disk-cache checksum
// idioms:
//
//	magic "MEDEATRC"                     8 bytes
//	format version                       uint16 LE
//	header frame: length + JSON          uint32 LE + bytes (<= 64 KiB)
//	event count                          uint64 LE
//	per event: length + payload          uint32 LE + bytes (<= 64 B)
//	    kind                             uint8
//	    cycle, src, dst, meta            uvarint each
//	trailing SHA-256 over all preceding  32 bytes
//
// Every structural defect — bad magic, unknown format version, a
// CodeVersion stamp from a different simulator build, checksum mismatch,
// truncation, oversized or malformed frames, out-of-range endpoints,
// out-of-order cycles — decodes to a structured error wrapping one of the
// Err* sentinels; Decode never panics (FuzzTraceDecode holds this). The
// trailing checksum doubles as the trace's content hash, which replay
// cache keys embed, so a cached replay can never outlive its trace bytes.
package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/resultcache"
)

// Magic identifies a MEDEA trace file (8 bytes).
const Magic = "MEDEATRC"

// FormatVersion is the current wire-format version; Decode rejects any
// other with ErrVersion.
const FormatVersion = 1

// Event kinds.
const (
	// EventInject is a flit-level injection from a synthetic traffic
	// source: Meta carries the flit's data word.
	EventInject uint8 = 0
	// EventMessage is an eMPI logical-packet send from a kernel run
	// (tie.Port.StartSend): Meta carries the packet's word count.
	EventMessage uint8 = 1
)

// Structured decode errors. Every Decode failure wraps exactly one of
// these, so callers (and the fuzz target) can classify failures without
// string matching.
var (
	ErrMagic       = errors.New("trace: not a MEDEA trace (bad magic)")
	ErrVersion     = errors.New("trace: unsupported format version")
	ErrCodeVersion = errors.New("trace: recorded by a different simulator build")
	ErrChecksum    = errors.New("trace: checksum mismatch (corrupt or tampered file)")
	ErrTruncated   = errors.New("trace: truncated file")
	ErrHeader      = errors.New("trace: invalid header")
	ErrFrame       = errors.New("trace: invalid event frame")
)

// Wire-format limits. The header frame is JSON and stays small; an event
// frame is at most 1 + 4 maximal uvarints. Anything larger is corruption,
// not data.
const (
	maxHeaderFrame = 64 << 10
	maxEventFrame  = 64
	maxEndpoints   = 1 << 20
	// maxFileSize bounds Load's read so a mis-pointed path (a device
	// file, a giant unrelated binary) cannot wedge or OOM the loader.
	maxFileSize = 256 << 20
)

// Header records the provenance of a trace: the fabric it was captured
// on and the axis labels of the recorded run. Replay reuses Width/Height
// to rebuild the endpoint grid and reattaches the labels to its result
// rows, so a same-fabric replay renders byte-identically to the source
// run. CodeVersion pins the simulator build: traffic semantics may change
// between builds, so Decode refuses skewed traces (re-record instead of
// silently replaying different behaviour).
type Header struct {
	CodeVersion string  `json:"code_version"`
	Width       int     `json:"width"`
	Height      int     `json:"height"`
	Topology    string  `json:"topology"`
	Router      string  `json:"router"`
	Pattern     string  `json:"pattern"`
	Rate        float64 `json:"rate"`
	Seed        int64   `json:"seed"`
	Bursty      bool    `json:"bursty,omitempty"`
	QueueCap    int     `json:"queue_cap,omitempty"`
	// Warmup and Measure reproduce the recorded horizon: events span
	// cycles [0, Warmup+Measure), and a replay measures the same window.
	Warmup  int64 `json:"warmup"`
	Measure int64 `json:"measure"`
}

// Event is one recorded traffic event. Src and Dst are endpoint ids on
// the Header's Width x Height grid; Meta is the event's payload word
// (the flit data word for injections, the word count for messages).
type Event struct {
	Kind  uint8
	Cycle int64
	Src   int
	Dst   int
	Meta  uint32
}

// Trace is a decoded or under-construction trace: a provenance header
// plus events in nondecreasing cycle order (the engine steps components
// in cycle order, so recording appends them that way; Decode enforces it).
type Trace struct {
	Header Header
	Events []Event

	hash string // memoized content hash (hex of the trailing checksum)
}

// New starts an empty trace for recording, stamping the current build's
// CodeVersion when the header carries none.
func New(h Header) *Trace {
	if h.CodeVersion == "" {
		h.CodeVersion = resultcache.CodeVersion
	}
	return &Trace{Header: h}
}

// RecordInjection appends one flit-level injection event. It implements
// noc.InjectionRecorder, so a *Trace plugs directly into
// noc.TrafficConfig.Record. Recording happens on the engine thread in
// cycle order; the recorder never perturbs the run it observes.
func (t *Trace) RecordInjection(cycle int64, src, dst int, meta uint32) {
	t.append(Event{Kind: EventInject, Cycle: cycle, Src: src, Dst: dst, Meta: meta})
}

// RecordMessage appends one eMPI message-send event (tie.SendRecorder).
func (t *Trace) RecordMessage(cycle int64, src, dst int, meta uint32) {
	t.append(Event{Kind: EventMessage, Cycle: cycle, Src: src, Dst: dst, Meta: meta})
}

func (t *Trace) append(ev Event) {
	t.hash = ""
	t.Events = append(t.Events, ev)
}

// Encode serializes the trace to the wire format described in the package
// comment.
func (t *Trace) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.Write(binary.LittleEndian.AppendUint16(nil, FormatVersion))
	hj, err := json.Marshal(t.Header)
	if err != nil {
		// Header is a plain struct of marshalable fields; this cannot
		// happen for traces built through New/Decode.
		panic(fmt.Sprintf("trace: encoding header: %v", err))
	}
	buf.Write(binary.LittleEndian.AppendUint32(nil, uint32(len(hj))))
	buf.Write(hj)
	buf.Write(binary.LittleEndian.AppendUint64(nil, uint64(len(t.Events))))
	frame := make([]byte, 0, maxEventFrame)
	for _, ev := range t.Events {
		frame = frame[:0]
		frame = append(frame, ev.Kind)
		frame = binary.AppendUvarint(frame, uint64(ev.Cycle))
		frame = binary.AppendUvarint(frame, uint64(ev.Src))
		frame = binary.AppendUvarint(frame, uint64(ev.Dst))
		frame = binary.AppendUvarint(frame, uint64(ev.Meta))
		buf.Write(binary.LittleEndian.AppendUint32(nil, uint32(len(frame))))
		buf.Write(frame)
	}
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes()
}

// Hash returns the trace's content hash: the hex of its trailing SHA-256
// checksum. Decode memoizes it from the verified file bytes; for traces
// under construction it is recomputed from a fresh Encode. Replay cache
// keys embed it, so two byte-identical trace files share cache entries
// and any byte difference misses.
func (t *Trace) Hash() string {
	if t.hash == "" {
		enc := t.Encode()
		t.hash = hex.EncodeToString(enc[len(enc)-sha256.Size:])
	}
	return t.hash
}

// Save writes the encoded trace atomically (temp file + rename, the disk
// cache's idiom) so readers never observe a half-written trace.
func (t *Trace) Save(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".trace-*")
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	data := t.Encode()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("trace: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("trace: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// Load reads and decodes a trace file. The read is size-bounded so a
// mis-pointed path fails fast instead of wedging the loader.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, maxFileSize+1))
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	if len(data) > maxFileSize {
		return nil, fmt.Errorf("trace: %s: larger than the %d MiB trace limit", path, maxFileSize>>20)
	}
	t, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// Decode parses and validates a wire-format trace. The trailing checksum
// is verified before any structural parsing, so every post-checksum error
// indicates an encoder bug rather than transport corruption. All failures
// wrap one of the package's Err* sentinels; Decode never panics.
func Decode(data []byte) (*Trace, error) {
	if len(data) < len(Magic)+2+4+8+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrMagic
	}
	body, tail := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], tail) {
		return nil, ErrChecksum
	}
	cur := body[len(Magic):]
	version := binary.LittleEndian.Uint16(cur)
	cur = cur[2:]
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: %d (this build reads version %d)", ErrVersion, version, FormatVersion)
	}

	hlen := binary.LittleEndian.Uint32(cur)
	cur = cur[4:]
	if hlen > maxHeaderFrame {
		return nil, fmt.Errorf("%w: %d-byte header frame (limit %d)", ErrHeader, hlen, maxHeaderFrame)
	}
	if uint64(hlen) > uint64(len(cur)) {
		return nil, fmt.Errorf("%w: header frame runs past the end", ErrTruncated)
	}
	var h Header
	if err := json.Unmarshal(cur[:hlen], &h); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHeader, err)
	}
	cur = cur[hlen:]
	if err := h.validate(); err != nil {
		return nil, err
	}
	if h.CodeVersion != resultcache.CodeVersion {
		return nil, fmt.Errorf("%w: trace has %q, this build is %q; re-record the trace",
			ErrCodeVersion, h.CodeVersion, resultcache.CodeVersion)
	}

	if len(cur) < 8 {
		return nil, fmt.Errorf("%w: missing event count", ErrTruncated)
	}
	count := binary.LittleEndian.Uint64(cur)
	cur = cur[8:]
	// Each event frame takes at least 5 bytes (length + kind), so a count
	// the remaining bytes cannot hold is detected before any allocation.
	if count > uint64(len(cur))/5 {
		return nil, fmt.Errorf("%w: %d events declared, %d bytes remain", ErrTruncated, count, len(cur))
	}
	t := &Trace{Header: h, Events: make([]Event, 0, count)}
	horizon := h.Warmup + h.Measure
	var prevCycle int64
	for i := uint64(0); i < count; i++ {
		if len(cur) < 4 {
			return nil, fmt.Errorf("%w: event %d frame length missing", ErrTruncated, i)
		}
		flen := binary.LittleEndian.Uint32(cur)
		cur = cur[4:]
		if flen == 0 || flen > maxEventFrame {
			return nil, fmt.Errorf("%w: event %d is %d bytes (limit %d)", ErrFrame, i, flen, maxEventFrame)
		}
		if uint64(flen) > uint64(len(cur)) {
			return nil, fmt.Errorf("%w: event %d runs past the end", ErrTruncated, i)
		}
		ev, err := decodeEvent(cur[:flen])
		if err != nil {
			return nil, fmt.Errorf("%w: event %d: %v", ErrFrame, i, err)
		}
		cur = cur[flen:]
		if ev.Src >= h.Width*h.Height || ev.Dst >= h.Width*h.Height {
			return nil, fmt.Errorf("%w: event %d endpoints (%d->%d) outside the %dx%d grid",
				ErrFrame, i, ev.Src, ev.Dst, h.Width, h.Height)
		}
		if ev.Cycle >= horizon {
			return nil, fmt.Errorf("%w: event %d at cycle %d beyond the recorded %d-cycle horizon",
				ErrFrame, i, ev.Cycle, horizon)
		}
		if ev.Cycle < prevCycle {
			return nil, fmt.Errorf("%w: event %d at cycle %d after cycle %d (events must be cycle-ordered)",
				ErrFrame, i, ev.Cycle, prevCycle)
		}
		prevCycle = ev.Cycle
		t.Events = append(t.Events, ev)
	}
	if len(cur) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last event", ErrFrame, len(cur))
	}
	t.hash = hex.EncodeToString(tail)
	return t, nil
}

// decodeEvent parses one event frame payload; the frame must be consumed
// exactly.
func decodeEvent(frame []byte) (Event, error) {
	ev := Event{Kind: frame[0]}
	if ev.Kind > EventMessage {
		return Event{}, fmt.Errorf("unknown event kind %d", ev.Kind)
	}
	rest := frame[1:]
	fields := []struct {
		name string
		max  uint64
		set  func(uint64)
	}{
		{"cycle", 1 << 62, func(v uint64) { ev.Cycle = int64(v) }},
		{"src", maxEndpoints, func(v uint64) { ev.Src = int(v) }},
		{"dst", maxEndpoints, func(v uint64) { ev.Dst = int(v) }},
		{"meta", 1<<32 - 1, func(v uint64) { ev.Meta = uint32(v) }},
	}
	for _, f := range fields {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return Event{}, fmt.Errorf("bad %s varint", f.name)
		}
		if v > f.max {
			return Event{}, fmt.Errorf("%s %d out of range", f.name, v)
		}
		f.set(v)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return Event{}, fmt.Errorf("%d leftover bytes", len(rest))
	}
	return ev, nil
}

func (h Header) validate() error {
	if h.Width < 1 || h.Height < 1 {
		return fmt.Errorf("%w: %dx%d endpoint grid", ErrHeader, h.Width, h.Height)
	}
	if h.Width*h.Height > maxEndpoints {
		return fmt.Errorf("%w: %dx%d grid exceeds %d endpoints", ErrHeader, h.Width, h.Height, maxEndpoints)
	}
	if h.Warmup < 0 || h.Measure <= 0 {
		return fmt.Errorf("%w: warmup %d / measure %d (measure must be positive)", ErrHeader, h.Warmup, h.Measure)
	}
	return nil
}
