package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/resultcache"
)

// testTrace builds a small, fully populated trace exercising both event
// kinds and nondecreasing (including equal) cycles.
func testTrace() *Trace {
	t := New(Header{
		Width: 4, Height: 4,
		Topology: "torus", Router: "deflection",
		Pattern: "uniform", Rate: 0.1, Seed: 7,
		Warmup: 100, Measure: 900,
	})
	t.RecordInjection(0, 0, 15, 42)
	t.RecordInjection(3, 1, 2, 0)
	t.RecordInjection(3, 5, 5, 1<<31)
	t.RecordMessage(7, 15, 0, 4096)
	t.RecordInjection(999, 9, 10, 1<<32-1)
	return t
}

// reseal recomputes the trailing checksum after a test mutates the body,
// so structural defects are reached instead of stopping at ErrChecksum.
func reseal(data []byte) []byte {
	body := data[:len(data)-sha256.Size]
	sum := sha256.Sum256(body)
	return append(append([]byte(nil), body...), sum[:]...)
}

func TestRoundTrip(t *testing.T) {
	src := testTrace()
	enc := src.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Header, src.Header) {
		t.Errorf("header round trip:\ngot  %+v\nwant %+v", got.Header, src.Header)
	}
	if !reflect.DeepEqual(got.Events, src.Events) {
		t.Errorf("events round trip:\ngot  %+v\nwant %+v", got.Events, src.Events)
	}
	if got.Header.CodeVersion != resultcache.CodeVersion {
		t.Errorf("CodeVersion = %q, want the build's %q", got.Header.CodeVersion, resultcache.CodeVersion)
	}
	if got.Hash() != src.Hash() {
		t.Errorf("hash skew across round trip: %s vs %s", got.Hash(), src.Hash())
	}
	if len(src.Hash()) != sha256.Size*2 {
		t.Errorf("Hash() = %q, want %d hex chars", src.Hash(), sha256.Size*2)
	}
}

func TestHashInvalidatedByAppend(t *testing.T) {
	tr := testTrace()
	before := tr.Hash()
	tr.RecordInjection(999, 0, 1, 0)
	if after := tr.Hash(); after == before {
		t.Error("Hash unchanged after appending an event")
	}
}

func TestSaveLoad(t *testing.T) {
	src := testTrace()
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := src.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, src.Events) || !reflect.DeepEqual(got.Header, src.Header) {
		t.Error("Save/Load round trip lost data")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Error("Load(missing) succeeded")
	}
}

// TestTruncationAtEveryByte: every proper prefix of a valid trace must
// decode to a structured error — never a panic, never success.
func TestTruncationAtEveryByte(t *testing.T) {
	enc := testTrace().Encode()
	for n := 0; n < len(enc); n++ {
		_, err := Decode(enc[:n])
		if err == nil {
			t.Fatalf("Decode of %d-byte prefix (of %d) succeeded", n, len(enc))
		}
		if !isStructured(err) {
			t.Fatalf("Decode of %d-byte prefix: unstructured error %v", n, err)
		}
	}
}

// TestChecksumFlips: flipping any single byte of the body or the trailing
// checksum must be detected. Magic bytes fail the magic check (it runs
// first, to name the real problem on non-trace files); every other flip
// fails the checksum.
func TestChecksumFlips(t *testing.T) {
	enc := testTrace().Encode()
	for pos := 0; pos < len(enc); pos++ {
		mut := append([]byte(nil), enc...)
		mut[pos] ^= 0x01
		_, err := Decode(mut)
		want := ErrChecksum
		if pos < len(Magic) {
			want = ErrMagic
		}
		if !errors.Is(err, want) {
			t.Fatalf("flip at byte %d: err = %v, want %v", pos, err, want)
		}
	}
}

func TestVersionSkew(t *testing.T) {
	enc := testTrace().Encode()
	binary.LittleEndian.PutUint16(enc[len(Magic):], FormatVersion+1)
	if _, err := Decode(reseal(enc)); !errors.Is(err, ErrVersion) {
		t.Errorf("future version: err = %v, want ErrVersion", err)
	}
}

func TestCodeVersionSkew(t *testing.T) {
	tr := testTrace()
	tr.Header.CodeVersion = "medea-1999.01"
	if _, err := Decode(tr.Encode()); !errors.Is(err, ErrCodeVersion) {
		t.Errorf("stale CodeVersion: err = %v, want ErrCodeVersion", err)
	}
}

func TestHeaderDefects(t *testing.T) {
	for name, h := range map[string]Header{
		"zero-grid":    {Width: 0, Height: 4, Measure: 1},
		"huge-grid":    {Width: 1 << 12, Height: 1 << 12, Measure: 1},
		"zero-measure": {Width: 4, Height: 4, Measure: 0},
		"neg-warmup":   {Width: 4, Height: 4, Warmup: -1, Measure: 1},
	} {
		tr := New(h)
		if _, err := Decode(tr.Encode()); !errors.Is(err, ErrHeader) {
			t.Errorf("%s: err = %v, want ErrHeader", name, err)
		}
	}
}

// corrupt re-encodes testTrace with one structural defect applied by fn,
// reseals the checksum and decodes, returning the error.
func corrupt(t *testing.T, fn func(enc []byte) []byte) error {
	t.Helper()
	_, err := Decode(reseal(fn(testTrace().Encode())))
	if err == nil {
		t.Fatal("corrupted trace decoded cleanly")
	}
	return err
}

// eventsOff locates the first event frame (after magic, version, header
// frame and event count) in an encoded testTrace.
func eventsOff(enc []byte) int {
	off := len(Magic) + 2
	hlen := binary.LittleEndian.Uint32(enc[off:])
	return off + 4 + int(hlen) + 8
}

func TestFrameDefects(t *testing.T) {
	t.Run("oversized-frame", func(t *testing.T) {
		err := corrupt(t, func(enc []byte) []byte {
			binary.LittleEndian.PutUint32(enc[eventsOff(enc):], maxEventFrame+1)
			return enc
		})
		if !errors.Is(err, ErrFrame) {
			t.Errorf("err = %v, want ErrFrame", err)
		}
	})
	t.Run("zero-frame", func(t *testing.T) {
		err := corrupt(t, func(enc []byte) []byte {
			binary.LittleEndian.PutUint32(enc[eventsOff(enc):], 0)
			return enc
		})
		if !errors.Is(err, ErrFrame) {
			t.Errorf("err = %v, want ErrFrame", err)
		}
	})
	t.Run("bad-kind", func(t *testing.T) {
		err := corrupt(t, func(enc []byte) []byte {
			enc[eventsOff(enc)+4] = EventMessage + 1
			return enc
		})
		if !errors.Is(err, ErrFrame) {
			t.Errorf("err = %v, want ErrFrame", err)
		}
	})
	t.Run("absurd-count", func(t *testing.T) {
		err := corrupt(t, func(enc []byte) []byte {
			binary.LittleEndian.PutUint64(enc[eventsOff(enc)-8:], 1<<40)
			return enc
		})
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		err := corrupt(t, func(enc []byte) []byte {
			body, tail := enc[:len(enc)-sha256.Size], enc[len(enc)-sha256.Size:]
			return append(append(append([]byte(nil), body...), 0xEE), tail...)
		})
		if !errors.Is(err, ErrFrame) {
			t.Errorf("err = %v, want ErrFrame", err)
		}
	})
}

func TestSemanticDefects(t *testing.T) {
	encode := func(events ...Event) []byte {
		tr := New(Header{Width: 4, Height: 4, Warmup: 100, Measure: 900})
		tr.Events = events
		return tr.Encode()
	}
	for name, tc := range map[string]struct {
		events []Event
		want   error
	}{
		"src-off-grid":   {[]Event{{Kind: EventInject, Cycle: 1, Src: 16, Dst: 0}}, ErrFrame},
		"dst-off-grid":   {[]Event{{Kind: EventInject, Cycle: 1, Src: 0, Dst: 99}}, ErrFrame},
		"beyond-horizon": {[]Event{{Kind: EventInject, Cycle: 1000, Src: 0, Dst: 1}}, ErrFrame},
		"cycle-regress": {[]Event{
			{Kind: EventInject, Cycle: 5, Src: 0, Dst: 1},
			{Kind: EventInject, Cycle: 4, Src: 0, Dst: 1},
		}, ErrFrame},
	} {
		if _, err := Decode(encode(tc.events...)); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", name, err, tc.want)
		}
	}
}

func TestBadMagic(t *testing.T) {
	enc := testTrace().Encode()
	copy(enc, "NOTMEDEA")
	if _, err := Decode(enc); !errors.Is(err, ErrMagic) {
		t.Errorf("err = %v, want ErrMagic", err)
	}
	if _, err := Decode([]byte("short")); !errors.Is(err, ErrTruncated) {
		t.Errorf("tiny input: err = %v, want ErrTruncated", err)
	}
}

func TestLoadSizeLimit(t *testing.T) {
	// Loading a file over the size cap must fail with the limit named, not
	// attempt a decode of partial bytes. A sparse file keeps this cheap.
	path := filepath.Join(t.TempDir(), "huge.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(maxFileSize + 1); err != nil {
		f.Close()
		t.Skip("filesystem does not support sparse truncate")
	}
	f.Close()
	if _, err := Load(path); err == nil || !bytes.Contains([]byte(err.Error()), []byte("trace limit")) {
		t.Errorf("oversized file: err = %v, want trace-limit error", err)
	}
}

// isStructured reports whether err wraps one of the package's sentinels —
// the contract that lets callers classify failures without string matching.
func isStructured(err error) bool {
	for _, s := range []error{ErrMagic, ErrVersion, ErrCodeVersion, ErrChecksum, ErrTruncated, ErrHeader, ErrFrame} {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}
