package trace

import (
	"encoding/binary"
	"reflect"
	"testing"
)

// FuzzTraceDecode holds the package's robustness contract on arbitrary
// bytes: Decode never panics, every failure wraps a structured sentinel,
// and anything that decodes cleanly survives an encode/decode round trip
// unchanged (so a replay can never be silently wrong about what it read).
func FuzzTraceDecode(f *testing.F) {
	// Seed corpus: a recorded-looking trace, an empty one, and hand-mutated
	// variants targeting each header/frame boundary the decoder checks.
	valid := testTrace().Encode()
	f.Add(valid)
	f.Add(New(Header{Width: 2, Height: 2, Measure: 1}).Encode())

	truncated := valid[:len(valid)/2]
	f.Add(append([]byte(nil), truncated...))

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)

	badMagic := append([]byte(nil), valid...)
	copy(badMagic, "XXXXXXXX")
	f.Add(badMagic)

	futureVersion := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(futureVersion[len(Magic):], 0xFFFF)
	f.Add(reseal(futureVersion))

	skewed := testTrace()
	skewed.Header.CodeVersion = "medea-0000.00"
	f.Add(skewed.Encode())

	hugeFrame := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(hugeFrame[eventsOff(hugeFrame):], 1<<30)
	f.Add(reseal(hugeFrame))

	hugeCount := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hugeCount[eventsOff(hugeCount)-8:], 1<<62)
	f.Add(reseal(hugeCount))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			if !isStructured(err) {
				t.Fatalf("unstructured decode error: %v", err)
			}
			return
		}
		// A clean decode must round-trip: re-encoding and decoding again
		// yields the same header and events (the encoder writes canonical
		// varints, so a second decode cannot drift).
		again, err := Decode(tr.Encode())
		if err != nil {
			t.Fatalf("re-decode of re-encoded trace failed: %v", err)
		}
		if !reflect.DeepEqual(again.Header, tr.Header) || !reflect.DeepEqual(again.Events, tr.Events) {
			t.Fatal("encode/decode round trip changed the trace")
		}
	})
}
