// Package core assembles a complete MEDEA system: the folded-torus NoC,
// one MPMMU memory node, and a set of processing elements each with an L1
// cache, a pif2NoC bridge, a TIE message-passing port and a configurable
// NoC-access arbiter. It is the primary public entry point of the library:
// build a Config, call Build, launch programs and run.
package core

import (
	"context"
	"fmt"

	"repro/internal/bridge"
	"repro/internal/cache"
	"repro/internal/flit"
	"repro/internal/memmap"
	"repro/internal/memory"
	"repro/internal/mpmmu"
	"repro/internal/noc"
	"repro/internal/pe"
	"repro/internal/sim"
	"repro/internal/tie"
)

// Config describes one point in the MEDEA design space.
type Config struct {
	// TorusW, TorusH size the folded torus (default 4x4, the paper's
	// configuration).
	TorusW, TorusH int
	// NumCompute is the number of compute cores (2..15 in the paper; one
	// further node is the MPMMU).
	NumCompute int
	// CacheKB sizes each core's L1 cache (2..64 in the paper).
	CacheKB int
	// CacheWays sets L1 associativity (0/1 = direct-mapped, the default
	// used by all calibrated experiments).
	CacheWays int
	// Policy selects write-back or write-through L1 caches.
	Policy cache.Policy
	// Arbiter selects the NoC-access arbiter configuration.
	Arbiter bridge.ArbiterMode
	// ArbFIFOCap sizes the arbiter staging FIFO(s) in the FIFO modes.
	ArbFIFOCap int
	// MPMMUNode is the first MPMMU's node id (default 0; compute cores
	// occupy the remaining ids).
	MPMMUNode int
	// NumMPMMUs is the number of memory nodes (default 1, the paper's
	// simplest implementation; the architecture supports more, with
	// shared-memory lines interleaved across them by the bridges'
	// configuration memories).
	NumMPMMUs int
	// MPMMUCacheKB sizes each MPMMU's local cache (default 32).
	MPMMUCacheKB int
	// DDR is the backing-store latency model.
	DDR memory.LatencyModel
	// Cost is the core timing model.
	Cost pe.CostModel
	// PortFIFOCap sizes the TIE and bridge output FIFOs (default 4).
	PortFIFOCap int
}

// DefaultConfig returns the baseline configuration used throughout the
// experiments: a 4x4 folded torus, write-back caches and the plain
// multiplexer arbiter.
func DefaultConfig(numCompute, cacheKB int, policy cache.Policy) Config {
	return Config{
		TorusW: 4, TorusH: 4,
		NumCompute: numCompute,
		CacheKB:    cacheKB,
		Policy:     policy,
	}
}

func (c Config) withDefaults() Config {
	if c.TorusW == 0 {
		c.TorusW = 4
	}
	if c.TorusH == 0 {
		c.TorusH = 4
	}
	if c.ArbFIFOCap == 0 {
		c.ArbFIFOCap = 8
	}
	if c.NumMPMMUs == 0 {
		c.NumMPMMUs = 1
	}
	if c.MPMMUCacheKB == 0 {
		c.MPMMUCacheKB = 32
	}
	if c.DDR == (memory.LatencyModel{}) {
		c.DDR = memory.DefaultLatency
	}
	if c.Cost == (pe.CostModel{}) {
		c.Cost = pe.DefaultCost
	}
	if c.PortFIFOCap == 0 {
		c.PortFIFOCap = 4
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	cc := c.withDefaults()
	topo, err := noc.NewTopology(cc.TorusW, cc.TorusH)
	if err != nil {
		return err
	}
	if cc.NumCompute < 1 {
		return fmt.Errorf("core: need at least one compute core")
	}
	if cc.NumMPMMUs < 1 {
		return fmt.Errorf("core: need at least one MPMMU")
	}
	if cc.NumCompute+cc.NumMPMMUs > topo.NumNodes() {
		return fmt.Errorf("core: %d compute cores + %d MPMMUs exceed %d nodes",
			cc.NumCompute, cc.NumMPMMUs, topo.NumNodes())
	}
	if topo.NumNodes() > flit.MaxSrc+1 {
		return fmt.Errorf("core: %d nodes exceed the %d-node limit of the source-id field",
			topo.NumNodes(), flit.MaxSrc+1)
	}
	if cc.MPMMUNode < 0 || cc.MPMMUNode >= topo.NumNodes() {
		return fmt.Errorf("core: MPMMU node %d out of range", cc.MPMMUNode)
	}
	if _, err := cache.New(cache.Config{
		SizeBytes: cc.CacheKB << 10, Policy: cc.Policy, Ways: cc.CacheWays,
	}); err != nil {
		return err
	}
	return nil
}

// System is a fully wired MEDEA instance.
type System struct {
	Cfg    Config
	Engine *sim.Engine
	Topo   noc.Topology
	Net    *noc.Network
	DDR    *memory.DDR
	MMUs   []*mpmmu.Unit
	Procs  []*pe.Proc // index = rank
	Map    memmap.Map

	mmuNodes []int // MPMMU node ids, index = memory-node number
	nodeOf   []int // rank -> node id
	arbiters []*bridge.Arbiter
}

// MMU returns the primary (first) memory node.
func (s *System) MMU() *mpmmu.Unit { return s.MMUs[0] }

// MMUFor returns the memory node serving addr: cache lines are
// interleaved across the MPMMUs by the bridges' configuration memories.
func (s *System) MMUFor(addr uint32) *mpmmu.Unit {
	return s.MMUs[s.mmuIndexFor(addr)]
}

func (s *System) mmuIndexFor(addr uint32) int {
	return int(addr/cache.LineBytes) % len(s.MMUs)
}

// MPMMUBusyTotal sums busy cycles across all memory nodes.
func (s *System) MPMMUBusyTotal() int64 {
	var n int64
	for _, u := range s.MMUs {
		n += u.Stats.BusyCycles.Value()
	}
	return n
}

// nodeIface demultiplexes flits arriving at a compute node: message flits
// go to the TIE port, everything else to the shared-memory bridge. The
// injection side is the node's arbiter.
type nodeIface struct {
	arb  *bridge.Arbiter
	brg  *bridge.Bridge
	port *tie.Port
}

func (ni *nodeIface) TryPull() (flit.Flit, bool) { return ni.arb.TryPull() }

// Pending exposes the arbiter's queued-flit count so the node's switch
// can tell whether injection work remains (fast-forward idle probing).
func (ni *nodeIface) Pending() int { return ni.arb.Pending() }

func (ni *nodeIface) Deliver(f flit.Flit, now int64) {
	if f.Type == flit.Message {
		ni.port.Deliver(f)
		return
	}
	ni.brg.Deliver(f, now)
}

// Build wires a system from a configuration.
func Build(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo, _ := noc.NewTopology(cfg.TorusW, cfg.TorusH)
	engine := sim.NewEngine()
	net := noc.NewNetwork(engine, topo)
	ddr := memory.NewDDR(cfg.DDR)

	coordOf := func(node int) (int, int) { return topo.Coord(node) }

	s := &System{
		Cfg:    cfg,
		Engine: engine,
		Topo:   topo,
		Net:    net,
		DDR:    ddr,
		Map:    memmap.DefaultMap(cfg.NumCompute),
	}

	// Spread the memory nodes evenly around the torus starting from
	// MPMMUNode, then fill the remaining node ids with compute cores.
	isMMU := make(map[int]bool, cfg.NumMPMMUs)
	for k := 0; k < cfg.NumMPMMUs; k++ {
		node := (cfg.MPMMUNode + k*topo.NumNodes()/cfg.NumMPMMUs) % topo.NumNodes()
		if isMMU[node] {
			return nil, fmt.Errorf("core: MPMMU placement collision at node %d", node)
		}
		isMMU[node] = true
		mmuCfg := mpmmu.DefaultConfig(node, cfg.NumCompute)
		mmuCfg.CacheKB = cfg.MPMMUCacheKB
		mmu, err := mpmmu.New(mmuCfg, ddr, coordOf)
		if err != nil {
			return nil, err
		}
		net.Attach(node, mmu)
		engine.Register(sim.PhaseNode, mmu)
		s.MMUs = append(s.MMUs, mmu)
		s.mmuNodes = append(s.mmuNodes, node)
	}
	// The bridges' configuration memory: line-interleave addresses over
	// the memory nodes.
	route := func(addr uint32) int { return s.mmuNodes[s.mmuIndexFor(addr)] }

	node := cfg.MPMMUNode
	for rank := 0; rank < cfg.NumCompute; rank++ {
		node = (node + 1) % topo.NumNodes()
		for isMMU[node] {
			node = (node + 1) % topo.NumNodes()
		}
		l1, err := cache.New(cache.Config{
			SizeBytes: cfg.CacheKB << 10, Policy: cfg.Policy, Ways: cfg.CacheWays,
		})
		if err != nil {
			return nil, err
		}
		brg := bridge.NewRouted(node, route, coordOf, cfg.PortFIFOCap)
		port := tie.NewPort(node, topo.NumNodes(), coordOf, cfg.PortFIFOCap)
		proc := pe.NewProc(node, rank, l1, brg, port, cfg.Cost)
		arb := bridge.NewArbiter(fmt.Sprintf("arb%d", node), cfg.Arbiter, port.Out(), brg.Out(), cfg.ArbFIFOCap)
		net.Attach(node, &nodeIface{arb: arb, brg: brg, port: port})
		engine.Register(sim.PhaseNode, proc)
		engine.Register(sim.PhaseNode, arb)
		s.Procs = append(s.Procs, proc)
		s.nodeOf = append(s.nodeOf, node)
		s.arbiters = append(s.arbiters, arb)
	}
	return s, nil
}

// NodeOf maps a rank to its NoC node id.
func (s *System) NodeOf(rank int) int { return s.nodeOf[rank] }

// RankNodes returns the rank-to-node mapping shared by all communicators.
func (s *System) RankNodes() []int { return append([]int(nil), s.nodeOf...) }

// Launch starts one program per compute core, by rank.
func (s *System) Launch(progs []pe.Program) {
	if len(progs) != len(s.Procs) {
		panic(fmt.Sprintf("core: %d programs for %d cores", len(progs), len(s.Procs)))
	}
	for i, p := range s.Procs {
		p.Launch(progs[i])
	}
}

// Run ticks the system until every core's program has halted or the cycle
// budget is exhausted.
func (s *System) Run(maxCycles int64) error {
	return s.RunCtx(context.Background(), maxCycles)
}

// RunCtx ticks the system until every core's program has halted, the cycle
// budget is exhausted, or the context is canceled. It is the robust run
// loop behind Run:
//
//   - cancellation is polled mid-simulation (every few thousand cycles),
//     so a canceled run stops in bounded wall time instead of at run
//     granularity;
//   - a program that failed (Env.Fail or a recovered panic; see pe.Launch)
//     stops the run at the next tick boundary rather than letting the
//     surviving cores spin against the cycle budget, and its error is
//     returned;
//   - on every early exit the remaining program goroutines are aborted
//     (pe.Proc.Abort), so canceled, failed or timed-out runs leak nothing.
func (s *System) RunCtx(ctx context.Context, maxCycles int64) error {
	err := s.Engine.RunUntilCtx(ctx, func() bool {
		allHalted := true
		for _, p := range s.Procs {
			if !p.Halted() {
				allHalted = false
				continue
			}
			if p.ProgramErr() != nil {
				return true // fail fast: stop the run at this tick
			}
		}
		return allHalted
	}, maxCycles)

	// Collect the first failed program by rank (deterministic: rank order,
	// not halt order).
	var progErr error
	for _, p := range s.Procs {
		if p.Halted() && p.ProgramErr() != nil {
			progErr = fmt.Errorf("core: rank %d: %w", p.Rank, p.ProgramErr())
			break
		}
	}
	if err == nil && progErr != nil {
		err = progErr
	}
	if err != nil {
		// Unwind whatever is still running so no program goroutine
		// outlives its abandoned simulation.
		for _, p := range s.Procs {
			p.Abort()
		}
	}
	return err
}

// Cycles returns the cycle at which the last core finished.
func (s *System) Cycles() int64 {
	var max int64
	for _, p := range s.Procs {
		if p.FinishCycle() > max {
			max = p.FinishCycle()
		}
	}
	return max
}

// DrainCaches writes every dirty L1 and MPMMU cache line straight into the
// DDR image. It is a verification aid used after a run so functional
// results can be checked against a reference; it is not a simulated
// operation and costs no cycles.
func (s *System) DrainCaches() {
	var buf [cache.LineBytes]byte
	for _, p := range s.Procs {
		for _, addr := range p.Cache.DirtyLines() {
			if p.Cache.FlushLineInto(addr, buf[:]) {
				s.writeThroughMMU(addr, buf[:])
			}
		}
	}
	for _, u := range s.MMUs {
		u.FlushCache()
	}
}

// writeThroughMMU updates the owning MPMMU's cache image if the line is
// resident there, and DDR otherwise, preserving the single-owner invariant
// of the memory image.
func (s *System) writeThroughMMU(addr uint32, data []byte) {
	if u := s.MMUFor(addr); u.Cache().Probe(addr) {
		u.Cache().Write(addr, data)
		return
	}
	s.DDR.Write(addr, data)
}

// IntegrityErrors returns the count of message reassembly faults (double
// buffer overflows or mixed packets) across all TIE ports. A correct run
// reports zero; tests assert this.
func (s *System) IntegrityErrors() int64 {
	var n int64
	for _, p := range s.Procs {
		n += p.Port.Stats.Overflows.Value() + p.Port.Stats.Corrupted.Value()
	}
	return n
}
