package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/pe"
)

func buildMulti(t *testing.T, numCompute, numMMU int) *System {
	t.Helper()
	cfg := DefaultConfig(numCompute, 8, cache.WriteBack)
	cfg.NumMPMMUs = numMMU
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestMultiMMUPlacement(t *testing.T) {
	sys := buildMulti(t, 4, 4)
	if len(sys.MMUs) != 4 {
		t.Fatalf("%d MMUs", len(sys.MMUs))
	}
	// MPMMU nodes and compute nodes must be disjoint and all distinct.
	seen := map[int]bool{}
	for _, n := range sys.mmuNodes {
		if seen[n] {
			t.Fatalf("node %d reused", n)
		}
		seen[n] = true
	}
	for r := range sys.Procs {
		n := sys.NodeOf(r)
		if seen[n] {
			t.Fatalf("compute rank %d collides with another node %d", r, n)
		}
		seen[n] = true
	}
}

func TestMultiMMUValidation(t *testing.T) {
	cfg := DefaultConfig(14, 8, cache.WriteBack)
	cfg.NumMPMMUs = 3 // 14 + 3 > 16
	if err := cfg.Validate(); err == nil {
		t.Error("overfull torus accepted")
	}
}

func TestMultiMMULineInterleaving(t *testing.T) {
	sys := buildMulti(t, 2, 2)
	a := sys.Map.PrivateAddr(0, 0)
	if sys.MMUFor(a) == sys.MMUFor(a+16) {
		t.Error("adjacent lines should map to different MPMMUs with 2 memory nodes")
	}
	if sys.MMUFor(a) != sys.MMUFor(a+32) {
		t.Error("line interleaving should have period 2 lines")
	}
	if sys.MMUFor(a) != sys.MMUFor(a+4) {
		t.Error("words within one line must map to the same MPMMU")
	}
}

// TestMultiMMUFunctional runs real programs against 2 memory nodes:
// loads/stores and locks must behave identically to the single-MPMMU case.
func TestMultiMMUFunctional(t *testing.T) {
	sys := buildMulti(t, 3, 2)
	base := sys.Map.PrivateAddr(0, 0)
	shared := sys.Map.SharedAddr(0x100)
	lockA := sys.Map.SharedAddr(0x400) // these two words live on
	lockB := sys.Map.SharedAddr(0x410) // different MPMMUs
	var sum uint32
	progs := []pe.Program{
		func(env *pe.Env) {
			for k := uint32(0); k < 64; k++ {
				env.StoreWord(base+4*k, k) // lines spread over both MMUs
			}
			var s uint32
			for k := uint32(0); k < 64; k++ {
				s += env.LoadWord(base + 4*k)
			}
			sum = s
			env.StoreWordUncached(shared, 1)
		},
		func(env *pe.Env) {
			env.Lock(lockA)
			env.Lock(lockB)
			env.Unlock(lockB)
			env.Unlock(lockA)
		},
		func(env *pe.Env) {
			for env.LoadWordUncached(shared) != 1 {
			}
		},
	}
	run(t, sys, progs...)
	if want := uint32(64 * 63 / 2); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	// Both memory nodes must have seen traffic.
	for i, u := range sys.MMUs {
		if u.Stats.BlockReads.Value()+u.Stats.BlockWrites.Value()+
			u.Stats.SingleReads.Value()+u.Stats.SingleWrites.Value()+
			u.Stats.Locks.Value() == 0 {
			t.Errorf("MPMMU %d saw no traffic", i)
		}
	}
}

// TestMultiMMUSpreadsLoad checks that interleaving actually balances
// request counts between the memory nodes under streaming traffic.
func TestMultiMMUSpreadsLoad(t *testing.T) {
	sys := buildMulti(t, 2, 2)
	base := sys.Map.PrivateAddr(0, 0)
	progs := []pe.Program{
		func(env *pe.Env) {
			for k := uint32(0); k < 256; k++ {
				env.StoreWord(base+4*k, k)
			}
		},
		func(env *pe.Env) {},
	}
	run(t, sys, progs...)
	a := sys.MMUs[0].Stats.BlockReads.Value()
	b := sys.MMUs[1].Stats.BlockReads.Value()
	if a == 0 || b == 0 {
		t.Fatalf("unbalanced: %d vs %d block reads", a, b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("load imbalance: %d vs %d block reads", a, b)
	}
}
