package core

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/pe"
	"repro/internal/tie"
)

func TestReportContainsAllSections(t *testing.T) {
	sys := build(t, 2, 8, cache.WriteBack)
	run(t, sys,
		func(env *pe.Env) {
			env.StoreWord(sys.Map.PrivateAddr(0, 0), 1)
			env.Send(sys.NodeOf(1), tie.Data, []uint32{1})
		},
		func(env *pe.Env) {
			env.Recv(sys.NodeOf(0), tie.Data)
		},
	)
	rep := sys.Report()
	for _, want := range []string{
		"system: 4x4 torus, 2 compute cores",
		"pe0(n1)", "pe1(n2)",
		"NoC: injected",
		"MPMMU 0 (node 0): reads",
		"cache miss",
		"DDR:",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
