package core

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Report renders a human-readable summary of every statistics source in
// the system: per-core cache and port counters, arbiter decisions, NoC
// aggregates and MPMMU activity. Intended for CLI output and debugging.
func (s *System) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "system: %dx%d torus, %d compute cores + MPMMU (node %d), L1 %d kB %v, arbiter %v\n",
		s.Cfg.TorusW, s.Cfg.TorusH, len(s.Procs), s.Cfg.MPMMUNode,
		s.Cfg.CacheKB, s.Cfg.Policy, s.Cfg.Arbiter)
	fmt.Fprintf(&b, "cycles: %d\n\n", s.Cycles())

	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "core\tops\tcompute\tstall\tmem-ops\tmiss%%\tflits-out\tflits-in\tsends\trecvs\t\n")
	for r, p := range s.Procs {
		fmt.Fprintf(w, "pe%d(n%d)\t%d\t%d\t%d\t%d\t%.1f\t%d\t%d\t%d\t%d\t\n",
			r, p.ID,
			p.Stats.Ops.Value(), p.Stats.ComputeCycles.Value(), p.Stats.StallCycles.Value(),
			p.Stats.MemOps.Value(), 100*p.Cache.Stats.MissRate(),
			p.Port.Stats.FlitsSent.Value()+p.Bridge.Stats.FlitsSent.Value(),
			p.Port.Stats.FlitsRecv.Value()+p.Bridge.Stats.FlitsRecv.Value(),
			p.Stats.Sends.Value(), p.Stats.Recvs.Value())
	}
	w.Flush()

	fmt.Fprintf(&b, "\nNoC: injected %d, delivered %d, mean latency %.1f cy (max %.0f), mean hops %.1f, deflections %d\n",
		s.Net.Stats.Injected.Value(), s.Net.Stats.Delivered.Value(),
		s.Net.Stats.Latency.Mean(), s.Net.Stats.Latency.Max(),
		s.Net.Stats.Hops.Mean(), s.Net.TotalDeflections())
	for i, u := range s.MMUs {
		m := &u.Stats
		fmt.Fprintf(&b, "MPMMU %d (node %d): reads %d/%d (single/block), writes %d/%d, locks %d (%d waited), unlocks %d, busy %d cy, reqQ peak %d, outQ peak %d, cache miss %.1f%%\n",
			i, s.mmuNodes[i],
			m.SingleReads.Value(), m.BlockReads.Value(),
			m.SingleWrites.Value(), m.BlockWrites.Value(),
			m.Locks.Value(), m.LockWaits.Value(), m.Unlocks.Value(),
			m.BusyCycles.Value(), m.ReqQPeak, m.OutQPeak,
			100*u.Cache().Stats.MissRate())
	}
	fmt.Fprintf(&b, "DDR: %d word reads, %d word writes\n",
		s.DDR.Reads.Value(), s.DDR.Writes.Value())
	return b.String()
}
