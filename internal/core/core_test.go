package core

import (
	"testing"

	"repro/internal/bridge"
	"repro/internal/cache"
	"repro/internal/pe"
)

func build(t *testing.T, numCompute, cacheKB int, policy cache.Policy) *System {
	t.Helper()
	sys, err := Build(DefaultConfig(numCompute, cacheKB, policy))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// run launches one program per core and runs to completion.
func run(t *testing.T, sys *System, progs ...pe.Program) {
	t.Helper()
	sys.Launch(progs)
	if err := sys.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if n := sys.IntegrityErrors(); n != 0 {
		t.Fatalf("%d message integrity errors", n)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{TorusW: 4, TorusH: 4, NumCompute: 0, CacheKB: 8},
		{TorusW: 4, TorusH: 4, NumCompute: 16, CacheKB: 8}, // 16+MPMMU > 16 nodes
		{TorusW: 8, TorusH: 8, NumCompute: 2, CacheKB: 8},  // 64 nodes > src field
		{TorusW: 4, TorusH: 4, NumCompute: 2, CacheKB: 3},  // bad cache size
		{TorusW: 4, TorusH: 4, NumCompute: 2, CacheKB: 8, MPMMUNode: 99},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, cfg)
		}
	}
	if err := DefaultConfig(15, 64, cache.WriteBack).Validate(); err != nil {
		t.Errorf("paper max config rejected: %v", err)
	}
}

func TestNodeAssignment(t *testing.T) {
	sys := build(t, 3, 8, cache.WriteBack)
	if sys.NodeOf(0) == sys.Cfg.MPMMUNode {
		t.Error("rank 0 collides with MPMMU")
	}
	seen := map[int]bool{sys.Cfg.MPMMUNode: true}
	for r := 0; r < 3; r++ {
		n := sys.NodeOf(r)
		if seen[n] {
			t.Errorf("node %d assigned twice", n)
		}
		seen[n] = true
	}
}

func TestComputeOpTiming(t *testing.T) {
	sys := build(t, 1, 8, cache.WriteBack)
	var finish int64
	run(t, sys, func(env *pe.Env) {
		env.Compute(100)
		env.Compute(50)
		finish = env.Now()
	})
	// Two back-to-back compute bursts: 150 cycles plus constant overhead.
	if finish < 150 || finish > 160 {
		t.Errorf("finish = %d, want ~150", finish)
	}
}

func TestPrivateMemoryRoundTrip(t *testing.T) {
	sys := build(t, 2, 8, cache.WriteBack)
	addr := sys.Map.PrivateAddr(0, 0x100)
	var got uint32
	var gotD float64
	run(t, sys,
		func(env *pe.Env) {
			env.StoreWord(addr, 0xC0FFEE)
			got = env.LoadWord(addr)
			env.StoreDouble(addr+8, 2.5)
			gotD = env.LoadDouble(addr + 8)
		},
		func(env *pe.Env) {},
	)
	if got != 0xC0FFEE || gotD != 2.5 {
		t.Errorf("round trip: %#x, %v", got, gotD)
	}
	// Dirty data drains to the memory image.
	sys.DrainCaches()
	if sys.DDR.ReadWord(addr) != 0xC0FFEE {
		t.Error("dirty line not drained to DDR")
	}
}

func TestUncachedOps(t *testing.T) {
	sys := build(t, 1, 8, cache.WriteBack)
	addr := sys.Map.SharedAddr(0x40)
	var got uint32
	run(t, sys, func(env *pe.Env) {
		env.StoreWordUncached(addr, 77)
		got = env.LoadWordUncached(addr)
	})
	if got != 77 {
		t.Errorf("uncached round trip: %d", got)
	}
	if sys.Procs[0].Cache.Stats.Hits.Value()+sys.Procs[0].Cache.Stats.Misses.Value() != 0 {
		t.Error("uncached ops must not touch the L1")
	}
}

// TestFlushInvalidateCoherency reproduces the paper's software-coherency
// recipe: producer writes and flushes; consumer invalidates and reads.
func TestFlushInvalidateCoherency(t *testing.T) {
	sys := build(t, 2, 8, cache.WriteBack)
	addr := sys.Map.SharedAddr(0x80)
	flag := sys.Map.SharedAddr(0x200)
	var consumerSaw uint32
	run(t, sys,
		func(env *pe.Env) { // producer
			env.StoreWord(addr, 11)        // cached write (dirty in L1)
			env.FlushLine(addr)            // write back to system memory
			env.StoreWordUncached(flag, 1) // signal
		},
		func(env *pe.Env) { // consumer
			for env.LoadWordUncached(flag) != 1 {
			}
			env.InvalidateLine(addr) // DII
			consumerSaw = env.LoadWord(addr)
		},
	)
	if consumerSaw != 11 {
		t.Errorf("consumer read %d, want 11 (software coherency broken)", consumerSaw)
	}
}

// TestStaleCacheWithoutInvalidate shows the hazard the paper's programming
// model warns about: without DII the consumer reads its stale cached copy.
func TestStaleCacheWithoutInvalidate(t *testing.T) {
	sys := build(t, 2, 8, cache.WriteBack)
	addr := sys.Map.SharedAddr(0x80)
	flag := sys.Map.SharedAddr(0x200)
	var consumerSaw uint32
	run(t, sys,
		func(env *pe.Env) { // producer
			for env.LoadWordUncached(flag) != 1 { // wait for consumer's first read
			}
			env.StoreWord(addr, 22)
			env.FlushLine(addr)
			env.StoreWordUncached(flag, 2)
		},
		func(env *pe.Env) { // consumer caches the line first
			_ = env.LoadWord(addr) // brings 0 into L1
			env.StoreWordUncached(flag, 1)
			for env.LoadWordUncached(flag) != 2 {
			}
			consumerSaw = env.LoadWord(addr) // no DII: stale hit
		},
	)
	if consumerSaw != 0 {
		t.Errorf("consumer saw %d; expected stale 0 without invalidate", consumerSaw)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	sys := build(t, 4, 8, cache.WriteBack)
	lockAddr := sys.Map.SharedAddr(0x400)
	cntAddr := sys.Map.SharedAddr(0x440)
	const perCore = 20
	progs := make([]pe.Program, 4)
	for i := range progs {
		progs[i] = func(env *pe.Env) {
			for k := 0; k < perCore; k++ {
				env.Lock(lockAddr)
				v := env.LoadWordUncached(cntAddr)
				env.Compute(3) // widen the race window
				env.StoreWordUncached(cntAddr, v+1)
				env.Unlock(lockAddr)
			}
		}
	}
	run(t, sys, progs...)
	if got := sys.DDR.ReadWord(cntAddr); got != 4*perCore {
		sys.DrainCaches()
		got = sys.DDR.ReadWord(cntAddr)
		if got != 4*perCore {
			t.Errorf("counter = %d, want %d (lock not exclusive)", got, 4*perCore)
		}
	}
}

func TestMessagePingPong(t *testing.T) {
	sys := build(t, 2, 8, cache.WriteBack)
	n0, n1 := sys.NodeOf(0), sys.NodeOf(1)
	var rtt int64
	var echoed uint32
	run(t, sys,
		func(env *pe.Env) {
			t0 := env.Now()
			env.Send(n1, 1 /* tie.Data */, []uint32{42})
			pkt := env.Recv(n1, 1)
			rtt = env.Now() - t0
			echoed = pkt.Words[0]
		},
		func(env *pe.Env) {
			pkt := env.Recv(n0, 1)
			env.Send(n0, 1, []uint32{pkt.Words[0]})
		},
	)
	if echoed != 42 {
		t.Fatalf("echo = %d", echoed)
	}
	if rtt <= 0 || rtt > 200 {
		t.Errorf("round trip = %d cycles, implausible", rtt)
	}
	t.Logf("1-word message round trip: %d cycles", rtt)
}

func TestDeterministicRuns(t *testing.T) {
	measure := func() (int64, int64) {
		sys := build(t, 4, 4, cache.WriteBack)
		progs := make([]pe.Program, 4)
		for i := range progs {
			rank := i
			progs[i] = func(env *pe.Env) {
				base := sys.Map.PrivateAddr(rank, 0)
				for k := uint32(0); k < 200; k++ {
					env.StoreWord(base+4*(k%64), k)
					_ = env.LoadWord(base + 4*((k*7)%64))
				}
				env.Send(sys.NodeOf((rank+1)%4), 1, []uint32{uint32(rank)})
				env.Recv(sys.NodeOf((rank+3)%4), 1)
			}
		}
		sys.Launch(progs)
		if err := sys.Run(20_000_000); err != nil {
			t.Fatal(err)
		}
		return sys.Cycles(), sys.Net.Stats.Delivered.Value()
	}
	c1, d1 := measure()
	c2, d2 := measure()
	if c1 != c2 || d1 != d2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", c1, d1, c2, d2)
	}
}

func TestWriteThroughSlowerThanWriteBack(t *testing.T) {
	time := func(pol cache.Policy) int64 {
		sys := build(t, 1, 8, pol)
		run(t, sys, func(env *pe.Env) {
			base := sys.Map.PrivateAddr(0, 0)
			for k := uint32(0); k < 100; k++ {
				env.StoreWord(base+4*(k%32), k)
			}
		})
		return sys.Cycles()
	}
	wb := time(cache.WriteBack)
	wt := time(cache.WriteThrough)
	if wt <= 2*wb {
		t.Errorf("WT (%d) should be much slower than WB (%d) on a store loop", wt, wb)
	}
}

func TestArbiterModesAllWork(t *testing.T) {
	for _, mode := range []bridge.ArbiterMode{bridge.ArbMux, bridge.ArbSingleFIFO, bridge.ArbDualFIFO} {
		cfg := DefaultConfig(2, 8, cache.WriteBack)
		cfg.Arbiter = mode
		sys, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n1 := sys.NodeOf(1)
		var ok uint32
		run(t, sys,
			func(env *pe.Env) {
				// Interleave memory traffic and messages to exercise the
				// arbiter.
				base := sys.Map.PrivateAddr(0, 0)
				for k := uint32(0); k < 32; k++ {
					env.StoreWord(base+4*k, k)
				}
				env.Send(n1, 1, []uint32{7})
			},
			func(env *pe.Env) {
				pkt := env.Recv(sys.NodeOf(0), 1)
				ok = pkt.Words[0]
			},
		)
		if ok != 7 {
			t.Errorf("arbiter mode %v lost the message", mode)
		}
	}
}
