package core

import (
	"errors"
	"testing"

	"repro/internal/cache"
	"repro/internal/pe"
	"repro/internal/sim"
	"repro/internal/tie"
)

// These tests pin the micro-architectural behaviours of the memory path
// by asserting transaction counters, not just functional results.

func TestWriteBackAllocatesOnStoreMiss(t *testing.T) {
	sys := build(t, 1, 8, cache.WriteBack)
	addr := sys.Map.PrivateAddr(0, 0x100)
	run(t, sys, func(env *pe.Env) {
		env.StoreWord(addr, 1) // miss -> write-allocate (block read)
		env.StoreWord(addr, 2) // hit
	})
	mmu := sys.MMU()
	if got := mmu.Stats.BlockReads.Value(); got != 1 {
		t.Errorf("block reads = %d, want 1 (write-allocate)", got)
	}
	if got := mmu.Stats.SingleWrites.Value(); got != 0 {
		t.Errorf("single writes = %d, want 0 for WB", got)
	}
}

func TestWriteThroughDoesNotAllocateOnStoreMiss(t *testing.T) {
	sys := build(t, 1, 8, cache.WriteThrough)
	addr := sys.Map.PrivateAddr(0, 0x100)
	run(t, sys, func(env *pe.Env) {
		env.StoreWord(addr, 1) // miss -> straight to memory, no allocate
		env.StoreWord(addr, 2) // still a miss (no allocation happened)
	})
	mmu := sys.MMU()
	if got := mmu.Stats.BlockReads.Value(); got != 0 {
		t.Errorf("block reads = %d, want 0 (no write-allocate in WT)", got)
	}
	if got := mmu.Stats.SingleWrites.Value(); got != 2 {
		t.Errorf("single writes = %d, want 2", got)
	}
}

func TestWriteThroughStoresGoToMemoryOnHit(t *testing.T) {
	sys := build(t, 1, 8, cache.WriteThrough)
	addr := sys.Map.PrivateAddr(0, 0x100)
	run(t, sys, func(env *pe.Env) {
		_ = env.LoadWord(addr) // allocate via load miss
		env.StoreWord(addr, 7) // hit, but WT -> memory write
		env.StoreWord(addr, 8) // hit again -> another memory write
		_ = env.LoadWord(addr) // hit, no extra traffic
	})
	mmu := sys.MMU()
	if got := mmu.Stats.SingleWrites.Value(); got != 2 {
		t.Errorf("single writes = %d, want 2", got)
	}
	if got := mmu.Stats.BlockReads.Value(); got != 1 {
		t.Errorf("block reads = %d, want 1 (the load fill)", got)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	sys := build(t, 1, 2, cache.WriteBack) // 2 kB: 128 lines
	base := sys.Map.PrivateAddr(0, 0)
	conflict := base + 2048 // same index, different tag
	run(t, sys, func(env *pe.Env) {
		env.StoreWord(base, 1)     // allocate + dirty
		_ = env.LoadWord(conflict) // evicts the dirty line
		_ = env.LoadWord(base)     // reload: must see 1
	})
	mmu := sys.MMU()
	if got := mmu.Stats.BlockWrites.Value(); got != 1 {
		t.Errorf("block writes = %d, want 1 (dirty victim)", got)
	}
	sys.DrainCaches()
	if v := sys.DDR.ReadWord(base); v != 1 {
		t.Errorf("memory lost the dirty data: %d", v)
	}
}

func TestCleanEvictionIsSilent(t *testing.T) {
	sys := build(t, 1, 2, cache.WriteBack)
	base := sys.Map.PrivateAddr(0, 0)
	conflict := base + 2048
	run(t, sys, func(env *pe.Env) {
		_ = env.LoadWord(base)     // clean line
		_ = env.LoadWord(conflict) // evicts silently
	})
	if got := sys.MMU().Stats.BlockWrites.Value(); got != 0 {
		t.Errorf("block writes = %d, want 0 (clean eviction)", got)
	}
}

func TestFlushOfCleanLineIsFree(t *testing.T) {
	sys := build(t, 1, 8, cache.WriteBack)
	addr := sys.Map.PrivateAddr(0, 0)
	run(t, sys, func(env *pe.Env) {
		_ = env.LoadWord(addr)
		env.FlushLine(addr) // clean: no transaction
	})
	if got := sys.MMU().Stats.BlockWrites.Value(); got != 0 {
		t.Errorf("flush of clean line wrote back (%d block writes)", got)
	}
}

func TestDoubleAccessIsOneCacheAccess(t *testing.T) {
	sys := build(t, 1, 8, cache.WriteBack)
	addr := sys.Map.PrivateAddr(0, 0x200)
	run(t, sys, func(env *pe.Env) {
		env.StoreDouble(addr, 1.5)
		_ = env.LoadDouble(addr)
	})
	c := sys.Procs[0].Cache
	if got := c.Stats.Hits.Value() + c.Stats.Misses.Value(); got != 2 {
		t.Errorf("cache accesses = %d, want 2 (one per 8-byte op)", got)
	}
}

func TestDeadlockDetectedByBudget(t *testing.T) {
	sys := build(t, 2, 8, cache.WriteBack)
	sys.Launch([]pe.Program{
		func(env *pe.Env) {
			env.Recv(sys.NodeOf(1), tie.Data) // never satisfied
		},
		func(env *pe.Env) {
			env.Recv(sys.NodeOf(0), tie.Data) // never satisfied
		},
	})
	err := sys.Run(20_000)
	if !errors.Is(err, sim.ErrTimeout) {
		t.Fatalf("expected timeout on deadlock, got %v", err)
	}
}

func TestMessageLatencyScalesWithDistance(t *testing.T) {
	// One-way message latency between adjacent nodes must be less than
	// between far nodes; both well under the shared-memory round trip.
	measure := func(srcRank, dstRank int) int64 {
		sys := build(t, 8, 8, cache.WriteBack)
		var lat int64
		progs := make([]pe.Program, 8)
		for i := range progs {
			progs[i] = func(env *pe.Env) {}
		}
		progs[srcRank] = func(env *pe.Env) {
			env.Send(sys.NodeOf(dstRank), tie.Data, []uint32{9})
		}
		progs[dstRank] = func(env *pe.Env) {
			t0 := env.Now()
			env.Recv(sys.NodeOf(srcRank), tie.Data)
			lat = env.Now() - t0
		}
		sys.Launch(progs)
		if err := sys.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		return lat
	}
	near := measure(0, 1)
	far := measure(0, 5)
	if near <= 0 || far <= near {
		t.Errorf("latency near=%d far=%d: expected far > near > 0", near, far)
	}
}
