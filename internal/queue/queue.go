// Package queue provides a small generic FIFO used for the hardware queues
// of the MEDEA model (TIE ports, bridge output, MPMMU request/data queues,
// arbiter FIFOs). It tracks peak occupancy so buffer sizing can be audited.
//
// The backing store is a ring buffer: Push and Pop are amortized O(1), so
// the per-cycle drain performed by the bridge, MPMMU, arbiter and TIE
// ports costs the same regardless of occupancy (the previous slice-shift
// implementation made every Pop O(n)).
package queue

// FIFO is a first-in first-out queue. A capacity of 0 or less means
// unbounded. The zero value is an unbounded empty queue.
type FIFO[T any] struct {
	buf  []T // ring storage; len(buf) is the current ring size
	head int // index of the oldest element
	size int // number of elements
	cap  int
	peak int
}

// NewFIFO returns a FIFO with the given capacity (<= 0 for unbounded).
func NewFIFO[T any](capacity int) *FIFO[T] {
	q := &FIFO[T]{cap: capacity}
	if capacity > 0 {
		// Bounded queues never need to grow: allocate the ring once.
		q.buf = make([]T, capacity)
	}
	return q
}

// grow doubles the ring (minimum 4 slots), linearizing the elements.
func (q *FIFO[T]) grow() {
	n := 2 * len(q.buf)
	if n < 4 {
		n = 4
	}
	buf := make([]T, n)
	copied := copy(buf, q.buf[q.head:])
	copy(buf[copied:], q.buf[:q.head])
	q.buf, q.head = buf, 0
}

// Push appends v and reports whether there was room.
func (q *FIFO[T]) Push(v T) bool {
	if q.cap > 0 && q.size >= q.cap {
		return false
	}
	if q.size == len(q.buf) {
		q.grow()
	}
	i := q.head + q.size
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = v
	q.size++
	if q.size > q.peak {
		q.peak = q.size
	}
	return true
}

// Pop removes and returns the oldest element.
func (q *FIFO[T]) Pop() (T, bool) {
	var zero T
	if q.size == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release the reference for GC
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.size--
	return v, true
}

// Peek returns the oldest element without removing it.
func (q *FIFO[T]) Peek() (T, bool) {
	var zero T
	if q.size == 0 {
		return zero, false
	}
	return q.buf[q.head], true
}

// Len returns the current occupancy.
func (q *FIFO[T]) Len() int { return q.size }

// Cap returns the configured capacity (<= 0 for unbounded).
func (q *FIFO[T]) Cap() int { return q.cap }

// Full reports whether a Push would fail.
func (q *FIFO[T]) Full() bool { return q.cap > 0 && q.size >= q.cap }

// Peak returns the highest occupancy ever observed.
func (q *FIFO[T]) Peak() int { return q.peak }

// Snap is a restorable copy of a FIFO's contents (oldest first) and its
// peak-occupancy watermark, for checkpoint/fork.
type Snap[T any] struct {
	items []T
	peak  int
}

// Snapshot captures the queue's current contents and peak watermark.
func (q *FIFO[T]) Snapshot() Snap[T] {
	s := Snap[T]{peak: q.peak}
	if q.size > 0 {
		s.items = make([]T, q.size)
		n := copy(s.items, q.buf[q.head:min(q.head+q.size, len(q.buf))])
		copy(s.items[n:], q.buf[:q.size-n])
	}
	return s
}

// Restore reinstates a snapshot taken from a queue with the same
// capacity, replacing the current contents.
func (q *FIFO[T]) Restore(s Snap[T]) {
	clear(q.buf)
	q.head, q.size = 0, 0
	if len(s.items) > len(q.buf) {
		q.buf = make([]T, len(s.items))
	}
	copy(q.buf, s.items)
	q.size = len(s.items)
	q.peak = s.peak
}
