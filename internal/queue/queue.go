// Package queue provides a small generic FIFO used for the hardware queues
// of the MEDEA model (TIE ports, bridge output, MPMMU request/data queues,
// arbiter FIFOs). It tracks peak occupancy so buffer sizing can be audited.
package queue

// FIFO is a first-in first-out queue. A capacity of 0 or less means
// unbounded. The zero value is an unbounded empty queue.
type FIFO[T any] struct {
	buf  []T
	cap  int
	peak int
}

// NewFIFO returns a FIFO with the given capacity (<= 0 for unbounded).
func NewFIFO[T any](capacity int) *FIFO[T] {
	return &FIFO[T]{cap: capacity}
}

// Push appends v and reports whether there was room.
func (q *FIFO[T]) Push(v T) bool {
	if q.cap > 0 && len(q.buf) >= q.cap {
		return false
	}
	q.buf = append(q.buf, v)
	if len(q.buf) > q.peak {
		q.peak = len(q.buf)
	}
	return true
}

// Pop removes and returns the oldest element.
func (q *FIFO[T]) Pop() (T, bool) {
	var zero T
	if len(q.buf) == 0 {
		return zero, false
	}
	v := q.buf[0]
	copy(q.buf, q.buf[1:])
	q.buf[len(q.buf)-1] = zero
	q.buf = q.buf[:len(q.buf)-1]
	return v, true
}

// Peek returns the oldest element without removing it.
func (q *FIFO[T]) Peek() (T, bool) {
	var zero T
	if len(q.buf) == 0 {
		return zero, false
	}
	return q.buf[0], true
}

// Len returns the current occupancy.
func (q *FIFO[T]) Len() int { return len(q.buf) }

// Cap returns the configured capacity (<= 0 for unbounded).
func (q *FIFO[T]) Cap() int { return q.cap }

// Full reports whether a Push would fail.
func (q *FIFO[T]) Full() bool { return q.cap > 0 && len(q.buf) >= q.cap }

// Peak returns the highest occupancy ever observed.
func (q *FIFO[T]) Peak() int { return q.peak }
