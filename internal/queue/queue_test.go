package queue

import (
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO[int](0)
	for i := 0; i < 10; i++ {
		if !q.Push(i) {
			t.Fatal("unbounded push failed")
		}
	}
	for i := 0; i < 10; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %v, %v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop from empty queue succeeded")
	}
}

func TestFIFOCapacity(t *testing.T) {
	q := NewFIFO[string](2)
	if !q.Push("a") || !q.Push("b") {
		t.Fatal("pushes within capacity failed")
	}
	if q.Push("c") {
		t.Error("push beyond capacity succeeded")
	}
	if !q.Full() {
		t.Error("queue should be full")
	}
	q.Pop()
	if q.Full() {
		t.Error("queue should have room after pop")
	}
	if !q.Push("c") {
		t.Error("push after pop failed")
	}
}

func TestFIFOPeek(t *testing.T) {
	q := NewFIFO[int](0)
	if _, ok := q.Peek(); ok {
		t.Error("peek on empty queue succeeded")
	}
	q.Push(7)
	v, ok := q.Peek()
	if !ok || v != 7 {
		t.Fatalf("peek got %v, %v", v, ok)
	}
	if q.Len() != 1 {
		t.Error("peek must not consume")
	}
}

func TestFIFOPeak(t *testing.T) {
	q := NewFIFO[int](0)
	q.Push(1)
	q.Push(2)
	q.Push(3)
	q.Pop()
	q.Pop()
	q.Push(4)
	if q.Peak() != 3 {
		t.Errorf("peak = %d, want 3", q.Peak())
	}
	if q.Cap() != 0 {
		t.Errorf("cap = %d, want 0", q.Cap())
	}
}

// TestFIFOQuick property-tests FIFO behaviour against a slice model.
func TestFIFOQuick(t *testing.T) {
	fn := func(ops []int16) bool {
		q := NewFIFO[int16](8)
		var model []int16
		for _, op := range ops {
			if op >= 0 { // push
				okQ := q.Push(op)
				okM := len(model) < 8
				if okQ != okM {
					return false
				}
				if okM {
					model = append(model, op)
				}
			} else { // pop
				v, ok := q.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
