package queue

import (
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO[int](0)
	for i := 0; i < 10; i++ {
		if !q.Push(i) {
			t.Fatal("unbounded push failed")
		}
	}
	for i := 0; i < 10; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %v, %v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop from empty queue succeeded")
	}
}

func TestFIFOCapacity(t *testing.T) {
	q := NewFIFO[string](2)
	if !q.Push("a") || !q.Push("b") {
		t.Fatal("pushes within capacity failed")
	}
	if q.Push("c") {
		t.Error("push beyond capacity succeeded")
	}
	if !q.Full() {
		t.Error("queue should be full")
	}
	q.Pop()
	if q.Full() {
		t.Error("queue should have room after pop")
	}
	if !q.Push("c") {
		t.Error("push after pop failed")
	}
}

func TestFIFOPeek(t *testing.T) {
	q := NewFIFO[int](0)
	if _, ok := q.Peek(); ok {
		t.Error("peek on empty queue succeeded")
	}
	q.Push(7)
	v, ok := q.Peek()
	if !ok || v != 7 {
		t.Fatalf("peek got %v, %v", v, ok)
	}
	if q.Len() != 1 {
		t.Error("peek must not consume")
	}
}

func TestFIFOPeak(t *testing.T) {
	q := NewFIFO[int](0)
	q.Push(1)
	q.Push(2)
	q.Push(3)
	q.Pop()
	q.Pop()
	q.Push(4)
	if q.Peak() != 3 {
		t.Errorf("peak = %d, want 3", q.Peak())
	}
	if q.Cap() != 0 {
		t.Errorf("cap = %d, want 0", q.Cap())
	}
}

// TestFIFOWrapAroundAtCapacity exercises the ring boundary of a bounded
// queue: fill to capacity, drain partially, refill so the tail wraps past
// the end of the backing array, and verify order, Peek and Full at every
// step. Bounded queues allocate the ring once, so these pushes must never
// grow.
func TestFIFOWrapAroundAtCapacity(t *testing.T) {
	const cap = 4
	q := NewFIFO[int](cap)
	for i := 0; i < cap; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d within capacity failed", i)
		}
	}
	if !q.Full() || q.Push(99) {
		t.Fatal("full queue accepted a push")
	}
	// Drain half: head moves to the middle of the ring.
	for i := 0; i < cap/2; i++ {
		if v, ok := q.Pop(); !ok || v != i {
			t.Fatalf("pop = %v, %v; want %d", v, ok, i)
		}
	}
	// Refill: tail wraps around the end of the backing array.
	for i := cap; i < cap+cap/2; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d after partial drain failed", i)
		}
	}
	if !q.Full() {
		t.Error("queue should be full again after refill")
	}
	if v, ok := q.Peek(); !ok || v != cap/2 {
		t.Fatalf("peek across wrap = %v, %v; want %d", v, ok, cap/2)
	}
	// Full drain must come out in order across the wrap point.
	for i := cap / 2; i < cap+cap/2; i++ {
		if v, ok := q.Pop(); !ok || v != i {
			t.Fatalf("wrapped pop = %v, %v; want %d", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop from drained queue succeeded")
	}
	if q.Peak() != cap {
		t.Errorf("peak = %d, want %d", q.Peak(), cap)
	}
}

// TestFIFOCapacityOne is the degenerate ring: every push lands on the same
// slot and head/tail wrap every operation.
func TestFIFOCapacityOne(t *testing.T) {
	q := NewFIFO[string](1)
	for round := 0; round < 3; round++ {
		if !q.Push("v") {
			t.Fatalf("round %d: push into empty cap-1 queue failed", round)
		}
		if q.Push("w") {
			t.Fatalf("round %d: cap-1 queue accepted a second element", round)
		}
		if v, ok := q.Pop(); !ok || v != "v" {
			t.Fatalf("round %d: pop = %v, %v", round, v, ok)
		}
	}
	if q.Len() != 0 || q.Peak() != 1 {
		t.Errorf("len=%d peak=%d, want 0/1", q.Len(), q.Peak())
	}
}

// TestFIFOGrowWithWrappedHead forces an unbounded queue to grow while its
// head sits mid-ring, verifying grow() linearizes the two segments in
// order.
func TestFIFOGrowWithWrappedHead(t *testing.T) {
	q := NewFIFO[int](0)
	// Fill the initial 4-slot ring, drain two, push two: head = 2 and the
	// ring wraps.
	for i := 0; i < 4; i++ {
		q.Push(i)
	}
	q.Pop()
	q.Pop()
	q.Push(4)
	q.Push(5)
	// Next push grows the ring from a wrapped state.
	q.Push(6)
	want := []int{2, 3, 4, 5, 6}
	for _, w := range want {
		if v, ok := q.Pop(); !ok || v != w {
			t.Fatalf("after grow: pop = %v, %v; want %d", v, ok, w)
		}
	}
	if q.Len() != 0 {
		t.Errorf("len = %d after full drain", q.Len())
	}
}

// TestFIFOQuick property-tests FIFO behaviour against a slice model.
func TestFIFOQuick(t *testing.T) {
	fn := func(ops []int16) bool {
		q := NewFIFO[int16](8)
		var model []int16
		for _, op := range ops {
			if op >= 0 { // push
				okQ := q.Push(op)
				okM := len(model) < 8
				if okQ != okM {
					return false
				}
				if okM {
					model = append(model, op)
				}
			} else { // pop
				v, ok := q.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
