package queue

import "testing"

// BenchmarkFIFOPushPop measures the steady-state cost of the per-cycle
// push+pop pairs that the bridge, MPMMU, arbiter and TIE ports perform.
// The queue is pre-filled so Pop always has work and the cost of moving
// the backing store (O(n) in the pre-ring implementation) is visible.
func BenchmarkFIFOPushPop(b *testing.B) {
	for _, depth := range []int{1, 8, 64} {
		b.Run(benchName(depth), func(b *testing.B) {
			q := NewFIFO[uint64](0)
			for i := 0; i < depth; i++ {
				q.Push(uint64(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Push(uint64(i))
				if _, ok := q.Pop(); !ok {
					b.Fatal("pop failed")
				}
			}
		})
	}
}

// BenchmarkFIFOBurst fills and drains the queue completely, the pattern of
// a block transfer (4 flits) and of the MPMMU draining its request queue.
func BenchmarkFIFOBurst(b *testing.B) {
	q := NewFIFO[uint64](16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 16; j++ {
			q.Push(uint64(j))
		}
		for j := 0; j < 16; j++ {
			q.Pop()
		}
	}
}

func benchName(depth int) string {
	switch depth {
	case 1:
		return "depth-1"
	case 8:
		return "depth-8"
	default:
		return "depth-64"
	}
}
