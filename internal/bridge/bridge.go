// Package bridge implements the pif2NoC bridge: the block that translates a
// processor's memory-mapped (PIF) transactions into sequences of NoC flits
// and back. It supports single and block reads/writes plus the lock/unlock
// transactions, contains the 4-deep reorder buffer that re-sequences
// out-of-order block-read data, and provides the configurable arbiter that
// shares the node's single NoC injection port between the shared-memory
// interface and the TIE message-passing interface.
package bridge

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/queue"
	"repro/internal/stats"
)

// ReorderDepth is the depth of the block-read reorder buffer: one cache
// line of four 32-bit words, as in the paper's implementation.
const ReorderDepth = 4

// TxnKind enumerates the shared-memory transactions the bridge issues.
type TxnKind int

const (
	// TxnSingleRead reads one 32-bit word.
	TxnSingleRead TxnKind = iota
	// TxnSingleWrite writes one 32-bit word.
	TxnSingleWrite
	// TxnBlockRead reads one 16-byte line (four words).
	TxnBlockRead
	// TxnBlockWrite writes one 16-byte line (four words).
	TxnBlockWrite
	// TxnLock acquires the lock on a shared-memory line.
	TxnLock
	// TxnUnlock releases the lock on a shared-memory line.
	TxnUnlock
)

// String implements fmt.Stringer.
func (k TxnKind) String() string {
	switch k {
	case TxnSingleRead:
		return "single-read"
	case TxnSingleWrite:
		return "single-write"
	case TxnBlockRead:
		return "block-read"
	case TxnBlockWrite:
		return "block-write"
	case TxnLock:
		return "lock"
	case TxnUnlock:
		return "unlock"
	}
	return fmt.Sprintf("txn(%d)", int(k))
}

func (k TxnKind) flitType() flit.Type {
	switch k {
	case TxnSingleRead:
		return flit.SingleRead
	case TxnSingleWrite:
		return flit.SingleWrite
	case TxnBlockRead:
		return flit.BlockRead
	case TxnBlockWrite:
		return flit.BlockWrite
	case TxnLock:
		return flit.Lock
	case TxnUnlock:
		return flit.Unlock
	}
	panic("bridge: invalid txn kind")
}

// Txn is one shared-memory transaction request.
type Txn struct {
	Kind TxnKind
	Addr uint32
	// Data carries 1 word for single writes and 4 words for block writes.
	Data []uint32
}

// Result is the outcome of a completed transaction.
type Result struct {
	// Data carries 1 word for single reads and 4 words for block reads.
	Data []uint32
	// Cycles is the total latency of the transaction.
	Cycles int64
}

type state int

const (
	stIdle state = iota
	stSendReq
	stAwaitGrant
	stSendData
	stAwaitCompletion
	stAwaitReadData
	stAwaitLockAck
	stDone
)

// Stats counts bridge events.
type Stats struct {
	Txns       stats.Counter
	FlitsSent  stats.Counter
	FlitsRecv  stats.Counter
	TxnLatency stats.Running
	OutOfOrder stats.Counter // block-read data flits that arrived out of order
}

// RouteFunc is the bridge's configuration memory: it translates a
// shared-memory address to the NoC node id of the MPMMU serving it. With
// a single MPMMU the translation is effectively hardwired, as the paper
// notes; with several, addresses are typically line-interleaved.
type RouteFunc func(addr uint32) int

// Bridge is one node's pif2NoC bridge. It executes one transaction at a
// time (the PE is a blocking in-order core; the paper's MPMMU flow control
// likewise permits one outstanding request per node).
type Bridge struct {
	nodeID  int
	route   RouteFunc
	coordOf func(node int) (x, y int)

	out *queue.FIFO[flit.Flit]

	st        state
	txn       Txn
	started   int64
	result    Result
	sendQueue []flit.Flit // flits of the current protocol step
	reorder   [ReorderDepth]uint32
	gotMask   uint8
	gotCount  int
	lastSeq   int
	nextPktID uint64

	Stats Stats
}

// New creates a bridge for nodeID that targets the MPMMU at mmuNode for
// every address. coordOf maps node ids to torus coordinates. outCap sizes
// the output FIFO toward the arbiter.
func New(nodeID, mmuNode int, coordOf func(int) (int, int), outCap int) *Bridge {
	return NewRouted(nodeID, func(uint32) int { return mmuNode }, coordOf, outCap)
}

// NewRouted creates a bridge whose MPMMU target depends on the address,
// supporting systems with several memory nodes.
func NewRouted(nodeID int, route RouteFunc, coordOf func(int) (int, int), outCap int) *Bridge {
	return &Bridge{nodeID: nodeID, route: route, coordOf: coordOf,
		out: queue.NewFIFO[flit.Flit](outCap), lastSeq: -1}
}

// Out exposes the output FIFO drained by the arbiter.
func (b *Bridge) Out() *queue.FIFO[flit.Flit] { return b.out }

// Busy reports whether a transaction is in flight.
func (b *Bridge) Busy() bool { return b.st != stIdle && b.st != stDone }

// Start begins a transaction. It panics when one is already in flight.
func (b *Bridge) Start(t Txn, now int64) {
	if b.st != stIdle {
		panic("bridge: transaction already in flight")
	}
	switch t.Kind {
	case TxnSingleWrite:
		if len(t.Data) != 1 {
			panic("bridge: single write needs exactly 1 data word")
		}
	case TxnBlockWrite:
		if len(t.Data) != ReorderDepth {
			panic("bridge: block write needs exactly 4 data words")
		}
	}
	b.txn = t
	b.started = now
	b.result = Result{}
	b.gotMask, b.gotCount, b.lastSeq = 0, 0, -1
	b.Stats.Txns.Inc()
	// The request token: source id, address and type, as per the paper.
	b.sendQueue = append(b.sendQueue[:0], b.makeFlit(flit.SubAddr, 0, 0, t.Addr, now))
	b.st = stSendReq
}

// Done returns the result of a completed transaction and resets the bridge
// to idle. ok is false while the transaction is still in flight.
func (b *Bridge) Done() (Result, bool) {
	if b.st != stDone {
		return Result{}, false
	}
	b.st = stIdle
	return b.result, true
}

func (b *Bridge) makeFlit(sub flit.SubType, seq uint8, burst uint8, data uint32, now int64) flit.Flit {
	x, y := b.coordOf(b.route(b.txn.Addr))
	b.nextPktID++
	f := flit.Flit{
		DstX: uint8(x), DstY: uint8(y),
		Type: b.txn.Kind.flitType(), Sub: sub,
		Seq: seq, Burst: burst,
		Src:  uint8(b.nodeID),
		Data: data,
	}
	f.Meta.InjectCycle = now
	f.Meta.PacketID = uint64(b.nodeID)<<48 | 1<<40 | b.nextPktID
	return f
}

// Step advances the bridge by one cycle: it feeds at most one flit of the
// current protocol step into the output queue.
func (b *Bridge) Step(now int64) {
	switch b.st {
	case stSendReq, stSendData:
		if len(b.sendQueue) == 0 {
			b.advanceAfterSend(now)
			return
		}
		f := b.sendQueue[0]
		f.Meta.InjectCycle = now
		if !b.out.Push(f) {
			return // arbiter queue full; retry next cycle
		}
		b.sendQueue = b.sendQueue[1:]
		b.Stats.FlitsSent.Inc()
		if len(b.sendQueue) == 0 {
			b.advanceAfterSend(now)
		}
	}
}

func (b *Bridge) advanceAfterSend(now int64) {
	switch b.st {
	case stSendReq:
		switch b.txn.Kind {
		case TxnSingleRead, TxnBlockRead:
			b.st = stAwaitReadData
		case TxnSingleWrite, TxnBlockWrite:
			b.st = stAwaitGrant
		case TxnLock, TxnUnlock:
			b.st = stAwaitLockAck
		}
	case stSendData:
		b.st = stAwaitCompletion
	}
}

// queueWriteData stages the data flits of a write transaction after the
// grant arrives. Block-write data flits are sequence-numbered so the MPMMU
// can reassemble them if the NoC reorders.
func (b *Bridge) queueWriteData(now int64) {
	n := len(b.txn.Data)
	code, err := flit.EncodeBurst(flit.RoundUpBurst(n))
	if err != nil {
		panic(err)
	}
	for i, w := range b.txn.Data {
		b.sendQueue = append(b.sendQueue, b.makeFlit(flit.SubData, uint8(i), code, w, now))
	}
}

// Deliver accepts one shared-memory reply flit ejected by the switch.
func (b *Bridge) Deliver(f flit.Flit, now int64) {
	if f.Type == flit.Message {
		panic("bridge: message flit delivered to shared-memory bridge")
	}
	b.Stats.FlitsRecv.Inc()
	switch b.st {
	case stAwaitGrant:
		if f.Sub != flit.SubAck {
			panic(fmt.Sprintf("bridge %d: expected grant, got %v", b.nodeID, f))
		}
		b.queueWriteData(now)
		b.st = stSendData
	case stAwaitCompletion:
		if f.Sub != flit.SubAck {
			panic(fmt.Sprintf("bridge %d: expected completion ack, got %v", b.nodeID, f))
		}
		b.finish(now)
	case stAwaitLockAck:
		if f.Sub == flit.SubNack {
			// The MPMMU queues lock waiters, so a NACK is only used by
			// failure-injection tests; retry by re-sending the request.
			b.sendQueue = append(b.sendQueue[:0], b.makeFlit(flit.SubAddr, 0, 0, b.txn.Addr, now))
			b.st = stSendReq
			return
		}
		b.finish(now)
	case stAwaitReadData:
		if f.Sub != flit.SubData {
			panic(fmt.Sprintf("bridge %d: expected read data, got %v", b.nodeID, f))
		}
		want := 1
		if b.txn.Kind == TxnBlockRead {
			want = ReorderDepth
		}
		if int(f.Seq) >= want {
			panic(fmt.Sprintf("bridge %d: read data seq %d out of range", b.nodeID, f.Seq))
		}
		if int(f.Seq) != b.lastSeq+1 {
			b.Stats.OutOfOrder.Inc()
		}
		b.lastSeq = int(f.Seq)
		if b.gotMask&(1<<f.Seq) != 0 {
			panic(fmt.Sprintf("bridge %d: duplicate read data seq %d", b.nodeID, f.Seq))
		}
		b.gotMask |= 1 << f.Seq
		b.reorder[f.Seq] = f.Data
		b.gotCount++
		if b.gotCount == want {
			b.result.Data = append([]uint32(nil), b.reorder[:want]...)
			b.finish(now)
		}
	default:
		panic(fmt.Sprintf("bridge %d: unexpected flit %v in state %d", b.nodeID, f, b.st))
	}
}

func (b *Bridge) finish(now int64) {
	b.result.Cycles = now - b.started
	b.Stats.TxnLatency.Observe(float64(b.result.Cycles))
	b.st = stDone
}
