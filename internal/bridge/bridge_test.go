package bridge

import (
	"testing"

	"repro/internal/flit"
)

func coordOf4x4(node int) (int, int) { return node % 4, node / 4 }

func newBridge() *Bridge { return New(5, 0, coordOf4x4, 4) }

// drain pops all flits the bridge emitted this cycle.
func drain(b *Bridge) []flit.Flit {
	var out []flit.Flit
	for {
		f, ok := b.Out().Pop()
		if !ok {
			return out
		}
		out = append(out, f)
	}
}

// pump steps the bridge until it stops emitting, returning all flits.
func pump(b *Bridge, now *int64) []flit.Flit {
	var out []flit.Flit
	for i := 0; i < 64; i++ {
		b.Step(*now)
		*now++
		fl := drain(b)
		out = append(out, fl...)
		if len(fl) == 0 && len(out) > 0 {
			return out
		}
	}
	return out
}

func ack(t flit.Type) flit.Flit {
	return flit.Flit{Type: t, Sub: flit.SubAck, Src: 0}
}

func TestSingleReadProtocol(t *testing.T) {
	b := newBridge()
	now := int64(0)
	b.Start(Txn{Kind: TxnSingleRead, Addr: 0x1234}, now)
	fl := pump(b, &now)
	if len(fl) != 1 {
		t.Fatalf("request flits = %d, want 1", len(fl))
	}
	req := fl[0]
	if req.Type != flit.SingleRead || req.Sub != flit.SubAddr || req.Data != 0x1234 || req.Src != 5 {
		t.Fatalf("bad request token %v", req)
	}
	if x, y := coordOf4x4(0); int(req.DstX) != x || int(req.DstY) != y {
		t.Error("request not addressed to the MPMMU")
	}
	if _, ok := b.Done(); ok {
		t.Fatal("done before reply")
	}
	b.Deliver(flit.Flit{Type: flit.SingleRead, Sub: flit.SubData, Data: 0xCAFE}, now)
	res, ok := b.Done()
	if !ok {
		t.Fatal("not done after data")
	}
	if len(res.Data) != 1 || res.Data[0] != 0xCAFE {
		t.Fatalf("result %v", res.Data)
	}
}

func TestBlockReadReorder(t *testing.T) {
	b := newBridge()
	now := int64(0)
	b.Start(Txn{Kind: TxnBlockRead, Addr: 0x100}, now)
	pump(b, &now)
	// Data arrives out of order: the reorder buffer must resequence.
	for _, seq := range []uint8{2, 0, 3, 1} {
		b.Deliver(flit.Flit{Type: flit.BlockRead, Sub: flit.SubData, Seq: seq, Burst: 1, Data: uint32(100 + seq)}, now)
	}
	res, ok := b.Done()
	if !ok {
		t.Fatal("block read did not complete")
	}
	for i, w := range res.Data {
		if w != uint32(100+i) {
			t.Fatalf("word %d = %d (reorder buffer failed)", i, w)
		}
	}
	if b.Stats.OutOfOrder.Value() == 0 {
		t.Error("out-of-order arrivals not counted")
	}
}

func TestSingleWriteProtocol(t *testing.T) {
	b := newBridge()
	now := int64(0)
	b.Start(Txn{Kind: TxnSingleWrite, Addr: 0x40, Data: []uint32{0xBEEF}}, now)
	fl := pump(b, &now)
	if len(fl) != 1 || fl[0].Sub != flit.SubAddr {
		t.Fatalf("want one request token, got %v", fl)
	}
	// Grant.
	b.Deliver(ack(flit.SingleWrite), now)
	dataFl := pump(b, &now)
	if len(dataFl) != 1 || dataFl[0].Sub != flit.SubData || dataFl[0].Data != 0xBEEF {
		t.Fatalf("data flits %v", dataFl)
	}
	if _, ok := b.Done(); ok {
		t.Fatal("done before completion ack")
	}
	// Completion.
	b.Deliver(ack(flit.SingleWrite), now)
	if _, ok := b.Done(); !ok {
		t.Fatal("not done after completion")
	}
}

func TestBlockWriteProtocol(t *testing.T) {
	b := newBridge()
	now := int64(0)
	b.Start(Txn{Kind: TxnBlockWrite, Addr: 0x80, Data: []uint32{1, 2, 3, 4}}, now)
	pump(b, &now)
	b.Deliver(ack(flit.BlockWrite), now)
	dataFl := pump(b, &now)
	if len(dataFl) != 4 {
		t.Fatalf("data flits = %d, want 4", len(dataFl))
	}
	for i, f := range dataFl {
		if int(f.Seq) != i || f.Data != uint32(i+1) || f.Sub != flit.SubData {
			t.Fatalf("data flit %d wrong: %v", i, f)
		}
	}
	b.Deliver(ack(flit.BlockWrite), now)
	if _, ok := b.Done(); !ok {
		t.Fatal("block write not completed")
	}
}

func TestLockUnlock(t *testing.T) {
	b := newBridge()
	now := int64(0)
	b.Start(Txn{Kind: TxnLock, Addr: 0x200}, now)
	fl := pump(b, &now)
	if len(fl) != 1 || fl[0].Type != flit.Lock {
		t.Fatalf("lock request %v", fl)
	}
	b.Deliver(ack(flit.Lock), now)
	if _, ok := b.Done(); !ok {
		t.Fatal("lock not granted")
	}
	b.Start(Txn{Kind: TxnUnlock, Addr: 0x200}, now)
	pump(b, &now)
	b.Deliver(ack(flit.Unlock), now)
	if _, ok := b.Done(); !ok {
		t.Fatal("unlock not completed")
	}
}

func TestLockNackRetries(t *testing.T) {
	b := newBridge()
	now := int64(0)
	b.Start(Txn{Kind: TxnLock, Addr: 0x200}, now)
	pump(b, &now)
	b.Deliver(flit.Flit{Type: flit.Lock, Sub: flit.SubNack}, now)
	fl := pump(b, &now)
	if len(fl) != 1 || fl[0].Type != flit.Lock || fl[0].Sub != flit.SubAddr {
		t.Fatalf("no retry after NACK: %v", fl)
	}
	b.Deliver(ack(flit.Lock), now)
	if _, ok := b.Done(); !ok {
		t.Fatal("lock not granted after retry")
	}
}

func TestBusyAndLatency(t *testing.T) {
	b := newBridge()
	if b.Busy() {
		t.Fatal("fresh bridge busy")
	}
	b.Start(Txn{Kind: TxnSingleRead, Addr: 4}, 10)
	if !b.Busy() {
		t.Fatal("bridge should be busy")
	}
	now := int64(10)
	pump(b, &now)
	b.Deliver(flit.Flit{Type: flit.SingleRead, Sub: flit.SubData, Data: 0}, 25)
	res, _ := b.Done()
	if res.Cycles != 15 {
		t.Errorf("latency = %d, want 15", res.Cycles)
	}
	if b.Stats.TxnLatency.Count() != 1 {
		t.Error("latency not recorded")
	}
}

func TestStartWhileBusyPanics(t *testing.T) {
	b := newBridge()
	b.Start(Txn{Kind: TxnSingleRead, Addr: 4}, 0)
	defer func() {
		if recover() == nil {
			t.Error("second Start should panic")
		}
	}()
	b.Start(Txn{Kind: TxnSingleRead, Addr: 8}, 0)
}

func TestBadWriteDataPanics(t *testing.T) {
	b := newBridge()
	defer func() {
		if recover() == nil {
			t.Error("single write without data should panic")
		}
	}()
	b.Start(Txn{Kind: TxnSingleWrite, Addr: 4}, 0)
}

func TestMessageDeliveryPanics(t *testing.T) {
	b := newBridge()
	defer func() {
		if recover() == nil {
			t.Error("message flit to bridge should panic")
		}
	}()
	b.Deliver(flit.Flit{Type: flit.Message}, 0)
}

func TestDuplicateReadDataPanics(t *testing.T) {
	b := newBridge()
	now := int64(0)
	b.Start(Txn{Kind: TxnBlockRead, Addr: 0}, now)
	pump(b, &now)
	b.Deliver(flit.Flit{Type: flit.BlockRead, Sub: flit.SubData, Seq: 1, Burst: 1}, now)
	defer func() {
		if recover() == nil {
			t.Error("duplicate seq should panic")
		}
	}()
	b.Deliver(flit.Flit{Type: flit.BlockRead, Sub: flit.SubData, Seq: 1, Burst: 1}, now)
}

func TestTxnKindStrings(t *testing.T) {
	kinds := []TxnKind{TxnSingleRead, TxnSingleWrite, TxnBlockRead, TxnBlockWrite, TxnLock, TxnUnlock}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}
