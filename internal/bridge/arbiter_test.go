package bridge

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/queue"
)

func mkQueues() (*queue.FIFO[flit.Flit], *queue.FIFO[flit.Flit]) {
	return queue.NewFIFO[flit.Flit](8), queue.NewFIFO[flit.Flit](8)
}

func msgFlit(data uint32) flit.Flit {
	return flit.Flit{Type: flit.Message, Sub: flit.SubMsgData, Data: data}
}

func smFlit(data uint32) flit.Flit {
	return flit.Flit{Type: flit.SingleRead, Sub: flit.SubAddr, Data: data}
}

func TestMuxRoundRobin(t *testing.T) {
	tieQ, brgQ := mkQueues()
	a := NewArbiter("a", ArbMux, tieQ, brgQ, 8)
	for i := 0; i < 3; i++ {
		tieQ.Push(msgFlit(uint32(100 + i)))
		brgQ.Push(smFlit(uint32(200 + i)))
	}
	var got []uint32
	for {
		a.Step(0)
		f, ok := a.TryPull()
		if !ok {
			break
		}
		got = append(got, f.Data)
	}
	want := []uint32{100, 200, 101, 201, 102, 202}
	if len(got) != len(want) {
		t.Fatalf("pulled %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin order %v, want %v", got, want)
		}
	}
	if a.Stats.FromTIE.Value() != 3 || a.Stats.FromBridge.Value() != 3 {
		t.Error("arbitration stats wrong")
	}
}

func TestMuxFallsThroughToOtherSource(t *testing.T) {
	tieQ, brgQ := mkQueues()
	a := NewArbiter("a", ArbMux, tieQ, brgQ, 8)
	brgQ.Push(smFlit(1))
	brgQ.Push(smFlit(2))
	// TIE queue empty: both pulls must come from the bridge.
	if f, ok := a.TryPull(); !ok || f.Data != 1 {
		t.Fatal("first pull failed")
	}
	if f, ok := a.TryPull(); !ok || f.Data != 2 {
		t.Fatal("second pull failed")
	}
}

func TestSingleFIFOStagesOnePerCycle(t *testing.T) {
	tieQ, brgQ := mkQueues()
	a := NewArbiter("a", ArbSingleFIFO, tieQ, brgQ, 8)
	tieQ.Push(msgFlit(1))
	brgQ.Push(smFlit(2))
	a.Step(0)
	// Only one flit may be staged per cycle.
	if f, ok := a.TryPull(); !ok || f.Data != 1 {
		t.Fatalf("cycle 0: want TIE flit first (round robin starts at TIE)")
	}
	if _, ok := a.TryPull(); ok {
		t.Fatal("second flit staged in the same cycle")
	}
	a.Step(1)
	if f, ok := a.TryPull(); !ok || f.Data != 2 {
		t.Fatal("cycle 1: bridge flit not staged")
	}
}

func TestDualFIFOPriority(t *testing.T) {
	tieQ, brgQ := mkQueues()
	a := NewArbiter("a", ArbDualFIFO, tieQ, brgQ, 8)
	// Stage a bridge flit first, then a TIE flit: the TIE (high-priority)
	// flit must still win the pull.
	brgQ.Push(smFlit(2))
	a.Step(0)
	tieQ.Push(msgFlit(1))
	a.Step(1)
	f, ok := a.TryPull()
	if !ok || f.Type != flit.Message {
		t.Fatalf("high-priority flit did not win: %v", f)
	}
	f, ok = a.TryPull()
	if !ok || f.Type != flit.SingleRead {
		t.Fatalf("best-effort flit lost: %v", f)
	}
}

func TestDualFIFOBestEffortStarvesWhileHPBusy(t *testing.T) {
	tieQ, brgQ := mkQueues()
	a := NewArbiter("a", ArbDualFIFO, tieQ, brgQ, 8)
	for i := 0; i < 4; i++ {
		tieQ.Push(msgFlit(uint32(i)))
	}
	brgQ.Push(smFlit(99))
	for c := int64(0); c < 8; c++ {
		a.Step(c)
	}
	// Pull everything: all message flits must come out before the bridge
	// flit.
	var order []flit.Type
	for {
		f, ok := a.TryPull()
		if !ok {
			break
		}
		order = append(order, f.Type)
	}
	if len(order) != 5 {
		t.Fatalf("pulled %d flits", len(order))
	}
	for i := 0; i < 4; i++ {
		if order[i] != flit.Message {
			t.Fatalf("flit %d is %v, want message (priority inversion)", i, order[i])
		}
	}
	if order[4] != flit.SingleRead {
		t.Fatal("bridge flit missing")
	}
}

func TestFIFOCapacityBackpressure(t *testing.T) {
	tieQ, brgQ := mkQueues()
	a := NewArbiter("a", ArbSingleFIFO, tieQ, brgQ, 2)
	for i := 0; i < 4; i++ {
		tieQ.Push(msgFlit(uint32(i)))
	}
	// Stage for many cycles without pulling: the staging FIFO (cap 2)
	// must not overflow and the source queue retains the rest.
	for c := int64(0); c < 6; c++ {
		a.Step(c)
	}
	if tieQ.Len() != 2 {
		t.Errorf("source queue has %d flits, want 2 retained", tieQ.Len())
	}
}

func TestArbiterModeStrings(t *testing.T) {
	for _, m := range []ArbiterMode{ArbMux, ArbSingleFIFO, ArbDualFIFO} {
		if m.String() == "" {
			t.Error("empty mode string")
		}
	}
	if a := NewArbiter("n", ArbMux, nil, nil, 0); a.Name() != "n" {
		t.Error("name wrong")
	}
}
