package bridge

import "repro/internal/sim"

// Sending reports whether the bridge's Step would feed a flit toward the
// arbiter this cycle (the two protocol states with transmit work). The
// owning core checks it before declaring itself skippable.
func (b *Bridge) Sending() bool { return b.st == stSendReq || b.st == stSendData }

// Completed reports whether a finished transaction is waiting for the
// core to consume it via Done.
func (b *Bridge) Completed() bool { return b.st == stDone }

// Pending reports the total flit occupancy across the arbiter's source
// and staging queues; the node's switch probes it (through the core
// package's node interface) to decide whether injection work remains.
func (a *Arbiter) Pending() int {
	n := a.tie.Len() + a.brg.Len()
	switch a.mode {
	case ArbSingleFIFO:
		n += a.single.Len()
	case ArbDualFIFO:
		n += a.hp.Len() + a.be.Len()
	}
	return n
}

// NextEvent implements sim.NextEventer: any queued flit means staging or
// injection work this cycle; an empty arbiter is passive.
func (a *Arbiter) NextEvent(now int64) int64 {
	if a.Pending() > 0 {
		return now
	}
	return sim.NoEvent
}

// Skipped implements sim.Skipper: in single-FIFO mode Step toggles the
// round-robin priority every cycle even when idle, so an odd number of
// skipped cycles must flip it to keep arbitration decisions identical to
// a fully ticked run.
func (a *Arbiter) Skipped(from, to int64) {
	if a.mode == ArbSingleFIFO && (to-from)%2 == 1 {
		a.rrTIEFirst = !a.rrTIEFirst
	}
}
