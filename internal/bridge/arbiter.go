package bridge

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/queue"
	"repro/internal/stats"
)

// ArbiterMode selects one of the three NoC-access configurations the paper
// describes for sharing a node's injection port between the shared-memory
// bridge and the TIE message-passing interface.
type ArbiterMode int

const (
	// ArbMux: a plain multiplexer with no buffering; under contention one
	// interface waits for the other to release the port.
	ArbMux ArbiterMode = iota
	// ArbSingleFIFO: one shared FIFO decouples the interfaces from switch
	// congestion.
	ArbSingleFIFO
	// ArbDualFIFO: a high-priority FIFO for message-passing traffic and a
	// best-effort FIFO for shared-memory traffic; best-effort drains only
	// when the high-priority queue is empty.
	ArbDualFIFO
)

// String implements fmt.Stringer.
func (m ArbiterMode) String() string {
	switch m {
	case ArbMux:
		return "mux"
	case ArbSingleFIFO:
		return "single-fifo"
	case ArbDualFIFO:
		return "dual-fifo"
	}
	return fmt.Sprintf("arbiter(%d)", int(m))
}

// ArbiterStats counts arbitration events.
type ArbiterStats struct {
	FromTIE    stats.Counter
	FromBridge stats.Counter
	HPOccupied stats.Counter // cycles the BE queue waited behind HP traffic
}

// Arbiter merges the TIE port's and the bridge's output FIFOs into the
// single flit stream the switch pulls from. In the FIFO modes it is a
// clocked component (register it in sim.PhaseNode after the node so that
// flits produced this cycle can be staged this cycle).
type Arbiter struct {
	mode ArbiterMode
	tie  *queue.FIFO[flit.Flit] // high-priority source
	brg  *queue.FIFO[flit.Flit] // best-effort source

	single *queue.FIFO[flit.Flit]
	hp, be *queue.FIFO[flit.Flit]

	rrTIEFirst bool
	name       string

	Stats ArbiterStats
}

// NewArbiter creates an arbiter in the given mode. fifoCap sizes the
// staging FIFO(s) for the FIFO modes.
func NewArbiter(name string, mode ArbiterMode, tieOut, brgOut *queue.FIFO[flit.Flit], fifoCap int) *Arbiter {
	a := &Arbiter{mode: mode, tie: tieOut, brg: brgOut, rrTIEFirst: true, name: name}
	switch mode {
	case ArbSingleFIFO:
		a.single = queue.NewFIFO[flit.Flit](fifoCap)
	case ArbDualFIFO:
		a.hp = queue.NewFIFO[flit.Flit](fifoCap)
		a.be = queue.NewFIFO[flit.Flit](fifoCap)
	}
	return a
}

// Name implements sim.Component.
func (a *Arbiter) Name() string { return a.name }

// Step stages flits from the source queues into the arbiter FIFOs (FIFO
// modes only). One flit per source per cycle may be staged, modelling the
// single write port of each queue.
func (a *Arbiter) Step(now int64) {
	switch a.mode {
	case ArbMux:
		// Nothing to do: TryPull reads the sources directly.
	case ArbSingleFIFO:
		// Round-robin the single staging port between the two sources.
		first, second := a.brg, a.tie
		if a.rrTIEFirst {
			first, second = a.tie, a.brg
		}
		if !a.stageInto(a.single, first) {
			a.stageInto(a.single, second)
		}
		a.rrTIEFirst = !a.rrTIEFirst
	case ArbDualFIFO:
		a.stageInto(a.hp, a.tie)
		a.stageInto(a.be, a.brg)
	}
}

func (a *Arbiter) stageInto(dst, src *queue.FIFO[flit.Flit]) bool {
	if dst.Full() {
		return false
	}
	f, ok := src.Pop()
	if !ok {
		return false
	}
	dst.Push(f)
	return true
}

// TryPull hands the switch the next flit to inject.
func (a *Arbiter) TryPull() (flit.Flit, bool) {
	switch a.mode {
	case ArbMux:
		first, second := a.brg, a.tie
		firstIsTIE := a.rrTIEFirst
		if a.rrTIEFirst {
			first, second = a.tie, a.brg
		}
		if f, ok := first.Pop(); ok {
			a.rrTIEFirst = !a.rrTIEFirst
			a.note(firstIsTIE)
			return f, true
		}
		if f, ok := second.Pop(); ok {
			a.rrTIEFirst = !a.rrTIEFirst
			a.note(!firstIsTIE)
			return f, true
		}
		return flit.Flit{}, false
	case ArbSingleFIFO:
		f, ok := a.single.Pop()
		if ok {
			a.note(f.Type == flit.Message)
		}
		return f, ok
	case ArbDualFIFO:
		if f, ok := a.hp.Pop(); ok {
			a.note(true)
			return f, true
		}
		if a.hp.Len() == 0 {
			if f, ok := a.be.Pop(); ok {
				a.note(false)
				return f, true
			}
		}
		return flit.Flit{}, false
	}
	return flit.Flit{}, false
}

func (a *Arbiter) note(fromTIE bool) {
	if fromTIE {
		a.Stats.FromTIE.Inc()
	} else {
		a.Stats.FromBridge.Inc()
	}
}
