package noc

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// BenchmarkTick measures the per-cycle cost of the engine on a 4x4 folded
// torus (the paper's mesh: 16 switches, 64 link registers) at three offered
// loads. At low load almost every link register is idle, which is the
// common case in the calibrated workloads — the engine must not pay a
// commit per idle register.
func BenchmarkTick(b *testing.B) {
	topo, err := NewTopology(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, rate := range []float64{0, 0.05, 0.4} {
		b.Run(fmt.Sprintf("load-%.2f", rate), func(b *testing.B) {
			e := sim.NewEngine()
			n := NewNetwork(e, topo)
			for id := 0; id < topo.NumNodes(); id++ {
				tn := NewTrafficNode(id, topo, TrafficConfig{Pattern: Uniform, Rate: rate}, 1)
				n.Attach(id, tn)
				e.Register(sim.PhaseNode, tn)
			}
			e.Run(100) // warm up: steady-state occupancy
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Tick()
			}
		})
	}
}
