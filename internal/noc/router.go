package noc

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/flit"
	"repro/internal/sim"
)

// RouterKind selects a routing algorithm for a Network. Routing is a
// first-class sweep axis: every kind runs under the same Topology, the same
// LocalPort contract and the same NetStats, so routers are directly
// comparable under identical traffic (and must agree on the conservation
// invariants even where they disagree on latency — see the differential
// conformance tests).
type RouterKind int

// The four router implementations.
const (
	// RouterDeflection is the paper's bufferless hot-potato switch:
	// oldest-first arbitration, productive ports preferred, losers deflect.
	RouterDeflection RouterKind = iota
	// RouterXY is the buffered dimension-order (X then Y) baseline with
	// unbounded input queues, the router the paper argues against.
	RouterXY
	// RouterAdaptive is an age-weighted adaptive deflection router: like
	// RouterDeflection, but among free productive ports it picks the one
	// whose downstream switch currently sees the least traffic.
	RouterAdaptive
	// RouterWormhole is a 2-virtual-channel input-buffered wormhole router
	// with credit-based flow control and dateline VC allocation for
	// deadlock freedom on the torus rings.
	RouterWormhole

	// numRouters counts the defined router kinds (keep it last).
	numRouters
)

// String implements fmt.Stringer.
func (k RouterKind) String() string {
	switch k {
	case RouterDeflection:
		return "deflection"
	case RouterXY:
		return "xy"
	case RouterAdaptive:
		return "adaptive"
	case RouterWormhole:
		return "wormhole"
	}
	return fmt.Sprintf("router(%d)", int(k))
}

// Bufferless reports whether the kind stores no flits inside the switch
// (the minimal-storage property the paper argues for). The conformance
// tests assert Buffered() == 0 every cycle for bufferless kinds.
func (k RouterKind) Bufferless() bool {
	return k == RouterDeflection || k == RouterAdaptive
}

// AllRouters returns every defined router kind in declaration order.
func AllRouters() []RouterKind {
	out := make([]RouterKind, numRouters)
	for i := range out {
		out[i] = RouterKind(i)
	}
	return out
}

// RouterNames returns the canonical names of every router kind, for flag
// documentation and error messages.
func RouterNames() []string {
	names := make([]string, numRouters)
	for i := range names {
		names[i] = RouterKind(i).String()
	}
	return names
}

// ParseRouter resolves a router kind from its canonical name (as printed
// by RouterKind.String) or its numeric value. Matching is case-insensitive
// and accepts "_" for "-", mirroring ParsePattern.
func ParseRouter(s string) (RouterKind, error) {
	norm := strings.ReplaceAll(strings.ToLower(strings.TrimSpace(s)), "_", "-")
	for k := RouterKind(0); k < numRouters; k++ {
		if norm == k.String() {
			return k, nil
		}
	}
	if n, err := strconv.Atoi(norm); err == nil {
		if n >= 0 && n < int(numRouters) {
			return RouterKind(n), nil
		}
		return 0, fmt.Errorf("noc: router index %d out of range [0, %d)", n, int(numRouters))
	}
	return 0, fmt.Errorf("noc: unknown router %q (have: %s)", s, strings.Join(RouterNames(), ", "))
}

// Router is one switch instance of a routing algorithm. Implementations
// share the wiring block (routerPorts) that NewRouterNetwork fills in; the
// interface exposes only what the network, tracer and conformance tests
// need, so the set of implementations stays closed inside this package.
type Router interface {
	sim.Component
	// ID returns the switch's node id.
	ID() int
	// Buffered returns the number of flits currently stored inside the
	// router (input buffers and injection queue); bufferless routers
	// always return 0.
	Buffered() int
	// PeakBuffered returns the most flits ever stored at once, i.e. the
	// storage a real implementation of this switch would have needed.
	PeakBuffered() int
	// Deflections returns the cumulative count of unproductive hops
	// assigned by this switch (always 0 for buffered routers).
	Deflections() int64
	// EjectedCount returns the cumulative deliveries to the local node
	// made through the switch's ejection port. On concentrated topologies
	// same-switch traffic is delivered inside the local crossbar without
	// traversing the switch and is counted by
	// Network.ConcentratorTurnarounds instead.
	EjectedCount() int64
	// wiring exposes the wiring block to the network constructor.
	wiring() *routerPorts
}

// routerPorts is the per-switch wiring shared by every Router
// implementation: the four link registers in each direction, the local
// node port, and the back-pointer to the owning network for stats.
// Implementations embed it, so field access reads like the hardware it
// models (s.in[p], s.out[p], s.local). On topologies without wrap-around
// links (mesh, cmesh) the registers of boundary-crossing ports are nil and
// every port loop skips them.
type routerPorts struct {
	id   int
	x, y int
	topo Topology
	in   [NumPorts]*sim.Reg[flit.Flit]
	out  [NumPorts]*sim.Reg[flit.Flit]

	local LocalPort
	net   *Network
}

// ID implements Router.
func (rp *routerPorts) ID() int { return rp.id }

func (rp *routerPorts) wiring() *routerPorts { return rp }

// dstSwitch maps a flit's destination endpoint coordinates to the
// coordinates of the switch serving that endpoint (identity except on
// concentrated topologies). Every router resolves a flit's target switch
// through this before routing or ejecting.
func (rp *routerPorts) dstSwitch(f flit.Flit) (int, int) {
	return rp.topo.SwitchOf(int(f.DstX), int(f.DstY))
}

// outOccupancy counts output links carrying a flit this cycle.
func (rp *routerPorts) outOccupancy() int {
	c := 0
	for p := Port(0); p < NumPorts; p++ {
		if rp.out[p] != nil && rp.out[p].Valid() {
			c++
		}
	}
	return c
}

// inOccupancy counts input links delivering a flit this cycle; the
// adaptive router reads its neighbours' value as the downstream
// contention estimate.
func (rp *routerPorts) inOccupancy() int {
	c := 0
	for p := Port(0); p < NumPorts; p++ {
		if rp.in[p] != nil && rp.in[p].Valid() {
			c++
		}
	}
	return c
}

// newRouter constructs an unwired switch of the given kind.
func newRouter(kind RouterKind, rp routerPorts) Router {
	switch kind {
	case RouterDeflection:
		return &DeflSwitch{routerPorts: rp}
	case RouterXY:
		return &XYSwitch{routerPorts: rp}
	case RouterAdaptive:
		return &AdaptiveSwitch{routerPorts: rp}
	case RouterWormhole:
		return newWormholeSwitch(rp)
	}
	panic(fmt.Sprintf("noc: unknown router kind %d", int(kind)))
}
