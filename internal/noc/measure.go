package noc

import (
	"context"

	"repro/internal/sim"
	"repro/internal/stats"
)

// MeasureConfig parameterizes one synthetic-traffic measurement point: a
// router kind, a traffic configuration applied to every node, a warmup
// window that runs unmeasured, and a measurement window. It is the single
// execution path shared by the scenario runner, the dse router-ablation
// experiment and cmd/medea-noc, so their numbers are directly comparable.
type MeasureConfig struct {
	Router  RouterKind
	Traffic TrafficConfig
	// Warmup cycles run before measurement starts (may be 0).
	Warmup int64
	// Measure is the measurement-window length in cycles (must be > 0).
	Measure int64
	// Seed seeds every traffic node (deterministic per seed).
	Seed int64
}

// Measurement is the result of one Measure call. Latency statistics cover
// only flits delivered inside the measurement window; peak buffer covers
// the whole run (buffers fill during warmup too, and sizing hardware needs
// the worst case).
type Measurement struct {
	Cycles      int64 // measurement window length
	Delivered   int64 // flits ejected in the window
	Deflections int64 // unproductive hops assigned in the window
	Throughput  float64
	MeanLatency float64
	P99Latency  float64
	MeanHops    float64
	// DeflectionRate is deflections per delivered flit (0 for buffered
	// routers, which never deflect).
	DeflectionRate float64
	// PeakBuffer is the worst per-switch buffer occupancy (0 for
	// bufferless routers).
	PeakBuffer int
}

// Measure simulates one (topology, router, traffic, seed) point: build a
// fresh network, attach one traffic node per endpoint, warm up, then
// measure over an exact latency sample and counter snapshots so only
// flits delivered inside the window count. Throughput is normalized per
// endpoint, so topologies with different switch counts (the cmesh) stay
// comparable per attached node.
func Measure(topo Topology, mc MeasureConfig) Measurement {
	m, _ := MeasureCtx(context.Background(), topo, mc)
	return m
}

// MeasureCtx is Measure with cooperative cancellation: the context is
// polled every few thousand simulated cycles, so a canceled measurement
// stops in bounded wall time and returns the context's error with a
// zero-value Measurement.
func MeasureCtx(ctx context.Context, topo Topology, mc MeasureConfig) (Measurement, error) {
	e := sim.NewEngine()
	n := NewRouterNetwork(e, topo, mc.Router)
	for i := 0; i < topo.NumEndpoints(); i++ {
		tn := NewTrafficNode(i, topo, mc.Traffic, mc.Seed)
		n.Attach(i, tn)
		e.Register(sim.PhaseNode, tn)
	}

	if err := e.RunCtx(ctx, mc.Warmup); err != nil {
		return Measurement{}, err
	}
	sample := &stats.Sample{}
	n.Stats.LatencySample = sample
	delivered0 := n.Stats.Delivered.Value()
	deflected0 := n.TotalDeflections()
	hopsN0, hopsSum := n.Stats.Hops.Count(), n.Stats.Hops.Sum()
	if err := e.RunCtx(ctx, mc.Measure); err != nil {
		return Measurement{}, err
	}

	delivered := n.Stats.Delivered.Value() - delivered0
	deflected := n.TotalDeflections() - deflected0
	m := Measurement{
		Cycles:      mc.Measure,
		Delivered:   delivered,
		Deflections: deflected,
		Throughput: float64(delivered) / float64(mc.Measure) /
			float64(topo.NumEndpoints()),
		MeanLatency: sample.Mean(),
		P99Latency:  sample.Percentile(99),
		PeakBuffer:  n.PeakBuffer(),
	}
	if dn := n.Stats.Hops.Count() - hopsN0; dn > 0 {
		m.MeanHops = (n.Stats.Hops.Sum() - hopsSum) / float64(dn)
	}
	if delivered > 0 {
		m.DeflectionRate = float64(deflected) / float64(delivered)
	}
	return m, nil
}
