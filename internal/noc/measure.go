package noc

import (
	"context"
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// MeasureConfig parameterizes one synthetic-traffic measurement point: a
// router kind, a traffic configuration applied to every node, a warmup
// window that runs unmeasured, and a measurement window. It is the single
// execution path shared by the scenario runner, the dse router-ablation
// experiment and cmd/medea-noc, so their numbers are directly comparable.
type MeasureConfig struct {
	Router  RouterKind
	Traffic TrafficConfig
	// Warmup cycles run before measurement starts (may be 0).
	Warmup int64
	// Measure is the measurement-window length in cycles (must be > 0).
	Measure int64
	// Seed seeds every traffic node (deterministic per seed).
	Seed int64
}

// Measurement is the result of one Measure call. Latency statistics cover
// only flits delivered inside the measurement window; peak buffer covers
// the whole run (buffers fill during warmup too, and sizing hardware needs
// the worst case).
type Measurement struct {
	Cycles      int64 // measurement window length
	Delivered   int64 // flits ejected in the window
	Deflections int64 // unproductive hops assigned in the window
	Throughput  float64
	MeanLatency float64
	P99Latency  float64
	MeanHops    float64
	// DeflectionRate is deflections per delivered flit (0 for buffered
	// routers, which never deflect).
	DeflectionRate float64
	// PeakBuffer is the worst per-switch buffer occupancy (0 for
	// bufferless routers).
	PeakBuffer int
	// CyclesSkipped counts the window's cycles the engine fast-forwarded
	// over instead of ticking (see internal/sim/ffwd.go). A pure
	// performance counter: every other field is byte-identical whatever
	// its value, which the differential tests assert. It is deliberately
	// excluded from rendered tables and cache codecs.
	CyclesSkipped int64
}

// Measure simulates one (topology, router, traffic, seed) point: build a
// fresh network, attach one traffic node per endpoint, warm up, then
// measure over an exact latency sample and counter snapshots so only
// flits delivered inside the window count. Throughput is normalized per
// endpoint, so topologies with different switch counts (the cmesh) stay
// comparable per attached node.
func Measure(topo Topology, mc MeasureConfig) Measurement {
	m, _ := MeasureCtx(context.Background(), topo, mc)
	return m
}

// measureRig is a built network ready to run: the engine, the fabric and
// one traffic node per endpoint.
type measureRig struct {
	e *sim.Engine
	n *Network
}

func buildRig(topo Topology, mc MeasureConfig) *measureRig {
	e := sim.NewEngine()
	n := NewRouterNetwork(e, topo, mc.Router)
	for i := 0; i < topo.NumEndpoints(); i++ {
		tn := NewTrafficNode(i, topo, mc.Traffic, mc.Seed)
		n.Attach(i, tn)
		e.Register(sim.PhaseNode, tn)
	}
	return &measureRig{e: e, n: n}
}

// window runs one measurement window on a warmed-up rig, attaching a
// fresh latency sample and counter baselines so only flits delivered
// inside the window count.
func (r *measureRig) window(ctx context.Context, topo Topology, measure int64) (Measurement, error) {
	e, n := r.e, r.n
	sample := &stats.Sample{}
	n.Stats.LatencySample = sample
	delivered0 := n.Stats.Delivered.Value()
	deflected0 := n.TotalDeflections()
	hopsN0, hopsSum := n.Stats.Hops.Count(), n.Stats.Hops.Sum()
	skipped0 := e.CyclesSkipped()
	if err := e.RunCtx(ctx, measure); err != nil {
		return Measurement{}, err
	}

	delivered := n.Stats.Delivered.Value() - delivered0
	deflected := n.TotalDeflections() - deflected0
	m := Measurement{
		Cycles:      measure,
		Delivered:   delivered,
		Deflections: deflected,
		Throughput: float64(delivered) / float64(measure) /
			float64(topo.NumEndpoints()),
		MeanLatency:   sample.Mean(),
		P99Latency:    sample.Percentile(99),
		PeakBuffer:    n.PeakBuffer(),
		CyclesSkipped: e.CyclesSkipped() - skipped0,
	}
	if dn := n.Stats.Hops.Count() - hopsN0; dn > 0 {
		m.MeanHops = (n.Stats.Hops.Sum() - hopsSum) / float64(dn)
	}
	if delivered > 0 {
		m.DeflectionRate = float64(deflected) / float64(delivered)
	}
	return m, nil
}

// MeasureCtx is Measure with cooperative cancellation: the context is
// polled every few thousand simulated cycles, so a canceled measurement
// stops in bounded wall time and returns the context's error with a
// zero-value Measurement.
func MeasureCtx(ctx context.Context, topo Topology, mc MeasureConfig) (Measurement, error) {
	r := buildRig(topo, mc)
	if err := r.e.RunCtx(ctx, mc.Warmup); err != nil {
		return Measurement{}, err
	}
	return r.window(ctx, topo, mc.Measure)
}

// MeasureWindowsCtx measures several window lengths that share one warmup
// prefix (same topology, router, traffic and seed; mc.Measure is ignored
// in favour of windows). With fork enabled it simulates the warmup once,
// snapshots the complete engine state, and restores that warm snapshot
// before each window — every returned Measurement is byte-identical to an
// independent MeasureCtx call with the same warmup and that window, which
// the differential tests assert. With fork disabled it runs exactly those
// independent calls.
func MeasureWindowsCtx(ctx context.Context, topo Topology, mc MeasureConfig, windows []int64, fork bool) ([]Measurement, error) {
	out := make([]Measurement, len(windows))
	if !fork || len(windows) <= 1 {
		for i, w := range windows {
			wmc := mc
			wmc.Measure = w
			m, err := MeasureCtx(ctx, topo, wmc)
			if err != nil {
				return nil, err
			}
			out[i] = m
		}
		return out, nil
	}

	r := buildRig(topo, mc)
	if err := r.e.RunCtx(ctx, mc.Warmup); err != nil {
		return nil, err
	}
	snap, err := r.e.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("noc: warm snapshot: %w", err)
	}
	// NetStats lives outside the engine (the Network is not a component),
	// so the warm copy is captured and reinstated alongside the engine
	// snapshot. The latency-sample hook is per-window and never part of
	// the warm state.
	warmStats := r.n.Stats
	warmStats.LatencySample = nil
	for i, w := range windows {
		if err := r.e.Restore(snap); err != nil {
			return nil, fmt.Errorf("noc: restoring warm snapshot: %w", err)
		}
		r.n.Stats = warmStats
		m, err := r.window(ctx, topo, w)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}
