package noc_test

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/sim"
)

// Example builds a 4x4 folded-torus network, attaches a synthetic
// traffic source to every switch and runs it for 2000 cycles — the
// minimal network-only simulation. Everything is deterministic per seed,
// so the printed counters are stable.
func Example() {
	topo, err := noc.NewTopology(4, 4)
	if err != nil {
		panic(err)
	}
	e := sim.NewEngine()
	network := noc.NewNetwork(e, topo)
	for id := 0; id < topo.NumNodes(); id++ {
		t := noc.NewTrafficNode(id, topo, noc.TrafficConfig{
			Pattern: noc.Tornado,
			Rate:    0.1, // flits/node/cycle offered
		}, 1)
		network.Attach(id, t)
		e.Register(sim.PhaseNode, t)
	}
	e.Run(2000)

	s := &network.Stats
	fmt.Printf("injected=%d delivered=%d in-flight=%d\n",
		s.Injected.Value(), s.Delivered.Value(), network.InFlight())
	fmt.Printf("mean latency %.1f cycles over %.1f hops\n",
		s.Latency.Mean(), s.Hops.Mean())
	// Output:
	// injected=3123 delivered=3120 in-flight=3
	// mean latency 2.0 cycles over 2.0 hops
}

// ExampleParsePattern resolves patterns from user-facing names, as the
// cmd/medea-noc and cmd/medea-scenarios flags do.
func ExampleParsePattern() {
	for _, name := range []string{"uniform", "Bit_Complement", "7"} {
		p, err := noc.ParsePattern(name)
		if err != nil {
			panic(err)
		}
		fmt.Println(p)
	}
	// Output:
	// uniform
	// bit-complement
	// tornado
}
