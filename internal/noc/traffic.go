package noc

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Pattern selects a synthetic traffic destination distribution.
type Pattern int

// Synthetic traffic patterns used to characterize the bare network.
const (
	// Uniform sends each flit to a uniformly random other node.
	Uniform Pattern = iota
	// Transpose sends from (x, y) to (y, x); classic adversarial pattern
	// for dimension-ordered routing.
	Transpose
	// Hotspot sends all traffic to one node, modelling the MPMMU's
	// position as the single shared-memory target.
	Hotspot
	// Neighbor sends to the east neighbour, modelling nearest-neighbour
	// halo exchange.
	Neighbor
	// BitComplement sends from (x, y) to (W-1-x, H-1-y): every flit
	// crosses the bisection, the classic worst case for torus bandwidth.
	BitComplement
	// BitReversal sends node i to the node whose id is i's bit pattern
	// reversed. Requires a power-of-two node count.
	BitReversal
	// Shuffle sends node i to rotate-left(i, 1) over log2(N) bits (the
	// perfect-shuffle permutation). Requires a power-of-two node count.
	Shuffle
	// Tornado sends (x, y) to (x + ceil(W/2) - 1, y + ceil(H/2) - 1),
	// wrapping: traffic chases itself half-way around each ring, the
	// adversarial case for minimal adaptive routing on tori.
	Tornado

	// numPatterns counts the defined patterns (keep it last).
	numPatterns
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Transpose:
		return "transpose"
	case Hotspot:
		return "hotspot"
	case Neighbor:
		return "neighbor"
	case BitComplement:
		return "bit-complement"
	case BitReversal:
		return "bit-reversal"
	case Shuffle:
		return "shuffle"
	case Tornado:
		return "tornado"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// InjectionRecorder observes every injection a traffic source's queue
// accepts (trace capture; internal/trace.Trace implements it). The
// recorder is called on the engine thread, after the injection decision
// is final — post gating, post throttle, post the self-destination skip —
// so it sees exactly the flits the network sees and never perturbs the
// run it observes.
type InjectionRecorder interface {
	RecordInjection(cycle int64, src, dst int, meta uint32)
}

// TrafficConfig parameterizes a synthetic traffic node.
type TrafficConfig struct {
	Pattern Pattern
	// Rate is the per-node injection probability per cycle (offered load
	// in flits/node/cycle).
	Rate float64
	// HotspotNode is the destination for the Hotspot pattern.
	HotspotNode int
	// QueueCap bounds the source queue; when full the generator throttles
	// (counts a stall instead of queueing), like a real injection FIFO.
	QueueCap int
	// Burst, when non-nil, gates injection through a two-state on/off
	// modulator: the node injects at Rate only while the modulator is in
	// its on state. Composable with every Pattern.
	Burst *BurstConfig
	// Record, when non-nil, receives every accepted injection. Purely
	// observational: results are byte-identical with or without it.
	Record InjectionRecorder
}

// TrafficNode is a synthetic traffic source/sink implementing LocalPort.
// It is also a sim.Component (register it in sim.PhaseNode).
type TrafficNode struct {
	id    int
	topo  Topology
	cfg   TrafficConfig
	rng   *sim.RNG
	outQ  *queue.FIFO[flit.Flit]
	now   int64
	pktID uint64
	inj   injectGate

	Sent      stats.Counter
	Recv      stats.Counter
	Throttled stats.Counter
	QueueLat  stats.Running // cycles spent in the source queue
}

// injectGate is the pre-drawn injection gating shared by TrafficNode and
// the service workload's clients: a per-cycle burst-modulator step
// followed by a Bernoulli injection coin, drawable ahead of time for idle
// fast-forward. The gating randomness must be drawn exactly once per
// cycle in cycle order whether the decision is made live in gate or ahead
// of time in next, or the RNG stream — and with it every destination draw
// — would diverge from a non-fast-forwarded run. drawnThrough is the last
// cycle whose gating has been drawn; nextInject is the earliest drawn
// cycle that came up heads (-1 when none has), consumed by the gate call
// that injects it.
type injectGate struct {
	rng   *sim.RNG // shared with the owner's destination draws
	burst *BurstModulator
	rate  float64

	drawnThrough int64
	nextInject   int64
}

// drawOne draws cycle drawnThrough+1's gating randomness — the burst
// modulator step first, then (only while on, mirroring the historical
// short-circuit) the Bernoulli injection coin — and reports whether that
// cycle attempts an injection.
func (g *injectGate) drawOne() bool {
	g.drawnThrough++
	if g.burst != nil && !g.burst.Step() {
		return false
	}
	return g.rng.Bernoulli(g.rate)
}

// gate reports whether cycle now attempts an injection, drawing any gating
// decisions not already pre-drawn by next. Each cycle's gating is drawn
// exactly once, in cycle order, wherever the decision is made.
func (g *injectGate) gate(now int64) bool {
	for g.drawnThrough < now {
		if g.drawOne() {
			g.nextInject = g.drawnThrough
		}
	}
	if g.nextInject == now {
		g.nextInject = -1 // consumed
		return true
	}
	return false
}

// next pre-draws gating decisions forward and reports the next
// injection-attempt cycle (the queue-occupancy check is the owner's).
func (g *injectGate) next(now int64) int64 {
	if g.nextInject >= now {
		return g.nextInject
	}
	if g.rate <= 0 {
		// No injection can ever happen, so the per-cycle gating draws can
		// never be observed (destinations are drawn only on injection):
		// skipping is invisible. gate catches the stream up if the engine
		// ticks instead of jumping.
		return sim.NoEvent
	}
	limit := now + ffwdHorizon
	for g.drawnThrough < limit {
		if g.drawOne() {
			g.nextInject = g.drawnThrough
			return g.nextInject
		}
	}
	return g.drawnThrough + 1
}

// NewTrafficNode creates a traffic node for endpoint id (a switch id on
// non-concentrated topologies; a crossbar slot on the cmesh).
func NewTrafficNode(id int, topo Topology, cfg TrafficConfig, seed int64) *TrafficNode {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	t := &TrafficNode{
		id: id, topo: topo, cfg: cfg,
		rng:  sim.NewRNG(seed ^ int64(id)*0x9E37),
		outQ: queue.NewFIFO[flit.Flit](cfg.QueueCap),
	}
	t.inj = injectGate{rng: t.rng, rate: cfg.Rate, drawnThrough: -1, nextInject: -1}
	if cfg.Burst != nil {
		// The modulator draws from its own RNG stream so enabling bursts
		// does not perturb the destination/injection stream of the base
		// pattern beyond the gating itself.
		t.inj.burst = NewBurstModulator(*cfg.Burst, seed^int64(id)*0x9E37^0x5B75)
	}
	return t
}

// Name implements sim.Component.
func (t *TrafficNode) Name() string { return fmt.Sprintf("traffic(%d)", t.id) }

// Step implements sim.Component.
func (t *TrafficNode) Step(now int64) {
	t.now = now
	if !t.inj.gate(now) {
		return
	}
	if t.outQ.Full() {
		t.Throttled.Inc()
		return
	}
	dst := t.destination()
	if dst == t.id {
		return
	}
	dx, dy := t.topo.EndpointCoord(dst)
	t.pktID++
	f := flit.Flit{
		DstX: uint8(dx), DstY: uint8(dy),
		Type: flit.Message, Sub: flit.SubMsgData,
		Src:  uint8(t.id & flit.MaxSrc),
		Data: uint32(now),
	}
	f.Meta.InjectCycle = now
	f.Meta.PacketID = uint64(t.id)<<40 | t.pktID
	t.outQ.Push(f)
	t.Sent.Inc()
	if t.cfg.Record != nil {
		t.cfg.Record.RecordInjection(now, t.id, dst, f.Data)
	}
}

// destination picks this cycle's destination endpoint. All patterns are
// defined on the endpoint grid, so they are the same address streams on
// every topology serving the same endpoint count; only the fabric beneath
// them changes.
func (t *TrafficNode) destination() int {
	switch t.cfg.Pattern {
	case Uniform:
		d := t.rng.Intn(t.topo.NumEndpoints() - 1)
		if d >= t.id {
			d++
		}
		return d
	case Transpose:
		return PermutationDest(Transpose, t.topo, t.id)
	case Hotspot:
		return t.cfg.HotspotNode
	case Neighbor:
		// The east neighbour on the endpoint grid, wrapping in address
		// space (on a mesh the wrap destination is routed the long way
		// through the fabric — the addressing is topology-independent).
		ex, ey := t.topo.EndpointCoord(t.id)
		return t.topo.EndpointID(ex+1, ey)
	case BitComplement, BitReversal, Shuffle, Tornado:
		return PermutationDest(t.cfg.Pattern, t.topo, t.id)
	}
	panic("noc: unknown traffic pattern")
}

// TryPull implements LocalPort.
func (t *TrafficNode) TryPull() (flit.Flit, bool) {
	f, ok := t.outQ.Pop()
	if !ok {
		return f, false
	}
	t.QueueLat.Observe(float64(t.now - f.Meta.InjectCycle))
	return f, true
}

// Deliver implements LocalPort.
func (t *TrafficNode) Deliver(flit.Flit, int64) { t.Recv.Inc() }

// Pending returns the current source-queue occupancy.
func (t *TrafficNode) Pending() int { return t.outQ.Len() }

// ffwdHorizon bounds how many cycles of gating NextEvent pre-draws per
// call. When no injection lands inside the horizon the engine may jump at
// most this far and ask again — still a large multiple of a full tick's
// cost per call, without unbounded scanning at very low rates.
const ffwdHorizon = 1 << 14

// NextEvent implements sim.NextEventer. While the source queue is
// non-empty the node reports the current cycle (the switch must keep
// draining it); otherwise it pre-draws gating decisions forward and
// reports the next injection-attempt cycle.
func (t *TrafficNode) NextEvent(now int64) int64 {
	if t.outQ.Len() > 0 {
		return now
	}
	return t.inj.next(now)
}

// trafficSnap is the checkpointed state of a TrafficNode.
type trafficSnap struct {
	rng          sim.RNG
	burst        BurstModulator
	hasBurst     bool
	outQ         queue.Snap[flit.Flit]
	now          int64
	pktID        uint64
	drawnThrough int64
	nextInject   int64
	sent         stats.Counter
	recv         stats.Counter
	throttled    stats.Counter
	queueLat     stats.Running
}

// Snapshot implements sim.Checkpointable.
func (t *TrafficNode) Snapshot() any {
	s := trafficSnap{
		rng: *t.rng, outQ: t.outQ.Snapshot(),
		now: t.now, pktID: t.pktID,
		drawnThrough: t.inj.drawnThrough, nextInject: t.inj.nextInject,
		sent: t.Sent, recv: t.Recv, throttled: t.Throttled, queueLat: t.QueueLat,
	}
	if t.inj.burst != nil {
		s.burst, s.hasBurst = t.inj.burst.snapshot(), true
	}
	return s
}

// Restore implements sim.Checkpointable.
func (t *TrafficNode) Restore(snap any) {
	s := snap.(trafficSnap)
	*t.rng = s.rng
	if s.hasBurst {
		t.inj.burst.restore(s.burst)
	}
	t.outQ.Restore(s.outQ)
	t.now, t.pktID = s.now, s.pktID
	t.inj.drawnThrough, t.inj.nextInject = s.drawnThrough, s.nextInject
	t.Sent, t.Recv, t.Throttled, t.QueueLat = s.sent, s.recv, s.throttled, s.queueLat
}
