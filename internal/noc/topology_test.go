package noc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTopologyBasics(t *testing.T) {
	topo, err := NewTopology(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 16 {
		t.Fatalf("NumNodes = %d", topo.NumNodes())
	}
	for id := 0; id < 16; id++ {
		x, y := topo.Coord(id)
		if topo.ID(x, y) != id {
			t.Errorf("Coord/ID round trip failed for %d", id)
		}
	}
}

func TestTopologyRejectsTiny(t *testing.T) {
	if _, err := NewTopology(1, 4); err == nil {
		t.Error("1-wide torus should be rejected")
	}
	if _, err := NewTopology(4, 0); err == nil {
		t.Error("0-high torus should be rejected")
	}
}

func TestNewTopologyOfKindValidation(t *testing.T) {
	cases := []struct {
		kind TopologyKind
		w, h int
		ok   bool
	}{
		{TopoTorus, 4, 4, true},
		{TopoTorus, 1, 4, false},
		{TopoMesh, 2, 2, true},
		{TopoMesh, 1, 8, false}, // degenerate line
		{TopoMesh, 8, 1, false},
		{TopoCMesh, 4, 4, true},
		{TopoCMesh, 8, 6, true},
		{TopoCMesh, 5, 4, false}, // not divisible by the 2x2 tile
		{TopoCMesh, 4, 6, true},
		{TopoCMesh, 2, 4, false}, // switch grid would be 1 wide
		{TopoCMesh, 2, 2, false},
	}
	for _, c := range cases {
		topo, err := NewTopologyOfKind(c.kind, c.w, c.h)
		if c.ok && err != nil {
			t.Errorf("%v %dx%d rejected: %v", c.kind, c.w, c.h, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%v %dx%d accepted; want error", c.kind, c.w, c.h)
		}
		if err == nil && topo.Kind() != c.kind {
			t.Errorf("%v %dx%d built a %v", c.kind, c.w, c.h, topo.Kind())
		}
	}
	if _, err := NewTopologyOfKind(numTopologies, 4, 4); err == nil {
		t.Error("out-of-range kind accepted")
	}
}

func TestParseTopology(t *testing.T) {
	for _, k := range AllTopologies() {
		got, err := ParseTopology(k.String())
		if err != nil || got != k {
			t.Errorf("ParseTopology(%q) = %v, %v", k.String(), got, err)
		}
	}
	for in, want := range map[string]TopologyKind{
		"TORUS":  TopoTorus,
		" mesh ": TopoMesh,
		"0":      TopoTorus,
		"2":      TopoCMesh,
		"CMesh":  TopoCMesh,
	} {
		got, err := ParseTopology(in)
		if err != nil || got != want {
			t.Errorf("ParseTopology(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"x", "99", "-1", "", "hypercube"} {
		if _, err := ParseTopology(bad); err == nil {
			t.Errorf("ParseTopology(%q) should fail", bad)
		}
	}
	if len(TopologyNames()) != int(numTopologies) {
		t.Errorf("TopologyNames lists %d kinds, want %d", len(TopologyNames()), int(numTopologies))
	}
	if !strings.Contains(strings.Join(TopologyNames(), ","), "cmesh") {
		t.Error("TopologyNames missing cmesh")
	}
}

func TestIDWrapsAround(t *testing.T) {
	for _, topo := range []Topology{Torus{W: 4, H: 4}, Mesh{W: 4, H: 4}} {
		if topo.ID(-1, 0) != topo.ID(3, 0) {
			t.Errorf("%v: negative x should wrap in address space", topo.Kind())
		}
		if topo.ID(4, 5) != topo.ID(0, 1) {
			t.Errorf("%v: overflow coordinates should wrap in address space", topo.Kind())
		}
	}
}

func TestNeighborsAreSymmetric(t *testing.T) {
	topos := []Topology{Torus{W: 4, H: 3}, Mesh{W: 4, H: 3}, CMesh{W: 8, H: 6}}
	for _, topo := range topos {
		for id := 0; id < topo.NumNodes(); id++ {
			for p := Port(0); p < NumPorts; p++ {
				nb, ok := topo.Neighbor(id, p)
				if !ok {
					continue
				}
				back, ok2 := topo.Neighbor(nb, p.Opposite())
				if !ok2 || back != id {
					t.Errorf("%v node %d port %v: neighbor %d does not link back (got %d, %v)",
						topo.Kind(), id, p, nb, back, ok2)
				}
			}
		}
	}
}

// TestMeshEdgeLinks pins the defining difference from the torus: boundary
// ports have no link, corners keep exactly two.
func TestMeshEdgeLinks(t *testing.T) {
	topo := Mesh{W: 4, H: 4}
	if _, ok := topo.Neighbor(topo.ID(3, 0), East); ok {
		t.Error("east edge should have no east link")
	}
	if _, ok := topo.Neighbor(topo.ID(0, 0), West); ok {
		t.Error("west edge should have no west link")
	}
	links := func(id int) int {
		c := 0
		for p := Port(0); p < NumPorts; p++ {
			if _, ok := topo.Neighbor(id, p); ok {
				c++
			}
		}
		return c
	}
	for _, corner := range []int{topo.ID(0, 0), topo.ID(3, 0), topo.ID(0, 3), topo.ID(3, 3)} {
		if got := links(corner); got != 2 {
			t.Errorf("corner %d has %d links, want 2", corner, got)
		}
	}
	if got := links(topo.ID(1, 1)); got != 4 {
		t.Errorf("interior switch has %d links, want 4", got)
	}
	// The torus keeps all four everywhere; the cmesh switch grid behaves
	// like a mesh.
	torus := Torus{W: 4, H: 4}
	for id := 0; id < torus.NumNodes(); id++ {
		for p := Port(0); p < NumPorts; p++ {
			if _, ok := torus.Neighbor(id, p); !ok {
				t.Fatalf("torus node %d missing port %v", id, p)
			}
		}
	}
}

func TestDist(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	cases := []struct {
		a, b, want int
	}{
		{topo.ID(0, 0), topo.ID(0, 0), 0},
		{topo.ID(0, 0), topo.ID(1, 0), 1},
		{topo.ID(0, 0), topo.ID(3, 0), 1}, // wraparound
		{topo.ID(0, 0), topo.ID(2, 2), 4}, // max distance on a 4x4 torus
		{topo.ID(1, 1), topo.ID(3, 3), 4},
	}
	for _, c := range cases {
		if got := topo.Dist(c.a, c.b); got != c.want {
			t.Errorf("Dist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// The mesh pays the full Manhattan distance where the torus wraps.
	mesh := Mesh{W: 4, H: 4}
	if got := mesh.Dist(mesh.ID(0, 0), mesh.ID(3, 0)); got != 3 {
		t.Errorf("mesh Dist corner-to-corner along x = %d, want 3", got)
	}
	if got := mesh.Dist(mesh.ID(0, 0), mesh.ID(3, 3)); got != 6 {
		t.Errorf("mesh Dist corner-to-corner = %d, want 6", got)
	}
}

// TestDistSymmetricQuick property-tests distance symmetry and the triangle
// inequality over random node pairs, on every kind.
func TestDistSymmetricQuick(t *testing.T) {
	for _, topo := range []Topology{Torus{W: 5, H: 3}, Mesh{W: 5, H: 3}, CMesh{W: 10, H: 6}} {
		n := topo.NumNodes()
		fn := func(a, b, c uint8) bool {
			x, y, z := int(a)%n, int(b)%n, int(c)%n
			if topo.Dist(x, y) != topo.Dist(y, x) {
				return false
			}
			return topo.Dist(x, z) <= topo.Dist(x, y)+topo.Dist(y, z)
		}
		if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%v: %v", topo.Kind(), err)
		}
	}
}

// TestProductivePortsReduceDistance verifies that every productive port is
// a real link that strictly reduces fabric distance and that a non-empty
// set exists whenever source != destination — on every kind.
func TestProductivePortsReduceDistance(t *testing.T) {
	for _, topo := range []Topology{Torus{W: 4, H: 4}, Mesh{W: 4, H: 4}, CMesh{W: 8, H: 8}} {
		for src := 0; src < topo.NumNodes(); src++ {
			for dst := 0; dst < topo.NumNodes(); dst++ {
				if src == dst {
					continue
				}
				sx, sy := topo.Coord(src)
				dx, dy := topo.Coord(dst)
				ports := topo.ProductivePorts(nil, sx, sy, dx, dy)
				if len(ports) == 0 {
					t.Fatalf("%v: no productive port from %d to %d", topo.Kind(), src, dst)
				}
				d := topo.Dist(src, dst)
				for _, p := range ports {
					nb, ok := topo.Neighbor(src, p)
					if !ok {
						t.Fatalf("%v: productive port %v from %d is not a link", topo.Kind(), p, src)
					}
					if topo.Dist(nb, dst) != d-1 {
						t.Errorf("%v: port %v from %d to %d does not reduce distance", topo.Kind(), p, src, dst)
					}
				}
			}
		}
	}
}

// TestXYFirstPortRoute walks XY routes on every kind and checks they
// terminate at the destination within the fabric distance, never needing
// a missing link.
func TestXYFirstPortRoute(t *testing.T) {
	for _, topo := range []Topology{Torus{W: 4, H: 4}, Mesh{W: 4, H: 4}, CMesh{W: 8, H: 6}} {
		for src := 0; src < topo.NumNodes(); src++ {
			for dst := 0; dst < topo.NumNodes(); dst++ {
				cur := src
				hops := 0
				for cur != dst {
					x, y := topo.Coord(cur)
					dx, dy := topo.Coord(dst)
					p, ok := topo.XYFirstPort(x, y, dx, dy)
					if !ok {
						t.Fatalf("%v: XYFirstPort said arrived but %d != %d", topo.Kind(), cur, dst)
					}
					nb, ok := topo.Neighbor(cur, p)
					if !ok {
						t.Fatalf("%v: XY route from %d used missing link %v at %d", topo.Kind(), src, p, cur)
					}
					cur = nb
					hops++
					if hops > 20 {
						t.Fatalf("%v: XY route from %d to %d does not terminate", topo.Kind(), src, dst)
					}
				}
				if hops != topo.Dist(src, dst) {
					t.Errorf("%v: XY route %d->%d took %d hops, min %d", topo.Kind(), src, dst, hops, topo.Dist(src, dst))
				}
			}
		}
	}
}

// TestWrapCrossing pins the dateline capability hook: only the torus has
// wrap-around links, exactly at its ring boundaries.
func TestWrapCrossing(t *testing.T) {
	torus := Torus{W: 4, H: 4}
	if !torus.WrapCrossing(3, 1, East) || !torus.WrapCrossing(0, 1, West) ||
		!torus.WrapCrossing(1, 3, North) || !torus.WrapCrossing(1, 0, South) {
		t.Error("torus boundary hops should cross the dateline")
	}
	if torus.WrapCrossing(1, 1, East) || torus.WrapCrossing(2, 2, North) {
		t.Error("torus interior hops should not cross the dateline")
	}
	for _, topo := range []Topology{Mesh{W: 4, H: 4}, CMesh{W: 8, H: 8}} {
		w, h := topo.Dims()
		for x := 0; x < w; x++ {
			for y := 0; y < h; y++ {
				for p := Port(0); p < NumPorts; p++ {
					if topo.WrapCrossing(x, y, p) {
						t.Fatalf("%v has no wrap links but WrapCrossing(%d,%d,%v) = true", topo.Kind(), x, y, p)
					}
				}
			}
		}
	}
}

// TestCMeshEndpointMapping pins the endpoint-space folding: a W x H
// endpoint grid over a (W/2) x (H/2) switch grid, 2x2 tiles, distinct
// crossbar slots per tile.
func TestCMeshEndpointMapping(t *testing.T) {
	topo := CMesh{W: 8, H: 6}
	if topo.NumEndpoints() != 48 || topo.NumNodes() != 12 {
		t.Fatalf("8x6 cmesh: %d endpoints on %d switches", topo.NumEndpoints(), topo.NumNodes())
	}
	if topo.Concentration() != CMeshConcentration {
		t.Fatalf("concentration = %d", topo.Concentration())
	}
	perSwitch := make(map[int]map[int]bool)
	for e := 0; e < topo.NumEndpoints(); e++ {
		ex, ey := topo.EndpointCoord(e)
		if topo.EndpointID(ex, ey) != e {
			t.Errorf("EndpointCoord/EndpointID round trip failed for %d", e)
		}
		sw := topo.EndpointSwitch(e)
		sx, sy := topo.SwitchOf(ex, ey)
		if gotX, gotY := topo.Coord(sw); gotX != sx || gotY != sy {
			t.Errorf("endpoint %d: EndpointSwitch %d at (%d,%d) but SwitchOf says (%d,%d)",
				e, sw, gotX, gotY, sx, sy)
		}
		if ex/2 != sx || ey/2 != sy {
			t.Errorf("endpoint (%d,%d) folded to switch (%d,%d)", ex, ey, sx, sy)
		}
		slot := topo.LocalIndex(ex, ey)
		if slot < 0 || slot >= topo.Concentration() {
			t.Fatalf("LocalIndex(%d,%d) = %d out of range", ex, ey, slot)
		}
		if perSwitch[sw] == nil {
			perSwitch[sw] = map[int]bool{}
		}
		if perSwitch[sw][slot] {
			t.Errorf("switch %d slot %d claimed by two endpoints", sw, slot)
		}
		perSwitch[sw][slot] = true
	}
	for sw, slots := range perSwitch {
		if len(slots) != CMeshConcentration {
			t.Errorf("switch %d serves %d endpoints, want %d", sw, len(slots), CMeshConcentration)
		}
	}
	// Torus and mesh keep endpoint space == switch space.
	for _, flat := range []Topology{Torus{W: 4, H: 4}, Mesh{W: 4, H: 4}} {
		if flat.Concentration() != 1 || flat.NumEndpoints() != flat.NumNodes() {
			t.Errorf("%v: unexpected concentration", flat.Kind())
		}
		for e := 0; e < flat.NumEndpoints(); e++ {
			ex, ey := flat.EndpointCoord(e)
			if sx, sy := flat.SwitchOf(ex, ey); sx != ex || sy != ey {
				t.Errorf("%v: SwitchOf not identity for endpoint %d", flat.Kind(), e)
			}
			if flat.EndpointSwitch(e) != e || flat.LocalIndex(ex, ey) != 0 {
				t.Errorf("%v: endpoint %d not its own switch", flat.Kind(), e)
			}
		}
	}
}

func TestPortStringsAndOpposite(t *testing.T) {
	for p := Port(0); p < NumPorts; p++ {
		if p.String() == "" {
			t.Error("empty port name")
		}
		if p.Opposite().Opposite() != p {
			t.Errorf("Opposite not involutive for %v", p)
		}
	}
}
