package noc

import (
	"testing"
	"testing/quick"
)

func TestTopologyBasics(t *testing.T) {
	topo, err := NewTopology(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 16 {
		t.Fatalf("NumNodes = %d", topo.NumNodes())
	}
	for id := 0; id < 16; id++ {
		x, y := topo.Coord(id)
		if topo.ID(x, y) != id {
			t.Errorf("Coord/ID round trip failed for %d", id)
		}
	}
}

func TestTopologyRejectsTiny(t *testing.T) {
	if _, err := NewTopology(1, 4); err == nil {
		t.Error("1-wide torus should be rejected")
	}
	if _, err := NewTopology(4, 0); err == nil {
		t.Error("0-high torus should be rejected")
	}
}

func TestIDWrapsAround(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	if topo.ID(-1, 0) != topo.ID(3, 0) {
		t.Error("negative x should wrap")
	}
	if topo.ID(4, 5) != topo.ID(0, 1) {
		t.Error("overflow coordinates should wrap")
	}
}

func TestNeighborsAreSymmetric(t *testing.T) {
	topo, _ := NewTopology(4, 3)
	for id := 0; id < topo.NumNodes(); id++ {
		for p := Port(0); p < NumPorts; p++ {
			nb := topo.Neighbor(id, p)
			back := topo.Neighbor(nb, p.Opposite())
			if back != id {
				t.Errorf("node %d port %v: neighbor %d does not link back (got %d)", id, p, nb, back)
			}
		}
	}
}

func TestDist(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	cases := []struct {
		a, b, want int
	}{
		{topo.ID(0, 0), topo.ID(0, 0), 0},
		{topo.ID(0, 0), topo.ID(1, 0), 1},
		{topo.ID(0, 0), topo.ID(3, 0), 1}, // wraparound
		{topo.ID(0, 0), topo.ID(2, 2), 4}, // max distance on a 4x4 torus
		{topo.ID(1, 1), topo.ID(3, 3), 4},
	}
	for _, c := range cases {
		if got := topo.Dist(c.a, c.b); got != c.want {
			t.Errorf("Dist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestDistSymmetricQuick property-tests distance symmetry and the triangle
// inequality over random node pairs.
func TestDistSymmetricQuick(t *testing.T) {
	topo, _ := NewTopology(5, 3)
	n := topo.NumNodes()
	fn := func(a, b, c uint8) bool {
		x, y, z := int(a)%n, int(b)%n, int(c)%n
		if topo.Dist(x, y) != topo.Dist(y, x) {
			return false
		}
		return topo.Dist(x, z) <= topo.Dist(x, y)+topo.Dist(y, z)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestProductivePortsReduceDistance verifies that every productive port
// strictly reduces torus distance and that a non-empty set exists whenever
// source != destination.
func TestProductivePortsReduceDistance(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	for src := 0; src < topo.NumNodes(); src++ {
		for dst := 0; dst < topo.NumNodes(); dst++ {
			if src == dst {
				continue
			}
			sx, sy := topo.Coord(src)
			dx, dy := topo.Coord(dst)
			ports := topo.ProductivePorts(nil, sx, sy, dx, dy)
			if len(ports) == 0 {
				t.Fatalf("no productive port from %d to %d", src, dst)
			}
			d := topo.Dist(src, dst)
			for _, p := range ports {
				nb := topo.Neighbor(src, p)
				if topo.Dist(nb, dst) != d-1 {
					t.Errorf("port %v from %d to %d does not reduce distance", p, src, dst)
				}
			}
		}
	}
}

// TestXYFirstPortRoute walks XY routes and checks they terminate at the
// destination within the torus distance.
func TestXYFirstPortRoute(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	for src := 0; src < topo.NumNodes(); src++ {
		for dst := 0; dst < topo.NumNodes(); dst++ {
			cur := src
			hops := 0
			for cur != dst {
				x, y := topo.Coord(cur)
				dx, dy := topo.Coord(dst)
				p, ok := topo.XYFirstPort(x, y, dx, dy)
				if !ok {
					t.Fatalf("XYFirstPort said arrived but %d != %d", cur, dst)
				}
				cur = topo.Neighbor(cur, p)
				hops++
				if hops > 10 {
					t.Fatalf("XY route from %d to %d does not terminate", src, dst)
				}
			}
			if hops != topo.Dist(src, dst) {
				t.Errorf("XY route %d->%d took %d hops, min %d", src, dst, hops, topo.Dist(src, dst))
			}
		}
	}
}

func TestPortStringsAndOpposite(t *testing.T) {
	for p := Port(0); p < NumPorts; p++ {
		if p.String() == "" {
			t.Error("empty port name")
		}
		if p.Opposite().Opposite() != p {
			t.Errorf("Opposite not involutive for %v", p)
		}
	}
}
