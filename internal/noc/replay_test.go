package noc

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// recordPoint runs one synthetic-traffic measurement with a trace recorder
// attached and returns the source measurement plus the capture.
func recordPoint(t *testing.T, topo Topology, pat Pattern, rate float64, warmup, measure int64) (Measurement, *trace.Trace) {
	t.Helper()
	tk := topo.Kind()
	w, h := topo.Dims()
	tr := trace.New(trace.Header{
		Width: w, Height: h,
		Topology: tk.String(), Router: RouterDeflection.String(),
		Pattern: pat.String(), Rate: rate, Seed: 11,
		Warmup: warmup, Measure: measure,
	})
	m, err := MeasureCtx(context.Background(), topo, MeasureConfig{
		Router:  RouterDeflection,
		Traffic: TrafficConfig{Pattern: pat, Rate: rate, HotspotNode: 5, Record: tr},
		Warmup:  warmup, Measure: measure, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, tr
}

// replayEvents converts a capture to the replay input.
func replayEvents(tr *trace.Trace) []ReplayEvent {
	evs := make([]ReplayEvent, len(tr.Events))
	for i, ev := range tr.Events {
		evs[i] = ReplayEvent{
			Cycle: ev.Cycle, Src: ev.Src, Dst: ev.Dst, Meta: ev.Meta,
			Req: ev.Kind == trace.EventMessage,
		}
	}
	return evs
}

// TestRecordReplayDifferential is the replay fidelity contract: for every
// traffic pattern on both the torus and the mesh, at a low and a loaded
// rate, recording a run and replaying the capture on the same fabric
// yields a byte-identical Measurement (CyclesSkipped excepted — it is a
// performance counter, free to differ between live draws and a
// pre-scheduled replay). The capture also survives a disk round trip.
func TestRecordReplayDifferential(t *testing.T) {
	const warmup, measure = 64, 1200
	dir := t.TempDir()
	for _, tk := range []TopologyKind{TopoTorus, TopoMesh} {
		topo, err := NewTopologyOfKind(tk, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range PatternNames() {
			pat, err := ParsePattern(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidatePattern(pat, topo); err != nil {
				continue // pattern/grid combination not expressible here
			}
			for _, rate := range []float64{0.05, 0.3} {
				t.Run(tk.String()+"/"+name+"/"+map[float64]string{0.05: "low", 0.3: "high"}[rate], func(t *testing.T) {
					t.Parallel()
					src, tr := recordPoint(t, topo, pat, rate, warmup, measure)

					// Disk round trip inside the loop: the replay below
					// consumes the decoded file, not the in-memory capture.
					path := filepath.Join(dir, tk.String()+"-"+name+".trace")
					if err := tr.Save(path); err != nil {
						t.Fatal(err)
					}
					loaded, err := trace.Load(path)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(loaded.Events, tr.Events) {
						t.Fatal("events changed across Save/Load")
					}

					rep, err := MeasureReplayCtx(context.Background(), topo, ReplayConfig{
						Router: RouterDeflection,
						Events: replayEvents(loaded),
						Warmup: warmup, Measure: measure,
					})
					if err != nil {
						t.Fatal(err)
					}
					if rate == 0.05 && rep.CyclesSkipped == 0 {
						t.Error("low-load replay never fast-forwarded; pre-scheduled injections should give exact idle bounds")
					}
					src.CyclesSkipped, rep.CyclesSkipped = 0, 0
					if !reflect.DeepEqual(src, rep) {
						t.Errorf("replay diverged from source run:\nsrc %+v\nrep %+v", src, rep)
					}
				})
			}
		}
	}
}

// TestReplayCrossTopology: a trace recorded on the torus replays on the
// mesh — different fabric, same injected traffic — and the replay is
// deterministic run to run (the cross-axis guarantee the scenario
// runner's replay axes rely on).
func TestReplayCrossTopology(t *testing.T) {
	torus, err := NewTopologyOfKind(TopoTorus, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := NewTopologyOfKind(TopoMesh, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	srcOnTorus, tr := recordPoint(t, torus, Uniform, 0.2, 50, 1000)
	evs := replayEvents(tr)

	rc := ReplayConfig{Router: RouterDeflection, Events: evs, Warmup: 50, Measure: 1000}
	first, err := MeasureReplayCtx(context.Background(), mesh, rc)
	if err != nil {
		t.Fatal(err)
	}
	again, err := MeasureReplayCtx(context.Background(), mesh, rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Errorf("mesh replay of a torus trace not deterministic:\n%+v\nvs\n%+v", first, again)
	}
	// Same injections, different fabric: the mesh lacks wraparound links,
	// so the traffic itself must match while delivery behaviour may not.
	if first.Delivered == 0 {
		t.Error("cross-topology replay delivered nothing")
	}
	if first.MeanHops == srcOnTorus.MeanHops && first.MeanLatency == srcOnTorus.MeanLatency {
		t.Log("torus and mesh replays coincide exactly (possible but unexpected at rate 0.2)")
	}
}

// TestReplayValidation: the replay entry point rejects impossible inputs
// instead of simulating garbage.
func TestReplayValidation(t *testing.T) {
	topo, err := NewTopologyOfKind(TopoTorus, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := MeasureReplayCtx(ctx, topo, ReplayConfig{Router: RouterDeflection, Measure: 0}); err == nil {
		t.Error("zero measure window accepted")
	}
	if _, err := MeasureReplayCtx(ctx, topo, ReplayConfig{
		Router: RouterDeflection, Measure: 100,
		Events: []ReplayEvent{{Cycle: 1, Src: 99, Dst: 0}},
	}); err == nil {
		t.Error("off-grid source endpoint accepted")
	}
	if _, err := MeasureReplayCtx(ctx, topo, ReplayConfig{
		Router: RouterDeflection, Measure: 100,
		Events: []ReplayEvent{{Cycle: 1, Src: 0, Dst: 99}},
	}); err == nil {
		t.Error("off-grid destination endpoint accepted")
	}
}
