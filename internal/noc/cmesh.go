package noc

import (
	"fmt"

	"repro/internal/flit"
)

// CMeshConcentration is the concentrated mesh's concentration factor:
// each switch serves a 2x2 tile of four endpoints through a local
// crossbar stage.
const CMeshConcentration = 4

// CMesh is a concentrated mesh: a W x H endpoint grid folded onto a
// (W/2) x (H/2) non-wrapping mesh of switches, each serving the 2x2
// endpoint tile above it through a local crossbar. Concentration trades
// bisection bandwidth per endpoint for a quarter of the switches and
// links — the classic area/throughput knob on the topology axis. Flit
// destination coordinates stay in the endpoint grid; SwitchOf and
// LocalIndex fold them onto the switch fabric and the crossbar slot.
type CMesh struct {
	// W, H are the endpoint grid dimensions (both even, >= 4).
	W, H int
}

// switchGrid returns the switch fabric as the Mesh it is; every
// switch-space Topology method delegates to it, so the mesh routing
// functions have exactly one implementation.
func (t CMesh) switchGrid() Mesh { return Mesh{W: t.W / 2, H: t.H / 2} }

// Kind implements Topology.
func (t CMesh) Kind() TopologyKind { return TopoCMesh }

// Dims implements Topology; the switch grid, a quarter of the endpoints.
func (t CMesh) Dims() (int, int) { return t.switchGrid().Dims() }

// NumNodes returns the number of switches.
func (t CMesh) NumNodes() int { return t.switchGrid().NumNodes() }

// Coord maps a switch id to its (x, y) switch-grid coordinate.
func (t CMesh) Coord(id int) (x, y int) { return t.switchGrid().Coord(id) }

// ID maps a switch coordinate to a switch id, wrapping modularly (an
// addressing helper, like Mesh.ID).
func (t CMesh) ID(x, y int) int { return t.switchGrid().ID(x, y) }

// Neighbor returns the switch one hop through port p, and ok=false at the
// mesh boundary.
func (t CMesh) Neighbor(id int, p Port) (int, bool) { return t.switchGrid().Neighbor(id, p) }

// Dist returns the Manhattan distance between two switches.
func (t CMesh) Dist(a, b int) int { return t.switchGrid().Dist(a, b) }

// ProductivePorts implements Topology over the switch grid.
func (t CMesh) ProductivePorts(dst []Port, x, y, dstX, dstY int) []Port {
	return t.switchGrid().ProductivePorts(dst, x, y, dstX, dstY)
}

// XYFirstPort implements Topology over the switch grid.
func (t CMesh) XYFirstPort(x, y, dstX, dstY int) (Port, bool) {
	return t.switchGrid().XYFirstPort(x, y, dstX, dstY)
}

// WrapCrossing implements Topology; the cmesh switch fabric never wraps.
func (t CMesh) WrapCrossing(x, y int, p Port) bool { return false }

// Concentration implements Topology.
func (t CMesh) Concentration() int { return CMeshConcentration }

// NumEndpoints implements Topology.
func (t CMesh) NumEndpoints() int { return t.W * t.H }

// EndpointDims implements Topology.
func (t CMesh) EndpointDims() (int, int) { return t.W, t.H }

// EndpointCoord maps an endpoint id to its endpoint-grid coordinate.
func (t CMesh) EndpointCoord(e int) (int, int) {
	if e < 0 || e >= t.NumEndpoints() {
		panic(fmt.Sprintf("noc: endpoint id %d out of range", e))
	}
	return e % t.W, e / t.W
}

// EndpointID maps an endpoint coordinate to an endpoint id, wrapping
// modularly.
func (t CMesh) EndpointID(ex, ey int) int {
	ex = ((ex % t.W) + t.W) % t.W
	ey = ((ey % t.H) + t.H) % t.H
	return ey*t.W + ex
}

// EndpointSwitch returns the switch serving endpoint e.
func (t CMesh) EndpointSwitch(e int) int {
	ex, ey := t.EndpointCoord(e)
	x, y := t.SwitchOf(ex, ey)
	w, _ := t.Dims()
	return y*w + x
}

// SwitchOf folds an endpoint coordinate onto its 2x2 tile's switch.
func (t CMesh) SwitchOf(ex, ey int) (int, int) { return ex / 2, ey / 2 }

// LocalIndex returns the endpoint's slot on its switch's crossbar: the
// position inside the 2x2 tile, row-major.
func (t CMesh) LocalIndex(ex, ey int) int { return (ex & 1) | (ey&1)<<1 }

// concentrator is the concentrated mesh's local crossbar stage: it
// multiplexes a switch's Concentration() endpoints onto the switch's
// single LocalPort. On the injection side it pulls at most one flit per
// cycle, round-robin across the endpoints, into a one-flit output latch
// the switch drains through TryPull — the latch is source-side storage
// (like the endpoints' own injection queues), so the bufferless routers'
// zero-storage property is untouched. Traffic between two endpoints of
// the same switch turns around inside the crossbar without ever entering
// the network: it counts as injected and delivered in the same cycle, so
// the conservation invariant holds on every cycle boundary. On the
// ejection side Deliver demultiplexes by the flit's endpoint coordinate.
//
// The concentrator runs in sim.PhaseNode (it is part of the endpoint side
// of the LocalPort contract), adding the one cycle of multiplexer latency
// a real concentration stage costs.
type concentrator struct {
	topo Topology
	swID int
	x, y int
	net  *Network

	eps []LocalPort
	rr  int

	latch    flit.Flit
	hasLatch bool

	// turnarounds counts same-switch deliveries made inside the crossbar.
	// These flits never traverse the switch, so they appear in NetStats
	// but in no Router's per-switch counters; this counter closes that
	// gap (NetStats.Delivered == sum of Router.EjectedCount + sum of
	// turnarounds, asserted by the conformance tests).
	turnarounds int64
}

func newConcentrator(topo Topology, swID int, net *Network) *concentrator {
	x, y := topo.Coord(swID)
	c := &concentrator{topo: topo, swID: swID, x: x, y: y, net: net,
		eps: make([]LocalPort, topo.Concentration())}
	for i := range c.eps {
		c.eps[i] = &nullPort{}
	}
	return c
}

// Name implements sim.Component.
func (c *concentrator) Name() string { return fmt.Sprintf("conc(%d,%d)", c.x, c.y) }

// Step implements sim.Component; it runs in sim.PhaseNode.
func (c *concentrator) Step(now int64) {
	if c.hasLatch {
		return // the switch has not drained the latch yet: backpressure
	}
	for i := 0; i < len(c.eps); i++ {
		slot := (c.rr + i) % len(c.eps)
		f, ok := c.eps[slot].TryPull()
		if !ok {
			continue
		}
		c.rr = (slot + 1) % len(c.eps)
		dx, dy := c.topo.SwitchOf(int(f.DstX), int(f.DstY))
		if dx == c.x && dy == c.y {
			// Same-switch traffic turns around in the crossbar.
			c.turnarounds++
			c.net.noteInjected()
			c.net.noteDelivered(f, now)
			c.eps[c.topo.LocalIndex(int(f.DstX), int(f.DstY))].Deliver(f, now)
			return
		}
		c.latch, c.hasLatch = f, true
		return
	}
}

// TryPull implements LocalPort for the switch side.
func (c *concentrator) TryPull() (flit.Flit, bool) {
	if !c.hasLatch {
		return flit.Flit{}, false
	}
	c.hasLatch = false
	return c.latch, true
}

// Deliver implements LocalPort for the switch side, demultiplexing the
// ejected flit to the addressed endpoint.
func (c *concentrator) Deliver(f flit.Flit, now int64) {
	c.eps[c.topo.LocalIndex(int(f.DstX), int(f.DstY))].Deliver(f, now)
}

// held returns the latch occupancy (0 or 1), for drain checks.
func (c *concentrator) held() int {
	if c.hasLatch {
		return 1
	}
	return 0
}
