package noc

import (
	"fmt"

	"repro/internal/flit"
)

// AdaptiveSwitch is an age-weighted adaptive deflection router. It keeps
// every minimal-storage property of DeflSwitch — nothing is buffered,
// nothing exerts backpressure, every incoming flit leaves in the same
// cycle — but improves two decisions:
//
//   - Arbitration stays oldest-flit-first (age priority), so the flits that
//     have waited longest pick their ports first.
//   - Port selection is congestion-aware: among the free productive ports
//     (and, for deflected flits, among the free unproductive ports) the
//     switch picks the one whose downstream switch currently has the
//     fewest flits arriving, read from the neighbour's input links. The
//     estimate is one cycle stale, exactly the information a hardware
//     implementation could carry on dedicated congestion wires.
//
// Under skewed traffic this spreads load across the two productive
// directions of a torus hop instead of always preferring the first one,
// which delays the onset of deflection cascades.
type AdaptiveSwitch struct {
	routerPorts

	// scratch buffers reused across cycles to avoid allocation.
	pool  []routedFlit
	ports []Port
	nbr   [NumPorts]Router // downstream switch through each port (see wireNeighbors)

	Stats SwitchStats
}

// wireNeighbors resolves the downstream switch behind every output port;
// called by NewRouterNetwork after all switches exist. Ports the fabric
// defines no link for stay nil and pickPort never offers them.
func (s *AdaptiveSwitch) wireNeighbors(n *Network) {
	for p := Port(0); p < NumPorts; p++ {
		if nb, ok := s.topo.Neighbor(s.id, p); ok {
			s.nbr[p] = n.Routers[nb]
		}
	}
}

// Name implements sim.Component.
func (s *AdaptiveSwitch) Name() string { return fmt.Sprintf("adsw(%d,%d)", s.x, s.y) }

// Buffered implements Router; the adaptive switch stores nothing.
func (s *AdaptiveSwitch) Buffered() int { return 0 }

// PeakBuffered implements Router; the adaptive switch stores nothing.
func (s *AdaptiveSwitch) PeakBuffered() int { return 0 }

// Deflections implements Router.
func (s *AdaptiveSwitch) Deflections() int64 { return s.Stats.Deflected.Value() }

// EjectedCount implements Router.
func (s *AdaptiveSwitch) EjectedCount() int64 { return s.Stats.Ejected.Value() }

// downstreamLoad returns the congestion estimate for routing out of port
// p: the number of flits arriving at the downstream switch this cycle.
func (s *AdaptiveSwitch) downstreamLoad(p Port) int {
	return s.nbr[p].wiring().inOccupancy()
}

// pickPort returns the free port among candidates with the least
// downstream contention (ties broken by candidate order), or ok=false
// when every candidate is taken. Candidate ports without a link (mesh
// edges, reachable through the allPorts deflection fallback) are skipped.
func (s *AdaptiveSwitch) pickPort(candidates []Port, taken *[NumPorts]bool) (Port, bool) {
	best, bestLoad, found := Port(0), 0, false
	for _, p := range candidates {
		if taken[p] || s.nbr[p] == nil {
			continue
		}
		load := s.downstreamLoad(p)
		if !found || load < bestLoad {
			best, bestLoad, found = p, load, true
		}
	}
	return best, found
}

// allPorts enumerates every port, for the deflection fallback.
var allPorts = [NumPorts]Port{East, West, North, South}

// Step implements sim.Component; it runs in sim.PhaseSwitch. The
// structure mirrors DeflSwitch.Step — collect, eject oldest, route oldest
// first, deflect the rest, inject into leftover capacity — with the
// congestion-aware pickPort replacing first-free port selection.
func (s *AdaptiveSwitch) Step(now int64) {
	pool := s.pool[:0]
	for p := 0; p < int(NumPorts); p++ {
		if s.in[p] != nil && s.in[p].Valid() {
			f, _ := s.in[p].Get()
			dx, dy := s.dstSwitch(f)
			pool = append(pool, routedFlit{f: f, inPort: p, dx: dx, dy: dy})
		}
	}
	var taken [NumPorts]bool
	var assigned [NumPorts]flit.Flit
	var assignedOK [NumPorts]bool
	place := func(f flit.Flit, p Port, productive bool) {
		f.Meta.Hops++
		if productive {
			s.Stats.Productive.Inc()
		} else {
			f.Meta.Deflections++
			s.Stats.Deflected.Inc()
		}
		taken[p] = true
		assigned[p], assignedOK[p] = f, true
		s.Stats.Routed.Inc()
	}

	if len(pool) == 0 {
		// Idle fast path: only possible work is an injection.
		if f, ok := s.local.TryPull(); ok {
			s.Stats.Injected.Inc()
			s.net.noteInjected()
			dx, dy := s.dstSwitch(f)
			s.ports = s.topo.ProductivePorts(s.ports[:0], s.x, s.y, dx, dy)
			if p, ok := s.pickPort(s.ports, &taken); ok {
				place(f, p, true)
			} else if p, ok := s.pickPort(allPorts[:], &taken); ok {
				place(f, p, false) // degenerate self-addressed case
			} else {
				panic("noc: adaptive switch has no ports")
			}
			for p := Port(0); p < NumPorts; p++ {
				if assignedOK[p] {
					s.out[p].Set(assigned[p])
				}
			}
		}
		return
	}

	// Ejection: pick the oldest flit addressed to this node.
	ejectIdx := -1
	for i := range pool {
		if pool[i].dx != s.x || pool[i].dy != s.y {
			continue
		}
		if ejectIdx < 0 || older(pool[i], pool[ejectIdx]) {
			ejectIdx = i
		}
	}
	if ejectIdx >= 0 {
		f := pool[ejectIdx].f
		s.Stats.Ejected.Inc()
		s.net.noteDelivered(f, now)
		s.local.Deliver(f, now)
		pool = append(pool[:ejectIdx], pool[ejectIdx+1:]...)
	}

	// Oldest-first arbitration (insertion sort, at most four entries).
	for i := 1; i < len(pool); i++ {
		for j := i; j > 0 && older(pool[j], pool[j-1]); j-- {
			pool[j], pool[j-1] = pool[j-1], pool[j]
		}
	}

	deflect := pool[:0] // flits that did not get a productive port
	for _, rf := range pool {
		atDst := rf.dx == s.x && rf.dy == s.y
		if atDst {
			// Lost the ejection port this cycle; must keep moving.
			s.Stats.EjectMissed.Inc()
			deflect = append(deflect, rf)
			continue
		}
		s.ports = s.topo.ProductivePorts(s.ports[:0], s.x, s.y, rf.dx, rf.dy)
		if p, ok := s.pickPort(s.ports, &taken); ok {
			place(rf.f, p, true)
		} else {
			deflect = append(deflect, rf)
		}
	}
	for _, rf := range deflect {
		p, ok := s.pickPort(allPorts[:], &taken)
		if !ok {
			// Cannot happen: arrivals never exceed the switch's real
			// ports (a mesh corner has two links, at most two arrivals).
			panic("noc: adaptive switch dropped a flit")
		}
		place(rf.f, p, false)
	}

	// Injection: only when an output slot is left over.
	if f, ok := func() (flit.Flit, bool) {
		for p := Port(0); p < NumPorts; p++ {
			if s.out[p] != nil && !taken[p] {
				return s.local.TryPull()
			}
		}
		return flit.Flit{}, false
	}(); ok {
		s.Stats.Injected.Inc()
		s.net.noteInjected()
		dx, dy := s.dstSwitch(f)
		s.ports = s.topo.ProductivePorts(s.ports[:0], s.x, s.y, dx, dy)
		if p, ok := s.pickPort(s.ports, &taken); ok {
			place(f, p, true)
		} else if p, ok := s.pickPort(allPorts[:], &taken); ok {
			place(f, p, false)
		} else {
			panic("noc: injected with no free port")
		}
	}

	for p := Port(0); p < NumPorts; p++ {
		if assignedOK[p] {
			s.out[p].Set(assigned[p])
		}
	}
	s.pool = pool[:0]
}
