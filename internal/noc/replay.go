package noc

import (
	"context"
	"fmt"

	"repro/internal/flit"
	"repro/internal/queue"
	"repro/internal/sim"
)

// ReplayEvent is one pre-scheduled injection for a replay run (one
// decoded trace event; the scenario runner converts). Events are given in
// nondecreasing Cycle order with Src/Dst on the replay fabric's endpoint
// grid — MeasureReplayCtx validates both.
type ReplayEvent struct {
	Cycle int64
	Src   int
	Dst   int
	// Meta becomes the replayed flit's data word.
	Meta uint32
	// Req marks a request-class event (a recorded eMPI message send);
	// injection events replay as data-class flits, exactly as their
	// source run injected them.
	Req bool
}

// ReplayConfig parameterizes one trace-replay measurement: the recorded
// event schedule pushed through a chosen router, over the recorded
// warmup/measure horizon.
type ReplayConfig struct {
	Router  RouterKind
	Events  []ReplayEvent
	Warmup  int64
	Measure int64
}

// replayNode is the replaying TrafficNode-analogue: instead of drawing
// injections from an RNG it injects its endpoint's recorded events at
// their recorded cycles. On the fabric the trace was recorded on this
// reproduces the source run's flit stream exactly — same cycles, same
// destinations, same per-node packet-id sequences — so every measured
// statistic matches the source run (the record/replay differential tests
// assert byte-identity). The pre-scheduled events give NextEvent exact
// bounds, so replay composes with idle fast-forward out of the box.
type replayNode struct {
	id     int
	topo   Topology
	events []ReplayEvent // this endpoint's events, cycle-ordered
	next   int
	outQ   *queue.FIFO[flit.Flit]
	now    int64
	pktID  uint64
}

// newReplayNode creates the replay source/sink for endpoint id. The
// source queue is unbounded: the recorded schedule already reflects the
// source run's throttling, and a cross-fabric replay may need more
// in-queue slack than the recording fabric did.
func newReplayNode(id int, topo Topology, events []ReplayEvent) *replayNode {
	return &replayNode{id: id, topo: topo, events: events, outQ: queue.NewFIFO[flit.Flit](0)}
}

// Name implements sim.Component.
func (r *replayNode) Name() string { return fmt.Sprintf("replay(%d)", r.id) }

// Step implements sim.Component: inject every event scheduled for this
// cycle. The flit fields mirror TrafficNode.Step exactly (same Src
// truncation, same per-node packet-id sequence) so a same-fabric replay
// is indistinguishable from its source run.
func (r *replayNode) Step(now int64) {
	r.now = now
	for r.next < len(r.events) && r.events[r.next].Cycle == now {
		ev := r.events[r.next]
		r.next++
		dx, dy := r.topo.EndpointCoord(ev.Dst)
		r.pktID++
		f := flit.Flit{
			DstX: uint8(dx), DstY: uint8(dy),
			Type: flit.Message, Sub: flit.SubMsgData,
			Src:  uint8(r.id & flit.MaxSrc),
			Data: ev.Meta,
		}
		if ev.Req {
			f.Sub = flit.SubMsgReq
		}
		f.Meta.InjectCycle = now
		f.Meta.PacketID = uint64(r.id)<<40 | r.pktID
		r.outQ.Push(f)
	}
}

// TryPull implements LocalPort.
func (r *replayNode) TryPull() (flit.Flit, bool) { return r.outQ.Pop() }

// Deliver implements LocalPort (the network tallies delivery stats).
func (r *replayNode) Deliver(flit.Flit, int64) {}

// Pending returns the current source-queue occupancy.
func (r *replayNode) Pending() int { return r.outQ.Len() }

// NextEvent implements sim.NextEventer. The schedule is known ahead of
// time, so the bound is exact: the engine can jump straight to the next
// recorded injection whenever the fabric is quiet.
func (r *replayNode) NextEvent(now int64) int64 {
	if r.outQ.Len() > 0 {
		return now
	}
	if r.next < len(r.events) {
		return r.events[r.next].Cycle
	}
	return sim.NoEvent
}

// MeasureReplayCtx replays a recorded event schedule through one
// (topology, router) point and measures the recorded window, through the
// same window accounting as MeasureCtx. Events outside the fabric's
// endpoint grid are rejected (a decoded trace is pre-validated against
// its own grid; this guards hand-built schedules and cross-fabric
// mismatches).
func MeasureReplayCtx(ctx context.Context, topo Topology, rc ReplayConfig) (Measurement, error) {
	if rc.Measure <= 0 {
		return Measurement{}, fmt.Errorf("noc: replay measure window must be positive, got %d", rc.Measure)
	}
	n := topo.NumEndpoints()
	per := make([][]ReplayEvent, n)
	for _, ev := range rc.Events {
		if ev.Src < 0 || ev.Src >= n || ev.Dst < 0 || ev.Dst >= n {
			return Measurement{}, fmt.Errorf("noc: replay event endpoints (%d->%d) outside the %d-endpoint fabric", ev.Src, ev.Dst, n)
		}
		per[ev.Src] = append(per[ev.Src], ev)
	}
	e := sim.NewEngine()
	net := NewRouterNetwork(e, topo, rc.Router)
	for i := 0; i < n; i++ {
		rn := newReplayNode(i, topo, per[i])
		net.Attach(i, rn)
		e.Register(sim.PhaseNode, rn)
	}
	rig := &measureRig{e: e, n: net}
	if err := e.RunCtx(ctx, rc.Warmup); err != nil {
		return Measurement{}, err
	}
	return rig.window(ctx, topo, rc.Measure)
}
