package noc

import (
	"context"
	"fmt"

	"repro/internal/flit"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ServiceMeasureConfig parameterizes one request/response service
// measurement point. The last Servers endpoints act as servers; every
// other endpoint is a client issuing open-loop request flits at
// ArrivalRate (optionally burst-modulated, optionally skewed toward the
// first server) and awaiting ResponseFlits response flits per request.
type ServiceMeasureConfig struct {
	Router RouterKind
	// Servers is how many endpoints (the highest-numbered ones) serve
	// requests. Must leave at least one client.
	Servers int
	// ArrivalRate is the per-client request probability per cycle
	// (open-loop: clients do not wait for outstanding responses).
	ArrivalRate float64
	// ThinkTime is the server-side service time per request in cycles.
	// 0 and 1 are equivalent: a response is emitted no earlier than the
	// step after its request is accepted.
	ThinkTime int64
	// ResponseFlits is the response size in flits (default 1).
	ResponseFlits int
	// HotspotSkew is the probability a request targets the first server
	// instead of a uniformly random one (0 = uniform over servers).
	HotspotSkew float64
	// QueueCap bounds each client's source queue (default 16); when full
	// the client throttles the arrival instead of issuing it.
	QueueCap int
	// Burst, when non-nil, gates client arrivals through the two-state
	// modulator, exactly as TrafficConfig.Burst gates synthetic traffic.
	Burst *BurstConfig
	// Warmup cycles run before measurement starts (may be 0).
	Warmup int64
	// Measure is the measurement-window length in cycles (must be > 0).
	Measure int64
	// Seed seeds every client (deterministic per seed).
	Seed int64
}

// ServiceMeasurement is the flat, CSV-friendly result of one service
// measurement window. Count fields are window deltas except InFlight,
// which is the absolute number of open requests when the window ends;
// with Warmup=0, Issued == Completed + InFlight exactly (request
// conservation, asserted by the property tests). The four latency
// breakdown components sum to the end-to-end latency per request by
// construction.
type ServiceMeasurement struct {
	Cycles    int64
	Issued    int64 // requests issued in the window
	Completed int64 // requests fully answered in the window
	InFlight  int64 // requests still open at window end
	Throttled int64 // arrivals dropped at a full client queue
	// Throughput is completed requests per client per cycle.
	Throughput float64
	// Breakdown means over requests completed in the window:
	// client-queue wait, request network traversal, server queueing plus
	// service, and response network traversal. They sum to MeanLatency.
	MeanQueue   float64
	MeanNetOut  float64
	MeanServer  float64
	MeanNetBack float64
	MeanLatency float64 // end-to-end request latency mean
	P99Latency  float64 // end-to-end request latency p99
	P99Server   float64 // server-component p99 (the hotspot-skew signal)
	PeakBuffer  int
	// CyclesSkipped counts fast-forwarded window cycles; purely a
	// performance counter, excluded from rendered rows and cache codecs
	// like its Measurement counterpart.
	CyclesSkipped int64
}

// svcRequest tracks one request's lifecycle stamps. Cycle 0 is a valid
// stamp, so unset stamps are -1.
type svcRequest struct {
	create     int64 // arrival accepted into the client queue
	inject     int64 // request flit left the client queue
	arrive     int64 // request flit delivered at the server
	respInject int64 // response emitted into the server queue
	done       int64 // last response flit delivered at the client
	gotFlits   int   // response flits received so far
}

// svcBoard is the engine-thread-only scoreboard shared by all clients and
// servers of one rig: open requests by id, lifetime counters, and the
// per-window observation hooks (attached fresh per measurement window,
// like Network.Stats.LatencySample). pending is only ever indexed by
// request id — never iterated — so map order cannot leak into results.
type svcBoard struct {
	pending   map[uint32]*svcRequest
	issued    stats.Counter
	completed stats.Counter
	throttled stats.Counter

	e2e     *stats.Sample  // end-to-end latency
	server  *stats.Sample  // server component (p99 wanted)
	queue   *stats.Running // client-queue component
	netOut  *stats.Running // request-path network component
	netBack *stats.Running // response-path network component

	// onComplete, when non-nil, sees every completed request's stamps
	// (the breakdown property tests hook it).
	onComplete func(svcRequest)
}

func newSvcBoard() *svcBoard {
	return &svcBoard{pending: map[uint32]*svcRequest{}}
}

// complete finalizes a request whose last response flit arrived at now.
func (b *svcBoard) complete(id uint32, req *svcRequest, now int64) {
	req.done = now
	delete(b.pending, id)
	b.completed.Inc()
	if b.e2e != nil {
		b.e2e.Observe(float64(req.done - req.create))
		b.server.Observe(float64(req.respInject - req.arrive))
		b.queue.Observe(float64(req.inject - req.create))
		b.netOut.Observe(float64(req.arrive - req.inject))
		b.netBack.Observe(float64(req.done - req.respInject))
	}
	if b.onComplete != nil {
		b.onComplete(*req)
	}
}

// reqIDSeqBits is how many id bits carry the per-client sequence number;
// the client id occupies the bits above. A request id collides only if a
// single request stays open across 2^20 later arrivals from the same
// client — unreachable in any bounded-horizon run.
const reqIDSeqBits = 20

// svcClient is a client endpoint: an open-loop request source (gated by
// the same pre-drawable injectGate as TrafficNode, so it composes with
// idle fast-forward) and the sink for its own responses.
type svcClient struct {
	id    int
	topo  Topology
	cfg   ServiceMeasureConfig
	board *svcBoard
	rng   *sim.RNG
	inj   injectGate
	outQ  *queue.FIFO[flit.Flit]
	now   int64
	seq   uint32
	pktID uint64
}

func newSvcClient(id int, topo Topology, cfg ServiceMeasureConfig, board *svcBoard) *svcClient {
	c := &svcClient{
		id: id, topo: topo, cfg: cfg, board: board,
		rng:  sim.NewRNG(cfg.Seed ^ int64(id)*0x9E37),
		outQ: queue.NewFIFO[flit.Flit](cfg.QueueCap),
	}
	c.inj = injectGate{rng: c.rng, rate: cfg.ArrivalRate, drawnThrough: -1, nextInject: -1}
	if cfg.Burst != nil {
		c.inj.burst = NewBurstModulator(*cfg.Burst, cfg.Seed^int64(id)*0x9E37^0x5B75)
	}
	return c
}

// Name implements sim.Component.
func (c *svcClient) Name() string { return fmt.Sprintf("svc-client(%d)", c.id) }

// chooseServer draws this request's server: a skew coin toward the first
// server, then a uniform draw over all servers. Both draws come from the
// client's main RNG, in a fixed order, so the stream is deterministic.
func (c *svcClient) chooseServer() int {
	first := c.topo.NumEndpoints() - c.cfg.Servers
	if c.cfg.HotspotSkew > 0 && c.rng.Bernoulli(c.cfg.HotspotSkew) {
		return first
	}
	return first + c.rng.Intn(c.cfg.Servers)
}

// Step implements sim.Component: one open-loop arrival attempt per cycle.
func (c *svcClient) Step(now int64) {
	c.now = now
	if !c.inj.gate(now) {
		return
	}
	if c.outQ.Full() {
		c.board.throttled.Inc()
		return
	}
	dst := c.chooseServer()
	dx, dy := c.topo.EndpointCoord(dst)
	c.seq++
	id := uint32(c.id)<<reqIDSeqBits | c.seq&(1<<reqIDSeqBits-1)
	c.pktID++
	f := flit.Flit{
		DstX: uint8(dx), DstY: uint8(dy),
		Type: flit.Message, Sub: flit.SubMsgReq,
		Src:  uint8(c.id & flit.MaxSrc),
		Data: id,
	}
	f.Meta.InjectCycle = now
	f.Meta.PacketID = uint64(c.id)<<40 | c.pktID
	c.outQ.Push(f)
	c.board.pending[id] = &svcRequest{create: now, inject: -1, arrive: -1, respInject: -1, done: -1}
	c.board.issued.Inc()
}

// TryPull implements LocalPort, stamping the queue→network handoff.
func (c *svcClient) TryPull() (flit.Flit, bool) {
	f, ok := c.outQ.Pop()
	if !ok {
		return f, false
	}
	if req, ok := c.board.pending[f.Data]; ok {
		req.inject = c.now
	}
	return f, true
}

// Deliver implements LocalPort: response flits come home. The request
// completes when its last response flit lands.
func (c *svcClient) Deliver(f flit.Flit, now int64) {
	req, ok := c.board.pending[f.Data]
	if !ok {
		return
	}
	req.gotFlits++
	if req.gotFlits >= c.cfg.ResponseFlits {
		c.board.complete(f.Data, req, now)
	}
}

// Pending returns the current source-queue occupancy.
func (c *svcClient) Pending() int { return c.outQ.Len() }

// NextEvent implements sim.NextEventer (exact, via the pre-drawn gate).
func (c *svcClient) NextEvent(now int64) int64 {
	if c.outQ.Len() > 0 {
		return now
	}
	return c.inj.next(now)
}

// svcServer is a server endpoint: requests queue in arrival order, are
// serviced one at a time for ThinkTime cycles, and answered with
// ResponseFlits flits. Both queues are unbounded — server overload shows
// up as latency (the hotspot-skew shape test measures exactly that), not
// as silent drops.
type svcServer struct {
	id    int
	topo  Topology
	cfg   ServiceMeasureConfig
	board *svcBoard
	workQ *queue.FIFO[uint32]
	outQ  *queue.FIFO[flit.Flit]
	busy  bool
	cur   uint32
	until int64
	pktID uint64
}

func newSvcServer(id int, topo Topology, cfg ServiceMeasureConfig, board *svcBoard) *svcServer {
	return &svcServer{
		id: id, topo: topo, cfg: cfg, board: board,
		workQ: queue.NewFIFO[uint32](0),
		outQ:  queue.NewFIFO[flit.Flit](0),
	}
}

// Name implements sim.Component.
func (s *svcServer) Name() string { return fmt.Sprintf("svc-server(%d)", s.id) }

// Step implements sim.Component: finish the current request first, then
// accept the next. A request accepted at cycle T emits its response at
// max(T+ThinkTime, T+1) — the emit-then-accept order means ThinkTime 0
// and 1 behave identically, which the config documents.
func (s *svcServer) Step(now int64) {
	if s.busy && now >= s.until {
		req := s.board.pending[s.cur]
		req.respInject = now
		cx, cy := s.topo.EndpointCoord(int(s.cur >> reqIDSeqBits))
		for i := 0; i < s.cfg.ResponseFlits; i++ {
			s.pktID++
			f := flit.Flit{
				DstX: uint8(cx), DstY: uint8(cy),
				Type: flit.Message, Sub: flit.SubMsgData,
				Src:  uint8(s.id & flit.MaxSrc),
				Data: s.cur,
			}
			f.Meta.InjectCycle = now
			f.Meta.PacketID = uint64(s.id)<<40 | s.pktID
			s.outQ.Push(f)
		}
		s.busy = false
	}
	if !s.busy {
		if id, ok := s.workQ.Pop(); ok {
			s.busy, s.cur, s.until = true, id, now+s.cfg.ThinkTime
		}
	}
}

// TryPull implements LocalPort.
func (s *svcServer) TryPull() (flit.Flit, bool) { return s.outQ.Pop() }

// Deliver implements LocalPort: a request flit arrives.
func (s *svcServer) Deliver(f flit.Flit, now int64) {
	if req, ok := s.board.pending[f.Data]; ok {
		req.arrive = now
	}
	s.workQ.Push(f.Data)
}

// Pending returns the current response-queue occupancy.
func (s *svcServer) Pending() int { return s.outQ.Len() }

// NextEvent implements sim.NextEventer. The service completion time is
// known exactly, so an otherwise-quiet fabric can jump straight to it.
func (s *svcServer) NextEvent(now int64) int64 {
	if s.outQ.Len() > 0 || s.workQ.Len() > 0 {
		return now
	}
	if s.busy {
		if s.until > now {
			return s.until
		}
		return now
	}
	return sim.NoEvent
}

// serviceRig is a built service rig ready to run.
type serviceRig struct {
	e     *sim.Engine
	n     *Network
	board *svcBoard
}

func (sc *ServiceMeasureConfig) validate(topo Topology) error {
	n := topo.NumEndpoints()
	if sc.Servers < 1 {
		return fmt.Errorf("noc: service needs at least one server, got %d", sc.Servers)
	}
	if sc.Servers >= n {
		return fmt.Errorf("noc: %d servers on a %d-endpoint fabric must leave at least one client", sc.Servers, n)
	}
	if sc.ArrivalRate < 0 || sc.ArrivalRate > 1 {
		return fmt.Errorf("noc: service arrival rate must be in [0, 1], got %g", sc.ArrivalRate)
	}
	if sc.HotspotSkew < 0 || sc.HotspotSkew > 1 {
		return fmt.Errorf("noc: service hotspot skew must be in [0, 1], got %g", sc.HotspotSkew)
	}
	if sc.ThinkTime < 0 {
		return fmt.Errorf("noc: service think time must be >= 0, got %d", sc.ThinkTime)
	}
	if sc.Measure <= 0 {
		return fmt.Errorf("noc: service measure window must be positive, got %d", sc.Measure)
	}
	return nil
}

func buildServiceRig(topo Topology, sc ServiceMeasureConfig) *serviceRig {
	if sc.QueueCap <= 0 {
		sc.QueueCap = 16
	}
	if sc.ResponseFlits <= 0 {
		sc.ResponseFlits = 1
	}
	e := sim.NewEngine()
	n := NewRouterNetwork(e, topo, sc.Router)
	board := newSvcBoard()
	clients := topo.NumEndpoints() - sc.Servers
	for i := 0; i < topo.NumEndpoints(); i++ {
		var port LocalPort
		var comp sim.Component
		if i < clients {
			c := newSvcClient(i, topo, sc, board)
			port, comp = c, c
		} else {
			s := newSvcServer(i, topo, sc, board)
			port, comp = s, s
		}
		n.Attach(i, port)
		e.Register(sim.PhaseNode, comp)
	}
	return &serviceRig{e: e, n: n, board: board}
}

// window runs one measurement window on a warmed-up service rig.
func (r *serviceRig) window(ctx context.Context, topo Topology, sc ServiceMeasureConfig) (ServiceMeasurement, error) {
	b := r.board
	b.e2e, b.server = &stats.Sample{}, &stats.Sample{}
	b.queue, b.netOut, b.netBack = &stats.Running{}, &stats.Running{}, &stats.Running{}
	issued0 := b.issued.Value()
	completed0 := b.completed.Value()
	throttled0 := b.throttled.Value()
	skipped0 := r.e.CyclesSkipped()
	if err := r.e.RunCtx(ctx, sc.Measure); err != nil {
		return ServiceMeasurement{}, err
	}
	clients := topo.NumEndpoints() - sc.Servers
	completed := b.completed.Value() - completed0
	return ServiceMeasurement{
		Cycles:        sc.Measure,
		Issued:        b.issued.Value() - issued0,
		Completed:     completed,
		InFlight:      int64(len(b.pending)),
		Throttled:     b.throttled.Value() - throttled0,
		Throughput:    float64(completed) / float64(sc.Measure) / float64(clients),
		MeanQueue:     b.queue.Mean(),
		MeanNetOut:    b.netOut.Mean(),
		MeanServer:    b.server.Mean(),
		MeanNetBack:   b.netBack.Mean(),
		MeanLatency:   b.e2e.Mean(),
		P99Latency:    b.e2e.Percentile(99),
		P99Server:     b.server.Percentile(99),
		PeakBuffer:    r.n.PeakBuffer(),
		CyclesSkipped: r.e.CyclesSkipped() - skipped0,
	}, nil
}

// MeasureServiceCtx simulates one (topology, router, service, seed)
// point: warm up, then measure one window of request/response traffic
// with per-request latency breakdowns.
func MeasureServiceCtx(ctx context.Context, topo Topology, sc ServiceMeasureConfig) (ServiceMeasurement, error) {
	if err := sc.validate(topo); err != nil {
		return ServiceMeasurement{}, err
	}
	r := buildServiceRig(topo, sc)
	if err := r.e.RunCtx(ctx, sc.Warmup); err != nil {
		return ServiceMeasurement{}, err
	}
	return r.window(ctx, topo, sc)
}
