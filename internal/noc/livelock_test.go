package noc

import (
	"testing"

	"repro/internal/sim"
)

// TestLatencyTailUnderSaturation reproduces the paper's §II-A observation
// about deflection routing: "sporadic cases of single flits delivered with
// high latency (larger than average) that did not significantly hamper
// execution times" — a heavy-tailed latency distribution but no livelock.
func TestLatencyTailUnderSaturation(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	e := sim.NewEngine()
	n := NewNetwork(e, topo)
	nodes := make([]*TrafficNode, topo.NumNodes())
	for i := range nodes {
		nodes[i] = NewTrafficNode(i, topo, TrafficConfig{Pattern: Hotspot, HotspotNode: 0, Rate: 0.8}, 21)
		n.Attach(i, nodes[i])
		e.Register(sim.PhaseNode, nodes[i])
	}
	e.Run(5000)
	mean := n.Stats.Latency.Mean()
	max := n.Stats.Latency.Max()
	if n.Stats.Delivered.Value() < 1000 {
		t.Fatalf("only %d flits delivered under saturation", n.Stats.Delivered.Value())
	}
	// The tail exists (deflections delay some flits well beyond average)...
	if max < 3*mean {
		t.Logf("note: latency tail modest (mean %.1f, max %.0f)", mean, max)
	}
	// ...but is bounded: no flit livelocks anywhere near the run length.
	if max > 2500 {
		t.Errorf("flit latency %v suggests livelock (mean %.1f)", max, mean)
	}
	t.Logf("hotspot saturation: delivered=%d mean=%.1f max=%.0f deflections=%d",
		n.Stats.Delivered.Value(), mean, max, n.TotalDeflections())
}

// TestOldestFirstPreventsStarvation checks the arbitration invariant that
// makes the above work: under sustained cross-traffic, a single flit
// crossing the loaded region still gets through quickly because age wins
// arbitration.
func TestOldestFirstPreventsStarvation(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	e := sim.NewEngine()
	n := NewNetwork(e, topo)
	// Saturating background traffic among nodes 1..15.
	for i := 1; i < topo.NumNodes(); i++ {
		tn := NewTrafficNode(i, topo, TrafficConfig{Pattern: Uniform, Rate: 1.0}, 31)
		n.Attach(i, tn)
		e.Register(sim.PhaseNode, tn)
	}
	// A probe source at node 0 injecting one flit every 100 cycles to the
	// far corner.
	probe := &collector{}
	n.Attach(0, probe)
	far := topo.ID(2, 2)
	fx, fy := topo.Coord(far)
	e.Register(sim.PhaseNode, &sim.FuncComponent{ComponentName: "probe", Fn: func(now int64) {
		if now%100 == 0 && now < 3000 {
			f := mkFlit(topo, 0, far, uint64(now))
			f.DstX, f.DstY = uint8(fx), uint8(fy)
			f.Meta.InjectCycle = now
			probe.out = append(probe.out, f)
		}
	}})
	// The far corner needs a sink that counts.
	sink := &collector{}
	n.Attach(far, sink)
	e.Run(6000)
	if len(sink.got) < 25 {
		t.Fatalf("only %d of 30 probe flits delivered through saturated traffic", len(sink.got))
	}
	worst := int64(0)
	for i, f := range sink.got {
		lat := sink.when[i] - f.Meta.InjectCycle
		if lat > worst {
			worst = lat
		}
	}
	if worst > 1500 {
		t.Errorf("probe flit took %d cycles: starvation under load", worst)
	}
	t.Logf("worst probe latency through saturation: %d cycles", worst)
}
