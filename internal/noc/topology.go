// Package noc implements the MEDEA network-on-chip: a two-dimensional
// folded-torus topology with bufferless deflection-routed ("hot potato")
// switches, plus a conventional buffered XY dimension-order router used as
// an ablation baseline, and synthetic traffic generators for network-only
// evaluation.
package noc

import "fmt"

// Port identifies one of the four inter-switch directions.
type Port int

// The four torus directions. East/West move along X, North/South along Y.
const (
	East Port = iota
	West
	North
	South
	// NumPorts is the number of inter-switch ports per switch.
	NumPorts
)

// String implements fmt.Stringer.
func (p Port) String() string {
	switch p {
	case East:
		return "E"
	case West:
		return "W"
	case North:
		return "N"
	case South:
		return "S"
	}
	return fmt.Sprintf("port(%d)", int(p))
}

// Opposite returns the port on the neighbouring switch that a flit leaving
// through p arrives on.
func (p Port) Opposite() Port {
	switch p {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	}
	panic("noc: invalid port")
}

// Topology describes a W x H folded torus. A folded torus is physically
// laid out with interleaved nodes so all links have equal length; logically
// it is a torus, so routing uses plain modular distances.
type Topology struct {
	W, H int
}

// NewTopology validates and returns a torus topology.
func NewTopology(w, h int) (Topology, error) {
	if w < 2 || h < 2 {
		return Topology{}, fmt.Errorf("noc: torus must be at least 2x2, got %dx%d", w, h)
	}
	return Topology{W: w, H: h}, nil
}

// NumNodes returns the number of switches (and attachable nodes).
func (t Topology) NumNodes() int { return t.W * t.H }

// Coord maps a node id to its (x, y) coordinate.
func (t Topology) Coord(id int) (x, y int) {
	if id < 0 || id >= t.NumNodes() {
		panic(fmt.Sprintf("noc: node id %d out of range", id))
	}
	return id % t.W, id / t.W
}

// ID maps a coordinate to a node id, wrapping around the torus.
func (t Topology) ID(x, y int) int {
	x = ((x % t.W) + t.W) % t.W
	y = ((y % t.H) + t.H) % t.H
	return y*t.W + x
}

// Neighbor returns the node id one hop from id through port p.
func (t Topology) Neighbor(id int, p Port) int {
	x, y := t.Coord(id)
	switch p {
	case East:
		return t.ID(x+1, y)
	case West:
		return t.ID(x-1, y)
	case North:
		return t.ID(x, y+1)
	case South:
		return t.ID(x, y-1)
	}
	panic("noc: invalid port")
}

// Dist returns the minimal hop count between two nodes on the torus.
func (t Topology) Dist(a, b int) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	return axisDist(ax, bx, t.W) + axisDist(ay, by, t.H)
}

func axisDist(a, b, n int) int {
	d := ((b-a)%n + n) % n
	if n-d < d {
		return n - d
	}
	return d
}

// ProductivePorts appends to dst the ports that strictly reduce the torus
// distance from (x, y) to (dstX, dstY) and returns the extended slice.
// When the destination is equidistant in both directions of an axis (even
// torus, exactly half-way) both directions are productive.
func (t Topology) ProductivePorts(dst []Port, x, y, dstX, dstY int) []Port {
	// This runs once per routed flit per cycle; coordinates are in range
	// in every caller, so wrap with a subtraction and keep the div-based
	// modulo as a fallback for out-of-range inputs only.
	de := dstX - x
	if de < 0 {
		de += t.W
	}
	if de < 0 || de >= t.W {
		de = ((dstX-x)%t.W + t.W) % t.W
	}
	if de != 0 {
		dw := t.W - de
		if de <= dw {
			dst = append(dst, East)
		}
		if dw <= de {
			dst = append(dst, West)
		}
	}
	dn := dstY - y
	if dn < 0 {
		dn += t.H
	}
	if dn < 0 || dn >= t.H {
		dn = ((dstY-y)%t.H + t.H) % t.H
	}
	if dn != 0 {
		ds := t.H - dn
		if dn <= ds {
			dst = append(dst, North)
		}
		if ds <= dn {
			dst = append(dst, South)
		}
	}
	return dst
}

// XYFirstPort returns the dimension-order (X then Y) routing port from
// (x, y) towards (dstX, dstY), choosing the shorter wrap direction, and
// ok=false when already at the destination.
func (t Topology) XYFirstPort(x, y, dstX, dstY int) (Port, bool) {
	if x != dstX {
		de := ((dstX-x)%t.W + t.W) % t.W
		if de <= t.W-de {
			return East, true
		}
		return West, true
	}
	if y != dstY {
		dn := ((dstY-y)%t.H + t.H) % t.H
		if dn <= t.H-dn {
			return North, true
		}
		return South, true
	}
	return 0, false
}
