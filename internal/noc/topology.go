// Package noc implements the MEDEA network-on-chip as a cross-product of
// pluggable axes. The Topology axis selects the fabric: the paper's folded
// torus, a non-wrapping mesh, or a concentration-4 concentrated mesh
// (cmesh) that multiplexes four endpoints onto every switch through a
// local crossbar stage. The Router axis selects the switching algorithm:
// the paper's bufferless deflection ("hot potato") switch, a buffered XY
// dimension-order baseline, an age-weighted adaptive deflection router,
// and a 2-virtual-channel credit-flow-controlled wormhole router. A
// nine-pattern synthetic traffic library drives network-only evaluation.
// Every (topology, router, pattern) combination shares the same LocalPort
// contract, the same NetStats and the same conservation invariants — the
// differential conformance tests run the full cross-product — so routers
// and fabrics are directly comparable under identical traffic.
package noc

import (
	"fmt"
	"strconv"
	"strings"
)

// Port identifies one of the four inter-switch directions.
type Port int

// The four grid directions. East/West move along X, North/South along Y.
const (
	East Port = iota
	West
	North
	South
	// NumPorts is the number of inter-switch ports per switch.
	NumPorts
)

// String implements fmt.Stringer.
func (p Port) String() string {
	switch p {
	case East:
		return "E"
	case West:
		return "W"
	case North:
		return "N"
	case South:
		return "S"
	}
	return fmt.Sprintf("port(%d)", int(p))
}

// Opposite returns the port on the neighbouring switch that a flit leaving
// through p arrives on.
func (p Port) Opposite() Port {
	switch p {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	}
	panic("noc: invalid port")
}

// TopologyKind selects a fabric for a Network. Topology is a first-class
// sweep axis mirroring RouterKind: every kind runs under the same Router
// implementations, the same LocalPort contract and the same NetStats, so
// structurally different fabrics are directly comparable under identical
// traffic.
type TopologyKind int

// The three fabric implementations.
const (
	// TopoTorus is the paper's W x H folded torus: every ring wraps, all
	// links are equal length, and every switch has all four ports.
	TopoTorus TopologyKind = iota
	// TopoMesh is a non-wrapping W x H mesh: edge switches lack the ports
	// that would cross the boundary (corner switches keep only two), and
	// no ring wraps, so the wormhole router needs no dateline.
	TopoMesh
	// TopoCMesh is a concentrated mesh: a (W/2) x (H/2) non-wrapping mesh
	// of switches, each serving a 2x2 tile of four endpoints through a
	// local crossbar stage (concentration factor CMeshConcentration).
	TopoCMesh

	// numTopologies counts the defined topology kinds (keep it last).
	numTopologies
)

// String implements fmt.Stringer.
func (k TopologyKind) String() string {
	switch k {
	case TopoTorus:
		return "torus"
	case TopoMesh:
		return "mesh"
	case TopoCMesh:
		return "cmesh"
	}
	return fmt.Sprintf("topology(%d)", int(k))
}

// AllTopologies returns every defined topology kind in declaration order.
func AllTopologies() []TopologyKind {
	out := make([]TopologyKind, numTopologies)
	for i := range out {
		out[i] = TopologyKind(i)
	}
	return out
}

// TopologyNames returns the canonical names of every topology kind, for
// flag documentation and error messages.
func TopologyNames() []string {
	names := make([]string, numTopologies)
	for i := range names {
		names[i] = TopologyKind(i).String()
	}
	return names
}

// ParseTopology resolves a topology kind from its canonical name (as
// printed by TopologyKind.String) or its numeric value. Matching is
// case-insensitive and accepts "_" for "-", mirroring ParseRouter and
// ParsePattern.
func ParseTopology(s string) (TopologyKind, error) {
	norm := strings.ReplaceAll(strings.ToLower(strings.TrimSpace(s)), "_", "-")
	for k := TopologyKind(0); k < numTopologies; k++ {
		if norm == k.String() {
			return k, nil
		}
	}
	if n, err := strconv.Atoi(norm); err == nil {
		if n >= 0 && n < int(numTopologies) {
			return TopologyKind(n), nil
		}
		return 0, fmt.Errorf("noc: topology index %d out of range [0, %d)", n, int(numTopologies))
	}
	return 0, fmt.Errorf("noc: unknown topology %q (have: %s)", s, strings.Join(TopologyNames(), ", "))
}

// Topology describes a fabric of switches on a 2-D grid and the endpoints
// attached to them. Implementations are small value types (Torus, Mesh,
// CMesh) safe to copy and compare.
//
// Two coordinate spaces coexist. The switch space is the grid the routers
// live on: Dims/NumNodes/Coord/ID/Neighbor/Dist and the routing functions
// (ProductivePorts, XYFirstPort) all speak switch coordinates. The
// endpoint space is the grid the attached nodes (traffic generators, PEs)
// live on: flit destination coordinates (Flit.DstX/DstY) are endpoint
// coordinates, and NumEndpoints/EndpointCoord/EndpointID address it. For
// the torus and the mesh the two spaces coincide (Concentration() == 1);
// the concentrated mesh packs a 2x2 endpoint tile behind each switch, and
// SwitchOf/LocalIndex translate between the spaces.
type Topology interface {
	// Kind returns the fabric's kind on the topology axis.
	Kind() TopologyKind
	// Dims returns the switch grid dimensions.
	Dims() (w, h int)
	// NumNodes returns the number of switches.
	NumNodes() int
	// Coord maps a switch id to its (x, y) grid coordinate.
	Coord(id int) (x, y int)
	// ID maps a coordinate to a switch id. It wraps modularly on every
	// kind — it is an addressing helper, not a link function; whether a
	// physical link crosses the boundary is Neighbor's business.
	ID(x, y int) int
	// Neighbor returns the switch one hop from id through port p, and
	// ok=false when the fabric has no link there (mesh and cmesh edges).
	Neighbor(id int, p Port) (nb int, ok bool)
	// Dist returns the minimal hop count between two switches.
	Dist(a, b int) int
	// ProductivePorts appends to dst the ports that strictly reduce the
	// fabric distance from switch (x, y) to switch (dstX, dstY) and
	// returns the extended slice. Every returned port is a real link.
	ProductivePorts(dst []Port, x, y, dstX, dstY int) []Port
	// XYFirstPort returns the dimension-order (X then Y) routing port from
	// switch (x, y) towards switch (dstX, dstY), and ok=false when already
	// there. The returned port is always a real link.
	XYFirstPort(x, y, dstX, dstY int) (Port, bool)
	// WrapCrossing reports whether the hop out of switch (x, y) through
	// port p crosses a wrap-around link. It is the capability hook the
	// wormhole router queries for dateline VC allocation: only wrapping
	// rings (the torus) need the VC-1 escape; mesh fabrics never wrap and
	// always return false.
	WrapCrossing(x, y int, p Port) bool

	// Concentration returns the number of endpoints attached to each
	// switch (1 except for the concentrated mesh).
	Concentration() int
	// NumEndpoints returns the number of attachable endpoints.
	NumEndpoints() int
	// EndpointDims returns the endpoint grid dimensions.
	EndpointDims() (ew, eh int)
	// EndpointCoord maps an endpoint id to its endpoint-grid coordinate
	// (the coordinate carried in Flit.DstX/DstY).
	EndpointCoord(e int) (ex, ey int)
	// EndpointID maps an endpoint coordinate to an endpoint id, wrapping
	// modularly (an addressing helper, like ID).
	EndpointID(ex, ey int) int
	// EndpointSwitch returns the switch an endpoint hangs off.
	EndpointSwitch(e int) int
	// SwitchOf maps an endpoint coordinate to the coordinates of the
	// switch serving it (identity unless concentrated).
	SwitchOf(ex, ey int) (x, y int)
	// LocalIndex returns the endpoint's slot on its switch's local
	// crossbar, in [0, Concentration()).
	LocalIndex(ex, ey int) int
}

// NewTopology validates and returns the paper's folded-torus topology. It
// is shorthand for NewTopologyOfKind(TopoTorus, w, h) and remains the
// constructor used by the full MEDEA system.
func NewTopology(w, h int) (Topology, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("noc: torus must be at least 2x2, got %dx%d", w, h)
	}
	return Torus{W: w, H: h}, nil
}

// NewTopologyOfKind validates and returns a topology of the given kind
// with a w x h endpoint grid. For the torus and the mesh the switch grid
// is the endpoint grid; the concentrated mesh folds the endpoints into a
// (w/2) x (h/2) switch grid, so w and h must both be even multiples of
// the 2x2 concentration tile and at least 4.
func NewTopologyOfKind(kind TopologyKind, w, h int) (Topology, error) {
	switch kind {
	case TopoTorus:
		return NewTopology(w, h)
	case TopoMesh:
		if w < 2 || h < 2 {
			return nil, fmt.Errorf("noc: mesh must be at least 2x2, got %dx%d", w, h)
		}
		return Mesh{W: w, H: h}, nil
	case TopoCMesh:
		if w%2 != 0 || h%2 != 0 {
			return nil, fmt.Errorf("noc: cmesh endpoint grid must be divisible by the 2x2 concentration tile, got %dx%d", w, h)
		}
		if w < 4 || h < 4 {
			return nil, fmt.Errorf("noc: cmesh needs at least a 4x4 endpoint grid (a 2x2 switch grid), got %dx%d", w, h)
		}
		return CMesh{W: w, H: h}, nil
	}
	return nil, fmt.Errorf("noc: unknown topology kind %d", int(kind))
}

// Torus is the paper's W x H folded torus. A folded torus is physically
// laid out with interleaved nodes so all links have equal length;
// logically it is a torus, so routing uses plain modular distances. One
// endpoint attaches to every switch.
type Torus struct {
	W, H int
}

// Kind implements Topology.
func (t Torus) Kind() TopologyKind { return TopoTorus }

// Dims implements Topology.
func (t Torus) Dims() (int, int) { return t.W, t.H }

// NumNodes returns the number of switches.
func (t Torus) NumNodes() int { return t.W * t.H }

// Coord maps a switch id to its (x, y) coordinate.
func (t Torus) Coord(id int) (x, y int) {
	if id < 0 || id >= t.NumNodes() {
		panic(fmt.Sprintf("noc: node id %d out of range", id))
	}
	return id % t.W, id / t.W
}

// ID maps a coordinate to a switch id, wrapping around the torus.
func (t Torus) ID(x, y int) int {
	x = ((x % t.W) + t.W) % t.W
	y = ((y % t.H) + t.H) % t.H
	return y*t.W + x
}

// Neighbor returns the switch one hop from id through port p; every torus
// link exists, so ok is always true.
func (t Torus) Neighbor(id int, p Port) (int, bool) {
	x, y := t.Coord(id)
	switch p {
	case East:
		return t.ID(x+1, y), true
	case West:
		return t.ID(x-1, y), true
	case North:
		return t.ID(x, y+1), true
	case South:
		return t.ID(x, y-1), true
	}
	panic("noc: invalid port")
}

// Dist returns the minimal hop count between two switches on the torus.
func (t Torus) Dist(a, b int) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	return axisDist(ax, bx, t.W) + axisDist(ay, by, t.H)
}

func axisDist(a, b, n int) int {
	d := ((b-a)%n + n) % n
	if n-d < d {
		return n - d
	}
	return d
}

// ProductivePorts appends to dst the ports that strictly reduce the torus
// distance from (x, y) to (dstX, dstY) and returns the extended slice.
// When the destination is equidistant in both directions of an axis (even
// torus, exactly half-way) both directions are productive.
func (t Torus) ProductivePorts(dst []Port, x, y, dstX, dstY int) []Port {
	// This runs once per routed flit per cycle; coordinates are in range
	// in every caller, so wrap with a subtraction and keep the div-based
	// modulo as a fallback for out-of-range inputs only.
	de := dstX - x
	if de < 0 {
		de += t.W
	}
	if de < 0 || de >= t.W {
		de = ((dstX-x)%t.W + t.W) % t.W
	}
	if de != 0 {
		dw := t.W - de
		if de <= dw {
			dst = append(dst, East)
		}
		if dw <= de {
			dst = append(dst, West)
		}
	}
	dn := dstY - y
	if dn < 0 {
		dn += t.H
	}
	if dn < 0 || dn >= t.H {
		dn = ((dstY-y)%t.H + t.H) % t.H
	}
	if dn != 0 {
		ds := t.H - dn
		if dn <= ds {
			dst = append(dst, North)
		}
		if ds <= dn {
			dst = append(dst, South)
		}
	}
	return dst
}

// XYFirstPort returns the dimension-order (X then Y) routing port from
// (x, y) towards (dstX, dstY), choosing the shorter wrap direction, and
// ok=false when already at the destination.
func (t Torus) XYFirstPort(x, y, dstX, dstY int) (Port, bool) {
	if x != dstX {
		de := ((dstX-x)%t.W + t.W) % t.W
		if de <= t.W-de {
			return East, true
		}
		return West, true
	}
	if y != dstY {
		dn := ((dstY-y)%t.H + t.H) % t.H
		if dn <= t.H-dn {
			return North, true
		}
		return South, true
	}
	return 0, false
}

// WrapCrossing implements Topology: the hop crosses a wrap-around link
// exactly when it leaves the last switch of its ring, which is where the
// wormhole router's dateline moves packets to the escape VC.
func (t Torus) WrapCrossing(x, y int, p Port) bool {
	switch p {
	case East:
		return x == t.W-1
	case West:
		return x == 0
	case North:
		return y == t.H-1
	case South:
		return y == 0
	}
	return false
}

// Concentration implements Topology; one endpoint per torus switch.
func (t Torus) Concentration() int { return 1 }

// NumEndpoints implements Topology.
func (t Torus) NumEndpoints() int { return t.NumNodes() }

// EndpointDims implements Topology.
func (t Torus) EndpointDims() (int, int) { return t.W, t.H }

// EndpointCoord implements Topology; endpoint space is switch space.
func (t Torus) EndpointCoord(e int) (int, int) { return t.Coord(e) }

// EndpointID implements Topology.
func (t Torus) EndpointID(ex, ey int) int { return t.ID(ex, ey) }

// EndpointSwitch implements Topology.
func (t Torus) EndpointSwitch(e int) int { return e }

// SwitchOf implements Topology.
func (t Torus) SwitchOf(ex, ey int) (int, int) { return ex, ey }

// LocalIndex implements Topology.
func (t Torus) LocalIndex(ex, ey int) int { return 0 }
