package noc

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/queue"
	"repro/internal/stats"
)

// Wormhole router geometry: two virtual channels per link (the minimum for
// deadlock-free dimension-order routing on torus rings, via the classic
// dateline scheme) and a small per-VC input buffer, credit-managed.
const (
	// WormholeVCs is the number of virtual channels per link.
	WormholeVCs = 2
	// WormholeVCDepth is the per-VC input-buffer capacity in flits; it is
	// also the initial credit count the upstream switch holds for that
	// buffer.
	WormholeVCDepth = 4
)

// WormholeStats counts per-switch events for the wormhole router.
type WormholeStats struct {
	Routed       stats.Counter // flits forwarded to an output port
	Ejected      stats.Counter // flits delivered to the local node
	Injected     stats.Counter // flits accepted from the local node
	CreditStalls stats.Counter // head flits stalled for lack of credit
	PortStalls   stats.Counter // head flits stalled on a busy output port
}

// WormholeSwitch is a 2-virtual-channel input-buffered wormhole router
// with credit-based flow control, the middle ground between the paper's
// bufferless deflection switch and the unbounded-queue XY baseline:
//
//   - Routing is dimension-order (X then Y, shorter wrap direction), the
//     same path function as XYSwitch.
//   - Each input link has WormholeVCs small FIFOs; a flit advances only
//     when the downstream buffer for its VC has a free slot, tracked by
//     credits. A returned credit travels one cycle on a dedicated wire
//     (the same two-phase discipline flit links get from sim.Reg, so
//     turnaround never depends on engine stepping order); credits can
//     never go negative (sending is gated on a credit) and the
//     conformance tests assert it.
//   - Deadlock freedom on the torus rings comes from dateline VC
//     allocation: a packet travels a ring on VC0 until it crosses the
//     wrap-around link, then switches to VC1; turning into the Y dimension
//     resets to VC0 (the rings are disjoint resource classes under
//     dimension-order routing).
//
// A flit arriving on a link is buffered in the cycle it arrives and
// becomes eligible for switch allocation the next cycle (buffer write then
// switch traversal, as in a real input-buffered pipeline), so the
// zero-load per-hop latency is one cycle higher than the single-cycle
// deflection switch — the latency cost of buffering the paper points at.
type WormholeSwitch struct {
	routerPorts

	bufs [NumPorts][WormholeVCs]*queue.FIFO[flit.Flit]
	injQ *queue.FIFO[flit.Flit]

	// credits[p][v] counts free slots in the downstream switch's input
	// buffer reached through port p, VC v.
	credits [NumPorts][WormholeVCs]int
	// pending[c&1][p][v] accumulates credits returned by the downstream
	// switch during cycle c; they fold into credits at this switch's next
	// Step. The parity split gives every returned credit exactly one
	// cycle of wire latency regardless of engine stepping order, the same
	// two-phase discipline sim.Reg enforces for flits.
	pending [2][NumPorts][WormholeVCs]int
	// up[p] is the upstream switch feeding in[p]; draining a flit that
	// arrived there returns one credit to it.
	up [NumPorts]*WormholeSwitch

	buffered  int
	peakBuf   int
	minCredit int // most negative headroom ever observed (stays >= 0)

	Stats WormholeStats
}

func newWormholeSwitch(rp routerPorts) *WormholeSwitch {
	s := &WormholeSwitch{routerPorts: rp, injQ: queue.NewFIFO[flit.Flit](WormholeVCDepth)}
	for p := 0; p < int(NumPorts); p++ {
		for v := 0; v < WormholeVCs; v++ {
			s.bufs[p][v] = queue.NewFIFO[flit.Flit](WormholeVCDepth)
			s.credits[p][v] = WormholeVCDepth
		}
	}
	s.minCredit = WormholeVCDepth
	return s
}

// wireCredits resolves the upstream switch behind every input port; called
// by NewRouterNetwork after all switches exist. Ports without a link (mesh
// edges) stay nil; no flit ever arrives there, so no credit ever returns.
func (s *WormholeSwitch) wireCredits(n *Network) {
	for p := Port(0); p < NumPorts; p++ {
		if nb, ok := s.topo.Neighbor(s.id, p); ok {
			s.up[p] = n.Routers[nb].(*WormholeSwitch)
		}
	}
}

// Name implements sim.Component.
func (s *WormholeSwitch) Name() string { return fmt.Sprintf("whsw(%d,%d)", s.x, s.y) }

// Buffered implements Router.
func (s *WormholeSwitch) Buffered() int { return s.buffered }

// PeakBuffered implements Router.
func (s *WormholeSwitch) PeakBuffered() int { return s.peakBuf }

// Deflections implements Router; wormhole routing never deflects.
func (s *WormholeSwitch) Deflections() int64 { return 0 }

// EjectedCount implements Router.
func (s *WormholeSwitch) EjectedCount() int64 { return s.Stats.Ejected.Value() }

// MinCredit returns the lowest credit count ever observed on any of this
// switch's output VCs. The conformance tests assert it never goes below
// zero (the credit protocol never overruns a downstream buffer).
func (s *WormholeSwitch) MinCredit() int { return s.minCredit }

// returnCredit hands one credit back to the upstream switch feeding input
// port q for VC v, i.e. the slot just drained is free again. The credit
// travels on a dedicated wire: it lands in the upstream switch's pending
// accumulator for the current cycle and becomes spendable at its next
// Step, so turnaround time does not depend on the order switches step in.
func (s *WormholeSwitch) returnCredit(q Port, v uint8, now int64) {
	s.up[q].pending[now&1][q.Opposite()][v]++
}

// collectCredits folds the credits returned during the previous cycle
// into the spendable counters; runs first in Step.
func (s *WormholeSwitch) collectCredits(now int64) {
	prev := &s.pending[(now+1)&1] // parity of cycle now-1
	for p := 0; p < int(NumPorts); p++ {
		for v := 0; v < WormholeVCs; v++ {
			if prev[p][v] == 0 {
				continue
			}
			s.credits[p][v] += prev[p][v]
			prev[p][v] = 0
			if s.credits[p][v] > WormholeVCDepth {
				panic("noc: wormhole credit overflow (more credits than buffer slots)")
			}
		}
	}
}

// spendCredit consumes one credit for sending out port p on VC v.
func (s *WormholeSwitch) spendCredit(p Port, v uint8) {
	s.credits[p][v]--
	if s.credits[p][v] < s.minCredit {
		s.minCredit = s.credits[p][v]
	}
	if s.credits[p][v] < 0 {
		panic("noc: wormhole credit underflow (sent without a credit)")
	}
}

// sendVC computes the virtual channel for the hop out of port p, given
// the VC the flit currently occupies and whether it is turning into a new
// dimension (or entering the network). Dateline rule: each ring is
// traversed on VC0 until the hop that crosses the wrap-around link, VC1
// afterwards. The topology's WrapCrossing capability hook says where the
// datelines sit; on fabrics whose rings never wrap (mesh, cmesh) it is
// constantly false and the escape VC is never allocated — dimension-order
// routing alone is deadlock free there.
func (s *WormholeSwitch) sendVC(cur uint8, p Port, newDim bool) uint8 {
	vc := cur
	if newDim {
		vc = 0
	}
	if s.topo.WrapCrossing(s.x, s.y, p) {
		vc = 1
	}
	return vc
}

// isYPort reports whether p moves along the Y dimension.
func isYPort(p Port) bool { return p == North || p == South }

// whHead is one allocation candidate: the head flit of an input FIFO (a
// per-link VC buffer, or the local injection queue when port == -1).
type whHead struct {
	q    *queue.FIFO[flit.Flit]
	f    flit.Flit
	port int // -1 for the injection queue
	vc   uint8
}

// heads collects the current head flit of every non-empty input queue.
func (s *WormholeSwitch) heads(scratch []whHead) []whHead {
	for p := 0; p < int(NumPorts); p++ {
		for v := 0; v < WormholeVCs; v++ {
			if f, ok := s.bufs[p][v].Peek(); ok {
				scratch = append(scratch, whHead{q: s.bufs[p][v], f: f, port: p, vc: uint8(v)})
			}
		}
	}
	if f, ok := s.injQ.Peek(); ok {
		scratch = append(scratch, whHead{q: s.injQ, f: f, port: -1})
	}
	return scratch
}

// olderHead orders allocation candidates oldest-first with the same total
// deterministic ordering the deflection switch uses (inject cycle, packet
// id, sequence number, then arrival port/VC).
func olderHead(a, b whHead) bool {
	return older(routedFlit{f: a.f, inPort: a.port*WormholeVCs + int(a.vc)},
		routedFlit{f: b.f, inPort: b.port*WormholeVCs + int(b.vc)})
}

// pop removes the granted head from its queue, returning the freed credit
// upstream when the flit arrived over a link.
func (s *WormholeSwitch) pop(h whHead, now int64) {
	h.q.Pop()
	s.buffered--
	if h.port >= 0 {
		s.returnCredit(Port(h.port), h.vc, now)
	}
}

// Step implements sim.Component; it runs in sim.PhaseSwitch.
func (s *WormholeSwitch) Step(now int64) {
	// 0. Collect the credits the downstream switches returned last cycle.
	s.collectCredits(now)

	// 1. Switch allocation over the flits buffered in previous cycles:
	// each output port carries at most one flit per cycle, each input FIFO
	// advances at most its head, and one flit may eject. Grants go in
	// oldest-first order (the same age arbitration as the deflection
	// switch, which keeps the allocator fair network-wide and starvation
	// free); a head advances only if its output port is free AND a credit
	// for its VC is available.
	var scratch [NumPorts*WormholeVCs + 1]whHead
	heads := s.heads(scratch[:0])
	for i := 1; i < len(heads); i++ {
		for j := i; j > 0 && olderHead(heads[j], heads[j-1]); j-- {
			heads[j], heads[j-1] = heads[j-1], heads[j]
		}
	}
	var outTaken [NumPorts]bool
	ejected := false
	for _, h := range heads {
		f := h.f
		dx, dy := s.dstSwitch(f)
		if dx == s.x && dy == s.y {
			// Ejection port: one flit per cycle; younger heads wait.
			if ejected {
				continue
			}
			ejected = true
			s.pop(h, now)
			s.Stats.Ejected.Inc()
			s.net.noteDelivered(f, now)
			s.local.Deliver(f, now)
			continue
		}
		p, ok := s.topo.XYFirstPort(s.x, s.y, dx, dy)
		if !ok {
			panic("noc: wormhole flit at destination not ejected")
		}
		if outTaken[p] {
			s.Stats.PortStalls.Inc()
			continue
		}
		// Injected flits and X->Y turns start their ring on VC0.
		newDim := h.port < 0 || (isYPort(p) && !isYPort(Port(h.port)))
		vc := s.sendVC(f.Meta.VC, p, newDim)
		if s.credits[p][vc] == 0 {
			s.Stats.CreditStalls.Inc()
			continue
		}
		s.pop(h, now)
		s.spendCredit(p, vc)
		f.Meta.VC = vc
		f.Meta.Hops++
		outTaken[p] = true
		s.out[p].Set(f)
		s.Stats.Routed.Inc()
	}

	// 2. Buffer writes: accept link arrivals into the per-VC input
	// buffers. The credit protocol guarantees space; running this after
	// allocation models the one-cycle buffer-write stage (a flit cannot
	// cut through the switch in its arrival cycle).
	for p := 0; p < int(NumPorts); p++ {
		if s.in[p] == nil {
			continue
		}
		if f, ok := s.in[p].Get(); ok {
			if !s.bufs[p][f.Meta.VC].Push(f) {
				panic("noc: wormhole input buffer overrun (credit protocol violated)")
			}
			s.buffered++
		}
	}
	// 3. Local injection: accept at most one flit per cycle into the
	// injection queue; when it is full the node keeps the flit (the same
	// backpressure contract every router applies through TryPull).
	if !s.injQ.Full() {
		if f, ok := s.local.TryPull(); ok {
			f.Meta.VC = 0
			s.Stats.Injected.Inc()
			s.net.noteInjected()
			s.injQ.Push(f)
			s.buffered++
		}
	}
	if s.buffered > s.peakBuf {
		s.peakBuf = s.buffered
	}
}
