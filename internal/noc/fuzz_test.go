package noc

import "testing"

// FuzzParsePattern: any input must either resolve to a defined pattern or
// return an error — never panic — and a successful parse must round-trip
// through the canonical name.
func FuzzParsePattern(f *testing.F) {
	for _, name := range PatternNames() {
		f.Add(name)
	}
	f.Add("BIT_COMPLEMENT")
	f.Add(" transpose ")
	f.Add("7")
	f.Add("-1")
	f.Add("99999999999999999999")
	f.Add("")
	f.Add("p@ttern\x00")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePattern(s)
		if err != nil {
			return
		}
		if p < 0 || p >= numPatterns {
			t.Fatalf("ParsePattern(%q) = %d outside the defined range", s, int(p))
		}
		back, err := ParsePattern(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip failed: %q -> %v -> (%v, %v)", s, p, back, err)
		}
	})
}

// FuzzParseTopology mirrors FuzzParsePattern for the topology axis: any
// input must either resolve to a defined kind or return an error — never
// panic — and a successful parse must round-trip through the canonical
// name.
func FuzzParseTopology(f *testing.F) {
	for _, name := range TopologyNames() {
		f.Add(name)
	}
	f.Add("TORUS")
	f.Add(" c_mesh ")
	f.Add("2")
	f.Add("-1")
	f.Add("99999999999999999999")
	f.Add("")
	f.Add("t0polog\xfe")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseTopology(s)
		if err != nil {
			return
		}
		if k < 0 || k >= numTopologies {
			t.Fatalf("ParseTopology(%q) = %d outside the defined range", s, int(k))
		}
		back, err := ParseTopology(k.String())
		if err != nil || back != k {
			t.Fatalf("round trip failed: %q -> %v -> (%v, %v)", s, k, back, err)
		}
	})
}

// FuzzParseRouter mirrors FuzzParsePattern for the router axis.
func FuzzParseRouter(f *testing.F) {
	for _, name := range RouterNames() {
		f.Add(name)
	}
	f.Add("WORMHOLE")
	f.Add(" xy ")
	f.Add("3")
	f.Add("-1")
	f.Add("99999999999999999999")
	f.Add("")
	f.Add("r0uter\xff")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseRouter(s)
		if err != nil {
			return
		}
		if k < 0 || k >= numRouters {
			t.Fatalf("ParseRouter(%q) = %d outside the defined range", s, int(k))
		}
		back, err := ParseRouter(k.String())
		if err != nil || back != k {
			t.Fatalf("round trip failed: %q -> %v -> (%v, %v)", s, k, back, err)
		}
	})
}
