package noc

import (
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/vcd"
)

// VCDTracer samples per-switch link occupancy and ejection/injection
// activity into a VCD waveform, one signal group per switch, so NoC
// congestion can be inspected in a standard waveform viewer. Register it
// in sim.PhaseNode: it then observes the values committed at the end of
// the previous cycle.
type VCDTracer struct {
	net  *Network
	w    *vcd.Writer
	occ  []*vcd.Signal // valid output links per switch (0-4)
	ejc  []*vcd.Signal // cumulative ejections (16-bit window)
	defl *vcd.Signal   // network-wide cumulative deflections (truncated)
}

// NewVCDTracer creates a tracer for net writing to out. It must be
// created after the network and registered by the caller. It works for
// every RouterKind; the occupancy signal counts valid output links.
func NewVCDTracer(net *Network, out io.Writer) (*VCDTracer, error) {
	t := &VCDTracer{net: net, w: vcd.NewWriter(out)}
	for _, sw := range net.Routers {
		x, y := net.Topo.Coord(sw.ID())
		t.occ = append(t.occ, t.w.Declare(fmt.Sprintf("sw_%d_%d_links", x, y), 3))
		t.ejc = append(t.ejc, t.w.Declare(fmt.Sprintf("sw_%d_%d_ejected", x, y), 16))
	}
	t.defl = t.w.Declare("net_deflections", 32)
	if err := t.w.Start("medea_noc"); err != nil {
		return nil, err
	}
	return t, nil
}

// Name implements sim.Component.
func (t *VCDTracer) Name() string { return "vcd-tracer" }

// Step implements sim.Component.
func (t *VCDTracer) Step(now int64) {
	for i, sw := range t.net.Routers {
		t.emit(now, t.occ[i], uint64(sw.wiring().outOccupancy()))
		t.emit(now, t.ejc[i], uint64(sw.EjectedCount())&0xFFFF)
	}
	t.emit(now, t.defl, uint64(t.net.TotalDeflections())&0xFFFFFFFF)
}

func (t *VCDTracer) emit(now int64, s *vcd.Signal, v uint64) {
	if err := t.w.Emit(now, s, v); err != nil {
		panic(fmt.Sprintf("noc: vcd trace: %v", err))
	}
}

// Attach is a convenience that registers the tracer with the engine.
func (t *VCDTracer) Attach(e *sim.Engine) {
	e.Register(sim.PhaseNode, t)
}
