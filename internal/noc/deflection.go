package noc

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/stats"
)

// DeflSwitch is a bufferless deflection-routed ("hot potato") switch. Every
// cycle it routes each incoming flit to some output port, preferring
// productive ports with oldest-flit-first priority and deflecting the rest;
// it never stores more than the flits that arrived this cycle and never
// exerts backpressure on its neighbours, which are the minimal-storage and
// no-flow-control properties the paper argues for.
//
// At most one flit per cycle is ejected to the local node; a second flit
// addressed to this node is deflected and will come back. Injection from
// the local node happens only when an output port is left free after all
// incoming flits are placed.
type DeflSwitch struct {
	routerPorts

	// scratch buffers reused across cycles to avoid allocation.
	pool  []routedFlit
	ports []Port

	Stats SwitchStats
}

// SwitchStats counts per-switch routing events.
type SwitchStats struct {
	Routed      stats.Counter // flits forwarded to an output port
	Productive  stats.Counter // flits that took a productive port
	Deflected   stats.Counter // flits that took an unproductive port
	Ejected     stats.Counter // flits delivered to the local node
	EjectMissed stats.Counter // flits at destination deflected because the eject port was busy
	Injected    stats.Counter // flits accepted from the local node
}

type routedFlit struct {
	f      flit.Flit
	inPort int // arrival port, used as deterministic tie-break
	dx, dy int // destination switch coordinates (resolved once on arrival)
}

// Name implements sim.Component.
func (s *DeflSwitch) Name() string { return fmt.Sprintf("sw(%d,%d)", s.x, s.y) }

// Buffered implements Router; the deflection switch stores nothing.
func (s *DeflSwitch) Buffered() int { return 0 }

// PeakBuffered implements Router; the deflection switch stores nothing.
func (s *DeflSwitch) PeakBuffered() int { return 0 }

// Deflections implements Router.
func (s *DeflSwitch) Deflections() int64 { return s.Stats.Deflected.Value() }

// EjectedCount implements Router.
func (s *DeflSwitch) EjectedCount() int64 { return s.Stats.Ejected.Value() }

// Step implements sim.Component; it runs in sim.PhaseSwitch.
func (s *DeflSwitch) Step(now int64) {
	pool := s.pool[:0]
	for p := 0; p < int(NumPorts); p++ {
		if s.in[p] != nil && s.in[p].Valid() {
			f, _ := s.in[p].Get()
			dx, dy := s.dstSwitch(f)
			pool = append(pool, routedFlit{f: f, inPort: p, dx: dx, dy: dy})
		}
	}
	if len(pool) == 0 {
		// Idle fast path: no flits in flight through this switch, so every
		// output port is free and the only possible work is an injection.
		// This is the common case at the calibrated workloads' loads and
		// skips the ejection/sort/placement machinery entirely.
		if f, ok := s.local.TryPull(); ok {
			s.injectIntoIdle(f)
		}
		return
	}

	// Ejection: pick the oldest flit addressed to this node.
	ejectIdx := -1
	for i := range pool {
		if pool[i].dx != s.x || pool[i].dy != s.y {
			continue
		}
		if ejectIdx < 0 || older(pool[i], pool[ejectIdx]) {
			ejectIdx = i
		}
	}
	if ejectIdx >= 0 {
		f := pool[ejectIdx].f
		s.Stats.Ejected.Inc()
		s.net.noteDelivered(f, now)
		s.local.Deliver(f, now)
		pool = append(pool[:ejectIdx], pool[ejectIdx+1:]...)
	}

	// Route the remaining flits, oldest first, through productive ports.
	// Insertion sort: the pool holds at most four flits and this runs
	// every cycle, so reflection-based sorting is too expensive.
	for i := 1; i < len(pool); i++ {
		for j := i; j > 0 && older(pool[j], pool[j-1]); j-- {
			pool[j], pool[j-1] = pool[j-1], pool[j]
		}
	}
	var taken [NumPorts]bool
	var assigned [NumPorts]flit.Flit
	var assignedOK [NumPorts]bool
	place := func(f flit.Flit, p Port, productive bool) {
		f.Meta.Hops++
		if productive {
			s.Stats.Productive.Inc()
		} else {
			f.Meta.Deflections++
			s.Stats.Deflected.Inc()
		}
		taken[p] = true
		assigned[p], assignedOK[p] = f, true
		s.Stats.Routed.Inc()
	}

	deflect := pool[:0] // flits that did not get a productive port
	for _, rf := range pool {
		atDst := rf.dx == s.x && rf.dy == s.y
		if atDst {
			// Lost the ejection port this cycle; must keep moving.
			s.Stats.EjectMissed.Inc()
			deflect = append(deflect, rf)
			continue
		}
		s.ports = s.topo.ProductivePorts(s.ports[:0], s.x, s.y, rf.dx, rf.dy)
		placed := false
		for _, p := range s.ports {
			if !taken[p] {
				place(rf.f, p, true)
				placed = true
				break
			}
		}
		if !placed {
			deflect = append(deflect, rf)
		}
	}
	for _, rf := range deflect {
		placed := false
		for p := Port(0); p < NumPorts; p++ {
			if s.out[p] == nil || taken[p] {
				continue
			}
			place(rf.f, p, false)
			placed = true
			break
		}
		if !placed {
			// Cannot happen: arrivals never exceed the switch's real
			// ports (a mesh corner has two links, so at most two flits
			// arrive), so every flit finds a free real port.
			panic("noc: deflection switch dropped a flit")
		}
	}

	// Injection: only when an output slot is left over.
	free := false
	for p := Port(0); p < NumPorts; p++ {
		if s.out[p] != nil && !taken[p] {
			free = true
			break
		}
	}
	if free {
		if f, ok := s.local.TryPull(); ok {
			s.Stats.Injected.Inc()
			s.net.noteInjected()
			// Prefer a free productive port; fall back to any free port.
			dx, dy := s.dstSwitch(f)
			s.ports = s.topo.ProductivePorts(s.ports[:0], s.x, s.y, dx, dy)
			placed := false
			for _, p := range s.ports {
				if !taken[p] {
					place(f, p, true)
					placed = true
					break
				}
			}
			if !placed {
				for p := Port(0); p < NumPorts; p++ {
					if s.out[p] == nil || taken[p] {
						continue
					}
					place(f, p, false)
					placed = true
					break
				}
			}
			if !placed {
				panic("noc: injected with no free port")
			}
		}
	}

	for p := Port(0); p < NumPorts; p++ {
		if assignedOK[p] {
			s.out[p].Set(assigned[p])
		}
	}
	s.pool = pool[:0]
}

// injectIntoIdle places a freshly injected flit when every output port is
// free. It mirrors the placement the full path would compute: the first
// productive port, falling back to the first port (deflection) for the
// degenerate self-addressed case.
func (s *DeflSwitch) injectIntoIdle(f flit.Flit) {
	s.Stats.Injected.Inc()
	s.net.noteInjected()
	dx, dy := s.dstSwitch(f)
	s.ports = s.topo.ProductivePorts(s.ports[:0], s.x, s.y, dx, dy)
	f.Meta.Hops++
	p := Port(0)
	if len(s.ports) > 0 {
		p = s.ports[0]
		s.Stats.Productive.Inc()
	} else {
		for q := Port(0); q < NumPorts; q++ {
			if s.out[q] != nil {
				p = q
				break
			}
		}
		f.Meta.Deflections++
		s.Stats.Deflected.Inc()
	}
	s.Stats.Routed.Inc()
	s.out[p].Set(f)
}

// older orders flits for arbitration: oldest injection cycle first, then
// packet id, then sequence number, then arrival port. The ordering is total
// and deterministic.
func older(a, b routedFlit) bool {
	if a.f.Meta.InjectCycle != b.f.Meta.InjectCycle {
		return a.f.Meta.InjectCycle < b.f.Meta.InjectCycle
	}
	if a.f.Meta.PacketID != b.f.Meta.PacketID {
		return a.f.Meta.PacketID < b.f.Meta.PacketID
	}
	if a.f.Seq != b.f.Seq {
		return a.f.Seq < b.f.Seq
	}
	return a.inPort < b.inPort
}
