package noc

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestVCDTracerProducesWaveform(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	e := sim.NewEngine()
	n := NewNetwork(e, topo)
	for i := 0; i < topo.NumNodes(); i++ {
		tn := NewTrafficNode(i, topo, TrafficConfig{Pattern: Uniform, Rate: 0.4}, 5)
		n.Attach(i, tn)
		e.Register(sim.PhaseNode, tn)
	}
	var b strings.Builder
	tr, err := NewVCDTracer(n, &b)
	if err != nil {
		t.Fatal(err)
	}
	tr.Attach(e)
	e.Run(200)
	out := b.String()
	if !strings.Contains(out, "$enddefinitions $end") {
		t.Fatal("missing VCD header")
	}
	if !strings.Contains(out, "sw_0_0_links") || !strings.Contains(out, "net_deflections") {
		t.Error("missing declared signals")
	}
	// Traffic must have produced value changes beyond the header.
	if !strings.Contains(out, "#1") {
		t.Error("no time steps recorded")
	}
	if len(out) < 1000 {
		t.Errorf("suspiciously small waveform (%d bytes)", len(out))
	}
}

func TestVCDTracerQuietNetwork(t *testing.T) {
	topo, _ := NewTopology(2, 2)
	e := sim.NewEngine()
	n := NewNetwork(e, topo)
	var b strings.Builder
	tr, err := NewVCDTracer(n, &b)
	if err != nil {
		t.Fatal(err)
	}
	tr.Attach(e)
	e.Run(100)
	// With no traffic, after the initial values nothing changes: output
	// stays small (deduplication works).
	if len(b.String()) > 2500 {
		t.Errorf("idle network produced %d bytes of waveform", len(b.String()))
	}
}
