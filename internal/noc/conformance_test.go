package noc

import (
	"fmt"
	"testing"

	"repro/internal/flit"
	"repro/internal/sim"
)

// This file is the differential conformance harness: every router
// implementation runs under every traffic pattern on every topology kind
// (4x4 and 8x8 endpoint grids), and must satisfy the same conservation
// invariants every cycle — independent implementations acting as each
// other's oracle. Routers and fabrics may disagree on latency and
// throughput (that is the point of the ablations); they may never
// disagree on whether flits exist. Pattern/topology combinations that
// per-topology validation legitimately rejects are skipped (none on these
// square power-of-two grids, but the harness asks rather than assumes).
//
// Checked every cycle:
//   - conservation: injected == delivered + in flight (links + buffers)
//   - no duplication: every delivered PacketID is seen exactly once
//   - correct delivery: a flit only ejects at its addressed endpoint
//   - bounded population: in-flight flits never exceed the network's
//     physical storage (real links — mesh edges have none — plus buffer
//     capacity for buffered kinds)
//   - bufferless kinds additionally store nothing, ever
//   - the wormhole kind additionally never drives a credit negative
//
// After injection stops the network must drain completely: every injected
// flit delivered, nothing in flight, nothing latched in a concentrator —
// which doubles as a deadlock and livelock check for the buffered kinds
// (a deadlocked wormhole network would hold flits forever; a livelocked
// deflection network would keep them moving forever) and exercises the
// mesh corner switches, which have only two escape ports.

// checkedPort wraps a TrafficNode as the LocalPort so deliveries can be
// verified: right destination endpoint, no duplicates.
type checkedPort struct {
	t    *testing.T
	node *TrafficNode
	x, y int             // endpoint coordinates
	seen map[uint64]bool // shared across all ports of one network
}

func (c *checkedPort) TryPull() (flit.Flit, bool) { return c.node.TryPull() }

func (c *checkedPort) Deliver(f flit.Flit, now int64) {
	if int(f.DstX) != c.x || int(f.DstY) != c.y {
		c.t.Errorf("flit for (%d,%d) delivered at (%d,%d)", f.DstX, f.DstY, c.x, c.y)
	}
	if c.seen[f.Meta.PacketID] {
		c.t.Errorf("packet %#x delivered twice", f.Meta.PacketID)
	}
	c.seen[f.Meta.PacketID] = true
	c.node.Deliver(f, now)
}

// numLinks counts the directed links the fabric actually defines (the
// torus has NumNodes*NumPorts; mesh fabrics lack the boundary crossers).
func numLinks(topo Topology) int {
	links := 0
	for id := 0; id < topo.NumNodes(); id++ {
		for p := Port(0); p < NumPorts; p++ {
			if _, ok := topo.Neighbor(id, p); ok {
				links++
			}
		}
	}
	return links
}

// maxInFlight returns the network's physical storage capacity in flits:
// one per directed link, plus each switch's buffer capacity.
func maxInFlight(n *Network) int {
	links := numLinks(n.Topo)
	switch n.Kind {
	case RouterDeflection, RouterAdaptive:
		return links
	case RouterWormhole:
		perSwitch := int(NumPorts)*WormholeVCs*WormholeVCDepth + WormholeVCDepth
		return links + n.Topo.NumNodes()*perSwitch
	case RouterXY:
		return -1 // unbounded input queues: no physical bound to assert
	}
	panic("unknown kind")
}

func checkInvariants(t *testing.T, n *Network, cycle int) {
	t.Helper()
	inj, del := n.Stats.Injected.Value(), n.Stats.Delivered.Value()
	inFlight := n.InFlight()
	if inj != del+int64(inFlight) {
		t.Fatalf("cycle %d: conservation violated: injected=%d delivered=%d in-flight=%d",
			cycle, inj, del, inFlight)
	}
	if cap := maxInFlight(n); cap >= 0 && inFlight > cap {
		t.Fatalf("cycle %d: %d flits in flight exceed physical capacity %d", cycle, inFlight, cap)
	}
	if n.Kind.Bufferless() {
		if buf := n.BufferedNow(); buf != 0 {
			t.Fatalf("cycle %d: bufferless %v router stores %d flits", cycle, n.Kind, buf)
		}
	}
	if n.Kind == RouterWormhole {
		for _, r := range n.Routers {
			if mc := r.(*WormholeSwitch).MinCredit(); mc < 0 {
				t.Fatalf("cycle %d: switch %d drove a credit negative (min %d)", cycle, r.ID(), mc)
			}
		}
	}
	// Per-switch accounting: every delivery happened at some switch's
	// ejection port or inside a crossbar (same-switch turnaround).
	var ejected int64
	for _, r := range n.Routers {
		ejected += r.EjectedCount()
	}
	if total := ejected + n.ConcentratorTurnarounds(); total != del {
		t.Fatalf("cycle %d: per-switch ejections %d + crossbar turnarounds %d != delivered %d",
			cycle, ejected, n.ConcentratorTurnarounds(), del)
	}
}

func TestRouterConformance(t *testing.T) {
	const (
		injectCycles = 300
		drainCycles  = 20000
		rate         = 0.6
	)
	for _, tk := range AllTopologies() {
		for _, dims := range [][2]int{{4, 4}, {8, 8}} {
			topo, err := NewTopologyOfKind(tk, dims[0], dims[1])
			if err != nil {
				t.Fatal(err) // both endpoint grids are valid on every kind
			}
			for _, kind := range AllRouters() {
				for _, pattern := range AllPatterns() {
					name := fmt.Sprintf("%v/%dx%d/%v/%v", tk, dims[0], dims[1], kind, pattern)
					t.Run(name, func(t *testing.T) {
						if err := ValidatePattern(pattern, topo); err != nil {
							t.Skip(err) // per-topology validation rejects this combination
						}
						e := sim.NewEngine()
						n := NewRouterNetwork(e, topo, kind)
						seen := make(map[uint64]bool)
						nodes := make([]*TrafficNode, topo.NumEndpoints())
						for i := range nodes {
							nodes[i] = NewTrafficNode(i, topo, TrafficConfig{
								Pattern: pattern, Rate: rate, HotspotNode: topo.NumEndpoints() / 2,
							}, 42+int64(i%3))
							x, y := topo.EndpointCoord(i)
							n.Attach(i, &checkedPort{t: t, node: nodes[i], x: x, y: y, seen: seen})
						}
						// Injection phase: nodes step manually so they can be
						// stopped; invariants hold on every cycle boundary.
						for c := 0; c < injectCycles; c++ {
							for _, tn := range nodes {
								tn.Step(e.Now())
							}
							e.Tick()
							checkInvariants(t, n, c)
						}
						// Drain phase: no new flits enter the source queues;
						// the switches keep pulling what is already queued and
						// the network must empty. This bounds both deadlock
						// (wormhole credits) and livelock (deflection), and on
						// concentrated topologies the crossbar latches must
						// empty too (a latched flit is still source-side).
						c := 0
						for ; c < drainCycles; c++ {
							if n.InFlight() == 0 && n.Stats.Delivered.Value() == n.Stats.Injected.Value() {
								pending := n.ConcentratorHeld()
								for _, tn := range nodes {
									pending += tn.Pending()
								}
								if pending == 0 {
									break
								}
							}
							e.Tick()
							if c%16 == 0 {
								checkInvariants(t, n, injectCycles+c)
							}
						}
						checkInvariants(t, n, injectCycles+c)
						if n.InFlight() != 0 {
							t.Fatalf("%d flits still in flight after %d drain cycles (deadlock or livelock)",
								n.InFlight(), drainCycles)
						}
						if held := n.ConcentratorHeld(); held != 0 {
							t.Fatalf("%d flits still latched in concentrators after drain", held)
						}
						if del, inj := n.Stats.Delivered.Value(), n.Stats.Injected.Value(); del != inj {
							t.Fatalf("delivered %d != injected %d after drain", del, inj)
						}
						if n.Stats.Delivered.Value() == 0 {
							t.Fatal("conformance run delivered no traffic")
						}
						if int64(len(seen)) != n.Stats.Delivered.Value() {
							t.Fatalf("recorded %d unique packets, network counted %d deliveries",
								len(seen), n.Stats.Delivered.Value())
						}
					})
				}
			}
		}
	}
}

// TestRouterDeterminism extends the determinism contract to every
// (router, topology) combination: identical configuration and seed must
// give bit-identical traffic statistics.
func TestRouterDeterminism(t *testing.T) {
	for _, tk := range AllTopologies() {
		for _, kind := range AllRouters() {
			tk, kind := tk, kind
			t.Run(fmt.Sprintf("%v/%v", tk, kind), func(t *testing.T) {
				run := func() (int64, float64, int64, int) {
					topo, err := NewTopologyOfKind(tk, 4, 4)
					if err != nil {
						t.Fatal(err)
					}
					e := sim.NewEngine()
					n := NewRouterNetwork(e, topo, kind)
					for i := 0; i < topo.NumEndpoints(); i++ {
						tn := NewTrafficNode(i, topo, TrafficConfig{Pattern: Uniform, Rate: 0.5}, 99)
						n.Attach(i, tn)
						e.Register(sim.PhaseNode, tn)
					}
					e.Run(1000)
					return n.Stats.Delivered.Value(), n.Stats.Latency.Mean(),
						n.TotalDeflections(), n.PeakBuffer()
				}
				d1, l1, f1, p1 := run()
				d2, l2, f2, p2 := run()
				if d1 != d2 || l1 != l2 || f1 != f2 || p1 != p2 {
					t.Fatalf("non-deterministic %v/%v: (%d,%v,%d,%d) vs (%d,%v,%d,%d)",
						tk, kind, d1, l1, f1, p1, d2, l2, f2, p2)
				}
			})
		}
	}
}
