package noc

import (
	"context"
	"testing"

	"repro/internal/sim"
)

// lowLoadConfig is the fast-forward showcase: a trickle of uniform
// traffic leaves the fabric idle for long stretches between injections.
func lowLoadConfig() MeasureConfig {
	return MeasureConfig{
		Router:  RouterDeflection,
		Traffic: TrafficConfig{Pattern: Uniform, Rate: 0.002},
		Warmup:  500,
		Measure: 20_000,
		Seed:    42,
	}
}

// TestMeasureFastForwardDifferential requires every router kind to
// measure bit-identically with fast-forward on and off, across load
// levels that exercise both the skipping and the always-busy regimes.
func TestMeasureFastForwardDifferential(t *testing.T) {
	defer sim.SetDefaultFastForward(sim.DefaultFastForward())
	topo := mustTopo(t, 4, 4)
	for _, router := range AllRouters() {
		for _, rate := range []float64{0.002, 0.1} {
			mc := lowLoadConfig()
			mc.Router = router
			mc.Traffic.Rate = rate
			mc.Measure = 5_000

			sim.SetDefaultFastForward(true)
			on := Measure(topo, mc)
			sim.SetDefaultFastForward(false)
			off := Measure(topo, mc)

			if off.CyclesSkipped != 0 {
				t.Errorf("%v rate %g: CyclesSkipped = %d with fast-forward disabled", router, rate, off.CyclesSkipped)
			}
			on.CyclesSkipped, off.CyclesSkipped = 0, 0
			if on != off {
				t.Errorf("%v rate %g: results diverge under fast-forward:\n  on:  %+v\n  off: %+v", router, rate, on, off)
			}
		}
	}
}

// TestMeasureFastForwardEngagesAtLowLoad asserts the optimization
// actually fires where it should: a near-idle fabric must skip most of
// its cycles.
func TestMeasureFastForwardEngagesAtLowLoad(t *testing.T) {
	topo := mustTopo(t, 4, 4)
	m := Measure(topo, lowLoadConfig())
	if m.CyclesSkipped <= m.Cycles/2 {
		t.Errorf("CyclesSkipped = %d of %d measured cycles; expected a mostly-skipped window at rate %g",
			m.CyclesSkipped, m.Cycles, lowLoadConfig().Traffic.Rate)
	}
	if m.Delivered == 0 {
		t.Error("no traffic delivered; the test load is degenerate")
	}
}

// TestMeasureWindowsForkDifferential requires warm-snapshot forking to be
// invisible: measuring several windows off one shared warmup must equal
// independent simulations of each window, byte for byte, for every
// router kind (the stateful wormhole and XY switches are the hard cases).
func TestMeasureWindowsForkDifferential(t *testing.T) {
	windows := []int64{1_000, 3_000, 5_000}
	for _, kind := range []TopologyKind{TopoTorus, TopoMesh, TopoCMesh} {
		topo, err := NewTopologyOfKind(kind, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, router := range AllRouters() {
			for _, burst := range []*BurstConfig{nil, {MeanOn: 8, MeanOff: 40}} {
				mc := MeasureConfig{
					Router:  router,
					Traffic: TrafficConfig{Pattern: Uniform, Rate: 0.05, Burst: burst},
					Warmup:  2_000,
					Seed:    7,
				}
				forked, err := MeasureWindowsCtx(context.Background(), topo, mc, windows, true)
				if err != nil {
					t.Fatalf("%v/%v forked: %v", kind, router, err)
				}
				independent, err := MeasureWindowsCtx(context.Background(), topo, mc, windows, false)
				if err != nil {
					t.Fatalf("%v/%v independent: %v", kind, router, err)
				}
				for i := range windows {
					f, ind := forked[i], independent[i]
					f.CyclesSkipped, ind.CyclesSkipped = 0, 0
					if f != ind {
						t.Errorf("%v/%v burst=%v window %d: fork diverges:\n  forked:      %+v\n  independent: %+v",
							kind, router, burst != nil, windows[i], f, ind)
					}
				}
			}
		}
	}
}

func mustTopo(t *testing.T, w, h int) Topology {
	t.Helper()
	topo, err := NewTopology(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}
