package noc

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestParseRouterRoundTrip(t *testing.T) {
	for _, k := range AllRouters() {
		got, err := ParseRouter(k.String())
		if err != nil || got != k {
			t.Errorf("ParseRouter(%q) = %v, %v", k.String(), got, err)
		}
		// Numeric, case and separator variants.
		if got, err := ParseRouter("  " + strings.ToUpper(k.String()) + " "); err != nil || got != k {
			t.Errorf("ParseRouter upper(%q) = %v, %v", k, got, err)
		}
	}
	if got, err := ParseRouter("1"); err != nil || got != RouterXY {
		t.Errorf("ParseRouter(1) = %v, %v", got, err)
	}
	for _, bad := range []string{"", "nope", "-1", "99", "deflectionn"} {
		if _, err := ParseRouter(bad); err == nil {
			t.Errorf("ParseRouter(%q) accepted", bad)
		}
	}
}

func TestRouterNamesAndClasses(t *testing.T) {
	names := RouterNames()
	if len(names) != len(AllRouters()) || len(names) != 4 {
		t.Fatalf("have %d router names, want 4", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || strings.Contains(n, "router(") {
			t.Errorf("bad router name %q", n)
		}
		if seen[n] {
			t.Errorf("duplicate router name %q", n)
		}
		seen[n] = true
	}
	if !RouterDeflection.Bufferless() || !RouterAdaptive.Bufferless() {
		t.Error("deflection-class routers must be bufferless")
	}
	if RouterXY.Bufferless() || RouterWormhole.Bufferless() {
		t.Error("buffered routers misreported as bufferless")
	}
}

// buildKindNet mirrors buildNet for an arbitrary router kind.
func buildKindNet(t *testing.T, kind RouterKind, w, h int) (*sim.Engine, *Network, []*collector) {
	t.Helper()
	topo, err := NewTopology(w, h)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	n := NewRouterNetwork(e, topo, kind)
	cols := make([]*collector, topo.NumNodes())
	for i := range cols {
		cols[i] = &collector{}
		n.Attach(i, cols[i])
	}
	return e, n, cols
}

// TestAllRoutersDeliverAllPairs checks minimal functionality on every kind
// and several topologies: one flit between every (src, dst) pair arrives.
func TestAllRoutersDeliverAllPairs(t *testing.T) {
	for _, kind := range AllRouters() {
		for _, dims := range [][2]int{{4, 4}, {4, 3}, {2, 2}, {5, 3}} {
			e, n, cols := buildKindNet(t, kind, dims[0], dims[1])
			pkt := uint64(0)
			for src := 0; src < n.Topo.NumNodes(); src++ {
				for dst := 0; dst < n.Topo.NumNodes(); dst++ {
					if src == dst {
						continue
					}
					pkt++
					cols[src].out = append(cols[src].out, mkFlit(n.Topo, src, dst, pkt))
				}
			}
			e.Run(int64(2000))
			total := 0
			for _, c := range cols {
				total += len(c.got)
			}
			if total != int(pkt) {
				t.Errorf("%v on %dx%d: delivered %d of %d flits",
					kind, dims[0], dims[1], total, pkt)
			}
		}
	}
}

// TestWormholeInOrderPerPath pins the FIFO property buffered routing
// guarantees and deflection deliberately gives up: flits between one
// (src, dst) pair arrive in injection order.
func TestWormholeInOrderPerPath(t *testing.T) {
	e, n, cols := buildKindNet(t, RouterWormhole, 4, 4)
	src, dst := 0, n.Topo.ID(3, 2)
	for k := 0; k < 10; k++ {
		f := mkFlit(n.Topo, src, dst, uint64(k+1))
		f.Data = uint32(k)
		cols[src].out = append(cols[src].out, f)
	}
	e.Run(100)
	if len(cols[dst].got) != 10 {
		t.Fatalf("got %d flits", len(cols[dst].got))
	}
	for k, f := range cols[dst].got {
		if f.Data != uint32(k) {
			t.Fatalf("flit %d out of order (data %d)", k, f.Data)
		}
	}
}

// TestWormholeZeroLoadLatencyPaysPipeline pins the buffered-pipeline cost:
// an unloaded wormhole hop costs two cycles (link + buffer) against the
// deflection switch's one, so the same route takes roughly twice as long.
func TestWormholeZeroLoadLatency(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	src, dst := 0, topo.ID(2, 1) // 3 hops
	lat := func(kind RouterKind) int64 {
		e, n, cols := buildKindNet(t, kind, 4, 4)
		_ = n
		cols[src].out = append(cols[src].out, mkFlit(topo, src, dst, 1))
		e.Run(40)
		if len(cols[dst].got) != 1 {
			t.Fatalf("%v: not delivered", kind)
		}
		return cols[dst].when[0]
	}
	defl, wh := lat(RouterDeflection), lat(RouterWormhole)
	if wh <= defl {
		t.Errorf("wormhole delivery cycle %d not later than deflection %d (pipeline cost missing)", wh, defl)
	}
	if wh > 3*defl+4 {
		t.Errorf("wormhole delivery cycle %d implausibly late vs deflection %d", wh, defl)
	}
}

// TestAdaptiveSingleFlitMinimalPath: with no contention the adaptive
// router must still route minimally (congestion-aware choice never picks
// an unproductive port when a productive one is free).
func TestAdaptiveSingleFlitMinimalPath(t *testing.T) {
	e, n, cols := buildKindNet(t, RouterAdaptive, 4, 4)
	src, dst := n.Topo.ID(0, 0), n.Topo.ID(2, 1)
	cols[src].out = append(cols[src].out, mkFlit(n.Topo, src, dst, 1))
	e.Run(20)
	if len(cols[dst].got) != 1 {
		t.Fatal("not delivered")
	}
	got := cols[dst].got[0]
	if int(got.Meta.Hops) != n.Topo.Dist(src, dst) {
		t.Errorf("hops = %d, want minimal %d", got.Meta.Hops, n.Topo.Dist(src, dst))
	}
	if got.Meta.Deflections != 0 {
		t.Errorf("unloaded adaptive network deflected %d times", got.Meta.Deflections)
	}
}

// TestAdaptiveSpreadsContention: under a skewed stream the adaptive
// router's congestion-aware port choice must deflect no more than the
// baseline deflection router (on transpose it deflects measurably less;
// asserting <= keeps the test robust).
func TestAdaptiveSpreadsContention(t *testing.T) {
	run := func(kind RouterKind) int64 {
		topo, _ := NewTopology(4, 4)
		e := sim.NewEngine()
		n := NewRouterNetwork(e, topo, kind)
		for i := 0; i < topo.NumNodes(); i++ {
			tn := NewTrafficNode(i, topo, TrafficConfig{Pattern: Transpose, Rate: 0.4}, 7)
			n.Attach(i, tn)
			e.Register(sim.PhaseNode, tn)
		}
		e.Run(3000)
		return n.TotalDeflections()
	}
	defl, adpt := run(RouterDeflection), run(RouterAdaptive)
	if adpt > defl {
		t.Errorf("adaptive deflected %d times, baseline deflection %d; congestion-aware choice should not deflect more", adpt, defl)
	}
}

// TestWormholeCreditsBounded drives the wormhole network to saturation
// and verifies credits stay within [0, depth] on every switch.
func TestWormholeCreditsBounded(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	e := sim.NewEngine()
	n := NewRouterNetwork(e, topo, RouterWormhole)
	for i := 0; i < topo.NumNodes(); i++ {
		tn := NewTrafficNode(i, topo, TrafficConfig{Pattern: Uniform, Rate: 1.0}, 11)
		n.Attach(i, tn)
		e.Register(sim.PhaseNode, tn)
	}
	e.Run(2000) // credit under/overflow would panic inside the switch
	for _, r := range n.Routers {
		sw := r.(*WormholeSwitch)
		if sw.MinCredit() < 0 {
			t.Fatalf("switch %d: min credit %d went negative", sw.ID(), sw.MinCredit())
		}
	}
	if n.Stats.Delivered.Value() == 0 {
		t.Fatal("saturated wormhole network delivered nothing")
	}
}
