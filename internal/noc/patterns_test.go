package noc

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func permutationPatterns() []Pattern {
	var out []Pattern
	for _, p := range AllPatterns() {
		if p.IsPermutation() {
			out = append(out, p)
		}
	}
	return out
}

// TestPermutationPatternsBijective checks that every permutation pattern
// maps the node-id set onto itself with no collisions, on both a
// power-of-two torus and (for the coordinate patterns) a non-power-of-two
// one.
// TestPermutationPatternsBijective checks that every permutation pattern
// maps the endpoint-id set onto itself with no collisions, across all
// three topology kinds (on the cmesh the endpoint grid is 2x denser than
// the switch grid, so it exercises the endpoint-space addressing).
func TestPermutationPatternsBijective(t *testing.T) {
	topos := []Topology{
		Torus{W: 4, H: 4}, Torus{W: 8, H: 4}, Torus{W: 5, H: 3}, Torus{W: 2, H: 2},
		Mesh{W: 4, H: 4}, Mesh{W: 5, H: 3},
		CMesh{W: 4, H: 4}, CMesh{W: 8, H: 4},
	}
	for _, topo := range topos {
		ew, eh := topo.EndpointDims()
		for _, p := range permutationPatterns() {
			if err := ValidatePattern(p, topo); err != nil {
				continue // bit patterns on non-power-of-two sizes
			}
			seen := make(map[int]bool)
			for src := 0; src < topo.NumEndpoints(); src++ {
				dst := PermutationDest(p, topo, src)
				if dst < 0 || dst >= topo.NumEndpoints() {
					t.Errorf("%v on %dx%d %v: dest(%d) = %d out of range", p, ew, eh, topo.Kind(), src, dst)
				}
				if seen[dst] {
					t.Errorf("%v on %dx%d %v: dest %d hit twice", p, ew, eh, topo.Kind(), dst)
				}
				seen[dst] = true
			}
			if len(seen) != topo.NumEndpoints() {
				t.Errorf("%v on %dx%d %v: %d distinct dests, want %d", p, ew, eh, topo.Kind(), len(seen), topo.NumEndpoints())
			}
		}
	}
}

func TestValidatePattern(t *testing.T) {
	odd := Torus{W: 5, H: 3}
	for _, p := range []Pattern{BitReversal, Shuffle} {
		if err := ValidatePattern(p, odd); err == nil {
			t.Errorf("%v on 5x3 should be rejected", p)
		}
	}
	pow2 := Torus{W: 4, H: 4}
	for _, p := range AllPatterns() {
		if err := ValidatePattern(p, pow2); err != nil {
			t.Errorf("%v on 4x4: %v", p, err)
		}
	}
	if err := ValidatePattern(numPatterns, pow2); err == nil {
		t.Error("out-of-range pattern should be rejected")
	}
	// Per-topology validation: the same pattern can be legal on one kind
	// and not another at the same W x H (the cmesh endpoint grid is the
	// full W x H even though its switch grid is a quarter of it).
	if err := ValidatePattern(Transpose, Mesh{W: 4, H: 3}); err == nil {
		t.Error("transpose on a 4x3 mesh should be rejected")
	}
	for _, p := range AllPatterns() {
		if err := ValidatePattern(p, CMesh{W: 4, H: 4}); err != nil {
			t.Errorf("%v on 4x4 cmesh: %v", p, err)
		}
	}
}

func TestParsePattern(t *testing.T) {
	for _, p := range AllPatterns() {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePattern(%q) = %v, %v", p.String(), got, err)
		}
	}
	// Aliases: case, underscores, numeric indices.
	for in, want := range map[string]Pattern{
		"Bit_Complement": BitComplement,
		"  tornado ":     Tornado,
		"0":              Uniform,
		"7":              Tornado,
	} {
		got, err := ParsePattern(in)
		if err != nil || got != want {
			t.Errorf("ParsePattern(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"x", "99", "-1", ""} {
		if _, err := ParsePattern(bad); err == nil {
			t.Errorf("ParsePattern(%q) should fail", bad)
		}
	}
}

// TestBurstModulatorDutyCycle runs the modulator standalone and checks the
// measured on fraction converges to the configured duty cycle.
func TestBurstModulatorDutyCycle(t *testing.T) {
	for _, cfg := range []BurstConfig{
		{MeanOn: 20, MeanOff: 80},
		{MeanOn: 50, MeanOff: 50},
		{MeanOn: 5, MeanOff: 45},
	} {
		b := NewBurstModulator(cfg, 42)
		const cycles = 200_000
		for i := 0; i < cycles; i++ {
			b.Step()
		}
		want := cfg.Duty()
		got := b.MeasuredDuty()
		if math.Abs(got-want) > 0.02 {
			t.Errorf("duty for %+v: measured %.4f, configured %.4f", cfg, got, want)
		}
	}
}

func TestBurstConfigValidate(t *testing.T) {
	if err := (BurstConfig{MeanOn: 0.5, MeanOff: 10}).Validate(); err == nil {
		t.Error("sub-cycle MeanOn should be rejected")
	}
	if err := (BurstConfig{MeanOn: 10, MeanOff: 10}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// runPatternSim runs a small traffic-only simulation and returns
// (injected, delivered, total deflections) as a determinism fingerprint.
func runPatternSim(t *testing.T, p Pattern, burst *BurstConfig, seed int64) (int64, int64, int64) {
	t.Helper()
	topo, err := NewTopology(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePattern(p, topo); err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	n := NewNetwork(e, topo)
	for i := 0; i < topo.NumNodes(); i++ {
		tn := NewTrafficNode(i, topo, TrafficConfig{Pattern: p, Rate: 0.2, Burst: burst}, seed)
		n.Attach(i, tn)
		e.Register(sim.PhaseNode, tn)
	}
	e.Run(3000)
	return n.Stats.Injected.Value(), n.Stats.Delivered.Value(), n.TotalDeflections()
}

// TestNewPatternsDeterministicPerSeed runs each new pattern (and a bursty
// composition) twice per seed and demands identical statistics, and checks
// different seeds actually vary the random patterns.
func TestNewPatternsDeterministicPerSeed(t *testing.T) {
	type cfg struct {
		p     Pattern
		burst *BurstConfig
	}
	cases := []cfg{
		{BitComplement, nil},
		{BitReversal, nil},
		{Shuffle, nil},
		{Tornado, nil},
		{Uniform, &BurstConfig{MeanOn: 20, MeanOff: 60}},
		{Hotspot, &BurstConfig{MeanOn: 10, MeanOff: 90}},
	}
	for _, c := range cases {
		for _, seed := range []int64{1, 7} {
			i1, d1, f1 := runPatternSim(t, c.p, c.burst, seed)
			i2, d2, f2 := runPatternSim(t, c.p, c.burst, seed)
			if i1 != i2 || d1 != d2 || f1 != f2 {
				t.Errorf("%v (burst=%v) seed %d not deterministic: (%d,%d,%d) vs (%d,%d,%d)",
					c.p, c.burst, seed, i1, d1, f1, i2, d2, f2)
			}
			if d1 == 0 {
				t.Errorf("%v (burst=%v) seed %d delivered nothing", c.p, c.burst, seed)
			}
		}
		ia, _, _ := runPatternSim(t, c.p, c.burst, 1)
		ib, _, _ := runPatternSim(t, c.p, c.burst, 7)
		if ia == ib {
			t.Errorf("%v (burst=%v): seeds 1 and 7 injected identically (%d); seed is ignored?", c.p, c.burst, ia)
		}
	}
}

// TestBurstGatingReducesInjection checks the composition actually gates:
// a bursty uniform source injects roughly duty * rate of the unmodulated
// offered load.
func TestBurstGatingReducesInjection(t *testing.T) {
	full, _, _ := runPatternSim(t, Uniform, nil, 3)
	burst := &BurstConfig{MeanOn: 25, MeanOff: 75} // duty 0.25
	gated, _, _ := runPatternSim(t, Uniform, burst, 3)
	ratio := float64(gated) / float64(full)
	if ratio < 0.15 || ratio > 0.35 {
		t.Errorf("bursty/full injection ratio %.3f, want ~0.25", ratio)
	}
}
