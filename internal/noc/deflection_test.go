package noc

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/sim"
)

// switchHarness wires a single 4x4 network for direct switch-level
// observations and gives the test fine control over one switch's inputs by
// placing flits on neighbour output links.
type switchHarness struct {
	e    *sim.Engine
	n    *Network
	cols []*collector
}

func newHarness(t *testing.T) *switchHarness {
	t.Helper()
	topo, _ := NewTopology(4, 4)
	e := sim.NewEngine()
	n := NewNetwork(e, topo)
	cols := make([]*collector, topo.NumNodes())
	for i := range cols {
		cols[i] = &collector{}
		n.Attach(i, cols[i])
	}
	return &switchHarness{e: e, n: n, cols: cols}
}

func (h *switchHarness) flit(src, dst int, pkt uint64, age int64) flit.Flit {
	f := mkFlit(h.n.Topo, src, dst, pkt)
	f.Meta.InjectCycle = age
	return f
}

func TestProductivePortPreference(t *testing.T) {
	// A single flit crossing the network must never deflect: its hop
	// count equals the torus distance.
	h := newHarness(t)
	src := h.n.Topo.ID(0, 0)
	dst := h.n.Topo.ID(2, 1)
	h.cols[src].out = append(h.cols[src].out, h.flit(src, dst, 1, 0))
	h.e.Run(20)
	if len(h.cols[dst].got) != 1 {
		t.Fatal("not delivered")
	}
	got := h.cols[dst].got[0]
	if int(got.Meta.Hops) != h.n.Topo.Dist(src, dst) {
		t.Errorf("hops = %d, want minimal %d", got.Meta.Hops, h.n.Topo.Dist(src, dst))
	}
	if got.Meta.Deflections != 0 {
		t.Errorf("unloaded network deflected %d times", got.Meta.Deflections)
	}
}

func TestOldestFlitWinsContention(t *testing.T) {
	// Two flits from opposite sides converge on one switch wanting the
	// same output; the one with the older inject cycle must take the
	// productive port. We arrange this by injecting at different cycles
	// from equidistant sources toward a shared destination.
	h := newHarness(t)
	topo := h.n.Topo
	dst := topo.ID(3, 0)
	a := topo.ID(1, 0) // 2 hops east
	b := topo.ID(1, 1) // joins at (2,0)? routes vary; just verify both arrive and ages order the worst case
	h.cols[a].out = append(h.cols[a].out, h.flit(a, dst, 1, 0))
	h.cols[b].out = append(h.cols[b].out, h.flit(b, dst, 2, 0))
	h.e.Run(30)
	if len(h.cols[dst].got) != 2 {
		t.Fatalf("delivered %d flits", len(h.cols[dst].got))
	}
}

func TestInjectionGatedBySaturation(t *testing.T) {
	// When all four output ports of a switch are taken by through
	// traffic, local injection must stall (and resume when load clears).
	// A 5x5 torus makes each crossing route strictly shortest through the
	// victim switch (on a 4x4, two-hop paths tie with the wrap direction
	// and half the streams would route around it).
	topo, _ := NewTopology(5, 5)
	e := sim.NewEngine()
	n := NewNetwork(e, topo)
	// Saturate node (1,1)'s switch with crossing traffic from all four
	// neighbours addressed beyond it.
	mid := topo.ID(1, 1)
	victim := &collector{}
	n.Attach(mid, victim)
	feeders := map[int]*collector{}
	for p := Port(0); p < NumPorts; p++ {
		nb := mustNeighbor(topo, mid, p)
		c := &collector{}
		feeders[nb] = c
		n.Attach(nb, c)
	}
	// Fill feeders with long streams that pass through mid: destination
	// two hops past mid in the same direction.
	for p := Port(0); p < NumPorts; p++ {
		nb := mustNeighbor(topo, mid, p)
		through := mustNeighbor(topo, mid, p.Opposite()) // straight across
		for k := 0; k < 20; k++ {
			f := mkFlit(topo, nb, through, uint64(1000+k))
			f.Meta.InjectCycle = 0 // very old: always wins arbitration
			feeders[nb].out = append(feeders[nb].out, f)
		}
	}
	// The victim tries to inject one young flit at cycle 10, when the
	// crossing streams have fully saturated the switch.
	e.Register(sim.PhaseNode, &sim.FuncComponent{ComponentName: "victim-src", Fn: func(now int64) {
		if now == 10 {
			vf := mkFlit(topo, mid, topo.ID(4, 4), 1)
			vf.Meta.InjectCycle = now
			victim.out = append(victim.out, vf)
		}
	}})
	e.Run(14)
	sw := n.Routers[mid].(*DeflSwitch)
	if sw.Stats.Injected.Value() != 0 {
		t.Error("injection succeeded through a saturated switch")
	}
	e.Run(100)
	if sw.Stats.Injected.Value() != 1 {
		t.Error("injection never resumed after load cleared")
	}
}

func TestAtDestinationDeflectionReturns(t *testing.T) {
	// Two flits arrive for the same node simultaneously: the loser is
	// deflected but must come back and be delivered.
	h := newHarness(t)
	topo := h.n.Topo
	dst := topo.ID(1, 1)
	left := mustNeighbor(topo, dst, West)
	right := mustNeighbor(topo, dst, East)
	h.cols[left].out = append(h.cols[left].out, h.flit(left, dst, 1, 0))
	h.cols[right].out = append(h.cols[right].out, h.flit(right, dst, 2, 0))
	h.e.Run(40)
	if len(h.cols[dst].got) != 2 {
		t.Fatalf("delivered %d flits, want 2", len(h.cols[dst].got))
	}
	// One of them must carry a deflection.
	defl := h.cols[dst].got[0].Meta.Deflections + h.cols[dst].got[1].Meta.Deflections
	if defl == 0 {
		t.Error("simultaneous arrival should deflect one flit")
	}
}

func TestSwitchNamesAndIDs(t *testing.T) {
	h := newHarness(t)
	for id, sw := range h.n.Routers {
		if sw.ID() != id {
			t.Fatalf("switch %d reports id %d", id, sw.ID())
		}
		if sw.Name() == "" {
			t.Fatal("empty switch name")
		}
	}
}

// TestRandomToposDeliverEverything property-tests delivery on non-square
// and odd topologies.
func TestRandomToposDeliverEverything(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {3, 3}, {5, 3}, {2, 7}} {
		topo, err := NewTopology(dims[0], dims[1])
		if err != nil {
			t.Fatal(err)
		}
		e := sim.NewEngine()
		n := NewNetwork(e, topo)
		nodes := make([]*TrafficNode, topo.NumNodes())
		for i := range nodes {
			nodes[i] = NewTrafficNode(i, topo, TrafficConfig{Pattern: Uniform, Rate: 0.6}, int64(dims[0]*100+dims[1]))
			n.Attach(i, nodes[i])
			e.Register(sim.PhaseNode, nodes[i])
		}
		e.Run(1500)
		if n.Stats.Delivered.Value() == 0 {
			t.Fatalf("%dx%d: nothing delivered", dims[0], dims[1])
		}
		if n.Stats.Injected.Value() != n.Stats.Delivered.Value()+int64(n.InFlight()) {
			t.Fatalf("%dx%d: conservation violated", dims[0], dims[1])
		}
	}
}
