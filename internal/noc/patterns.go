package noc

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// AllPatterns returns every defined traffic pattern in declaration order.
func AllPatterns() []Pattern {
	out := make([]Pattern, numPatterns)
	for i := range out {
		out[i] = Pattern(i)
	}
	return out
}

// PatternNames returns the canonical names of every pattern, for flag
// documentation and error messages.
func PatternNames() []string {
	names := make([]string, numPatterns)
	for i := range names {
		names[i] = Pattern(i).String()
	}
	return names
}

// ParsePattern resolves a pattern from its canonical name (as printed by
// Pattern.String) or its numeric value. Matching is case-insensitive and
// accepts "_" for "-" so "bit_complement" and "Bit-Complement" both work.
func ParsePattern(s string) (Pattern, error) {
	norm := strings.ReplaceAll(strings.ToLower(strings.TrimSpace(s)), "_", "-")
	for p := Pattern(0); p < numPatterns; p++ {
		if norm == p.String() {
			return p, nil
		}
	}
	if n, err := strconv.Atoi(norm); err == nil {
		if n >= 0 && n < int(numPatterns) {
			return Pattern(n), nil
		}
		return 0, fmt.Errorf("noc: pattern index %d out of range [0, %d)", n, int(numPatterns))
	}
	return 0, fmt.Errorf("noc: unknown pattern %q (have: %s)", s, strings.Join(PatternNames(), ", "))
}

// ValidatePattern reports whether pattern p can run on topology t. The
// patterns address the endpoint grid, so the constraints are per-topology:
// the bit-permutation patterns are only defined for power-of-two endpoint
// counts, and transpose only permutes square endpoint grids (on the torus
// and mesh the endpoint grid is the switch grid; the cmesh's is 2x denser
// in each dimension than its switch grid).
func ValidatePattern(p Pattern, t Topology) error {
	if p < 0 || p >= numPatterns {
		return fmt.Errorf("noc: unknown pattern %d", int(p))
	}
	ew, eh := t.EndpointDims()
	switch p {
	case BitReversal, Shuffle:
		if n := t.NumEndpoints(); n&(n-1) != 0 {
			return fmt.Errorf("noc: %v requires a power-of-two endpoint count; %dx%d %v = %d is not",
				p, ew, eh, t.Kind(), n)
		}
	case Transpose:
		if ew != eh {
			return fmt.Errorf("noc: %v is only a permutation on square endpoint grids, got %dx%d %v",
				p, ew, eh, t.Kind())
		}
	}
	return nil
}

// PermutationDest returns the destination endpoint of the
// permutation-style pattern p for source endpoint src on topology t. It
// panics if p is not a permutation pattern; callers should have run
// ValidatePattern first for the bit patterns.
func PermutationDest(p Pattern, t Topology, src int) int {
	ew, eh := t.EndpointDims()
	switch p {
	case Transpose:
		x, y := t.EndpointCoord(src)
		return t.EndpointID(y%ew, x%eh)
	case BitComplement:
		x, y := t.EndpointCoord(src)
		return t.EndpointID(ew-1-x, eh-1-y)
	case BitReversal:
		b := bits.Len(uint(t.NumEndpoints())) - 1
		return int(bits.Reverse(uint(src)) >> (bits.UintSize - b))
	case Shuffle:
		n := t.NumEndpoints()
		b := bits.Len(uint(n)) - 1
		return ((src << 1) | (src >> (b - 1))) & (n - 1)
	case Tornado:
		x, y := t.EndpointCoord(src)
		return t.EndpointID(x+(ew+1)/2-1, y+(eh+1)/2-1)
	}
	panic(fmt.Sprintf("noc: %v is not a permutation pattern", p))
}

// IsPermutation reports whether p maps each source to one fixed
// destination (a function of the topology only, no randomness).
func (p Pattern) IsPermutation() bool {
	switch p {
	case Transpose, BitComplement, BitReversal, Shuffle, Tornado:
		return true
	}
	return false
}

// BurstConfig parameterizes a two-state (on/off) Markov traffic modulator:
// geometrically distributed bursts of mean length MeanOn cycles separated
// by idle gaps of mean length MeanOff cycles. The long-run fraction of
// cycles spent injecting is Duty().
type BurstConfig struct {
	// MeanOn is the mean burst length in cycles (>= 1).
	MeanOn float64
	// MeanOff is the mean idle-gap length in cycles (>= 1).
	MeanOff float64
}

// Validate checks the configuration.
func (c BurstConfig) Validate() error {
	if c.MeanOn < 1 || c.MeanOff < 1 {
		return fmt.Errorf("noc: burst mean durations must be >= 1 cycle, got on=%g off=%g",
			c.MeanOn, c.MeanOff)
	}
	return nil
}

// Duty returns the configured long-run on fraction MeanOn/(MeanOn+MeanOff).
func (c BurstConfig) Duty() float64 { return c.MeanOn / (c.MeanOn + c.MeanOff) }

// BurstModulator is the running state of a BurstConfig: call Step once per
// cycle; it reports whether the source is in its on (bursting) state.
type BurstModulator struct {
	cfg     BurstConfig
	rng     *sim.RNG
	on      bool
	started bool

	onCycles, cycles int64
}

// NewBurstModulator creates a modulator. The initial state is drawn from
// the stationary distribution (on with probability Duty) so short
// measurement windows are unbiased.
func NewBurstModulator(cfg BurstConfig, seed int64) *BurstModulator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &BurstModulator{cfg: cfg, rng: sim.NewRNG(seed)}
}

// Step advances one cycle and reports whether this cycle is on.
func (b *BurstModulator) Step() bool {
	if !b.started {
		b.started = true
		b.on = b.rng.Bernoulli(b.cfg.Duty())
	} else if b.on {
		b.on = !b.rng.Bernoulli(1 / b.cfg.MeanOn)
	} else {
		b.on = b.rng.Bernoulli(1 / b.cfg.MeanOff)
	}
	b.cycles++
	if b.on {
		b.onCycles++
	}
	return b.on
}

// snapshot returns a restorable value copy of the modulator (its RNG
// dereferenced), for TrafficNode's checkpoint support.
func (b *BurstModulator) snapshot() BurstModulator {
	s := *b
	rng := *b.rng
	s.rng = &rng
	return s
}

// restore reinstates a snapshot taken from this modulator.
func (b *BurstModulator) restore(s BurstModulator) {
	rng := *s.rng
	*b = s
	b.rng = &rng
}

// MeasuredDuty returns the observed on fraction so far, or 0 before any
// Step.
func (b *BurstModulator) MeasuredDuty() float64 {
	if b.cycles == 0 {
		return 0
	}
	return float64(b.onCycles) / float64(b.cycles)
}
