package noc

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/sim"
	"repro/internal/stats"
)

// XYSwitch is a conventional input-queued switch with dimension-order
// (X-then-Y) routing, used as the ablation baseline the paper argues
// against: it needs per-input storage where the deflection switch needs
// none. Input queues are unbounded and their peak occupancy is recorded, so
// the storage cost of buffered routing can be compared directly with the
// deflection switch's theoretical-minimum storage (see
// BenchmarkDeflectionVsXY).
type XYSwitch struct {
	id    int
	x, y  int
	topo  Topology
	in    [NumPorts]*sim.Reg[flit.Flit]
	out   [NumPorts]*sim.Reg[flit.Flit]
	local LocalPort
	net   *XYNetwork

	queues  [NumPorts + 1][]flit.Flit // +1: local injection queue
	rrStart int

	Stats XYStats
}

// XYStats counts per-switch events for the XY router.
type XYStats struct {
	Routed   stats.Counter
	Ejected  stats.Counter
	Injected stats.Counter
	PeakQ    int // max occupancy observed over any input queue
}

// Name implements sim.Component.
func (s *XYSwitch) Name() string { return fmt.Sprintf("xysw(%d,%d)", s.x, s.y) }

// Step implements sim.Component; it runs in sim.PhaseSwitch.
func (s *XYSwitch) Step(now int64) {
	// Accept arrivals into input queues.
	for p := 0; p < int(NumPorts); p++ {
		if f, ok := s.in[p].Get(); ok {
			s.queues[p] = append(s.queues[p], f)
		}
	}
	// Accept one local injection per cycle.
	if f, ok := s.local.TryPull(); ok {
		s.Stats.Injected.Inc()
		s.net.noteInjected()
		s.queues[NumPorts] = append(s.queues[NumPorts], f)
	}
	for q := range s.queues {
		if len(s.queues[q]) > s.Stats.PeakQ {
			s.Stats.PeakQ = len(s.queues[q])
		}
	}

	// Each output port (and the ejection port) forwards at most one flit
	// per cycle. Round-robin over input queues for fairness; only the
	// head of each queue competes (FIFO order per input preserves
	// in-order delivery per path, the property wormhole/XY designs rely
	// on).
	var outTaken [NumPorts]bool
	ejectTaken := false
	nq := len(s.queues)
	for i := 0; i < nq; i++ {
		q := (s.rrStart + i) % nq
		if len(s.queues[q]) == 0 {
			continue
		}
		f := s.queues[q][0]
		if int(f.DstX) == s.x && int(f.DstY) == s.y {
			if ejectTaken {
				continue
			}
			ejectTaken = true
			s.Stats.Ejected.Inc()
			s.net.noteDelivered(f, now)
			s.local.Deliver(f, now)
		} else {
			p, ok := s.topo.XYFirstPort(s.x, s.y, int(f.DstX), int(f.DstY))
			if !ok || outTaken[p] {
				continue
			}
			outTaken[p] = true
			f.Meta.Hops++
			s.out[p].Set(f)
			s.Stats.Routed.Inc()
		}
		s.queues[q] = s.queues[q][1:]
	}
	s.rrStart = (s.rrStart + 1) % nq
}

// XYNetwork is a fully wired torus of XY switches, mirroring Network.
type XYNetwork struct {
	Topo     Topology
	Switches []*XYSwitch
	Stats    NetStats
}

// NewXYNetwork builds a w x h torus of buffered XY switches.
func NewXYNetwork(e *sim.Engine, topo Topology) *XYNetwork {
	n := &XYNetwork{Topo: topo}
	n.Switches = make([]*XYSwitch, topo.NumNodes())
	for id := range n.Switches {
		x, y := topo.Coord(id)
		n.Switches[id] = &XYSwitch{id: id, x: x, y: y, topo: topo, local: &nullPort{}, net: n}
	}
	for id, sw := range n.Switches {
		for p := Port(0); p < NumPorts; p++ {
			r := sim.NewReg[flit.Flit](e, fmt.Sprintf("xylink %d.%v", id, p))
			sw.out[p] = r
			nb := topo.Neighbor(id, p)
			n.Switches[nb].in[p.Opposite()] = r
		}
	}
	for _, sw := range n.Switches {
		e.Register(sim.PhaseSwitch, sw)
	}
	return n
}

// Attach connects a node's local port to the switch with the given id.
func (n *XYNetwork) Attach(id int, lp LocalPort) {
	if lp == nil {
		panic("noc: nil local port")
	}
	n.Switches[id].local = lp
}

// PeakQueue returns the worst input-queue occupancy across all switches,
// i.e. the minimum buffering a real implementation would have needed.
func (n *XYNetwork) PeakQueue() int {
	peak := 0
	for _, sw := range n.Switches {
		if sw.Stats.PeakQ > peak {
			peak = sw.Stats.PeakQ
		}
	}
	return peak
}

func (n *XYNetwork) noteInjected() { n.Stats.Injected.Inc() }

func (n *XYNetwork) noteDelivered(f flit.Flit, now int64) {
	n.Stats.Delivered.Inc()
	n.Stats.Latency.Observe(float64(now - f.Meta.InjectCycle))
	n.Stats.Hops.Observe(float64(f.Meta.Hops))
}
