package noc

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/stats"
)

// XYSwitch is a conventional input-queued switch with dimension-order
// (X-then-Y) routing, used as the ablation baseline the paper argues
// against: it needs per-input storage where the deflection switch needs
// none. Input queues are unbounded and their peak occupancy is recorded, so
// the storage cost of buffered routing can be compared directly with the
// deflection switch's theoretical-minimum storage (see
// BenchmarkDeflectionVsXY).
type XYSwitch struct {
	routerPorts

	queues  [NumPorts + 1][]flit.Flit // +1: local injection queue
	rrStart int

	buffered int // total occupancy across all queues
	peakBuf  int

	Stats XYStats
}

// XYStats counts per-switch events for the XY router.
type XYStats struct {
	Routed   stats.Counter
	Ejected  stats.Counter
	Injected stats.Counter
	PeakQ    int // max occupancy observed over any single input queue
}

// Name implements sim.Component.
func (s *XYSwitch) Name() string { return fmt.Sprintf("xysw(%d,%d)", s.x, s.y) }

// Buffered implements Router.
func (s *XYSwitch) Buffered() int { return s.buffered }

// PeakBuffered implements Router.
func (s *XYSwitch) PeakBuffered() int { return s.peakBuf }

// Deflections implements Router; the buffered router never deflects.
func (s *XYSwitch) Deflections() int64 { return 0 }

// EjectedCount implements Router.
func (s *XYSwitch) EjectedCount() int64 { return s.Stats.Ejected.Value() }

// Step implements sim.Component; it runs in sim.PhaseSwitch.
func (s *XYSwitch) Step(now int64) {
	// Accept arrivals into input queues.
	for p := 0; p < int(NumPorts); p++ {
		if s.in[p] == nil {
			continue
		}
		if f, ok := s.in[p].Get(); ok {
			s.queues[p] = append(s.queues[p], f)
			s.buffered++
		}
	}
	// Accept one local injection per cycle.
	if f, ok := s.local.TryPull(); ok {
		s.Stats.Injected.Inc()
		s.net.noteInjected()
		s.queues[NumPorts] = append(s.queues[NumPorts], f)
		s.buffered++
	}
	for q := range s.queues {
		if len(s.queues[q]) > s.Stats.PeakQ {
			s.Stats.PeakQ = len(s.queues[q])
		}
	}
	if s.buffered > s.peakBuf {
		s.peakBuf = s.buffered
	}

	// Each output port (and the ejection port) forwards at most one flit
	// per cycle. Round-robin over input queues for fairness; only the
	// head of each queue competes (FIFO order per input preserves
	// in-order delivery per path, the property wormhole/XY designs rely
	// on).
	var outTaken [NumPorts]bool
	ejectTaken := false
	nq := len(s.queues)
	for i := 0; i < nq; i++ {
		q := (s.rrStart + i) % nq
		if len(s.queues[q]) == 0 {
			continue
		}
		f := s.queues[q][0]
		dx, dy := s.dstSwitch(f)
		if dx == s.x && dy == s.y {
			if ejectTaken {
				continue
			}
			ejectTaken = true
			s.Stats.Ejected.Inc()
			s.net.noteDelivered(f, now)
			s.local.Deliver(f, now)
		} else {
			p, ok := s.topo.XYFirstPort(s.x, s.y, dx, dy)
			if !ok || outTaken[p] {
				continue
			}
			outTaken[p] = true
			f.Meta.Hops++
			s.out[p].Set(f)
			s.Stats.Routed.Inc()
		}
		s.queues[q] = s.queues[q][1:]
		s.buffered--
	}
	s.rrStart = (s.rrStart + 1) % nq
}
