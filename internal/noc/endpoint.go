package noc

import "repro/internal/flit"

// LocalPort is the interface between a switch and the node attached to it
// (a processing element's network interface, an MPMMU, or a traffic
// generator).
//
// TryPull is called by the switch at most once per cycle when it has a free
// output slot; the node hands over its next flit to inject, if any.
// Deliver is called by the switch at most once per cycle to eject a flit
// addressed to this node.
//
// Nodes run in sim.PhaseNode and switches in sim.PhaseSwitch, so a flit
// enqueued by a node is injectable in the same cycle, giving the paper's
// peak throughput of one flit per cycle.
type LocalPort interface {
	TryPull() (flit.Flit, bool)
	Deliver(f flit.Flit, now int64)
}

// nullPort is attached to switches with no node; it never injects and
// counts (in tests, via the network stats) any stray delivery.
type nullPort struct{ delivered int64 }

func (n *nullPort) TryPull() (flit.Flit, bool) { return flit.Flit{}, false }
func (n *nullPort) Deliver(flit.Flit, int64)   { n.delivered++ }
func (n *nullPort) Pending() int               { return 0 }
