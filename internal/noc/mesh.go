package noc

import "fmt"

// Mesh is a non-wrapping W x H mesh: the same grid as the torus minus the
// wrap-around links. Edge switches lack the ports that would cross the
// boundary — corner switches keep only two — which is exactly the case the
// deflection-class routers must survive with fewer escape ports, and no
// ring wraps, so dimension-order routing is deadlock free without a
// dateline. One endpoint attaches to every switch.
type Mesh struct {
	W, H int
}

// Kind implements Topology.
func (t Mesh) Kind() TopologyKind { return TopoMesh }

// Dims implements Topology.
func (t Mesh) Dims() (int, int) { return t.W, t.H }

// NumNodes returns the number of switches.
func (t Mesh) NumNodes() int { return t.W * t.H }

// Coord maps a switch id to its (x, y) coordinate.
func (t Mesh) Coord(id int) (x, y int) {
	if id < 0 || id >= t.NumNodes() {
		panic(fmt.Sprintf("noc: node id %d out of range", id))
	}
	return id % t.W, id / t.W
}

// ID maps a coordinate to a switch id. Like the torus it wraps modularly —
// it is an addressing helper used by the traffic patterns, not a statement
// about links (Neighbor is the link function, and mesh edges have none).
func (t Mesh) ID(x, y int) int {
	x = ((x % t.W) + t.W) % t.W
	y = ((y % t.H) + t.H) % t.H
	return y*t.W + x
}

// Neighbor returns the switch one hop from id through port p, and
// ok=false when the hop would cross the mesh boundary. The cmesh switch
// grid shares this implementation (CMesh delegates to a Mesh value).
func (t Mesh) Neighbor(id int, p Port) (int, bool) {
	x, y := t.Coord(id)
	switch p {
	case East:
		if x+1 >= t.W {
			return 0, false
		}
		return y*t.W + x + 1, true
	case West:
		if x-1 < 0 {
			return 0, false
		}
		return y*t.W + x - 1, true
	case North:
		if y+1 >= t.H {
			return 0, false
		}
		return (y+1)*t.W + x, true
	case South:
		if y-1 < 0 {
			return 0, false
		}
		return (y-1)*t.W + x, true
	}
	panic("noc: invalid port")
}

// Dist returns the Manhattan distance between two switches (no wrap).
func (t Mesh) Dist(a, b int) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	return absInt(bx-ax) + absInt(by-ay)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// ProductivePorts appends to dst the ports that strictly reduce the mesh
// distance from (x, y) to (dstX, dstY). Without wrap there is never an
// equidistant direction: at most one port per axis is productive, and it
// is always a real link (it points inward).
func (t Mesh) ProductivePorts(dst []Port, x, y, dstX, dstY int) []Port {
	if dstX > x {
		dst = append(dst, East)
	} else if dstX < x {
		dst = append(dst, West)
	}
	if dstY > y {
		dst = append(dst, North)
	} else if dstY < y {
		dst = append(dst, South)
	}
	return dst
}

// XYFirstPort returns the dimension-order (X then Y) routing port towards
// (dstX, dstY), and ok=false when already there. Mesh XY routes never
// leave the grid, so the returned port is always a real link.
func (t Mesh) XYFirstPort(x, y, dstX, dstY int) (Port, bool) {
	if dstX > x {
		return East, true
	}
	if dstX < x {
		return West, true
	}
	if dstY > y {
		return North, true
	}
	if dstY < y {
		return South, true
	}
	return 0, false
}

// WrapCrossing implements Topology; a mesh has no wrap-around links, so
// the wormhole router never needs its dateline escape VC here.
func (t Mesh) WrapCrossing(x, y int, p Port) bool { return false }

// Concentration implements Topology; one endpoint per mesh switch.
func (t Mesh) Concentration() int { return 1 }

// NumEndpoints implements Topology.
func (t Mesh) NumEndpoints() int { return t.NumNodes() }

// EndpointDims implements Topology.
func (t Mesh) EndpointDims() (int, int) { return t.W, t.H }

// EndpointCoord implements Topology; endpoint space is switch space.
func (t Mesh) EndpointCoord(e int) (int, int) { return t.Coord(e) }

// EndpointID implements Topology.
func (t Mesh) EndpointID(ex, ey int) int { return t.ID(ex, ey) }

// EndpointSwitch implements Topology.
func (t Mesh) EndpointSwitch(e int) int { return e }

// SwitchOf implements Topology.
func (t Mesh) SwitchOf(ex, ey int) (int, int) { return ex, ey }

// LocalIndex implements Topology.
func (t Mesh) LocalIndex(ex, ey int) int { return 0 }
