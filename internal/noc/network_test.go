package noc

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/sim"
)

// collector is a minimal LocalPort that injects a fixed list of flits and
// records deliveries.
type collector struct {
	out  []flit.Flit
	got  []flit.Flit
	when []int64
}

func (c *collector) TryPull() (flit.Flit, bool) {
	if len(c.out) == 0 {
		return flit.Flit{}, false
	}
	f := c.out[0]
	c.out = c.out[1:]
	return f, true
}

func (c *collector) Deliver(f flit.Flit, now int64) {
	c.got = append(c.got, f)
	c.when = append(c.when, now)
}

// mustNeighbor is a test helper for fabrics where the link is known to
// exist (any torus port).
func mustNeighbor(topo Topology, id int, p Port) int {
	nb, ok := topo.Neighbor(id, p)
	if !ok {
		panic("test: no link there")
	}
	return nb
}

func buildNet(t *testing.T, w, h int) (*sim.Engine, *Network, []*collector) {
	t.Helper()
	topo, err := NewTopology(w, h)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	n := NewNetwork(e, topo)
	cols := make([]*collector, topo.NumNodes())
	for i := range cols {
		cols[i] = &collector{}
		n.Attach(i, cols[i])
	}
	return e, n, cols
}

func mkFlit(topo Topology, src, dst int, pkt uint64) flit.Flit {
	dx, dy := topo.Coord(dst)
	f := flit.Flit{
		DstX: uint8(dx), DstY: uint8(dy),
		Type: flit.Message, Sub: flit.SubMsgData,
		Src: uint8(src),
	}
	f.Meta.PacketID = pkt
	return f
}

func TestSingleFlitDelivery(t *testing.T) {
	e, n, cols := buildNet(t, 4, 4)
	src, dst := 0, n.Topo.ID(2, 1)
	cols[src].out = append(cols[src].out, mkFlit(n.Topo, src, dst, 1))
	e.Run(20)
	if len(cols[dst].got) != 1 {
		t.Fatalf("destination got %d flits", len(cols[dst].got))
	}
	// Minimal latency: 3 hops, one cycle per hop (plus injection cycle).
	minHops := n.Topo.Dist(src, dst)
	if lat := cols[dst].when[0]; lat < int64(minHops) {
		t.Errorf("delivered at cycle %d, impossible before %d", lat, minHops)
	}
	if n.Stats.Delivered.Value() != 1 || n.Stats.Injected.Value() != 1 {
		t.Errorf("stats: injected %d delivered %d", n.Stats.Injected.Value(), n.Stats.Delivered.Value())
	}
}

func TestSelfAddressedNearestDelivery(t *testing.T) {
	// A flit to an adjacent node takes exactly: inject (cycle 0, appears
	// on link), arrive and eject next switch step.
	e, n, cols := buildNet(t, 4, 4)
	src := n.Topo.ID(1, 1)
	dst := mustNeighbor(n.Topo, src, East)
	cols[src].out = append(cols[src].out, mkFlit(n.Topo, src, dst, 1))
	e.Run(10)
	if len(cols[dst].got) != 1 {
		t.Fatalf("adjacent delivery failed")
	}
}

// TestFlitConservation drives heavy random traffic and checks that no flit
// is ever lost or duplicated: injected == delivered + in flight.
func TestFlitConservation(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	e := sim.NewEngine()
	n := NewNetwork(e, topo)
	nodes := make([]*TrafficNode, topo.NumNodes())
	for i := range nodes {
		nodes[i] = NewTrafficNode(i, topo, TrafficConfig{Pattern: Uniform, Rate: 0.9}, 42)
		n.Attach(i, nodes[i])
		e.Register(sim.PhaseNode, nodes[i])
	}
	for cycle := 0; cycle < 500; cycle++ {
		e.Tick()
		if n.Stats.Injected.Value() != n.Stats.Delivered.Value()+int64(n.InFlight()) {
			t.Fatalf("cycle %d: conservation violated: inj=%d del=%d inflight=%d",
				cycle, n.Stats.Injected.Value(), n.Stats.Delivered.Value(), n.InFlight())
		}
	}
	if n.Stats.Delivered.Value() == 0 {
		t.Fatal("no traffic delivered")
	}
}

// TestAllFlitsEventuallyDrain stops injection and verifies the network
// empties (no livelocked flit in this finite scenario).
func TestAllFlitsEventuallyDrain(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	e := sim.NewEngine()
	n := NewNetwork(e, topo)
	nodes := make([]*TrafficNode, topo.NumNodes())
	for i := range nodes {
		nodes[i] = NewTrafficNode(i, topo, TrafficConfig{Pattern: Uniform, Rate: 1.0}, 7)
		n.Attach(i, nodes[i])
	}
	// Phase 1: heavy injection for 200 cycles (nodes registered manually
	// so we can stop them).
	for c := 0; c < 200; c++ {
		for _, tn := range nodes {
			tn.Step(e.Now())
		}
		e.Tick()
	}
	// Phase 2: no more injection; drain.
	for c := 0; c < 500 && n.InFlight() > 0; c++ {
		e.Tick()
	}
	// Let source queues drain too.
	for c := 0; c < 2000 && n.Stats.Delivered.Value() < n.Stats.Injected.Value(); c++ {
		e.Tick()
	}
	if n.InFlight() != 0 {
		t.Fatalf("%d flits still in flight after drain", n.InFlight())
	}
	if n.Stats.Delivered.Value() != n.Stats.Injected.Value() {
		t.Fatalf("delivered %d != injected %d", n.Stats.Delivered.Value(), n.Stats.Injected.Value())
	}
}

// TestDeterminism runs the same traffic twice and requires bit-identical
// statistics.
func TestDeterminism(t *testing.T) {
	run := func() (int64, float64, int64) {
		topo, _ := NewTopology(4, 4)
		e := sim.NewEngine()
		n := NewNetwork(e, topo)
		for i := 0; i < topo.NumNodes(); i++ {
			tn := NewTrafficNode(i, topo, TrafficConfig{Pattern: Uniform, Rate: 0.5}, 99)
			n.Attach(i, tn)
			e.Register(sim.PhaseNode, tn)
		}
		e.Run(1000)
		return n.Stats.Delivered.Value(), n.Stats.Latency.Mean(), n.TotalDeflections()
	}
	d1, l1, f1 := run()
	d2, l2, f2 := run()
	if d1 != d2 || l1 != l2 || f1 != f2 {
		t.Fatalf("non-deterministic: (%d,%v,%d) vs (%d,%v,%d)", d1, l1, f1, d2, l2, f2)
	}
}

// TestHotspotDeliversToTarget checks the hotspot pattern actually
// concentrates traffic.
func TestHotspotDeliversToTarget(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	e := sim.NewEngine()
	n := NewNetwork(e, topo)
	hot := 5
	nodes := make([]*TrafficNode, topo.NumNodes())
	for i := range nodes {
		nodes[i] = NewTrafficNode(i, topo, TrafficConfig{Pattern: Hotspot, HotspotNode: hot, Rate: 0.2}, 3)
		n.Attach(i, nodes[i])
		e.Register(sim.PhaseNode, nodes[i])
	}
	e.Run(500)
	total := int64(0)
	for i, tn := range nodes {
		if i != hot && tn.Recv.Value() != 0 {
			t.Errorf("node %d received %d hotspot flits", i, tn.Recv.Value())
		}
		total += tn.Recv.Value()
	}
	if nodes[hot].Recv.Value() == 0 || nodes[hot].Recv.Value() != total {
		t.Errorf("hotspot received %d of %d", nodes[hot].Recv.Value(), total)
	}
}

// TestDeflectionsHappenUnderLoad sanity-checks that contention produces
// deflections (the defining behaviour of hot-potato routing).
func TestDeflectionsHappenUnderLoad(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	e := sim.NewEngine()
	n := NewNetwork(e, topo)
	for i := 0; i < topo.NumNodes(); i++ {
		tn := NewTrafficNode(i, topo, TrafficConfig{Pattern: Hotspot, HotspotNode: 0, Rate: 1.0}, 5)
		n.Attach(i, tn)
		e.Register(sim.PhaseNode, tn)
	}
	e.Run(300)
	if n.TotalDeflections() == 0 {
		t.Error("saturating hotspot traffic should cause deflections")
	}
}

// TestSwitchNeverStoresFlits checks the minimal-storage property: the sum
// of flits on all links never exceeds links' capacity and a switch always
// forwards everything it receives in one cycle (conservation per switch is
// already covered; here we bound in-flight by link count).
func TestSwitchNeverStoresFlits(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	e := sim.NewEngine()
	n := NewNetwork(e, topo)
	for i := 0; i < topo.NumNodes(); i++ {
		tn := NewTrafficNode(i, topo, TrafficConfig{Pattern: Uniform, Rate: 1.0}, 17)
		n.Attach(i, tn)
		e.Register(sim.PhaseNode, tn)
	}
	maxLinks := topo.NumNodes() * int(NumPorts)
	for c := 0; c < 400; c++ {
		e.Tick()
		if inf := n.InFlight(); inf > maxLinks {
			t.Fatalf("in-flight %d exceeds link capacity %d", inf, maxLinks)
		}
	}
}

func TestEjectMissedIsCounted(t *testing.T) {
	// Two flits arriving for the same node in one cycle: one must be
	// deflected and the EjectMissed counter must record it eventually.
	topo, _ := NewTopology(4, 4)
	e := sim.NewEngine()
	n := NewNetwork(e, topo)
	cols := make([]*collector, topo.NumNodes())
	for i := range cols {
		cols[i] = &collector{}
		n.Attach(i, cols[i])
	}
	dst := topo.ID(1, 1)
	left := topo.ID(0, 1)
	right := topo.ID(2, 1)
	cols[left].out = append(cols[left].out, mkFlit(topo, left, dst, 1))
	cols[right].out = append(cols[right].out, mkFlit(topo, right, dst, 2))
	e.Run(30)
	if len(cols[dst].got) != 2 {
		t.Fatalf("destination got %d flits, want 2", len(cols[dst].got))
	}
	var missed int64
	for _, sw := range n.Routers {
		missed += sw.(*DeflSwitch).Stats.EjectMissed.Value()
	}
	if missed == 0 {
		t.Error("simultaneous arrivals should have recorded an eject miss")
	}
}
