package noc

import (
	"testing"

	"repro/internal/sim"
)

func TestXYSingleFlitDelivery(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	e := sim.NewEngine()
	n := NewXYNetwork(e, topo)
	cols := make([]*collector, topo.NumNodes())
	for i := range cols {
		cols[i] = &collector{}
		n.Attach(i, cols[i])
	}
	src, dst := 0, topo.ID(2, 2)
	cols[src].out = append(cols[src].out, mkFlit(topo, src, dst, 1))
	e.Run(30)
	if len(cols[dst].got) != 1 {
		t.Fatalf("destination got %d flits", len(cols[dst].got))
	}
	if n.Stats.Delivered.Value() != 1 {
		t.Error("delivery not counted")
	}
}

func TestXYAllPairs(t *testing.T) {
	// Every (src,dst) pair delivers: exercises both dimensions and wraps.
	topo, _ := NewTopology(4, 3)
	for src := 0; src < topo.NumNodes(); src++ {
		for dst := 0; dst < topo.NumNodes(); dst++ {
			if src == dst {
				continue
			}
			e := sim.NewEngine()
			n := NewXYNetwork(e, topo)
			cols := make([]*collector, topo.NumNodes())
			for i := range cols {
				cols[i] = &collector{}
				n.Attach(i, cols[i])
			}
			cols[src].out = append(cols[src].out, mkFlit(topo, src, dst, 7))
			e.Run(20)
			if len(cols[dst].got) != 1 {
				t.Fatalf("src %d dst %d: not delivered", src, dst)
			}
		}
	}
}

func TestXYInOrderPerPath(t *testing.T) {
	// XY routing with FIFO queues preserves flit order between one pair.
	topo, _ := NewTopology(4, 4)
	e := sim.NewEngine()
	n := NewXYNetwork(e, topo)
	cols := make([]*collector, topo.NumNodes())
	for i := range cols {
		cols[i] = &collector{}
		n.Attach(i, cols[i])
	}
	src, dst := 0, topo.ID(3, 2)
	for k := 0; k < 10; k++ {
		f := mkFlit(topo, src, dst, uint64(k))
		f.Data = uint32(k)
		cols[src].out = append(cols[src].out, f)
	}
	e.Run(60)
	if len(cols[dst].got) != 10 {
		t.Fatalf("got %d flits", len(cols[dst].got))
	}
	for k, f := range cols[dst].got {
		if f.Data != uint32(k) {
			t.Fatalf("flit %d out of order (data %d)", k, f.Data)
		}
	}
}

func TestXYConservationUnderLoad(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	e := sim.NewEngine()
	n := NewXYNetwork(e, topo)
	nodes := make([]*TrafficNode, topo.NumNodes())
	for i := range nodes {
		nodes[i] = NewTrafficNode(i, topo, TrafficConfig{Pattern: Transpose, Rate: 0.7}, 13)
		n.Attach(i, nodes[i])
		e.Register(sim.PhaseNode, nodes[i])
	}
	e.Run(2000)
	var sent int64
	for _, tn := range nodes {
		_ = tn
	}
	sent = n.Stats.Injected.Value()
	if sent == 0 {
		t.Fatal("no traffic")
	}
	// Drain with injection stopped (traffic nodes are components; easiest
	// is to run a long tail and require full delivery since rates pause).
	if n.PeakBuffer() == 0 {
		t.Error("buffered router should have queued something under transpose load")
	}
	if n.Stats.Delivered.Value() > sent {
		t.Error("delivered more than injected")
	}
}

func TestXYDeterminism(t *testing.T) {
	run := func() (int64, float64) {
		topo, _ := NewTopology(4, 4)
		e := sim.NewEngine()
		n := NewXYNetwork(e, topo)
		for i := 0; i < topo.NumNodes(); i++ {
			tn := NewTrafficNode(i, topo, TrafficConfig{Pattern: Uniform, Rate: 0.5}, 99)
			n.Attach(i, tn)
			e.Register(sim.PhaseNode, tn)
		}
		e.Run(1000)
		return n.Stats.Delivered.Value(), n.Stats.Latency.Mean()
	}
	d1, l1 := run()
	d2, l2 := run()
	if d1 != d2 || l1 != l2 {
		t.Fatalf("non-deterministic XY network")
	}
}

func TestTrafficPatternsProduceValidDestinations(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	for _, p := range []Pattern{Uniform, Transpose, Hotspot, Neighbor} {
		tn := NewTrafficNode(5, topo, TrafficConfig{Pattern: p, Rate: 1, HotspotNode: 3}, 11)
		for i := 0; i < 100; i++ {
			d := tn.destination()
			if d < 0 || d >= topo.NumNodes() {
				t.Fatalf("pattern %v produced destination %d", p, d)
			}
		}
		if p.String() == "" {
			t.Error("empty pattern name")
		}
	}
}

func TestTrafficThrottlesWhenQueueFull(t *testing.T) {
	topo, _ := NewTopology(4, 4)
	tn := NewTrafficNode(0, topo, TrafficConfig{Pattern: Hotspot, HotspotNode: 5, Rate: 1, QueueCap: 4}, 3)
	for c := int64(0); c < 100; c++ {
		tn.Step(c) // nothing ever pulls
	}
	if tn.Pending() != 4 {
		t.Errorf("queue holds %d, want cap 4", tn.Pending())
	}
	if tn.Throttled.Value() == 0 {
		t.Error("throttling not counted")
	}
}
