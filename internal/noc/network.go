package noc

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Network is a fully wired NoC of switches running one of the RouterKind
// algorithms on one of the Topology fabrics. All combinations share the
// same link wiring, local-port contract and statistics, so routers and
// topologies are directly comparable under identical traffic.
type Network struct {
	Topo    Topology
	Kind    RouterKind
	Routers []Router

	// conc holds the per-switch local crossbars on concentrated
	// topologies (nil when Topo.Concentration() == 1).
	conc []*concentrator

	// Stats aggregates network-wide traffic measurements.
	Stats NetStats
}

// NetStats aggregates network-wide measurements.
type NetStats struct {
	Injected  stats.Counter
	Delivered stats.Counter
	Latency   stats.Running // inject-to-eject cycles
	Hops      stats.Running
	Deflects  stats.Running // deflections per delivered flit

	// LatencySample, when non-nil, additionally records every delivered
	// flit's latency for exact percentile reporting. The scenario runner
	// attaches one at the start of its measurement window.
	LatencySample *stats.Sample
}

// NewNetwork builds a folded torus of the paper's deflection switches. It
// is shorthand for NewRouterNetwork(e, topo, RouterDeflection) and remains
// the constructor used by the full MEDEA system.
func NewNetwork(e *sim.Engine, topo Topology) *Network {
	return NewRouterNetwork(e, topo, RouterDeflection)
}

// NewXYNetwork builds a torus of buffered XY switches, the ablation
// baseline. Shorthand for NewRouterNetwork(e, topo, RouterXY).
func NewXYNetwork(e *sim.Engine, topo Topology) *Network {
	return NewRouterNetwork(e, topo, RouterXY)
}

// NewRouterNetwork builds the topology's switch grid with switches of the
// given kind, wires every link the fabric defines (mesh edges have none),
// registers everything with the engine (sim.PhaseSwitch; local crossbars
// of concentrated topologies in sim.PhaseNode), and attaches a null port
// to every endpoint. Call Attach to connect real nodes.
func NewRouterNetwork(e *sim.Engine, topo Topology, kind RouterKind) *Network {
	n := &Network{Topo: topo, Kind: kind}
	n.Routers = make([]Router, topo.NumNodes())
	for id := range n.Routers {
		x, y := topo.Coord(id)
		n.Routers[id] = newRouter(kind, routerPorts{
			id: id, x: x, y: y, topo: topo, local: &nullPort{}, net: n,
		})
	}
	// Create one register per directed link, shared between the producing
	// switch's out port and the consuming switch's in port. Ports the
	// fabric defines no link for stay nil, and every router skips them.
	for id, r := range n.Routers {
		rp := r.wiring()
		for p := Port(0); p < NumPorts; p++ {
			nb, ok := topo.Neighbor(id, p)
			if !ok {
				continue
			}
			reg := sim.NewReg[flit.Flit](e, fmt.Sprintf("link %d.%v", id, p))
			rp.out[p] = reg
			n.Routers[nb].wiring().in[p.Opposite()] = reg
		}
	}
	// Cross-switch wiring beyond the links (credit wires, congestion
	// taps) can be strung only after every switch exists.
	switch kind {
	case RouterWormhole:
		for _, r := range n.Routers {
			r.(*WormholeSwitch).wireCredits(n)
		}
	case RouterAdaptive:
		for _, r := range n.Routers {
			r.(*AdaptiveSwitch).wireNeighbors(n)
		}
	}
	// Concentrated topologies put a local crossbar between each switch
	// and its endpoints; it runs on the endpoint side of the clock.
	if topo.Concentration() > 1 {
		n.conc = make([]*concentrator, topo.NumNodes())
		for id, r := range n.Routers {
			n.conc[id] = newConcentrator(topo, id, n)
			r.wiring().local = n.conc[id]
			e.Register(sim.PhaseNode, n.conc[id])
		}
	}
	for _, r := range n.Routers {
		e.Register(sim.PhaseSwitch, r)
	}
	return n
}

// Attach connects a node's local port to the endpoint with the given id
// (on non-concentrated topologies an endpoint id is a switch id; on the
// cmesh it selects the slot on the owning switch's local crossbar).
func (n *Network) Attach(id int, lp LocalPort) {
	if lp == nil {
		panic("noc: nil local port")
	}
	if id < 0 || id >= n.Topo.NumEndpoints() {
		panic(fmt.Sprintf("noc: endpoint id %d out of range", id))
	}
	if n.conc != nil {
		ex, ey := n.Topo.EndpointCoord(id)
		n.conc[n.Topo.EndpointSwitch(id)].eps[n.Topo.LocalIndex(ex, ey)] = lp
		return
	}
	n.Routers[id].wiring().local = lp
}

// ConcentratorHeld sums the flits currently latched in the local crossbar
// stages of a concentrated topology (always 0 otherwise). Latched flits
// are source-side — not yet injected — so they are excluded from InFlight;
// drain checks add this term to know the sources are truly empty.
func (n *Network) ConcentratorHeld() int {
	c := 0
	for _, cc := range n.conc {
		c += cc.held()
	}
	return c
}

// ConcentratorTurnarounds sums the same-switch deliveries made inside the
// local crossbars (always 0 on non-concentrated topologies). These flits
// count in NetStats but never traverse a switch, so per-switch counters
// (Router.EjectedCount, the VCD tracer's ejection signals) legitimately
// exclude them; NetStats.Delivered equals the sum of all
// Router.EjectedCount plus this term.
func (n *Network) ConcentratorTurnarounds() int64 {
	var c int64
	for _, cc := range n.conc {
		c += cc.turnarounds
	}
	return c
}

// InFlight counts flits currently travelling on links or stored inside
// switches. Injected == Delivered + InFlight is the conservation invariant
// checked by the differential conformance tests; for bufferless kinds the
// stored term is always zero and InFlight degenerates to the link count.
func (n *Network) InFlight() int {
	c := 0
	for _, r := range n.Routers {
		c += r.wiring().outOccupancy() + r.Buffered()
	}
	return c
}

// OnLinks counts only the flits currently travelling on links, excluding
// buffered ones. For a bufferless network OnLinks == InFlight.
func (n *Network) OnLinks() int {
	c := 0
	for _, r := range n.Routers {
		c += r.wiring().outOccupancy()
	}
	return c
}

// BufferedNow sums the flits currently stored inside all switches.
func (n *Network) BufferedNow() int {
	c := 0
	for _, r := range n.Routers {
		c += r.Buffered()
	}
	return c
}

// PeakBuffer returns the worst per-switch buffer occupancy observed over
// the run, i.e. the minimum per-switch storage a real implementation of
// this router would have needed. Always 0 for bufferless kinds.
func (n *Network) PeakBuffer() int {
	peak := 0
	for _, r := range n.Routers {
		if p := r.PeakBuffered(); p > peak {
			peak = p
		}
	}
	return peak
}

// TotalDeflections sums deflections over all switches (0 for buffered
// kinds, which never deflect).
func (n *Network) TotalDeflections() int64 {
	var c int64
	for _, r := range n.Routers {
		c += r.Deflections()
	}
	return c
}

func (n *Network) noteInjected() { n.Stats.Injected.Inc() }

func (n *Network) noteDelivered(f flit.Flit, now int64) {
	n.Stats.Delivered.Inc()
	n.Stats.Latency.Observe(float64(now - f.Meta.InjectCycle))
	n.Stats.Hops.Observe(float64(f.Meta.Hops))
	n.Stats.Deflects.Observe(float64(f.Meta.Deflections))
	if n.Stats.LatencySample != nil {
		n.Stats.LatencySample.Observe(float64(now - f.Meta.InjectCycle))
	}
}
