package noc

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Network is a fully wired folded-torus NoC of deflection switches.
type Network struct {
	Topo     Topology
	Switches []*DeflSwitch

	// Stats aggregates network-wide traffic measurements.
	Stats NetStats
}

// NetStats aggregates network-wide measurements.
type NetStats struct {
	Injected  stats.Counter
	Delivered stats.Counter
	Latency   stats.Running // inject-to-eject cycles
	Hops      stats.Running
	Deflects  stats.Running // deflections per delivered flit

	// LatencySample, when non-nil, additionally records every delivered
	// flit's latency for exact percentile reporting. The scenario runner
	// attaches one at the start of its measurement window.
	LatencySample *stats.Sample
}

// NewNetwork builds a w x h folded torus of deflection switches, wires all
// links, registers everything with the engine (sim.PhaseSwitch), and
// attaches a null port to every switch. Call Attach to connect real nodes.
func NewNetwork(e *sim.Engine, topo Topology) *Network {
	n := &Network{Topo: topo}
	n.Switches = make([]*DeflSwitch, topo.NumNodes())
	for id := range n.Switches {
		x, y := topo.Coord(id)
		n.Switches[id] = &DeflSwitch{id: id, x: x, y: y, topo: topo, local: &nullPort{}, net: n}
	}
	// Create one register per directed link, shared between the producing
	// switch's out port and the consuming switch's in port.
	for id, sw := range n.Switches {
		for p := Port(0); p < NumPorts; p++ {
			r := sim.NewReg[flit.Flit](e, fmt.Sprintf("link %d.%v", id, p))
			sw.out[p] = r
			nb := topo.Neighbor(id, p)
			n.Switches[nb].in[p.Opposite()] = r
		}
	}
	for _, sw := range n.Switches {
		e.Register(sim.PhaseSwitch, sw)
	}
	return n
}

// Attach connects a node's local port to the switch with the given id.
func (n *Network) Attach(id int, lp LocalPort) {
	if lp == nil {
		panic("noc: nil local port")
	}
	n.Switches[id].local = lp
}

// InFlight counts flits currently travelling on links. Injected ==
// Delivered + InFlight is the conservation invariant checked by tests.
func (n *Network) InFlight() int {
	c := 0
	for _, sw := range n.Switches {
		for p := Port(0); p < NumPorts; p++ {
			if sw.out[p].Valid() {
				c++
			}
		}
	}
	return c
}

// TotalDeflections sums deflections over all switches.
func (n *Network) TotalDeflections() int64 {
	var c int64
	for _, sw := range n.Switches {
		c += sw.Stats.Deflected.Value()
	}
	return c
}

func (n *Network) noteInjected() { n.Stats.Injected.Inc() }

func (n *Network) noteDelivered(f flit.Flit, now int64) {
	n.Stats.Delivered.Inc()
	n.Stats.Latency.Observe(float64(now - f.Meta.InjectCycle))
	n.Stats.Hops.Observe(float64(f.Meta.Hops))
	n.Stats.Deflects.Observe(float64(f.Meta.Deflections))
	if n.Stats.LatencySample != nil {
		n.Stats.LatencySample.Observe(float64(now - f.Meta.InjectCycle))
	}
}
