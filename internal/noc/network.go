package noc

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Network is a fully wired folded-torus NoC of switches running one of the
// RouterKind algorithms. All kinds share the same link wiring, local-port
// contract and statistics, so routers are directly comparable under
// identical traffic.
type Network struct {
	Topo    Topology
	Kind    RouterKind
	Routers []Router

	// Stats aggregates network-wide traffic measurements.
	Stats NetStats
}

// NetStats aggregates network-wide measurements.
type NetStats struct {
	Injected  stats.Counter
	Delivered stats.Counter
	Latency   stats.Running // inject-to-eject cycles
	Hops      stats.Running
	Deflects  stats.Running // deflections per delivered flit

	// LatencySample, when non-nil, additionally records every delivered
	// flit's latency for exact percentile reporting. The scenario runner
	// attaches one at the start of its measurement window.
	LatencySample *stats.Sample
}

// NewNetwork builds a w x h folded torus of the paper's deflection
// switches. It is shorthand for NewRouterNetwork(e, topo, RouterDeflection)
// and remains the constructor used by the full MEDEA system.
func NewNetwork(e *sim.Engine, topo Topology) *Network {
	return NewRouterNetwork(e, topo, RouterDeflection)
}

// NewXYNetwork builds a w x h torus of buffered XY switches, the ablation
// baseline. Shorthand for NewRouterNetwork(e, topo, RouterXY).
func NewXYNetwork(e *sim.Engine, topo Topology) *Network {
	return NewRouterNetwork(e, topo, RouterXY)
}

// NewRouterNetwork builds a w x h folded torus of switches of the given
// kind, wires all links, registers everything with the engine
// (sim.PhaseSwitch), and attaches a null port to every switch. Call Attach
// to connect real nodes.
func NewRouterNetwork(e *sim.Engine, topo Topology, kind RouterKind) *Network {
	n := &Network{Topo: topo, Kind: kind}
	n.Routers = make([]Router, topo.NumNodes())
	for id := range n.Routers {
		x, y := topo.Coord(id)
		n.Routers[id] = newRouter(kind, routerPorts{
			id: id, x: x, y: y, topo: topo, local: &nullPort{}, net: n,
		})
	}
	// Create one register per directed link, shared between the producing
	// switch's out port and the consuming switch's in port.
	for id, r := range n.Routers {
		rp := r.wiring()
		for p := Port(0); p < NumPorts; p++ {
			reg := sim.NewReg[flit.Flit](e, fmt.Sprintf("link %d.%v", id, p))
			rp.out[p] = reg
			nb := topo.Neighbor(id, p)
			n.Routers[nb].wiring().in[p.Opposite()] = reg
		}
	}
	// Cross-switch wiring beyond the links (credit wires, congestion
	// taps) can be strung only after every switch exists.
	switch kind {
	case RouterWormhole:
		for _, r := range n.Routers {
			r.(*WormholeSwitch).wireCredits(n)
		}
	case RouterAdaptive:
		for _, r := range n.Routers {
			r.(*AdaptiveSwitch).wireNeighbors(n)
		}
	}
	for _, r := range n.Routers {
		e.Register(sim.PhaseSwitch, r)
	}
	return n
}

// Attach connects a node's local port to the switch with the given id.
func (n *Network) Attach(id int, lp LocalPort) {
	if lp == nil {
		panic("noc: nil local port")
	}
	n.Routers[id].wiring().local = lp
}

// InFlight counts flits currently travelling on links or stored inside
// switches. Injected == Delivered + InFlight is the conservation invariant
// checked by the differential conformance tests; for bufferless kinds the
// stored term is always zero and InFlight degenerates to the link count.
func (n *Network) InFlight() int {
	c := 0
	for _, r := range n.Routers {
		c += r.wiring().outOccupancy() + r.Buffered()
	}
	return c
}

// OnLinks counts only the flits currently travelling on links, excluding
// buffered ones. For a bufferless network OnLinks == InFlight.
func (n *Network) OnLinks() int {
	c := 0
	for _, r := range n.Routers {
		c += r.wiring().outOccupancy()
	}
	return c
}

// BufferedNow sums the flits currently stored inside all switches.
func (n *Network) BufferedNow() int {
	c := 0
	for _, r := range n.Routers {
		c += r.Buffered()
	}
	return c
}

// PeakBuffer returns the worst per-switch buffer occupancy observed over
// the run, i.e. the minimum per-switch storage a real implementation of
// this router would have needed. Always 0 for bufferless kinds.
func (n *Network) PeakBuffer() int {
	peak := 0
	for _, r := range n.Routers {
		if p := r.PeakBuffered(); p > peak {
			peak = p
		}
	}
	return peak
}

// TotalDeflections sums deflections over all switches (0 for buffered
// kinds, which never deflect).
func (n *Network) TotalDeflections() int64 {
	var c int64
	for _, r := range n.Routers {
		c += r.Deflections()
	}
	return c
}

func (n *Network) noteInjected() { n.Stats.Injected.Inc() }

func (n *Network) noteDelivered(f flit.Flit, now int64) {
	n.Stats.Delivered.Inc()
	n.Stats.Latency.Observe(float64(now - f.Meta.InjectCycle))
	n.Stats.Hops.Observe(float64(f.Meta.Hops))
	n.Stats.Deflects.Observe(float64(f.Meta.Deflections))
	if n.Stats.LatencySample != nil {
		n.Stats.LatencySample.Observe(float64(now - f.Meta.InjectCycle))
	}
}
