package noc

import (
	"context"
	"reflect"
	"testing"
)

func svcConfig() ServiceMeasureConfig {
	return ServiceMeasureConfig{
		Router:      RouterDeflection,
		Servers:     4,
		ArrivalRate: 0.05,
		ThinkTime:   5,
		Measure:     4000,
		Seed:        3,
	}
}

func mustTorus(t *testing.T) Topology {
	t.Helper()
	topo, err := NewTopologyOfKind(TopoTorus, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestServiceRequestConservation: with no warmup, every issued request is
// either completed or still in flight when the window ends — exactly.
// Throttled arrivals never enter the pending set, so they are excluded on
// both sides of the ledger.
func TestServiceRequestConservation(t *testing.T) {
	topo := mustTorus(t)
	for _, sc := range []ServiceMeasureConfig{
		svcConfig(),
		{Router: RouterDeflection, Servers: 1, ArrivalRate: 0.2, ThinkTime: 20, Measure: 3000, Seed: 9, QueueCap: 4},
		{Router: RouterXY, Servers: 4, ArrivalRate: 0.1, ThinkTime: 2, ResponseFlits: 3, HotspotSkew: 0.5, Measure: 3000, Seed: 5},
	} {
		m, err := MeasureServiceCtx(context.Background(), topo, sc)
		if err != nil {
			t.Fatal(err)
		}
		if m.Issued == 0 {
			t.Errorf("%+v: no requests issued", sc)
		}
		if m.Issued != m.Completed+m.InFlight {
			t.Errorf("conservation violated: issued %d != completed %d + in-flight %d",
				m.Issued, m.Completed, m.InFlight)
		}
		if m.Completed == 0 {
			t.Errorf("%+v: nothing completed in %d cycles", sc, sc.Measure)
		}
	}
}

// TestServiceBreakdownSums: per completed request, the four breakdown
// components sum exactly to the end-to-end latency (they are differences
// of the same five stamps), and every stamp is set and ordered.
func TestServiceBreakdownSums(t *testing.T) {
	topo := mustTorus(t)
	sc := svcConfig()
	rig := buildServiceRig(topo, sc)
	var seen int
	rig.board.onComplete = func(r svcRequest) {
		seen++
		for name, v := range map[string]int64{
			"create": r.create, "inject": r.inject, "arrive": r.arrive,
			"respInject": r.respInject, "done": r.done,
		} {
			if v < 0 {
				t.Fatalf("completed request has unset %s stamp: %+v", name, r)
			}
		}
		if !(r.create <= r.inject && r.inject < r.arrive && r.arrive <= r.respInject && r.respInject < r.done) {
			t.Fatalf("stamps out of order: %+v", r)
		}
		e2e := r.done - r.create
		sum := (r.inject - r.create) + (r.arrive - r.inject) + (r.respInject - r.arrive) + (r.done - r.respInject)
		if sum != e2e {
			t.Fatalf("breakdown sum %d != end-to-end %d: %+v", sum, e2e, r)
		}
	}
	if _, err := rig.window(context.Background(), topo, sc); err != nil {
		t.Fatal(err)
	}
	if seen == 0 {
		t.Fatal("no requests completed; the property was never exercised")
	}
	// The aggregate means must agree too (same stamps, same arithmetic).
	m, err := MeasureServiceCtx(context.Background(), topo, sc)
	if err != nil {
		t.Fatal(err)
	}
	if sum := m.MeanQueue + m.MeanNetOut + m.MeanServer + m.MeanNetBack; !approxEq(sum, m.MeanLatency) {
		t.Errorf("mean breakdown %.6f != mean latency %.6f", sum, m.MeanLatency)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestServiceDeterminismPerSeed: the same configuration and seed produce
// identical measurements run to run (run under -race in CI: the rig is
// single-threaded per point by construction).
func TestServiceDeterminismPerSeed(t *testing.T) {
	topo := mustTorus(t)
	for _, seed := range []int64{1, 7, 42} {
		sc := svcConfig()
		sc.Seed = seed
		sc.HotspotSkew = 0.3
		sc.Burst = &BurstConfig{MeanOn: 10, MeanOff: 30}
		first, err := MeasureServiceCtx(context.Background(), topo, sc)
		if err != nil {
			t.Fatal(err)
		}
		again, err := MeasureServiceCtx(context.Background(), topo, sc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Errorf("seed %d: runs differ:\n%+v\nvs\n%+v", seed, first, again)
		}
	}
	// Different seeds should not coincide (they draw different traffic).
	a, err := MeasureServiceCtx(context.Background(), topo, svcConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := svcConfig()
	sc.Seed = 99
	b, err := MeasureServiceCtx(context.Background(), topo, sc)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Error("seeds 3 and 99 produced identical measurements")
	}
}

// TestServiceHotspotShape: skewing requests toward one server must raise
// the server-side p99 over the uniform placement — the queueing-theory
// shape the S-2 ablation plots.
func TestServiceHotspotShape(t *testing.T) {
	topo := mustTorus(t)
	base := ServiceMeasureConfig{
		Router:      RouterDeflection,
		Servers:     4,
		ArrivalRate: 0.02,
		ThinkTime:   10,
		Measure:     6000,
		Seed:        3,
	}
	uniform := base
	uniform.HotspotSkew = 0
	skewed := base
	skewed.HotspotSkew = 0.9
	mu, err := MeasureServiceCtx(context.Background(), topo, uniform)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := MeasureServiceCtx(context.Background(), topo, skewed)
	if err != nil {
		t.Fatal(err)
	}
	if ms.P99Server <= mu.P99Server {
		t.Errorf("hotspot skew 0.9 p99 server %.0f <= uniform %.0f; skew should pile work on one server",
			ms.P99Server, mu.P99Server)
	}
}

// TestServiceValidation: impossible service configurations are rejected
// with the reason named.
func TestServiceValidation(t *testing.T) {
	topo := mustTorus(t)
	ctx := context.Background()
	for name, mut := range map[string]func(*ServiceMeasureConfig){
		"no-servers":   func(sc *ServiceMeasureConfig) { sc.Servers = 0 },
		"all-servers":  func(sc *ServiceMeasureConfig) { sc.Servers = 16 },
		"bad-rate":     func(sc *ServiceMeasureConfig) { sc.ArrivalRate = 1.5 },
		"bad-skew":     func(sc *ServiceMeasureConfig) { sc.HotspotSkew = -0.1 },
		"neg-think":    func(sc *ServiceMeasureConfig) { sc.ThinkTime = -1 },
		"zero-measure": func(sc *ServiceMeasureConfig) { sc.Measure = 0 },
	} {
		sc := svcConfig()
		mut(&sc)
		if _, err := MeasureServiceCtx(ctx, topo, sc); err == nil {
			t.Errorf("%s: accepted %+v", name, sc)
		}
	}
}
