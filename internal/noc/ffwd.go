package noc

// Fast-forward and checkpoint capabilities of the switches and the cmesh
// concentrator (see internal/sim/ffwd.go and internal/sim/snapshot.go for
// the engine-side contracts; the traffic nodes' pre-drawn gating lives in
// traffic.go).
//
// What "idle" means per router kind:
//
//   - Deflection and adaptive switches store nothing between cycles, so
//     with no flit on any link (the engine's quiet precondition) and no
//     source reporting pending work they are fully passive: NoEvent.
//   - The XY switch is passive when its input queues are empty; its
//     round-robin pointer advances every cycle regardless, so skipped
//     cycles compensate it in Skipped.
//   - The wormhole switch is passive only when its buffers are empty AND
//     no returned credit is awaiting collection: a pending credit folds on
//     a parity the next Step derives from the clock, so skipping over one
//     would fold it on the wrong cycle.
//   - The concentrator is passive unless its output latch is occupied
//     (the switch must drain it); endpoints with queued flits keep the
//     engine ticking by themselves (TrafficNode.NextEvent returns now).

import (
	"repro/internal/flit"
	"repro/internal/queue"
	"repro/internal/sim"
)

// pendingReporter is the optional LocalPort capability the switches' idle
// detection relies on: the current source-queue occupancy. TrafficNode and
// the concentrator implement it; an attached port that does not (a test
// stub, say) makes its switch veto every skip — fast-forward silently
// degrades to plain ticking rather than risking an unserved injection.
type pendingReporter interface{ Pending() int }

// portIdle reports whether the local port provably has nothing to inject.
func portIdle(p LocalPort) bool {
	if p == nil {
		return true
	}
	pr, ok := p.(pendingReporter)
	return ok && pr.Pending() == 0
}

// NextEvent implements sim.NextEventer; the bufferless deflection switch
// holds no state across cycles, so it is passive whenever its local port
// provably has nothing to inject.
func (s *DeflSwitch) NextEvent(now int64) int64 {
	if !portIdle(s.local) {
		return now
	}
	return sim.NoEvent
}

// Snapshot implements sim.Checkpointable.
func (s *DeflSwitch) Snapshot() any { return s.Stats }

// Restore implements sim.Checkpointable.
func (s *DeflSwitch) Restore(snap any) { s.Stats = snap.(SwitchStats) }

// NextEvent implements sim.NextEventer; the adaptive switch is bufferless
// like the deflection switch.
func (s *AdaptiveSwitch) NextEvent(now int64) int64 {
	if !portIdle(s.local) {
		return now
	}
	return sim.NoEvent
}

// Snapshot implements sim.Checkpointable.
func (s *AdaptiveSwitch) Snapshot() any { return s.Stats }

// Restore implements sim.Checkpointable.
func (s *AdaptiveSwitch) Restore(snap any) { s.Stats = snap.(SwitchStats) }

// NextEvent implements sim.NextEventer: buffered flits mean work every
// cycle; empty queues mean fully passive.
func (s *XYSwitch) NextEvent(now int64) int64 {
	if s.buffered > 0 || !portIdle(s.local) {
		return now
	}
	return sim.NoEvent
}

// Skipped implements sim.Skipper: Step advances the round-robin pointer
// unconditionally every cycle, including idle ones, so skipped cycles must
// advance it by exactly the same amount.
func (s *XYSwitch) Skipped(from, to int64) {
	nq := len(s.queues)
	s.rrStart = (s.rrStart + int((to-from)%int64(nq))) % nq
}

// xySnap is the checkpointed state of an XYSwitch.
type xySnap struct {
	queues   [NumPorts + 1][]flit.Flit
	rrStart  int
	buffered int
	peakBuf  int
	stats    XYStats
}

// Snapshot implements sim.Checkpointable.
func (s *XYSwitch) Snapshot() any {
	snap := xySnap{rrStart: s.rrStart, buffered: s.buffered, peakBuf: s.peakBuf, stats: s.Stats}
	for q := range s.queues {
		if len(s.queues[q]) > 0 {
			snap.queues[q] = append([]flit.Flit(nil), s.queues[q]...)
		}
	}
	return snap
}

// Restore implements sim.Checkpointable.
func (s *XYSwitch) Restore(snap any) {
	sn := snap.(xySnap)
	for q := range s.queues {
		s.queues[q] = append(s.queues[q][:0], sn.queues[q]...)
	}
	s.rrStart, s.buffered, s.peakBuf, s.Stats = sn.rrStart, sn.buffered, sn.peakBuf, sn.stats
}

// NextEvent implements sim.NextEventer: the wormhole switch acts whenever
// it holds flits (input buffers or injection queue) or a returned credit
// is awaiting its parity-scheduled collection.
func (s *WormholeSwitch) NextEvent(now int64) int64 {
	if s.buffered > 0 || !portIdle(s.local) {
		return now
	}
	for par := range s.pending {
		for p := range s.pending[par] {
			for v := range s.pending[par][p] {
				if s.pending[par][p][v] != 0 {
					return now
				}
			}
		}
	}
	return sim.NoEvent
}

// whSnap is the checkpointed state of a WormholeSwitch.
type whSnap struct {
	bufs      [NumPorts][WormholeVCs]fifoSnap
	injQ      fifoSnap
	credits   [NumPorts][WormholeVCs]int
	pending   [2][NumPorts][WormholeVCs]int
	buffered  int
	peakBuf   int
	minCredit int
	stats     WormholeStats
}

type fifoSnap = queue.Snap[flit.Flit]

// Snapshot implements sim.Checkpointable.
func (s *WormholeSwitch) Snapshot() any {
	snap := whSnap{
		credits: s.credits, pending: s.pending,
		buffered: s.buffered, peakBuf: s.peakBuf, minCredit: s.minCredit,
		stats: s.Stats,
		injQ:  s.injQ.Snapshot(),
	}
	for p := range s.bufs {
		for v := range s.bufs[p] {
			snap.bufs[p][v] = s.bufs[p][v].Snapshot()
		}
	}
	return snap
}

// Restore implements sim.Checkpointable.
func (s *WormholeSwitch) Restore(snap any) {
	sn := snap.(whSnap)
	for p := range s.bufs {
		for v := range s.bufs[p] {
			s.bufs[p][v].Restore(sn.bufs[p][v])
		}
	}
	s.injQ.Restore(sn.injQ)
	s.credits, s.pending = sn.credits, sn.pending
	s.buffered, s.peakBuf, s.minCredit = sn.buffered, sn.peakBuf, sn.minCredit
	s.Stats = sn.stats
}

// NextEvent implements sim.NextEventer: an occupied latch means the switch
// must step to drain it; an empty latch with idle endpoints means nothing
// to multiplex (endpoints holding flits report now themselves).
func (c *concentrator) NextEvent(now int64) int64 {
	if c.hasLatch {
		return now
	}
	for _, ep := range c.eps {
		if !portIdle(ep) {
			return now
		}
	}
	return sim.NoEvent
}

// Pending implements the pendingReporter probe for the owning switch: the
// concentrator is the switch's local port on concentrated topologies, and
// its injectable backlog is the latch.
func (c *concentrator) Pending() int {
	if c.hasLatch {
		return 1
	}
	return 0
}

// concSnap is the checkpointed state of a concentrator.
type concSnap struct {
	rr          int
	latch       flit.Flit
	hasLatch    bool
	turnarounds int64
}

// Snapshot implements sim.Checkpointable.
func (c *concentrator) Snapshot() any {
	return concSnap{rr: c.rr, latch: c.latch, hasLatch: c.hasLatch, turnarounds: c.turnarounds}
}

// Restore implements sim.Checkpointable.
func (c *concentrator) Restore(snap any) {
	sn := snap.(concSnap)
	c.rr, c.latch, c.hasLatch, c.turnarounds = sn.rr, sn.latch, sn.hasLatch, sn.turnarounds
}
