package pe

// CostModel holds the operation latencies of the modelled core. The
// floating-point costs are the paper's numbers for the Tensilica
// double-precision emulation acceleration: adds/subtracts average 19
// cycles; multiplies average 26 cycles on a configuration with the
// "Multiply High" option (60 cycles without it).
type CostModel struct {
	IntOp       int64 // simple ALU operation / loop bookkeeping
	FPAdd       int64 // double-precision add or subtract
	FPMul       int64 // double-precision multiply
	CacheHit    int64 // L1 hit (load or store)
	RecvPerWord int64 // copying one received word out of the double buffer
}

// DefaultCost is the cost model used by all experiments.
var DefaultCost = CostModel{
	IntOp:       1,
	FPAdd:       19,
	FPMul:       26,
	CacheHit:    1,
	RecvPerWord: 1,
}

// MulHighOff returns the cost model for a core without the Multiply High
// option (60-cycle multiplies), used by the ablation benchmarks.
func MulHighOff() CostModel {
	c := DefaultCost
	c.FPMul = 60
	return c
}
