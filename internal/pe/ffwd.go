package pe

import "repro/internal/sim"

// NextEvent implements sim.NextEventer. The core's per-cycle obligations
// are its own state machine plus the two transmit paths it clocks from
// Step (the TIE send port and the bridge), so it can only be skipped when
// all three are provably idle:
//
//   - a halted core does nothing;
//   - a computing core (stBusy) next acts at busyUntil, and every skipped
//     cycle is a stall cycle (see Skipped);
//   - a core waiting on the bridge or on a message is passive until the
//     reply or packet is present — arrival happens inside a switch tick,
//     which the engine never skips over (in-flight flits keep their
//     switches, queues and link registers busy);
//   - fetching, sending, or a completed-but-unconsumed bridge transaction
//     mean work this very cycle.
func (p *Proc) NextEvent(now int64) int64 {
	if p.Port.SendBusy() || p.Bridge.Sending() {
		return now
	}
	switch p.st {
	case stHalted:
		return sim.NoEvent
	case stBusy:
		return p.busyUntil
	case stBridge:
		if p.Bridge.Completed() {
			return now
		}
		return sim.NoEvent
	case stReceiving:
		if p.pending.kind == opRecvAny {
			if p.Port.HasRecvAny(p.pending.class) {
				return now
			}
		} else if p.Port.HasRecv(p.pending.src, p.pending.class) {
			return now
		}
		return sim.NoEvent
	}
	return now // stNeedOp, stSending
}

// Skipped implements sim.Skipper: every cycle Step would have spent
// waiting (on a compute burst, the bridge, or a receive) counts as a
// stall cycle exactly as if it had been ticked.
func (p *Proc) Skipped(from, to int64) {
	switch p.st {
	case stBusy, stBridge, stReceiving:
		p.Stats.StallCycles.Add(to - from)
	}
}
