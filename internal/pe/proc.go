// Package pe models a MEDEA processing element: a simple in-order RISC-type
// core (the paper's Tensilica Xtensa-LX) with an L1 data cache, a pif2NoC
// bridge for shared-memory transactions, and a TIE message-passing port.
//
// Instead of an ISA interpreter, the core executes an abstract operation
// stream — compute bursts, loads/stores, cache control, lock/unlock, send/
// receive — with the latencies of the paper's cost model. Application code
// is ordinary Go running in one goroutine per core against the Env API;
// a strictly synchronous rendezvous keeps the simulation deterministic.
package pe

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/bridge"
	"repro/internal/cache"
	"repro/internal/stats"
	"repro/internal/tie"
)

type opKind int

const (
	opCompute opKind = iota
	opLoad
	opStore
	opLoadU
	opStoreU
	opFlush
	opInval
	opLock
	opUnlock
	opSend
	opRecv
	opRecvAny
	opHalt
)

type op struct {
	kind   opKind
	cycles int64
	addr   uint32
	size   int // 4 or 8 bytes
	value  uint64
	dst    int
	src    int
	class  tie.Class
	words  []uint32
}

type result struct {
	value uint64
	pkt   tie.Packet
	// aborted poisons the result: the program goroutine unwinds via
	// errProgramAborted instead of consuming it (see Proc.Abort).
	aborted bool
}

// errProgramAborted is the sentinel the Env API panics with when the core
// aborts its program (run canceled, budget exhausted, or a sibling core
// failed). Launch's recovery wrapper swallows it — an abort is a clean
// unwind, not a program failure.
var errProgramAborted = errors.New("pe: program aborted")

type procState int

const (
	stNeedOp procState = iota
	stBusy
	stBridge
	stSending
	stReceiving
	stHalted
)

// Stats counts per-core events.
type Stats struct {
	Ops           stats.Counter
	ComputeCycles stats.Counter
	MemOps        stats.Counter
	UncachedOps   stats.Counter
	Sends         stats.Counter
	Recvs         stats.Counter
	Locks         stats.Counter
	StallCycles   stats.Counter // cycles spent waiting on memory/NoC
}

// Proc is one processing element. It implements sim.Component; register it
// in sim.PhaseNode.
type Proc struct {
	ID   int // node id on the NoC
	Rank int // dense application rank (0..P-1)

	Cache  *cache.Cache
	Bridge *bridge.Bridge
	Port   *tie.Port
	Cost   CostModel

	opCh  chan op
	resCh chan result

	st        procState
	busyUntil int64
	pending   op
	stash     result
	seq       memSeq
	lastCycle int64
	finish    int64

	// progErr records why the program goroutine terminated abnormally: an
	// error passed to Env.Fail, or a recovered panic with its stack. It is
	// written by the program goroutine strictly before the final opHalt
	// rendezvous, so the simulation driver may read it once the core has
	// halted (Halted() true) without further synchronization.
	progErr error

	Stats Stats
}

// NewProc wires a processing element from its parts.
func NewProc(id, rank int, c *cache.Cache, b *bridge.Bridge, p *tie.Port, cost CostModel) *Proc {
	return &Proc{
		ID: id, Rank: rank,
		Cache: c, Bridge: b, Port: p, Cost: cost,
		opCh:  make(chan op),
		resCh: make(chan result),
		st:    stHalted, // until a program is launched
	}
}

// Name implements sim.Component.
func (p *Proc) Name() string { return fmt.Sprintf("pe%d", p.ID) }

// Program is the application code run by a core.
type Program func(env *Env)

// Launch starts the program goroutine. The core begins fetching operations
// on the next cycle. Call once per run.
//
// The goroutine is panic-isolated: a panic in program code is recovered,
// recorded (readable through ProgramErr once the core halts) and converted
// into a normal halt, so one faulty kernel fails its own run instead of
// taking down the whole process — essential when many simulations share a
// long-running server.
func (p *Proc) Launch(prog Program) {
	if p.st != stHalted {
		panic("pe: program already running")
	}
	p.progErr = nil
	p.st = stNeedOp
	go func() {
		defer func() {
			if r := recover(); r != nil && !isAbort(r) {
				p.progErr = fmt.Errorf("pe: program on core %d (rank %d) panicked: %v\n%s",
					p.ID, p.Rank, r, debug.Stack())
			}
			// Always complete the halt rendezvous, even after a panic or
			// abort: the engine side (fetchOp or Abort) is blocked on it.
			p.opCh <- op{kind: opHalt}
		}()
		env := &Env{p: p}
		prog(env)
	}()
}

// isAbort reports whether a recovered value is the clean-abort sentinel
// (raised by Env.issue on a poisoned result or by Env.Fail).
func isAbort(r any) bool {
	err, ok := r.(error)
	return ok && errors.Is(err, errProgramAborted)
}

// Halted reports whether the program has finished.
func (p *Proc) Halted() bool { return p.st == stHalted }

// ProgramErr returns the error the program terminated with: an Env.Fail
// error, a recovered panic, or nil for a clean finish. Only meaningful —
// and only safe to read — once Halted() reports true.
func (p *Proc) ProgramErr() error { return p.progErr }

// Abort terminates a launched program that has not halted: it poisons the
// rendezvous protocol so the program goroutine unwinds (every blocked or
// future Env call panics with the abort sentinel, which Launch's wrapper
// recovers) and returns once the goroutine has reached its halt handshake.
// Call it from the simulation driver after abandoning a run (cancellation,
// cycle-budget exhaustion, a failed sibling core) so canceled jobs do not
// leak program goroutines. The core is left halted; the Proc must not be
// stepped again afterwards.
func (p *Proc) Abort() {
	if p.st == stHalted {
		return
	}
	// Unless the core is still waiting for the program's first operation,
	// an operation is pending and the program goroutine is blocked on its
	// result; poison it to start the unwind.
	if p.st != stNeedOp {
		p.resCh <- result{aborted: true}
	}
	// Drain the protocol until the goroutine's deferred halt arrives. A
	// program that ignores the first poisoned result (e.g. application
	// code recovered our sentinel) keeps issuing ops; keep poisoning.
	for {
		o := <-p.opCh
		if o.kind == opHalt {
			p.st = stHalted
			return
		}
		p.resCh <- result{aborted: true}
	}
}

// FinishCycle returns the cycle at which the program halted.
func (p *Proc) FinishCycle() int64 { return p.finish }

// Step implements sim.Component.
func (p *Proc) Step(now int64) {
	// Feed the transmit paths first so a flit can leave this cycle.
	p.Port.StepSend(now)
	p.Bridge.Step(now)

	switch p.st {
	case stHalted:
		return
	case stNeedOp:
		p.fetchOp(now)
	case stBusy:
		if now >= p.busyUntil {
			p.complete(now)
		} else {
			p.Stats.StallCycles.Inc()
		}
	case stBridge:
		res, ok := p.Bridge.Done()
		if !ok {
			p.Stats.StallCycles.Inc()
			return
		}
		p.seq.results = append(p.seq.results, res.Data)
		p.advanceSeq(now)
	case stSending:
		if p.Port.SendBusy() {
			p.Stats.StallCycles.Inc()
			return
		}
		p.complete(now)
	case stReceiving:
		var pkt tie.Packet
		var ok bool
		if p.pending.kind == opRecvAny {
			pkt, ok = p.Port.TryRecvAny(p.pending.class)
		} else {
			pkt, ok = p.Port.TryRecv(p.pending.src, p.pending.class)
		}
		if !ok {
			p.Stats.StallCycles.Inc()
			return
		}
		p.stash = result{pkt: pkt}
		p.becomeBusy(now, 1+int64(len(pkt.Words))*p.Cost.RecvPerWord)
	}
}

// fetchOp performs the synchronous rendezvous with the program goroutine
// and starts the next operation. The receive blocks at most for the time
// the program needs to compute its next operation, which preserves
// determinism: the simulator owns the only scheduling decision.
func (p *Proc) fetchOp(now int64) {
	o := <-p.opCh
	p.Stats.Ops.Inc()
	p.pending = o
	switch o.kind {
	case opHalt:
		p.st = stHalted
		p.finish = now
	case opCompute:
		n := o.cycles
		if n < 1 {
			n = 1
		}
		p.Stats.ComputeCycles.Add(n)
		p.becomeBusy(now, n)
	case opSend:
		p.Stats.Sends.Inc()
		if err := p.Port.StartSend(o.dst, o.class, o.words, now); err != nil {
			panic(err)
		}
		p.st = stSending
	case opRecv, opRecvAny:
		p.Stats.Recvs.Inc()
		p.st = stReceiving
	case opLock, opUnlock:
		p.Stats.Locks.Inc()
		p.startSeq(p.lockSeq(o), now)
	case opLoad, opStore:
		p.Stats.MemOps.Inc()
		p.startCached(o, now)
	case opLoadU, opStoreU, opFlush, opInval:
		p.Stats.MemOps.Inc()
		p.startSeq(p.memSeqFor(o), now)
	default:
		panic("pe: unknown op")
	}
}

func (p *Proc) becomeBusy(now, cycles int64) {
	if cycles < 1 {
		cycles = 1
	}
	p.busyUntil = now + cycles
	p.st = stBusy
}

// complete hands the stashed result to the program and immediately fetches
// the next operation, so back-to-back operations lose no cycles.
func (p *Proc) complete(now int64) {
	p.lastCycle = now
	res := p.stash
	p.stash = result{}
	p.resCh <- res
	p.st = stNeedOp
	p.fetchOp(now)
}

// startSeq begins a memory micro-sequence: zero or more bridge
// transactions followed by a finishing action.
func (p *Proc) startSeq(s memSeq, now int64) {
	p.seq = s
	p.seq.results = p.seq.results[:0]
	p.advanceSeq(now)
}

func (p *Proc) advanceSeq(now int64) {
	if len(p.seq.txns) > 0 {
		t := p.seq.txns[0]
		p.seq.txns = p.seq.txns[1:]
		p.Bridge.Start(t, now)
		p.st = stBridge
		return
	}
	extra := int64(1)
	if p.seq.finish != nil {
		p.stash, extra = p.seq.finish(p.seq.results)
	}
	p.becomeBusy(now, extra)
}
