package pe

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bridge"
	"repro/internal/cache"
)

// memSeq is a micro-sequence implementing one architectural memory
// operation: zero or more bridge transactions executed in order, then a
// finishing action that updates the cache and produces the result plus the
// final core-side latency (typically the L1 access cycle).
type memSeq struct {
	txns    []bridge.Txn
	finish  func(results [][]uint32) (result, int64)
	results [][]uint32
}

func (p *Proc) lockSeq(o op) memSeq {
	kind := bridge.TxnLock
	if o.kind == opUnlock {
		kind = bridge.TxnUnlock
	}
	return memSeq{
		txns: []bridge.Txn{{Kind: kind, Addr: o.addr}},
	}
}

// memSeqFor plans the transactions for a load/store/flush/invalidate.
// Planning happens when the operation starts; since the core is blocking
// and in-order, cache state cannot change underneath the plan.
func (p *Proc) memSeqFor(o op) memSeq {
	switch o.kind {
	case opFlush:
		// Software cache flush: write the dirty line back to system
		// memory so producer-side coherency holds (paper §II-E).
		var buf [cache.LineBytes]byte
		if !p.Cache.FlushLineInto(o.addr, buf[:]) {
			return memSeq{}
		}
		return memSeq{txns: []bridge.Txn{{
			Kind: bridge.TxnBlockWrite,
			Addr: cache.LineAddr(o.addr),
			Data: wordsOf(buf[:]),
		}}}
	case opInval:
		// The DII instruction: drop the line so the next access fetches
		// from system memory (consumer-side coherency).
		p.Cache.InvalidateLine(o.addr)
		return memSeq{}
	case opLoadU:
		return p.uncachedLoad(o)
	case opStoreU:
		return memSeq{txns: p.storeThroughTxns(o.addr, o.size, o.value)}
	}
	panic("pe: not a memory op")
}

// startCached dispatches a cached load/store. Hits complete without
// building a transaction plan (the simulator's hottest path); misses fall
// through to the micro-sequence machinery.
func (p *Proc) startCached(o op, now int64) {
	checkAlign(o.addr, o.size)
	if p.Cache.Lookup(o.addr) {
		if o.kind == opLoad {
			p.stash = result{value: p.readCache(o.addr, o.size)}
			p.becomeBusy(now, p.Cost.CacheHit)
			return
		}
		// Store hit: update the line; write-through additionally sends
		// the store to system memory and the core stalls for the
		// protocol round trips (no store buffer, as in the paper's
		// simple core).
		p.writeCache(o.addr, o.size, o.value)
		if p.Cache.Policy() == cache.WriteThrough {
			p.startSeq(memSeq{txns: p.storeThroughTxns(o.addr, o.size, o.value)}, now)
			return
		}
		p.becomeBusy(now, p.Cost.CacheHit)
		return
	}
	p.startSeq(p.cachedMiss(o), now)
}

func (p *Proc) uncachedLoad(o op) memSeq {
	p.Stats.UncachedOps.Inc()
	txns := []bridge.Txn{{Kind: bridge.TxnSingleRead, Addr: o.addr}}
	if o.size == 8 {
		txns = append(txns, bridge.Txn{Kind: bridge.TxnSingleRead, Addr: o.addr + 4})
	}
	return memSeq{
		txns: txns,
		finish: func(results [][]uint32) (result, int64) {
			v := uint64(results[0][0])
			if o.size == 8 {
				v |= uint64(results[1][0]) << 32
			}
			return result{value: v}, 1
		},
	}
}

// storeThroughTxns emits the single-write transactions of an uncached or
// write-through store (one per 32-bit word).
func (p *Proc) storeThroughTxns(addr uint32, size int, value uint64) []bridge.Txn {
	p.Stats.UncachedOps.Inc()
	txns := []bridge.Txn{{Kind: bridge.TxnSingleWrite, Addr: addr, Data: []uint32{uint32(value)}}}
	if size == 8 {
		txns = append(txns, bridge.Txn{
			Kind: bridge.TxnSingleWrite, Addr: addr + 4, Data: []uint32{uint32(value >> 32)},
		})
	}
	return txns
}

// cachedMiss plans the transactions for a load/store miss; the lookup has
// already been performed (and counted) by startCached.
func (p *Proc) cachedMiss(o op) memSeq {
	line := cache.LineAddr(o.addr)
	wb := p.Cache.Policy() == cache.WriteBack
	if !wb && o.kind == opStore {
		// Write-through, write-no-allocate: a store miss goes straight
		// to system memory.
		return memSeq{txns: p.storeThroughTxns(o.addr, o.size, o.value)}
	}

	var txns []bridge.Txn
	if wb {
		var buf [cache.LineBytes]byte
		if vaddr, needsWB := p.Cache.VictimInto(line, buf[:]); needsWB {
			txns = append(txns, bridge.Txn{
				Kind: bridge.TxnBlockWrite, Addr: vaddr, Data: wordsOf(buf[:]),
			})
		}
	}
	txns = append(txns, bridge.Txn{Kind: bridge.TxnBlockRead, Addr: line})
	return memSeq{
		txns: txns,
		finish: func(results [][]uint32) (result, int64) {
			fill := results[len(results)-1]
			p.Cache.Fill(line, bytesOf(fill))
			switch o.kind {
			case opLoad:
				return result{value: p.readCache(o.addr, o.size)}, p.Cost.CacheHit
			case opStore:
				p.writeCache(o.addr, o.size, o.value)
				if !wb {
					// Unreachable: WT store misses never allocate.
					panic("pe: write-through store allocated")
				}
				return result{}, p.Cost.CacheHit
			}
			panic("pe: bad cached op")
		},
	}
}

func (p *Proc) readCache(addr uint32, size int) uint64 {
	return p.Cache.ReadUint(addr, size)
}

func (p *Proc) writeCache(addr uint32, size int, v uint64) {
	p.Cache.WriteUint(addr, size, v)
}

func checkAlign(addr uint32, size int) {
	if size != 4 && size != 8 {
		panic(fmt.Sprintf("pe: unsupported access size %d", size))
	}
	if addr%uint32(size) != 0 {
		panic(fmt.Sprintf("pe: unaligned %d-byte access at %#x", size, addr))
	}
}

func wordsOf(b []byte) []uint32 {
	if len(b)%4 != 0 {
		panic("pe: byte slice not word-aligned")
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func bytesOf(words []uint32) []byte {
	out := make([]byte, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(out[4*i:], w)
	}
	return out
}
