package pe

import (
	"fmt"
	"math"

	"repro/internal/tie"
)

// Env is the API application programs use to run on a core. Every method
// is blocking, mirroring the in-order core: the calling goroutine resumes
// when the operation completes in simulated time.
//
// Loads and stores move real bytes through the simulated memory hierarchy,
// so programs compute real results while accumulating accurate timing.
type Env struct {
	p *Proc
}

func (e *Env) issue(o op) result {
	e.p.opCh <- o
	res := <-e.p.resCh
	if res.aborted {
		// The core aborted this program (see Proc.Abort): unwind the
		// goroutine through the recovery wrapper installed by Launch.
		panic(errProgramAborted)
	}
	return res
}

// Fail terminates the calling program with err: the error is recorded on
// the core (readable through Proc.ProgramErr once halted) and the program
// goroutine unwinds immediately. It is the structured alternative to
// panicking inside kernel code for conditions detected at run time — a
// failed program halts its own core and fails its own simulation instead
// of crashing the process. Fail never returns.
func (e *Env) Fail(err error) {
	if err == nil {
		err = errProgramAborted
	}
	e.p.progErr = err
	panic(fmt.Errorf("%w: %v", errProgramAborted, err))
}

// NodeID returns the core's NoC node id.
func (e *Env) NodeID() int { return e.p.ID }

// Rank returns the core's dense application rank.
func (e *Env) Rank() int { return e.p.Rank }

// Now returns the simulation cycle at which the previous operation
// completed.
func (e *Env) Now() int64 { return e.p.lastCycle }

// Cost returns the core's cost model, for programs that charge explicit
// compute time.
func (e *Env) Cost() CostModel { return e.p.Cost }

// Compute occupies the core for the given number of cycles (minimum 1).
func (e *Env) Compute(cycles int64) {
	e.issue(op{kind: opCompute, cycles: cycles})
}

// ComputeFP occupies the core for the time of the given number of
// double-precision adds and multiplies plus simple integer operations.
func (e *Env) ComputeFP(adds, muls, intOps int) {
	c := e.p.Cost
	e.Compute(int64(adds)*c.FPAdd + int64(muls)*c.FPMul + int64(intOps)*c.IntOp)
}

// LoadWord loads a 32-bit word through the L1 cache.
func (e *Env) LoadWord(addr uint32) uint32 {
	return uint32(e.issue(op{kind: opLoad, addr: addr, size: 4}).value)
}

// StoreWord stores a 32-bit word through the L1 cache.
func (e *Env) StoreWord(addr uint32, v uint32) {
	e.issue(op{kind: opStore, addr: addr, size: 4, value: uint64(v)})
}

// LoadDouble loads an 8-byte IEEE-754 double through the L1 cache.
// addr must be 8-aligned.
func (e *Env) LoadDouble(addr uint32) float64 {
	return math.Float64frombits(e.issue(op{kind: opLoad, addr: addr, size: 8}).value)
}

// StoreDouble stores an 8-byte IEEE-754 double through the L1 cache.
func (e *Env) StoreDouble(addr uint32, v float64) {
	e.issue(op{kind: opStore, addr: addr, size: 8, value: math.Float64bits(v)})
}

// LoadWordUncached bypasses the cache with a single-read transaction, the
// access mode the paper recommends for frequently-updated shared data.
func (e *Env) LoadWordUncached(addr uint32) uint32 {
	return uint32(e.issue(op{kind: opLoadU, addr: addr, size: 4}).value)
}

// StoreWordUncached bypasses the cache with a single-write transaction.
func (e *Env) StoreWordUncached(addr uint32, v uint32) {
	e.issue(op{kind: opStoreU, addr: addr, size: 4, value: uint64(v)})
}

// LoadDoubleUncached loads an 8-byte double with two single-read
// transactions.
func (e *Env) LoadDoubleUncached(addr uint32) float64 {
	return math.Float64frombits(e.issue(op{kind: opLoadU, addr: addr, size: 8}).value)
}

// StoreDoubleUncached stores an 8-byte double with two single-write
// transactions.
func (e *Env) StoreDoubleUncached(addr uint32, v float64) {
	e.issue(op{kind: opStoreU, addr: addr, size: 8, value: math.Float64bits(v)})
}

// FlushLine writes the cache line containing addr back to system memory if
// it is dirty (producer-side software coherency).
func (e *Env) FlushLine(addr uint32) {
	e.issue(op{kind: opFlush, addr: addr})
}

// InvalidateLine drops the cache line containing addr (the DII
// instruction; consumer-side software coherency).
func (e *Env) InvalidateLine(addr uint32) {
	e.issue(op{kind: opInval, addr: addr})
}

// Lock acquires the MPMMU lock on the shared-memory word at addr,
// blocking until granted.
func (e *Env) Lock(addr uint32) {
	e.issue(op{kind: opLock, addr: addr})
}

// Unlock releases the MPMMU lock on the shared-memory word at addr.
func (e *Env) Unlock(addr uint32) {
	e.issue(op{kind: opUnlock, addr: addr})
}

// Send transmits one logical packet (1..16 words) to the node dst over the
// TIE message-passing port. It returns when the last flit has entered the
// injection path (fire-and-forget, as in hardware).
func (e *Env) Send(dst int, class tie.Class, words []uint32) {
	w := make([]uint32, len(words))
	copy(w, words)
	e.issue(op{kind: opSend, dst: dst, class: class, words: w})
}

// Recv blocks until a logical packet of the given class from node src has
// been assembled and returns it. The payload is padded to the burst
// length; callers trim to their protocol's length.
func (e *Env) Recv(src int, class tie.Class) tie.Packet {
	return e.issue(op{kind: opRecv, src: src, class: class}).pkt
}

// RecvAny blocks until a logical packet of the given class from any node
// is available (lowest node id first for determinism).
func (e *Env) RecvAny(class tie.Class) tie.Packet {
	return e.issue(op{kind: opRecvAny, class: class}).pkt
}
