package pe

import (
	"testing"
	"testing/quick"
)

func TestDefaultCostMatchesPaper(t *testing.T) {
	// The paper: double-precision adds/subtracts average 19 cycles;
	// multiplies average 26 cycles with the Multiply High option.
	if DefaultCost.FPAdd != 19 {
		t.Errorf("FPAdd = %d, want 19", DefaultCost.FPAdd)
	}
	if DefaultCost.FPMul != 26 {
		t.Errorf("FPMul = %d, want 26", DefaultCost.FPMul)
	}
	if DefaultCost.CacheHit != 1 || DefaultCost.IntOp != 1 {
		t.Error("single-cycle hits and integer ops expected")
	}
}

func TestMulHighOff(t *testing.T) {
	// Without Multiply High the paper quotes 60-cycle multiplies.
	c := MulHighOff()
	if c.FPMul != 60 {
		t.Errorf("FPMul = %d, want 60", c.FPMul)
	}
	if c.FPAdd != DefaultCost.FPAdd {
		t.Error("other costs must be unchanged")
	}
}

func TestWordsBytesRoundTrip(t *testing.T) {
	words := []uint32{0x01020304, 0xA0B0C0D0, 0, 0xFFFFFFFF}
	b := bytesOf(words)
	if len(b) != 16 {
		t.Fatalf("bytesOf returned %d bytes", len(b))
	}
	back := wordsOf(b)
	for i := range words {
		if back[i] != words[i] {
			t.Fatalf("word %d: %#x != %#x", i, back[i], words[i])
		}
	}
}

func TestWordsBytesQuick(t *testing.T) {
	fn := func(words []uint32) bool {
		back := wordsOf(bytesOf(words))
		if len(back) != len(words) {
			return false
		}
		for i := range words {
			if back[i] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWordsOfRejectsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-word-multiple byte slice should panic")
		}
	}()
	wordsOf(make([]byte, 7))
}

func TestCheckAlign(t *testing.T) {
	// Legal cases must not panic.
	checkAlign(0x1000, 4)
	checkAlign(0x1008, 8)
	for _, c := range []struct {
		addr uint32
		size int
	}{{2, 4}, {4, 8}, {0, 3}, {0, 16}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("checkAlign(%#x, %d) should panic", c.addr, c.size)
				}
			}()
			checkAlign(c.addr, c.size)
		}()
	}
}
