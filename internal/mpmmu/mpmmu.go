// Package mpmmu implements the Multiprocessor Memory Management Unit: the
// special slave node that serves every shared-memory transaction in the
// system. It owns the DDR backing store, fronts it with a local cache, and
// runs the paper's Request/Data protocol: write requests are granted before
// data is accepted (an implicit flow-control scheme that keeps local
// buffers minimal) and read requests are answered immediately through the
// outgoing FIFO. Lock/unlock requests maintain a per-word lock table with
// FIFO waiters, providing the atomic sections the pure shared-memory
// programming model needs.
package mpmmu

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cache"
	"repro/internal/flit"
	"repro/internal/memory"
	"repro/internal/queue"
	"repro/internal/stats"
)

// Config parameterizes the MPMMU.
type Config struct {
	// NodeID is the MPMMU's position on the NoC.
	NodeID int
	// NumCores sizes the Pif-Request/Control queue ("as large as the
	// number of processors").
	NumCores int
	// CacheKB sizes the MPMMU's local data cache.
	CacheKB int
	// HitCycles is the local-cache hit latency.
	HitCycles int64
}

// DefaultConfig returns the MPMMU configuration used by the reproduction:
// a 32 kB local write-back cache with a 2-cycle hit latency.
func DefaultConfig(nodeID, numCores int) Config {
	return Config{NodeID: nodeID, NumCores: numCores, CacheKB: 32, HitCycles: 2}
}

// Stats counts MPMMU activity.
type Stats struct {
	SingleReads  stats.Counter
	SingleWrites stats.Counter
	BlockReads   stats.Counter
	BlockWrites  stats.Counter
	Locks        stats.Counter
	Unlocks      stats.Counter
	LockWaits    stats.Counter // lock requests that had to queue
	BusyCycles   stats.Counter
	ReqQPeak     int
	OutQPeak     int
}

type state int

const (
	stIdle    state = iota
	stBusy          // performing a memory access; done at busyUntil
	stCollect       // waiting for write data flits
)

type lockState struct {
	owner   int
	waiters []int
}

// Unit is the MPMMU node. It implements noc.LocalPort (TryPull/Deliver)
// and sim.Component (Step in sim.PhaseNode).
type Unit struct {
	cfg     Config
	coordOf func(node int) (x, y int)
	ddr     *memory.DDR
	cache   *cache.Cache

	reqQ  *queue.FIFO[flit.Flit]
	dataQ *queue.FIFO[flit.Flit]
	outQ  *queue.FIFO[flit.Flit]

	st        state
	busyUntil int64
	cur       flit.Flit // request being served
	curWords  int       // data words expected (writes)
	lineBuf   [4]uint32
	gotMask   uint8
	gotCount  int
	afterBusy func(now int64)

	// Scratch buffers for the per-request access path. The MPMMU serves
	// one request at a time, so a single set of buffers is safe and keeps
	// the busiest component in the system allocation-free.
	readBuf     [4]uint32
	lineScratch [cache.LineBytes]byte

	locks     map[uint32]*lockState
	nextPktID uint64

	Stats Stats
}

// New builds an MPMMU over the given DDR. coordOf maps node ids to torus
// coordinates for reply addressing.
func New(cfg Config, ddr *memory.DDR, coordOf func(int) (int, int)) (*Unit, error) {
	c, err := cache.New(cache.KB(cfg.CacheKB, cache.WriteBack))
	if err != nil {
		return nil, fmt.Errorf("mpmmu: %w", err)
	}
	if cfg.NumCores <= 0 {
		return nil, fmt.Errorf("mpmmu: need at least one core")
	}
	return &Unit{
		cfg:     cfg,
		coordOf: coordOf,
		ddr:     ddr,
		cache:   c,
		reqQ:    queue.NewFIFO[flit.Flit](cfg.NumCores),
		dataQ:   queue.NewFIFO[flit.Flit](flit.MaxLogicalPacket),
		outQ:    queue.NewFIFO[flit.Flit](0),
		locks:   make(map[uint32]*lockState),
	}, nil
}

// Cache exposes the local cache for statistics.
func (u *Unit) Cache() *cache.Cache { return u.cache }

// Name implements sim.Component.
func (u *Unit) Name() string { return "mpmmu" }

// Deliver implements noc.LocalPort: incoming flits are demultiplexed into
// the Pif-Request/Control queue (request tokens) and the Pif-Data queue
// (granted write data), as in the paper.
func (u *Unit) Deliver(f flit.Flit, now int64) {
	switch f.Sub {
	case flit.SubAddr:
		if !u.reqQ.Push(f) {
			// Each core has at most one outstanding request, so the
			// request queue (depth = number of cores) can never overflow.
			panic("mpmmu: request queue overflow")
		}
		if u.reqQ.Len() > u.Stats.ReqQPeak {
			u.Stats.ReqQPeak = u.reqQ.Len()
		}
	case flit.SubData:
		if !u.dataQ.Push(f) {
			// Data only arrives after a grant; the protocol bounds it to
			// one line.
			panic("mpmmu: data queue overflow")
		}
	default:
		panic(fmt.Sprintf("mpmmu: unexpected flit %v", f))
	}
}

// TryPull implements noc.LocalPort: the switch drains the outgoing FIFO at
// one flit per cycle.
func (u *Unit) TryPull() (flit.Flit, bool) {
	return u.outQ.Pop()
}

// Step implements sim.Component.
func (u *Unit) Step(now int64) {
	switch u.st {
	case stBusy:
		u.Stats.BusyCycles.Inc()
		if now >= u.busyUntil {
			fn := u.afterBusy
			u.afterBusy = nil
			u.st = stIdle
			fn(now)
		}
	case stCollect:
		u.collectData(now)
	case stIdle:
		u.startNext(now)
	}
}

func (u *Unit) startNext(now int64) {
	req, ok := u.reqQ.Pop()
	if !ok {
		return
	}
	u.cur = req
	switch req.Type {
	case flit.SingleRead:
		u.Stats.SingleReads.Inc()
		u.startRead(now, req.Data, 1)
	case flit.BlockRead:
		u.Stats.BlockReads.Inc()
		u.startRead(now, cache.LineAddr(req.Data), 4)
	case flit.SingleWrite:
		u.Stats.SingleWrites.Inc()
		u.startWrite(now, 1)
	case flit.BlockWrite:
		u.Stats.BlockWrites.Inc()
		u.startWrite(now, 4)
	case flit.Lock:
		u.Stats.Locks.Inc()
		u.handleLock(req)
	case flit.Unlock:
		u.Stats.Unlocks.Inc()
		u.handleUnlock(req)
	default:
		panic(fmt.Sprintf("mpmmu: unexpected request %v", req))
	}
}

// startRead performs the access and, after the access latency, pushes the
// reply data into the outgoing FIFO.
func (u *Unit) startRead(now int64, addr uint32, words int) {
	data, lat := u.readWords(addr, words)
	dst := int(u.cur.Src)
	u.becomeBusy(now, lat, func(int64) {
		code, _ := flit.EncodeBurst(flit.RoundUpBurst(words))
		if words == 1 {
			code = 0
		}
		for i := 0; i < words; i++ {
			u.pushOut(dst, u.cur.Type, flit.SubData, uint8(i), code, data[i], now+lat)
		}
	})
}

// startWrite grants the transaction and waits for the data flits.
func (u *Unit) startWrite(now int64, words int) {
	u.curWords = words
	u.gotMask, u.gotCount = 0, 0
	u.pushOut(int(u.cur.Src), u.cur.Type, flit.SubAck, 0, 0, 0, now)
	u.st = stCollect
}

func (u *Unit) collectData(now int64) {
	for {
		f, ok := u.dataQ.Pop()
		if !ok {
			break
		}
		if int(f.Src) != int(u.cur.Src) {
			panic(fmt.Sprintf("mpmmu: data from node %d during write by node %d", f.Src, u.cur.Src))
		}
		if int(f.Seq) >= u.curWords || u.gotMask&(1<<f.Seq) != 0 {
			panic(fmt.Sprintf("mpmmu: bad write data seq %d", f.Seq))
		}
		u.gotMask |= 1 << f.Seq
		u.lineBuf[f.Seq] = f.Data
		u.gotCount++
	}
	if u.gotCount < u.curWords {
		return
	}
	addr := u.cur.Data
	words := u.curWords
	var lat int64
	if words == 4 {
		lat = u.writeLine(cache.LineAddr(addr), u.lineBuf[:])
	} else {
		lat = u.writeWord(addr, u.lineBuf[0])
	}
	dst := int(u.cur.Src)
	u.becomeBusy(now, lat, func(int64) {
		u.pushOut(dst, u.cur.Type, flit.SubAck, 0, 0, 0, now+lat)
	})
}

func (u *Unit) becomeBusy(now, lat int64, fn func(now int64)) {
	if lat <= 0 {
		lat = 1
	}
	u.busyUntil = now + lat
	u.afterBusy = fn
	u.st = stBusy
}

func (u *Unit) handleLock(req flit.Flit) {
	addr := req.Data
	ls := u.locks[addr]
	if ls == nil {
		u.locks[addr] = &lockState{owner: int(req.Src)}
		u.pushOut(int(req.Src), flit.Lock, flit.SubAck, 0, 0, addr, 0)
		return
	}
	// All lock/unlock requests are stored in the Pif-Request/Control
	// queue; a busy lock queues the requester until the unlock arrives.
	u.Stats.LockWaits.Inc()
	ls.waiters = append(ls.waiters, int(req.Src))
}

func (u *Unit) handleUnlock(req flit.Flit) {
	addr := req.Data
	ls := u.locks[addr]
	if ls == nil || ls.owner != int(req.Src) {
		panic(fmt.Sprintf("mpmmu: node %d unlocking %#x it does not own", req.Src, addr))
	}
	u.pushOut(int(req.Src), flit.Unlock, flit.SubAck, 0, 0, addr, 0)
	if len(ls.waiters) == 0 {
		delete(u.locks, addr)
		return
	}
	next := ls.waiters[0]
	ls.waiters = ls.waiters[1:]
	ls.owner = next
	u.pushOut(next, flit.Lock, flit.SubAck, 0, 0, addr, 0)
}

// LockedWords returns the number of currently held locks (tests).
func (u *Unit) LockedWords() int { return len(u.locks) }

func (u *Unit) pushOut(dstNode int, t flit.Type, sub flit.SubType, seq, burst uint8, data uint32, now int64) {
	x, y := u.coordOf(dstNode)
	u.nextPktID++
	f := flit.Flit{
		DstX: uint8(x), DstY: uint8(y),
		Type: t, Sub: sub, Seq: seq, Burst: burst,
		Src:  uint8(u.cfg.NodeID),
		Data: data,
	}
	f.Meta.InjectCycle = now
	f.Meta.PacketID = uint64(u.cfg.NodeID)<<48 | 2<<40 | u.nextPktID
	u.outQ.Push(f)
	if u.outQ.Len() > u.Stats.OutQPeak {
		u.Stats.OutQPeak = u.outQ.Len()
	}
}

// readWords reads n (<= 4) 32-bit words at addr through the local cache
// and returns the data plus the access latency in cycles. The returned
// slice aliases the unit's scratch buffer; it is consumed before the next
// request starts (the MPMMU is busy until the reply is enqueued).
func (u *Unit) readWords(addr uint32, n int) ([]uint32, int64) {
	lat := u.touchLine(addr)
	out := u.readBuf[:n]
	for i := 0; i < n; i++ {
		a := addr + uint32(4*i)
		if cache.LineAddr(a) != cache.LineAddr(addr) {
			lat += u.touchLine(a)
		}
		out[i] = u.cache.ReadWord(a)
	}
	return out, lat
}

// writeWord writes one word through the local cache (write-allocate).
func (u *Unit) writeWord(addr uint32, v uint32) int64 {
	lat := u.touchLine(addr)
	u.cache.WriteWord(addr, v)
	return lat
}

// writeLine writes a full line through the local cache.
func (u *Unit) writeLine(addr uint32, words []uint32) int64 {
	lat := u.touchLine(addr)
	for i, w := range words[:4] {
		binary.LittleEndian.PutUint32(u.lineScratch[4*i:], w)
	}
	u.cache.Write(addr, u.lineScratch[:])
	return lat
}

// touchLine makes the line containing addr resident and returns the
// latency of doing so (hit cost, or miss cost including victim write-back
// and the DDR access).
func (u *Unit) touchLine(addr uint32) int64 {
	if u.cache.Lookup(addr) {
		return u.cfg.HitCycles
	}
	lat := u.cfg.HitCycles
	line := cache.LineAddr(addr)
	if vaddr, wb := u.cache.VictimInto(line, u.lineScratch[:]); wb {
		u.ddr.Write(vaddr, u.lineScratch[:])
		lat += u.ddr.Latency.Cost(cache.LineBytes / 4)
	}
	u.ddr.ReadInto(line, u.lineScratch[:])
	u.cache.Fill(line, u.lineScratch[:])
	lat += u.ddr.Latency.Cost(cache.LineBytes / 4)
	return lat
}

// FlushCache writes all dirty lines of the local cache back to DDR. Used
// at the end of a run so that functional results can be checked in DDR.
func (u *Unit) FlushCache() {
	for _, addr := range u.cache.DirtyLines() {
		if u.cache.FlushLineInto(addr, u.lineScratch[:]) {
			u.ddr.Write(addr, u.lineScratch[:])
		}
	}
}
