package mpmmu

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/memory"
)

func coordOf4x4(node int) (int, int) { return node % 4, node / 4 }

func newUnit(t *testing.T) (*Unit, *memory.DDR) {
	t.Helper()
	ddr := memory.NewDDR(memory.DefaultLatency)
	u, err := New(DefaultConfig(0, 4), ddr, coordOf4x4)
	if err != nil {
		t.Fatal(err)
	}
	return u, ddr
}

// pull drains one flit, stepping the unit as needed, within a cycle bound.
func pull(t *testing.T, u *Unit, now *int64, bound int) flit.Flit {
	t.Helper()
	for i := 0; i < bound; i++ {
		if f, ok := u.TryPull(); ok {
			return f
		}
		u.Step(*now)
		*now++
	}
	t.Fatalf("no flit produced within %d cycles", bound)
	return flit.Flit{}
}

func req(src uint8, typ flit.Type, addr uint32) flit.Flit {
	return flit.Flit{Type: typ, Sub: flit.SubAddr, Src: src, Data: addr}
}

func TestSingleReadServesData(t *testing.T) {
	u, ddr := newUnit(t)
	ddr.WriteWord(0x1000, 0xFEEDFACE)
	now := int64(0)
	u.Deliver(req(3, flit.SingleRead, 0x1000), now)
	f := pull(t, u, &now, 200)
	if f.Type != flit.SingleRead || f.Sub != flit.SubData || f.Data != 0xFEEDFACE {
		t.Fatalf("reply %v", f)
	}
	if x, y := coordOf4x4(3); int(f.DstX) != x || int(f.DstY) != y {
		t.Error("reply not addressed to requester")
	}
	if u.Stats.SingleReads.Value() != 1 {
		t.Error("read not counted")
	}
}

func TestBlockReadServesFourWords(t *testing.T) {
	u, ddr := newUnit(t)
	for i := uint32(0); i < 4; i++ {
		ddr.WriteWord(0x2000+4*i, 0x40+i)
	}
	now := int64(0)
	u.Deliver(req(1, flit.BlockRead, 0x2004), now) // unaligned within line
	var words [4]uint32
	for i := 0; i < 4; i++ {
		f := pull(t, u, &now, 300)
		if f.Sub != flit.SubData {
			t.Fatalf("flit %d: %v", i, f)
		}
		words[f.Seq] = f.Data
	}
	for i, w := range words {
		if w != uint32(0x40+i) {
			t.Fatalf("word %d = %#x", i, w)
		}
	}
}

func TestCacheHitFasterThanMiss(t *testing.T) {
	u, _ := newUnit(t)
	now := int64(0)
	u.Deliver(req(1, flit.SingleRead, 0x3000), now)
	start := now
	pull(t, u, &now, 300)
	missLat := now - start

	u.Deliver(req(1, flit.SingleRead, 0x3000), now)
	start = now
	pull(t, u, &now, 300)
	hitLat := now - start
	if hitLat >= missLat {
		t.Errorf("hit latency %d not faster than miss latency %d", hitLat, missLat)
	}
}

func TestWriteProtocol(t *testing.T) {
	u, ddr := newUnit(t)
	now := int64(0)
	u.Deliver(req(2, flit.SingleWrite, 0x4000), now)
	grant := pull(t, u, &now, 100)
	if grant.Sub != flit.SubAck {
		t.Fatalf("want grant, got %v", grant)
	}
	u.Deliver(flit.Flit{Type: flit.SingleWrite, Sub: flit.SubData, Src: 2, Seq: 0, Data: 0xAB}, now)
	done := pull(t, u, &now, 300)
	if done.Sub != flit.SubAck {
		t.Fatalf("want completion, got %v", done)
	}
	u.FlushCache()
	if got := ddr.ReadWord(0x4000); got != 0xAB {
		t.Fatalf("memory holds %#x", got)
	}
}

func TestBlockWriteOutOfOrderData(t *testing.T) {
	u, ddr := newUnit(t)
	now := int64(0)
	u.Deliver(req(2, flit.BlockWrite, 0x5000), now)
	pull(t, u, &now, 100) // grant
	for _, seq := range []uint8{3, 1, 0, 2} {
		u.Deliver(flit.Flit{Type: flit.BlockWrite, Sub: flit.SubData, Src: 2, Seq: seq, Data: uint32(10 + seq)}, now)
	}
	pull(t, u, &now, 300) // completion
	u.FlushCache()
	for i := uint32(0); i < 4; i++ {
		if got := ddr.ReadWord(0x5000 + 4*i); got != 10+i {
			t.Fatalf("word %d = %d", i, got)
		}
	}
}

func TestLockExclusivityAndFIFOGrant(t *testing.T) {
	u, _ := newUnit(t)
	now := int64(0)
	u.Deliver(req(1, flit.Lock, 0x6000), now)
	g1 := pull(t, u, &now, 50)
	if g1.Type != flit.Lock || g1.Sub != flit.SubAck || int(g1.DstX) != 1 {
		t.Fatalf("first lock grant %v", g1)
	}
	// Two more requesters queue up.
	u.Deliver(req(2, flit.Lock, 0x6000), now)
	u.Deliver(req(3, flit.Lock, 0x6000), now)
	for i := 0; i < 20; i++ {
		u.Step(now)
		now++
	}
	if _, ok := u.TryPull(); ok {
		t.Fatal("lock granted while held")
	}
	if u.Stats.LockWaits.Value() != 2 {
		t.Errorf("lock waits = %d", u.Stats.LockWaits.Value())
	}
	// Unlock by owner: node 2 (FIFO head) must be granted next.
	u.Deliver(req(1, flit.Unlock, 0x6000), now)
	a1 := pull(t, u, &now, 50) // unlock ack to node 1
	if a1.Type != flit.Unlock || int(a1.DstX) != 1 {
		t.Fatalf("unlock ack %v", a1)
	}
	g2 := pull(t, u, &now, 50)
	if g2.Type != flit.Lock || int(g2.DstX)+4*int(g2.DstY) != 2 {
		t.Fatalf("second grant to wrong node: %v", g2)
	}
	// Chain: unlock by 2 grants 3.
	u.Deliver(req(2, flit.Unlock, 0x6000), now)
	pull(t, u, &now, 50) // unlock ack to 2
	g3 := pull(t, u, &now, 50)
	if g3.Type != flit.Lock || int(g3.DstX)+4*int(g3.DstY) != 3 {
		t.Fatalf("third grant to wrong node: %v", g3)
	}
	u.Deliver(req(3, flit.Unlock, 0x6000), now)
	pull(t, u, &now, 50)
	if u.LockedWords() != 0 {
		t.Error("lock table not empty at the end")
	}
}

func TestDistinctWordsLockIndependently(t *testing.T) {
	u, _ := newUnit(t)
	now := int64(0)
	u.Deliver(req(1, flit.Lock, 0x6000), now)
	u.Deliver(req(2, flit.Lock, 0x6004), now)
	pull(t, u, &now, 50)
	pull(t, u, &now, 50)
	if u.LockedWords() != 2 {
		t.Error("independent words should both be locked")
	}
}

func TestUnlockByNonOwnerPanics(t *testing.T) {
	u, _ := newUnit(t)
	now := int64(0)
	u.Deliver(req(1, flit.Lock, 0x6000), now)
	pull(t, u, &now, 50)
	u.Deliver(req(2, flit.Unlock, 0x6000), now)
	defer func() {
		if recover() == nil {
			t.Error("unlock by non-owner should panic")
		}
	}()
	for i := 0; i < 10; i++ {
		u.Step(now)
		now++
	}
}

func TestSerializationOfRequests(t *testing.T) {
	// Two reads from different nodes: replies must come out strictly one
	// transaction after the other (the MPMMU is a serial slave).
	u, ddr := newUnit(t)
	ddr.WriteWord(0x100, 1)
	ddr.WriteWord(0x7000, 2)
	now := int64(0)
	u.Deliver(req(1, flit.SingleRead, 0x100), now)
	u.Deliver(req(2, flit.SingleRead, 0x7000), now)
	f1 := pull(t, u, &now, 300)
	f2 := pull(t, u, &now, 300)
	if f1.Data != 1 || f2.Data != 2 {
		t.Fatalf("replies out of order: %v then %v", f1.Data, f2.Data)
	}
	if u.Stats.BusyCycles.Value() == 0 {
		t.Error("busy cycles not recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	ddr := memory.NewDDR(memory.DefaultLatency)
	if _, err := New(Config{NodeID: 0, NumCores: 0, CacheKB: 32, HitCycles: 1}, ddr, coordOf4x4); err == nil {
		t.Error("zero cores should fail")
	}
	if _, err := New(Config{NodeID: 0, NumCores: 2, CacheKB: 0, HitCycles: 1}, ddr, coordOf4x4); err == nil {
		t.Error("zero cache should fail")
	}
}
