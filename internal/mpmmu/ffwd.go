package mpmmu

import "repro/internal/sim"

// Pending reports the outgoing-FIFO occupancy; the MPMMU's switch probes
// it to decide whether the local port still needs draining (the noc
// package's pendingReporter capability).
func (u *Unit) Pending() int { return u.outQ.Len() }

// NextEvent implements sim.NextEventer. A busy unit next acts when the
// access latency elapses at busyUntil; a collecting or idle unit acts as
// soon as its input queues hold a flit and is otherwise passive (flits
// still in flight keep the fabric busy by themselves).
func (u *Unit) NextEvent(now int64) int64 {
	switch u.st {
	case stBusy:
		return u.busyUntil
	case stCollect:
		if u.dataQ.Len() > 0 {
			return now
		}
		return sim.NoEvent
	default: // stIdle
		if u.reqQ.Len() > 0 || u.dataQ.Len() > 0 {
			return now
		}
		return sim.NoEvent
	}
}

// Skipped implements sim.Skipper: Step accounts one busy cycle per tick
// spent in stBusy, so skipped busy cycles are credited identically —
// MPMMUBusy is a reported figure and must not depend on fast-forwarding.
func (u *Unit) Skipped(from, to int64) {
	if u.st == stBusy {
		u.Stats.BusyCycles.Add(to - from)
	}
}
