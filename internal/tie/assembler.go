package tie

import (
	"errors"

	"repro/internal/flit"
)

var (
	errOverflow = errors.New("tie: packet buffer ring overflow")
	errCorrupt  = errors.New("tie: flits of different packets mixed in one buffer")
)

// assembler is the per-(source, class) receive reassembly unit: incoming
// flits are scattered by sequence number into the packet buffer selected
// by the flit's 2-bit packet index. Completed packets are emitted in
// packet-index order, preserving per-source FIFO delivery. This
// generalizes the paper's double buffer to a four-buffer ring (see the
// flit.PktIdx documentation); the buffers tolerate up to three logical
// packets of skew between consecutive packets from the same source.
type assembler struct {
	bufs   [flit.NumPktIdx]asmBuf
	cursor uint8 // next packet index to emit
}

type asmBuf struct {
	active   bool
	complete bool
	need     int
	have     uint32 // bitmask of received sequence numbers
	count    int
	words    [flit.MaxLogicalPacket]uint32
	pktID    uint64 // simulation-only integrity check
}

func (b *asmBuf) reset() { *b = asmBuf{} }

// add places f into the buffer. The returned error flags violations that
// real hardware would turn into silent data corruption; the simulator
// counts them and tests assert zero.
func (b *asmBuf) add(f flit.Flit) error {
	if !b.active {
		b.active = true
		b.need = f.BurstLen()
		b.pktID = f.Meta.PacketID
	}
	switch {
	case b.pktID != f.Meta.PacketID:
		// A flit of a packet 4 ahead: the ring is too shallow for the
		// skew. Drop the flit (its packet will never complete).
		return errOverflow
	case b.complete, b.have&(1<<f.Seq) != 0, b.need != f.BurstLen():
		return errCorrupt
	}
	b.have |= 1 << f.Seq
	b.words[f.Seq] = f.Data
	b.count++
	if b.count >= b.need {
		b.complete = true
	}
	return nil
}

// place routes a flit to its ring buffer and returns any logical packets
// that completed, in FIFO order.
func (a *assembler) place(f flit.Flit) (packets [][]uint32, err error) {
	if int(f.Seq) >= f.BurstLen() {
		// Sequence number beyond the burst length: a corrupted burst
		// field; real hardware would scribble out of bounds.
		return nil, errCorrupt
	}
	err = a.bufs[f.PktIdx].add(f)
	for {
		b := &a.bufs[a.cursor]
		if !b.complete {
			break
		}
		packets = append(packets, append([]uint32(nil), b.words[:b.need]...))
		b.reset()
		a.cursor = (a.cursor + 1) % flit.NumPktIdx
	}
	return packets, err
}
