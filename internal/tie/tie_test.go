package tie

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/sim"
)

func coordOf4x4(node int) (int, int) { return node % 4, node / 4 }

func newPort(node int) *Port {
	return NewPort(node, 16, coordOf4x4, 4)
}

func TestStartSendBuildsFlits(t *testing.T) {
	p := newPort(3)
	if err := p.StartSend(6, Data, []uint32{10, 20, 30}, 0); err != nil {
		t.Fatal(err)
	}
	if !p.SendBusy() {
		t.Fatal("send should be in progress")
	}
	// 3 words round up to a 4-flit logical packet.
	var flits []flit.Flit
	for i := 0; i < 10; i++ {
		p.StepSend(int64(i))
		for {
			f, ok := p.Out().Pop()
			if !ok {
				break
			}
			flits = append(flits, f)
		}
	}
	if p.SendBusy() {
		t.Fatal("send should have completed")
	}
	if len(flits) != 4 {
		t.Fatalf("sent %d flits, want 4", len(flits))
	}
	for i, f := range flits {
		if f.Type != flit.Message || f.Sub != flit.SubMsgData {
			t.Errorf("flit %d: wrong type/sub %v/%v", i, f.Type, f.Sub)
		}
		if int(f.Seq) != i {
			t.Errorf("flit %d has seq %d", i, f.Seq)
		}
		if f.BurstLen() != 4 {
			t.Errorf("flit %d burst %d", i, f.BurstLen())
		}
		if int(f.DstX) != 2 || int(f.DstY) != 1 {
			t.Errorf("flit %d addressed to (%d,%d), want (2,1)", i, f.DstX, f.DstY)
		}
		if f.Src != 3 {
			t.Errorf("flit %d src %d", i, f.Src)
		}
	}
	// Padding beyond the payload must be zero.
	if flits[3].Data != 0 {
		t.Error("padding flit should carry zero")
	}
}

func TestSendOneFlitPerCycle(t *testing.T) {
	p := newPort(0)
	if err := p.StartSend(5, Req, []uint32{1, 2, 3, 4}, 0); err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < 4; cyc++ {
		p.StepSend(int64(cyc))
		if got := p.Out().Len(); got != cyc+1 {
			t.Fatalf("cycle %d: out queue has %d flits, want %d", cyc, got, cyc+1)
		}
	}
}

func TestSendStallsOnFullQueue(t *testing.T) {
	p := newPort(0)
	if err := p.StartSend(5, Data, []uint32{1, 2, 3, 4, 5, 6, 7, 8}, 0); err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < 10; cyc++ {
		p.StepSend(int64(cyc)) // out cap is 4: the rest must stall
	}
	if p.Out().Len() != 4 {
		t.Fatalf("queue holds %d", p.Out().Len())
	}
	if p.Stats.SendStalls.Value() == 0 {
		t.Error("stalls not counted")
	}
	if !p.SendBusy() {
		t.Error("send must still be busy")
	}
}

func TestSendRejectsBadLengths(t *testing.T) {
	p := newPort(0)
	if err := p.StartSend(1, Data, nil, 0); err == nil {
		t.Error("empty packet should be rejected")
	}
	if err := p.StartSend(1, Data, make([]uint32, 17), 0); err == nil {
		t.Error("oversized packet should be rejected")
	}
}

func deliverPacket(t *testing.T, src, dst *Port, words []uint32, class Class, perm []int) {
	t.Helper()
	if err := src.StartSend(0, class, words, 0); err != nil {
		t.Fatal(err)
	}
	var flits []flit.Flit
	for src.SendBusy() {
		src.StepSend(0)
		for {
			f, ok := src.Out().Pop()
			if !ok {
				break
			}
			flits = append(flits, f)
		}
	}
	if perm == nil {
		for _, f := range flits {
			dst.Deliver(f)
		}
		return
	}
	for _, i := range perm {
		dst.Deliver(flits[i])
	}
}

func TestReceiveInOrder(t *testing.T) {
	src, dst := newPort(2), newPort(0)
	deliverPacket(t, src, dst, []uint32{5, 6, 7, 8}, Data, nil)
	pkt, ok := dst.TryRecv(2, Data)
	if !ok {
		t.Fatal("packet not assembled")
	}
	for i, w := range []uint32{5, 6, 7, 8} {
		if pkt.Words[i] != w {
			t.Errorf("word %d = %d", i, pkt.Words[i])
		}
	}
	if pkt.Src != 2 || pkt.Class != Data {
		t.Errorf("packet meta %d/%v", pkt.Src, pkt.Class)
	}
}

func TestReceiveOutOfOrder(t *testing.T) {
	src, dst := newPort(2), newPort(0)
	deliverPacket(t, src, dst, []uint32{5, 6, 7, 8}, Data, []int{3, 0, 2, 1})
	pkt, ok := dst.TryRecv(2, Data)
	if !ok {
		t.Fatal("packet not assembled from out-of-order flits")
	}
	for i, w := range []uint32{5, 6, 7, 8} {
		if pkt.Words[i] != w {
			t.Errorf("word %d = %d (sequence-number scatter failed)", i, pkt.Words[i])
		}
	}
	if dst.Stats.Corrupted.Value() != 0 || dst.Stats.Overflows.Value() != 0 {
		t.Error("spurious integrity errors")
	}
}

func TestClassDemux(t *testing.T) {
	src, dst := newPort(2), newPort(0)
	deliverPacket(t, src, dst, []uint32{0xAA}, Req, nil)
	deliverPacket(t, src, dst, []uint32{0xBB}, Data, nil)
	if _, ok := dst.TryRecv(2, Data); !ok {
		t.Fatal("data packet lost")
	}
	pkt, ok := dst.TryRecv(2, Req)
	if !ok || pkt.Words[0] != 0xAA {
		t.Fatal("req packet lost or mixed with data")
	}
}

func TestTryRecvAnyScansAscending(t *testing.T) {
	dst := newPort(0)
	for _, src := range []int{9, 4, 7} {
		s := newPort(src)
		deliverPacket(t, s, dst, []uint32{uint32(src)}, Req, nil)
	}
	pkt, ok := dst.TryRecvAny(Req)
	if !ok || pkt.Src != 4 {
		t.Fatalf("TryRecvAny returned src %d, want 4 (lowest)", pkt.Src)
	}
}

func TestInterleavedPacketsFromSameSource(t *testing.T) {
	// Two packets sent back-to-back whose flits interleave heavily: the
	// packet-index ring must keep them separate and deliver in order.
	src, dst := newPort(2), newPort(0)
	collect := func(words []uint32) []flit.Flit {
		if err := src.StartSend(0, Data, words, 0); err != nil {
			t.Fatal(err)
		}
		var fl []flit.Flit
		for src.SendBusy() {
			src.StepSend(0)
			for {
				f, ok := src.Out().Pop()
				if !ok {
					break
				}
				fl = append(fl, f)
			}
		}
		return fl
	}
	a := collect([]uint32{1, 2, 3, 4})
	b := collect([]uint32{5, 6, 7, 8})
	order := []flit.Flit{b[0], a[3], b[2], a[0], b[3], a[1], b[1], a[2]}
	for _, f := range order {
		dst.Deliver(f)
	}
	p1, ok1 := dst.TryRecv(2, Data)
	p2, ok2 := dst.TryRecv(2, Data)
	if !ok1 || !ok2 {
		t.Fatal("packets not assembled")
	}
	if p1.Words[0] != 1 || p2.Words[0] != 5 {
		t.Errorf("FIFO order violated: %v then %v", p1.Words, p2.Words)
	}
	if dst.Stats.Corrupted.Value() != 0 || dst.Stats.Overflows.Value() != 0 {
		t.Error("integrity errors on legal interleaving")
	}
}

// TestRandomPermutationReassembly property-tests reassembly: a window of
// up to 4 in-flight packets delivered in a random global order must always
// reassemble correctly and in order.
func TestRandomPermutationReassembly(t *testing.T) {
	rng := sim.NewRNG(77)
	for trial := 0; trial < 200; trial++ {
		src, dst := newPort(2), newPort(0)
		numPkts := 1 + rng.Intn(flit.NumPktIdx) // within the ring tolerance
		var all []flit.Flit
		var want [][]uint32
		for k := 0; k < numPkts; k++ {
			n := []int{1, 4, 8, 16}[rng.Intn(4)]
			words := make([]uint32, n)
			for i := range words {
				words[i] = uint32(trial<<16 | k<<8 | i)
			}
			want = append(want, words)
			if err := src.StartSend(0, Data, words, 0); err != nil {
				t.Fatal(err)
			}
			for src.SendBusy() {
				src.StepSend(0)
				for {
					f, ok := src.Out().Pop()
					if !ok {
						break
					}
					all = append(all, f)
				}
			}
		}
		// Shuffle all flits of all packets (worst-case reordering).
		for i := len(all) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			all[i], all[j] = all[j], all[i]
		}
		for _, f := range all {
			dst.Deliver(f)
		}
		for k := 0; k < numPkts; k++ {
			pkt, ok := dst.TryRecv(2, Data)
			if !ok {
				t.Fatalf("trial %d: packet %d missing", trial, k)
			}
			for i, w := range want[k] {
				if pkt.Words[i] != w {
					t.Fatalf("trial %d packet %d word %d: got %#x want %#x",
						trial, k, i, pkt.Words[i], w)
				}
			}
		}
		if dst.Stats.Corrupted.Value() != 0 || dst.Stats.Overflows.Value() != 0 {
			t.Fatalf("trial %d: integrity errors", trial)
		}
	}
}

func TestOverflowDetected(t *testing.T) {
	// Five packets in flight exceed the 4-buffer ring: the fifth packet's
	// flits collide with the first's buffer and must be counted.
	src, dst := newPort(2), newPort(0)
	var first flit.Flit
	var later []flit.Flit
	for k := 0; k < flit.NumPktIdx+1; k++ {
		if err := src.StartSend(0, Data, []uint32{1, 2, 3, 4}, 0); err != nil {
			t.Fatal(err)
		}
		for src.SendBusy() {
			src.StepSend(0)
			for {
				f, ok := src.Out().Pop()
				if !ok {
					break
				}
				if k == 0 && f.Seq == 0 {
					first = f // hold back packet 0's first flit
					continue
				}
				later = append(later, f)
			}
		}
	}
	for _, f := range later {
		dst.Deliver(f)
	}
	dst.Deliver(first)
	if dst.Stats.Overflows.Value() == 0 {
		t.Error("ring overflow not detected")
	}
}

func TestDeliverRejectsNonMessage(t *testing.T) {
	dst := newPort(0)
	defer func() {
		if recover() == nil {
			t.Error("non-message flit should panic")
		}
	}()
	dst.Deliver(flit.Flit{Type: flit.SingleRead})
}

func TestPendingPackets(t *testing.T) {
	src, dst := newPort(2), newPort(0)
	deliverPacket(t, src, dst, []uint32{1}, Data, nil)
	deliverPacket(t, src, dst, []uint32{2}, Data, nil)
	if got := dst.PendingPackets(); got != 2 {
		t.Errorf("pending = %d", got)
	}
	dst.TryRecv(2, Data)
	if got := dst.PendingPackets(); got != 1 {
		t.Errorf("pending after recv = %d", got)
	}
}

func TestClassString(t *testing.T) {
	if Req.String() != "req" || Data.String() != "data" {
		t.Error("class strings wrong")
	}
}
