// Package tie models the TIE message-passing port: the direct FIFO-like
// link between a processor's register file and its NoC switch (Fig. 2 of
// the paper). The send side stamps each flit with a sequence number and the
// destination's X-Y coordinates from a lookup table, sustaining one flit
// per cycle. The receive side demultiplexes flits by the Data/Req bit into
// a request segment and a data segment and scatters them by sequence number
// into a double buffer, so no sorting hardware is needed for out-of-order
// delivery.
package tie

import (
	"fmt"
	"sync/atomic"

	"repro/internal/flit"
	"repro/internal/queue"
	"repro/internal/stats"
)

// SendRecorder observes every logical message packet a TIE port starts
// sending (trace capture; internal/trace.Trace implements the same shape
// for injections). Called on the engine thread after the send is
// validated, so it sees exactly the packets the network will carry.
// Purely observational: results are byte-identical with or without it.
type SendRecorder interface {
	RecordMessage(cycle int64, src, dst int, meta uint32)
}

// sendRecorder is the process-wide recorder hook. Ports are created deep
// inside kernel rigs with no config path for an observer, so recording a
// kernel run installs the hook globally for its duration (recording runs
// are single-point by construction; see scenario.RecordCtx).
var sendRecorder atomic.Pointer[SendRecorder]

// SetSendRecorder installs (or, with nil, removes) the process-wide send
// recorder and returns the previous one so callers can restore it.
func SetSendRecorder(r SendRecorder) SendRecorder {
	var prev SendRecorder
	if p := sendRecorder.Load(); p != nil {
		prev = *p
	}
	if r == nil {
		sendRecorder.Store(nil)
	} else {
		sendRecorder.Store(&r)
	}
	return prev
}

// Class distinguishes the two message-packet kinds carried on the port.
type Class int

const (
	// Req packets are synchronization tokens (the paper's request
	// packets).
	Req Class = iota
	// Data packets carry generic payload words.
	Data
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == Req {
		return "req"
	}
	return "data"
}

func (c Class) sub() flit.SubType {
	if c == Req {
		return flit.SubMsgReq
	}
	return flit.SubMsgData
}

// ClassOf returns the Class encoded in a message flit's sub-type.
func ClassOf(f flit.Flit) Class {
	if f.Sub == flit.SubMsgReq {
		return Req
	}
	return Data
}

// Packet is one reassembled logical packet.
type Packet struct {
	Src   int
	Class Class
	Words []uint32 // padded to the burst length; callers trim
}

// Stats counts TIE port events.
type Stats struct {
	FlitsSent   stats.Counter
	FlitsRecv   stats.Counter
	PacketsSent stats.Counter
	PacketsRecv stats.Counter
	Overflows   stats.Counter // flit arrived with both double buffers busy
	Corrupted   stats.Counter // packet-id mismatch inside one buffer
	SendStalls  stats.Counter // cycles the send path waited on a full queue
}

// Port is one node's TIE message-passing interface.
type Port struct {
	nodeID  int
	coordOf func(node int) (x, y int) // the addressing LUT

	out *queue.FIFO[flit.Flit]

	// pending is the flit stream of the send in progress; the PE feeds it
	// at one flit per cycle.
	pending []flit.Flit

	asm   map[asmKey]*assembler
	ready map[asmKey]*queue.FIFO[Packet]
	// maxNodes bounds the node-id scan of TryRecvAny so any-source
	// receives are deterministic (ascending node ids).
	maxNodes int

	nextPktID uint64
	// pktIdx rotates the 2-bit packet index per (destination, class), so
	// the receiver's ring buffer can separate consecutive packets.
	pktIdx map[asmKey]uint8

	Stats Stats
}

type asmKey struct {
	src   int
	class Class
}

// NewPort creates the TIE port for nodeID. coordOf maps node ids to torus
// coordinates (the hardware's address LUT); maxNodes bounds the id space
// for deterministic any-source scans. outCap sizes the output FIFO toward
// the arbiter.
func NewPort(nodeID int, maxNodes int, coordOf func(int) (int, int), outCap int) *Port {
	return &Port{
		nodeID:   nodeID,
		coordOf:  coordOf,
		out:      queue.NewFIFO[flit.Flit](outCap),
		asm:      make(map[asmKey]*assembler),
		ready:    make(map[asmKey]*queue.FIFO[Packet]),
		maxNodes: maxNodes,
		pktIdx:   make(map[asmKey]uint8),
	}
}

// Out exposes the output FIFO drained by the arbiter.
func (p *Port) Out() *queue.FIFO[flit.Flit] { return p.out }

// StartSend begins transmitting one logical packet of up to 16 words to
// dst. The payload is padded to the next encodable burst length. It panics
// if a send is already in progress (the PE is a blocking in-order core).
func (p *Port) StartSend(dst int, class Class, words []uint32, now int64) error {
	if len(p.pending) != 0 {
		panic("tie: send already in progress")
	}
	if len(words) == 0 || len(words) > flit.MaxLogicalPacket {
		return fmt.Errorf("tie: logical packet of %d words (want 1..%d)", len(words), flit.MaxLogicalPacket)
	}
	n := flit.RoundUpBurst(len(words))
	code, err := flit.EncodeBurst(n)
	if err != nil {
		return err
	}
	if rec := sendRecorder.Load(); rec != nil {
		(*rec).RecordMessage(now, p.nodeID, dst, uint32(len(words)))
	}
	x, y := p.coordOf(dst)
	p.nextPktID++
	pktID := uint64(p.nodeID)<<48 | p.nextPktID
	idxKey := asmKey{src: dst, class: class}
	idx := p.pktIdx[idxKey]
	p.pktIdx[idxKey] = (idx + 1) % flit.NumPktIdx
	for seq := 0; seq < n; seq++ {
		var w uint32
		if seq < len(words) {
			w = words[seq]
		}
		f := flit.Flit{
			DstX: uint8(x), DstY: uint8(y),
			Type: flit.Message, Sub: class.sub(),
			Seq: uint8(seq), Burst: code,
			Src: uint8(p.nodeID), PktIdx: idx,
			Data: w,
		}
		f.Meta.InjectCycle = now
		f.Meta.PacketID = pktID
		p.pending = append(p.pending, f)
	}
	p.Stats.PacketsSent.Inc()
	return nil
}

// SendBusy reports whether a logical packet is still being fed to the
// output queue.
func (p *Port) SendBusy() bool { return len(p.pending) != 0 }

// StepSend moves at most one pending flit into the output queue (the TIE
// port's one-flit-per-cycle throughput). The PE calls it once per cycle
// while a send is in progress.
func (p *Port) StepSend(now int64) {
	if len(p.pending) == 0 {
		return
	}
	f := p.pending[0]
	f.Meta.InjectCycle = now // queueing starts now for this flit
	if !p.out.Push(f) {
		p.Stats.SendStalls.Inc()
		return
	}
	p.pending = p.pending[1:]
	p.Stats.FlitsSent.Inc()
}

// Deliver accepts one message flit ejected by the switch; it implements
// the receive interface of Fig. 2-b.
func (p *Port) Deliver(f flit.Flit) {
	if f.Type != flit.Message {
		panic("tie: non-message flit delivered to TIE port")
	}
	p.Stats.FlitsRecv.Inc()
	k := asmKey{src: int(f.Src), class: ClassOf(f)}
	a := p.asm[k]
	if a == nil {
		a = &assembler{}
		p.asm[k] = a
	}
	pkts, err := a.place(f)
	if err == errOverflow {
		p.Stats.Overflows.Inc()
		return
	}
	if err == errCorrupt {
		p.Stats.Corrupted.Inc()
	}
	for _, words := range pkts {
		q := p.ready[k]
		if q == nil {
			q = queue.NewFIFO[Packet](0)
			p.ready[k] = q
		}
		q.Push(Packet{Src: k.src, Class: k.class, Words: words})
		p.Stats.PacketsRecv.Inc()
	}
}

// TryRecv pops the oldest complete packet from src with the given class.
func (p *Port) TryRecv(src int, class Class) (Packet, bool) {
	q := p.ready[asmKey{src: src, class: class}]
	if q == nil {
		return Packet{}, false
	}
	return q.Pop()
}

// HasRecv reports, without consuming it, whether a complete packet from
// src with the given class is waiting. The core's fast-forward idle check
// uses it to stay passive only while a receive provably cannot complete.
func (p *Port) HasRecv(src int, class Class) bool {
	q := p.ready[asmKey{src: src, class: class}]
	return q != nil && q.Len() > 0
}

// HasRecvAny reports whether a complete packet of the given class from
// any source is waiting, without consuming it.
func (p *Port) HasRecvAny(class Class) bool {
	for src := 0; src < p.maxNodes; src++ {
		if p.HasRecv(src, class) {
			return true
		}
	}
	return false
}

// TryRecvAny pops the oldest complete packet of the given class from any
// source, scanning node ids in ascending order for determinism.
func (p *Port) TryRecvAny(class Class) (Packet, bool) {
	for src := 0; src < p.maxNodes; src++ {
		if pkt, ok := p.TryRecv(src, class); ok {
			return pkt, true
		}
	}
	return Packet{}, false
}

// PendingPackets returns the number of fully assembled packets waiting.
func (p *Port) PendingPackets() int {
	n := 0
	for _, q := range p.ready {
		n += q.Len()
	}
	return n
}
