package dse

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/jacobi"
)

func TestPaperGridIs168Points(t *testing.T) {
	o := DefaultOptions(60)
	n := len(o.Cores) * len(o.CachesKB) * len(o.Policies)
	if n != 168 {
		t.Fatalf("default sweep has %d points, paper ran 168", n)
	}
}

func TestAreaModelCalibration(t *testing.T) {
	// The 168 configurations must span roughly the 2-22 mm2 x-axis of
	// Figures 7/9.
	min := Area(2, 2, 32)
	max := Area(15, 64, 32)
	if min < 1 || min > 4 {
		t.Errorf("smallest config area %.2f outside 1-4 mm2", min)
	}
	if max < 18 || max > 45 {
		t.Errorf("largest config area %.2f outside 18-45 mm2", max)
	}
	// Monotonicity.
	if Area(5, 8, 32) >= Area(6, 8, 32) {
		t.Error("area must grow with cores")
	}
	if Area(5, 8, 32) >= Area(5, 16, 32) {
		t.Error("area must grow with cache")
	}
}

func TestAttachSpeedup(t *testing.T) {
	pts := []Point{
		{Compute: 2, CacheKB: 2, CyclesPerIter: 1000, AreaMM2: 2},
		{Compute: 4, CacheKB: 2, CyclesPerIter: 500, AreaMM2: 4},
		{Compute: 8, CacheKB: 2, CyclesPerIter: 200, AreaMM2: 8},
	}
	AttachSpeedup(pts)
	if pts[0].Speedup != 1 {
		t.Errorf("base speedup %v, want 1", pts[0].Speedup)
	}
	if pts[1].Speedup != 2 || pts[2].Speedup != 5 {
		t.Errorf("speedups %v %v", pts[1].Speedup, pts[2].Speedup)
	}
}

func TestParetoFront(t *testing.T) {
	pts := []Point{
		{AreaMM2: 2, Speedup: 1, Label: "a"},
		{AreaMM2: 3, Speedup: 0.5, Label: "dominated"}, // slower and bigger
		{AreaMM2: 4, Speedup: 3, Label: "b"},
		{AreaMM2: 4, Speedup: 2, Label: "equal-area-slower"},
		{AreaMM2: 6, Speedup: 2.5, Label: "dominated2"},
		{AreaMM2: 8, Speedup: 5, Label: "c"},
	}
	front := ParetoFront(pts)
	if len(front) != 3 {
		t.Fatalf("front: %+v", front)
	}
	for i, want := range []string{"a", "b", "c"} {
		if front[i].Label != want {
			t.Errorf("front[%d] = %s, want %s", i, front[i].Label, want)
		}
	}
}

func TestKillRuleKnee(t *testing.T) {
	// Speedup grows superlinearly to point 2, then sublinearly: the knee
	// is index 2.
	front := []Point{
		{AreaMM2: 2, Speedup: 1},
		{AreaMM2: 3, Speedup: 2},   // +100% perf for +50% area: keep
		{AreaMM2: 4, Speedup: 3},   // +50% perf for +33% area: keep
		{AreaMM2: 8, Speedup: 3.5}, // +17% perf for +100% area: kill
		{AreaMM2: 12, Speedup: 3.6},
	}
	if knee := KillRuleKnee(front); knee != 2 {
		t.Errorf("knee = %d, want 2", knee)
	}
	if KillRuleKnee(nil) != -1 {
		t.Error("empty front should return -1")
	}
}

func TestSmallSweepAndTables(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	o := Options{
		N:        16,
		Cores:    []int{2, 4},
		CachesKB: []int{2, 8},
		Policies: []cache.Policy{cache.WriteBack},
		Variant:  jacobi.HybridFull,
		Warmup:   1,
		Measured: 1,
	}
	pts, err := Sweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.CyclesPerIter <= 0 || p.AreaMM2 <= 0 || p.Speedup <= 0 {
			t.Errorf("bad point %+v", p)
		}
	}
	tbl := Fig6Table(pts, "test")
	if !strings.Contains(tbl, "2kB$WB") || !strings.Contains(tbl, "8kB$WB") {
		t.Errorf("table missing columns:\n%s", tbl)
	}
	front := ParetoFront(pts)
	pt := ParetoTable(front, KillRuleKnee(front), "pareto")
	if !strings.Contains(pt, "P_") {
		t.Errorf("pareto table missing labels:\n%s", pt)
	}
	csv := PointsCSV(pts)
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 5 {
		t.Errorf("csv rows wrong:\n%s", csv)
	}
}

func TestCompareSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("compare in short mode")
	}
	rows, err := Compare(16, []int{2, 4}, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.HybridFull <= 0 || r.HybridSync <= 0 || r.PureSM <= 0 {
			t.Errorf("bad row %+v", r)
		}
		if r.FullVsSM < 1 {
			t.Errorf("hybrid slower than pure SM at %d cores: %+v", r.Compute, r)
		}
	}
	tbl := CompareTable(rows, "cmp")
	if !strings.Contains(tbl, "pure-sm") {
		t.Errorf("compare table malformed:\n%s", tbl)
	}
}

func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	o := Options{
		N: 16, Cores: []int{3}, CachesKB: []int{4},
		Policies: []cache.Policy{cache.WriteBack},
		Variant:  jacobi.HybridFull, Warmup: 1, Measured: 1,
	}
	a, err := Sweep(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].CyclesPerIter != b[0].CyclesPerIter {
		t.Fatalf("sweep not deterministic: %d vs %d", a[0].CyclesPerIter, b[0].CyclesPerIter)
	}
}
