package dse

import (
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/jacobi"
)

// CompareRow holds the three programming-model variants evaluated on one
// configuration, reproducing the paper's hybrid vs shared-memory analysis.
type CompareRow struct {
	Compute int
	CacheKB int

	HybridFull int64 // cycles/iteration, data + sync over messages
	HybridSync int64 // cycles/iteration, data over shared memory, sync over messages
	PureSM     int64 // cycles/iteration, pure shared memory

	MissRate float64 // hybrid-full L1 miss rate (locates the cache knee)

	// FullVsSM is the headline ratio: pure shared memory time over
	// hybrid-full time (the paper reports 2x below the cache knee growing
	// to >5x at 10 cores / 16 kB).
	FullVsSM float64
	// SyncVsSM isolates the synchronization benefit: pure-SM time over
	// hybrid-sync time.
	SyncVsSM float64
	// FullVsSync isolates the data-exchange benefit: hybrid-sync time
	// over hybrid-full time.
	FullVsSync float64
}

// Compare runs all three variants for every core count at a fixed cache
// size and returns one row per configuration.
func Compare(n int, cores []int, cacheKB, warmup, measured int) ([]CompareRow, error) {
	rows := make([]CompareRow, len(cores))
	errs := make([]error, len(cores))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, c := range cores {
		wg.Add(1)
		go func(i, c int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			row, err := compareOne(n, c, cacheKB, warmup, measured)
			rows[i], errs[i] = row, err
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func compareOne(n, cores, cacheKB, warmup, measured int) (CompareRow, error) {
	spec := jacobi.Spec{N: n, Warmup: warmup, Measured: measured}
	row := CompareRow{Compute: cores, CacheKB: cacheKB}
	for _, v := range []jacobi.Variant{jacobi.HybridFull, jacobi.HybridSync, jacobi.PureSM} {
		cfg := core.DefaultConfig(cores, cacheKB, 0)
		res, err := jacobi.Run(cfg, spec, v)
		if err != nil {
			return row, err
		}
		switch v {
		case jacobi.HybridFull:
			row.HybridFull = res.CyclesPerIteration
			row.MissRate = res.MissRate
		case jacobi.HybridSync:
			row.HybridSync = res.CyclesPerIteration
		case jacobi.PureSM:
			row.PureSM = res.CyclesPerIteration
		}
	}
	row.FullVsSM = float64(row.PureSM) / float64(row.HybridFull)
	row.SyncVsSM = float64(row.PureSM) / float64(row.HybridSync)
	row.FullVsSync = float64(row.HybridSync) / float64(row.HybridFull)
	return row, nil
}
