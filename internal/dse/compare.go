package dse

import (
	"context"

	"repro/internal/core"
	"repro/internal/jacobi"
	"repro/internal/par"
)

// CompareRow holds the three programming-model variants evaluated on one
// configuration, reproducing the paper's hybrid vs shared-memory analysis.
type CompareRow struct {
	Compute int
	CacheKB int

	HybridFull int64 // cycles/iteration, data + sync over messages
	HybridSync int64 // cycles/iteration, data over shared memory, sync over messages
	PureSM     int64 // cycles/iteration, pure shared memory

	MissRate float64 // hybrid-full L1 miss rate (locates the cache knee)

	// FullVsSM is the headline ratio: pure shared memory time over
	// hybrid-full time (the paper reports 2x below the cache knee growing
	// to >5x at 10 cores / 16 kB).
	FullVsSM float64
	// SyncVsSM isolates the synchronization benefit: pure-SM time over
	// hybrid-sync time.
	SyncVsSM float64
	// FullVsSync isolates the data-exchange benefit: hybrid-sync time
	// over hybrid-full time.
	FullVsSync float64
}

// Compare runs all three variants for every core count at a fixed cache
// size and returns one row per configuration.
func Compare(n int, cores []int, cacheKB, warmup, measured int) ([]CompareRow, error) {
	return CompareCtx(context.Background(), n, cores, cacheKB, warmup, measured)
}

// CompareCtx is Compare with cooperative cancellation, running on the
// same bounded worker pool as the sweeps (see SweepCtx for the error
// shape).
func CompareCtx(ctx context.Context, n int, cores []int, cacheKB, warmup, measured int) ([]CompareRow, error) {
	rows := make([]CompareRow, len(cores))
	if err := par.ForEachCtx(ctx, len(cores), DefaultParallelism(), func(i int) error {
		row, err := compareOne(ctx, n, cores[i], cacheKB, warmup, measured)
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

func compareOne(ctx context.Context, n, cores, cacheKB, warmup, measured int) (CompareRow, error) {
	spec := jacobi.Spec{N: n, Warmup: warmup, Measured: measured}
	row := CompareRow{Compute: cores, CacheKB: cacheKB}
	for _, v := range []jacobi.Variant{jacobi.HybridFull, jacobi.HybridSync, jacobi.PureSM} {
		cfg := core.DefaultConfig(cores, cacheKB, 0)
		res, err := jacobi.RunCtx(ctx, cfg, spec, v)
		if err != nil {
			return row, err
		}
		switch v {
		case jacobi.HybridFull:
			row.HybridFull = res.CyclesPerIteration
			row.MissRate = res.MissRate
		case jacobi.HybridSync:
			row.HybridSync = res.CyclesPerIteration
		case jacobi.PureSM:
			row.PureSM = res.CyclesPerIteration
		}
	}
	row.FullVsSM = float64(row.PureSM) / float64(row.HybridFull)
	row.SyncVsSM = float64(row.PureSM) / float64(row.HybridSync)
	row.FullVsSync = float64(row.HybridSync) / float64(row.HybridFull)
	return row, nil
}
