package dse

// This file implements the router ablation (experiment R-1): the same
// synthetic traffic swept over every router implementation, reporting the
// saturation throughput and the peak buffer occupancy per router. This is
// the design-space view of the paper's central network argument — the
// deflection router trades a little high-load throughput for zero
// buffering — made runnable over the full router axis (deflection, XY,
// adaptive, wormhole-VC).

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/noc"
	"repro/internal/par"
)

// RouterPoint is one (router, rate) evaluation of the ablation sweep.
type RouterPoint struct {
	Router         noc.RouterKind
	Rate           float64
	Throughput     float64 // delivered flits/node/cycle
	MeanLatency    float64
	P99Latency     float64
	DeflectionRate float64
	PeakBuffer     int // worst per-switch buffer occupancy
}

// RouterAblationOptions parameterizes RouterAblation. The zero value is
// not runnable; use DefaultRouterAblationOptions.
type RouterAblationOptions struct {
	W, H    int
	Pattern noc.Pattern
	Rates   []float64
	Warmup  int64
	Measure int64
	Seed    int64
	// Routers defaults to every defined kind.
	Routers []noc.RouterKind
	// Parallelism bounds concurrent simulations; 0 means GOMAXPROCS.
	Parallelism int
}

// DefaultRouterAblationOptions returns the calibrated R-1 configuration:
// the paper's 4x4 torus under transpose traffic (the adversarial pattern
// for dimension-ordered routing, and the one BenchmarkDeflectionVsXY
// already uses), swept from well below saturation to well past it.
func DefaultRouterAblationOptions() RouterAblationOptions {
	return RouterAblationOptions{
		W: 4, H: 4,
		Pattern: noc.Transpose,
		Rates:   []float64{0.05, 0.2, 0.4, 0.6, 0.9},
		Warmup:  500,
		Measure: 4000,
		Seed:    1,
	}
}

// RouterAblation sweeps routers x rates on the fixed worker pool and
// returns one point per combination, routers outermost, in deterministic
// order.
func RouterAblation(o RouterAblationOptions) ([]RouterPoint, error) {
	return RouterAblationCtx(context.Background(), o)
}

// RouterAblationCtx is RouterAblation with cooperative cancellation (see
// SweepCtx for the error shape).
func RouterAblationCtx(ctx context.Context, o RouterAblationOptions) ([]RouterPoint, error) {
	topo, err := noc.NewTopology(o.W, o.H)
	if err != nil {
		return nil, err
	}
	if err := noc.ValidatePattern(o.Pattern, topo); err != nil {
		return nil, err
	}
	if len(o.Rates) == 0 {
		return nil, fmt.Errorf("dse: router ablation needs at least one rate")
	}
	for _, r := range o.Rates {
		if r <= 0 || r > 1 {
			return nil, fmt.Errorf("dse: offered load %g outside (0, 1]", r)
		}
	}
	if o.Measure <= 0 {
		return nil, fmt.Errorf("dse: measurement window must be positive, got %d", o.Measure)
	}
	routers := o.Routers
	if len(routers) == 0 {
		routers = noc.AllRouters()
	}

	points := make([]RouterPoint, len(routers)*len(o.Rates))
	if err := par.ForEachCtx(ctx, len(points), parallelismOr(o.Parallelism), func(i int) error {
		kind := routers[i/len(o.Rates)]
		rate := o.Rates[i%len(o.Rates)]
		m, err := noc.MeasureCtx(ctx, topo, noc.MeasureConfig{
			Router:  kind,
			Traffic: noc.TrafficConfig{Pattern: o.Pattern, Rate: rate},
			Warmup:  o.Warmup,
			Measure: o.Measure,
			Seed:    o.Seed,
		})
		if err != nil {
			return err
		}
		points[i] = RouterPoint{
			Router:         kind,
			Rate:           rate,
			Throughput:     m.Throughput,
			MeanLatency:    m.MeanLatency,
			P99Latency:     m.P99Latency,
			DeflectionRate: m.DeflectionRate,
			PeakBuffer:     m.PeakBuffer,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return points, nil
}

// SaturationThroughput reduces ablation points to the saturation
// throughput per router: the highest delivered throughput the router
// reached at any offered load in the sweep.
func SaturationThroughput(points []RouterPoint) map[noc.RouterKind]float64 {
	sat := map[noc.RouterKind]float64{}
	for _, p := range points {
		if p.Throughput > sat[p.Router] {
			sat[p.Router] = p.Throughput
		}
	}
	return sat
}

// PeakBufferByRouter reduces ablation points to the worst per-switch
// buffer occupancy each router ever needed across the sweep (always 0 for
// the bufferless kinds).
func PeakBufferByRouter(points []RouterPoint) map[noc.RouterKind]int {
	peak := map[noc.RouterKind]int{}
	for _, p := range points {
		if _, ok := peak[p.Router]; !ok || p.PeakBuffer > peak[p.Router] {
			peak[p.Router] = p.PeakBuffer
		}
	}
	return peak
}

// RouterAblationTable renders the ablation as an aligned table, one row
// per (router, rate) with a per-router summary row of saturation
// throughput and peak buffering.
func RouterAblationTable(o RouterAblationOptions, points []RouterPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "R-1 router ablation: %dx%d torus, %v traffic, %d cycles/point\n",
		o.W, o.H, o.Pattern, o.Measure)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "router\trate\tthroughput\tmean-lat\tp99-lat\tdefl/flit\tpeak-buf\t")
	sat := SaturationThroughput(points)
	peak := PeakBufferByRouter(points)
	var last noc.RouterKind = -1
	for _, p := range points {
		if p.Router != last && last >= 0 {
			fmt.Fprintf(w, "%v saturation\t\t%.3f\t\t\t\tmax %d\t\n", last, sat[last], peak[last])
		}
		last = p.Router
		fmt.Fprintf(w, "%v\t%.2f\t%.3f\t%.1f\t%.0f\t%.2f\t%d\t\n",
			p.Router, p.Rate, p.Throughput, p.MeanLatency, p.P99Latency,
			p.DeflectionRate, p.PeakBuffer)
	}
	if last >= 0 {
		fmt.Fprintf(w, "%v saturation\t\t%.3f\t\t\t\tmax %d\t\n", last, sat[last], peak[last])
	}
	w.Flush()
	return b.String()
}
