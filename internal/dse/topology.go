package dse

// This file implements the topology ablation (experiment T-3): the same
// router under the same synthetic traffic swept over every topology kind,
// reporting per-fabric saturation throughput, deflection cost and buffer
// cost. This is the design-space view of the topology axis: the paper's
// folded torus against a non-wrapping mesh (same switch count, no wrap
// links — edge deflections get expensive) and a concentrated mesh (a
// quarter of the switches, four endpoints per local crossbar — cheaper
// fabric, thinner bisection per endpoint).

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/noc"
	"repro/internal/par"
)

// TopologyPoint is one (topology, rate) evaluation of the ablation sweep.
type TopologyPoint struct {
	Topology       noc.TopologyKind
	Rate           float64
	Throughput     float64 // delivered flits/endpoint/cycle
	MeanLatency    float64
	P99Latency     float64
	DeflectionRate float64
	PeakBuffer     int // worst per-switch buffer occupancy
}

// TopologyAblationOptions parameterizes TopologyAblation. The zero value
// is not runnable; use DefaultTopologyAblationOptions.
type TopologyAblationOptions struct {
	// W, H size the endpoint grid (every fabric serves the same endpoint
	// count, so per-endpoint throughput is directly comparable).
	W, H    int
	Router  noc.RouterKind
	Pattern noc.Pattern
	Rates   []float64
	Warmup  int64
	Measure int64
	Seed    int64
	// Topologies defaults to every defined kind.
	Topologies []noc.TopologyKind
	// Parallelism bounds concurrent simulations; 0 means GOMAXPROCS.
	Parallelism int
}

// DefaultTopologyAblationOptions returns the calibrated T-3
// configuration: the paper's deflection router on an 8x8 endpoint grid
// (the cmesh folds it onto a 4x4 switch grid) under uniform traffic, the
// pattern every fabric serves without adversarial bias, swept from well
// below saturation to well past it.
func DefaultTopologyAblationOptions() TopologyAblationOptions {
	return TopologyAblationOptions{
		W: 8, H: 8,
		Router:  noc.RouterDeflection,
		Pattern: noc.Uniform,
		Rates:   []float64{0.05, 0.15, 0.3, 0.5, 0.8},
		Warmup:  500,
		Measure: 4000,
		Seed:    1,
	}
}

// TopologyAblation sweeps topologies x rates on the fixed worker pool and
// returns one point per combination, topologies outermost, in
// deterministic order. Every listed pattern/topology combination must
// pass per-topology validation.
func TopologyAblation(o TopologyAblationOptions) ([]TopologyPoint, error) {
	return TopologyAblationCtx(context.Background(), o)
}

// TopologyAblationCtx is TopologyAblation with cooperative cancellation
// (see SweepCtx for the error shape).
func TopologyAblationCtx(ctx context.Context, o TopologyAblationOptions) ([]TopologyPoint, error) {
	kinds := o.Topologies
	if len(kinds) == 0 {
		kinds = noc.AllTopologies()
	}
	topos := make([]noc.Topology, len(kinds))
	for i, k := range kinds {
		topo, err := noc.NewTopologyOfKind(k, o.W, o.H)
		if err != nil {
			return nil, err
		}
		if err := noc.ValidatePattern(o.Pattern, topo); err != nil {
			return nil, err
		}
		topos[i] = topo
	}
	if len(o.Rates) == 0 {
		return nil, fmt.Errorf("dse: topology ablation needs at least one rate")
	}
	for _, r := range o.Rates {
		if r <= 0 || r > 1 {
			return nil, fmt.Errorf("dse: offered load %g outside (0, 1]", r)
		}
	}
	if o.Measure <= 0 {
		return nil, fmt.Errorf("dse: measurement window must be positive, got %d", o.Measure)
	}

	points := make([]TopologyPoint, len(topos)*len(o.Rates))
	if err := par.ForEachCtx(ctx, len(points), parallelismOr(o.Parallelism), func(i int) error {
		topo := topos[i/len(o.Rates)]
		rate := o.Rates[i%len(o.Rates)]
		m, err := noc.MeasureCtx(ctx, topo, noc.MeasureConfig{
			Router:  o.Router,
			Traffic: noc.TrafficConfig{Pattern: o.Pattern, Rate: rate},
			Warmup:  o.Warmup,
			Measure: o.Measure,
			Seed:    o.Seed,
		})
		if err != nil {
			return err
		}
		points[i] = TopologyPoint{
			Topology:       topo.Kind(),
			Rate:           rate,
			Throughput:     m.Throughput,
			MeanLatency:    m.MeanLatency,
			P99Latency:     m.P99Latency,
			DeflectionRate: m.DeflectionRate,
			PeakBuffer:     m.PeakBuffer,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return points, nil
}

// SaturationThroughputByTopology reduces ablation points to the
// saturation throughput per fabric: the highest delivered per-endpoint
// throughput the fabric reached at any offered load in the sweep.
func SaturationThroughputByTopology(points []TopologyPoint) map[noc.TopologyKind]float64 {
	sat := map[noc.TopologyKind]float64{}
	for _, p := range points {
		if p.Throughput > sat[p.Topology] {
			sat[p.Topology] = p.Throughput
		}
	}
	return sat
}

// PeakDeflectionRateByTopology reduces ablation points to the worst
// deflections-per-delivered-flit each fabric exhibited across the sweep —
// the deflection cost of losing wrap links (mesh) or sharing a switch
// between four endpoints (cmesh). Always 0 for buffered routers.
func PeakDeflectionRateByTopology(points []TopologyPoint) map[noc.TopologyKind]float64 {
	worst := map[noc.TopologyKind]float64{}
	for _, p := range points {
		if _, ok := worst[p.Topology]; !ok || p.DeflectionRate > worst[p.Topology] {
			worst[p.Topology] = p.DeflectionRate
		}
	}
	return worst
}

// PeakBufferByTopology reduces ablation points to the worst per-switch
// buffer occupancy each fabric ever needed across the sweep (always 0 for
// the bufferless routers).
func PeakBufferByTopology(points []TopologyPoint) map[noc.TopologyKind]int {
	peak := map[noc.TopologyKind]int{}
	for _, p := range points {
		if _, ok := peak[p.Topology]; !ok || p.PeakBuffer > peak[p.Topology] {
			peak[p.Topology] = p.PeakBuffer
		}
	}
	return peak
}

// TopologyAblationTable renders the ablation as an aligned table, one row
// per (topology, rate) with a per-fabric summary row of saturation
// throughput, worst deflection cost and peak buffering.
func TopologyAblationTable(o TopologyAblationOptions, points []TopologyPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "T-3 topology ablation: %dx%d endpoints, %v router, %v traffic, %d cycles/point\n",
		o.W, o.H, o.Router, o.Pattern, o.Measure)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "topology\trate\tthroughput\tmean-lat\tp99-lat\tdefl/flit\tpeak-buf\t")
	sat := SaturationThroughputByTopology(points)
	defl := PeakDeflectionRateByTopology(points)
	peak := PeakBufferByTopology(points)
	var last noc.TopologyKind = -1
	summary := func(k noc.TopologyKind) {
		fmt.Fprintf(w, "%v saturation\t\t%.3f\t\t\tmax %.2f\tmax %d\t\n", k, sat[k], defl[k], peak[k])
	}
	for _, p := range points {
		if p.Topology != last && last >= 0 {
			summary(last)
		}
		last = p.Topology
		fmt.Fprintf(w, "%v\t%.2f\t%.3f\t%.1f\t%.0f\t%.2f\t%d\t\n",
			p.Topology, p.Rate, p.Throughput, p.MeanLatency, p.P99Latency,
			p.DeflectionRate, p.PeakBuffer)
	}
	if last >= 0 {
		summary(last)
	}
	w.Flush()
	return b.String()
}
