package dse

// This file implements the service ablation (experiment S-2): the
// request/response workload swept over hotspot skews and arrival rates on
// the paper's 4x4 fabric, reporting how server-side tail latency departs
// from the network components as load concentrates on one server. It is
// the queueing-theory counterpart of the router ablation: R-1 stresses
// the fabric, S-2 shows the fabric staying flat while the hot server's
// queue, not the network, becomes the bottleneck.

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/noc"
	"repro/internal/par"
)

// ServicePoint is one (skew, rate) evaluation of the ablation sweep.
type ServicePoint struct {
	Skew        float64
	Rate        float64
	Completed   int64
	Throughput  float64 // completed requests/client/cycle
	MeanLatency float64
	P99Latency  float64
	MeanServer  float64
	MeanNet     float64 // request + response network components
	P99Server   float64 // the hotspot signal
}

// ServiceAblationOptions parameterizes ServiceAblation. The zero value is
// not runnable; use DefaultServiceAblationOptions.
type ServiceAblationOptions struct {
	W, H      int
	Router    noc.RouterKind
	Servers   int
	ThinkTime int64
	Skews     []float64
	Rates     []float64
	Warmup    int64
	Measure   int64
	Seed      int64
	// Parallelism bounds concurrent simulations; 0 means GOMAXPROCS.
	Parallelism int
}

// DefaultServiceAblationOptions returns the calibrated S-2 configuration:
// 12 clients and 4 servers on the paper's 4x4 torus, arrival rates from
// lightly loaded to past the hot server's service capacity, and skews
// from uniform placement to near-total concentration.
func DefaultServiceAblationOptions() ServiceAblationOptions {
	return ServiceAblationOptions{
		W: 4, H: 4,
		Router:    noc.RouterDeflection,
		Servers:   4,
		ThinkTime: 8,
		Skews:     []float64{0, 0.5, 0.9},
		Rates:     []float64{0.01, 0.02, 0.04},
		Warmup:    500,
		Measure:   6000,
		Seed:      1,
	}
}

// ServiceAblation sweeps skews x rates on the fixed worker pool and
// returns one point per combination, skews outermost, in deterministic
// order.
func ServiceAblation(o ServiceAblationOptions) ([]ServicePoint, error) {
	return ServiceAblationCtx(context.Background(), o)
}

// ServiceAblationCtx is ServiceAblation with cooperative cancellation.
func ServiceAblationCtx(ctx context.Context, o ServiceAblationOptions) ([]ServicePoint, error) {
	topo, err := noc.NewTopology(o.W, o.H)
	if err != nil {
		return nil, err
	}
	if len(o.Skews) == 0 || len(o.Rates) == 0 {
		return nil, fmt.Errorf("dse: service ablation needs at least one skew and one rate")
	}
	if o.Measure <= 0 {
		return nil, fmt.Errorf("dse: measurement window must be positive, got %d", o.Measure)
	}

	points := make([]ServicePoint, len(o.Skews)*len(o.Rates))
	if err := par.ForEachCtx(ctx, len(points), parallelismOr(o.Parallelism), func(i int) error {
		skew := o.Skews[i/len(o.Rates)]
		rate := o.Rates[i%len(o.Rates)]
		m, err := noc.MeasureServiceCtx(ctx, topo, noc.ServiceMeasureConfig{
			Router:      o.Router,
			Servers:     o.Servers,
			ArrivalRate: rate,
			ThinkTime:   o.ThinkTime,
			HotspotSkew: skew,
			Warmup:      o.Warmup,
			Measure:     o.Measure,
			Seed:        o.Seed,
		})
		if err != nil {
			return err
		}
		points[i] = ServicePoint{
			Skew:        skew,
			Rate:        rate,
			Completed:   m.Completed,
			Throughput:  m.Throughput,
			MeanLatency: m.MeanLatency,
			P99Latency:  m.P99Latency,
			MeanServer:  m.MeanServer,
			MeanNet:     m.MeanNetOut + m.MeanNetBack,
			P99Server:   m.P99Server,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return points, nil
}

// P99ServerBySkew reduces ablation points to the worst server-side p99
// each skew reached across the rate sweep — the single number that shows
// concentration, not fabric congestion, driving the tail.
func P99ServerBySkew(points []ServicePoint) map[float64]float64 {
	worst := map[float64]float64{}
	for _, p := range points {
		if p.P99Server > worst[p.Skew] {
			worst[p.Skew] = p.P99Server
		}
	}
	return worst
}

// ServiceAblationTable renders the ablation as an aligned table, one row
// per (skew, rate) with a per-skew summary row of the worst server p99.
func ServiceAblationTable(o ServiceAblationOptions, points []ServicePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "S-2 service ablation: %dx%d torus, %v router, %d servers, think %d, %d cycles/point\n",
		o.W, o.H, o.Router, o.Servers, o.ThinkTime, o.Measure)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "skew\trate\tdone\tthroughput\tmean-lat\tp99-lat\tserver\tnet\tp99-srv\t")
	worst := P99ServerBySkew(points)
	last := -1.0
	for _, p := range points {
		if p.Skew != last && last >= 0 {
			fmt.Fprintf(w, "skew %.2f worst p99-srv\t\t\t\t\t\t\t\t%.0f\t\n", last, worst[last])
		}
		last = p.Skew
		fmt.Fprintf(w, "%.2f\t%.3f\t%d\t%.4f\t%.1f\t%.0f\t%.1f\t%.1f\t%.0f\t\n",
			p.Skew, p.Rate, p.Completed, p.Throughput, p.MeanLatency, p.P99Latency,
			p.MeanServer, p.MeanNet, p.P99Server)
	}
	if last >= 0 {
		fmt.Fprintf(w, "skew %.2f worst p99-srv\t\t\t\t\t\t\t\t%.0f\t\n", last, worst[last])
	}
	w.Flush()
	return b.String()
}
