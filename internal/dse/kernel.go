package dse

// This file implements the kernel axis and the kernel ablation
// (experiment K-1): every compute kernel (jacobi, matmul, syncbench) run
// in both of the paper's programming models — message passing
// (hybrid-full) against pure shared memory — across core counts, from one
// execution path. KernelSweep is that path: the scenario runner's kernel
// workloads and the hand-coded K-1 table both delegate here, so the
// declarative and programmatic results are golden-comparable
// point-for-point.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/jacobi"
	"repro/internal/par"
	"repro/internal/resultcache"
	"repro/internal/syncbench"
)

// Kernel selects a compute kernel for KernelSweep. Kernels are a
// first-class sweep axis: every kind runs on the same full MEDEA system
// (cores + caches + MPMMU over the NoC) under the same Variant vocabulary,
// so the cost of the two communication paths is directly comparable across
// workloads with opposite communication profiles.
type Kernel int

// The three kernel implementations.
const (
	// KernelJacobi is the paper's application: per-iteration halo exchange
	// (latency-bound communication).
	KernelJacobi Kernel = iota
	// KernelMatmul is the future-work matrix multiply: one bulk broadcast
	// (bandwidth-bound communication).
	KernelMatmul
	// KernelSyncbench is the bare synchronization episode: barriers with
	// no compute around them (pure synchronization latency).
	KernelSyncbench

	// numKernels counts the defined kernels (keep it last).
	numKernels
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KernelJacobi:
		return "jacobi"
	case KernelMatmul:
		return "matmul"
	case KernelSyncbench:
		return "syncbench"
	}
	return fmt.Sprintf("kernel(%d)", int(k))
}

// AllKernels returns every defined kernel in declaration order.
func AllKernels() []Kernel {
	out := make([]Kernel, numKernels)
	for i := range out {
		out[i] = Kernel(i)
	}
	return out
}

// KernelNames returns the canonical names of every kernel, for flag
// documentation and error messages.
func KernelNames() []string {
	names := make([]string, numKernels)
	for i := range names {
		names[i] = Kernel(i).String()
	}
	return names
}

// ParseKernel resolves a kernel from its canonical name (as printed by
// Kernel.String) or its numeric value. Matching is case-insensitive and
// accepts "_" for "-", mirroring noc.ParseRouter.
func ParseKernel(s string) (Kernel, error) {
	norm := strings.ReplaceAll(strings.ToLower(strings.TrimSpace(s)), "_", "-")
	for k := Kernel(0); k < numKernels; k++ {
		if norm == k.String() {
			return k, nil
		}
	}
	if n, err := strconv.Atoi(norm); err == nil {
		if n >= 0 && n < int(numKernels) {
			return Kernel(n), nil
		}
		return 0, fmt.Errorf("dse: kernel index %d out of range [0, %d)", n, int(numKernels))
	}
	return 0, fmt.Errorf("dse: unknown kernel %q (have: %s)", s, strings.Join(KernelNames(), ", "))
}

// Supports reports whether the kernel defines the given variant. Jacobi
// and matmul implement all three programming models; syncbench measures
// the synchronization primitive itself, so the data-path-only distinction
// between hybrid-full and hybrid-sync does not exist for it — it offers
// the message barrier (hybrid-full) and the lock barrier (pure-sm).
func (k Kernel) Supports(v jacobi.Variant) bool {
	if k == KernelSyncbench {
		return v == jacobi.HybridFull || v == jacobi.PureSM
	}
	return true
}

// KernelOptions parameterizes a KernelSweep over one kernel.
type KernelOptions struct {
	Kernel Kernel
	// N is the problem size: the grid edge for jacobi, the matrix edge for
	// matmul; syncbench ignores it.
	N int
	// Rounds is the number of synchronization episodes syncbench averages
	// over (default 20); the other kernels ignore it.
	Rounds int
	// Cores, CachesKB and Policies are the design-space axes, exactly as
	// in Options. Policies defaults to write-back.
	Cores    []int
	CachesKB []int
	Policies []cache.Policy
	// Variants lists the programming models to sweep; defaults to
	// hybrid-full only. Every listed variant must be supported by the
	// kernel (syncbench has no hybrid-sync).
	Variants []jacobi.Variant
	// Warmup and Measured are jacobi iteration counts (default 1 each);
	// the other kernels ignore them.
	Warmup   int
	Measured int
	// Parallelism bounds concurrent simulations; 0 means GOMAXPROCS.
	Parallelism int
	// Cache content-addresses each point's simulation result; nil means
	// cache off (see Options.Cache).
	Cache *resultcache.Cache
	// Points restricts the sweep to the listed indices of the canonical
	// (variant, policy, cache, cores) order, variants outermost — see
	// Options.Points. Speedup is not attached on a filtered sweep.
	Points []int
}

// KernelPoint is one evaluated (kernel, variant, configuration) point.
type KernelPoint struct {
	Kernel  Kernel
	Variant jacobi.Variant
	Compute int
	CacheKB int
	Policy  cache.Policy

	// Cycles is the kernel's headline metric: cycles per iteration for
	// jacobi, total barrier-to-barrier cycles for matmul, cycles per
	// synchronization episode for syncbench.
	Cycles int64
	// TransferCycles covers matmul's B-distribution phase (0 otherwise).
	TransferCycles int64
	// MissRate is jacobi's mean L1 miss rate (0 otherwise).
	MissRate float64
	// AreaMM2 applies the chip-area model to the configuration.
	AreaMM2 float64
	// MPMMUBusy and NoCFlits quantify where the communication went:
	// memory-node occupancy versus message-path traffic.
	MPMMUBusy int64
	NoCFlits  int64
	// Speedup is relative to the smallest-area configuration of the same
	// (kernel, variant) series, mirroring AttachSpeedup.
	Speedup float64
	// CyclesSkipped counts cycles the engine fast-forwarded over while
	// simulating this point (0 when recalled from the result cache; never
	// rendered — see Point.CyclesSkipped).
	CyclesSkipped int64
}

func (o *KernelOptions) withDefaults() error {
	if len(o.Cores) == 0 {
		return fmt.Errorf("dse: kernel sweep needs at least one core count")
	}
	if len(o.CachesKB) == 0 {
		return fmt.Errorf("dse: kernel sweep needs at least one cache size")
	}
	if len(o.Policies) == 0 {
		o.Policies = []cache.Policy{cache.WriteBack}
	}
	if len(o.Variants) == 0 {
		o.Variants = []jacobi.Variant{jacobi.HybridFull}
	}
	for _, v := range o.Variants {
		if !o.Kernel.Supports(v) {
			return fmt.Errorf("dse: the %v kernel has no %v variant (it measures the barrier itself; use %v or %v)",
				o.Kernel, v, jacobi.HybridFull, jacobi.PureSM)
		}
	}
	if o.Rounds == 0 {
		o.Rounds = 20
	}
	if o.Rounds < 0 {
		return fmt.Errorf("dse: rounds must be positive, got %d", o.Rounds)
	}
	if o.Warmup == 0 && o.Measured == 0 {
		o.Warmup, o.Measured = 1, 1
	}
	if o.Measured == 0 {
		o.Measured = 1
	}
	switch o.Kernel {
	case KernelJacobi, KernelMatmul:
		if o.N <= 0 {
			return fmt.Errorf("dse: the %v kernel needs a problem size N", o.Kernel)
		}
	}
	return nil
}

// KernelSweep evaluates the variants x policies x caches x cores
// cross-product of one kernel and returns the points in deterministic
// axis order (variants outermost, then policy, cache, cores — the same
// inner ordering as Sweep). Speedup is attached per variant series. This
// is the single execution path behind scenario kernel workloads,
// KernelAblation and cmd/medea-experiments.
func KernelSweep(o KernelOptions) ([]KernelPoint, error) {
	return KernelSweepCtx(context.Background(), o)
}

// KernelSweepCtx is KernelSweep with cooperative cancellation: a canceled
// context stops dispatching new points and interrupts in-flight
// simulations (see SweepCtx for the error shape).
func KernelSweepCtx(ctx context.Context, o KernelOptions) ([]KernelPoint, error) {
	if err := o.withDefaults(); err != nil {
		return nil, err
	}
	perVariant := len(o.Policies) * len(o.CachesKB) * len(o.Cores)
	if err := selectPoints(perVariant*len(o.Variants), o.Points); err != nil {
		return nil, err
	}
	var out []KernelPoint
	for vi, variant := range o.Variants {
		local := o.Points
		if o.Points != nil {
			// Split the global filter into this variant's slice of the
			// canonical order (variants outermost), rebased to local
			// indices.
			local = make([]int, 0)
			for _, p := range o.Points {
				if p >= vi*perVariant && p < (vi+1)*perVariant {
					local = append(local, p-vi*perVariant)
				}
			}
			if len(local) == 0 {
				continue
			}
		}
		pts, err := kernelVariantSweep(ctx, o, variant, local)
		if err != nil {
			return nil, err
		}
		if o.Points == nil {
			AttachKernelSpeedup(pts)
		}
		out = append(out, pts...)
	}
	return out, nil
}

// kernelVariantSweep runs one variant's policies x caches x cores grid,
// restricted to the local point indices when points is non-nil. Jacobi
// delegates to Sweep so the declarative path, the figure sweeps and the
// kernel ablation share one execution path byte-for-byte.
func kernelVariantSweep(ctx context.Context, o KernelOptions, variant jacobi.Variant, points []int) ([]KernelPoint, error) {
	if o.Kernel == KernelJacobi {
		pts, err := SweepCtx(ctx, Options{
			N:           o.N,
			Cores:       o.Cores,
			CachesKB:    o.CachesKB,
			Policies:    o.Policies,
			Variant:     variant,
			Warmup:      o.Warmup,
			Measured:    o.Measured,
			Parallelism: o.Parallelism,
			Cache:       o.Cache,
			Points:      points,
		})
		if err != nil {
			return nil, err
		}
		out := make([]KernelPoint, len(pts))
		for i, p := range pts {
			out[i] = KernelPoint{
				Kernel: KernelJacobi, Variant: variant,
				Compute: p.Compute, CacheKB: p.CacheKB, Policy: p.Policy,
				Cycles:   p.CyclesPerIter,
				MissRate: p.MissRate,
				AreaMM2:  p.AreaMM2,
				// Speedup intentionally dropped: attachKernelSpeedup
				// recomputes it identically over the same series.
				MPMMUBusy:     p.MPMMUBusy,
				NoCFlits:      p.NoCFlits,
				CyclesSkipped: p.CyclesSkipped,
			}
		}
		return out, nil
	}

	type job struct {
		idx       int
		cores, kb int
		policy    cache.Policy
	}
	var jobs []job
	for _, pol := range o.Policies {
		for _, kb := range o.CachesKB {
			for _, c := range o.Cores {
				jobs = append(jobs, job{idx: len(jobs), cores: c, kb: kb, policy: pol})
			}
		}
	}
	if points != nil {
		sel := make([]job, len(points))
		for i, p := range points {
			sel[i] = jobs[p]
			sel[i].idx = i
		}
		jobs = sel
	}
	out := make([]KernelPoint, len(jobs))
	if err := par.ForEachCtx(ctx, len(jobs), parallelismOr(o.Parallelism), func(i int) error {
		j := jobs[i]
		cfg := core.DefaultConfig(j.cores, j.kb, j.policy)
		p := KernelPoint{
			Kernel: o.Kernel, Variant: variant,
			Compute: j.cores, CacheKB: j.kb, Policy: j.policy,
			AreaMM2: Area(j.cores, j.kb, cfg.MPMMUCacheKB),
		}
		switch o.Kernel {
		case KernelMatmul:
			val, skipped, err := matmulPointValueCached(ctx, o.Cache, cfg, o.N, variant, j.cores, j.kb, j.policy)
			if err != nil {
				return err
			}
			p.Cycles = val.Cycles
			p.TransferCycles = val.TransferCycles
			p.MPMMUBusy = val.MPMMUBusy
			p.NoCFlits = val.NoCFlits
			p.CyclesSkipped = skipped
		case KernelSyncbench:
			kind := syncbench.MessageBarrier
			if variant == jacobi.PureSM {
				kind = syncbench.LockBarrier
			}
			val, skipped, err := syncbenchPointValueCached(ctx, o.Cache, cfg, kind, o.Rounds, j.cores, j.kb, j.policy)
			if err != nil {
				return err
			}
			p.Cycles = val.Cycles
			p.MPMMUBusy = val.MPMMUBusy
			p.NoCFlits = val.NoCFlits
			p.CyclesSkipped = skipped
		}
		out[j.idx] = p
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// AttachKernelSpeedup fills Speedup relative to the smallest-area
// configuration of the series, with AttachSpeedup's exact baseline choice
// (equal areas break toward the slower point) so jacobi numbers match the
// figure sweeps bit-for-bit. Exported for the shard merger, which
// reassembles full series from per-shard rows and must reattach the
// cross-point Speedup with this exact algorithm.
func AttachKernelSpeedup(points []KernelPoint) {
	if len(points) == 0 {
		return
	}
	base := -1
	for i, p := range points {
		if base < 0 || p.AreaMM2 < points[base].AreaMM2 ||
			(p.AreaMM2 == points[base].AreaMM2 && p.Cycles > points[base].Cycles) {
			base = i
		}
	}
	ref := float64(points[base].Cycles)
	for i := range points {
		points[i].Speedup = ref / float64(points[i].Cycles)
	}
}

// KernelAblationOptions parameterizes KernelAblation. The zero value is
// not runnable; use DefaultKernelAblationOptions.
type KernelAblationOptions struct {
	// N is the problem size shared by jacobi and matmul.
	N int
	// CacheKB fixes the L1 size (the ablation varies cores, not caches).
	CacheKB int
	// Rounds is the syncbench episode count.
	Rounds int
	Cores  []int
	// Kernels defaults to every defined kernel.
	Kernels []Kernel
	// Variants defaults to the paper's core comparison: hybrid-full
	// (message passing) against pure-sm (shared memory).
	Variants []jacobi.Variant
	// Warmup and Measured are jacobi iteration counts.
	Warmup   int
	Measured int
	// Parallelism bounds concurrent simulations; 0 means GOMAXPROCS.
	Parallelism int
}

// DefaultKernelAblationOptions returns the calibrated K-1 configuration:
// all three kernels at the paper's 30x30 problem size with 16 kB
// write-back L1s (the T-1 sweet spot, where caches hold the working set
// and the communication paths dominate), in both programming models,
// across the Quick core range. examples/scenarios/kernel-ablation.json
// mirrors these values; the golden test holds the two in lockstep.
func DefaultKernelAblationOptions() KernelAblationOptions {
	return KernelAblationOptions{
		N:        30,
		CacheKB:  16,
		Rounds:   20,
		Cores:    []int{2, 4, 6, 8, 10, 12},
		Variants: []jacobi.Variant{jacobi.HybridFull, jacobi.PureSM},
		Warmup:   1,
		Measured: 1,
	}
}

// KernelAblation sweeps kernels x variants x cores and returns one point
// per combination, kernels outermost, in deterministic order. Each
// kernel's share is one KernelSweep, the execution path shared with the
// scenario runner.
func KernelAblation(o KernelAblationOptions) ([]KernelPoint, error) {
	return KernelAblationCtx(context.Background(), o)
}

// KernelAblationCtx is KernelAblation with cooperative cancellation.
func KernelAblationCtx(ctx context.Context, o KernelAblationOptions) ([]KernelPoint, error) {
	kernels := o.Kernels
	if len(kernels) == 0 {
		kernels = AllKernels()
	}
	if len(o.Variants) == 0 {
		o.Variants = []jacobi.Variant{jacobi.HybridFull, jacobi.PureSM}
	}
	var out []KernelPoint
	for _, k := range kernels {
		pts, err := KernelSweepCtx(ctx, KernelOptions{
			Kernel:      k,
			N:           o.N,
			Rounds:      o.Rounds,
			Cores:       o.Cores,
			CachesKB:    []int{o.CacheKB},
			Variants:    o.Variants,
			Warmup:      o.Warmup,
			Measured:    o.Measured,
			Parallelism: o.Parallelism,
		})
		if err != nil {
			return nil, fmt.Errorf("kernel ablation: %w", err)
		}
		out = append(out, pts...)
	}
	return out, nil
}

// MessagingAdvantageByKernel reduces ablation points to the paper's
// headline ratio per kernel: the largest pure-sm/hybrid-full cycle ratio
// across matching configurations — how much the message path wins, at its
// best, for each communication profile.
func MessagingAdvantageByKernel(points []KernelPoint) map[Kernel]float64 {
	type key struct {
		k       Kernel
		cores   int
		cacheKB int
		policy  cache.Policy
	}
	full := map[key]int64{}
	for _, p := range points {
		if p.Variant == jacobi.HybridFull {
			full[key{p.Kernel, p.Compute, p.CacheKB, p.Policy}] = p.Cycles
		}
	}
	best := map[Kernel]float64{}
	for _, p := range points {
		if p.Variant != jacobi.PureSM {
			continue
		}
		f, ok := full[key{p.Kernel, p.Compute, p.CacheKB, p.Policy}]
		if !ok || f == 0 {
			continue
		}
		if r := float64(p.Cycles) / float64(f); r > best[p.Kernel] {
			best[p.Kernel] = r
		}
	}
	return best
}

// PeakSpeedupByKernel reduces ablation points to the best scaling each
// kernel reached under the message-passing model: its highest Speedup
// (relative to the smallest configuration of the same series).
func PeakSpeedupByKernel(points []KernelPoint) map[Kernel]float64 {
	best := map[Kernel]float64{}
	for _, p := range points {
		if p.Variant != jacobi.HybridFull {
			continue
		}
		if _, ok := best[p.Kernel]; !ok || p.Speedup > best[p.Kernel] {
			best[p.Kernel] = p.Speedup
		}
	}
	return best
}

// KernelAblationTable renders the ablation as an aligned table, one row
// per (kernel, variant, cores) with a per-kernel summary row of the best
// message-over-shared-memory ratio and the peak message-path speedup.
func KernelAblationTable(o KernelAblationOptions, points []KernelPoint) string {
	var b strings.Builder
	// N only means something when a kernel with a problem size is swept;
	// a syncbench-only table (cmd/medea-experiments -fig barrier) omits it.
	size := ""
	for _, p := range points {
		if p.Kernel != KernelSyncbench {
			size = fmt.Sprintf("N=%d, ", o.N)
			break
		}
	}
	fmt.Fprintf(&b, "K-1 kernel ablation: %s%d kB write-back L1s, message passing vs shared memory\n",
		size, o.CacheKB)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "kernel\tvariant\tcores\tcycles\tspeedup\tmpmmu-busy\tnoc-flits\t")
	adv := MessagingAdvantageByKernel(points)
	peak := PeakSpeedupByKernel(points)
	var last Kernel = -1
	// A sweep can lack one side of a reducer (e.g. -variants pure-sm has
	// no message-passing rows); print n/a rather than a measured-looking 0x.
	ratio := func(m map[Kernel]float64, k Kernel) string {
		if v, ok := m[k]; ok {
			return fmt.Sprintf("%.2fx", v)
		}
		return "n/a"
	}
	summary := func(k Kernel) {
		fmt.Fprintf(w, "%v summary\t\t\t\tpeak %s\tsm/mp max %s\t\t\n", k, ratio(peak, k), ratio(adv, k))
	}
	for _, p := range points {
		if p.Kernel != last && last >= 0 {
			summary(last)
		}
		last = p.Kernel
		fmt.Fprintf(w, "%v\t%v\t%d\t%d\t%.2f\t%d\t%d\t\n",
			p.Kernel, p.Variant, p.Compute, p.Cycles, p.Speedup, p.MPMMUBusy, p.NoCFlits)
	}
	if last >= 0 {
		summary(last)
	}
	w.Flush()
	return b.String()
}
