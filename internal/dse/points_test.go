package dse

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/jacobi"
)

func pointsTestOptions() Options {
	return Options{
		N:        16,
		Cores:    []int{2, 4},
		CachesKB: []int{4, 8},
		Policies: []cache.Policy{cache.WriteBack, cache.WriteThrough},
		Variant:  jacobi.HybridFull,
		Warmup:   1,
		Measured: 1,
	}
}

// TestSweepPointsFilter: a Points-filtered sweep must return exactly the
// selected slice of the full sweep, in filter order, with every measured
// column identical — only the cross-point Speedup is left for the merger.
func TestSweepPointsFilter(t *testing.T) {
	full, err := Sweep(pointsTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := pointsTestOptions()
	o.Points = []int{1, 3, 6}
	sub, err := Sweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != len(o.Points) {
		t.Fatalf("filtered sweep returned %d points for %d indices", len(sub), len(o.Points))
	}
	for i, p := range o.Points {
		want := full[p]
		want.Speedup = 0 // cross-point: not attached on filtered sweeps
		if sub[i] != want {
			t.Errorf("point %d: filtered %+v, full-sweep %+v", p, sub[i], want)
		}
	}
}

// TestSweepPointsValidation: malformed filters fail before any simulation.
func TestSweepPointsValidation(t *testing.T) {
	for _, tc := range []struct {
		points  []int
		wantSub string
	}{
		{[]int{3, 1}, "increasing"},
		{[]int{2, 2}, "increasing"},
		{[]int{0, 99}, "outside"},
		{[]int{-1}, "increasing"}, // -1 <= prev(-1) trips the order check first
	} {
		o := pointsTestOptions()
		o.Points = tc.points
		_, err := Sweep(o)
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Points=%v: err = %v, want mention of %q", tc.points, err, tc.wantSub)
		}
	}
}

// TestKernelSweepPointsFilter covers the kernel-grid variant of the
// filter: global indices spanning variant series map onto the right
// per-variant jobs.
func TestKernelSweepPointsFilter(t *testing.T) {
	o := KernelOptions{
		Kernel:   KernelJacobi,
		N:        16,
		Cores:    []int{2, 4},
		CachesKB: []int{4},
		Policies: []cache.Policy{cache.WriteBack},
		Variants: []jacobi.Variant{jacobi.HybridFull, jacobi.PureSM},
		Warmup:   1,
		Measured: 1,
	}
	full, err := KernelSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 4 {
		t.Fatalf("full kernel sweep has %d points, want 4", len(full))
	}
	// One index in each variant's series.
	o.Points = []int{1, 2}
	sub, err := KernelSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 {
		t.Fatalf("filtered kernel sweep returned %d points", len(sub))
	}
	for i, p := range o.Points {
		want := full[p]
		want.Speedup = 0
		if sub[i] != want {
			t.Errorf("kernel point %d: filtered %+v, full-sweep %+v", p, sub[i], want)
		}
	}
}
