package dse

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
)

// Experiment fidelity: Quick keeps the qualitative shape with a reduced
// grid so CI and benchmarks stay fast; Full is the paper's exact 168-point
// sweep.
type Fidelity int

const (
	// Quick uses a reduced core/cache grid (shape-preserving).
	Quick Fidelity = iota
	// Full is the paper's complete parameter grid.
	Full
)

func coresFor(f Fidelity) []int {
	if f == Full {
		return PaperCores()
	}
	return []int{2, 4, 6, 8, 10, 12, 15}
}

func cachesFor(f Fidelity) []int {
	if f == Full {
		return PaperCaches()
	}
	return []int{2, 8, 16, 64}
}

// Fig6Options returns the exact sweep options behind Figure 6 at the
// given fidelity, so other drivers (e.g. the scenario runner's golden
// tests) can reproduce the figure numbers from a single source of truth.
func Fig6Options(f Fidelity) Options {
	o := DefaultOptions(60)
	o.Cores = coresFor(f)
	o.CachesKB = cachesFor(f)
	return o
}

// Fig8Options returns the exact sweep options behind Figure 8 at the
// given fidelity.
func Fig8Options(f Fidelity) Options {
	o := DefaultOptions(30)
	o.Cores = coresFor(f)
	o.Policies = []cache.Policy{cache.WriteBack}
	if f == Full {
		o.CachesKB = []int{2, 4, 8, 16, 32}
	} else {
		o.CachesKB = []int{2, 4, 16, 32}
	}
	return o
}

// Fig6 reproduces Figure 6: execution time for a 60x60 array varying the
// number of cores, the cache size and the cache policy. It returns the
// rendered table and the raw points (which Fig7 reuses).
func Fig6(f Fidelity) (string, []Point, error) {
	return Fig6Ctx(context.Background(), f)
}

// Fig6Ctx is Fig6 with cooperative cancellation.
func Fig6Ctx(ctx context.Context, f Fidelity) (string, []Point, error) {
	pts, err := SweepCtx(ctx, Fig6Options(f))
	if err != nil {
		return "", nil, fmt.Errorf("fig6: %w", err)
	}
	return Fig6Table(pts, Fig6Title), pts, nil
}

// Fig6Title and Fig8Title caption the execution-time tables. Exported so
// the sharded driver in cmd/medea-experiments renders merged results with
// the exact captions of the single-process path.
const (
	Fig6Title = "Fig. 6 — Execution time (cycles/iteration), 60x60 array"
	Fig8Title = "Fig. 8 — Execution time (cycles/iteration), 30x30 array, write-back"
)

// Fig7 reproduces Figure 7: optimal speedup and corresponding
// configuration versus chip area for the 60x60 array, from the Fig. 6
// sweep points.
func Fig7(points []Point) string {
	front := ParetoFront(points)
	knee := KillRuleKnee(front)
	return ParetoTable(front, knee, "Fig. 7 — Optimal speedup vs chip area, 60x60 array")
}

// Fig8 reproduces Figure 8: execution time for a 30x30 array, write-back
// caches only, 2-32 kB.
func Fig8(f Fidelity) (string, []Point, error) {
	return Fig8Ctx(context.Background(), f)
}

// Fig8Ctx is Fig8 with cooperative cancellation.
func Fig8Ctx(ctx context.Context, f Fidelity) (string, []Point, error) {
	pts, err := SweepCtx(ctx, Fig8Options(f))
	if err != nil {
		return "", nil, fmt.Errorf("fig8: %w", err)
	}
	return Fig6Table(pts, Fig8Title), pts, nil
}

// Fig9 reproduces Figure 9: optimal speedup versus chip area for the
// 30x30 array, from the Fig. 8 sweep points (write-back, as the labelled
// optimal configurations in the paper all are).
func Fig9(points []Point) string {
	front := ParetoFront(points)
	knee := KillRuleKnee(front)
	return ParetoTable(front, knee, "Fig. 9 — Optimal speedup vs chip area, 30x30 array")
}

// HybridComparison reproduces the prose analysis of Section III (T-1 and
// T-2 in DESIGN.md): the three programming-model variants on a 60x60 array
// with 16 kB caches across core counts, reporting the pure-SM/hybrid and
// sync-only ratios.
func HybridComparison(f Fidelity) (string, []CompareRow, error) {
	return HybridComparisonCtx(context.Background(), f)
}

// HybridComparisonCtx is HybridComparison with cooperative cancellation.
func HybridComparisonCtx(ctx context.Context, f Fidelity) (string, []CompareRow, error) {
	cores := []int{2, 4, 6, 8, 10}
	if f == Full {
		cores = []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	}
	rows, err := CompareCtx(ctx, 60, cores, 16, 1, 1)
	if err != nil {
		return "", nil, fmt.Errorf("hybrid comparison: %w", err)
	}
	return CompareTable(rows,
		"Hybrid vs shared-memory (60x60, 16 kB WB): paper reports 2x below the knee, up to >5x at 10 cores"), rows, nil
}

// SmallCacheComparison runs the variant comparison in the miss-dominated
// regime (2 kB caches), where the paper reports the sync-only hybrid
// within 2-20% of the full hybrid.
func SmallCacheComparison(f Fidelity) (string, []CompareRow, error) {
	return SmallCacheComparisonCtx(context.Background(), f)
}

// SmallCacheComparisonCtx is SmallCacheComparison with cooperative
// cancellation.
func SmallCacheComparisonCtx(ctx context.Context, f Fidelity) (string, []CompareRow, error) {
	cores := []int{2, 6, 10}
	if f == Full {
		cores = []int{2, 4, 6, 8, 10, 12}
	}
	rows, err := CompareCtx(ctx, 60, cores, 2, 1, 1)
	if err != nil {
		return "", nil, fmt.Errorf("small-cache comparison: %w", err)
	}
	return CompareTable(rows,
		"Miss-dominated regime (60x60, 2 kB WB): sync-only hybrid should track the full hybrid within 2-20%"), rows, nil
}

// AllExperiments renders every figure and comparison at the given
// fidelity, in paper order.
func AllExperiments(f Fidelity) (string, error) {
	return AllExperimentsCtx(context.Background(), f)
}

// AllExperimentsCtx is AllExperiments with cooperative cancellation: a
// canceled context stops the in-flight sweep and returns its error,
// discarding the partial report.
func AllExperimentsCtx(ctx context.Context, f Fidelity) (string, error) {
	var b strings.Builder
	t6, p6, err := Fig6Ctx(ctx, f)
	if err != nil {
		return "", err
	}
	b.WriteString(t6)
	b.WriteString("\n")
	b.WriteString(Fig7(p6))
	b.WriteString("\n")
	t8, p8, err := Fig8Ctx(ctx, f)
	if err != nil {
		return "", err
	}
	b.WriteString(t8)
	b.WriteString("\n")
	b.WriteString(Fig9(p8))
	b.WriteString("\n")
	th, _, err := HybridComparisonCtx(ctx, f)
	if err != nil {
		return "", err
	}
	b.WriteString(th)
	b.WriteString("\n")
	ts, _, err := SmallCacheComparisonCtx(ctx, f)
	if err != nil {
		return "", err
	}
	b.WriteString(ts)
	return b.String(), nil
}
