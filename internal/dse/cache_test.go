package dse

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/jacobi"
	"repro/internal/resultcache"
)

// cacheTestOptions is a cheap jacobi grid for cache-behaviour tests.
func cacheTestOptions(cores, cachesKB []int) Options {
	return Options{
		N:        16,
		Cores:    cores,
		CachesKB: cachesKB,
		Policies: []cache.Policy{cache.WriteBack},
		Variant:  jacobi.HybridFull,
		Warmup:   1,
		Measured: 1,
	}
}

// TestSweepCacheByteIdentical pins the core contract at the dse layer: a
// cached sweep returns exactly the points a cache-off sweep returns.
func TestSweepCacheByteIdentical(t *testing.T) {
	o := cacheTestOptions([]int{2, 4}, []int{4, 16})
	off, err := Sweep(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Cache = resultcache.New(resultcache.NewMemoryStore(0))
	cold, err := Sweep(o)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Sweep(o)
	if err != nil {
		t.Fatal(err)
	}
	offCSV := PointsCSV(off)
	if got := PointsCSV(cold); got != offCSV {
		t.Errorf("cold-cache sweep differs from cache-off sweep:\n%s\nvs\n%s", got, offCSV)
	}
	if got := PointsCSV(warm); got != offCSV {
		t.Errorf("warm-cache sweep differs from cache-off sweep:\n%s\nvs\n%s", got, offCSV)
	}
	st := o.Cache.Stats()
	if st.Computes != uint64(len(off)) {
		t.Errorf("computes = %d, want %d (cold sweep only)", st.Computes, len(off))
	}
	if st.Hits != uint64(len(off)) {
		t.Errorf("hits = %d, want %d (warm sweep fully served)", st.Hits, len(off))
	}
}

// TestSweepOverlappingGridsDedup proves the cache is content-addressed,
// not run-scoped: two different sweeps sharing one cache hit on exactly
// their overlapping points. The second grid shares cores {4} x caches
// {4,16} with the first (2 points) and adds cores {8} (2 fresh points).
func TestSweepOverlappingGridsDedup(t *testing.T) {
	rc := resultcache.New(resultcache.NewMemoryStore(0))

	first := cacheTestOptions([]int{2, 4}, []int{4, 16})
	first.Cache = rc.Scope()
	if _, err := Sweep(first); err != nil {
		t.Fatal(err)
	}
	if st := first.Cache.Stats(); st.Hits != 0 || st.Computes != 4 {
		t.Fatalf("first sweep stats %v, want 4 computes, 0 hits", st)
	}

	second := cacheTestOptions([]int{4, 8}, []int{4, 16})
	second.Cache = rc.Scope()
	pts, err := Sweep(second)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("second sweep returned %d points, want 4", len(pts))
	}
	st := second.Cache.Stats()
	if st.Hits != 2 || st.Computes != 2 {
		t.Errorf("second sweep stats %v, want exactly the 2 overlapping points hit and the 2 fresh ones computed", st)
	}

	// The overlap must be invisible in the results: the cached cores=4
	// points equal a cache-off evaluation of the same grid.
	second.Cache = nil
	off, err := Sweep(second)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := PointsCSV(pts), PointsCSV(off); got != want {
		t.Errorf("cached overlapping sweep differs from cache-off:\n%s\nvs\n%s", got, want)
	}
}

// TestKernelSweepCacheByteIdentical extends the contract to the kernel
// sweep path: matmul and syncbench go through their own cached helpers
// and key domains, so each kernel is exercised separately.
func TestKernelSweepCacheByteIdentical(t *testing.T) {
	for _, k := range AllKernels() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			o := KernelOptions{Kernel: k, N: 16, Cores: []int{2, 4}, CachesKB: []int{8}}
			off, err := KernelSweep(o)
			if err != nil {
				t.Fatal(err)
			}
			o.Cache = resultcache.New(resultcache.NewMemoryStore(0))
			if _, err := KernelSweep(o); err != nil { // cold
				t.Fatal(err)
			}
			warm, err := KernelSweep(o)
			if err != nil {
				t.Fatal(err)
			}
			if len(warm) != len(off) {
				t.Fatalf("warm sweep returned %d points, want %d", len(warm), len(off))
			}
			for i := range off {
				// CyclesSkipped is the one documented exception to
				// byte-identity: it counts simulation work, and a recalled
				// point did not simulate (it is excluded from every
				// rendering for exactly this reason).
				w, o := warm[i], off[i]
				w.CyclesSkipped, o.CyclesSkipped = 0, 0
				if w != o {
					t.Errorf("point %d: warm %+v != off %+v", i, w, o)
				}
				if warm[i].CyclesSkipped != 0 {
					t.Errorf("point %d: recalled point claims %d skipped cycles", i, warm[i].CyclesSkipped)
				}
			}
			if st := o.Cache.Stats(); st.Hits < uint64(len(off)) {
				t.Errorf("warm sweep hits = %d, want >= %d (%v)", st.Hits, len(off), st)
			}
		})
	}
}
