package dse

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/jacobi"
)

// The shape-regression tests assert the qualitative properties of the
// paper's figures (DESIGN.md §4 "shape criteria"). They run real
// simulations and are skipped in -short mode.

func runPoint(t *testing.T, n, cores, kb int, pol cache.Policy) int64 {
	t.Helper()
	cfg := core.DefaultConfig(cores, kb, pol)
	res, err := jacobi.Run(cfg, jacobi.Spec{N: n, Warmup: 1, Measured: 1}, jacobi.HybridFull)
	if err != nil {
		t.Fatal(err)
	}
	return res.CyclesPerIteration
}

// TestShapeFig6WriteThroughWorse: the WT policy must be substantially
// slower than WB once several cores generate store traffic.
func TestShapeFig6WriteThroughWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy shape test")
	}
	for _, cores := range []int{4, 10} {
		wb := runPoint(t, 60, cores, 16, cache.WriteBack)
		wt := runPoint(t, 60, cores, 16, cache.WriteThrough)
		if wt < 2*wb {
			t.Errorf("%d cores: WT %d not >= 2x WB %d", cores, wt, wb)
		}
	}
}

// TestShapeFig6CacheKnee: with per-core data fitting in the cache, adding
// cores must keep reducing iteration time; with tiny caches the curve must
// be miss-dominated (no comparable scaling).
func TestShapeFig6CacheKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy shape test")
	}
	big4 := runPoint(t, 60, 4, 32, cache.WriteBack)
	big8 := runPoint(t, 60, 8, 32, cache.WriteBack)
	big12 := runPoint(t, 60, 12, 32, cache.WriteBack)
	if !(big12 < big8 && big8 < big4) {
		t.Errorf("no core scaling with ample cache: %d, %d, %d", big4, big8, big12)
	}
	small4 := runPoint(t, 60, 4, 2, cache.WriteBack)
	small12 := runPoint(t, 60, 12, 2, cache.WriteBack)
	// Miss-dominated: scaling must be far from the ~3x the big caches get.
	if float64(small4)/float64(small12) > 1.7 {
		t.Errorf("2 kB caches scale too well: %d -> %d", small4, small12)
	}
	// And the fitting cache must beat the tiny cache outright.
	if big12 >= small12 {
		t.Errorf("32 kB (%d) not faster than 2 kB (%d) at 12 cores", big12, small12)
	}
}

// TestShapeFig8KneeShifts: the 30x30 array is 4x smaller, so the cache
// size where scaling appears must be ~4x smaller than for 60x60 (4 kB vs
// 16 kB in the paper).
func TestShapeFig8KneeShifts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy shape test")
	}
	// At 8 cores, 4 kB must already fit the 30x30 per-core data (and so
	// perform close to 16 kB), while for 60x60 it must not.
	small30 := runPoint(t, 30, 8, 4, cache.WriteBack)
	big30 := runPoint(t, 30, 8, 16, cache.WriteBack)
	if float64(small30) > 1.3*float64(big30) {
		t.Errorf("30x30 at 8 cores: 4 kB (%d) should be within 30%% of 16 kB (%d)", small30, big30)
	}
	small60 := runPoint(t, 60, 8, 4, cache.WriteBack)
	big60 := runPoint(t, 60, 8, 16, cache.WriteBack)
	if small60 < 2*big60 {
		t.Errorf("60x60 at 8 cores: 4 kB (%d) should be >= 2x slower than 16 kB (%d)", small60, big60)
	}
}

// TestShapeHybridAdvantage asserts T-1: hybrid >= ~2x pure-SM once the
// per-core data fits, and the gap grows with core count.
func TestShapeHybridAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy shape test")
	}
	rows, err := Compare(60, []int{4, 10}, 16, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].FullVsSM < 1.5 {
		t.Errorf("4 cores: hybrid advantage %.2fx < 1.5x", rows[0].FullVsSM)
	}
	if rows[1].FullVsSM < 3 {
		t.Errorf("10 cores: hybrid advantage %.2fx < 3x", rows[1].FullVsSM)
	}
	if rows[1].FullVsSM <= rows[0].FullVsSM {
		t.Errorf("hybrid advantage not growing with cores: %.2fx -> %.2fx",
			rows[0].FullVsSM, rows[1].FullVsSM)
	}
}

// TestShapeSyncOnlyTracksFullWhenMissBound asserts the first half of T-2:
// in the miss-dominated regime (2 kB) the sync-only hybrid is within
// ~2-20% of the full hybrid.
func TestShapeSyncOnlyTracksFullWhenMissBound(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy shape test")
	}
	rows, err := Compare(60, []int{6}, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := rows[0].FullVsSync; r > 1.35 {
		t.Errorf("miss-bound full-vs-sync = %.2fx, want <= ~1.2x", r)
	}
}

// TestShapeParetoKnees asserts Figure 7's structure: a Pareto front whose
// speedup jumps when the per-core data first fits in cache, and a
// kill-rule knee inside the sweep.
func TestShapeParetoKnees(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy shape test")
	}
	_, pts, err := Fig6(Quick)
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(pts)
	if len(front) < 4 {
		t.Fatalf("pareto front too small: %d points", len(front))
	}
	knee := KillRuleKnee(front)
	if knee <= 0 {
		t.Fatalf("kill-rule knee at %d", knee)
	}
	if front[len(front)-1].Speedup < 10 {
		t.Errorf("max speedup %.1fx implausibly small", front[len(front)-1].Speedup)
	}
	// The front must contain a big jump (the cache-fit lower knee).
	jump := 0.0
	for i := 1; i < len(front); i++ {
		if r := front[i].Speedup / front[i-1].Speedup; r > jump {
			jump = r
		}
	}
	if jump < 1.5 {
		t.Errorf("no cache-fit knee on the front (max step %.2fx)", jump)
	}
}

// TestServiceAblationShape holds the S-2 contract: the sweep is
// deterministic, completes work at every point, and the worst server-side
// p99 rises monotonically with hotspot skew while the network components
// stay of the same order — concentration, not the fabric, drives the tail.
func TestServiceAblationShape(t *testing.T) {
	o := DefaultServiceAblationOptions()
	o.Measure = 3000
	points, err := ServiceAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(o.Skews)*len(o.Rates) {
		t.Fatalf("got %d points, want %d", len(points), len(o.Skews)*len(o.Rates))
	}
	for _, p := range points {
		if p.Completed == 0 {
			t.Errorf("skew %.2f rate %.3f completed nothing", p.Skew, p.Rate)
		}
	}
	worst := P99ServerBySkew(points)
	for i := 1; i < len(o.Skews); i++ {
		lo, hi := o.Skews[i-1], o.Skews[i]
		if worst[hi] <= worst[lo] {
			t.Errorf("worst p99-srv at skew %.2f (%.0f) not above skew %.2f (%.0f)",
				hi, worst[hi], lo, worst[lo])
		}
	}
	again, err := ServiceAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(points, again) {
		t.Error("service ablation not deterministic")
	}
	tbl := ServiceAblationTable(o, points)
	if !strings.Contains(tbl, "S-2 service ablation") || !strings.Contains(tbl, "worst p99-srv") {
		t.Errorf("table missing expected sections:\n%s", tbl)
	}
}
