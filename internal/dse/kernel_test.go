package dse

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/jacobi"
)

func TestParseKernelRoundTrip(t *testing.T) {
	for _, k := range AllKernels() {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKernel(%q) = %v, %v", k.String(), got, err)
		}
		if got, err := ParseKernel("  " + strings.ToUpper(k.String()) + " "); err != nil || got != k {
			t.Errorf("ParseKernel upper(%q) = %v, %v", k, got, err)
		}
	}
	if got, err := ParseKernel("1"); err != nil || got != KernelMatmul {
		t.Errorf("ParseKernel(1) = %v, %v", got, err)
	}
	for _, bad := range []string{"", "fft", "99", "-1"} {
		if _, err := ParseKernel(bad); err == nil {
			t.Errorf("ParseKernel(%q) accepted", bad)
		}
	}
}

func TestKernelSupports(t *testing.T) {
	for _, k := range AllKernels() {
		for _, v := range jacobi.AllVariants() {
			want := !(k == KernelSyncbench && v == jacobi.HybridSync)
			if got := k.Supports(v); got != want {
				t.Errorf("%v.Supports(%v) = %t, want %t", k, v, got, want)
			}
		}
	}
}

func TestKernelSweepValidation(t *testing.T) {
	base := KernelOptions{Kernel: KernelJacobi, N: 16, Cores: []int{2}, CachesKB: []int{8}}
	if _, err := KernelSweep(base); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*KernelOptions)
	}{
		{"no cores", func(o *KernelOptions) { o.Cores = nil }},
		{"no caches", func(o *KernelOptions) { o.CachesKB = nil }},
		{"no N", func(o *KernelOptions) { o.N = 0 }},
		{"syncbench hybrid-sync", func(o *KernelOptions) {
			o.Kernel = KernelSyncbench
			o.N = 0
			o.Variants = []jacobi.Variant{jacobi.HybridSync}
		}},
	}
	for _, c := range cases {
		o := base
		c.mutate(&o)
		if _, err := KernelSweep(o); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestKernelSweepMatchesSweepForJacobi pins the delegation contract: the
// jacobi kernel sweep must be dse.Sweep bit-for-bit (same ordering, same
// cycles, same speedup), because the scenario golden tests ride on it.
func TestKernelSweepMatchesSweepForJacobi(t *testing.T) {
	o := KernelOptions{
		Kernel:   KernelJacobi,
		N:        16,
		Cores:    []int{2, 4},
		CachesKB: []int{4, 8},
		Policies: []cache.Policy{cache.WriteBack, cache.WriteThrough},
		Variants: []jacobi.Variant{jacobi.HybridFull},
	}
	kpts, err := KernelSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Sweep(Options{
		N: 16, Cores: o.Cores, CachesKB: o.CachesKB, Policies: o.Policies,
		Variant: jacobi.HybridFull, Warmup: 1, Measured: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(kpts) != len(pts) {
		t.Fatalf("kernel sweep has %d points, Sweep %d", len(kpts), len(pts))
	}
	for i, kp := range kpts {
		p := pts[i]
		if kp.Compute != p.Compute || kp.CacheKB != p.CacheKB || kp.Policy != p.Policy {
			t.Fatalf("point %d: axis order diverged: %+v vs %+v", i, kp, p)
		}
		if kp.Cycles != p.CyclesPerIter || kp.MissRate != p.MissRate ||
			kp.AreaMM2 != p.AreaMM2 || kp.Speedup != p.Speedup {
			t.Errorf("point %d: kernel sweep %+v diverges from Sweep %+v", i, kp, p)
		}
	}
}

// TestKernelAblationShapes asserts the K-1 reproduction targets on a
// reduced grid: the message-passing model beats pure shared memory on
// every kernel once past two cores, the gap widens with cores, and the
// message barrier never occupies the memory node.
func TestKernelAblationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the kernel ablation grid")
	}
	o := DefaultKernelAblationOptions()
	o.Cores = []int{2, 6, 12}
	points, err := KernelAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3*2*3 {
		t.Fatalf("got %d points, want 18", len(points))
	}

	cycles := map[[3]int]int64{} // kernel, variant, cores
	for _, p := range points {
		cycles[[3]int{int(p.Kernel), int(p.Variant), p.Compute}] = p.Cycles
		if p.Kernel == KernelSyncbench && p.Variant == jacobi.HybridFull && p.MPMMUBusy != 0 {
			t.Errorf("message barrier at %d cores occupied the memory node for %d cycles",
				p.Compute, p.MPMMUBusy)
		}
	}
	for _, k := range AllKernels() {
		for _, cores := range []int{6, 12} {
			mp := cycles[[3]int{int(k), int(jacobi.HybridFull), cores}]
			sm := cycles[[3]int{int(k), int(jacobi.PureSM), cores}]
			if sm <= mp {
				t.Errorf("%v at %d cores: pure-sm (%d) not slower than hybrid-full (%d)", k, cores, sm, mp)
			}
		}
		ratioAt := func(cores int) float64 {
			mp := cycles[[3]int{int(k), int(jacobi.HybridFull), cores}]
			sm := cycles[[3]int{int(k), int(jacobi.PureSM), cores}]
			return float64(sm) / float64(mp)
		}
		if ratioAt(12) <= ratioAt(2) {
			t.Errorf("%v: sm/mp ratio did not widen with cores (%.2f at 2 -> %.2f at 12)",
				k, ratioAt(2), ratioAt(12))
		}
	}

	adv := MessagingAdvantageByKernel(points)
	if adv[KernelSyncbench] <= adv[KernelMatmul] {
		t.Errorf("syncbench advantage %.2f not above matmul %.2f (bare synchronization is where messages win most)",
			adv[KernelSyncbench], adv[KernelMatmul])
	}
	peak := PeakSpeedupByKernel(points)
	if peak[KernelJacobi] <= peak[KernelMatmul] {
		t.Errorf("jacobi peak speedup %.2f not above matmul %.2f", peak[KernelJacobi], peak[KernelMatmul])
	}

	table := KernelAblationTable(o, points)
	for _, want := range []string{"K-1", "jacobi", "matmul", "syncbench", "pure-sm", "summary"} {
		if !strings.Contains(table, want) {
			t.Errorf("ablation table missing %q:\n%s", want, table)
		}
	}
}

// TestKernelSweepDeterministic: kernel runs take no seed, so the whole
// sweep must be bit-identical across executions and parallelism levels.
func TestKernelSweepDeterministic(t *testing.T) {
	o := KernelOptions{
		Kernel:   KernelMatmul,
		N:        8,
		Cores:    []int{2, 3},
		CachesKB: []int{4},
		Variants: []jacobi.Variant{jacobi.HybridFull, jacobi.PureSM},
	}
	a, err := KernelSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Parallelism = 1
	b, err := KernelSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
