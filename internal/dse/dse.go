// Package dse drives the design-space exploration of the paper's Section
// III: sweeps over core count, cache size and write policy (168
// configurations), the chip-area model, Pareto pruning and the kill-rule
// analysis that together produce Figures 6-9.
package dse

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/jacobi"
	"repro/internal/par"
	"repro/internal/resultcache"
)

// defaultParallelism is the sweep concurrency applied when an Options
// leaves Parallelism at 0. It is itself 0 by default, which par.ForEachCtx
// resolves to runtime.GOMAXPROCS(0) — cmd/medea-experiments exposes it as
// -parallelism, mirroring cmd/medea-scenarios (which threads the flag
// through Scenario.Parallelism instead).
var defaultParallelism atomic.Int64

// SetDefaultParallelism caps concurrent simulations for every sweep whose
// Options leave Parallelism unset (0 restores the GOMAXPROCS default).
func SetDefaultParallelism(n int) { defaultParallelism.Store(int64(n)) }

// DefaultParallelism returns the package-wide default sweep concurrency
// (0 = GOMAXPROCS).
func DefaultParallelism() int { return int(defaultParallelism.Load()) }

// parallelismOr resolves an Options.Parallelism against the package
// default.
func parallelismOr(n int) int {
	if n != 0 {
		return n
	}
	return DefaultParallelism()
}

// Point is one evaluated design-space configuration.
type Point struct {
	Compute int // compute cores (the MPMMU is one additional node)
	CacheKB int
	Policy  cache.Policy

	CyclesPerIter int64
	MissRate      float64
	AreaMM2       float64
	Speedup       float64 // relative to the smallest-area configuration
	Label         string  // paper-style "11P_16k$" label

	// MPMMUBusy and NoCFlits quantify where the communication went: memory-
	// node occupancy versus message-path traffic (the paper's hybrid
	// argument). The kernel sweeps carry them into KernelPoint.
	MPMMUBusy int64
	NoCFlits  int64

	// CyclesSkipped counts cycles the engine fast-forwarded over while
	// simulating this point. A pure performance counter: it is 0 when the
	// point was recalled from the result cache, and it never enters a
	// table, CSV, JSON row or cache value — measured figures are
	// byte-identical whatever it holds.
	CyclesSkipped int64
}

// Options parameterizes a sweep.
type Options struct {
	N        int // grid size (16, 30 or 60)
	Cores    []int
	CachesKB []int
	Policies []cache.Policy
	Variant  jacobi.Variant
	Warmup   int
	Measured int
	// Parallelism bounds concurrent simulations (each simulation itself
	// is deterministic and single-threaded); 0 means GOMAXPROCS.
	Parallelism int
	// Cache, when non-nil, content-addresses each point's simulation
	// result: a repeated point is served from the store instead of
	// resimulated, and concurrent evaluations of the same point collapse
	// to one run. nil means cache off; results are byte-identical either
	// way (the differential battery in internal/scenario enforces this).
	Cache *resultcache.Cache
	// Points, when non-nil, restricts the sweep to the listed indices of
	// the canonical (policy, cache, cores) job order — the shard layer's
	// hook. Indices must be strictly increasing and in range; the result
	// slice follows Points order. Speedup is NOT attached (it is a
	// cross-point figure the merger recomputes over the full grid), so a
	// Points sweep over every index differs from a full sweep only in the
	// zero Speedup column.
	Points []int
}

// selectPoints validates a Points filter against a sweep of total jobs.
// nil means "all points".
func selectPoints(total int, pts []int) error {
	if pts == nil {
		return nil
	}
	prev := -1
	for _, p := range pts {
		if p <= prev {
			return fmt.Errorf("dse: point filter not strictly increasing at index %d", p)
		}
		if p < 0 || p >= total {
			return fmt.Errorf("dse: point filter index %d outside the %d-point sweep", p, total)
		}
		prev = p
	}
	return nil
}

// PaperCores returns the paper's compute-core range: 2..15 (3..16 total
// nodes counting the MPMMU).
func PaperCores() []int {
	var out []int
	for c := 2; c <= 15; c++ {
		out = append(out, c)
	}
	return out
}

// PaperCaches returns the paper's cache sizes in kB: powers of two from 2
// to 64.
func PaperCaches() []int { return []int{2, 4, 8, 16, 32, 64} }

// DefaultOptions returns the full 168-point sweep of the paper for grid
// size n: 14 core counts x 6 cache sizes x 2 write policies.
func DefaultOptions(n int) Options {
	return Options{
		N:        n,
		Cores:    PaperCores(),
		CachesKB: PaperCaches(),
		Policies: []cache.Policy{cache.WriteBack, cache.WriteThrough},
		Variant:  jacobi.HybridFull,
		Warmup:   1,
		Measured: 1,
	}
}

// Sweep evaluates every configuration and returns the points sorted by
// (policy, cache, cores). Runs execute concurrently; each simulation is
// independently deterministic, so the result set is reproducible.
func Sweep(o Options) ([]Point, error) {
	return SweepCtx(context.Background(), o)
}

// SweepCtx is Sweep with cooperative cancellation: a canceled context
// stops dispatching new points, interrupts in-flight simulations, and
// returns the context's error (wrapped in a par.CanceledError recording
// how many points had finished). A panic inside one point is isolated to
// that point and surfaces as a *par.PanicError instead of crashing the
// sweep.
func SweepCtx(ctx context.Context, o Options) ([]Point, error) {
	if o.Warmup == 0 && o.Measured == 0 {
		o.Warmup, o.Measured = 1, 1
	}
	if o.Measured == 0 {
		o.Measured = 1
	}
	type job struct {
		idx       int
		cores, kb int
		policy    cache.Policy
	}
	var jobs []job
	for _, pol := range o.Policies {
		for _, kb := range o.CachesKB {
			for _, c := range o.Cores {
				jobs = append(jobs, job{idx: len(jobs), cores: c, kb: kb, policy: pol})
			}
		}
	}
	if err := selectPoints(len(jobs), o.Points); err != nil {
		return nil, err
	}
	if o.Points != nil {
		sel := make([]job, len(o.Points))
		for i, p := range o.Points {
			sel[i] = jobs[p]
			sel[i].idx = i
		}
		jobs = sel
	}
	points := make([]Point, len(jobs))

	// Each slot of points is written by exactly one job, so the fixed
	// worker pool needs no further synchronization; per-point errors are
	// collected and joined in index order by ForEachCtx.
	if err := par.ForEachCtx(ctx, len(jobs), parallelismOr(o.Parallelism), func(i int) error {
		j := jobs[i]
		cfg := core.DefaultConfig(j.cores, j.kb, j.policy)
		spec := jacobi.Spec{N: o.N, Warmup: o.Warmup, Measured: o.Measured}
		val, skipped, err := jacobiPointValueCached(ctx, o.Cache, cfg, spec, o.Variant, j.cores, j.kb, j.policy)
		if err != nil {
			return err
		}
		points[j.idx] = Point{
			Compute: j.cores, CacheKB: j.kb, Policy: j.policy,
			CyclesPerIter: val.CyclesPerIter,
			MissRate:      val.MissRate,
			AreaMM2:       Area(j.cores, j.kb, cfg.MPMMUCacheKB),
			Label:         fmt.Sprintf("%dP_%dk$", j.cores, j.kb),
			MPMMUBusy:     val.MPMMUBusy,
			NoCFlits:      val.NoCFlits,
			CyclesSkipped: skipped,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if o.Points == nil {
		AttachSpeedup(points)
	}
	return points, nil
}

// AttachSpeedup fills the Speedup field of every point relative to the
// smallest-area configuration ("starting from the architecture with the
// smallest area", as the paper's pruning does). Write-through points share
// the write-back baseline so speedups are comparable across policies.
func AttachSpeedup(points []Point) {
	if len(points) == 0 {
		return
	}
	base := -1
	for i, p := range points {
		if base < 0 || p.AreaMM2 < points[base].AreaMM2 ||
			(p.AreaMM2 == points[base].AreaMM2 && p.CyclesPerIter > points[base].CyclesPerIter) {
			base = i
		}
	}
	ref := float64(points[base].CyclesPerIter)
	for i := range points {
		points[i].Speedup = ref / float64(points[i].CyclesPerIter)
	}
}

// ParetoFront returns the points that are not Pareto-dominated (no other
// point has smaller-or-equal area and strictly higher speedup), sorted by
// increasing area. Among equal-area points only the fastest survives.
func ParetoFront(points []Point) []Point {
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].AreaMM2 != sorted[j].AreaMM2 {
			return sorted[i].AreaMM2 < sorted[j].AreaMM2
		}
		return sorted[i].Speedup > sorted[j].Speedup
	})
	var front []Point
	best := -1.0
	for _, p := range sorted {
		if p.Speedup > best {
			front = append(front, p)
			best = p.Speedup
		}
	}
	return front
}

// KillRuleKnee applies the paper's "kill if less than linear" rule ([19])
// to a Pareto front: walking up the front, a step is worth taking only if
// the relative performance gain is at least the relative area increase.
// It returns the index (into front) of the last configuration that still
// satisfies the rule — the paper's optimal design point.
func KillRuleKnee(front []Point) int {
	if len(front) == 0 {
		return -1
	}
	knee := 0
	for i := 1; i < len(front); i++ {
		prev, cur := front[knee], front[i]
		dPerf := (cur.Speedup - prev.Speedup) / prev.Speedup
		dArea := (cur.AreaMM2 - prev.AreaMM2) / prev.AreaMM2
		if dArea <= 0 || dPerf >= dArea {
			knee = i
		}
	}
	return knee
}
