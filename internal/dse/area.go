package dse

// Chip-area model for a TSMC 65 nm implementation, calibrated to the
// paper's Figure 7/9 axes: the per-node overhead for NoC switch, bridges
// and routing is 100% of the core logic area (excluding caches), the rule
// the paper takes from [20]. The MPMMU counts as one more node with its
// own cache. Constants are chosen so the 168 sweep configurations span
// roughly 1.5-22 mm², matching the figures' x-ranges.
const (
	// CoreLogicMM2 is the logic area of one Xtensa-class core.
	CoreLogicMM2 = 0.35
	// NoCOverhead is the switch+bridge+routing overhead as a fraction of
	// core logic area.
	NoCOverhead = 1.0
	// CacheMM2PerKB is the SRAM area per kilobyte of cache.
	CacheMM2PerKB = 0.02
)

// Area estimates the chip area in mm² of a configuration with the given
// number of compute cores, per-core L1 capacity and MPMMU cache capacity.
func Area(computeCores, cacheKB, mmuCacheKB int) float64 {
	nodeLogic := CoreLogicMM2 * (1 + NoCOverhead)
	compute := float64(computeCores) * (nodeLogic + float64(cacheKB)*CacheMM2PerKB)
	mmu := nodeLogic + float64(mmuCacheKB)*CacheMM2PerKB
	return compute + mmu
}
