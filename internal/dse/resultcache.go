package dse

// Cache plumbing for the sweep engines: canonical key derivations and the
// JSON value encodings stored under them. A cached value holds only what
// the simulator produced — derived quantities (area, labels, speedups)
// recompute deterministically from the configuration and never enter the
// store, so a cache hit and a fresh run are indistinguishable byte-for-
// byte in every rendering.
//
// Key domains partition the store by execution path ("dse/jacobi",
// "dse/matmul", "dse/syncbench", and "scenario/noc" in internal/scenario);
// each key carries every option the simulation result depends on, and
// nothing it does not (matmul ignores jacobi's warmup/measured iteration
// counts, syncbench ignores the problem size), so equivalent points
// requested through different front doors share one entry.

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/jacobi"
	"repro/internal/matmul"
	"repro/internal/resultcache"
	"repro/internal/syncbench"
)

// jacobiPointValue is the cached simulation output of one jacobi point.
type jacobiPointValue struct {
	CyclesPerIter int64   `json:"cycles_per_iter"`
	MissRate      float64 `json:"miss_rate"`
	MPMMUBusy     int64   `json:"mpmmu_busy"`
	NoCFlits      int64   `json:"noc_flits"`
}

// kernelPointValue is the cached simulation output of one matmul or
// syncbench point.
type kernelPointValue struct {
	Cycles         int64 `json:"cycles"`
	TransferCycles int64 `json:"transfer_cycles,omitempty"`
	MPMMUBusy      int64 `json:"mpmmu_busy"`
	NoCFlits       int64 `json:"noc_flits"`
}

// jacobiPointKey derives the content address of one jacobi sweep point.
func jacobiPointKey(spec jacobi.Spec, variant jacobi.Variant, cores, kb int, policy cache.Policy) resultcache.Key {
	return resultcache.NewKey("dse/jacobi").
		Int("n", int64(spec.N)).
		Int("warmup", int64(spec.Warmup)).
		Int("measured", int64(spec.Measured)).
		Str("variant", variant.String()).
		Int("cores", int64(cores)).
		Int("cache_kb", int64(kb)).
		Str("policy", policy.String()).
		Sum()
}

// jacobiPointValueCached runs (or recalls) one jacobi point through the
// cache; a nil cache computes directly. The second return is the fresh
// run's CyclesSkipped performance counter — deliberately outside the
// cached value (a recalled point did not simulate, so it skipped
// nothing), and excluded from every rendering for the same reason.
func jacobiPointValueCached(ctx context.Context, c *resultcache.Cache, cfg core.Config, spec jacobi.Spec, variant jacobi.Variant, cores, kb int, policy cache.Policy) (jacobiPointValue, int64, error) {
	key := jacobiPointKey(spec, variant, cores, kb, policy)
	var skipped int64
	buf, _, err := c.GetOrCompute(key, func() ([]byte, error) {
		res, err := jacobi.RunCtx(ctx, cfg, spec, variant)
		if err != nil {
			return nil, err
		}
		skipped = res.CyclesSkipped
		return json.Marshal(jacobiPointValue{
			CyclesPerIter: res.CyclesPerIteration,
			MissRate:      res.MissRate,
			MPMMUBusy:     res.MPMMUBusy,
			NoCFlits:      res.NoCFlits,
		})
	})
	var val jacobiPointValue
	if err != nil {
		return val, 0, err
	}
	if err := json.Unmarshal(buf, &val); err != nil {
		return val, 0, fmt.Errorf("dse: decoding cached jacobi point %s: %w", key, err)
	}
	return val, skipped, nil
}

// matmulPointValueCached runs (or recalls) one matmul point. The second
// return is the fresh run's CyclesSkipped (see jacobiPointValueCached).
func matmulPointValueCached(ctx context.Context, c *resultcache.Cache, cfg core.Config, n int, variant jacobi.Variant, cores, kb int, policy cache.Policy) (kernelPointValue, int64, error) {
	key := resultcache.NewKey("dse/matmul").
		Int("n", int64(n)).
		Str("variant", variant.String()).
		Int("cores", int64(cores)).
		Int("cache_kb", int64(kb)).
		Str("policy", policy.String()).
		Sum()
	var skipped int64
	buf, _, err := c.GetOrCompute(key, func() ([]byte, error) {
		res, err := matmul.RunCtx(ctx, cfg, matmul.Spec{N: n}, variant)
		if err != nil {
			return nil, err
		}
		skipped = res.CyclesSkipped
		return json.Marshal(kernelPointValue{
			Cycles:         res.TotalCycles,
			TransferCycles: res.TransferCycles,
			MPMMUBusy:      res.MPMMUBusy,
			NoCFlits:       res.NoCFlits,
		})
	})
	var val kernelPointValue
	if err != nil {
		return val, 0, err
	}
	if err := json.Unmarshal(buf, &val); err != nil {
		return val, 0, fmt.Errorf("dse: decoding cached matmul point %s: %w", key, err)
	}
	return val, skipped, nil
}

// syncbenchPointValueCached runs (or recalls) one syncbench point. The
// second return is the fresh run's CyclesSkipped (see
// jacobiPointValueCached).
func syncbenchPointValueCached(ctx context.Context, c *resultcache.Cache, cfg core.Config, kind syncbench.Kind, rounds, cores, kb int, policy cache.Policy) (kernelPointValue, int64, error) {
	key := resultcache.NewKey("dse/syncbench").
		Str("kind", kind.String()).
		Int("rounds", int64(rounds)).
		Int("cores", int64(cores)).
		Int("cache_kb", int64(kb)).
		Str("policy", policy.String()).
		Sum()
	var skipped int64
	buf, _, err := c.GetOrCompute(key, func() ([]byte, error) {
		res, err := syncbench.MeasureWithCtx(ctx, kind, cfg, rounds)
		if err != nil {
			return nil, err
		}
		skipped = res.CyclesSkipped
		return json.Marshal(kernelPointValue{
			Cycles:    res.CyclesPerRound,
			MPMMUBusy: res.MPMMUBusy,
			NoCFlits:  res.NoCFlits,
		})
	})
	var val kernelPointValue
	if err != nil {
		return val, 0, err
	}
	if err := json.Unmarshal(buf, &val); err != nil {
		return val, 0, fmt.Errorf("dse: decoding cached syncbench point %s: %w", key, err)
	}
	return val, skipped, nil
}
