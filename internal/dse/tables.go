package dse

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/cache"
)

// Fig6Table renders the execution-time-vs-cores table behind Figure 6/8:
// one row per core count, one column per (cache size, policy) series,
// values in clock cycles per Jacobi iteration.
func Fig6Table(points []Point, title string) string {
	caches := map[int]bool{}
	cores := map[int]bool{}
	policies := map[cache.Policy]bool{}
	byKey := map[[3]int]int64{}
	for _, p := range points {
		caches[p.CacheKB] = true
		cores[p.Compute] = true
		policies[p.Policy] = true
		byKey[[3]int{p.Compute, p.CacheKB, int(p.Policy)}] = p.CyclesPerIter
	}
	cacheList := sortedKeys(caches)
	coreList := sortedKeys(cores)
	var polList []cache.Policy
	for _, pol := range []cache.Policy{cache.WriteBack, cache.WriteThrough} {
		if policies[pol] {
			polList = append(polList, pol)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "cores\t")
	for _, pol := range polList {
		for _, kb := range cacheList {
			fmt.Fprintf(w, "%dkB$%v\t", kb, pol)
		}
	}
	fmt.Fprintln(w)
	for _, c := range coreList {
		fmt.Fprintf(w, "%d\t", c)
		for _, pol := range polList {
			for _, kb := range cacheList {
				if v, ok := byKey[[3]int{c, kb, int(pol)}]; ok {
					fmt.Fprintf(w, "%d\t", v)
				} else {
					fmt.Fprintf(w, "-\t")
				}
			}
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// ParetoTable renders the optimal speedup-vs-area curve of Figures 7/9:
// the Pareto front with the paper-style configuration labels and the
// kill-rule knee marked.
func ParetoTable(front []Point, knee int, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "area(mm2)\tspeedup\tconfig\tkill-rule\t\n")
	for i, p := range front {
		mark := ""
		if i == knee {
			mark = "<= optimal (kill rule)"
		}
		fmt.Fprintf(w, "%.2f\t%.2f\t%s\t%s\t\n", p.AreaMM2, p.Speedup, p.Label, mark)
	}
	w.Flush()
	return b.String()
}

// CompareTable renders the hybrid vs shared-memory analysis rows.
func CompareTable(rows []CompareRow, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "cores\tcache\tmiss%%\thybrid-full\thybrid-sync\tpure-sm\tfull/sm\tsync/sm\tfull-vs-sync\t\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%dkB\t%.1f\t%d\t%d\t%d\t%.2fx\t%.2fx\t%.2fx\t\n",
			r.Compute, r.CacheKB, 100*r.MissRate,
			r.HybridFull, r.HybridSync, r.PureSM,
			r.FullVsSM, r.SyncVsSM, r.FullVsSync)
	}
	w.Flush()
	return b.String()
}

// PointsCSV renders sweep points as CSV for external plotting.
func PointsCSV(points []Point) string {
	var b strings.Builder
	b.WriteString("compute,cache_kb,policy,cycles_per_iter,miss_rate,area_mm2,speedup\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%d,%d,%v,%d,%.6f,%.3f,%.3f\n",
			p.Compute, p.CacheKB, p.Policy, p.CyclesPerIter, p.MissRate, p.AreaMM2, p.Speedup)
	}
	return b.String()
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
