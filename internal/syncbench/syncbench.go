// Package syncbench measures synchronization primitives in isolation:
// barrier latency versus core count for the eMPI message barrier, the
// lock-based shared-memory barrier, and uncached-flag signalling. It
// quantifies the paper's central claim — "low-latency synchronization is
// hard to achieve through the memory hierarchy" — directly, without a
// compute workload around it, and backs the S-1 entry of DESIGN.md's
// experiment index with numbers.
package syncbench

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/empi"
	"repro/internal/pe"
)

// Kind selects the synchronization mechanism under test.
type Kind int

const (
	// MessageBarrier is eMPI's gather+release over the TIE path.
	MessageBarrier Kind = iota
	// LockBarrier is the sense-reversing barrier with the MPMMU lock
	// queue and DII-based polling (the paper's shared-memory recipe).
	LockBarrier
	// FlagSignal is a single producer->consumer notification through an
	// uncached shared-memory flag, the cheapest memory-path primitive.
	FlagSignal
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case MessageBarrier:
		return "empi-barrier"
	case LockBarrier:
		return "lock-barrier"
	case FlagSignal:
		return "flag-signal"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Result is the measured cost of one synchronization episode.
type Result struct {
	Kind   Kind
	Cores  int
	Rounds int
	// CyclesPerRound is the mean cycles per episode, measured at rank 0
	// across Rounds back-to-back episodes with deterministic per-rank
	// arrival skew.
	CyclesPerRound int64
	// MPMMUBusy is the memory-node occupancy accumulated over the run —
	// the serialization the hybrid approach avoids.
	MPMMUBusy int64
	// NoCFlits is the message-path traffic over the run.
	NoCFlits int64
	// CyclesSkipped counts cycles the engine fast-forwarded over instead
	// of ticking (a performance counter; every measured figure above is
	// byte-identical whatever its value).
	CyclesSkipped int64
}

// Measure runs rounds synchronization episodes on cores compute cores
// with the package's reference configuration (8 kB write-back L1s) and
// returns the averaged cost.
func Measure(kind Kind, cores, rounds int) (Result, error) {
	return MeasureWith(kind, core.DefaultConfig(cores, 8, cache.WriteBack), rounds)
}

// MeasureWith runs rounds synchronization episodes on the system described
// by cfg (cfg.NumCompute cores take part) and returns the averaged cost.
// It is the configurable entry point behind Measure, shared with the
// kernel sweeps in internal/dse so the declarative and hand-coded paths
// measure through one implementation.
func MeasureWith(kind Kind, cfg core.Config, rounds int) (Result, error) {
	return MeasureWithCtx(context.Background(), kind, cfg, rounds)
}

// MeasureWithCtx is MeasureWith with cooperative cancellation: a canceled
// context stops the simulation mid-run and aborts the benchmark
// goroutines, so a canceled sweep point costs bounded time and leaks
// nothing. Errors inside the benchmark kernels (e.g. a communicator that
// fails to build) fail the run with an error rather than panicking.
func MeasureWithCtx(ctx context.Context, kind Kind, cfg core.Config, rounds int) (Result, error) {
	cores := cfg.NumCompute
	if cores < 1 || (kind == FlagSignal && cores < 2) {
		return Result{}, fmt.Errorf("syncbench: %v needs enough cores, got %d", kind, cores)
	}
	if rounds < 1 {
		return Result{}, fmt.Errorf("syncbench: rounds must be positive")
	}
	sys, err := core.Build(cfg)
	if err != nil {
		return Result{}, err
	}
	t0 := make([]int64, cores)
	t1 := make([]int64, cores)
	progs := make([]pe.Program, cores)
	nodes := sys.RankNodes()
	for r := range progs {
		r := r
		progs[r] = func(env *pe.Env) {
			runKernel(env, kind, sys, nodes, r, rounds, t0, t1)
		}
	}
	sys.Launch(progs)
	if err := sys.RunCtx(ctx, 100_000_000); err != nil {
		return Result{}, fmt.Errorf("syncbench %v on %d cores: %w", kind, cores, err)
	}
	return Result{
		Kind: kind, Cores: cores, Rounds: rounds,
		CyclesPerRound: (t1[0] - t0[0]) / int64(rounds),
		MPMMUBusy:      sys.MPMMUBusyTotal(),
		NoCFlits:       sys.Net.Stats.Delivered.Value(),
		CyclesSkipped:  sys.Engine.CyclesSkipped(),
	}, nil
}

func runKernel(env *pe.Env, kind Kind, sys *core.System, nodes []int, rank, rounds int, t0, t1 []int64) {
	switch kind {
	case MessageBarrier:
		comm, err := empi.New(env, nodes)
		if err != nil {
			// Fail this rank's core instead of panicking: MeasureWith
			// returns the error as a per-run failure instead of the
			// process dying.
			env.Fail(fmt.Errorf("syncbench: rank %d: %w", rank, err))
		}
		comm.Barrier() // align
		t0[rank] = env.Now()
		for k := 0; k < rounds; k++ {
			env.Compute(int64((rank*13+k*7)%50) + 1) // deterministic skew
			comm.Barrier()
		}
		t1[rank] = env.Now()
	case LockBarrier:
		b := lockBarrier{
			env: env, cores: len(nodes),
			count: sys.Map.SharedAddr(0x40),
			sense: sys.Map.SharedAddr(0x80),
		}
		b.wait()
		t0[rank] = env.Now()
		for k := 0; k < rounds; k++ {
			env.Compute(int64((rank*13+k*7)%50) + 1)
			b.wait()
		}
		t1[rank] = env.Now()
	case FlagSignal:
		flag := sys.Map.SharedAddr(0x100)
		if rank == 0 {
			t0[0] = env.Now()
			for k := 0; k < rounds; k++ {
				env.StoreWordUncached(flag, uint32(2*k+1)) // signal
				for env.LoadWordUncached(flag) != uint32(2*k+2) {
				} // await ack
			}
			t1[0] = env.Now()
			return
		}
		if rank == 1 {
			for k := 0; k < rounds; k++ {
				for env.LoadWordUncached(flag) != uint32(2*k+1) {
				}
				env.StoreWordUncached(flag, uint32(2*k+2))
			}
		}
	}
}

// lockBarrier is the same sense-reversing construction the Jacobi pure-SM
// kernel uses.
type lockBarrier struct {
	env          *pe.Env
	cores        int
	count, sense uint32
	phase        uint32
}

func (b *lockBarrier) wait() {
	env := b.env
	b.phase ^= 1
	env.Lock(b.count)
	env.InvalidateLine(b.count)
	c := env.LoadWord(b.count)
	if int(c+1) == b.cores {
		env.StoreWord(b.count, 0)
		env.FlushLine(b.count)
		env.InvalidateLine(b.sense)
		env.StoreWord(b.sense, b.phase)
		env.FlushLine(b.sense)
	} else {
		env.StoreWord(b.count, c+1)
		env.FlushLine(b.count)
	}
	env.Unlock(b.count)
	for {
		env.InvalidateLine(b.sense)
		if env.LoadWord(b.sense) == b.phase {
			return
		}
	}
}
