package syncbench

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
)

func TestMessageBarrierLatency(t *testing.T) {
	res, err := Measure(MessageBarrier, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesPerRound <= 0 || res.CyclesPerRound > 5000 {
		t.Errorf("implausible barrier cost: %d", res.CyclesPerRound)
	}
	if res.MPMMUBusy != 0 {
		t.Errorf("message barrier touched the memory node (%d busy cycles)", res.MPMMUBusy)
	}
	if res.NoCFlits == 0 {
		t.Error("message barrier produced no flits")
	}
}

func TestLockBarrierLatency(t *testing.T) {
	res, err := Measure(LockBarrier, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesPerRound <= 0 {
		t.Fatalf("bad cost %d", res.CyclesPerRound)
	}
	if res.MPMMUBusy == 0 {
		t.Error("lock barrier never occupied the memory node")
	}
}

// TestMessageBarrierCheaper asserts the paper's central premise: explicit
// token exchange beats synchronization through the memory hierarchy.
func TestMessageBarrierCheaper(t *testing.T) {
	for _, cores := range []int{4, 8} {
		msg, err := Measure(MessageBarrier, cores, 10)
		if err != nil {
			t.Fatal(err)
		}
		lck, err := Measure(LockBarrier, cores, 10)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%d cores: empi %d cy, lock %d cy (%.2fx)",
			cores, msg.CyclesPerRound, lck.CyclesPerRound,
			float64(lck.CyclesPerRound)/float64(msg.CyclesPerRound))
		if lck.CyclesPerRound <= msg.CyclesPerRound {
			t.Errorf("%d cores: lock barrier (%d) not slower than message barrier (%d)",
				cores, lck.CyclesPerRound, msg.CyclesPerRound)
		}
	}
}

// TestBarrierScaling: both barriers grow with core count, the lock-based
// one faster (serialized arrivals at the memory node).
func TestBarrierScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep")
	}
	m4, _ := Measure(MessageBarrier, 4, 10)
	m12, _ := Measure(MessageBarrier, 12, 10)
	l4, _ := Measure(LockBarrier, 4, 10)
	l12, _ := Measure(LockBarrier, 12, 10)
	if m12.CyclesPerRound <= m4.CyclesPerRound {
		t.Errorf("message barrier did not grow with cores: %d -> %d", m4.CyclesPerRound, m12.CyclesPerRound)
	}
	if l12.CyclesPerRound <= l4.CyclesPerRound {
		t.Errorf("lock barrier did not grow with cores: %d -> %d", l4.CyclesPerRound, l12.CyclesPerRound)
	}
	growM := float64(m12.CyclesPerRound) / float64(m4.CyclesPerRound)
	growL := float64(l12.CyclesPerRound) / float64(l4.CyclesPerRound)
	t.Logf("growth 4->12 cores: empi %.2fx, lock %.2fx", growM, growL)
}

func TestFlagSignal(t *testing.T) {
	res, err := Measure(FlagSignal, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesPerRound <= 0 {
		t.Fatal("bad flag-signal cost")
	}
	t.Logf("uncached flag round trip: %d cycles", res.CyclesPerRound)
}

func TestMeasureValidation(t *testing.T) {
	if _, err := Measure(FlagSignal, 1, 5); err == nil {
		t.Error("flag signal with one core accepted")
	}
	if _, err := Measure(MessageBarrier, 2, 0); err == nil {
		t.Error("zero rounds accepted")
	}
}

// TestMeasureWithMatchesMeasure pins the refactor contract: Measure is
// exactly MeasureWith on the reference configuration, and MeasureWith
// honours a different cache configuration (the lock barrier's cost moves
// with the L1 size because its flag lines live in shared memory).
func TestMeasureWithMatchesMeasure(t *testing.T) {
	short, err := Measure(LockBarrier, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	same, err := MeasureWith(LockBarrier, core.DefaultConfig(4, 8, cache.WriteBack), 5)
	if err != nil {
		t.Fatal(err)
	}
	if short != same {
		t.Errorf("MeasureWith(reference cfg) = %+v, Measure = %+v", same, short)
	}
	if _, err := MeasureWith(LockBarrier, core.DefaultConfig(4, 16, cache.WriteThrough), 5); err != nil {
		t.Errorf("MeasureWith rejected a non-reference configuration: %v", err)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{MessageBarrier, LockBarrier, FlagSignal} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Measure(MessageBarrier, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(MessageBarrier, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.CyclesPerRound != b.CyclesPerRound || a.NoCFlits != b.NoCFlits {
		t.Fatal("non-deterministic measurement")
	}
}
