package syncbench

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sim"
)

// TestFastForwardDifferential runs every synchronization kernel with idle
// fast-forward on and off and requires bit-identical measurements: the
// optimization must be invisible in everything except the CyclesSkipped
// performance counter, which must actually fire (these kernels alternate
// compute skew and waiting, the exact shape fast-forward targets).
func TestFastForwardDifferential(t *testing.T) {
	defer sim.SetDefaultFastForward(sim.DefaultFastForward())
	for _, kind := range []Kind{MessageBarrier, LockBarrier, FlagSignal} {
		cfg := core.DefaultConfig(4, 8, cache.WriteBack)

		sim.SetDefaultFastForward(true)
		on, err := MeasureWithCtx(context.Background(), kind, cfg, 8)
		if err != nil {
			t.Fatalf("%v with fast-forward: %v", kind, err)
		}
		sim.SetDefaultFastForward(false)
		off, err := MeasureWithCtx(context.Background(), kind, cfg, 8)
		if err != nil {
			t.Fatalf("%v without fast-forward: %v", kind, err)
		}

		if off.CyclesSkipped != 0 {
			t.Errorf("%v: CyclesSkipped = %d with fast-forward disabled", kind, off.CyclesSkipped)
		}
		if on.CyclesSkipped <= 0 {
			t.Errorf("%v: fast-forward never engaged (CyclesSkipped = 0)", kind)
		}
		on.CyclesSkipped, off.CyclesSkipped = 0, 0
		if on != off {
			t.Errorf("%v: results diverge under fast-forward:\n  on:  %+v\n  off: %+v", kind, on, off)
		}
	}
}
