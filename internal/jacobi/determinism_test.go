package jacobi

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
)

// TestDeterminismGolden locks in the engine's determinism contract across
// hot-path changes (dirty-list commit, ring-buffer FIFOs): a mid-size
// configuration must produce identical cycle counts on repeated runs, and
// the count must match the golden value committed to testdata, which was
// recorded before the dirty-commit rework. Any drift here means the
// optimization changed simulated behaviour, not just its speed.
func TestDeterminismGolden(t *testing.T) {
	cfg := core.DefaultConfig(6, 8, cache.WriteBack)
	spec := Spec{N: 30, Warmup: 1, Measured: 2}

	run := func() Result {
		res, err := Run(cfg, spec, HybridFull)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	a, b := run(), run()
	if a.TotalCycles != b.TotalCycles || a.CyclesPerIteration != b.CyclesPerIteration {
		t.Fatalf("two identical runs diverged: %d/%d cycles vs %d/%d",
			a.TotalCycles, a.CyclesPerIteration, b.TotalCycles, b.CyclesPerIteration)
	}

	raw, err := os.ReadFile("testdata/determinism_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	want, err := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		t.Fatalf("bad golden file: %v", err)
	}
	if a.TotalCycles != want {
		t.Errorf("TotalCycles = %d, golden = %d: simulated behaviour changed", a.TotalCycles, want)
	}
}
