package jacobi

import "testing"

func TestSmokeHybridFull(t *testing.T) {
	res, err := RunQuick(3, 8, HybridFull)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hybrid-full 16x16 on 3 cores: %d cycles/iter, total %d, missrate %.3f, flits %d",
		res.CyclesPerIteration, res.TotalCycles, res.MissRate, res.NoCFlits)
	if res.CyclesPerIteration <= 0 {
		t.Fatalf("non-positive measured cycles: %d", res.CyclesPerIteration)
	}
}

func TestSmokeHybridSync(t *testing.T) {
	res, err := RunQuick(3, 8, HybridSync)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hybrid-sync: %d cycles/iter", res.CyclesPerIteration)
}

func TestSmokePureSM(t *testing.T) {
	res, err := RunQuick(3, 8, PureSM)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pure-sm: %d cycles/iter", res.CyclesPerIteration)
}
