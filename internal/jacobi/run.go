package jacobi

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
)

// Result summarizes one Jacobi run.
type Result struct {
	Spec    Spec
	Variant Variant
	Cfg     core.Config

	// CyclesPerIteration is the paper's metric: execution time in clock
	// cycles of one Jacobi iteration after cache warm-up.
	CyclesPerIteration int64
	// TotalCycles is the full run length including warm-up.
	TotalCycles int64

	// MissRate is the mean L1 miss rate across active compute cores.
	MissRate float64
	// NoCFlits is the number of flits delivered by the network.
	NoCFlits int64
	// AvgFlitLatency is the mean inject-to-eject flit latency.
	AvgFlitLatency float64
	// Deflections is the total number of deflected hops.
	Deflections int64
	// CyclesSkipped counts cycles the engine fast-forwarded over instead
	// of ticking (a performance counter; every measured figure is
	// byte-identical whatever its value).
	CyclesSkipped int64
	// MPMMUBusy is the number of cycles the memory node was serving a
	// transaction.
	MPMMUBusy int64
}

// DefaultBudget is the cycle budget for a single run; reaching it means
// deadlock/livelock and fails the run.
const DefaultBudget = 200_000_000

// RunOption customizes a Run.
type RunOption func(*runOptions)

type runOptions struct {
	systemHook func(*core.System) error
}

// WithSystemHook runs fn on the freshly built system before programs are
// launched — e.g. to attach a VCD tracer or extra instrumentation.
func WithSystemHook(fn func(*core.System) error) RunOption {
	return func(o *runOptions) { o.systemHook = fn }
}

// Run builds a MEDEA system for cfg, executes the Jacobi workload in the
// given variant, verifies the numerical result against the sequential
// reference, and returns the measurements.
func Run(cfg core.Config, spec Spec, variant Variant, opts ...RunOption) (Result, error) {
	return RunCtx(context.Background(), cfg, spec, variant, opts...)
}

// RunCtx is Run with cooperative cancellation: a canceled context stops
// the simulation mid-run (within a few thousand simulated cycles of wall
// time) and aborts the kernel goroutines, so a canceled sweep point costs
// bounded time and leaks nothing.
func RunCtx(ctx context.Context, cfg core.Config, spec Spec, variant Variant, opts ...RunOption) (Result, error) {
	var ro runOptions
	for _, o := range opts {
		o(&ro)
	}
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	sys, err := core.Build(cfg)
	if err != nil {
		return Result{}, err
	}
	if ro.systemHook != nil {
		if err := ro.systemHook(sys); err != nil {
			return Result{}, err
		}
	}
	blocks := Partition(spec.N, cfg.NumCompute)
	Preload(sys.DDR, sys.Map, spec.N, blocks)

	layFor := func(rank int) Layout { return NewLayout(sys.Map, spec.N, blocks[rank]) }
	progs, sh := Programs(spec, variant, blocks, sys.RankNodes(), layFor)
	sys.Launch(progs)
	if err := sys.RunCtx(ctx, DefaultBudget); err != nil {
		return Result{}, fmt.Errorf("jacobi: %v %v on %d cores: %w", spec, variant, cfg.NumCompute, err)
	}
	if n := sys.IntegrityErrors(); n != 0 {
		return Result{}, fmt.Errorf("jacobi: %d message reassembly faults", n)
	}
	if err := Verify(sys, spec, blocks); err != nil {
		return Result{}, err
	}

	res := Result{
		Spec: spec, Variant: variant, Cfg: sys.Cfg,
		CyclesPerIteration: sh.MeasuredCycles(spec.Measured),
		TotalCycles:        sys.Cycles(),
		NoCFlits:           sys.Net.Stats.Delivered.Value(),
		AvgFlitLatency:     sys.Net.Stats.Latency.Mean(),
		Deflections:        sys.Net.TotalDeflections(),
		MPMMUBusy:          sys.MPMMUBusyTotal(),
		CyclesSkipped:      sys.Engine.CyclesSkipped(),
	}
	var mrSum float64
	var active int
	for r, p := range sys.Procs {
		if blocks[r].Active() {
			mrSum += p.Cache.Stats.MissRate()
			active++
		}
	}
	if active > 0 {
		res.MissRate = mrSum / float64(active)
	}
	return res, nil
}

// Verify checks the grid produced by a completed run against the
// sequential reference, element by element and bit-exact: the parallel
// kernels evaluate the stencil in the same floating-point order as the
// reference, so any difference indicates a simulation bug (lost update,
// stale halo, reordered write).
func Verify(sys *core.System, spec Spec, blocks []Block) error {
	sys.DrainCaches()
	ref := Reference(spec.N, spec.Iterations())
	final := 0
	if spec.Iterations()%2 == 1 {
		final = 1
	}
	for _, b := range blocks {
		if !b.Active() {
			continue
		}
		l := NewLayout(sys.Map, spec.N, b)
		for lr := 1; lr <= b.Rows; lr++ {
			gr := l.GridRow(lr)
			for col := 1; col < spec.N-1; col++ {
				got := sys.DDR.ReadFloat64(l.Addr(final, lr, col))
				want := ref[gr][col]
				if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					return fmt.Errorf("jacobi: rank %d element (%d,%d): got %v want %v",
						b.Rank, gr, col, got, want)
				}
			}
		}
	}
	return nil
}

// RunQuick is a helper for tests and examples: a small grid, write-back
// caches, default everything.
func RunQuick(numCompute, cacheKB int, variant Variant) (Result, error) {
	cfg := core.DefaultConfig(numCompute, cacheKB, 0)
	return Run(cfg, Spec{N: 16, Warmup: 1, Measured: 1}, variant)
}
