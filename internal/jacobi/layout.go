package jacobi

import (
	"fmt"

	"repro/internal/memmap"
	"repro/internal/memory"
)

// Layout computes the memory addresses of one rank's data. Each rank keeps
// two (Rows+2) x N double-precision buffers (old and new, swapped every
// iteration) in its private segment; halo rows live at local rows 0 and
// Rows+1. The shared segment carries the boundary-row exchange slots of
// the shared-memory variants plus the lock-based barrier variables.
type Layout struct {
	N     int
	Block Block
	mm    memmap.Map
	gap   uint64 // cached bufGap (the search is not free)
}

// NewLayout builds the layout for one rank.
func NewLayout(mm memmap.Map, n int, b Block) Layout {
	l := Layout{N: n, Block: b, mm: mm}
	l.gap = l.bufGap()
	if need := l.gap + l.bufBytes(); need > uint64(mm.PrivateSize) {
		panic(fmt.Sprintf("jacobi: rank %d needs %d private bytes, segment has %d", b.Rank, need, mm.PrivateSize))
	}
	return l
}

func (l Layout) bufBytes() uint64 {
	return uint64(l.Block.Rows+2) * uint64(l.N) * 8
}

// sweepCaches are the direct-mapped cache sizes of the paper's design
// space; the buffer padding below is chosen to behave well for all of
// them simultaneously.
var sweepCaches = []uint64{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}

// bufGap is the distance between the old and new buffers. It is the
// smallest 16-byte-aligned gap >= the buffer size such that, for every
// cache size in the sweep:
//
//   - if the cache holds both buffers, their index ranges are disjoint
//     (old-row reads never conflict with new-row writes), and
//   - if it does not, corresponding rows of the two buffers still map at
//     least two rows apart, keeping the three-row stencil window live.
//
// This is classic array padding. Without it, configurations where the gap
// is congruent to 0 modulo the cache size thrash pathologically: every
// new-row store evicts exactly the old-row line the next load needs.
func (l Layout) bufGap() uint64 {
	length := l.bufBytes()
	guard := 2 * uint64(l.rowBytes()) // keep aliasing >= 2 rows from the stencil
	const searchLimit = 256 << 10
	// First pass honours both constraints; if the system is infeasible
	// (e.g. the buffer is exactly a power of two, pinning the fit
	// constraint to a single residue that violates a guard), retry with
	// the fit constraints only, then fall back to the raw size.
	for _, withGuard := range []bool{true, false} {
		for gap := (length + 15) &^ 15; gap <= searchLimit; gap += 16 {
			if l.gapOK(gap, length, guard, withGuard) {
				return gap
			}
		}
	}
	return (length + 15) &^ 15
}

func (l Layout) gapOK(gap, length, guard uint64, withGuard bool) bool {
	for _, s := range sweepCaches {
		m := gap % s
		switch {
		case 2*length <= s:
			if m < length || m > s-length {
				return false
			}
		case withGuard && s > 2*guard:
			if m < guard || m > s-guard {
				return false
			}
		}
	}
	return true
}

// Addr returns the private address of element (localRow, col) in buffer
// buf (0 or 1). localRow 0 is the upper halo, localRow Rows+1 the lower.
func (l Layout) Addr(buf, localRow, col int) uint32 {
	if buf < 0 || buf > 1 {
		panic("jacobi: buffer index out of range")
	}
	if localRow < 0 || localRow > l.Block.Rows+1 || col < 0 || col >= l.N {
		panic(fmt.Sprintf("jacobi: element (%d,%d) out of range", localRow, col))
	}
	off := uint64(buf)*l.gap + (uint64(localRow)*uint64(l.N)+uint64(col))*8
	return l.mm.PrivateAddr(l.Block.Rank, uint32(off))
}

// GridRow maps a local row index to the global grid row.
func (l Layout) GridRow(localRow int) int { return l.Block.Row0 - 1 + localRow }

// Shared-segment layout: per-rank top and bottom boundary slots followed
// by the barrier variables, each barrier word on its own cache line.

func (l Layout) rowBytes() uint32 { return uint32(l.N) * 8 }

// SharedTopSlot returns the shared-segment address where rank publishes
// its top boundary row.
func (l Layout) SharedTopSlot(rank, col int) uint32 {
	return l.mm.SharedAddr(uint32(rank)*2*l.rowBytes() + uint32(col)*8)
}

// SharedBottomSlot returns the shared-segment address where rank publishes
// its bottom boundary row.
func (l Layout) SharedBottomSlot(rank, col int) uint32 {
	return l.mm.SharedAddr(uint32(rank)*2*l.rowBytes() + l.rowBytes() + uint32(col)*8)
}

// BarrierCountAddr returns the shared word holding the barrier arrival
// count (also the word the barrier lock protects).
func (l Layout) BarrierCountAddr() uint32 {
	base := uint32(l.mm.NumCores)*2*l.rowBytes() + 63
	return l.mm.SharedAddr(base &^ 63)
}

// BarrierSenseAddr returns the shared word holding the barrier sense flag,
// placed on a different line than the count.
func (l Layout) BarrierSenseAddr() uint32 {
	return l.BarrierCountAddr() + 64
}

// Preload writes the initial grid into both buffers of every active rank's
// private segment, modelling the startup state where code and data are
// placed in the external DDR before the cores boot.
func Preload(ddr *memory.DDR, mm memmap.Map, n int, blocks []Block) {
	grid := InitialGrid(n)
	for _, b := range blocks {
		if !b.Active() {
			continue
		}
		l := NewLayout(mm, n, b)
		for buf := 0; buf < 2; buf++ {
			for lr := 0; lr <= b.Rows+1; lr++ {
				gr := l.GridRow(lr)
				for col := 0; col < n; col++ {
					ddr.WriteFloat64(l.Addr(buf, lr, col), grid[gr][col])
				}
			}
		}
	}
}
