// Package jacobi implements the paper's benchmark workload: a parallel
// Jacobi iterative solver for 2-D Laplace problems, in the three variants
// the evaluation compares:
//
//   - HybridFull: halo rows and synchronization both use the message-
//     passing path (the full MEDEA model);
//   - HybridSync: halo rows go through shared memory, synchronization uses
//     eMPI barriers;
//   - PureSM: halo rows through shared memory and a lock-based barrier in
//     shared memory — the conventional pure shared-memory model.
//
// The grid is partitioned into contiguous row blocks, one per rank, each
// stored in the rank's private (cacheable) memory segment with one halo
// row above and below. The solver runs warm-up iterations, then measures
// the cycle time of the following iterations barrier-to-barrier, matching
// the paper's "execution time for an iteration after cache warm-up".
package jacobi

import (
	"fmt"
	"strconv"
	"strings"
)

// Variant selects the communication/synchronization style. It is the
// paper's central shared-memory vs message-passing axis and is shared by
// every kernel workload (jacobi, matmul, syncbench); ParseVariant resolves
// it by name, mirroring noc.ParseRouter for the network axes.
type Variant int

const (
	// HybridFull exchanges data and synchronization over the NoC message
	// path (the headline MEDEA configuration).
	HybridFull Variant = iota
	// HybridSync exchanges data through shared memory but synchronizes
	// with eMPI message barriers.
	HybridSync
	// PureSM uses shared memory for everything, with a lock-based
	// sense-reversing barrier at the MPMMU.
	PureSM

	// numVariants counts the defined variants (keep it last).
	numVariants
)

// AllVariants returns every defined variant in declaration order.
func AllVariants() []Variant {
	out := make([]Variant, numVariants)
	for i := range out {
		out[i] = Variant(i)
	}
	return out
}

// VariantNames returns the canonical names of every variant, for flag
// documentation and error messages.
func VariantNames() []string {
	names := make([]string, numVariants)
	for i := range names {
		names[i] = Variant(i).String()
	}
	return names
}

// ParseVariant resolves a variant from its canonical name (as printed by
// Variant.String) or its numeric value. Matching is case-insensitive and
// accepts "_" for "-", mirroring noc.ParseRouter.
func ParseVariant(s string) (Variant, error) {
	norm := strings.ReplaceAll(strings.ToLower(strings.TrimSpace(s)), "_", "-")
	for v := Variant(0); v < numVariants; v++ {
		if norm == v.String() {
			return v, nil
		}
	}
	if n, err := strconv.Atoi(norm); err == nil {
		if n >= 0 && n < int(numVariants) {
			return Variant(n), nil
		}
		return 0, fmt.Errorf("jacobi: variant index %d out of range [0, %d)", n, int(numVariants))
	}
	return 0, fmt.Errorf("jacobi: unknown variant %q (have: %s)", s, strings.Join(VariantNames(), ", "))
}

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case HybridFull:
		return "hybrid-full"
	case HybridSync:
		return "hybrid-sync"
	case PureSM:
		return "pure-sm"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// Spec describes one Jacobi problem.
type Spec struct {
	// N is the grid edge: the paper uses 16, 30 and 60.
	N int
	// Warmup iterations run before measurement (cache warm-up).
	Warmup int
	// Measured iterations are timed barrier-to-barrier.
	Measured int
}

// Validate reports specification errors.
func (s Spec) Validate() error {
	if s.N < 4 {
		return fmt.Errorf("jacobi: grid %d too small (need N >= 4)", s.N)
	}
	if s.Warmup < 0 || s.Measured < 1 {
		return fmt.Errorf("jacobi: need measured >= 1 and warmup >= 0")
	}
	return nil
}

// Iterations returns the total number of iterations executed.
func (s Spec) Iterations() int { return s.Warmup + s.Measured }

// Block is one rank's contiguous share of the interior rows.
type Block struct {
	Rank int
	// Row0 is the first interior row owned (grid coordinates); Rows is
	// the number of owned rows (0 for surplus ranks when P exceeds the
	// interior row count, as happens for 16x16 grids on many cores).
	Row0, Rows int
}

// Active reports whether the rank owns any rows.
func (b Block) Active() bool { return b.Rows > 0 }

// Partition splits the N-2 interior rows over p ranks, giving earlier
// ranks one extra row when the division is uneven, so inactive ranks (if
// any) are always the trailing ones.
func Partition(n, p int) []Block {
	interior := n - 2
	base := interior / p
	extra := interior % p
	blocks := make([]Block, p)
	row := 1
	for r := 0; r < p; r++ {
		rows := base
		if r < extra {
			rows++
		}
		blocks[r] = Block{Rank: r, Row0: row, Rows: rows}
		row += rows
	}
	return blocks
}

// InitialGrid returns the starting grid: a hot top boundary (100.0), cold
// remaining boundaries and a zero interior — a standard Laplace test
// problem whose solution is smooth and non-trivial.
func InitialGrid(n int) [][]float64 {
	g := make([][]float64, n)
	for i := range g {
		g[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		g[0][j] = 100.0
	}
	return g
}

// Reference runs iters Jacobi iterations sequentially and returns the
// resulting grid. It is the functional oracle for every parallel variant.
func Reference(n, iters int) [][]float64 {
	old := InitialGrid(n)
	nw := InitialGrid(n)
	for it := 0; it < iters; it++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				nw[i][j] = 0.25 * (old[i-1][j] + old[i+1][j] + old[i][j-1] + old[i][j+1])
			}
		}
		old, nw = nw, old
	}
	return old
}
