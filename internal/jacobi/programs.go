package jacobi

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/empi"
	"repro/internal/pe"
)

// shared carries the per-rank timing measurements out of the program
// goroutines. Writes happen strictly before the final opHalt rendezvous,
// so the driver may read them after the run completes.
type shared struct {
	t0, t1 []int64
}

// kernel holds everything one rank's program needs.
type kernel struct {
	env     *Envish
	spec    Spec
	variant Variant
	blocks  []Block
	lay     Layout
	nodeOf  []int
	sh      *shared

	comm  *empi.Comm
	phase uint32
	old   int // buffer index read this iteration
	nw    int // buffer index written this iteration
}

// Envish is the subset alias for pe.Env used by the kernels; declared for
// documentation purposes.
type Envish = pe.Env

// Programs builds one program per rank implementing the requested variant.
// nodeOf maps ranks to NoC node ids (from core.System.RankNodes). The
// returned shared struct receives per-rank measurement timestamps.
func Programs(spec Spec, variant Variant, blocks []Block, nodeOf []int, lay func(rank int) Layout) ([]pe.Program, *shared) {
	sh := &shared{t0: make([]int64, len(blocks)), t1: make([]int64, len(blocks))}
	progs := make([]pe.Program, len(blocks))
	for r := range blocks {
		r := r
		progs[r] = func(env *pe.Env) {
			k := &kernel{
				env: env, spec: spec, variant: variant,
				blocks: blocks, lay: lay(r), nodeOf: nodeOf, sh: sh,
				old: 0, nw: 1,
			}
			k.run()
		}
	}
	return progs, sh
}

// MeasuredCycles returns the barrier-to-barrier cycle count of the
// measured iterations, per iteration, as observed by rank 0.
func (sh *shared) MeasuredCycles(measured int) int64 {
	return (sh.t1[0] - sh.t0[0]) / int64(measured)
}

func (k *kernel) run() {
	rank := k.env.Rank()
	if k.variant != PureSM {
		c, err := empi.New(k.env, k.nodeOf)
		if err != nil {
			// Fail this rank's core instead of panicking: the run aborts
			// with a per-point error the sweep drivers propagate, rather
			// than the process dying (see core.System.RunCtx).
			k.env.Fail(fmt.Errorf("jacobi: rank %d: %w", rank, err))
		}
		k.comm = c
	}

	k.barrier() // align all ranks before the first iteration
	for it := 0; it < k.spec.Iterations(); it++ {
		if it == k.spec.Warmup {
			k.sh.t0[rank] = k.env.Now()
		}
		k.iteration()
		k.old, k.nw = k.nw, k.old
	}
	k.sh.t1[rank] = k.env.Now()
}

// iteration computes the owned rows and exchanges boundary rows.
func (k *kernel) iteration() {
	if k.lay.Block.Active() {
		k.compute()
	}
	switch k.variant {
	case HybridFull:
		k.exchangeMP()
		k.barrier()
	case HybridSync, PureSM:
		k.publishSM()
		k.barrier()
		k.consumeSM()
		k.barrier()
	}
}

// compute performs one Jacobi relaxation over the owned rows: four
// neighbour loads, three double adds, one double multiply and one store
// per element, plus loop bookkeeping, all through the simulated memory
// hierarchy.
func (k *kernel) compute() {
	env, l := k.env, k.lay
	for lr := 1; lr <= l.Block.Rows; lr++ {
		for col := 1; col < l.N-1; col++ {
			up := env.LoadDouble(l.Addr(k.old, lr-1, col))
			down := env.LoadDouble(l.Addr(k.old, lr+1, col))
			left := env.LoadDouble(l.Addr(k.old, lr, col-1))
			right := env.LoadDouble(l.Addr(k.old, lr, col+1))
			env.ComputeFP(3, 1, 4)
			env.StoreDouble(l.Addr(k.nw, lr, col), 0.25*(up+down+left+right))
		}
	}
}

// upNeighbor/downNeighbor return the adjacent active rank or -1. With the
// contiguous partition, inactive ranks are always the trailing ones.
func (k *kernel) upNeighbor() int {
	if !k.lay.Block.Active() || k.lay.Block.Rank == 0 {
		return -1
	}
	return k.lay.Block.Rank - 1
}

func (k *kernel) downNeighbor() int {
	r := k.lay.Block.Rank
	if !k.lay.Block.Active() || r+1 >= len(k.blocks) || !k.blocks[r+1].Active() {
		return -1
	}
	return r + 1
}

// loadRow reads one local row of the freshly computed buffer into a Go
// slice (cache hits: the row was just written).
func (k *kernel) loadRow(localRow int) []float64 {
	vals := make([]float64, k.lay.N)
	for col := 0; col < k.lay.N; col++ {
		vals[col] = k.env.LoadDouble(k.lay.Addr(k.nw, localRow, col))
	}
	return vals
}

// storeRow writes received values into a halo row of the new buffer.
func (k *kernel) storeRow(localRow int, vals []float64) {
	for col, v := range vals {
		k.env.StoreDouble(k.lay.Addr(k.nw, localRow, col), v)
	}
}

// exchangeMP swaps halo rows with both neighbours over the message-passing
// path: send both rows first (fire-and-forget), then receive both.
func (k *kernel) exchangeMP() {
	up, down := k.upNeighbor(), k.downNeighbor()
	if up >= 0 {
		k.comm.SendDoubles(up, k.loadRow(1))
	}
	if down >= 0 {
		k.comm.SendDoubles(down, k.loadRow(k.lay.Block.Rows))
	}
	if up >= 0 {
		k.storeRow(0, k.comm.RecvDoubles(up, k.lay.N))
	}
	if down >= 0 {
		k.storeRow(k.lay.Block.Rows+1, k.comm.RecvDoubles(down, k.lay.N))
	}
}

// publishSM writes the rank's boundary rows to its shared-segment slots
// and flushes the lines, making them visible in system memory
// (producer-side software coherency, as in the paper's programming model).
func (k *kernel) publishSM() {
	if !k.lay.Block.Active() {
		return
	}
	r := k.lay.Block.Rank
	k.copyRowToShared(1, func(col int) uint32 { return k.lay.SharedTopSlot(r, col) })
	k.copyRowToShared(k.lay.Block.Rows, func(col int) uint32 { return k.lay.SharedBottomSlot(r, col) })
}

func (k *kernel) copyRowToShared(localRow int, slot func(col int) uint32) {
	env := k.env
	for col := 0; col < k.lay.N; col++ {
		env.StoreDouble(slot(col), env.LoadDouble(k.lay.Addr(k.nw, localRow, col)))
	}
	for col := 0; col < k.lay.N; col += cache.LineBytes / 8 {
		env.FlushLine(slot(col))
	}
}

// consumeSM reads the neighbours' boundary rows from shared memory
// (invalidate-then-load, the DII pattern) into the halo rows.
func (k *kernel) consumeSM() {
	up, down := k.upNeighbor(), k.downNeighbor()
	if up >= 0 {
		k.copyRowFromShared(0, func(col int) uint32 { return k.lay.SharedBottomSlot(up, col) })
	}
	if down >= 0 {
		k.copyRowFromShared(k.lay.Block.Rows+1, func(col int) uint32 { return k.lay.SharedTopSlot(down, col) })
	}
}

func (k *kernel) copyRowFromShared(localRow int, slot func(col int) uint32) {
	env := k.env
	for col := 0; col < k.lay.N; col += cache.LineBytes / 8 {
		env.InvalidateLine(slot(col))
	}
	for col := 0; col < k.lay.N; col++ {
		env.StoreDouble(k.lay.Addr(k.nw, localRow, col), env.LoadDouble(slot(col)))
	}
}

// barrier dispatches to the variant's synchronization primitive.
func (k *kernel) barrier() {
	if k.variant == PureSM {
		k.smBarrier()
		return
	}
	k.comm.Barrier()
}

// smBarrier is the sense-reversing centralized barrier in shared memory:
// a lock-protected counter at the MPMMU plus a spin on the sense word.
// Following the paper's programming model, shared data is cacheable with
// software coherency: the counter read-modify-write invalidates (DII),
// loads, stores and flushes the counter line inside the lock, and each
// sense poll is a DII followed by a cached load — i.e. a full block-read
// transaction. Every arrival and every poll therefore serializes at the
// MPMMU, which is exactly the synchronization overhead the paper measures
// the hybrid approach against.
func (k *kernel) smBarrier() {
	env := k.env
	count := k.lay.BarrierCountAddr()
	sense := k.lay.BarrierSenseAddr()
	k.phase ^= 1
	env.Lock(count)
	env.InvalidateLine(count)
	c := env.LoadWord(count)
	if int(c+1) == len(k.blocks) {
		env.StoreWord(count, 0)
		env.FlushLine(count)
		env.InvalidateLine(sense)
		env.StoreWord(sense, k.phase)
		env.FlushLine(sense)
	} else {
		env.StoreWord(count, c+1)
		env.FlushLine(count)
	}
	env.Unlock(count)
	for {
		env.InvalidateLine(sense)
		if env.LoadWord(sense) == k.phase {
			return
		}
	}
}
