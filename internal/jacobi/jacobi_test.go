package jacobi

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/core"
)

func TestParseVariantRoundTrip(t *testing.T) {
	for _, v := range AllVariants() {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Errorf("ParseVariant(%q) = %v, %v", v.String(), got, err)
		}
		if got, err := ParseVariant("  " + strings.ToUpper(v.String()) + " "); err != nil || got != v {
			t.Errorf("ParseVariant upper(%q) = %v, %v", v, got, err)
		}
	}
	if got, err := ParseVariant("hybrid_sync"); err != nil || got != HybridSync {
		t.Errorf("ParseVariant(hybrid_sync) = %v, %v", got, err)
	}
	if got, err := ParseVariant("2"); err != nil || got != PureSM {
		t.Errorf("ParseVariant(2) = %v, %v", got, err)
	}
	for _, bad := range []string{"", "mpi", "99", "-1"} {
		if _, err := ParseVariant(bad); err == nil {
			t.Errorf("ParseVariant(%q) accepted", bad)
		}
	}
	if len(VariantNames()) != 3 {
		t.Errorf("VariantNames = %v, want 3 variants", VariantNames())
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{N: 16, Warmup: 1, Measured: 1}).Validate(); err != nil {
		t.Error(err)
	}
	bad := []Spec{
		{N: 3, Warmup: 1, Measured: 1},
		{N: 16, Warmup: -1, Measured: 1},
		{N: 16, Warmup: 0, Measured: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestPartitionCoversInterior(t *testing.T) {
	for _, n := range []int{16, 30, 60} {
		for p := 1; p <= 15; p++ {
			blocks := Partition(n, p)
			if len(blocks) != p {
				t.Fatalf("n=%d p=%d: %d blocks", n, p, len(blocks))
			}
			row := 1
			totalRows := 0
			inactiveSeen := false
			for r, b := range blocks {
				if b.Rank != r {
					t.Fatalf("rank mismatch")
				}
				if b.Active() {
					if inactiveSeen {
						t.Fatalf("n=%d p=%d: active rank %d after inactive rank", n, p, r)
					}
					if b.Row0 != row {
						t.Fatalf("n=%d p=%d rank %d: row0=%d, want %d", n, p, r, b.Row0, row)
					}
					row += b.Rows
					totalRows += b.Rows
				} else {
					inactiveSeen = true
				}
			}
			if totalRows != n-2 {
				t.Fatalf("n=%d p=%d: %d rows covered, want %d", n, p, totalRows, n-2)
			}
		}
	}
}

// TestPartitionQuick property-tests partition invariants for arbitrary
// sizes.
func TestPartitionQuick(t *testing.T) {
	fn := func(nRaw, pRaw uint8) bool {
		n := 4 + int(nRaw)%100
		p := 1 + int(pRaw)%16
		blocks := Partition(n, p)
		total, row := 0, 1
		for _, b := range blocks {
			if b.Rows < 0 {
				return false
			}
			if b.Active() {
				if b.Row0 != row {
					return false
				}
				row += b.Rows
				total += b.Rows
			}
		}
		return total == n-2
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestReferenceConverges(t *testing.T) {
	// After many iterations the interior approaches the harmonic solution;
	// sanity-check monotone smoothing: values bounded by boundary range.
	g := Reference(16, 200)
	for i := 1; i < 15; i++ {
		for j := 1; j < 15; j++ {
			if g[i][j] < 0 || g[i][j] > 100 {
				t.Fatalf("value out of harmonic bounds at (%d,%d): %v", i, j, g[i][j])
			}
		}
	}
	// The row adjacent to the hot boundary must have warmed up.
	if g[1][8] < 10 {
		t.Errorf("insufficient diffusion after 200 iterations: %v", g[1][8])
	}
}

func TestReferenceSymmetry(t *testing.T) {
	// The problem is symmetric about the vertical midline for even N.
	g := Reference(16, 50)
	for i := 1; i < 15; i++ {
		for j := 1; j < 8; j++ {
			a, b := g[i][j], g[i][15-j]
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("asymmetry at row %d: %v vs %v", i, a, b)
			}
		}
	}
}

func TestLayoutAddresses(t *testing.T) {
	sys, err := core.Build(core.DefaultConfig(3, 8, cache.WriteBack))
	if err != nil {
		t.Fatal(err)
	}
	blocks := Partition(16, 3)
	l := NewLayout(sys.Map, 16, blocks[1])
	// All addresses 8-aligned, inside the rank's private segment, and
	// distinct across (buf,row,col).
	seen := map[uint32]bool{}
	for buf := 0; buf < 2; buf++ {
		for lr := 0; lr <= blocks[1].Rows+1; lr++ {
			for col := 0; col < 16; col++ {
				a := l.Addr(buf, lr, col)
				if a%8 != 0 {
					t.Fatalf("unaligned address %#x", a)
				}
				if seg, owner := sys.Map.Classify(a); seg.String() != "private" || owner != 1 {
					t.Fatalf("address %#x not in rank 1 private segment", a)
				}
				if seen[a] {
					t.Fatalf("address %#x reused", a)
				}
				seen[a] = true
			}
		}
	}
}

func TestLayoutGridRow(t *testing.T) {
	blocks := Partition(16, 3)
	sys, _ := core.Build(core.DefaultConfig(3, 8, cache.WriteBack))
	l := NewLayout(sys.Map, 16, blocks[1])
	if l.GridRow(0) != blocks[1].Row0-1 {
		t.Error("halo row maps wrong")
	}
	if l.GridRow(1) != blocks[1].Row0 {
		t.Error("first owned row maps wrong")
	}
}

func TestSharedSlotsDisjoint(t *testing.T) {
	sys, _ := core.Build(core.DefaultConfig(4, 8, cache.WriteBack))
	blocks := Partition(30, 4)
	l := NewLayout(sys.Map, 30, blocks[0])
	seen := map[uint32]bool{}
	for r := 0; r < 4; r++ {
		for col := 0; col < 30; col++ {
			for _, a := range []uint32{l.SharedTopSlot(r, col), l.SharedBottomSlot(r, col)} {
				if seen[a] {
					t.Fatalf("shared slot %#x reused", a)
				}
				seen[a] = true
			}
		}
	}
	// Barrier words live on separate lines beyond the slots.
	if l.BarrierCountAddr()/16 == l.BarrierSenseAddr()/16 {
		t.Error("barrier count and sense share a cache line")
	}
	if seen[l.BarrierCountAddr()] || seen[l.BarrierSenseAddr()] {
		t.Error("barrier words collide with boundary slots")
	}
}

// TestAllVariantsMatchReference is the central functional test: every
// variant, several core counts, both policies, bit-exact vs the sequential
// solver (Verify runs inside Run).
func TestAllVariantsMatchReference(t *testing.T) {
	for _, variant := range []Variant{HybridFull, HybridSync, PureSM} {
		for _, cores := range []int{1, 2, 5} {
			for _, pol := range []cache.Policy{cache.WriteBack, cache.WriteThrough} {
				cfg := core.DefaultConfig(cores, 4, pol)
				_, err := Run(cfg, Spec{N: 16, Warmup: 1, Measured: 2}, variant)
				if err != nil {
					t.Errorf("%v cores=%d %v: %v", variant, cores, pol, err)
				}
			}
		}
	}
}

// TestMoreRanksThanRows covers the 16x16 grid on 15 cores: only 14
// interior rows exist, so one rank is inactive and must still participate
// in all synchronization.
func TestMoreRanksThanRows(t *testing.T) {
	cfg := core.DefaultConfig(15, 4, cache.WriteBack)
	for _, variant := range []Variant{HybridFull, HybridSync, PureSM} {
		if _, err := Run(cfg, Spec{N: 16, Warmup: 1, Measured: 1}, variant); err != nil {
			t.Errorf("%v: %v", variant, err)
		}
	}
}

func TestSingleRowRanks(t *testing.T) {
	// 16x16 on 14 cores: every rank owns exactly one row, so each rank's
	// top row == bottom row (the aliasing edge case).
	cfg := core.DefaultConfig(14, 4, cache.WriteBack)
	if _, err := Run(cfg, Spec{N: 16, Warmup: 1, Measured: 1}, HybridFull); err != nil {
		t.Error(err)
	}
}

func TestVariantStrings(t *testing.T) {
	if HybridFull.String() != "hybrid-full" || HybridSync.String() != "hybrid-sync" || PureSM.String() != "pure-sm" {
		t.Error("variant strings wrong")
	}
}

func TestRunRejectsBadSpec(t *testing.T) {
	cfg := core.DefaultConfig(2, 8, cache.WriteBack)
	if _, err := Run(cfg, Spec{N: 2, Warmup: 1, Measured: 1}, HybridFull); err == nil {
		t.Error("bad spec accepted")
	}
}

// TestHybridBeatsPureSM checks the headline qualitative claim on a small
// configuration: the full hybrid must be at least 1.5x faster than pure
// shared memory.
func TestHybridBeatsPureSM(t *testing.T) {
	spec := Spec{N: 30, Warmup: 1, Measured: 1}
	cfg := core.DefaultConfig(4, 16, cache.WriteBack)
	hy, err := Run(cfg, spec, HybridFull)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := Run(cfg, spec, PureSM)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(sm.CyclesPerIteration) / float64(hy.CyclesPerIteration)
	t.Logf("pure-SM / hybrid-full = %.2fx (hybrid %d, pure %d)", ratio, hy.CyclesPerIteration, sm.CyclesPerIteration)
	if ratio < 1.5 {
		t.Errorf("hybrid advantage %.2fx below 1.5x", ratio)
	}
}

// TestScalingWithCores checks that with ample cache the measured iteration
// time decreases when cores are added (Fig. 6's right-hand regime).
func TestScalingWithCores(t *testing.T) {
	spec := Spec{N: 30, Warmup: 1, Measured: 1}
	t4, err := Run(core.DefaultConfig(4, 32, cache.WriteBack), spec, HybridFull)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := Run(core.DefaultConfig(8, 32, cache.WriteBack), spec, HybridFull)
	if err != nil {
		t.Fatal(err)
	}
	if t8.CyclesPerIteration >= t4.CyclesPerIteration {
		t.Errorf("no scaling: 4 cores %d, 8 cores %d", t4.CyclesPerIteration, t8.CyclesPerIteration)
	}
}

// TestDeterministicResult verifies bit-identical cycle counts across runs.
func TestDeterministicResult(t *testing.T) {
	cfg := core.DefaultConfig(3, 8, cache.WriteBack)
	spec := Spec{N: 16, Warmup: 1, Measured: 1}
	a, err := Run(cfg, spec, HybridFull)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, spec, HybridFull)
	if err != nil {
		t.Fatal(err)
	}
	if a.CyclesPerIteration != b.CyclesPerIteration || a.TotalCycles != b.TotalCycles || a.NoCFlits != b.NoCFlits {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// TestMultiMPMMU runs the full workload against two memory nodes; results
// must stay bit-exact and the second memory node must relieve the first.
func TestMultiMPMMU(t *testing.T) {
	spec := Spec{N: 30, Warmup: 1, Measured: 1}
	cfg1 := core.DefaultConfig(6, 8, cache.WriteBack)
	one, err := Run(cfg1, spec, PureSM)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg1
	cfg2.NumMPMMUs = 2
	two, err := Run(cfg2, spec, PureSM)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pure-SM 30x30 on 6 cores: 1 MPMMU %d cy/iter, 2 MPMMUs %d cy/iter",
		one.CyclesPerIteration, two.CyclesPerIteration)
	if two.CyclesPerIteration >= one.CyclesPerIteration {
		t.Errorf("second memory node did not help: %d -> %d",
			one.CyclesPerIteration, two.CyclesPerIteration)
	}
}
