package jacobi

import "testing"

func TestGapFeasibleAllSweepPoints(t *testing.T) {
	for _, n := range []int{16, 30, 60} {
		for p := 1; p <= 15; p++ {
			for _, b := range Partition(n, p) {
				l := Layout{N: n, Block: b}
				g := l.bufGap()
				if g < l.bufBytes() {
					t.Fatalf("n=%d p=%d rank=%d: gap %d < len %d", n, p, b.Rank, g, l.bufBytes())
				}
				for _, s := range sweepCaches {
					if 2*l.bufBytes() <= s && (g%s < l.bufBytes() || g%s > s-l.bufBytes()) {
						t.Errorf("n=%d p=%d rank=%d size=%d: fit-case overlap (gap %d)", n, p, b.Rank, s, g)
					}
				}
			}
		}
	}
}
