// Package matmul implements the paper's stated future work — "porting and
// execution of standard parallel benchmarks" — with a second scientific
// kernel: a row-partitioned double-precision matrix multiply C = A x B on
// the MEDEA architecture, in the same three programming-model variants as
// the Jacobi solver:
//
//   - HybridFull: B is broadcast to every core over the message-passing
//     path; synchronization via eMPI.
//   - HybridSync: every core reads B from shared memory (DII + cached
//     loads); synchronization via eMPI.
//   - PureSM: B through shared memory, lock-based barrier in shared
//     memory.
//
// Each rank owns a contiguous block of A's rows (private, cacheable) and
// produces the matching rows of C. The workload has the opposite
// communication profile to Jacobi — one bulk all-to-one-to-all transfer
// instead of per-iteration halo exchange — so it exercises the bandwidth
// rather than the latency of the two data paths.
package matmul

import (
	"fmt"

	"repro/internal/jacobi"
)

// Spec describes one matrix-multiply problem: C = A x B with NxN doubles.
type Spec struct {
	N int
}

// Validate reports specification errors.
func (s Spec) Validate() error {
	if s.N < 2 || s.N > 64 {
		return fmt.Errorf("matmul: N=%d out of supported range 2..64", s.N)
	}
	return nil
}

// Variant aliases the Jacobi variants so callers use one vocabulary.
type Variant = jacobi.Variant

// The three programming-model variants.
const (
	HybridFull = jacobi.HybridFull
	HybridSync = jacobi.HybridSync
	PureSM     = jacobi.PureSM
)

// Partition splits N rows over p ranks (earlier ranks get the remainder),
// mirroring the Jacobi partition but without boundary rows.
func Partition(n, p int) []RowBlock {
	base := n / p
	extra := n % p
	out := make([]RowBlock, p)
	row := 0
	for r := 0; r < p; r++ {
		rows := base
		if r < extra {
			rows++
		}
		out[r] = RowBlock{Rank: r, Row0: row, Rows: rows}
		row += rows
	}
	return out
}

// RowBlock is one rank's share of A's (and C's) rows.
type RowBlock struct {
	Rank, Row0, Rows int
}

// Active reports whether the rank owns any rows.
func (b RowBlock) Active() bool { return b.Rows > 0 }

// InitA returns the deterministic test matrix A.
func InitA(n int) [][]float64 {
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = float64(i+1) * 0.25 * float64(j%7+1)
		}
	}
	return a
}

// InitB returns the deterministic test matrix B.
func InitB(n int) [][]float64 {
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
		for j := range b[i] {
			b[i][j] = float64(j+1)*0.5 - float64(i%5)
		}
	}
	return b
}

// Reference computes C = A x B sequentially, accumulating in the same
// order the parallel kernels do, so results compare bit-exact.
func Reference(n int) [][]float64 {
	a, bm := InitA(n), InitB(n)
	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += a[i][k] * bm[k][j]
			}
			c[i][j] = sum
		}
	}
	return c
}
