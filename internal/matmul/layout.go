package matmul

import (
	"fmt"

	"repro/internal/memmap"
	"repro/internal/memory"
)

// Layout computes per-rank addresses. Each rank keeps its A rows, its C
// rows and a private copy of B in its private segment; the master copy of
// B lives at the base of the shared segment.
type Layout struct {
	N     int
	Block RowBlock
	mm    memmap.Map
}

// NewLayout builds the layout for one rank.
func NewLayout(mm memmap.Map, n int, b RowBlock) Layout {
	l := Layout{N: n, Block: b, mm: mm}
	need := uint64(l.bOff()) + uint64(n)*uint64(n)*8
	if need > uint64(mm.PrivateSize) {
		panic(fmt.Sprintf("matmul: rank %d needs %d private bytes", b.Rank, need))
	}
	return l
}

func (l Layout) rowBytes() uint32 { return uint32(l.N) * 8 }

func (l Layout) cOff() uint32 {
	return align64(uint32(l.Block.Rows) * l.rowBytes())
}

func (l Layout) bOff() uint32 {
	return align64(l.cOff() + uint32(l.Block.Rows)*l.rowBytes())
}

func align64(v uint32) uint32 { return (v + 63) &^ 63 }

// AAddr returns the private address of A[localRow][col].
func (l Layout) AAddr(localRow, col int) uint32 {
	return l.mm.PrivateAddr(l.Block.Rank, uint32(localRow)*l.rowBytes()+uint32(col)*8)
}

// CAddr returns the private address of C[localRow][col].
func (l Layout) CAddr(localRow, col int) uint32 {
	return l.mm.PrivateAddr(l.Block.Rank, l.cOff()+uint32(localRow)*l.rowBytes()+uint32(col)*8)
}

// BAddr returns the private address of the local copy of B[row][col].
func (l Layout) BAddr(row, col int) uint32 {
	return l.mm.PrivateAddr(l.Block.Rank, l.bOff()+uint32(row)*l.rowBytes()+uint32(col)*8)
}

// SharedBAddr returns the shared-segment address of the master B[row][col].
func (l Layout) SharedBAddr(row, col int) uint32 {
	return l.mm.SharedAddr(uint32(row)*l.rowBytes() + uint32(col)*8)
}

// BarrierCountAddr and BarrierSenseAddr place the lock-based barrier words
// on separate lines above the master B.
func (l Layout) BarrierCountAddr() uint32 {
	return l.mm.SharedAddr(align64(uint32(l.N)*l.rowBytes()) + 64)
}

// BarrierSenseAddr returns the barrier sense word's address.
func (l Layout) BarrierSenseAddr() uint32 { return l.BarrierCountAddr() + 64 }

// Preload writes A's row blocks into each active rank's private segment
// and the master B into the shared segment.
func Preload(ddr *memory.DDR, mm memmap.Map, n int, blocks []RowBlock) {
	a, b := InitA(n), InitB(n)
	for _, blk := range blocks {
		if !blk.Active() {
			continue
		}
		l := NewLayout(mm, n, blk)
		for lr := 0; lr < blk.Rows; lr++ {
			for col := 0; col < n; col++ {
				ddr.WriteFloat64(l.AAddr(lr, col), a[blk.Row0+lr][col])
			}
		}
	}
	l := NewLayout(mm, n, blocks[0])
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			ddr.WriteFloat64(l.SharedBAddr(r, c), b[r][c])
		}
	}
}
