package matmul

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
)

func TestSpecValidate(t *testing.T) {
	if err := (Spec{N: 16}).Validate(); err != nil {
		t.Error(err)
	}
	for _, n := range []int{0, 1, 65} {
		if err := (Spec{N: n}).Validate(); err == nil {
			t.Errorf("N=%d accepted", n)
		}
	}
}

func TestPartitionCoversAllRows(t *testing.T) {
	for n := 2; n <= 32; n += 3 {
		for p := 1; p <= 15; p++ {
			blocks := Partition(n, p)
			total, row := 0, 0
			for _, b := range blocks {
				if b.Active() {
					if b.Row0 != row {
						t.Fatalf("n=%d p=%d: gap before rank %d", n, p, b.Rank)
					}
					row += b.Rows
					total += b.Rows
				}
			}
			if total != n {
				t.Fatalf("n=%d p=%d: covered %d rows", n, p, total)
			}
		}
	}
}

func TestReferenceKnownValue(t *testing.T) {
	// Hand-check one element for N=2:
	// A = [[0.25, 0.5], [0.5, 1.0]], B = [[0.5, 1.0], [-0.5, 0.0]]
	a, b := InitA(2), InitB(2)
	want := a[0][0]*b[0][1] + a[0][1]*b[1][1]
	ref := Reference(2)
	if ref[0][1] != want {
		t.Fatalf("ref[0][1] = %v, want %v", ref[0][1], want)
	}
}

func TestLayoutRegionsDisjoint(t *testing.T) {
	sys, err := core.Build(core.DefaultConfig(3, 8, cache.WriteBack))
	if err != nil {
		t.Fatal(err)
	}
	blocks := Partition(12, 3)
	l := NewLayout(sys.Map, 12, blocks[1])
	seen := map[uint32]string{}
	check := func(addr uint32, what string) {
		if prev, ok := seen[addr]; ok {
			t.Fatalf("%s address %#x collides with %s", what, addr, prev)
		}
		seen[addr] = what
	}
	for lr := 0; lr < blocks[1].Rows; lr++ {
		for c := 0; c < 12; c++ {
			check(l.AAddr(lr, c), "A")
			check(l.CAddr(lr, c), "C")
		}
	}
	for r := 0; r < 12; r++ {
		for c := 0; c < 12; c++ {
			check(l.BAddr(r, c), "B")
		}
	}
}

// TestAllVariantsMatchReference verifies the product bit-exact for all
// three variants across core counts, including inactive ranks (P > N).
func TestAllVariantsMatchReference(t *testing.T) {
	for _, variant := range []Variant{HybridFull, HybridSync, PureSM} {
		for _, cores := range []int{1, 3, 6} {
			cfg := core.DefaultConfig(cores, 8, cache.WriteBack)
			if _, err := Run(cfg, Spec{N: 12}, variant); err != nil {
				t.Errorf("%v cores=%d: %v", variant, cores, err)
			}
		}
	}
}

func TestMoreRanksThanRows(t *testing.T) {
	cfg := core.DefaultConfig(15, 4, cache.WriteBack)
	if _, err := Run(cfg, Spec{N: 8}, HybridFull); err != nil {
		t.Error(err)
	}
}

// TestBroadcastBeatsSharedMemoryReads asserts the bandwidth claim: with
// several cores, distributing B over the message path must be faster than
// every core reading it through the single memory node.
func TestBroadcastBeatsSharedMemoryReads(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := core.DefaultConfig(8, 16, cache.WriteBack)
	spec := Spec{N: 24}
	hy, err := Run(cfg, spec, HybridFull)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := Run(cfg, spec, PureSM)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("B transfer: message broadcast %d cy vs shared-memory reads %d cy (%.2fx)",
		hy.TransferCycles, sm.TransferCycles,
		float64(sm.TransferCycles)/float64(hy.TransferCycles))
	if hy.TransferCycles >= sm.TransferCycles {
		t.Errorf("broadcast (%d) not faster than shared-memory reads (%d)",
			hy.TransferCycles, sm.TransferCycles)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := core.DefaultConfig(4, 8, cache.WriteBack)
	a, err := Run(cfg, Spec{N: 12}, HybridFull)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, Spec{N: 12}, HybridFull)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles || a.NoCFlits != b.NoCFlits {
		t.Fatal("non-deterministic matmul run")
	}
}
