package matmul

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/empi"
	"repro/internal/jacobi"
	"repro/internal/pe"
)

// Result summarizes one matrix-multiply run.
type Result struct {
	Spec    Spec
	Variant Variant
	Cfg     core.Config

	// TotalCycles covers B distribution plus compute, barrier to barrier.
	TotalCycles int64
	// TransferCycles covers only the B distribution phase.
	TransferCycles int64
	NoCFlits       int64
	MPMMUBusy      int64
	// CyclesSkipped counts cycles the engine fast-forwarded over instead
	// of ticking (a performance counter; the measured figures are
	// byte-identical whatever its value).
	CyclesSkipped int64
}

type mmShared struct {
	t0, tMid, t1 []int64
}

// Run executes C = A x B on a MEDEA system in the given variant and
// verifies the product against the sequential reference.
func Run(cfg core.Config, spec Spec, variant Variant) (Result, error) {
	return RunCtx(context.Background(), cfg, spec, variant)
}

// RunCtx is Run with cooperative cancellation: a canceled context stops
// the simulation mid-run and aborts the kernel goroutines, so a canceled
// sweep point costs bounded time and leaks nothing.
func RunCtx(ctx context.Context, cfg core.Config, spec Spec, variant Variant) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	sys, err := core.Build(cfg)
	if err != nil {
		return Result{}, err
	}
	blocks := Partition(spec.N, cfg.NumCompute)
	Preload(sys.DDR, sys.Map, spec.N, blocks)

	sh := &mmShared{
		t0:   make([]int64, cfg.NumCompute),
		tMid: make([]int64, cfg.NumCompute),
		t1:   make([]int64, cfg.NumCompute),
	}
	progs := make([]pe.Program, cfg.NumCompute)
	nodes := sys.RankNodes()
	for r := range progs {
		r := r
		progs[r] = func(env *pe.Env) {
			k := &mmKernel{
				env: env, spec: spec, variant: variant,
				blocks: blocks, lay: NewLayout(sys.Map, spec.N, blocks[r]),
				nodeOf: nodes, sh: sh,
			}
			k.run()
		}
	}
	sys.Launch(progs)
	if err := sys.RunCtx(ctx, jacobi.DefaultBudget); err != nil {
		return Result{}, fmt.Errorf("matmul: %v on %d cores: %w", variant, cfg.NumCompute, err)
	}
	if n := sys.IntegrityErrors(); n != 0 {
		return Result{}, fmt.Errorf("matmul: %d message reassembly faults", n)
	}
	if err := verify(sys, spec, blocks); err != nil {
		return Result{}, err
	}
	return Result{
		Spec: spec, Variant: variant, Cfg: sys.Cfg,
		TotalCycles:    sh.t1[0] - sh.t0[0],
		TransferCycles: sh.tMid[0] - sh.t0[0],
		NoCFlits:       sys.Net.Stats.Delivered.Value(),
		MPMMUBusy:      sys.MPMMUBusyTotal(),
		CyclesSkipped:  sys.Engine.CyclesSkipped(),
	}, nil
}

func verify(sys *core.System, spec Spec, blocks []RowBlock) error {
	sys.DrainCaches()
	ref := Reference(spec.N)
	for _, b := range blocks {
		if !b.Active() {
			continue
		}
		l := NewLayout(sys.Map, spec.N, b)
		for lr := 0; lr < b.Rows; lr++ {
			for col := 0; col < spec.N; col++ {
				got := sys.DDR.ReadFloat64(l.CAddr(lr, col))
				want := ref[b.Row0+lr][col]
				if got != want {
					return fmt.Errorf("matmul: C[%d][%d] = %v, want %v", b.Row0+lr, col, got, want)
				}
			}
		}
	}
	return nil
}

type mmKernel struct {
	env     *pe.Env
	spec    Spec
	variant Variant
	blocks  []RowBlock
	lay     Layout
	nodeOf  []int
	sh      *mmShared

	comm  *empi.Comm
	phase uint32
}

func (k *mmKernel) run() {
	rank := k.env.Rank()
	if k.variant != PureSM {
		c, err := empi.New(k.env, k.nodeOf)
		if err != nil {
			// Fail this rank's core instead of panicking: the run aborts
			// with a per-point error instead of killing the process.
			k.env.Fail(fmt.Errorf("matmul: rank %d: %w", rank, err))
		}
		k.comm = c
	}
	k.barrier()
	k.sh.t0[rank] = k.env.Now()
	k.distributeB()
	k.barrier()
	k.sh.tMid[rank] = k.env.Now()
	if k.lay.Block.Active() {
		k.compute()
	}
	k.barrier()
	k.sh.t1[rank] = k.env.Now()
}

// distributeB moves the master B into every rank's private copy: over the
// message path (rank 0 reads once and broadcasts) for HybridFull, or with
// every rank reading shared memory (DII + cached loads) otherwise.
func (k *mmKernel) distributeB() {
	env, n := k.env, k.spec.N
	switch k.variant {
	case HybridFull:
		if k.env.Rank() == 0 {
			for r := 0; r < n; r++ {
				row := make([]float64, n)
				for c := 0; c < n; c++ {
					v := env.LoadDouble(k.lay.SharedBAddr(r, c))
					row[c] = v
					env.StoreDouble(k.lay.BAddr(r, c), v)
				}
				for dst := 1; dst < len(k.blocks); dst++ {
					if k.blocks[dst].Active() {
						k.comm.SendDoubles(dst, row)
					}
				}
			}
			return
		}
		if !k.lay.Block.Active() {
			return
		}
		for r := 0; r < n; r++ {
			row := k.comm.RecvDoubles(0, n)
			for c, v := range row {
				env.StoreDouble(k.lay.BAddr(r, c), v)
			}
		}
	case HybridSync, PureSM:
		if !k.lay.Block.Active() {
			return
		}
		for r := 0; r < n; r++ {
			for c := 0; c < n; c += cache.LineBytes / 8 {
				env.InvalidateLine(k.lay.SharedBAddr(r, c))
			}
			for c := 0; c < n; c++ {
				env.StoreDouble(k.lay.BAddr(r, c), env.LoadDouble(k.lay.SharedBAddr(r, c)))
			}
		}
	}
}

// compute produces the rank's C rows with the classic triple loop; the
// accumulation order matches Reference exactly.
func (k *mmKernel) compute() {
	env, n := k.env, k.spec.N
	for lr := 0; lr < k.lay.Block.Rows; lr++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for kk := 0; kk < n; kk++ {
				a := env.LoadDouble(k.lay.AAddr(lr, kk))
				b := env.LoadDouble(k.lay.BAddr(kk, j))
				env.ComputeFP(1, 1, 3)
				sum += a * b
			}
			env.StoreDouble(k.lay.CAddr(lr, j), sum)
		}
	}
}

func (k *mmKernel) barrier() {
	if k.variant != PureSM {
		k.comm.Barrier()
		return
	}
	env := k.env
	count, sense := k.lay.BarrierCountAddr(), k.lay.BarrierSenseAddr()
	k.phase ^= 1
	env.Lock(count)
	env.InvalidateLine(count)
	c := env.LoadWord(count)
	if int(c+1) == len(k.blocks) {
		env.StoreWord(count, 0)
		env.FlushLine(count)
		env.InvalidateLine(sense)
		env.StoreWord(sense, k.phase)
		env.FlushLine(sense)
	} else {
		env.StoreWord(count, c+1)
		env.FlushLine(count)
	}
	env.Unlock(count)
	for {
		env.InvalidateLine(sense)
		if env.LoadWord(sense) == k.phase {
			return
		}
	}
}
