package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
	"text/tabwriter"
)

// Render formats results in the named format (FormatTable, FormatCSV or
// FormatJSON; "" means table).
func Render(results []Result, format string) (string, error) {
	switch format {
	case "", FormatTable:
		return Table(results), nil
	case FormatCSV:
		return CSV(results), nil
	case FormatJSON:
		return JSON(results)
	}
	return "", fmt.Errorf("scenario: unknown output format %q (have: %s, %s, %s)",
		format, FormatTable, FormatCSV, FormatJSON)
}

// Table renders results as an aligned text table, one row per point.
func Table(results []Result) string {
	if len(results) == 0 {
		return "(no points)\n"
	}
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	if results[0].Workload == WorkloadJacobi {
		fmt.Fprintln(w, "cores\tcache\tpolicy\tcycles/iter\tmiss%\tarea(mm2)\tspeedup\t")
		for _, r := range results {
			fmt.Fprintf(w, "%d\t%dkB\t%s\t%d\t%.1f\t%.2f\t%.2f\t\n",
				r.Cores, r.CacheKB, r.Policy, r.CyclesPerIter, 100*r.MissRate, r.AreaMM2, r.Speedup)
		}
	} else {
		fmt.Fprintln(w, "topo\trouter\tpattern\trate\tseed\tthroughput\tmean-lat\tp99-lat\tdefl/flit\tpeak-buf\tdelivered\t")
		for _, r := range results {
			name := r.Pattern
			if r.Bursty {
				name = "bursty+" + name
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%.2f\t%d\t%.3f\t%.1f\t%.0f\t%.2f\t%d\t%d\t\n",
				r.Topology, r.Router, name, r.Rate, r.Seed, r.Throughput, r.MeanLatency, r.P99Latency,
				r.DeflectionRate, r.PeakBuffer, r.Delivered)
		}
	}
	w.Flush()
	return b.String()
}

// CSV renders results as CSV with a uniform header per workload.
func CSV(results []Result) string {
	var b strings.Builder
	if len(results) > 0 && results[0].Workload == WorkloadJacobi {
		// Same columns and formatting verbs as dse.PointsCSV, so a scenario
		// that mirrors a figure sweep emits byte-identical numbers.
		b.WriteString("compute,cache_kb,policy,cycles_per_iter,miss_rate,area_mm2,speedup\n")
		for _, r := range results {
			fmt.Fprintf(&b, "%d,%d,%v,%d,%.6f,%.3f,%.3f\n",
				r.Cores, r.CacheKB, r.Policy, r.CyclesPerIter, r.MissRate, r.AreaMM2, r.Speedup)
		}
		return b.String()
	}
	b.WriteString("pattern,rate,seed,topology,router,bursty,cycles,delivered,throughput,mean_latency,p99_latency,deflection_rate,peak_buffer\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%s,%g,%d,%s,%s,%t,%d,%d,%.6f,%.3f,%g,%.4f,%d\n",
			r.Pattern, r.Rate, r.Seed, r.Topology, r.Router, r.Bursty, r.Cycles, r.Delivered,
			r.Throughput, r.MeanLatency, r.P99Latency, r.DeflectionRate, r.PeakBuffer)
	}
	return b.String()
}

// nocJSON and jacobiJSON are the per-workload JSON projections of Result:
// every field of the row's workload is always emitted — including
// legitimate zeros like seed 0 or a 0.0 deflection rate, which omitempty
// on the shared Result struct would silently drop — and nothing from the
// other workload leaks in.
type nocJSON struct {
	Scenario       string  `json:"scenario"`
	Workload       string  `json:"workload"`
	Topology       string  `json:"topology"`
	Router         string  `json:"router"`
	Pattern        string  `json:"pattern"`
	Rate           float64 `json:"rate"`
	Seed           int64   `json:"seed"`
	Bursty         bool    `json:"bursty"`
	Cycles         int64   `json:"cycles"`
	Delivered      int64   `json:"delivered"`
	Throughput     float64 `json:"throughput"`
	MeanLatency    float64 `json:"mean_latency"`
	P99Latency     float64 `json:"p99_latency"`
	DeflectionRate float64 `json:"deflection_rate"`
	PeakBuffer     int     `json:"peak_buffer"`
}

type jacobiJSON struct {
	Scenario      string  `json:"scenario"`
	Workload      string  `json:"workload"`
	Cores         int     `json:"cores"`
	CacheKB       int     `json:"cache_kb"`
	Policy        string  `json:"policy"`
	Variant       string  `json:"variant"`
	CyclesPerIter int64   `json:"cycles_per_iter"`
	MissRate      float64 `json:"miss_rate"`
	AreaMM2       float64 `json:"area_mm2"`
	Speedup       float64 `json:"speedup"`
}

// JSON renders results as an indented JSON array, one object per point
// with the full field set of its workload.
func JSON(results []Result) (string, error) {
	rows := make([]any, len(results))
	for i, r := range results {
		if r.Workload == WorkloadJacobi {
			rows[i] = jacobiJSON{
				Scenario: r.Scenario, Workload: r.Workload,
				Cores: r.Cores, CacheKB: r.CacheKB, Policy: r.Policy, Variant: r.Variant,
				CyclesPerIter: r.CyclesPerIter, MissRate: r.MissRate,
				AreaMM2: r.AreaMM2, Speedup: r.Speedup,
			}
		} else {
			rows[i] = nocJSON{
				Scenario: r.Scenario, Workload: r.Workload,
				Topology: r.Topology, Router: r.Router, Pattern: r.Pattern, Rate: r.Rate, Seed: r.Seed, Bursty: r.Bursty,
				Cycles: r.Cycles, Delivered: r.Delivered, Throughput: r.Throughput,
				MeanLatency: r.MeanLatency, P99Latency: r.P99Latency,
				DeflectionRate: r.DeflectionRate, PeakBuffer: r.PeakBuffer,
			}
		}
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return "", fmt.Errorf("scenario: rendering json: %w", err)
	}
	return string(out) + "\n", nil
}

// Summary renders a one-line header describing the scenario and its sweep
// size, for CLI output above the result block.
func Summary(s *Scenario) string {
	var axes string
	if s.Workload == WorkloadJacobi {
		axes = fmt.Sprintf("%d cores x %d caches x %d policies",
			len(s.Jacobi.Cores), len(s.Jacobi.CacheKB), max(1, len(s.Jacobi.Policies)))
	} else {
		axes = fmt.Sprintf("%d topologies x %d routers x %d patterns x %d rates x %d seeds",
			max(1, len(s.NoC.Topologies)), max(1, len(s.NoC.Routers)),
			len(s.NoC.Patterns), len(s.NoC.Rates), len(s.seedList()))
	}
	return fmt.Sprintf("%s: %s workload, %s = %d points", s.Name, s.Workload, axes, s.NumPoints())
}
