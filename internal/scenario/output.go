package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
	"text/tabwriter"
)

// Render formats results in the named format (FormatTable, FormatCSV or
// FormatJSON; "" means table). Rendering dispatches through the workload
// registry: each row is formatted by its kind's registered schema, and a
// result set spanning several workloads (the "workloads" sweep axis)
// renders as one block per workload.
func Render(results []Result, format string) (string, error) {
	switch format {
	case "", FormatTable:
		return Table(results), nil
	case FormatCSV:
		return CSV(results), nil
	case FormatJSON:
		return JSON(results)
	}
	return "", fmt.Errorf("scenario: unknown output format %q (have: %s, %s, %s)",
		format, FormatTable, FormatCSV, FormatJSON)
}

// renderGroup is a maximal run of consecutive results of one workload
// kind. Run emits results workload-outermost, so for scenario output one
// group per workload comes back; hand-assembled interleavings still
// render correctly, with repeated headers.
type renderGroup struct {
	impl Workload
	rows []Result
}

func renderGroups(results []Result) []renderGroup {
	var groups []renderGroup
	for _, r := range results {
		k := workloadOfRow(r)
		if n := len(groups); n > 0 && groups[n-1].impl.Kind() == k {
			groups[n-1].rows = append(groups[n-1].rows, r)
			continue
		}
		groups = append(groups, renderGroup{impl: ForKind(k), rows: []Result{r}})
	}
	return groups
}

// workloadOfRow resolves a row's renderer; rows with an unknown workload
// string (hand-built Results) fall back to the noc-synthetic schema,
// which was the pre-registry behaviour.
func workloadOfRow(r Result) WorkloadKind {
	k, err := ParseWorkload(r.Workload)
	if err != nil {
		return WorkloadNoC
	}
	return k
}

// Table renders results as an aligned text table, one row per point, one
// header block per workload.
func Table(results []Result) string {
	if len(results) == 0 {
		return "(no points)\n"
	}
	var b strings.Builder
	for i, g := range renderGroups(results) {
		if i > 0 {
			b.WriteByte('\n')
		}
		w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
		g.impl.TableInto(w, g.rows)
		w.Flush()
	}
	return b.String()
}

// CSV renders results as CSV with a uniform header per workload block.
func CSV(results []Result) string {
	var b strings.Builder
	if len(results) == 0 {
		// Headers only, so empty sweeps still yield parseable output (the
		// noc schema, matching the pre-registry behaviour).
		nocWorkload{}.CSVInto(&b, nil)
		return b.String()
	}
	for _, g := range renderGroups(results) {
		g.impl.CSVInto(&b, g.rows)
	}
	return b.String()
}

// JSON renders results as an indented JSON array, one object per point
// with the full field set of its workload.
func JSON(results []Result) (string, error) {
	rows := make([]any, len(results))
	for i, r := range results {
		rows[i] = ForKind(workloadOfRow(r)).JSONRow(r)
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return "", fmt.Errorf("scenario: rendering json: %w", err)
	}
	return string(out) + "\n", nil
}

// Summary renders a one-line header describing the scenario and its sweep
// size, for CLI output above the result block.
func Summary(s *Scenario) string {
	kinds, err := s.workloadKinds()
	if err != nil {
		return fmt.Sprintf("%s: invalid workload axis", s.Name)
	}
	var axes string
	switch kinds[0] {
	case WorkloadNoC:
		axes = fmt.Sprintf("%d topologies x %d routers x %d patterns x %d rates x %d seeds",
			max(1, len(s.NoC.Topologies)), max(1, len(s.NoC.Routers)),
			len(s.NoC.Patterns), len(s.NoC.Rates), len(s.seedList()))
	case WorkloadTrace:
		if t, err := s.Trace.load(); err == nil {
			axes = fmt.Sprintf("%d topologies x %d routers replaying %d recorded events",
				len(s.Trace.topologyList(t)), len(s.Trace.routerList(t)), len(t.Events))
		} else {
			axes = "trace replay"
		}
	case WorkloadService:
		axes = fmt.Sprintf("%d topologies x %d routers x %d rates x %d seeds",
			max(1, len(s.Service.Topologies)), max(1, len(s.Service.Routers)),
			len(s.Service.ArrivalRates), len(s.seedList()))
	default:
		c := s.kernelConfig()
		axes = fmt.Sprintf("%d workloads x %d variants x %d cores x %d caches x %d policies",
			len(kinds), max(1, len(c.Variants)), len(c.Cores), len(c.CacheKB), max(1, len(c.Policies)))
	}
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	plural := "workload"
	if len(kinds) > 1 {
		plural = "workloads"
	}
	return fmt.Sprintf("%s: %s %s, %s = %d points",
		s.Name, strings.Join(names, "+"), plural, axes, s.NumPoints())
}

// multiVariant reports whether the rows span more than one programming-
// model variant — the trigger for the jacobi schema's extra column.
func multiVariant(rows []Result) bool {
	for _, r := range rows {
		if r.Variant != rows[0].Variant {
			return true
		}
	}
	return false
}

// ---- jacobi schema ----------------------------------------------------
//
// The single-variant schema is pinned: its CSV columns and verbs match
// dse.PointsCSV exactly, so a scenario that mirrors a figure sweep emits
// byte-identical numbers (the fig8-quick golden tests hold this). The
// variants axis appends a variant column without disturbing the pinned
// prefix.

func (jacobiWorkload) TableInto(w *tabwriter.Writer, rows []Result) {
	multi := multiVariant(rows)
	head := "cores\tcache\tpolicy\tcycles/iter\tmiss%\tarea(mm2)\tspeedup\t"
	if multi {
		head += "variant\t"
	}
	fmt.Fprintln(w, head)
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%dkB\t%s\t%d\t%.1f\t%.2f\t%.2f\t",
			r.Cores, r.CacheKB, r.Policy, r.CyclesPerIter, 100*r.MissRate, r.AreaMM2, r.Speedup)
		if multi {
			fmt.Fprintf(w, "%s\t", r.Variant)
		}
		fmt.Fprintln(w)
	}
}

func (jacobiWorkload) CSVInto(b *strings.Builder, rows []Result) {
	multi := multiVariant(rows)
	head := "compute,cache_kb,policy,cycles_per_iter,miss_rate,area_mm2,speedup"
	if multi {
		head += ",variant"
	}
	b.WriteString(head + "\n")
	for _, r := range rows {
		fmt.Fprintf(b, "%d,%d,%v,%d,%.6f,%.3f,%.3f",
			r.Cores, r.CacheKB, r.Policy, r.CyclesPerIter, r.MissRate, r.AreaMM2, r.Speedup)
		if multi {
			fmt.Fprintf(b, ",%s", r.Variant)
		}
		b.WriteByte('\n')
	}
}

// jacobiJSON is the jacobi projection of Result: every field always
// emitted — including legitimate zeros omitempty would drop — and nothing
// from other workloads leaking in. The noc, matmul and syncbench structs
// below serve the same purpose for their kinds.
type jacobiJSON struct {
	Scenario      string  `json:"scenario"`
	Workload      string  `json:"workload"`
	Cores         int     `json:"cores"`
	CacheKB       int     `json:"cache_kb"`
	Policy        string  `json:"policy"`
	Variant       string  `json:"variant"`
	CyclesPerIter int64   `json:"cycles_per_iter"`
	MissRate      float64 `json:"miss_rate"`
	AreaMM2       float64 `json:"area_mm2"`
	Speedup       float64 `json:"speedup"`
}

func (jacobiWorkload) JSONRow(r Result) any {
	return jacobiJSON{
		Scenario: r.Scenario, Workload: r.Workload,
		Cores: r.Cores, CacheKB: r.CacheKB, Policy: r.Policy, Variant: r.Variant,
		CyclesPerIter: r.CyclesPerIter, MissRate: r.MissRate,
		AreaMM2: r.AreaMM2, Speedup: r.Speedup,
	}
}

// ---- matmul schema ----------------------------------------------------

func (matmulWorkload) TableInto(w *tabwriter.Writer, rows []Result) {
	fmt.Fprintln(w, "variant\tcores\tcache\tpolicy\ttotal-cycles\txfer-cycles\tspeedup\tmpmmu-busy\tnoc-flits\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%dkB\t%s\t%d\t%d\t%.2f\t%d\t%d\t\n",
			r.Variant, r.Cores, r.CacheKB, r.Policy,
			r.TotalCycles, r.TransferCycles, r.Speedup, r.MPMMUBusy, r.NoCFlits)
	}
}

func (matmulWorkload) CSVInto(b *strings.Builder, rows []Result) {
	b.WriteString("variant,cores,cache_kb,policy,total_cycles,transfer_cycles,speedup,mpmmu_busy,noc_flits\n")
	for _, r := range rows {
		fmt.Fprintf(b, "%s,%d,%d,%s,%d,%d,%.3f,%d,%d\n",
			r.Variant, r.Cores, r.CacheKB, r.Policy,
			r.TotalCycles, r.TransferCycles, r.Speedup, r.MPMMUBusy, r.NoCFlits)
	}
}

type matmulJSON struct {
	Scenario       string  `json:"scenario"`
	Workload       string  `json:"workload"`
	Variant        string  `json:"variant"`
	Cores          int     `json:"cores"`
	CacheKB        int     `json:"cache_kb"`
	Policy         string  `json:"policy"`
	TotalCycles    int64   `json:"total_cycles"`
	TransferCycles int64   `json:"transfer_cycles"`
	Speedup        float64 `json:"speedup"`
	MPMMUBusy      int64   `json:"mpmmu_busy"`
	NoCFlits       int64   `json:"noc_flits"`
}

func (matmulWorkload) JSONRow(r Result) any {
	return matmulJSON{
		Scenario: r.Scenario, Workload: r.Workload, Variant: r.Variant,
		Cores: r.Cores, CacheKB: r.CacheKB, Policy: r.Policy,
		TotalCycles: r.TotalCycles, TransferCycles: r.TransferCycles,
		Speedup: r.Speedup, MPMMUBusy: r.MPMMUBusy, NoCFlits: r.NoCFlits,
	}
}

// ---- syncbench schema -------------------------------------------------

func (syncbenchWorkload) TableInto(w *tabwriter.Writer, rows []Result) {
	fmt.Fprintln(w, "variant\tcores\tcache\tpolicy\tcycles/round\tspeedup\tmpmmu-busy\tnoc-flits\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%dkB\t%s\t%d\t%.2f\t%d\t%d\t\n",
			r.Variant, r.Cores, r.CacheKB, r.Policy,
			r.CyclesPerRound, r.Speedup, r.MPMMUBusy, r.NoCFlits)
	}
}

func (syncbenchWorkload) CSVInto(b *strings.Builder, rows []Result) {
	b.WriteString("variant,cores,cache_kb,policy,cycles_per_round,speedup,mpmmu_busy,noc_flits\n")
	for _, r := range rows {
		fmt.Fprintf(b, "%s,%d,%d,%s,%d,%.3f,%d,%d\n",
			r.Variant, r.Cores, r.CacheKB, r.Policy,
			r.CyclesPerRound, r.Speedup, r.MPMMUBusy, r.NoCFlits)
	}
}

type syncbenchJSON struct {
	Scenario       string  `json:"scenario"`
	Workload       string  `json:"workload"`
	Variant        string  `json:"variant"`
	Cores          int     `json:"cores"`
	CacheKB        int     `json:"cache_kb"`
	Policy         string  `json:"policy"`
	CyclesPerRound int64   `json:"cycles_per_round"`
	Speedup        float64 `json:"speedup"`
	MPMMUBusy      int64   `json:"mpmmu_busy"`
	NoCFlits       int64   `json:"noc_flits"`
}

func (syncbenchWorkload) JSONRow(r Result) any {
	return syncbenchJSON{
		Scenario: r.Scenario, Workload: r.Workload, Variant: r.Variant,
		Cores: r.Cores, CacheKB: r.CacheKB, Policy: r.Policy,
		CyclesPerRound: r.CyclesPerRound, Speedup: r.Speedup,
		MPMMUBusy: r.MPMMUBusy, NoCFlits: r.NoCFlits,
	}
}

// ---- noc-synthetic schema ---------------------------------------------

func (nocWorkload) TableInto(w *tabwriter.Writer, rows []Result) {
	fmt.Fprintln(w, "topo\trouter\tpattern\trate\tseed\tcycles\tthroughput\tmean-lat\tp99-lat\tdefl/flit\tpeak-buf\tdelivered\t")
	for _, r := range rows {
		name := r.Pattern
		if r.Bursty {
			name = "bursty+" + name
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%.2f\t%d\t%d\t%.3f\t%.1f\t%.0f\t%.2f\t%d\t%d\t\n",
			r.Topology, r.Router, name, r.Rate, r.Seed, r.Cycles, r.Throughput, r.MeanLatency, r.P99Latency,
			r.DeflectionRate, r.PeakBuffer, r.Delivered)
	}
}

func (nocWorkload) CSVInto(b *strings.Builder, rows []Result) {
	b.WriteString("pattern,rate,seed,topology,router,bursty,cycles,delivered,throughput,mean_latency,p99_latency,deflection_rate,peak_buffer\n")
	for _, r := range rows {
		fmt.Fprintf(b, "%s,%g,%d,%s,%s,%t,%d,%d,%.6f,%.3f,%g,%.4f,%d\n",
			r.Pattern, r.Rate, r.Seed, r.Topology, r.Router, r.Bursty, r.Cycles, r.Delivered,
			r.Throughput, r.MeanLatency, r.P99Latency, r.DeflectionRate, r.PeakBuffer)
	}
}

type nocJSON struct {
	Scenario       string  `json:"scenario"`
	Workload       string  `json:"workload"`
	Topology       string  `json:"topology"`
	Router         string  `json:"router"`
	Pattern        string  `json:"pattern"`
	Rate           float64 `json:"rate"`
	Seed           int64   `json:"seed"`
	Bursty         bool    `json:"bursty"`
	Cycles         int64   `json:"cycles"`
	Delivered      int64   `json:"delivered"`
	Throughput     float64 `json:"throughput"`
	MeanLatency    float64 `json:"mean_latency"`
	P99Latency     float64 `json:"p99_latency"`
	DeflectionRate float64 `json:"deflection_rate"`
	PeakBuffer     int     `json:"peak_buffer"`
}

func (nocWorkload) JSONRow(r Result) any {
	return nocJSON{
		Scenario: r.Scenario, Workload: r.Workload,
		Topology: r.Topology, Router: r.Router, Pattern: r.Pattern, Rate: r.Rate, Seed: r.Seed, Bursty: r.Bursty,
		Cycles: r.Cycles, Delivered: r.Delivered, Throughput: r.Throughput,
		MeanLatency: r.MeanLatency, P99Latency: r.P99Latency,
		DeflectionRate: r.DeflectionRate, PeakBuffer: r.PeakBuffer,
	}
}

// ---- trace schema -------------------------------------------------------
//
// Replay rows come back labeled noc-synthetic (runTracePoint's contract:
// a same-fabric replay renders byte-identically to its source run), so
// these methods only serve hand-assembled rows that literally say
// "trace"; they delegate to the noc schema those rows would have worn.

func (traceWorkload) TableInto(w *tabwriter.Writer, rows []Result) { nocWorkload{}.TableInto(w, rows) }
func (traceWorkload) CSVInto(b *strings.Builder, rows []Result)    { nocWorkload{}.CSVInto(b, rows) }
func (traceWorkload) JSONRow(r Result) any                         { return nocWorkload{}.JSONRow(r) }

// ---- service schema -----------------------------------------------------

func (serviceWorkload) TableInto(w *tabwriter.Writer, rows []Result) {
	fmt.Fprintln(w, "topo\trouter\tservers\trate\tskew\tseed\tcycles\tissued\tdone\tmean-lat\tp99-lat\tqueue\tnet-out\tserver\tnet-back\tp99-srv\tpeak-buf\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%.3f\t%.2f\t%d\t%d\t%d\t%d\t%.1f\t%.0f\t%.1f\t%.1f\t%.1f\t%.1f\t%.0f\t%d\t\n",
			r.Topology, r.Router, r.Servers, r.ArrivalRate, r.HotspotSkew, r.Seed, r.Cycles,
			r.Issued, r.Completed, r.MeanLatency, r.P99Latency,
			r.MeanQueue, r.MeanNetOut, r.MeanServer, r.MeanNetBack, r.P99Server, r.PeakBuffer)
	}
}

func (serviceWorkload) CSVInto(b *strings.Builder, rows []Result) {
	b.WriteString("topology,router,servers,arrival_rate,hotspot_skew,seed,bursty,cycles,issued,completed,in_flight,throttled,throughput,mean_queue,mean_net_out,mean_server,mean_net_back,mean_latency,p99_latency,p99_server,peak_buffer\n")
	for _, r := range rows {
		fmt.Fprintf(b, "%s,%s,%d,%g,%g,%d,%t,%d,%d,%d,%d,%d,%.6f,%.3f,%.3f,%.3f,%.3f,%.3f,%g,%g,%d\n",
			r.Topology, r.Router, r.Servers, r.ArrivalRate, r.HotspotSkew, r.Seed, r.Bursty, r.Cycles,
			r.Issued, r.Completed, r.InFlight, r.Throttled, r.Throughput,
			r.MeanQueue, r.MeanNetOut, r.MeanServer, r.MeanNetBack,
			r.MeanLatency, r.P99Latency, r.P99Server, r.PeakBuffer)
	}
}

type serviceJSON struct {
	Scenario    string  `json:"scenario"`
	Workload    string  `json:"workload"`
	Topology    string  `json:"topology"`
	Router      string  `json:"router"`
	Servers     int     `json:"servers"`
	ArrivalRate float64 `json:"arrival_rate"`
	HotspotSkew float64 `json:"hotspot_skew"`
	Seed        int64   `json:"seed"`
	Bursty      bool    `json:"bursty"`
	Cycles      int64   `json:"cycles"`
	Issued      int64   `json:"issued"`
	Completed   int64   `json:"completed"`
	InFlight    int64   `json:"in_flight"`
	Throttled   int64   `json:"throttled"`
	Throughput  float64 `json:"throughput"`
	MeanQueue   float64 `json:"mean_queue"`
	MeanNetOut  float64 `json:"mean_net_out"`
	MeanServer  float64 `json:"mean_server"`
	MeanNetBack float64 `json:"mean_net_back"`
	MeanLatency float64 `json:"mean_latency"`
	P99Latency  float64 `json:"p99_latency"`
	P99Server   float64 `json:"p99_server"`
	PeakBuffer  int     `json:"peak_buffer"`
}

func (serviceWorkload) JSONRow(r Result) any {
	return serviceJSON{
		Scenario: r.Scenario, Workload: r.Workload,
		Topology: r.Topology, Router: r.Router,
		Servers: r.Servers, ArrivalRate: r.ArrivalRate, HotspotSkew: r.HotspotSkew,
		Seed: r.Seed, Bursty: r.Bursty, Cycles: r.Cycles,
		Issued: r.Issued, Completed: r.Completed, InFlight: r.InFlight, Throttled: r.Throttled,
		Throughput: r.Throughput,
		MeanQueue:  r.MeanQueue, MeanNetOut: r.MeanNetOut,
		MeanServer: r.MeanServer, MeanNetBack: r.MeanNetBack,
		MeanLatency: r.MeanLatency, P99Latency: r.P99Latency, P99Server: r.P99Server,
		PeakBuffer: r.PeakBuffer,
	}
}
