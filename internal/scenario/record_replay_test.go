package scenario

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/resultcache"
)

// TestRecordReplayScenarioGolden is the scenario-level replay contract:
// recording a single-point run and replaying the capture on the same
// fabric renders byte-identical rows in every output format and merges to
// the same merkle root — with the result cache and idle fast-forward both
// live on the replay side.
func TestRecordReplayScenarioGolden(t *testing.T) {
	src := mustParse(t, `{
		"name": "golden-rt",
		"workload": "noc-synthetic",
		"noc": {"width": 4, "height": 4, "patterns": ["transpose"], "rates": [0.12],
		        "warmup_cycles": 100, "measure_cycles": 900},
		"seeds": [13]
	}`)
	tr, srcResults, err := RecordCtx(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("recorded no events")
	}
	path := filepath.Join(t.TempDir(), "golden.trace")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}

	replay := mustParse(t, `{
		"name": "golden-rt",
		"workload": "trace",
		"trace": {"file": "`+path+`"}
	}`)
	cache, err := resultcache.Open(resultcache.BackendMemory, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	replay.Cache = cache
	repResults, err := Run(replay)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := MerkleRoot(repResults), MerkleRoot(srcResults); got != want {
		t.Errorf("merkle root skew: replay %s, source %s", got, want)
	}
	for _, format := range []string{FormatTable, FormatCSV, FormatJSON} {
		a, err := Render(srcResults, format)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Render(repResults, format)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s output differs:\nsource:\n%s\nreplay:\n%s", format, a, b)
		}
	}

	// Warm rerun: every replay point must come from the cache, and the
	// rows must still match (the cache codec drops no rendered field).
	again, err := Run(replay)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := MerkleRoot(again), MerkleRoot(srcResults); got != want {
		t.Errorf("cached replay merkle root skew: %s vs %s", got, want)
	}
	if s := replay.Cache.Stats(); s.Hits == 0 {
		t.Errorf("warm replay hit the cache 0 times: %+v", s)
	}
}

// TestRecordedKernelTrace: kernel runs record their eMPI message skeleton
// through the tie send-recorder; the capture decodes, replays through the
// noc fabric, and is deterministic run to run.
func TestRecordedKernelTrace(t *testing.T) {
	src := `{
		"name": "kernel-rec",
		"workload": "jacobi",
		"kernel": {"n": 12, "cores": [4], "cache_kb": [4], "variants": ["hybrid-full"]}
	}`
	tr, _, err := RecordCtx(context.Background(), mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("kernel run recorded no message events")
	}
	again, _, err := RecordCtx(context.Background(), mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Hash() != again.Hash() {
		t.Errorf("kernel recording not deterministic: %s vs %s", tr.Hash(), again.Hash())
	}

	// The capture replays: save it, point a trace scenario at it, run.
	path := filepath.Join(t.TempDir(), "kernel.trace")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	replay := mustParse(t, `{
		"name": "kernel-rec-replay",
		"workload": "trace",
		"trace": {"file": "`+path+`"}
	}`)
	results, err := Run(replay)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d replay rows, want 1", len(results))
	}
	if results[0].Delivered == 0 {
		t.Error("kernel-trace replay delivered nothing")
	}
}

// TestCommittedTraceFresh guards the committed example trace against
// simulator drift: re-recording its source scenario must reproduce the
// committed bytes exactly. When this fails, the traffic or recording path
// changed behaviour — regenerate with
//
//	go run ./cmd/medea-scenarios -record examples/scenarios/traces/uniform-4x4.trace examples/scenarios/trace-record-quick.json
//
// and review the resulting diff in the replay goldens.
func TestCommittedTraceFresh(t *testing.T) {
	s, err := Load("../../examples/scenarios/trace-record-quick.json")
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := RecordCtx(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	committed, err := os.ReadFile("../../examples/scenarios/traces/uniform-4x4.trace")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tr.Encode(), committed) {
		t.Error("examples/scenarios/traces/uniform-4x4.trace is stale: re-recording trace-record-quick.json produced different bytes;\n" +
			"regenerate with: go run ./cmd/medea-scenarios -record examples/scenarios/traces/uniform-4x4.trace examples/scenarios/trace-record-quick.json")
	}
}
