package scenario

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/noc"
	"repro/internal/par"
	"repro/internal/resultcache"
	"repro/internal/tie"
	"repro/internal/trace"
)

// runTraceShard expands topologies x routers over one decoded trace and
// replays each point on the shared worker pool. Replayed rows carry the
// noc-synthetic schema with the recorded provenance as their axis labels
// (pattern, rate, seed, bursty come from the trace header; topology and
// router are the replay axes) — a same-fabric replay therefore renders
// byte-identical tables/CSV/JSON and an equal Merkle root to its source
// run, which the record/replay differential battery asserts.
func runTraceShard(ctx context.Context, s *Scenario, points []int) ([]Result, error) {
	c := s.Trace
	t, err := c.load()
	if err != nil {
		return nil, fmt.Errorf(`scenario: "trace.file": %w`, err)
	}
	events := make([]noc.ReplayEvent, len(t.Events))
	for i, ev := range t.Events {
		events[i] = noc.ReplayEvent{
			Cycle: ev.Cycle, Src: ev.Src, Dst: ev.Dst, Meta: ev.Meta,
			Req: ev.Kind == trace.EventMessage,
		}
	}
	// Hash() memoizes lazily; force it here, before the fan-out, so the
	// workers only ever read it.
	hash := t.Hash()
	type job struct {
		idx    int
		topo   noc.Topology
		router noc.RouterKind
	}
	var jobs []job
	for _, tk := range c.topologyList(t) {
		topo, err := noc.NewTopologyOfKind(tk, t.Header.Width, t.Header.Height)
		if err != nil {
			return nil, err
		}
		for _, router := range c.routerList(t) {
			jobs = append(jobs, job{idx: len(jobs), topo: topo, router: router})
		}
	}
	if points != nil {
		sel := make([]job, len(points))
		for i, p := range points {
			if p < 0 || p >= len(jobs) {
				return nil, fmt.Errorf("scenario: point filter index %d outside the %d-point trace sweep", p, len(jobs))
			}
			sel[i] = jobs[p]
			sel[i].idx = i
		}
		jobs = sel
	}
	results := make([]Result, len(jobs))
	if err := par.ForEachCtx(ctx, len(jobs), s.Parallelism, func(i int) error {
		j := jobs[i]
		r, err := runTracePoint(ctx, s.Cache, t, hash, events, j.topo, j.router)
		if err != nil {
			return err
		}
		r.Scenario = s.Name
		results[j.idx] = r
		return nil
	}); err != nil {
		return nil, err
	}
	return results, nil
}

// runTracePoint replays the trace through one (topology, router) point.
// The cache key embeds the trace's content hash — the trailing SHA-256 of
// the file bytes — so a cached replay can never outlive its trace: any
// byte change (including header provenance) misses, and two identical
// files share entries.
func runTracePoint(ctx context.Context, rc *resultcache.Cache, t *trace.Trace, hash string, events []noc.ReplayEvent, topo noc.Topology, router noc.RouterKind) (Result, error) {
	key := resultcache.NewKey("scenario/trace").
		Str("trace_sha256", hash).
		Str("topology", topo.Kind().String()).
		Str("router", router.String()).
		Sum()
	buf, _, err := rc.GetOrCompute(key, func() ([]byte, error) {
		m, err := noc.MeasureReplayCtx(ctx, topo, noc.ReplayConfig{
			Router: router, Events: events,
			Warmup: t.Header.Warmup, Measure: t.Header.Measure,
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(nocValueOf(m))
	})
	if err != nil {
		return Result{}, err
	}
	var m nocPointValue
	if err := json.Unmarshal(buf, &m); err != nil {
		return Result{}, fmt.Errorf("scenario: decoding cached trace point %s: %w", key, err)
	}
	h := t.Header
	return Result{
		// Replay rows carry the noc-synthetic schema: the recorded
		// provenance fills the pattern/rate/seed axes, so a same-fabric
		// replay row is byte-identical to its source row.
		Workload:       WorkloadNoC.String(),
		Topology:       topo.Kind().String(),
		Router:         router.String(),
		Pattern:        h.Pattern,
		Rate:           h.Rate,
		Seed:           h.Seed,
		Bursty:         h.Bursty,
		Cycles:         m.Cycles,
		Delivered:      m.Delivered,
		Throughput:     m.Throughput,
		MeanLatency:    m.MeanLatency,
		P99Latency:     m.P99Latency,
		DeflectionRate: m.DeflectionRate,
		PeakBuffer:     m.PeakBuffer,
	}, nil
}

// RecordCtx runs a single-point scenario with trace capture and returns
// the recorded trace alongside the run's results. NoC-synthetic points
// record flit-level injections through noc.TrafficConfig.Record; kernel
// points record eMPI message sends through the tie.SendRecorder hook.
// Recording detaches the result cache (a cache hit skips the simulation
// and would record nothing); the returned results are byte-identical to a
// cached run's, which the record/replay differential tests assert.
func RecordCtx(ctx context.Context, s *Scenario) (*trace.Trace, []Result, error) {
	kinds, err := s.workloadKinds()
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}
	if len(kinds) != 1 {
		return nil, nil, fmt.Errorf("scenario: recording needs a single workload, got %d", len(kinds))
	}
	switch k := kinds[0]; {
	case k == WorkloadNoC:
		return recordNoC(ctx, s)
	case k.IsKernel():
		return recordKernel(ctx, s)
	}
	return nil, nil, fmt.Errorf("scenario: the %v workload cannot be recorded (record a %v or kernel run)", kinds[0], WorkloadNoC)
}

// recordNoC captures one noc-synthetic point into a trace whose header
// carries the point's full provenance, so replaying it reproduces the
// run exactly.
func recordNoC(ctx context.Context, s *Scenario) (*trace.Trace, []Result, error) {
	c := s.NoC
	if len(c.MeasureWindows) > 0 {
		return nil, nil, fmt.Errorf("scenario: recording does not support measure_windows (a trace has one fixed horizon); use measure_cycles")
	}
	if n := s.NumPoints(); n != 1 {
		return nil, nil, fmt.Errorf("scenario: recording needs a single-point scenario (one topology, router, pattern, rate and seed), got %d points", n)
	}
	measure := c.MeasureCycles
	if measure == 0 {
		measure = 5000
	}
	p, err := noc.ParsePattern(c.Patterns[0])
	if err != nil {
		return nil, nil, err
	}
	t := trace.New(trace.Header{
		Width: c.Width, Height: c.Height,
		Topology: c.topologyList()[0].String(),
		Router:   c.routerList()[0].String(),
		Pattern:  p.String(),
		Rate:     c.Rates[0],
		Seed:     s.seedList()[0],
		Bursty:   c.Burst != nil,
		QueueCap: c.QueueCap,
		Warmup:   c.WarmupCycles,
		Measure:  measure,
	})
	run := *s
	run.Cache = nil
	run.Shard = nil
	run.Record = t
	results, err := RunCtx(ctx, &run)
	if err != nil {
		return nil, nil, err
	}
	return t, results, nil
}

// recordKernel captures one kernel point's eMPI message sends. Kernel
// rigs run on the architecture's fixed 4x4 folded torus (core.Config
// defaults), and the horizon is only known once the run finishes, so the
// header's measure window is stamped afterwards. Message events replay as
// single request-class flits carrying the packet's word count — a
// deterministic communication skeleton, not a flit-exact reproduction
// like noc recordings.
func recordKernel(ctx context.Context, s *Scenario) (*trace.Trace, []Result, error) {
	if n := s.NumPoints(); n != 1 {
		return nil, nil, fmt.Errorf("scenario: recording needs a single-point scenario (one variant, cores and cache size), got %d points", n)
	}
	t := trace.New(trace.Header{
		Width: 4, Height: 4,
		Topology: noc.TopoTorus.String(),
		Router:   noc.RouterDeflection.String(),
		Pattern:  s.Workload,
		Measure:  1,
	})
	prev := tie.SetSendRecorder(t)
	defer tie.SetSendRecorder(prev)
	run := *s
	run.Cache = nil
	run.Shard = nil
	results, err := RunCtx(ctx, &run)
	if err != nil {
		return nil, nil, err
	}
	if n := len(t.Events); n > 0 {
		t.Header.Measure = t.Events[n-1].Cycle + 1
	}
	return t, results, nil
}
