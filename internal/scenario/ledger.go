package scenario

import (
	"encoding/json"

	"repro/internal/resultcache"
)

// The Merkle run ledger: a run's full result set hashes into a Merkle
// tree whose root is one content address for the whole run. Equal roots
// mean point-for-point identical results (the serve daemon surfaces the
// root in job status, so "did the resubmit reproduce?" is one string
// comparison); unequal roots localize to the differing points in
// O(d log n) comparisons via resultcache.Tree.Diff.

// MerkleTree hashes the results, in their deterministic sweep order, into
// a ledger tree. Each leaf is the row's canonical JSON encoding — the
// same bytes Render's json format emits per row — so the tree commits to
// exactly what a consumer of the run would see.
func MerkleTree(results []Result) *resultcache.Tree {
	leaves := make([][]byte, len(results))
	for i, r := range results {
		b, err := json.Marshal(r)
		if err != nil {
			// A Result is a flat struct of scalars; Marshal cannot fail.
			panic("scenario: marshaling result row: " + err.Error())
		}
		leaves[i] = b
	}
	return resultcache.NewTree(leaves)
}

// MerkleRoot returns the hex root of MerkleTree(results).
func MerkleRoot(results []Result) string {
	return MerkleTree(results).Root().String()
}
