// Package scenario provides a declarative JSON experiment format and a
// parallel batch runner for the MEDEA simulator. A scenario file names a
// workload (the Jacobi application or synthetic NoC traffic), the sweep
// axes (traffic patterns, injection rates and seeds, or core counts,
// cache sizes and write policies), and the measurement windows; Run
// executes the cross-product of the axes on a worker pool and returns one
// Result per point, renderable as a table, CSV or JSON.
//
// The format exists so new experiments do not require new Go code: any
// configuration the cmd/ binaries can reach by flags — and sweeps over
// cross-products of them that the binaries cannot express — is one JSON
// file away. See examples/scenarios/ for ready-to-run files and
// cmd/medea-scenarios for the CLI driver.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cache"
	"repro/internal/jacobi"
	"repro/internal/noc"
)

// Workload names for Scenario.Workload.
const (
	// WorkloadJacobi runs the paper's Jacobi application on the full
	// MEDEA system (cores + caches + MPMMU over the NoC).
	WorkloadJacobi = "jacobi"
	// WorkloadNoC runs synthetic traffic on the bare network.
	WorkloadNoC = "noc-synthetic"
)

// Output format names for Scenario.Output and the CLI -format flag.
const (
	FormatTable = "table"
	FormatCSV   = "csv"
	FormatJSON  = "json"
)

// Scenario is the top-level declarative experiment description.
type Scenario struct {
	// Name identifies the scenario in result rows; Load defaults it to
	// the file's base name.
	Name string `json:"name,omitempty"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Workload selects what each point simulates: "jacobi" or
	// "noc-synthetic".
	Workload string `json:"workload"`

	// NoC configures the noc-synthetic workload (required for it).
	NoC *NoCConfig `json:"noc,omitempty"`
	// Jacobi configures the jacobi workload (required for it).
	Jacobi *JacobiConfig `json:"jacobi,omitempty"`

	// Seeds lists explicit RNG seeds; each seed is one replication of
	// every (pattern, rate) point. Mutually exclusive with Replications.
	Seeds []int64 `json:"seeds,omitempty"`
	// Replications runs seeds BaseSeed, BaseSeed+1, ... instead of an
	// explicit list. Defaults to 1.
	Replications int `json:"replications,omitempty"`
	// BaseSeed is the first seed when Replications is used. Defaults to 1.
	BaseSeed int64 `json:"base_seed,omitempty"`

	// Parallelism bounds concurrent simulations; 0 means GOMAXPROCS.
	Parallelism int `json:"parallelism,omitempty"`
	// Output is the default rendering: "table" (default), "csv" or "json".
	Output string `json:"output,omitempty"`
}

// NoCConfig describes a synthetic-traffic experiment on the bare network.
type NoCConfig struct {
	// Width and Height size the endpoint grid (both >= 2; the torus and
	// mesh put one switch under every endpoint, the cmesh needs both even
	// and >= 4 and folds each 2x2 endpoint tile onto one switch).
	Width  int `json:"width"`
	Height int `json:"height"`
	// Topologies lists fabrics by name (see noc.TopologyNames); one sweep
	// axis. Empty means the paper's folded torus only. Every listed
	// pattern must be valid on every listed topology (validation is
	// per-topology: bit patterns need a power-of-two endpoint count,
	// transpose a square endpoint grid).
	Topologies []string `json:"topologies,omitempty"`
	// Patterns lists traffic patterns by name (see noc.PatternNames);
	// one sweep axis.
	Patterns []string `json:"patterns"`
	// Routers lists router algorithms by name (see noc.RouterNames); one
	// sweep axis. Empty means the paper's deflection router only.
	Routers []string `json:"routers,omitempty"`
	// Rates lists offered loads in flits/node/cycle, each in (0, 1];
	// one sweep axis.
	Rates []float64 `json:"rates"`
	// HotspotNode is the destination for the hotspot pattern.
	HotspotNode int `json:"hotspot_node,omitempty"`
	// QueueCap bounds each source queue (default 16).
	QueueCap int `json:"queue_cap,omitempty"`
	// Burst, when present, gates every source through a two-state on/off
	// modulator with the given mean burst/gap lengths in cycles.
	Burst *BurstConfig `json:"burst,omitempty"`
	// WarmupCycles run before measurement starts (default 0).
	WarmupCycles int64 `json:"warmup_cycles,omitempty"`
	// MeasureCycles is the measurement window (default 5000).
	MeasureCycles int64 `json:"measure_cycles,omitempty"`
}

// BurstConfig mirrors noc.BurstConfig in the JSON schema.
type BurstConfig struct {
	MeanOn  float64 `json:"mean_on"`
	MeanOff float64 `json:"mean_off"`
}

// JacobiConfig describes a design-space sweep of the Jacobi workload.
type JacobiConfig struct {
	// N is the grid edge (the paper uses 16, 30 and 60).
	N int `json:"n"`
	// Variant is "hybrid-full" (default), "hybrid-sync" or "pure-sm".
	Variant string `json:"variant,omitempty"`
	// Cores lists compute-core counts; one sweep axis.
	Cores []int `json:"cores"`
	// CacheKB lists L1 sizes in kB; one sweep axis.
	CacheKB []int `json:"cache_kb"`
	// Policies lists write policies ("write-back"/"wb",
	// "write-through"/"wt"); one sweep axis. Defaults to write-back.
	Policies []string `json:"policies,omitempty"`
	// Warmup and Measured are Jacobi iteration counts (default 1 each).
	Warmup   int `json:"warmup,omitempty"`
	Measured int `json:"measured,omitempty"`
}

// Load reads, parses and validates a scenario file. An empty Name is
// defaulted from the file's base name.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return s, nil
}

// Parse decodes and validates a scenario from JSON bytes. Unknown fields
// are rejected so typos fail loudly instead of silently running defaults.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("parsing: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("parsing: trailing data after the scenario object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the scenario for consistency and fills no defaults (the
// runner applies defaults at execution time, so a validated scenario
// round-trips through JSON unchanged).
func (s *Scenario) Validate() error {
	switch s.Workload {
	case WorkloadJacobi, WorkloadNoC:
	case "":
		return fmt.Errorf(`missing "workload": set %q or %q`, WorkloadJacobi, WorkloadNoC)
	default:
		return fmt.Errorf("unknown workload %q (have: %q, %q)", s.Workload, WorkloadJacobi, WorkloadNoC)
	}
	switch s.Output {
	case "", FormatTable, FormatCSV, FormatJSON:
	default:
		return fmt.Errorf("unknown output format %q (have: %s, %s, %s)",
			s.Output, FormatTable, FormatCSV, FormatJSON)
	}
	if len(s.Seeds) > 0 && s.Replications > 0 {
		return fmt.Errorf(`set either "seeds" or "replications", not both`)
	}
	if s.Replications < 0 {
		return fmt.Errorf("replications must be >= 0, got %d", s.Replications)
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("parallelism must be >= 0, got %d", s.Parallelism)
	}

	if s.Workload == WorkloadNoC {
		if s.Jacobi != nil {
			return fmt.Errorf(`the "jacobi" section has no effect on workload %q; remove it`, WorkloadNoC)
		}
		if s.NoC == nil {
			return fmt.Errorf(`workload %q needs a "noc" section`, WorkloadNoC)
		}
		return s.NoC.validate()
	}

	// Jacobi.
	if s.NoC != nil {
		return fmt.Errorf(`the "noc" section has no effect on workload %q; remove it`, WorkloadJacobi)
	}
	if s.Jacobi == nil {
		return fmt.Errorf(`workload %q needs a "jacobi" section`, WorkloadJacobi)
	}
	if len(s.Seeds) > 0 || s.Replications > 1 || s.BaseSeed != 0 {
		return fmt.Errorf("the jacobi workload is fully deterministic: seeds/replications/base_seed have no effect; remove them")
	}
	return s.Jacobi.validate()
}

func (c *NoCConfig) validate() error {
	// Resolve the topology axis first: every listed fabric must build at
	// this size, and every pattern must be valid on every fabric.
	seenT := map[noc.TopologyKind]bool{}
	topos := make([]noc.Topology, 0, len(c.Topologies)+1)
	for _, name := range c.Topologies {
		k, err := noc.ParseTopology(name)
		if err != nil {
			return fmt.Errorf(`"noc.topologies": %w`, err)
		}
		if seenT[k] {
			return fmt.Errorf(`"noc.topologies": %v listed twice`, k)
		}
		seenT[k] = true
		topo, err := noc.NewTopologyOfKind(k, c.Width, c.Height)
		if err != nil {
			return fmt.Errorf(`"noc": %w`, err)
		}
		topos = append(topos, topo)
	}
	if len(topos) == 0 {
		topo, err := noc.NewTopology(c.Width, c.Height)
		if err != nil {
			return fmt.Errorf(`"noc": %w`, err)
		}
		topos = append(topos, topo)
	}
	if len(c.Patterns) == 0 {
		return fmt.Errorf(`"noc.patterns" must list at least one of: %s`,
			strings.Join(noc.PatternNames(), ", "))
	}
	seen := map[noc.Pattern]bool{}
	for _, name := range c.Patterns {
		p, err := noc.ParsePattern(name)
		if err != nil {
			return fmt.Errorf(`"noc.patterns": %w`, err)
		}
		for _, topo := range topos {
			if err := noc.ValidatePattern(p, topo); err != nil {
				return fmt.Errorf(`"noc.patterns": %w`, err)
			}
		}
		if seen[p] {
			return fmt.Errorf(`"noc.patterns": %v listed twice`, p)
		}
		seen[p] = true
	}
	seenR := map[noc.RouterKind]bool{}
	for _, name := range c.Routers {
		k, err := noc.ParseRouter(name)
		if err != nil {
			return fmt.Errorf(`"noc.routers": %w`, err)
		}
		if seenR[k] {
			return fmt.Errorf(`"noc.routers": %v listed twice`, k)
		}
		seenR[k] = true
	}
	if len(c.Rates) == 0 {
		return fmt.Errorf(`"noc.rates" must list at least one offered load in (0, 1]`)
	}
	for _, r := range c.Rates {
		if r <= 0 || r > 1 {
			return fmt.Errorf(`"noc.rates": offered load %g outside (0, 1]`, r)
		}
	}
	if c.HotspotNode < 0 || c.HotspotNode >= topos[0].NumEndpoints() {
		return fmt.Errorf(`"noc.hotspot_node" %d outside the %dx%d endpoint grid (0..%d)`,
			c.HotspotNode, c.Width, c.Height, topos[0].NumEndpoints()-1)
	}
	if c.QueueCap < 0 {
		return fmt.Errorf(`"noc.queue_cap" must be >= 0, got %d`, c.QueueCap)
	}
	if c.Burst != nil {
		if err := (noc.BurstConfig{MeanOn: c.Burst.MeanOn, MeanOff: c.Burst.MeanOff}).Validate(); err != nil {
			return fmt.Errorf(`"noc.burst": %w`, err)
		}
	}
	if c.WarmupCycles < 0 {
		return fmt.Errorf(`"noc.warmup_cycles" must be >= 0, got %d`, c.WarmupCycles)
	}
	if c.MeasureCycles < 0 {
		return fmt.Errorf(`"noc.measure_cycles" must be >= 0, got %d`, c.MeasureCycles)
	}
	return nil
}

func (c *JacobiConfig) validate() error {
	if c.N < 3 {
		return fmt.Errorf(`"jacobi.n" must be >= 3 (the paper uses 16, 30 and 60), got %d`, c.N)
	}
	if _, err := parseVariant(c.Variant); err != nil {
		return fmt.Errorf(`"jacobi.variant": %w`, err)
	}
	if len(c.Cores) == 0 {
		return fmt.Errorf(`"jacobi.cores" must list at least one compute-core count`)
	}
	for _, n := range c.Cores {
		if n < 2 || n > 15 {
			return fmt.Errorf(`"jacobi.cores": %d outside the architecture's 2..15 range`, n)
		}
	}
	if len(c.CacheKB) == 0 {
		return fmt.Errorf(`"jacobi.cache_kb" must list at least one L1 size in kB`)
	}
	for _, kb := range c.CacheKB {
		if kb <= 0 {
			return fmt.Errorf(`"jacobi.cache_kb": %d must be positive`, kb)
		}
	}
	for _, p := range c.Policies {
		if _, err := parsePolicy(p); err != nil {
			return fmt.Errorf(`"jacobi.policies": %w`, err)
		}
	}
	if c.Warmup < 0 || c.Measured < 0 {
		return fmt.Errorf(`"jacobi.warmup"/"jacobi.measured" must be >= 0`)
	}
	return nil
}

// seedList resolves the seed axis: explicit Seeds, or Replications seeds
// counting up from BaseSeed (default one seed, 1).
func (s *Scenario) seedList() []int64 {
	if len(s.Seeds) > 0 {
		return s.Seeds
	}
	base := s.BaseSeed
	if base == 0 {
		base = 1
	}
	n := s.Replications
	if n == 0 {
		n = 1
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// NumPoints returns the size of the sweep cross-product.
func (s *Scenario) NumPoints() int {
	if s.Workload == WorkloadJacobi {
		pols := len(s.Jacobi.Policies)
		if pols == 0 {
			pols = 1
		}
		return len(s.Jacobi.Cores) * len(s.Jacobi.CacheKB) * pols
	}
	return len(s.NoC.topologyList()) * len(s.NoC.routerList()) *
		len(s.NoC.Patterns) * len(s.NoC.Rates) * len(s.seedList())
}

// routerList resolves the router axis: the listed routers, or the paper's
// deflection router when none are named. The scenario must have passed
// Validate, so ParseRouter cannot fail here.
func (c *NoCConfig) routerList() []noc.RouterKind {
	if len(c.Routers) == 0 {
		return []noc.RouterKind{noc.RouterDeflection}
	}
	kinds := make([]noc.RouterKind, len(c.Routers))
	for i, name := range c.Routers {
		k, err := noc.ParseRouter(name)
		if err != nil {
			panic(fmt.Sprintf("scenario: validated router failed to parse: %v", err))
		}
		kinds[i] = k
	}
	return kinds
}

// topologyList resolves the topology axis: the listed fabrics, or the
// paper's folded torus when none are named. The scenario must have passed
// Validate, so ParseTopology cannot fail here.
func (c *NoCConfig) topologyList() []noc.TopologyKind {
	if len(c.Topologies) == 0 {
		return []noc.TopologyKind{noc.TopoTorus}
	}
	kinds := make([]noc.TopologyKind, len(c.Topologies))
	for i, name := range c.Topologies {
		k, err := noc.ParseTopology(name)
		if err != nil {
			panic(fmt.Sprintf("scenario: validated topology failed to parse: %v", err))
		}
		kinds[i] = k
	}
	return kinds
}

func parseVariant(s string) (jacobi.Variant, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "hybrid-full":
		return jacobi.HybridFull, nil
	case "hybrid-sync":
		return jacobi.HybridSync, nil
	case "pure-sm":
		return jacobi.PureSM, nil
	}
	return 0, fmt.Errorf("unknown variant %q (have: hybrid-full, hybrid-sync, pure-sm)", s)
}

func parsePolicy(s string) (cache.Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "wb", "write-back", "writeback":
		return cache.WriteBack, nil
	case "wt", "write-through", "writethrough":
		return cache.WriteThrough, nil
	}
	return 0, fmt.Errorf("unknown cache policy %q (have: write-back/wb, write-through/wt)", s)
}
