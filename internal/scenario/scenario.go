// Package scenario provides a declarative JSON experiment format and a
// parallel batch runner for the MEDEA simulator, built around four
// pluggable sweep axes:
//
//   - workload — what each point simulates (WorkloadKind): the jacobi,
//     matmul and syncbench compute kernels on the full MEDEA system, or
//     synthetic traffic on the bare network (noc-synthetic);
//   - variant — the paper's core comparison for kernel workloads:
//     message passing (hybrid-full), shared-memory data with message
//     synchronization (hybrid-sync), or pure shared memory (pure-sm);
//   - topology and router — the network fabrics and switching algorithms
//     for the noc-synthetic workload (noc.TopologyKind, noc.RouterKind),
//     alongside the 9-entry traffic-pattern axis.
//
// A scenario file names its workloads and sweep axes (variants, cores,
// cache sizes and write policies for kernels; topologies, routers,
// patterns, rates and seeds for the bare network) plus the measurement
// windows; Run executes the cross-product of the axes on a worker pool
// and returns one Result per point, renderable as a table, CSV or JSON
// through each workload's registered schema.
//
// Every axis is resolved by name through the same registry idiom
// (ParseWorkload here; noc.ParsePattern, noc.ParseRouter and
// noc.ParseTopology for the network axes), so the format exists without
// new Go code: any configuration the cmd/ binaries can reach by flags —
// and sweeps over cross-products of them that the binaries cannot
// express — is one JSON file away. Kernel points execute through
// dse.KernelSweep and noc points through noc.Measure, the paths shared
// with the hand-coded experiments, which is what makes the golden tests
// (fig8-quick, router-ablation, topology-ablation, kernel-ablation)
// byte- and point-exact. See examples/scenarios/ for ready-to-run files,
// REPRODUCING.md for the figure/table map, and cmd/medea-scenarios for
// the CLI driver.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cache"
	"repro/internal/dse"
	"repro/internal/jacobi"
	"repro/internal/noc"
	"repro/internal/resultcache"
	"repro/internal/trace"
)

// Output format names for Scenario.Output and the CLI -format flag.
const (
	FormatTable = "table"
	FormatCSV   = "csv"
	FormatJSON  = "json"
)

// Scenario is the top-level declarative experiment description.
type Scenario struct {
	// Name identifies the scenario in result rows; Load defaults it to
	// the file's base name.
	Name string `json:"name,omitempty"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Workload selects what each point simulates (see WorkloadNames):
	// "jacobi", "matmul", "syncbench" or "noc-synthetic". Mutually
	// exclusive with Workloads.
	Workload string `json:"workload,omitempty"`
	// Workloads sweeps the workload axis itself: a list of kernel
	// workloads (jacobi, matmul, syncbench) that all run the same kernel
	// sweep, one block per workload. The bare-network noc-synthetic
	// workload has disjoint axes and cannot be mixed in.
	Workloads []string `json:"workloads,omitempty"`

	// NoC configures the noc-synthetic workload (required for it).
	NoC *NoCConfig `json:"noc,omitempty"`
	// Trace configures the trace workload (required for it): the recorded
	// trace file to replay and the replay sweep axes.
	Trace *TraceConfig `json:"trace,omitempty"`
	// Service configures the service workload (required for it).
	Service *ServiceConfig `json:"service,omitempty"`
	// Kernel configures the kernel workloads (required for them).
	Kernel *KernelConfig `json:"kernel,omitempty"`
	// Jacobi is the pre-workload-axis alias for Kernel, kept so existing
	// jacobi scenarios load unchanged; it requires jacobi among the
	// workloads. Set one of Kernel or Jacobi, not both.
	Jacobi *KernelConfig `json:"jacobi,omitempty"`

	// Seeds lists explicit RNG seeds; each seed is one replication of
	// every (pattern, rate) point. Mutually exclusive with Replications.
	Seeds []int64 `json:"seeds,omitempty"`
	// Replications runs seeds BaseSeed, BaseSeed+1, ... instead of an
	// explicit list. Defaults to 1.
	Replications int `json:"replications,omitempty"`
	// BaseSeed is the first seed when Replications is used. Defaults to 1.
	BaseSeed int64 `json:"base_seed,omitempty"`

	// Parallelism bounds concurrent simulations; 0 means GOMAXPROCS.
	Parallelism int `json:"parallelism,omitempty"`
	// Output is the default rendering: "table" (default), "csv" or "json".
	Output string `json:"output,omitempty"`

	// Shard, when present, asks the driver to partition the sweep across
	// worker processes (see internal/shard). It carries counts only — how
	// the workers are launched is the driver's business (and deliberately
	// not part of the format: a scenario file must never name a command to
	// exec). Merged results are byte-identical to a single-process run.
	Shard *ShardConfig `json:"shard,omitempty"`

	// Cache, when non-nil, content-addresses every point's simulation
	// result (see resultcache): repeated points are served from the store
	// and concurrent duplicates collapse to one run. It is runtime state,
	// not part of the declarative format — callers (cmd/medea-scenarios,
	// internal/serve) attach it after Load. nil means cache off; rendered
	// output is byte-identical either way.
	Cache *resultcache.Cache `json:"-"`

	// Record, when non-nil, receives every flit-level injection of the
	// run (trace capture; see RecordCtx, which is how callers should
	// record). Runtime state like Cache. Recording bypasses the result
	// cache: a cache hit skips the simulation and would record nothing.
	Record noc.InjectionRecorder `json:"-"`
}

// NoCConfig describes a synthetic-traffic experiment on the bare network.
type NoCConfig struct {
	// Width and Height size the endpoint grid (both >= 2; the torus and
	// mesh put one switch under every endpoint, the cmesh needs both even
	// and >= 4 and folds each 2x2 endpoint tile onto one switch).
	Width  int `json:"width"`
	Height int `json:"height"`
	// Topologies lists fabrics by name (see noc.TopologyNames); one sweep
	// axis. Empty means the paper's folded torus only. Every listed
	// pattern must be valid on every listed topology (validation is
	// per-topology: bit patterns need a power-of-two endpoint count,
	// transpose a square endpoint grid).
	Topologies []string `json:"topologies,omitempty"`
	// Patterns lists traffic patterns by name (see noc.PatternNames);
	// one sweep axis.
	Patterns []string `json:"patterns"`
	// Routers lists router algorithms by name (see noc.RouterNames); one
	// sweep axis. Empty means the paper's deflection router only.
	Routers []string `json:"routers,omitempty"`
	// Rates lists offered loads in flits/node/cycle, each in (0, 1];
	// one sweep axis.
	Rates []float64 `json:"rates"`
	// HotspotNode is the destination for the hotspot pattern.
	HotspotNode int `json:"hotspot_node,omitempty"`
	// QueueCap bounds each source queue (default 16).
	QueueCap int `json:"queue_cap,omitempty"`
	// Burst, when present, gates every source through a two-state on/off
	// modulator with the given mean burst/gap lengths in cycles.
	Burst *BurstConfig `json:"burst,omitempty"`
	// WarmupCycles run before measurement starts (default 0).
	WarmupCycles int64 `json:"warmup_cycles,omitempty"`
	// MeasureCycles is the measurement window (default 5000). Mutually
	// exclusive with MeasureWindows.
	MeasureCycles int64 `json:"measure_cycles,omitempty"`
	// MeasureWindows sweeps the measurement-window length itself: every
	// point runs once per listed window, and all windows of one
	// (topology, router, pattern, rate, seed) point share a single warmup
	// prefix via an engine snapshot instead of re-simulating it (see
	// noc.MeasureWindowsCtx; disable with SetWindowFork or the CLI's
	// -no-fork). Results are byte-identical to independent runs either
	// way. Mutually exclusive with MeasureCycles.
	MeasureWindows []int64 `json:"measure_windows,omitempty"`
}

// BurstConfig mirrors noc.BurstConfig in the JSON schema.
type BurstConfig struct {
	MeanOn  float64 `json:"mean_on"`
	MeanOff float64 `json:"mean_off"`
}

// TraceConfig describes a trace-replay experiment: a recorded trace file
// (see internal/trace) pushed through the replay sweep axes. The trace
// itself fixes everything else — the endpoint grid, the event schedule
// and the measurement horizon — so the replay axes are topology and
// router only; patterns, rates, seeds and measurement windows have no
// meaning here and validation rejects them.
type TraceConfig struct {
	// File is the trace to replay. Load resolves a relative path against
	// the scenario file's directory (Parse, with no file, leaves it
	// relative to the process working directory).
	File string `json:"file"`
	// Topologies lists replay fabrics by name (see noc.TopologyNames);
	// one sweep axis. Empty means the fabric the trace was recorded on.
	Topologies []string `json:"topologies,omitempty"`
	// Routers lists replay routers by name (see noc.RouterNames); one
	// sweep axis. Empty means the router the trace was recorded under.
	Routers []string `json:"routers,omitempty"`

	// tr memoizes the decoded trace (validate loads it; runs reuse it).
	tr *trace.Trace
}

// load returns the decoded trace, reading File on first use.
func (c *TraceConfig) load() (*trace.Trace, error) {
	if c.tr == nil {
		t, err := trace.Load(c.File)
		if err != nil {
			return nil, err
		}
		c.tr = t
	}
	return c.tr, nil
}

func (c *TraceConfig) validate() error {
	if c.File == "" {
		return fmt.Errorf(`"trace.file" must name a recorded trace (record one with medea-scenarios -record or medea-noc -record)`)
	}
	t, err := c.load()
	if err != nil {
		return fmt.Errorf(`"trace.file": %w`, err)
	}
	seenT := map[noc.TopologyKind]bool{}
	for _, name := range c.Topologies {
		k, err := noc.ParseTopology(name)
		if err != nil {
			return fmt.Errorf(`"trace.topologies": %w`, err)
		}
		if seenT[k] {
			return fmt.Errorf(`"trace.topologies": %v listed twice`, k)
		}
		seenT[k] = true
		if _, err := noc.NewTopologyOfKind(k, t.Header.Width, t.Header.Height); err != nil {
			return fmt.Errorf(`"trace.topologies": the trace's %dx%d grid: %w`, t.Header.Width, t.Header.Height, err)
		}
	}
	seenR := map[noc.RouterKind]bool{}
	for _, name := range c.Routers {
		k, err := noc.ParseRouter(name)
		if err != nil {
			return fmt.Errorf(`"trace.routers": %w`, err)
		}
		if seenR[k] {
			return fmt.Errorf(`"trace.routers": %v listed twice`, k)
		}
		seenR[k] = true
	}
	// The default axes come from the recorded provenance; they must
	// resolve too (a trace hand-built with an exotic header fails here,
	// not mid-run).
	if len(c.Topologies) == 0 {
		k, err := noc.ParseTopology(t.Header.Topology)
		if err != nil {
			return fmt.Errorf(`"trace.file": recorded topology: %w`, err)
		}
		if _, err := noc.NewTopologyOfKind(k, t.Header.Width, t.Header.Height); err != nil {
			return fmt.Errorf(`"trace.file": recorded fabric: %w`, err)
		}
	}
	if len(c.Routers) == 0 {
		if _, err := noc.ParseRouter(t.Header.Router); err != nil {
			return fmt.Errorf(`"trace.file": recorded router: %w`, err)
		}
	}
	return nil
}

// topologyList resolves the replay-topology axis (default: the recorded
// fabric). The scenario must have passed Validate.
func (c *TraceConfig) topologyList(t *trace.Trace) []noc.TopologyKind {
	names := c.Topologies
	if len(names) == 0 {
		names = []string{t.Header.Topology}
	}
	kinds := make([]noc.TopologyKind, len(names))
	for i, name := range names {
		k, err := noc.ParseTopology(name)
		if err != nil {
			panic(fmt.Sprintf("scenario: validated replay topology failed to parse: %v", err))
		}
		kinds[i] = k
	}
	return kinds
}

// routerList resolves the replay-router axis (default: the recorded
// router). The scenario must have passed Validate.
func (c *TraceConfig) routerList(t *trace.Trace) []noc.RouterKind {
	names := c.Routers
	if len(names) == 0 {
		names = []string{t.Header.Router}
	}
	kinds := make([]noc.RouterKind, len(names))
	for i, name := range names {
		k, err := noc.ParseRouter(name)
		if err != nil {
			panic(fmt.Sprintf("scenario: validated replay router failed to parse: %v", err))
		}
		kinds[i] = k
	}
	return kinds
}

// ServiceConfig describes a request/response service experiment on the
// bare network: the last Servers endpoints answer requests issued
// open-loop by every other endpoint.
type ServiceConfig struct {
	// Width and Height size the endpoint grid (as NoCConfig).
	Width  int `json:"width"`
	Height int `json:"height"`
	// Topologies lists fabrics by name; one sweep axis (default torus).
	Topologies []string `json:"topologies,omitempty"`
	// Routers lists router algorithms by name; one sweep axis (default
	// deflection).
	Routers []string `json:"routers,omitempty"`
	// Servers is how many endpoints (the highest-numbered ones) serve
	// requests; must leave at least one client.
	Servers int `json:"servers"`
	// ArrivalRates lists per-client request probabilities per cycle, each
	// in (0, 1]; one sweep axis.
	ArrivalRates []float64 `json:"arrival_rates"`
	// ThinkTime is the server-side service time per request in cycles
	// (0 and 1 are equivalent; see noc.ServiceMeasureConfig).
	ThinkTime int64 `json:"think_time,omitempty"`
	// ResponseFlits is the response size in flits (default 1).
	ResponseFlits int `json:"response_flits,omitempty"`
	// HotspotSkew is the probability a request targets the first server
	// instead of a uniformly random one (0 = uniform).
	HotspotSkew float64 `json:"hotspot_skew,omitempty"`
	// QueueCap bounds each client's source queue (default 16).
	QueueCap int `json:"queue_cap,omitempty"`
	// Burst, when present, gates client arrivals through the two-state
	// modulator.
	Burst *BurstConfig `json:"burst,omitempty"`
	// WarmupCycles run before measurement starts (default 0).
	WarmupCycles int64 `json:"warmup_cycles,omitempty"`
	// MeasureCycles is the measurement window (default 5000).
	MeasureCycles int64 `json:"measure_cycles,omitempty"`
}

func (c *ServiceConfig) validate() error {
	seenT := map[noc.TopologyKind]bool{}
	topos := make([]noc.Topology, 0, len(c.Topologies)+1)
	for _, name := range c.Topologies {
		k, err := noc.ParseTopology(name)
		if err != nil {
			return fmt.Errorf(`"service.topologies": %w`, err)
		}
		if seenT[k] {
			return fmt.Errorf(`"service.topologies": %v listed twice`, k)
		}
		seenT[k] = true
		topo, err := noc.NewTopologyOfKind(k, c.Width, c.Height)
		if err != nil {
			return fmt.Errorf(`"service": %w`, err)
		}
		topos = append(topos, topo)
	}
	if len(topos) == 0 {
		topo, err := noc.NewTopology(c.Width, c.Height)
		if err != nil {
			return fmt.Errorf(`"service": %w`, err)
		}
		topos = append(topos, topo)
	}
	seenR := map[noc.RouterKind]bool{}
	for _, name := range c.Routers {
		k, err := noc.ParseRouter(name)
		if err != nil {
			return fmt.Errorf(`"service.routers": %w`, err)
		}
		if seenR[k] {
			return fmt.Errorf(`"service.routers": %v listed twice`, k)
		}
		seenR[k] = true
	}
	if c.Servers < 1 {
		return fmt.Errorf(`"service.servers" must be >= 1, got %d`, c.Servers)
	}
	endpoints := topos[0].NumEndpoints()
	if c.Servers >= endpoints {
		return fmt.Errorf(`"service.servers": %d servers on the %dx%d grid's %d endpoints must leave at least one client; use at most %d servers`,
			c.Servers, c.Width, c.Height, endpoints, endpoints-1)
	}
	if len(c.ArrivalRates) == 0 {
		return fmt.Errorf(`"service.arrival_rates" must list at least one per-client rate in (0, 1]`)
	}
	for _, r := range c.ArrivalRates {
		if r <= 0 || r > 1 {
			return fmt.Errorf(`"service.arrival_rates": rate %g outside (0, 1]`, r)
		}
	}
	if c.ThinkTime < 0 {
		return fmt.Errorf(`"service.think_time" must be >= 0, got %d`, c.ThinkTime)
	}
	if c.ResponseFlits < 0 {
		return fmt.Errorf(`"service.response_flits" must be >= 0, got %d`, c.ResponseFlits)
	}
	if c.HotspotSkew < 0 || c.HotspotSkew > 1 {
		return fmt.Errorf(`"service.hotspot_skew" must be in [0, 1], got %g`, c.HotspotSkew)
	}
	if c.QueueCap < 0 {
		return fmt.Errorf(`"service.queue_cap" must be >= 0, got %d`, c.QueueCap)
	}
	if c.Burst != nil {
		if err := (noc.BurstConfig{MeanOn: c.Burst.MeanOn, MeanOff: c.Burst.MeanOff}).Validate(); err != nil {
			return fmt.Errorf(`"service.burst": %w`, err)
		}
	}
	if c.WarmupCycles < 0 {
		return fmt.Errorf(`"service.warmup_cycles" must be >= 0, got %d`, c.WarmupCycles)
	}
	if c.MeasureCycles < 0 {
		return fmt.Errorf(`"service.measure_cycles" must be >= 0, got %d`, c.MeasureCycles)
	}
	return nil
}

// topologyList and routerList mirror NoCConfig's axis resolution.
func (c *ServiceConfig) topologyList() []noc.TopologyKind {
	if len(c.Topologies) == 0 {
		return []noc.TopologyKind{noc.TopoTorus}
	}
	kinds := make([]noc.TopologyKind, len(c.Topologies))
	for i, name := range c.Topologies {
		k, err := noc.ParseTopology(name)
		if err != nil {
			panic(fmt.Sprintf("scenario: validated topology failed to parse: %v", err))
		}
		kinds[i] = k
	}
	return kinds
}

func (c *ServiceConfig) routerList() []noc.RouterKind {
	if len(c.Routers) == 0 {
		return []noc.RouterKind{noc.RouterDeflection}
	}
	kinds := make([]noc.RouterKind, len(c.Routers))
	for i, name := range c.Routers {
		k, err := noc.ParseRouter(name)
		if err != nil {
			panic(fmt.Sprintf("scenario: validated router failed to parse: %v", err))
		}
		kinds[i] = k
	}
	return kinds
}

// KernelConfig describes a design-space sweep of the kernel workloads
// (jacobi, matmul, syncbench) on the full MEDEA system. The axes are
// shared: one section drives every kernel listed in "workloads".
type KernelConfig struct {
	// N is the problem size: the grid edge for jacobi (the paper uses 16,
	// 30 and 60), the matrix edge for matmul (2..64). A syncbench-only
	// scenario has no problem size.
	N int `json:"n"`
	// Variant selects one programming model: "hybrid-full" (default),
	// "hybrid-sync" or "pure-sm". Mutually exclusive with Variants.
	Variant string `json:"variant,omitempty"`
	// Variants sweeps the programming-model axis (the paper's core
	// message-passing vs shared-memory comparison). Syncbench measures
	// the barrier itself, so it supports hybrid-full (message barrier)
	// and pure-sm (lock barrier) but not hybrid-sync.
	Variants []string `json:"variants,omitempty"`
	// Cores lists compute-core counts; one sweep axis.
	Cores []int `json:"cores"`
	// CacheKB lists L1 sizes in kB; one sweep axis.
	CacheKB []int `json:"cache_kb"`
	// Policies lists write policies ("write-back"/"wb",
	// "write-through"/"wt"); one sweep axis. Defaults to write-back.
	Policies []string `json:"policies,omitempty"`
	// Rounds is the number of synchronization episodes syncbench averages
	// over (default 20); only meaningful when syncbench is swept.
	Rounds int `json:"rounds,omitempty"`
	// Warmup and Measured are Jacobi iteration counts (default 1 each);
	// only meaningful when jacobi is swept.
	Warmup   int `json:"warmup,omitempty"`
	Measured int `json:"measured,omitempty"`
}

// Load reads, parses and validates a scenario file. An empty Name is
// defaulted from the file's base name, and a relative trace path is
// resolved against the file's directory — before validation, which loads
// the trace. The resolved path also makes the scenario portable through
// the shard transport (workers may run in a different directory).
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := decode(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	if s.Trace != nil && s.Trace.File != "" && !filepath.IsAbs(s.Trace.File) {
		s.Trace.File = filepath.Join(filepath.Dir(path), s.Trace.File)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// Parse decodes and validates a scenario from JSON bytes. Unknown fields
// are rejected so typos fail loudly instead of silently running defaults.
// A relative trace path resolves against the process working directory;
// use Load to resolve it against the scenario file instead.
func Parse(data []byte) (*Scenario, error) {
	s, err := decode(data)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// decode parses the JSON without validating, so Load can resolve paths
// first.
func decode(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("parsing: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("parsing: trailing data after the scenario object")
	}
	return &s, nil
}

// workloadKinds resolves the workload axis: the single Workload, or the
// Workloads list (kernel workloads only, no duplicates).
func (s *Scenario) workloadKinds() ([]WorkloadKind, error) {
	if s.Workload != "" && len(s.Workloads) > 0 {
		return nil, fmt.Errorf(`set either "workload" or "workloads", not both`)
	}
	if s.Workload != "" {
		k, err := ParseWorkload(s.Workload)
		if err != nil {
			return nil, err
		}
		return []WorkloadKind{k}, nil
	}
	if len(s.Workloads) == 0 {
		return nil, fmt.Errorf(`missing "workload": set one of %s (or a "workloads" list of kernel workloads)`,
			strings.Join(WorkloadNames(), ", "))
	}
	seen := map[WorkloadKind]bool{}
	kinds := make([]WorkloadKind, 0, len(s.Workloads))
	for _, name := range s.Workloads {
		k, err := ParseWorkload(name)
		if err != nil {
			return nil, fmt.Errorf(`"workloads": %w`, err)
		}
		if !k.IsKernel() {
			return nil, fmt.Errorf(`"workloads" sweeps the kernel workloads (%s); run %v through "workload"`,
				strings.Join(kernelWorkloadNames(), ", "), k)
		}
		if seen[k] {
			return nil, fmt.Errorf(`"workloads": %v listed twice`, k)
		}
		seen[k] = true
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// kernelWorkloadNames lists the kernel subset of WorkloadNames.
func kernelWorkloadNames() []string {
	var names []string
	for _, k := range AllWorkloads() {
		if k.IsKernel() {
			names = append(names, k.String())
		}
	}
	return names
}

// kernelConfig returns the scenario's kernel section (the canonical
// Kernel field or its Jacobi alias); nil when neither is set. Validate
// rejects setting both.
func (s *Scenario) kernelConfig() *KernelConfig {
	if s.Kernel != nil {
		return s.Kernel
	}
	return s.Jacobi
}

// Validate checks the scenario for consistency and fills no defaults (the
// runner applies defaults at execution time, so a validated scenario
// round-trips through JSON unchanged).
func (s *Scenario) Validate() error {
	kinds, err := s.workloadKinds()
	if err != nil {
		return err
	}
	switch s.Output {
	case "", FormatTable, FormatCSV, FormatJSON:
	default:
		return fmt.Errorf("unknown output format %q (have: %s, %s, %s)",
			s.Output, FormatTable, FormatCSV, FormatJSON)
	}
	if len(s.Seeds) > 0 && s.Replications > 0 {
		return fmt.Errorf(`set either "seeds" or "replications", not both`)
	}
	if s.Replications < 0 {
		return fmt.Errorf("replications must be >= 0, got %d", s.Replications)
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("parallelism must be >= 0, got %d", s.Parallelism)
	}
	if s.Shard != nil {
		if err := s.Shard.validate(); err != nil {
			return err
		}
	}

	switch kinds[0] {
	case WorkloadNoC:
		if s.kernelConfig() != nil {
			return fmt.Errorf(`the "kernel"/"jacobi" section has no effect on workload %v; remove it`, WorkloadNoC)
		}
		if err := s.rejectSections(WorkloadNoC, s.Trace != nil, s.Service != nil); err != nil {
			return err
		}
		if s.NoC == nil {
			return fmt.Errorf(`workload %v needs a "noc" section`, WorkloadNoC)
		}
		return s.NoC.validate()

	case WorkloadTrace:
		// The trace fixes the traffic and the horizon, so none of the
		// noc-synthetic axes can apply; naming the common offenders keeps
		// the error actionable.
		if s.NoC != nil {
			if len(s.NoC.MeasureWindows) > 0 {
				return fmt.Errorf(`"noc.measure_windows" cannot apply to the trace workload: a replay's horizon is fixed by the recording; remove the "noc" section`)
			}
			if len(s.NoC.Patterns) > 0 || len(s.NoC.Rates) > 0 {
				return fmt.Errorf(`the trace workload replays recorded traffic: the "noc" patterns/rates axes cannot apply; remove the "noc" section (replay axes live under "trace")`)
			}
			return fmt.Errorf(`the "noc" section has no effect on the trace workload; remove it (replay axes live under "trace")`)
		}
		if s.kernelConfig() != nil {
			return fmt.Errorf(`the "kernel"/"jacobi" section has no effect on the trace workload; remove it`)
		}
		if s.Service != nil {
			return fmt.Errorf(`the "service" section has no effect on the trace workload; remove it`)
		}
		if len(s.Seeds) > 0 || s.Replications > 1 || s.BaseSeed != 0 {
			return fmt.Errorf(`a trace replay is fully deterministic (the recording fixed the traffic): seeds/replications/base_seed have no effect; remove them`)
		}
		if s.Trace == nil {
			return fmt.Errorf(`workload %v needs a "trace" section`, WorkloadTrace)
		}
		return s.Trace.validate()

	case WorkloadService:
		if err := s.rejectSections(WorkloadService, s.Trace != nil, false); err != nil {
			return err
		}
		if s.NoC != nil {
			return fmt.Errorf(`the "noc" section has no effect on workload %v; remove it (the sweep axes live under "service")`, WorkloadService)
		}
		if s.kernelConfig() != nil {
			return fmt.Errorf(`the "kernel"/"jacobi" section has no effect on workload %v; remove it`, WorkloadService)
		}
		if s.Service == nil {
			return fmt.Errorf(`workload %v needs a "service" section`, WorkloadService)
		}
		return s.Service.validate()
	}

	// Kernel workloads.
	if s.NoC != nil {
		return fmt.Errorf(`the "noc" section has no effect on kernel workloads; remove it`)
	}
	if s.Trace != nil {
		return fmt.Errorf(`the "trace" section has no effect on kernel workloads; remove it`)
	}
	if s.Service != nil {
		return fmt.Errorf(`the "service" section has no effect on kernel workloads; remove it`)
	}
	if s.Kernel != nil && s.Jacobi != nil {
		return fmt.Errorf(`set either "kernel" or its "jacobi" alias, not both`)
	}
	if s.Jacobi != nil && !hasKind(kinds, WorkloadJacobi) {
		return fmt.Errorf(`the "jacobi" section is the kernel section's legacy alias; sweeps without the jacobi workload use "kernel"`)
	}
	cfg := s.kernelConfig()
	if cfg == nil {
		if kinds[0] == WorkloadJacobi && len(kinds) == 1 {
			return fmt.Errorf(`workload %v needs a "jacobi" section (canonical name: "kernel")`, WorkloadJacobi)
		}
		return fmt.Errorf(`every kernel workload needs a "kernel" section`)
	}
	if len(s.Seeds) > 0 || s.Replications > 1 || s.BaseSeed != 0 {
		return fmt.Errorf("kernel workloads are fully deterministic: seeds/replications/base_seed have no effect; remove them")
	}
	return cfg.validate(kinds)
}

// rejectSections rejects the trace/service sections for a workload they
// cannot configure.
func (s *Scenario) rejectSections(k WorkloadKind, hasTrace, hasService bool) error {
	if hasTrace {
		return fmt.Errorf(`the "trace" section has no effect on workload %v; remove it`, k)
	}
	if hasService {
		return fmt.Errorf(`the "service" section has no effect on workload %v; remove it`, k)
	}
	return nil
}

func hasKind(kinds []WorkloadKind, k WorkloadKind) bool {
	for _, kk := range kinds {
		if kk == k {
			return true
		}
	}
	return false
}

func (c *NoCConfig) validate() error {
	// Resolve the topology axis first: every listed fabric must build at
	// this size, and every pattern must be valid on every fabric.
	seenT := map[noc.TopologyKind]bool{}
	topos := make([]noc.Topology, 0, len(c.Topologies)+1)
	for _, name := range c.Topologies {
		k, err := noc.ParseTopology(name)
		if err != nil {
			return fmt.Errorf(`"noc.topologies": %w`, err)
		}
		if seenT[k] {
			return fmt.Errorf(`"noc.topologies": %v listed twice`, k)
		}
		seenT[k] = true
		topo, err := noc.NewTopologyOfKind(k, c.Width, c.Height)
		if err != nil {
			return fmt.Errorf(`"noc": %w`, err)
		}
		topos = append(topos, topo)
	}
	if len(topos) == 0 {
		topo, err := noc.NewTopology(c.Width, c.Height)
		if err != nil {
			return fmt.Errorf(`"noc": %w`, err)
		}
		topos = append(topos, topo)
	}
	if len(c.Patterns) == 0 {
		return fmt.Errorf(`"noc.patterns" must list at least one of: %s`,
			strings.Join(noc.PatternNames(), ", "))
	}
	seen := map[noc.Pattern]bool{}
	for _, name := range c.Patterns {
		p, err := noc.ParsePattern(name)
		if err != nil {
			return fmt.Errorf(`"noc.patterns": %w`, err)
		}
		for _, topo := range topos {
			if err := noc.ValidatePattern(p, topo); err != nil {
				return fmt.Errorf(`"noc.patterns": %w`, err)
			}
		}
		if seen[p] {
			return fmt.Errorf(`"noc.patterns": %v listed twice`, p)
		}
		seen[p] = true
	}
	seenR := map[noc.RouterKind]bool{}
	for _, name := range c.Routers {
		k, err := noc.ParseRouter(name)
		if err != nil {
			return fmt.Errorf(`"noc.routers": %w`, err)
		}
		if seenR[k] {
			return fmt.Errorf(`"noc.routers": %v listed twice`, k)
		}
		seenR[k] = true
	}
	if len(c.Rates) == 0 {
		return fmt.Errorf(`"noc.rates" must list at least one offered load in (0, 1]`)
	}
	for _, r := range c.Rates {
		if r <= 0 || r > 1 {
			return fmt.Errorf(`"noc.rates": offered load %g outside (0, 1]`, r)
		}
	}
	if c.HotspotNode < 0 || c.HotspotNode >= topos[0].NumEndpoints() {
		return fmt.Errorf(`"noc.hotspot_node" %d outside the %dx%d endpoint grid (0..%d)`,
			c.HotspotNode, c.Width, c.Height, topos[0].NumEndpoints()-1)
	}
	if c.QueueCap < 0 {
		return fmt.Errorf(`"noc.queue_cap" must be >= 0, got %d`, c.QueueCap)
	}
	if c.Burst != nil {
		if err := (noc.BurstConfig{MeanOn: c.Burst.MeanOn, MeanOff: c.Burst.MeanOff}).Validate(); err != nil {
			return fmt.Errorf(`"noc.burst": %w`, err)
		}
	}
	if c.WarmupCycles < 0 {
		return fmt.Errorf(`"noc.warmup_cycles" must be >= 0, got %d`, c.WarmupCycles)
	}
	if c.MeasureCycles < 0 {
		return fmt.Errorf(`"noc.measure_cycles" must be >= 0, got %d`, c.MeasureCycles)
	}
	if len(c.MeasureWindows) > 0 {
		if c.MeasureCycles != 0 {
			return fmt.Errorf(`set either "noc.measure_cycles" or "noc.measure_windows", not both`)
		}
		for _, w := range c.MeasureWindows {
			if w <= 0 {
				return fmt.Errorf(`"noc.measure_windows": window %d must be positive`, w)
			}
		}
	}
	return nil
}

func (c *KernelConfig) validate(kinds []WorkloadKind) error {
	hasJacobi := hasKind(kinds, WorkloadJacobi)
	hasMatmul := hasKind(kinds, WorkloadMatmul)
	hasSync := hasKind(kinds, WorkloadSyncbench)

	if hasJacobi && c.N < 3 {
		return fmt.Errorf(`"kernel.n" must be >= 3 for jacobi (the paper uses 16, 30 and 60), got %d`, c.N)
	}
	if hasMatmul && (c.N < 2 || c.N > 64) {
		return fmt.Errorf(`"kernel.n" must be in 2..64 for matmul, got %d`, c.N)
	}
	if !hasJacobi && !hasMatmul && c.N != 0 {
		return fmt.Errorf(`"kernel.n" has no effect on the syncbench workload; remove it`)
	}
	variants, err := c.variantList()
	if err != nil {
		return err
	}
	if hasSync {
		for _, v := range variants {
			if v == jacobi.HybridSync {
				return fmt.Errorf(`"kernel.variants": the syncbench workload has no %v variant (it measures the barrier itself; use %v or %v)`,
					jacobi.HybridSync, jacobi.HybridFull, jacobi.PureSM)
			}
		}
	}
	if len(c.Cores) == 0 {
		return fmt.Errorf(`"kernel.cores" must list at least one compute-core count`)
	}
	for _, n := range c.Cores {
		if n < 2 || n > 15 {
			return fmt.Errorf(`"kernel.cores": %d outside the architecture's 2..15 range`, n)
		}
	}
	if len(c.CacheKB) == 0 {
		return fmt.Errorf(`"kernel.cache_kb" must list at least one L1 size in kB`)
	}
	for _, kb := range c.CacheKB {
		if kb <= 0 {
			return fmt.Errorf(`"kernel.cache_kb": %d must be positive`, kb)
		}
	}
	for _, p := range c.Policies {
		if _, err := parsePolicy(p); err != nil {
			return fmt.Errorf(`"kernel.policies": %w`, err)
		}
	}
	if c.Rounds < 0 {
		return fmt.Errorf(`"kernel.rounds" must be >= 0, got %d`, c.Rounds)
	}
	if c.Rounds > 0 && !hasSync {
		return fmt.Errorf(`"kernel.rounds" only affects the syncbench workload; remove it`)
	}
	if c.Warmup < 0 || c.Measured < 0 {
		return fmt.Errorf(`"kernel.warmup"/"kernel.measured" must be >= 0`)
	}
	if (c.Warmup > 0 || c.Measured > 0) && !hasJacobi {
		return fmt.Errorf(`"kernel.warmup"/"kernel.measured" only affect the jacobi workload; remove them`)
	}
	return nil
}

// variantList resolves the variant axis: the Variants list, or the single
// Variant (default hybrid-full).
func (c *KernelConfig) variantList() ([]jacobi.Variant, error) {
	if len(c.Variants) > 0 {
		if c.Variant != "" {
			return nil, fmt.Errorf(`set either "kernel.variant" or "kernel.variants", not both`)
		}
		seen := map[jacobi.Variant]bool{}
		out := make([]jacobi.Variant, 0, len(c.Variants))
		for _, name := range c.Variants {
			v, err := parseVariant(name)
			if err != nil {
				return nil, fmt.Errorf(`"kernel.variants": %w`, err)
			}
			if seen[v] {
				return nil, fmt.Errorf(`"kernel.variants": %v listed twice`, v)
			}
			seen[v] = true
			out = append(out, v)
		}
		return out, nil
	}
	v, err := parseVariant(c.Variant)
	if err != nil {
		return nil, fmt.Errorf(`"kernel.variant": %w`, err)
	}
	return []jacobi.Variant{v}, nil
}

// kernelSweepOptions maps the scenario's kernel section onto the shared
// dse.KernelSweep options for one kernel. The scenario must have passed
// Validate, so the axis parses cannot fail here.
func (s *Scenario) kernelSweepOptions(k dse.Kernel) (dse.KernelOptions, error) {
	c := s.kernelConfig()
	variants, err := c.variantList()
	if err != nil {
		return dse.KernelOptions{}, err
	}
	policies := make([]cache.Policy, 0, len(c.Policies))
	for _, ps := range c.Policies {
		p, err := parsePolicy(ps)
		if err != nil {
			return dse.KernelOptions{}, err
		}
		policies = append(policies, p)
	}
	return dse.KernelOptions{
		Kernel:      k,
		N:           c.N,
		Rounds:      c.Rounds,
		Cores:       c.Cores,
		CachesKB:    c.CacheKB,
		Policies:    policies,
		Variants:    variants,
		Warmup:      c.Warmup,
		Measured:    c.Measured,
		Parallelism: s.Parallelism,
		Cache:       s.Cache,
	}, nil
}

// seedList resolves the seed axis: explicit Seeds, or Replications seeds
// counting up from BaseSeed (default one seed, 1).
func (s *Scenario) seedList() []int64 {
	if len(s.Seeds) > 0 {
		return s.Seeds
	}
	base := s.BaseSeed
	if base == 0 {
		base = 1
	}
	n := s.Replications
	if n == 0 {
		n = 1
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// NumPoints returns the size of the sweep cross-product.
func (s *Scenario) NumPoints() int {
	kinds, err := s.workloadKinds()
	if err != nil {
		return 0
	}
	n := 0
	for _, k := range kinds {
		n += s.kindPoints(k)
	}
	return n
}

// kindPoints returns the number of sweep points one workload kind
// contributes, matching the canonical point order its Run produces.
func (s *Scenario) kindPoints(k WorkloadKind) int {
	switch k {
	case WorkloadNoC:
		n := len(s.NoC.topologyList()) * len(s.NoC.routerList()) *
			len(s.NoC.Patterns) * len(s.NoC.Rates) * len(s.seedList())
		if w := len(s.NoC.MeasureWindows); w > 0 {
			n *= w
		}
		return n
	case WorkloadTrace:
		t, err := s.Trace.load()
		if err != nil {
			return 0
		}
		return len(s.Trace.topologyList(t)) * len(s.Trace.routerList(t))
	case WorkloadService:
		return len(s.Service.topologyList()) * len(s.Service.routerList()) *
			len(s.Service.ArrivalRates) * len(s.seedList())
	}
	c := s.kernelConfig()
	pols := len(c.Policies)
	if pols == 0 {
		pols = 1
	}
	variants := len(c.Variants)
	if variants == 0 {
		variants = 1
	}
	return variants * pols * len(c.CacheKB) * len(c.Cores)
}

// routerList resolves the router axis: the listed routers, or the paper's
// deflection router when none are named. The scenario must have passed
// Validate, so ParseRouter cannot fail here.
func (c *NoCConfig) routerList() []noc.RouterKind {
	if len(c.Routers) == 0 {
		return []noc.RouterKind{noc.RouterDeflection}
	}
	kinds := make([]noc.RouterKind, len(c.Routers))
	for i, name := range c.Routers {
		k, err := noc.ParseRouter(name)
		if err != nil {
			panic(fmt.Sprintf("scenario: validated router failed to parse: %v", err))
		}
		kinds[i] = k
	}
	return kinds
}

// topologyList resolves the topology axis: the listed fabrics, or the
// paper's folded torus when none are named. The scenario must have passed
// Validate, so ParseTopology cannot fail here.
func (c *NoCConfig) topologyList() []noc.TopologyKind {
	if len(c.Topologies) == 0 {
		return []noc.TopologyKind{noc.TopoTorus}
	}
	kinds := make([]noc.TopologyKind, len(c.Topologies))
	for i, name := range c.Topologies {
		k, err := noc.ParseTopology(name)
		if err != nil {
			panic(fmt.Sprintf("scenario: validated topology failed to parse: %v", err))
		}
		kinds[i] = k
	}
	return kinds
}

// parseVariant resolves a programming-model variant, defaulting the empty
// string to the paper's headline hybrid-full model.
func parseVariant(s string) (jacobi.Variant, error) {
	if strings.TrimSpace(s) == "" {
		return jacobi.HybridFull, nil
	}
	return jacobi.ParseVariant(s)
}

func parsePolicy(s string) (cache.Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "wb", "write-back", "writeback":
		return cache.WriteBack, nil
	case "wt", "write-through", "writethrough":
		return cache.WriteThrough, nil
	}
	return 0, fmt.Errorf("unknown cache policy %q (have: write-back/wb, write-through/wt)", s)
}
