package scenario

// The differential battery of the result cache: for every shipped example
// scenario, running cache-off, memory-cached (cold and warm) and
// disk-cached (cold and warm) must render byte-identically in every
// output format, and the warm reruns must be pure hits. This is the
// ground truth the cache's existence rests on — a cache that changes even
// one byte of output is a correctness bug, not a performance feature.

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/resultcache"
)

// renderAll renders results in every format, keyed by format name.
func renderAll(t *testing.T, results []Result) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, format := range []string{FormatTable, FormatCSV, FormatJSON} {
		s, err := Render(results, format)
		if err != nil {
			t.Fatalf("render %s: %v", format, err)
		}
		out[format] = s
	}
	return out
}

// runScoped loads path fresh, attaches a scope of rc (nil = cache off),
// runs it, and returns the rendered outputs, the run ledger root and the
// scope's cache stats.
func runScoped(t *testing.T, path string, rc *resultcache.Cache) (map[string]string, string, resultcache.Stats) {
	t.Helper()
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	scope := rc.Scope()
	s.Cache = scope
	results, err := Run(s)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return renderAll(t, results), MerkleRoot(results), scope.Stats()
}

// TestCacheDifferentialGolden runs every example scenario through five
// cache modes and asserts byte-identical output in all three formats,
// identical Merkle ledger roots, and pure-hit warm reruns.
func TestCacheDifferentialGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every example scenario five times")
	}
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example scenarios found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			want, wantRoot, _ := runScoped(t, path, nil)

			mem := resultcache.New(resultcache.NewMemoryStore(0))
			disk, err := resultcache.Open(resultcache.BackendDisk, t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			modes := []struct {
				name string
				rc   *resultcache.Cache
				warm bool // second pass over an already-populated store
			}{
				{"mem-cold", mem, false},
				{"mem-warm", mem, true},
				{"disk-cold", disk, false},
				{"disk-warm", disk, true},
			}
			for _, m := range modes {
				got, root, st := runScoped(t, path, m.rc)
				for format, out := range got {
					if out != want[format] {
						t.Errorf("%s %s output differs from cache-off:\n--- %s ---\n%s--- off ---\n%s",
							m.name, format, m.name, out, want[format])
					}
				}
				if root != wantRoot {
					t.Errorf("%s merkle root %s, cache-off %s", m.name, root, wantRoot)
				}
				if m.warm {
					if st.Computes != 0 {
						t.Errorf("%s recomputed %d points; want pure hits (%v)", m.name, st.Computes, st)
					}
					if st.Hits == 0 {
						t.Errorf("%s had no hits (%v)", m.name, st)
					}
				} else if st.Hits != 0 {
					t.Errorf("%s hit a cold store (%v)", m.name, st)
				}
			}
		})
	}
}

// TestCacheWarmSpeedup pins the acceptance bar: a warm fig8-quick rerun
// must be at least 5x faster than the cache-off run (in practice it is
// thousands of times faster — the threshold is generous so the test
// never flakes on CI noise).
func TestCacheWarmSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full fig8-quick sweeps")
	}
	const path = "../../examples/scenarios/fig8-quick.json"

	start := time.Now()
	want, _, _ := runScoped(t, path, nil)
	coldDur := time.Since(start)

	mem := resultcache.New(resultcache.NewMemoryStore(0))
	runScoped(t, path, mem) // populate

	start = time.Now()
	got, _, st := runScoped(t, path, mem)
	warmDur := time.Since(start)

	if got[FormatCSV] != want[FormatCSV] {
		t.Fatal("warm-cache output differs from cache-off output")
	}
	if st.Computes != 0 {
		t.Fatalf("warm rerun recomputed %d points", st.Computes)
	}
	if warmDur*5 > coldDur {
		t.Errorf("warm rerun %v vs cache-off %v: less than 5x faster", warmDur, coldDur)
	}
	t.Logf("cache-off %v, warm %v (%.0fx), stats %v",
		coldDur.Round(time.Millisecond), warmDur, float64(coldDur)/float64(warmDur), st)
}
