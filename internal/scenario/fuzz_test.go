package scenario

import (
	"os"
	"testing"
)

// FuzzParse: the JSON scenario loader must return an error on malformed
// input — never panic — and anything it accepts must be internally
// consistent (validated, with a positive point count).
func FuzzParse(f *testing.F) {
	// Seed with every shipped example scenario plus targeted mutations of
	// the tricky corners (unknown fields, wrong-workload sections, axis
	// duplicates, trailing data, deep nesting).
	files, _ := os.ReadDir("../../examples/scenarios")
	for _, fe := range files {
		if data, err := os.ReadFile("../../examples/scenarios/" + fe.Name()); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"workload":"noc-synthetic"}`))
	f.Add([]byte(`{"workload":"noc-synthetic","noc":{"width":4,"height":4,"patterns":["uniform"],"routers":["wormhole"],"rates":[0.5]}}`))
	f.Add([]byte(`{"workload":"noc-synthetic","noc":{"width":4,"height":4,"patterns":["uniform","uniform"],"rates":[0.5]}}`))
	f.Add([]byte(`{"workload":"jacobi","jacobi":{"n":30,"cores":[2],"cache_kb":[8]}}`))
	f.Add([]byte(`{"workload":"jacobi","jacobi":{"n":30,"cores":[2],"cache_kb":[8]},"seeds":[1,2]}`))
	f.Add([]byte(`{"workloads":["jacobi","matmul","syncbench"],"kernel":{"n":16,"cores":[2,4],"cache_kb":[8],"variants":["hybrid-full","pure-sm"],"rounds":5}}`))
	f.Add([]byte(`{"workloads":["syncbench","noc-synthetic"],"kernel":{"cores":[2],"cache_kb":[8]}}`))
	f.Add([]byte(`{"workload":"jacobi","workloads":["matmul"],"kernel":{"n":16,"cores":[2],"cache_kb":[8]}}`))
	f.Add([]byte(`{"workload":"syncbench","kernel":{"cores":[2],"cache_kb":[8],"variants":["hybrid-sync"]}}`))
	f.Add([]byte(`{"workload":"matmul","kernel":{"n":16,"variant":"pure-sm","variants":["hybrid-full"],"cores":[2],"cache_kb":[8]}}`))
	f.Add([]byte(`{"workload":"noc-synthetic","noc":{"width":4,"height":4,"patterns":["uniform"],"rates":[2.5]}}`))
	f.Add([]byte(`{"workload":"noc-synthetic","nos":{}}`))
	f.Add([]byte(`{"workload":"noc-synthetic","noc":{"width":4,"height":4,"patterns":["uniform"],"rates":[0.5]}}{"trailing":1}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))
	f.Add([]byte("\xff\xfe{"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		// Whatever Parse accepts must be safe to interrogate.
		if s.NumPoints() <= 0 {
			t.Fatalf("accepted scenario has %d points:\n%s", s.NumPoints(), data)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted scenario fails re-validation: %v\n%s", err, data)
		}
	})
}
