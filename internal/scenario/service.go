package scenario

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/noc"
	"repro/internal/par"
	"repro/internal/resultcache"
)

// runServiceShard expands topologies x routers x arrival_rates x seeds
// and executes each request/response point on the shared worker pool,
// mirroring runNoCShard's structure (and its canonical point order for
// the shard protocol).
func runServiceShard(ctx context.Context, s *Scenario, points []int) ([]Result, error) {
	c := s.Service
	type job struct {
		idx    int
		topo   noc.Topology
		router noc.RouterKind
		rate   float64
		seed   int64
	}
	var jobs []job
	for _, tk := range c.topologyList() {
		topo, err := noc.NewTopologyOfKind(tk, c.Width, c.Height)
		if err != nil {
			return nil, err
		}
		for _, router := range c.routerList() {
			for _, rate := range c.ArrivalRates {
				for _, seed := range s.seedList() {
					jobs = append(jobs, job{idx: len(jobs), topo: topo, router: router, rate: rate, seed: seed})
				}
			}
		}
	}
	if points != nil {
		sel := make([]job, len(points))
		for i, p := range points {
			if p < 0 || p >= len(jobs) {
				return nil, fmt.Errorf("scenario: point filter index %d outside the %d-point service sweep", p, len(jobs))
			}
			sel[i] = jobs[p]
			sel[i].idx = i
		}
		jobs = sel
	}
	results := make([]Result, len(jobs))
	if err := par.ForEachCtx(ctx, len(jobs), s.Parallelism, func(i int) error {
		j := jobs[i]
		r, err := runServicePoint(ctx, s.Cache, j.topo, c, j.router, j.rate, j.seed)
		if err != nil {
			return err
		}
		r.Scenario = s.Name
		results[j.idx] = r
		return nil
	}); err != nil {
		return nil, err
	}
	return results, nil
}

// servicePointValue is the cached measurement of one service point; like
// nocPointValue it drops CyclesSkipped so cached and fresh points stay
// byte-identical, and axis labels reattach from the job.
type servicePointValue struct {
	Cycles      int64   `json:"cycles"`
	Issued      int64   `json:"issued"`
	Completed   int64   `json:"completed"`
	InFlight    int64   `json:"in_flight"`
	Throttled   int64   `json:"throttled"`
	Throughput  float64 `json:"throughput"`
	MeanQueue   float64 `json:"mean_queue"`
	MeanNetOut  float64 `json:"mean_net_out"`
	MeanServer  float64 `json:"mean_server"`
	MeanNetBack float64 `json:"mean_net_back"`
	MeanLatency float64 `json:"mean_latency"`
	P99Latency  float64 `json:"p99_latency"`
	P99Server   float64 `json:"p99_server"`
	PeakBuffer  int     `json:"peak_buffer"`
}

// servicePointKey derives the content address of one service point from
// every input the measurement depends on, defaults resolved first.
func servicePointKey(topo noc.Topology, c *ServiceConfig, router noc.RouterKind, rate float64, seed, measure int64) resultcache.Key {
	b := resultcache.NewKey("scenario/service").
		Str("topology", topo.Kind().String()).
		Int("width", int64(c.Width)).
		Int("height", int64(c.Height)).
		Str("router", router.String()).
		Int("servers", int64(c.Servers)).
		Float("arrival_rate", rate).
		Int("think_time", c.ThinkTime).
		Int("response_flits", int64(c.ResponseFlits)).
		Float("hotspot_skew", c.HotspotSkew).
		Int("queue_cap", int64(c.QueueCap)).
		Int("seed", seed).
		Int("warmup_cycles", c.WarmupCycles).
		Int("measure_cycles", measure)
	if c.Burst != nil {
		b.Float("burst_mean_on", c.Burst.MeanOn).Float("burst_mean_off", c.Burst.MeanOff)
	}
	return b.Sum()
}

// runServicePoint simulates one (topology, router, rate, seed) service
// point through noc.MeasureServiceCtx, recalling it from the result cache
// when one is attached.
func runServicePoint(ctx context.Context, rc *resultcache.Cache, topo noc.Topology, c *ServiceConfig, router noc.RouterKind, rate float64, seed int64) (Result, error) {
	measure := c.MeasureCycles
	if measure == 0 {
		measure = 5000
	}
	key := servicePointKey(topo, c, router, rate, seed, measure)
	buf, _, err := rc.GetOrCompute(key, func() ([]byte, error) {
		var burst *noc.BurstConfig
		if c.Burst != nil {
			burst = &noc.BurstConfig{MeanOn: c.Burst.MeanOn, MeanOff: c.Burst.MeanOff}
		}
		m, err := noc.MeasureServiceCtx(ctx, topo, noc.ServiceMeasureConfig{
			Router:        router,
			Servers:       c.Servers,
			ArrivalRate:   rate,
			ThinkTime:     c.ThinkTime,
			ResponseFlits: c.ResponseFlits,
			HotspotSkew:   c.HotspotSkew,
			QueueCap:      c.QueueCap,
			Burst:         burst,
			Warmup:        c.WarmupCycles,
			Measure:       measure,
			Seed:          seed,
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(servicePointValue{
			Cycles:      m.Cycles,
			Issued:      m.Issued,
			Completed:   m.Completed,
			InFlight:    m.InFlight,
			Throttled:   m.Throttled,
			Throughput:  m.Throughput,
			MeanQueue:   m.MeanQueue,
			MeanNetOut:  m.MeanNetOut,
			MeanServer:  m.MeanServer,
			MeanNetBack: m.MeanNetBack,
			MeanLatency: m.MeanLatency,
			P99Latency:  m.P99Latency,
			P99Server:   m.P99Server,
			PeakBuffer:  m.PeakBuffer,
		})
	})
	if err != nil {
		return Result{}, err
	}
	var m servicePointValue
	if err := json.Unmarshal(buf, &m); err != nil {
		return Result{}, fmt.Errorf("scenario: decoding cached service point %s: %w", key, err)
	}
	return Result{
		Workload:    WorkloadService.String(),
		Topology:    topo.Kind().String(),
		Router:      router.String(),
		Seed:        seed,
		Bursty:      c.Burst != nil,
		Servers:     c.Servers,
		ArrivalRate: rate,
		HotspotSkew: c.HotspotSkew,
		Cycles:      m.Cycles,
		Issued:      m.Issued,
		Completed:   m.Completed,
		InFlight:    m.InFlight,
		Throttled:   m.Throttled,
		Throughput:  m.Throughput,
		MeanQueue:   m.MeanQueue,
		MeanNetOut:  m.MeanNetOut,
		MeanServer:  m.MeanServer,
		MeanNetBack: m.MeanNetBack,
		MeanLatency: m.MeanLatency,
		P99Latency:  m.P99Latency,
		P99Server:   m.P99Server,
		PeakBuffer:  m.PeakBuffer,
	}, nil
}
