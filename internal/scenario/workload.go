package scenario

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/dse"
)

// WorkloadKind selects what a scenario point simulates. The workload is
// the fourth pluggable sweep axis, next to the network's topology, router
// and pattern axes: every kind is resolved by name through ParseWorkload
// (mirroring noc.ParseRouter/ParseTopology), executes through one
// registry-dispatched path, and renders through its own schema. The set
// of implementations is closed inside this package (like noc.Router);
// adding a kind means adding a Workload implementation and a constant
// here, and every listing flag, validation message and fuzz corpus picks
// it up through the registry.
type WorkloadKind int

// The six workload implementations. The first three are compute kernels
// on the full MEDEA system (cores + caches + MPMMU over the NoC), sharing
// the kernel sweep axes (variants x policies x caches x cores) and the
// dse.KernelSweep execution path; the rest drive the bare network:
// noc-synthetic with generated traffic, trace with recorded traffic, and
// service with request/response traffic.
const (
	// WorkloadJacobi runs the paper's Jacobi application: per-iteration
	// halo exchange, the latency-bound communication profile.
	WorkloadJacobi WorkloadKind = iota
	// WorkloadMatmul runs the future-work matrix multiply: one bulk
	// broadcast, the bandwidth-bound communication profile.
	WorkloadMatmul
	// WorkloadSyncbench runs bare synchronization episodes: barriers with
	// no compute around them.
	WorkloadSyncbench
	// WorkloadNoC runs synthetic traffic on the bare network.
	WorkloadNoC
	// WorkloadTrace replays a recorded trace file (see internal/trace)
	// through any router x topology on the bare network.
	WorkloadTrace
	// WorkloadService runs request/response traffic on the bare network:
	// client endpoints issue requests to server endpoints and await
	// responses, with per-request latency breakdowns.
	WorkloadService

	// numWorkloads counts the defined workload kinds (keep it last).
	numWorkloads
)

// String implements fmt.Stringer; the names are the scenario JSON and CLI
// vocabulary.
func (k WorkloadKind) String() string {
	switch k {
	case WorkloadJacobi:
		return "jacobi"
	case WorkloadMatmul:
		return "matmul"
	case WorkloadSyncbench:
		return "syncbench"
	case WorkloadNoC:
		return "noc-synthetic"
	case WorkloadTrace:
		return "trace"
	case WorkloadService:
		return "service"
	}
	return fmt.Sprintf("workload(%d)", int(k))
}

// IsKernel reports whether the kind is a compute kernel on the full MEDEA
// system (sharing the kernel sweep axes), as opposed to a bare-network
// workload. Only kernel kinds may appear in the "workloads" sweep axis.
func (k WorkloadKind) IsKernel() bool {
	switch k {
	case WorkloadJacobi, WorkloadMatmul, WorkloadSyncbench:
		return true
	}
	return false
}

// AllWorkloads returns every defined workload kind in declaration order.
func AllWorkloads() []WorkloadKind {
	out := make([]WorkloadKind, numWorkloads)
	for i := range out {
		out[i] = WorkloadKind(i)
	}
	return out
}

// WorkloadNames returns the canonical names of every workload kind, for
// flag documentation and error messages.
func WorkloadNames() []string {
	names := make([]string, numWorkloads)
	for i := range names {
		names[i] = WorkloadKind(i).String()
	}
	return names
}

// ParseWorkload resolves a workload kind from its canonical name (as
// printed by WorkloadKind.String) or its numeric value. Matching is
// case-insensitive and accepts "_" for "-", mirroring noc.ParseRouter.
func ParseWorkload(s string) (WorkloadKind, error) {
	norm := strings.ReplaceAll(strings.ToLower(strings.TrimSpace(s)), "_", "-")
	for k := WorkloadKind(0); k < numWorkloads; k++ {
		if norm == k.String() {
			return k, nil
		}
	}
	if n, err := strconv.Atoi(norm); err == nil {
		if n >= 0 && n < int(numWorkloads) {
			return WorkloadKind(n), nil
		}
		return 0, fmt.Errorf("scenario: workload index %d out of range [0, %d)", n, int(numWorkloads))
	}
	return 0, fmt.Errorf("scenario: unknown workload %q (have: %s)", s, strings.Join(WorkloadNames(), ", "))
}

// Workload is one pluggable workload implementation: it executes its
// kind's share of a scenario sweep and renders its result rows. The
// renderer methods are block-level (they see every row of their kind at
// once) so a schema can adapt to the axes actually swept — the jacobi
// implementation keeps its figure-golden legacy schema for single-variant
// sweeps and only then adds a variant column. Implementations live behind
// ForKind; the set is closed inside this package.
type Workload interface {
	// Kind returns the implemented workload kind.
	Kind() WorkloadKind
	// Run executes this kind's full sweep cross-product for the (already
	// validated) scenario, in deterministic axis order. A canceled context
	// stops dispatching new points and interrupts in-flight simulations.
	Run(ctx context.Context, s *Scenario) ([]Result, error)
	// RunShard executes only the listed point indices of this kind's
	// canonical order (strictly increasing, all in range — RunShardCtx
	// guarantees this), returning one Result per index in order.
	// Cross-point figures (kernel Speedup) are NOT attached; MergeShards
	// recomputes them over the reassembled full series.
	RunShard(ctx context.Context, s *Scenario, points []int) ([]Result, error)
	// TableInto writes an aligned header + one row per result into w; all
	// rows are of this kind.
	TableInto(w *tabwriter.Writer, rows []Result)
	// CSVInto writes a CSV header + one line per result into b.
	CSVInto(b *strings.Builder, rows []Result)
	// JSONRow returns the row's full-field JSON projection (every field
	// of the kind always emitted, nothing from other kinds leaking in).
	JSONRow(r Result) any
}

// workloadImpls is the registry; ForKind dispatches through it.
var workloadImpls = func() [numWorkloads]Workload {
	var impls [numWorkloads]Workload
	impls[WorkloadJacobi] = jacobiWorkload{kernelWorkload{WorkloadJacobi, dse.KernelJacobi}}
	impls[WorkloadMatmul] = matmulWorkload{kernelWorkload{WorkloadMatmul, dse.KernelMatmul}}
	impls[WorkloadSyncbench] = syncbenchWorkload{kernelWorkload{WorkloadSyncbench, dse.KernelSyncbench}}
	impls[WorkloadNoC] = nocWorkload{}
	impls[WorkloadTrace] = traceWorkload{}
	impls[WorkloadService] = serviceWorkload{}
	return impls
}()

// ForKind returns the singleton implementation of the kind.
func ForKind(k WorkloadKind) Workload {
	if k < 0 || k >= numWorkloads {
		panic(fmt.Sprintf("scenario: no implementation for workload kind %d", int(k)))
	}
	return workloadImpls[k]
}

// kernelWorkload is the shared execution strategy of the three compute
// kernels: resolve the scenario's kernel section into dse.KernelOptions
// and delegate to dse.KernelSweep, the execution path shared with
// dse.KernelAblation and cmd/medea-experiments (the golden tests depend
// on this).
type kernelWorkload struct {
	kind   WorkloadKind
	kernel dse.Kernel
}

func (kw kernelWorkload) Kind() WorkloadKind { return kw.kind }

func (kw kernelWorkload) Run(ctx context.Context, s *Scenario) ([]Result, error) {
	return kw.run(ctx, s, nil)
}

func (kw kernelWorkload) RunShard(ctx context.Context, s *Scenario, points []int) ([]Result, error) {
	return kw.run(ctx, s, points)
}

// run executes the kernel sweep, restricted to the listed canonical-order
// indices when points is non-nil (dse.KernelSweepCtx then skips the
// cross-point Speedup attach; MergeShards reapplies it over reassembled
// series).
func (kw kernelWorkload) run(ctx context.Context, s *Scenario, points []int) ([]Result, error) {
	o, err := s.kernelSweepOptions(kw.kernel)
	if err != nil {
		return nil, err
	}
	o.Points = points
	pts, err := dse.KernelSweepCtx(ctx, o)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	results := make([]Result, len(pts))
	for i, p := range pts {
		results[i] = kw.resultOf(s, p)
	}
	return results, nil
}

// resultOf projects one kernel sweep point onto the kind's Result schema.
func (kw kernelWorkload) resultOf(s *Scenario, p dse.KernelPoint) Result {
	r := Result{
		Scenario: s.Name,
		Workload: kw.kind.String(),
		Variant:  p.Variant.String(),
		Cores:    p.Compute,
		CacheKB:  p.CacheKB,
		Policy:   p.Policy.String(),
		Speedup:  p.Speedup,
	}
	switch kw.kind {
	case WorkloadJacobi:
		r.CyclesPerIter = p.Cycles
		r.MissRate = p.MissRate
		r.AreaMM2 = p.AreaMM2
	case WorkloadMatmul:
		r.TotalCycles = p.Cycles
		r.TransferCycles = p.TransferCycles
		r.MPMMUBusy = p.MPMMUBusy
		r.NoCFlits = p.NoCFlits
	case WorkloadSyncbench:
		r.CyclesPerRound = p.Cycles
		r.MPMMUBusy = p.MPMMUBusy
		r.NoCFlits = p.NoCFlits
	}
	return r
}

// The three kernel kinds share kernelWorkload's Kind/Run and differ only
// in their render schemas (defined in output.go).
type jacobiWorkload struct{ kernelWorkload }
type matmulWorkload struct{ kernelWorkload }
type syncbenchWorkload struct{ kernelWorkload }

// nocWorkload drives synthetic traffic on the bare network; its Run body
// lives in run.go next to the per-point measurement.
type nocWorkload struct{}

func (nocWorkload) Kind() WorkloadKind { return WorkloadNoC }

func (nocWorkload) Run(ctx context.Context, s *Scenario) ([]Result, error) {
	return runNoCShard(ctx, s, nil)
}

func (nocWorkload) RunShard(ctx context.Context, s *Scenario, points []int) ([]Result, error) {
	return runNoCShard(ctx, s, points)
}

// traceWorkload replays a recorded trace through the replay sweep axes;
// its Run body lives in trace.go. Replayed rows carry the noc-synthetic
// schema (a same-fabric replay renders byte-identically to its source
// run), so the render methods delegate to the noc schema for the rare
// hand-assembled row that still says "trace".
type traceWorkload struct{}

func (traceWorkload) Kind() WorkloadKind { return WorkloadTrace }

func (traceWorkload) Run(ctx context.Context, s *Scenario) ([]Result, error) {
	return runTraceShard(ctx, s, nil)
}

func (traceWorkload) RunShard(ctx context.Context, s *Scenario, points []int) ([]Result, error) {
	return runTraceShard(ctx, s, points)
}

// serviceWorkload drives request/response traffic on the bare network;
// its Run body lives in service.go and its schema in output.go.
type serviceWorkload struct{}

func (serviceWorkload) Kind() WorkloadKind { return WorkloadService }

func (serviceWorkload) Run(ctx context.Context, s *Scenario) ([]Result, error) {
	return runServiceShard(ctx, s, nil)
}

func (serviceWorkload) RunShard(ctx context.Context, s *Scenario, points []int) ([]Result, error) {
	return runServiceShard(ctx, s, points)
}
