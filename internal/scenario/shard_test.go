package scenario

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestShardPointsPartition: every (shards, total) partition must cover
// each index exactly once, per-shard in increasing order, independent of
// which shard is asked first.
func TestShardPointsPartition(t *testing.T) {
	for _, tc := range []struct{ shards, total int }{
		{1, 5}, {2, 5}, {3, 5}, {5, 5}, {7, 5}, {4, 0}, {3, 17},
	} {
		seen := make(map[int]int)
		for shard := 0; shard < tc.shards; shard++ {
			pts := ShardPoints(shard, tc.shards, tc.total)
			for i := 1; i < len(pts); i++ {
				if pts[i] <= pts[i-1] {
					t.Errorf("ShardPoints(%d,%d,%d) not increasing: %v", shard, tc.shards, tc.total, pts)
				}
			}
			for _, p := range pts {
				seen[p]++
			}
		}
		if len(seen) != tc.total {
			t.Errorf("%d shards over %d points covered %d indices", tc.shards, tc.total, len(seen))
		}
		for p, n := range seen {
			if n != 1 {
				t.Errorf("%d shards over %d points assigned index %d to %d shards", tc.shards, tc.total, p, n)
			}
			if p < 0 || p >= tc.total {
				t.Errorf("%d shards over %d points produced out-of-range index %d", tc.shards, tc.total, p)
			}
		}
	}
}

// kernelShardScenario is a small multi-kernel, multi-variant sweep: it
// exercises the one cross-point figure (Speedup) that MergeShards must
// reattach over the reassembled series.
const kernelShardScenario = `{
	"name": "shard-kernels",
	"workloads": ["jacobi", "matmul"],
	"kernel": {"n": 8, "cores": [2, 4], "cache_kb": [4],
	           "variants": ["hybrid-full", "pure-sm"],
	           "warmup": 1, "measured": 1}
}`

// TestRunShardMergeMatchesRun is the scenario-layer half of the sharding
// golden: RunShardCtx over every shard, merged, must equal RunCtx exactly
// (including reattached Speedup), for both kernel and noc sweeps.
func TestRunShardMergeMatchesRun(t *testing.T) {
	cases := []struct {
		name string
		load func(t *testing.T) *Scenario
	}{
		{"kernel", func(t *testing.T) *Scenario {
			s, err := Parse([]byte(kernelShardScenario))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"noc", func(t *testing.T) *Scenario {
			s, err := Load("../../examples/scenarios/smoke.json")
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, err := RunCtx(context.Background(), c.load(t))
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 3} {
				s := c.load(t)
				var rows []Row
				for shard := 0; shard < shards; shard++ {
					part, err := RunShardCtx(context.Background(), s, shard, shards)
					if err != nil {
						t.Fatal(err)
					}
					rows = append(rows, part...)
				}
				got, err := MergeShards(s, rows)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("shards=%d: merged results differ from RunCtx\n got: %+v\nwant: %+v", shards, got, want)
				}
				if gr, wr := MerkleRoot(got), MerkleRoot(want); gr != wr {
					t.Errorf("shards=%d: merged root %s, direct root %s", shards, gr, wr)
				}
			}
		})
	}
}

// TestRunShardCtxValidation: out-of-range shard selectors must fail up
// front, not run the wrong subset.
func TestRunShardCtxValidation(t *testing.T) {
	s, err := Load("../../examples/scenarios/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunShardCtx(context.Background(), s, 0, 0); err == nil {
		t.Error("shards=0 accepted")
	}
	if _, err := RunShardCtx(context.Background(), s, 3, 3); err == nil {
		t.Error("shard==shards accepted")
	}
	if _, err := RunShardCtx(context.Background(), s, -1, 3); err == nil {
		t.Error("negative shard accepted")
	}
}

// TestMergeShardsErrors: the merge must reject duplicate, missing and
// out-of-range rows — silent acceptance would hand back a sweep with
// holes that still renders.
func TestMergeShardsErrors(t *testing.T) {
	s, err := Load("../../examples/scenarios/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunShardCtx(context.Background(), s, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("smoke sweep has %d points, need >= 2", len(rows))
	}

	dup := append([]Row(nil), rows...)
	dup[1] = dup[0]
	if _, err := MergeShards(s, dup); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate row merge = %v, want a delivered-twice error", err)
	}

	if _, err := MergeShards(s, rows[:len(rows)-1]); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("short merge = %v, want a points-missing error", err)
	}

	oob := append([]Row(nil), rows...)
	oob[0].Index = len(rows) + 7
	if _, err := MergeShards(s, oob); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("out-of-range merge = %v, want an index-range error", err)
	}
}

// TestShardSectionValidation covers the scenario file's "shard" section:
// counts only, validated at load time.
func TestShardSectionValidation(t *testing.T) {
	good := `{"workload": "noc-synthetic", "noc": {"width": 2, "height": 2, "patterns": ["uniform"], "rates": [0.1], "measure_cycles": 200},
	          "shard": {"shards": 4, "workers": 2}}`
	s, err := Parse([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if s.Shard == nil || s.Shard.Shards != 4 || s.Shard.Workers != 2 {
		t.Errorf("shard section did not parse: %+v", s.Shard)
	}
	for _, bad := range []string{
		`{"workload": "noc-synthetic", "noc": {"width": 2, "height": 2, "patterns": ["uniform"], "rates": [0.1], "measure_cycles": 200}, "shard": {"shards": 0}}`,
		`{"workload": "noc-synthetic", "noc": {"width": 2, "height": 2, "patterns": ["uniform"], "rates": [0.1], "measure_cycles": 200}, "shard": {"shards": 2, "workers": -1}}`,
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("invalid shard section accepted: %s", bad)
		}
	}
}

// TestNumPointsMatchesRun pins the sharding prerequisite: NumPoints must
// agree with the number of results a full run produces, for both kernel
// and noc scenarios — ShardPoints partitions [0, NumPoints).
func TestNumPointsMatchesRun(t *testing.T) {
	for _, raw := range []string{
		kernelShardScenario,
		`{"workload": "noc-synthetic", "noc": {"width": 2, "height": 2, "patterns": ["uniform", "tornado"], "rates": [0.05, 0.1], "measure_cycles": 200}, "seeds": [1, 2]}`,
	} {
		s, err := Parse([]byte(raw))
		if err != nil {
			t.Fatal(err)
		}
		results, err := RunCtx(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumPoints() != len(results) {
			t.Errorf("NumPoints() = %d but the run produced %d results (%s)", s.NumPoints(), len(results), raw)
		}
	}
}
