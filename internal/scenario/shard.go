package scenario

// Sweep sharding: the scenario side of internal/shard. A sweep's points
// are a pure function of (config, seed, CodeVersion), so a sweep can be
// partitioned across worker processes and reassembled with zero tolerance
// for drift: ShardPoints fixes a canonical-order partition that is stable
// for a given shard count, RunShardCtx executes one shard's points through
// the exact per-point paths a single-process run uses, and MergeShards
// reassembles the canonical order and reattaches the one cross-point
// figure (kernel Speedup) with the exact single-process algorithm — so a
// merged run is byte-identical, Merkle-root-equal, to an unsharded one.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dse"
)

// ShardConfig is a scenario's optional "shard" section: counts only (how
// workers are launched is the driver's business and never part of the
// declarative format — a scenario file submitted to medea-serve must not
// be able to name a command to exec).
type ShardConfig struct {
	// Shards is the number of partitions to split the sweep into (>= 1).
	Shards int `json:"shards"`
	// Workers caps concurrently running worker processes; 0 means one per
	// shard.
	Workers int `json:"workers,omitempty"`
}

func (c *ShardConfig) validate() error {
	if c.Shards < 1 {
		return fmt.Errorf(`"shard.shards" must be >= 1, got %d`, c.Shards)
	}
	if c.Workers < 0 {
		return fmt.Errorf(`"shard.workers" must be >= 0, got %d`, c.Workers)
	}
	return nil
}

// Row is one sweep point tagged with its canonical-order index, the unit
// a shard worker returns: the index is what lets MergeShards reassemble
// rows from any shard interleaving into the single-process order.
type Row struct {
	Index  int    `json:"index"`
	Result Result `json:"result"`
}

// ShardPoints returns the canonical-order indices shard (of shards) owns:
// round-robin, i % shards == shard. Round-robin spreads expensive regions
// of the grid (large cores x large caches cluster at the end of each
// series) across shards instead of handing one shard the whole hot
// corner. The partition depends only on (shard, shards, total).
func ShardPoints(shard, shards, total int) []int {
	var out []int
	for i := shard; i < total; i += shards {
		out = append(out, i)
	}
	return out
}

// RunShardCtx executes shard (of shards) of the scenario's sweep: the
// ShardPoints subset of the canonical point order, each point through the
// same execution path RunCtx uses (result cache included), returning one
// Row per point. Kernel Speedup is left zero — it is a cross-point figure
// MergeShards recomputes over the full reassembled series.
func RunShardCtx(ctx context.Context, s *Scenario, shard, shards int) ([]Row, error) {
	if shards < 1 {
		return nil, fmt.Errorf("scenario: shards must be >= 1, got %d", shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("scenario: shard %d outside [0, %d)", shard, shards)
	}
	kinds, err := s.workloadKinds()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	total := 0
	for _, k := range kinds {
		total += s.kindPoints(k)
	}
	sel := ShardPoints(shard, shards, total)
	rows := make([]Row, 0, len(sel))
	offset := 0
	for _, k := range kinds {
		n := s.kindPoints(k)
		// This kind's slice of the shard, rebased to kind-local indices.
		var local []int
		for _, g := range sel {
			if g >= offset && g < offset+n {
				local = append(local, g-offset)
			}
		}
		if len(local) > 0 {
			results, err := ForKind(k).RunShard(ctx, s, local)
			if err != nil {
				return nil, err
			}
			if len(results) != len(local) {
				return nil, fmt.Errorf("scenario: workload %v returned %d results for %d shard points", k, len(results), len(local))
			}
			for i, r := range results {
				rows = append(rows, Row{Index: offset + local[i], Result: r})
			}
		}
		offset += n
	}
	return rows, nil
}

// MergeShards reassembles rows from any number of shards into the
// canonical point order and reattaches the cross-point kernel Speedup,
// producing the exact result slice a single-process RunCtx would have:
// the caller verifies that claim by comparing MerkleRoot of the merged
// slice against the single-process root. Every index must arrive exactly
// once.
func MergeShards(s *Scenario, rows []Row) ([]Result, error) {
	kinds, err := s.workloadKinds()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	total := 0
	for _, k := range kinds {
		total += s.kindPoints(k)
	}
	results := make([]Result, total)
	seen := make([]bool, total)
	for _, r := range rows {
		if r.Index < 0 || r.Index >= total {
			return nil, fmt.Errorf("scenario: merge: row index %d outside the %d-point sweep", r.Index, total)
		}
		if seen[r.Index] {
			return nil, fmt.Errorf("scenario: merge: point %d delivered twice", r.Index)
		}
		seen[r.Index] = true
		results[r.Index] = r.Result
	}
	if len(rows) != total {
		return nil, fmt.Errorf("scenario: merge: points missing (%d of %d rows delivered)", len(rows), total)
	}
	offset := 0
	for _, k := range kinds {
		n := s.kindPoints(k)
		if k.IsKernel() {
			if err := attachSpeedupSeries(s, k, results[offset:offset+n]); err != nil {
				return nil, err
			}
		}
		offset += n
	}
	return results, nil
}

// attachSpeedupSeries recomputes Speedup over one kernel kind's merged
// block, per (variant) series, with dse.AttachKernelSpeedup — the exact
// baseline choice and float64 division of the single-process path, over
// the exact same inputs, so the reattached figures are bit-identical.
func attachSpeedupSeries(s *Scenario, k WorkloadKind, block []Result) error {
	c := s.kernelConfig()
	variants, err := c.variantList()
	if err != nil {
		return err
	}
	if len(block)%len(variants) != 0 {
		return fmt.Errorf("scenario: merge: %v block of %d rows does not divide into %d variant series", k, len(block), len(variants))
	}
	per := len(block) / len(variants)
	for vi := range variants {
		series := block[vi*per : (vi+1)*per]
		pts := make([]dse.KernelPoint, len(series))
		for i, r := range series {
			pol, err := parsePolicy(r.Policy)
			if err != nil {
				return fmt.Errorf("scenario: merge: %w", err)
			}
			cfg := core.DefaultConfig(r.Cores, r.CacheKB, pol)
			pts[i] = dse.KernelPoint{
				Cycles:  kernelHeadlineCycles(k, r),
				AreaMM2: dse.Area(r.Cores, r.CacheKB, cfg.MPMMUCacheKB),
			}
		}
		dse.AttachKernelSpeedup(pts)
		for i := range series {
			series[i].Speedup = pts[i].Speedup
		}
	}
	return nil
}

// kernelHeadlineCycles returns the metric a kind's Speedup is computed
// over — the same field dse.KernelPoint.Cycles carried before projection
// onto the Result schema.
func kernelHeadlineCycles(k WorkloadKind, r Result) int64 {
	switch k {
	case WorkloadJacobi:
		return r.CyclesPerIter
	case WorkloadMatmul:
		return r.TotalCycles
	case WorkloadSyncbench:
		return r.CyclesPerRound
	}
	return 0
}
