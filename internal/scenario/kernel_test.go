package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/dse"
)

// loadKernelAblation runs the shipped kernel-ablation scenario (36
// simulations across three kernels x two variants x six core counts).
func loadKernelAblation(t *testing.T) (*Scenario, []Result) {
	t.Helper()
	s, err := Load("../../examples/scenarios/kernel-ablation.json")
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != s.NumPoints() {
		t.Fatalf("got %d results, scenario declares %d points", len(results), s.NumPoints())
	}
	return s, results
}

// TestKernelAblationGolden proves the declarative path is exact for the
// workload axis, mirroring TestTopologyAblationGolden: running
// kernel-ablation.json must reproduce
// dse.KernelAblation(DefaultKernelAblationOptions()) point-for-point,
// because both delegate to dse.KernelSweep.
func TestKernelAblationGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full kernel ablations")
	}
	s, results := loadKernelAblation(t)

	// The scenario file must stay in lockstep with
	// dse.DefaultKernelAblationOptions, otherwise the "reproduces K-1"
	// claim silently decays.
	want := dse.DefaultKernelAblationOptions()
	c := s.kernelConfig()
	if c.N != want.N {
		t.Errorf("kernel-ablation.json n = %d, dse says %d", c.N, want.N)
	}
	if !reflect.DeepEqual(c.Cores, want.Cores) {
		t.Errorf("kernel-ablation.json cores = %v, dse says %v", c.Cores, want.Cores)
	}
	if !reflect.DeepEqual(c.CacheKB, []int{want.CacheKB}) {
		t.Errorf("kernel-ablation.json cache_kb = %v, dse says %v", c.CacheKB, want.CacheKB)
	}
	if c.Rounds != want.Rounds {
		t.Errorf("kernel-ablation.json rounds = %d, dse says %d", c.Rounds, want.Rounds)
	}
	if !reflect.DeepEqual(s.Workloads, []string{"jacobi", "matmul", "syncbench"}) {
		t.Errorf("kernel-ablation.json workloads = %v, want every kernel", s.Workloads)
	}
	variants, err := c.variantList()
	if err != nil || !reflect.DeepEqual(variants, want.Variants) {
		t.Errorf("kernel-ablation.json variants = %v (%v), dse says %v", variants, err, want.Variants)
	}

	points, err := dse.KernelAblation(want)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(results) {
		t.Fatalf("scenario has %d points, dse sweep %d", len(results), len(points))
	}
	for i, p := range points {
		r := results[i]
		if r.Workload != p.Kernel.String() || r.Variant != p.Variant.String() ||
			r.Cores != p.Compute || r.CacheKB != p.CacheKB {
			t.Fatalf("point %d: scenario (%s %s %dP) vs dse (%v %v %dP): axis order diverged",
				i, r.Workload, r.Variant, r.Cores, p.Kernel, p.Variant, p.Compute)
		}
		cycles := r.CyclesPerIter
		switch p.Kernel {
		case dse.KernelMatmul:
			cycles = r.TotalCycles
		case dse.KernelSyncbench:
			cycles = r.CyclesPerRound
		}
		if cycles != p.Cycles || r.Speedup != p.Speedup {
			t.Errorf("point %d (%v %v @ %dP): scenario cycles/speedup %d/%.4f diverge from dse %d/%.4f",
				i, p.Kernel, p.Variant, p.Compute, cycles, r.Speedup, p.Cycles, p.Speedup)
		}
		if p.Kernel != dse.KernelJacobi &&
			(r.MPMMUBusy != p.MPMMUBusy || r.NoCFlits != p.NoCFlits || r.TransferCycles != p.TransferCycles) {
			t.Errorf("point %d (%v %v @ %dP): scenario counters %+v diverge from dse %+v",
				i, p.Kernel, p.Variant, p.Compute, r, p)
		}
	}

	// The K-1 reproduction targets, asserted on the declarative results
	// (deterministic, so exact comparisons): message passing beats pure
	// shared memory on every kernel past two cores, and the bare message
	// barrier never occupies the memory node.
	cycles := func(workload, variant string, cores int) int64 {
		for _, r := range results {
			if r.Workload == workload && r.Variant == variant && r.Cores == cores {
				switch workload {
				case "matmul":
					return r.TotalCycles
				case "syncbench":
					return r.CyclesPerRound
				}
				return r.CyclesPerIter
			}
		}
		t.Fatalf("no result for %s %s at %d cores", workload, variant, cores)
		return 0
	}
	for _, w := range []string{"jacobi", "matmul", "syncbench"} {
		for _, cores := range []int{4, 6, 8, 10, 12} {
			mp := cycles(w, "hybrid-full", cores)
			sm := cycles(w, "pure-sm", cores)
			if sm <= mp {
				t.Errorf("%s at %d cores: pure-sm (%d) not slower than hybrid-full (%d)", w, cores, sm, mp)
			}
		}
	}
	for _, r := range results {
		if r.Workload == "syncbench" && r.Variant == "hybrid-full" && r.MPMMUBusy != 0 {
			t.Errorf("message barrier at %d cores occupied the memory node for %d cycles", r.Cores, r.MPMMUBusy)
		}
	}
}

// TestKernelWorkloadsRenderPerSchema: a multi-workload sweep renders one
// block per workload, each through its registered schema, in all three
// formats.
func TestKernelWorkloadsRenderPerSchema(t *testing.T) {
	src := `{
		"name": "mixed",
		"workloads": ["matmul", "syncbench"],
		"kernel": {"n": 8, "cores": [2, 4], "cache_kb": [4], "variants": ["hybrid-full", "pure-sm"], "rounds": 3}
	}`
	s := mustParse(t, src)
	if got, want := s.NumPoints(), 2*2*1*1*2; got != want {
		t.Fatalf("NumPoints = %d, want %d", got, want)
	}
	results, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// One block per workload, workloads in listed order.
	if results[0].Workload != "matmul" || results[len(results)-1].Workload != "syncbench" {
		t.Fatalf("block order broken: first %s, last %s", results[0].Workload, results[len(results)-1].Workload)
	}

	table := Table(results)
	for _, want := range []string{"total-cycles", "xfer-cycles", "cycles/round", "pure-sm"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := CSV(results)
	for _, want := range []string{
		"variant,cores,cache_kb,policy,total_cycles,transfer_cycles,speedup,mpmmu_busy,noc_flits",
		"variant,cores,cache_kb,policy,cycles_per_round,speedup,mpmmu_busy,noc_flits",
	} {
		if !strings.Contains(csv, want) {
			t.Errorf("csv missing header %q:\n%s", want, csv)
		}
	}
	js, err := JSON(results)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"workload": "matmul"`, `"workload": "syncbench"`, `"transfer_cycles"`, `"cycles_per_round"`} {
		if !strings.Contains(js, want) {
			t.Errorf("json missing %q", want)
		}
	}
	if strings.Contains(js, "cycles_per_iter") {
		t.Error("jacobi fields leaked into matmul/syncbench json")
	}
}

// TestJacobiVariantsAxis: the variants axis on the jacobi workload keeps
// the pinned single-variant schema intact and appends the variant column
// only when the axis is actually swept.
func TestJacobiVariantsAxis(t *testing.T) {
	multi := mustParse(t, `{
		"name": "v",
		"workload": "jacobi",
		"jacobi": {"n": 16, "cores": [2, 4], "cache_kb": [8], "variants": ["hybrid-full", "pure-sm"]}
	}`)
	if got, want := multi.NumPoints(), 2*2; got != want {
		t.Fatalf("NumPoints = %d, want %d", got, want)
	}
	results, err := Run(multi)
	if err != nil {
		t.Fatal(err)
	}
	// Variants are outermost: the hybrid-full block precedes pure-sm.
	if results[0].Variant != "hybrid-full" || results[3].Variant != "pure-sm" {
		t.Fatalf("variant axis order broken: %+v", results)
	}
	csv := CSV(results)
	if !strings.Contains(csv, "speedup,variant") || !strings.Contains(csv, ",pure-sm") {
		t.Errorf("multi-variant jacobi csv lacks the variant column:\n%s", csv)
	}
	if !strings.Contains(Table(results), "variant") {
		t.Errorf("multi-variant jacobi table lacks the variant column")
	}
	// Speedup baselines are per variant: each variant's two-core point is
	// its own 1.0.
	if results[0].Speedup != 1.0 || results[2].Speedup != 1.0 {
		t.Errorf("per-variant speedup baselines broken: %+v", results)
	}

	single, err := Run(mustParse(t, `{
		"name": "v",
		"workload": "jacobi",
		"jacobi": {"n": 16, "cores": [2, 4], "cache_kb": [8]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := CSV(single); strings.Contains(got, "variant") {
		t.Errorf("single-variant jacobi csv must keep the pinned dse.PointsCSV schema:\n%s", got)
	}
}
