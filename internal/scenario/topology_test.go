package scenario

import (
	"testing"

	"repro/internal/dse"
)

// loadTopologyAblation runs the shipped topology-ablation scenario (the
// sweep is 15 simulations).
func loadTopologyAblation(t *testing.T) []Result {
	t.Helper()
	s, err := Load("../../examples/scenarios/topology-ablation.json")
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != s.NumPoints() {
		t.Fatalf("got %d results, scenario declares %d points", len(results), s.NumPoints())
	}
	return results
}

func pickTopo(t *testing.T, results []Result, topo string, rate float64) Result {
	t.Helper()
	for _, r := range results {
		if r.Topology == topo && r.Rate == rate {
			return r
		}
	}
	t.Fatalf("no result for topology %s at rate %g", topo, rate)
	return Result{}
}

// satThroughput reduces a fabric's points to its saturation throughput,
// mirroring dse.SaturationThroughputByTopology on scenario results.
func satThroughput(results []Result, topo string) float64 {
	best := 0.0
	for _, r := range results {
		if r.Topology == topo && r.Throughput > best {
			best = r.Throughput
		}
	}
	return best
}

// TestTopologyAblationOrdering is the acceptance check for the topology
// axis: the shipped topology-ablation.json must reproduce the T-3
// orderings, not just print them. The scenario is deterministic (pinned
// seed), so these are exact comparisons, not tolerances.
func TestTopologyAblationOrdering(t *testing.T) {
	results := loadTopologyAblation(t)

	// Saturation throughput: the torus's wrap links halve the average
	// distance and double the bisection, so it out-delivers the mesh; the
	// cmesh shares each switch between four endpoints and saturates
	// lowest of all.
	torusSat := satThroughput(results, "torus")
	meshSat := satThroughput(results, "mesh")
	cmeshSat := satThroughput(results, "cmesh")
	if !(torusSat >= meshSat) {
		t.Errorf("torus saturation %.4f below mesh %.4f", torusSat, meshSat)
	}
	if !(meshSat > cmeshSat) {
		t.Errorf("mesh saturation %.4f not above cmesh %.4f (concentration should cost bisection)",
			meshSat, cmeshSat)
	}

	// Mesh corner-deflection penalty: without wrap links, edge and corner
	// switches deflect inward-bound traffic more often, which shows up in
	// average latency at every offered load.
	for _, rate := range []float64{0.05, 0.15, 0.3} {
		torus := pickTopo(t, results, "torus", rate)
		mesh := pickTopo(t, results, "mesh", rate)
		if !(mesh.MeanLatency > torus.MeanLatency) {
			t.Errorf("rate %g: mesh latency %.3f not above torus %.3f (corner-deflection penalty missing)",
				rate, mesh.MeanLatency, torus.MeanLatency)
		}
	}
	// The same penalty in deflection cost, at mid load where the mesh is
	// still below saturation but its edges already hurt.
	torusMid := pickTopo(t, results, "torus", 0.3)
	meshMid := pickTopo(t, results, "mesh", 0.3)
	if !(meshMid.DeflectionRate > torusMid.DeflectionRate) {
		t.Errorf("rate 0.3: mesh deflection rate %.4f not above torus %.4f",
			meshMid.DeflectionRate, torusMid.DeflectionRate)
	}

	// The deflection router stays bufferless on every fabric.
	for _, r := range results {
		if r.PeakBuffer != 0 {
			t.Errorf("%s at rate %g reported %d buffered flits; the deflection router stores nothing",
				r.Topology, r.Rate, r.PeakBuffer)
		}
	}
}

// TestTopologyAblationGolden proves the declarative path is exact for the
// topology axis, mirroring TestRouterAblationGolden: running
// topology-ablation.json must reproduce
// dse.TopologyAblation(DefaultTopologyAblationOptions()) point-for-point,
// because both delegate to noc.Measure.
func TestTopologyAblationGolden(t *testing.T) {
	results := loadTopologyAblation(t)

	o := dse.DefaultTopologyAblationOptions()
	points, err := dse.TopologyAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(results) {
		t.Fatalf("scenario has %d points, dse sweep %d", len(results), len(points))
	}
	for i, p := range points {
		r := results[i]
		if r.Topology != p.Topology.String() || r.Rate != p.Rate {
			t.Fatalf("point %d: scenario (%s, %g) vs dse (%v, %g): axis order diverged",
				i, r.Topology, r.Rate, p.Topology, p.Rate)
		}
		if r.Throughput != p.Throughput || r.MeanLatency != p.MeanLatency ||
			r.P99Latency != p.P99Latency || r.DeflectionRate != p.DeflectionRate ||
			r.PeakBuffer != p.PeakBuffer {
			t.Errorf("point %d (%s @ %g): scenario %+v diverges from dse %+v",
				i, r.Topology, r.Rate, r, p)
		}
	}
}

// TestTopologySweepValidation pins the per-topology scenario validation:
// a pattern legal on one listed fabric but not another must be rejected
// at load time, as must invalid topology/size combinations.
func TestTopologySweepValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		ok   bool
	}{
		{"all kinds, uniform", `{"workload":"noc-synthetic","noc":{"width":8,"height":8,"patterns":["uniform"],"topologies":["torus","mesh","cmesh"],"rates":[0.1]}}`, true},
		{"unknown topology", `{"workload":"noc-synthetic","noc":{"width":8,"height":8,"patterns":["uniform"],"topologies":["hypercube"],"rates":[0.1]}}`, false},
		{"duplicate topology", `{"workload":"noc-synthetic","noc":{"width":8,"height":8,"patterns":["uniform"],"topologies":["mesh","mesh"],"rates":[0.1]}}`, false},
		{"cmesh odd size", `{"workload":"noc-synthetic","noc":{"width":5,"height":4,"patterns":["uniform"],"topologies":["cmesh"],"rates":[0.1]}}`, false},
		{"cmesh too small", `{"workload":"noc-synthetic","noc":{"width":2,"height":2,"patterns":["uniform"],"topologies":["cmesh"],"rates":[0.1]}}`, false},
		{"transpose on non-square grid", `{"workload":"noc-synthetic","noc":{"width":4,"height":3,"patterns":["transpose"],"topologies":["mesh"],"rates":[0.1]}}`, false},
		{"torus default still works", `{"workload":"noc-synthetic","noc":{"width":4,"height":4,"patterns":["transpose"],"rates":[0.1]}}`, true},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.json))
		if c.ok && err != nil {
			t.Errorf("%s: rejected: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: accepted; want error", c.name)
		}
	}
	// NumPoints multiplies the topology axis in.
	s, err := Parse([]byte(`{"workload":"noc-synthetic","noc":{"width":8,"height":8,"patterns":["uniform","hotspot"],"topologies":["torus","mesh","cmesh"],"routers":["deflection","xy"],"rates":[0.1,0.2]},"seeds":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.NumPoints(), 3*2*2*2*1; got != want {
		t.Errorf("NumPoints = %d, want %d", got, want)
	}
}
