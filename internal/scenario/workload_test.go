package scenario

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestParseWorkloadRoundTrip(t *testing.T) {
	for _, k := range AllWorkloads() {
		got, err := ParseWorkload(k.String())
		if err != nil || got != k {
			t.Errorf("ParseWorkload(%q) = %v, %v", k.String(), got, err)
		}
		if got, err := ParseWorkload("  " + strings.ToUpper(k.String()) + " "); err != nil || got != k {
			t.Errorf("ParseWorkload upper(%q) = %v, %v", k, got, err)
		}
		if ForKind(k).Kind() != k {
			t.Errorf("registry impl for %v reports kind %v", k, ForKind(k).Kind())
		}
	}
	if got, err := ParseWorkload("noc_synthetic"); err != nil || got != WorkloadNoC {
		t.Errorf("ParseWorkload(noc_synthetic) = %v, %v", got, err)
	}
	if got, err := ParseWorkload("0"); err != nil || got != WorkloadJacobi {
		t.Errorf("ParseWorkload(0) = %v, %v", got, err)
	}
	for _, bad := range []string{"", "fft", "99", "-1"} {
		if _, err := ParseWorkload(bad); err == nil {
			t.Errorf("ParseWorkload(%q) accepted", bad)
		}
	}
	if !WorkloadJacobi.IsKernel() || !WorkloadMatmul.IsKernel() ||
		!WorkloadSyncbench.IsKernel() || WorkloadNoC.IsKernel() ||
		WorkloadTrace.IsKernel() || WorkloadService.IsKernel() {
		t.Error("IsKernel classification broken")
	}
	if len(WorkloadNames()) != 6 {
		t.Errorf("WorkloadNames = %v, want 6 kinds", WorkloadNames())
	}
}

// TestCrossWorkloadDeterminism is the determinism contract over the full
// workload x variant cross-product: running the same scenario twice (and
// serially vs in parallel) must yield identical Result rows for every
// workload and every variant it supports.
func TestCrossWorkloadDeterminism(t *testing.T) {
	scenarios := map[string]string{
		"kernels": `{
			"name": "det-kernels",
			"workloads": ["jacobi", "matmul"],
			"kernel": {"n": 12, "cores": [2, 3], "cache_kb": [4],
			           "variants": ["hybrid-full", "hybrid-sync", "pure-sm"]}
		}`,
		"syncbench": `{
			"name": "det-sync",
			"workload": "syncbench",
			"kernel": {"cores": [2, 4], "cache_kb": [8],
			           "variants": ["hybrid-full", "pure-sm"], "rounds": 3}
		}`,
		"noc": `{
			"name": "det-noc",
			"workload": "noc-synthetic",
			"noc": {"width": 4, "height": 4, "patterns": ["uniform"], "rates": [0.2],
			        "warmup_cycles": 100, "measure_cycles": 800},
			"seeds": [7]
		}`,
	}
	for name, src := range scenarios {
		t.Run(name, func(t *testing.T) {
			s := mustParse(t, src)
			first, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(first) != s.NumPoints() {
				t.Fatalf("got %d results, scenario declares %d", len(first), s.NumPoints())
			}
			s.Parallelism = 1 // different interleaving must not change anything
			again, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, again) {
				t.Errorf("results differ between parallel and serial execution:\n%+v\nvs\n%+v", first, again)
			}
			third, err := Run(mustParse(t, src))
			if err != nil {
				t.Fatal(err)
			}
			// The serial rerun mutated only Parallelism, which is not part
			// of any Result; a fresh parse must reproduce the rows too.
			if !reflect.DeepEqual(first, third) {
				t.Error("results differ across independent parses")
			}
			for _, r := range first {
				if r.Scenario == "" || r.Workload == "" {
					t.Errorf("row missing identity: %+v", r)
				}
			}
		})
	}
}

// TestWorkloadBlocksOrdered: the workloads axis emits one block per
// listed workload, in list order, each internally variant-outermost.
func TestWorkloadBlocksOrdered(t *testing.T) {
	s := mustParse(t, `{
		"name": "order",
		"workloads": ["syncbench", "matmul"],
		"kernel": {"n": 8, "cores": [2, 3], "cache_kb": [4],
		           "variants": ["hybrid-full", "pure-sm"], "rounds": 2}
	}`)
	results, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range results {
		got = append(got, fmt.Sprintf("%s/%s/%d", r.Workload, r.Variant, r.Cores))
	}
	want := []string{
		"syncbench/hybrid-full/2", "syncbench/hybrid-full/3",
		"syncbench/pure-sm/2", "syncbench/pure-sm/3",
		"matmul/hybrid-full/2", "matmul/hybrid-full/3",
		"matmul/pure-sm/2", "matmul/pure-sm/3",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("axis order:\ngot  %v\nwant %v", got, want)
	}
}
