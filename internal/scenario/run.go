package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/dse"
	"repro/internal/noc"
	"repro/internal/par"
	"repro/internal/resultcache"
)

// windowForkOff disables warm-snapshot sharing across measure_windows
// (each window then re-simulates its own warmup). Results are
// byte-identical either way — this is the escape hatch the CLI exposes
// as -no-fork, mirroring sim.SetDefaultFastForward/-no-ffwd.
var windowForkOff atomic.Bool

// SetWindowFork enables or disables warm-snapshot sharing for
// measure_windows sweeps (enabled by default).
func SetWindowFork(on bool) { windowForkOff.Store(!on) }

// WindowFork reports whether measure_windows sweeps share their warmup
// prefix through engine snapshots.
func WindowFork() bool { return !windowForkOff.Load() }

// Result is one evaluated sweep point. NoC-synthetic points fill the
// pattern/rate/seed axes and the network metrics; kernel points (jacobi,
// matmul, syncbench) fill the variant/cores/cache/policy axes and the
// metrics of their kernel.
type Result struct {
	Scenario string `json:"scenario"`
	Workload string `json:"workload"`

	// NoC axes.
	Topology string  `json:"topology,omitempty"`
	Router   string  `json:"router,omitempty"`
	Pattern  string  `json:"pattern,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Bursty   bool    `json:"bursty,omitempty"`

	// Kernel axes (shared by jacobi, matmul and syncbench).
	Cores   int    `json:"cores,omitempty"`
	CacheKB int    `json:"cache_kb,omitempty"`
	Policy  string `json:"policy,omitempty"`
	Variant string `json:"variant,omitempty"`

	// NoC metrics, over the measurement window only (PeakBuffer covers
	// the whole run: buffers fill during warmup too and hardware must be
	// sized for the worst case).
	Cycles         int64   `json:"cycles,omitempty"`     // measurement window length
	Delivered      int64   `json:"delivered,omitempty"`  // flits ejected in the window
	Throughput     float64 `json:"throughput,omitempty"` // delivered flits/node/cycle
	MeanLatency    float64 `json:"mean_latency,omitempty"`
	P99Latency     float64 `json:"p99_latency,omitempty"`
	DeflectionRate float64 `json:"deflection_rate,omitempty"` // deflections per delivered flit
	PeakBuffer     int     `json:"peak_buffer,omitempty"`     // worst per-switch buffer occupancy

	// Jacobi metrics.
	CyclesPerIter int64   `json:"cycles_per_iter,omitempty"`
	MissRate      float64 `json:"miss_rate,omitempty"`
	AreaMM2       float64 `json:"area_mm2,omitempty"`
	Speedup       float64 `json:"speedup,omitempty"` // also filled for matmul/syncbench

	// Service axes (the topology/router/seed axes above are shared) and
	// metrics: request counts, the per-request latency breakdown means
	// (queue + net_out + server + net_back = mean_latency), and the
	// server-side p99. Cycles/Throughput/MeanLatency/P99Latency/PeakBuffer
	// above are shared too — Throughput is completed requests per client
	// per cycle on service rows.
	Servers     int     `json:"servers,omitempty"`
	ArrivalRate float64 `json:"arrival_rate,omitempty"`
	HotspotSkew float64 `json:"hotspot_skew,omitempty"`
	Issued      int64   `json:"issued,omitempty"`
	Completed   int64   `json:"completed,omitempty"`
	InFlight    int64   `json:"in_flight,omitempty"`
	Throttled   int64   `json:"throttled,omitempty"`
	MeanQueue   float64 `json:"mean_queue,omitempty"`
	MeanNetOut  float64 `json:"mean_net_out,omitempty"`
	MeanServer  float64 `json:"mean_server,omitempty"`
	MeanNetBack float64 `json:"mean_net_back,omitempty"`
	P99Server   float64 `json:"p99_server,omitempty"`

	// Matmul metrics: barrier-to-barrier total and the B-distribution
	// phase alone.
	TotalCycles    int64 `json:"total_cycles,omitempty"`
	TransferCycles int64 `json:"transfer_cycles,omitempty"`
	// Syncbench metric: mean cycles per synchronization episode.
	CyclesPerRound int64 `json:"cycles_per_round,omitempty"`
	// Shared kernel-side counters (matmul and syncbench rows): memory-
	// node occupancy versus message-path traffic.
	MPMMUBusy int64 `json:"mpmmu_busy,omitempty"`
	NoCFlits  int64 `json:"noc_flits,omitempty"`
}

// Run executes the scenario's full sweep cross-product and returns one
// Result per point, in deterministic axis order (independent of the
// execution interleaving): one block per workload, each produced by its
// registered Workload implementation. The scenario must have passed
// Validate (Load and Parse guarantee this).
func Run(s *Scenario) ([]Result, error) {
	return RunCtx(context.Background(), s)
}

// RunCtx is Run with cooperative cancellation: a canceled context stops
// dispatching new sweep points, interrupts in-flight simulations within a
// few thousand simulated cycles, and returns the context's error (wrapped
// in a par.CanceledError recording completed-point counts). The sweep is
// all-or-nothing either way: on any error no results are returned.
func RunCtx(ctx context.Context, s *Scenario) ([]Result, error) {
	kinds, err := s.workloadKinds()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var all []Result
	for _, k := range kinds {
		results, err := ForKind(k).Run(ctx, s)
		if err != nil {
			return nil, err
		}
		all = append(all, results...)
	}
	return all, nil
}

// DSEPoints converts Jacobi results back to dse.Point rows, so scenario
// output can reuse the dse table renderers and golden tests can compare
// against dse.Sweep byte-for-byte.
func DSEPoints(results []Result) []dse.Point {
	points := make([]dse.Point, 0, len(results))
	for _, r := range results {
		if r.Workload != WorkloadJacobi.String() {
			continue
		}
		pol := cache.WriteBack
		if r.Policy == cache.WriteThrough.String() {
			pol = cache.WriteThrough
		}
		points = append(points, dse.Point{
			Compute: r.Cores, CacheKB: r.CacheKB, Policy: pol,
			CyclesPerIter: r.CyclesPerIter,
			MissRate:      r.MissRate,
			AreaMM2:       r.AreaMM2,
			Speedup:       r.Speedup,
			Label:         fmt.Sprintf("%dP_%dk$", r.Cores, r.CacheKB),
		})
	}
	return points
}

// runNoCShard expands topologies x routers x patterns x rates x seeds and
// executes each point on the shared fixed worker pool (par.ForEachCtx, as
// dse.SweepCtx does): every point is an independent deterministic
// simulation, so each slot of the result slice is written by exactly one
// job and the whole set is reproducible. A non-nil points filter (strictly
// increasing canonical-order indices) restricts the run to those points —
// window groups still form over the canonical order, so only windows that
// landed in this shard share a warmup prefix.
func runNoCShard(ctx context.Context, s *Scenario, points []int) ([]Result, error) {
	c := s.NoC
	topos := make([]noc.Topology, 0, len(c.topologyList()))
	for _, tk := range c.topologyList() {
		topo, err := noc.NewTopologyOfKind(tk, c.Width, c.Height)
		if err != nil {
			return nil, err
		}
		topos = append(topos, topo)
	}
	type job struct {
		idx     int
		topo    noc.Topology
		router  noc.RouterKind
		pattern noc.Pattern
		rate    float64
		seed    int64
		// Window-sweep points: every window of one (topology, router,
		// pattern, rate, seed) tuple shares a group, so the warmup prefix
		// simulates once and each window forks off its warm snapshot.
		window int
		group  *windowGroup
	}
	patterns := make([]noc.Pattern, 0, len(c.Patterns))
	for _, name := range c.Patterns {
		p, err := noc.ParsePattern(name)
		if err != nil {
			return nil, err
		}
		for _, topo := range topos {
			if err := noc.ValidatePattern(p, topo); err != nil {
				return nil, err
			}
		}
		patterns = append(patterns, p)
	}
	var jobs []job
	for _, topo := range topos {
		for _, router := range c.routerList() {
			for _, p := range patterns {
				for _, rate := range c.Rates {
					for _, seed := range s.seedList() {
						if len(c.MeasureWindows) == 0 {
							jobs = append(jobs, job{idx: len(jobs), topo: topo, router: router, pattern: p, rate: rate, seed: seed})
							continue
						}
						g := &windowGroup{}
						for wi := range c.MeasureWindows {
							jobs = append(jobs, job{idx: len(jobs), topo: topo, router: router, pattern: p, rate: rate, seed: seed, window: wi, group: g})
						}
					}
				}
			}
		}
	}
	if points != nil {
		sel := make([]job, len(points))
		for i, p := range points {
			if p < 0 || p >= len(jobs) {
				return nil, fmt.Errorf("scenario: point filter index %d outside the %d-point noc sweep", p, len(jobs))
			}
			sel[i] = jobs[p]
			sel[i].idx = i
		}
		jobs = sel
	}
	// Recording bypasses the cache: a hit would skip the simulation and
	// record nothing (RecordCtx also detaches the cache, this is the
	// defence in depth for hand-wired scenarios).
	rcache := s.Cache
	if s.Record != nil {
		rcache = nil
	}
	results := make([]Result, len(jobs))
	if err := par.ForEachCtx(ctx, len(jobs), s.Parallelism, func(i int) error {
		j := jobs[i]
		var r Result
		var err error
		if j.group == nil {
			r, err = runNoCPoint(ctx, rcache, s.Record, j.topo, c, j.router, j.pattern, j.rate, j.seed)
		} else {
			r, err = runNoCWindowPoint(ctx, rcache, j.topo, c, j.router, j.pattern, j.rate, j.seed, j.window, j.group)
		}
		if err != nil {
			return err
		}
		r.Scenario = s.Name
		results[j.idx] = r
		return nil
	}); err != nil {
		return nil, err
	}
	return results, nil
}

// windowGroup computes one warm-prefix group of a measure_windows sweep
// exactly once: however many of its windows miss the result cache, the
// first to need data runs noc.MeasureWindowsCtx for the whole group and
// the rest share the measurements. A fully cache-served group never
// simulates at all.
type windowGroup struct {
	once sync.Once
	ms   []noc.Measurement
	err  error
}

func (g *windowGroup) measurements(ctx context.Context, topo noc.Topology, mc noc.MeasureConfig, windows []int64) ([]noc.Measurement, error) {
	g.once.Do(func() {
		g.ms, g.err = noc.MeasureWindowsCtx(ctx, topo, mc, windows, WindowFork())
	})
	return g.ms, g.err
}

// nocPointValue is the cached measurement of one noc-synthetic point: the
// raw noc.Measure metrics only; axis labels reattach from the job.
type nocPointValue struct {
	Cycles         int64   `json:"cycles"`
	Delivered      int64   `json:"delivered"`
	Throughput     float64 `json:"throughput"`
	MeanLatency    float64 `json:"mean_latency"`
	P99Latency     float64 `json:"p99_latency"`
	DeflectionRate float64 `json:"deflection_rate"`
	PeakBuffer     int     `json:"peak_buffer"`
}

// nocPointKey derives the content address of one noc-synthetic point from
// every input the measurement depends on (the defaults are resolved first,
// so an explicit "measure_cycles": 5000 keys identically to the default).
func nocPointKey(topo noc.Topology, c *NoCConfig, router noc.RouterKind, pattern noc.Pattern, rate float64, seed, measure int64) resultcache.Key {
	b := resultcache.NewKey("scenario/noc").
		Str("topology", topo.Kind().String()).
		Int("width", int64(c.Width)).
		Int("height", int64(c.Height)).
		Str("router", router.String()).
		Str("pattern", pattern.String()).
		Float("rate", rate).
		Int("seed", seed).
		Int("hotspot_node", int64(c.HotspotNode)).
		Int("queue_cap", int64(c.QueueCap)).
		Int("warmup_cycles", c.WarmupCycles).
		Int("measure_cycles", measure)
	if c.Burst != nil {
		b.Float("burst_mean_on", c.Burst.MeanOn).Float("burst_mean_off", c.Burst.MeanOff)
	}
	return b.Sum()
}

// nocMeasureConfig assembles the noc.MeasureConfig for one point.
// Measure is left to the caller (a fixed window, or unset for a
// measure_windows group).
func nocMeasureConfig(c *NoCConfig, router noc.RouterKind, pattern noc.Pattern, rate float64, seed, measure int64) noc.MeasureConfig {
	var burst *noc.BurstConfig
	if c.Burst != nil {
		burst = &noc.BurstConfig{MeanOn: c.Burst.MeanOn, MeanOff: c.Burst.MeanOff}
	}
	return noc.MeasureConfig{
		Router: router,
		Traffic: noc.TrafficConfig{
			Pattern:     pattern,
			Rate:        rate,
			HotspotNode: c.HotspotNode,
			QueueCap:    c.QueueCap,
			Burst:       burst,
		},
		Warmup:  c.WarmupCycles,
		Measure: measure,
		Seed:    seed,
	}
}

// nocValueOf projects a Measurement onto the cached codec. CyclesSkipped
// is deliberately dropped: it counts simulation work, not simulated
// behaviour, so cached and fresh points stay byte-identical.
func nocValueOf(m noc.Measurement) nocPointValue {
	return nocPointValue{
		Cycles:         m.Cycles,
		Delivered:      m.Delivered,
		Throughput:     m.Throughput,
		MeanLatency:    m.MeanLatency,
		P99Latency:     m.P99Latency,
		DeflectionRate: m.DeflectionRate,
		PeakBuffer:     m.PeakBuffer,
	}
}

// nocResult reattaches the axis labels to a cached point value.
func nocResult(topo noc.Topology, c *NoCConfig, router noc.RouterKind, pattern noc.Pattern, rate float64, seed int64, m nocPointValue) Result {
	return Result{
		Workload:       WorkloadNoC.String(),
		Topology:       topo.Kind().String(),
		Router:         router.String(),
		Pattern:        pattern.String(),
		Rate:           rate,
		Seed:           seed,
		Bursty:         c.Burst != nil,
		Cycles:         m.Cycles,
		Delivered:      m.Delivered,
		Throughput:     m.Throughput,
		MeanLatency:    m.MeanLatency,
		P99Latency:     m.P99Latency,
		DeflectionRate: m.DeflectionRate,
		PeakBuffer:     m.PeakBuffer,
	}
}

// runNoCPoint simulates one (topology, router, pattern, rate, seed) point
// through noc.MeasureCtx, the execution path shared with
// dse.RouterAblation, dse.TopologyAblation and cmd/medea-noc, recalling it
// from the result cache when one is attached.
func runNoCPoint(ctx context.Context, rc *resultcache.Cache, rec noc.InjectionRecorder, topo noc.Topology, c *NoCConfig, router noc.RouterKind, pattern noc.Pattern, rate float64, seed int64) (Result, error) {
	measure := c.MeasureCycles
	if measure == 0 {
		measure = 5000
	}
	key := nocPointKey(topo, c, router, pattern, rate, seed, measure)
	buf, _, err := rc.GetOrCompute(key, func() ([]byte, error) {
		mc := nocMeasureConfig(c, router, pattern, rate, seed, measure)
		mc.Traffic.Record = rec
		m, err := noc.MeasureCtx(ctx, topo, mc)
		if err != nil {
			return nil, err
		}
		return json.Marshal(nocValueOf(m))
	})
	if err != nil {
		return Result{}, err
	}
	var m nocPointValue
	if err := json.Unmarshal(buf, &m); err != nil {
		return Result{}, fmt.Errorf("scenario: decoding cached noc point %s: %w", key, err)
	}
	return nocResult(topo, c, router, pattern, rate, seed, m), nil
}

// runNoCWindowPoint resolves one window of a measure_windows sweep. Its
// cache key is exactly the key a plain measure_cycles point with this
// window length would use — warm-snapshot forking is byte-identical to
// independent simulation (noc.MeasureWindowsCtx's contract, enforced by
// the differential tests), so the two entry kinds interchange in the
// store. On a miss, the whole group simulates once through the shared
// windowGroup and this point takes its window's measurement.
func runNoCWindowPoint(ctx context.Context, rc *resultcache.Cache, topo noc.Topology, c *NoCConfig, router noc.RouterKind, pattern noc.Pattern, rate float64, seed int64, wi int, g *windowGroup) (Result, error) {
	windows := c.MeasureWindows
	key := nocPointKey(topo, c, router, pattern, rate, seed, windows[wi])
	buf, _, err := rc.GetOrCompute(key, func() ([]byte, error) {
		ms, err := g.measurements(ctx, topo, nocMeasureConfig(c, router, pattern, rate, seed, 0), windows)
		if err != nil {
			return nil, err
		}
		return json.Marshal(nocValueOf(ms[wi]))
	})
	if err != nil {
		return Result{}, err
	}
	var m nocPointValue
	if err := json.Unmarshal(buf, &m); err != nil {
		return Result{}, fmt.Errorf("scenario: decoding cached noc point %s: %w", key, err)
	}
	return nocResult(topo, c, router, pattern, rate, seed, m), nil
}
