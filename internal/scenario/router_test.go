package scenario

import (
	"testing"

	"repro/internal/dse"
	"repro/internal/noc"
)

// loadRouterAblation runs the shipped router-ablation scenario once per
// test binary (the sweep is 20 simulations).
func loadRouterAblation(t *testing.T) []Result {
	t.Helper()
	s, err := Load("../../examples/scenarios/router-ablation.json")
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != s.NumPoints() {
		t.Fatalf("got %d results, scenario declares %d points", len(results), s.NumPoints())
	}
	return results
}

func pick(t *testing.T, results []Result, router string, rate float64) Result {
	t.Helper()
	for _, r := range results {
		if r.Router == router && r.Rate == rate {
			return r
		}
	}
	t.Fatalf("no result for router %s at rate %g", router, rate)
	return Result{}
}

// TestRouterAblationOrdering is the acceptance check for the router axis:
// the shipped router-ablation.json must reproduce the R-1 orderings, not
// just print them. The scenario is deterministic (pinned seed), so these
// are exact comparisons, not tolerances.
func TestRouterAblationOrdering(t *testing.T) {
	results := loadRouterAblation(t)
	const low, high = 0.05, 0.9

	// Zero-load latency: the bufferless deflection router undercuts both
	// buffered routers (no buffer-write pipeline stage), and the buffered
	// wormhole pays the highest latency of all four.
	dLow := pick(t, results, "deflection", low)
	aLow := pick(t, results, "adaptive", low)
	xLow := pick(t, results, "xy", low)
	wLow := pick(t, results, "wormhole", low)
	if !(dLow.MeanLatency < xLow.MeanLatency && dLow.MeanLatency < wLow.MeanLatency) {
		t.Errorf("deflection zero-load latency %.3f not below buffered routers (xy %.3f, wormhole %.3f)",
			dLow.MeanLatency, xLow.MeanLatency, wLow.MeanLatency)
	}
	for _, r := range []Result{dLow, aLow, xLow} {
		if r.MeanLatency >= wLow.MeanLatency {
			t.Errorf("%s latency %.3f not below wormhole's buffered-pipeline %.3f at low load",
				r.Router, r.MeanLatency, wLow.MeanLatency)
		}
	}

	// Past saturation: the wormhole VC router sustains the highest
	// buffered-router throughput (XY's single queue per input suffers
	// head-of-line blocking that 2 VCs relieve), while the bufferless
	// routers — the paper's thesis — beat both on this adversarial
	// pattern.
	dHigh := pick(t, results, "deflection", high)
	aHigh := pick(t, results, "adaptive", high)
	xHigh := pick(t, results, "xy", high)
	wHigh := pick(t, results, "wormhole", high)
	if !(wHigh.Throughput > xHigh.Throughput) {
		t.Errorf("wormhole throughput %.4f not above xy %.4f past saturation",
			wHigh.Throughput, xHigh.Throughput)
	}
	if !(dHigh.Throughput > wHigh.Throughput && aHigh.Throughput > wHigh.Throughput) {
		t.Errorf("bufferless routers (%.4f, %.4f) should out-deliver wormhole (%.4f) on transpose",
			dHigh.Throughput, aHigh.Throughput, wHigh.Throughput)
	}

	// Storage cost: bufferless means zero, wormhole stays bounded by its
	// credit-managed VC buffers, XY's unbounded queues explode.
	for _, r := range []Result{dHigh, aHigh} {
		if r.PeakBuffer != 0 {
			t.Errorf("%s reported %d buffered flits; bufferless routers store nothing", r.Router, r.PeakBuffer)
		}
	}
	maxWormhole := int(noc.NumPorts)*noc.WormholeVCs*noc.WormholeVCDepth + noc.WormholeVCDepth
	if wHigh.PeakBuffer <= 0 || wHigh.PeakBuffer > maxWormhole {
		t.Errorf("wormhole peak buffer %d outside (0, %d]", wHigh.PeakBuffer, maxWormhole)
	}
	if xHigh.PeakBuffer <= wHigh.PeakBuffer {
		t.Errorf("xy unbounded queues (peak %d) should exceed wormhole's bounded %d",
			xHigh.PeakBuffer, wHigh.PeakBuffer)
	}
}

// TestRouterAblationGolden proves the declarative path is exact for the
// router axis, mirroring TestFig8QuickGolden: running router-ablation.json
// must reproduce dse.RouterAblation(DefaultRouterAblationOptions())
// point-for-point, because both delegate to noc.Measure.
func TestRouterAblationGolden(t *testing.T) {
	results := loadRouterAblation(t)

	o := dse.DefaultRouterAblationOptions()
	points, err := dse.RouterAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(results) {
		t.Fatalf("scenario has %d points, dse sweep %d", len(results), len(points))
	}
	for i, p := range points {
		r := results[i]
		if r.Router != p.Router.String() || r.Rate != p.Rate {
			t.Fatalf("point %d: scenario (%s, %g) vs dse (%v, %g): axis order diverged",
				i, r.Router, r.Rate, p.Router, p.Rate)
		}
		if r.Throughput != p.Throughput || r.MeanLatency != p.MeanLatency ||
			r.P99Latency != p.P99Latency || r.DeflectionRate != p.DeflectionRate ||
			r.PeakBuffer != p.PeakBuffer {
			t.Errorf("point %d (%s @ %g): scenario %+v diverges from dse %+v",
				i, r.Router, r.Rate, r, p)
		}
	}
}
