package scenario

// The differential battery of the hot-path optimizations: idle
// fast-forward and warm-snapshot window forking are performance features
// with a zero-tolerance correctness contract — every example scenario
// must render byte-identically with them on and off, and repeated forked
// runs must reproduce the same Merkle ledger root. These tests toggle
// process-wide switches (sim.SetDefaultFastForward, SetWindowFork), so
// they run serially — no t.Parallel anywhere in this file.

import (
	"path/filepath"
	"testing"

	"repro/internal/resultcache"
	"repro/internal/sim"
)

// runPlain loads path fresh, runs it cache-off, and returns the rendered
// outputs plus the run ledger root.
func runPlain(t *testing.T, path string) (map[string]string, string) {
	t.Helper()
	out, root, _ := runScoped(t, path, nil)
	return out, root
}

// TestFastForwardDifferentialGolden runs every example scenario with
// fast-forward enabled and disabled and requires byte-identical output in
// every format plus identical Merkle ledger roots.
func TestFastForwardDifferentialGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every example scenario twice")
	}
	defer sim.SetDefaultFastForward(sim.DefaultFastForward())
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example scenarios found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			sim.SetDefaultFastForward(false)
			want, wantRoot := runPlain(t, path)
			sim.SetDefaultFastForward(true)
			got, root := runPlain(t, path)
			for format, out := range got {
				if out != want[format] {
					t.Errorf("%s output differs under fast-forward:\n--- on ---\n%s--- off ---\n%s",
						format, out, want[format])
				}
			}
			if root != wantRoot {
				t.Errorf("merkle root %s under fast-forward, %s without", root, wantRoot)
			}
		})
	}
}

// windowScenario is a measure_windows sweep covering the stateful router
// kinds (wormhole credits, adaptive age-weighting) so forking has real
// state to snapshot.
func windowScenario(t *testing.T) *Scenario {
	t.Helper()
	s := &Scenario{
		Name:     "window-sweep",
		Workload: WorkloadNoC.String(),
		NoC: &NoCConfig{
			Width: 4, Height: 4,
			Patterns:       []string{"uniform", "transpose"},
			Routers:        []string{"deflection", "wormhole"},
			Rates:          []float64{0.05},
			WarmupCycles:   1_000,
			MeasureWindows: []int64{500, 1_500, 3_000},
		},
		Seeds: []int64{3},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWindowForkDifferential requires a measure_windows sweep to be
// byte-identical with warm-snapshot forking on and off, and forked runs
// to be reproducible: forking the same warm snapshot twice must yield the
// same Merkle ledger root (the snapshot is not consumed or mutated).
func TestWindowForkDifferential(t *testing.T) {
	defer SetWindowFork(WindowFork())

	SetWindowFork(true)
	forked, err := Run(windowScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(windowScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	if MerkleRoot(forked) != MerkleRoot(again) {
		t.Errorf("two forked runs disagree: %s vs %s", MerkleRoot(forked), MerkleRoot(again))
	}

	SetWindowFork(false)
	independent, err := Run(windowScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	wantOut := renderAll(t, independent)
	for format, out := range renderAll(t, forked) {
		if out != wantOut[format] {
			t.Errorf("%s output differs under window forking:\n--- forked ---\n%s--- independent ---\n%s",
				format, out, wantOut[format])
		}
	}
	if MerkleRoot(forked) != MerkleRoot(independent) {
		t.Errorf("merkle root %s forked, %s independent", MerkleRoot(forked), MerkleRoot(independent))
	}
}

// TestWindowCacheInterop pins the key design: a window point is cached
// under exactly the key of a plain measure_cycles point of that length,
// so a windows sweep fully warms the cache for the equivalent fixed-window
// scenarios (and vice versa).
func TestWindowCacheInterop(t *testing.T) {
	rc := resultcache.New(resultcache.NewMemoryStore(0))

	s := windowScenario(t)
	s.Cache = rc.Scope()
	forked, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Cache.Stats(); st.Hits != 0 || st.Computes == 0 {
		t.Fatalf("cold windows sweep stats %v, want all computes", st)
	}

	for wi, w := range []int64{500, 1_500, 3_000} {
		fixed := windowScenario(t)
		fixed.NoC.MeasureWindows = nil
		fixed.NoC.MeasureCycles = w
		if err := fixed.Validate(); err != nil {
			t.Fatal(err)
		}
		fixed.Cache = rc.Scope()
		got, err := Run(fixed)
		if err != nil {
			t.Fatal(err)
		}
		if st := fixed.Cache.Stats(); st.Computes != 0 || st.Hits != uint64(len(got)) {
			t.Errorf("window %d: fixed-window rerun stats %v, want pure hits", w, st)
		}
		// The recalled fixed-window rows must equal the windows sweep's
		// rows for this window length (every len(windows)-th row).
		for i, r := range got {
			if want := forked[i*3+wi]; r != want {
				t.Errorf("window %d point %d: %+v != windows-sweep row %+v", w, i, r, want)
			}
		}
	}
}
