package scenario_test

import (
	"fmt"

	"repro/internal/scenario"
)

// Example loads a scenario file and runs its full sweep — the programmatic
// equivalent of `medea-scenarios examples/scenarios/smoke.json`. Results
// arrive in deterministic axis order regardless of how many workers
// executed the points.
func Example() {
	s, err := scenario.Load("../../examples/scenarios/smoke.json")
	if err != nil {
		panic(err)
	}
	results, err := scenario.Run(s)
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%s @ %.2f: delivered %d flits, %.1f-cycle mean latency\n",
			r.Pattern, r.Rate, r.Delivered, r.MeanLatency)
	}
	// Output:
	// uniform @ 0.10: delivered 1595 flits, 2.3-cycle mean latency
	// tornado @ 0.10: delivered 1586 flits, 2.0-cycle mean latency
}

// ExampleParse validates inline scenario JSON; typos and impossible
// configurations are rejected with actionable messages.
func ExampleParse() {
	_, err := scenario.Parse([]byte(`{
		"workload": "noc-synthetic",
		"noc": {"width": 5, "height": 3, "patterns": ["bit-reversal"], "rates": [0.1]}
	}`))
	fmt.Println(err)
	// Output:
	// "noc.patterns": noc: bit-reversal requires a power-of-two endpoint count; 5x3 torus = 15 is not
}
