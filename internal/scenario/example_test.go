package scenario_test

import (
	"fmt"
	"strings"

	"repro/internal/scenario"
)

// Example loads a scenario file and runs its full sweep — the programmatic
// equivalent of `medea-scenarios examples/scenarios/smoke.json`. Results
// arrive in deterministic axis order regardless of how many workers
// executed the points.
func Example() {
	s, err := scenario.Load("../../examples/scenarios/smoke.json")
	if err != nil {
		panic(err)
	}
	results, err := scenario.Run(s)
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%s @ %.2f: delivered %d flits, %.1f-cycle mean latency\n",
			r.Pattern, r.Rate, r.Delivered, r.MeanLatency)
	}
	// Output:
	// uniform @ 0.10: delivered 1595 flits, 2.3-cycle mean latency
	// tornado @ 0.10: delivered 1586 flits, 2.0-cycle mean latency
}

// ExampleParseWorkload shows the workload registry: every kind resolves
// by name (case-insensitive, "_" accepted for "-"), exactly like the
// network's router and topology axes.
func ExampleParseWorkload() {
	k, err := scenario.ParseWorkload("MatMul")
	if err != nil {
		panic(err)
	}
	fmt.Println(k, k.IsKernel())
	fmt.Println(strings.Join(scenario.WorkloadNames(), ", "))
	// Output:
	// matmul true
	// jacobi, matmul, syncbench, noc-synthetic, trace, service
}

// Example_matmul sweeps the matmul kernel over the variants axis — the
// paper's message-passing vs shared-memory comparison — from inline JSON.
// Kernel runs take no seed, so the cycle counts are exact and permanent.
func Example_matmul() {
	s, err := scenario.Parse([]byte(`{
		"name": "mm",
		"workload": "matmul",
		"kernel": {"n": 16, "cores": [4], "cache_kb": [8], "variants": ["hybrid-full", "pure-sm"]}
	}`))
	if err != nil {
		panic(err)
	}
	results, err := scenario.Run(s)
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%s %s on %d cores: %d cycles (%d moving B)\n",
			r.Workload, r.Variant, r.Cores, r.TotalCycles, r.TransferCycles)
	}
	// Output:
	// matmul hybrid-full on 4 cores: 108229 cycles (46594 moving B)
	// matmul pure-sm on 4 cores: 137784 cycles (71394 moving B)
}

// ExampleParse validates inline scenario JSON; typos and impossible
// configurations are rejected with actionable messages.
func ExampleParse() {
	_, err := scenario.Parse([]byte(`{
		"workload": "noc-synthetic",
		"noc": {"width": 5, "height": 3, "patterns": ["bit-reversal"], "rates": [0.1]}
	}`))
	fmt.Println(err)
	// Output:
	// "noc.patterns": noc: bit-reversal requires a power-of-two endpoint count; 5x3 torus = 15 is not
}
