package scenario

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/dse"
)

// TestFig8QuickGolden proves the declarative path is exact: running
// examples/scenarios/fig8-quick.json must reproduce the hand-coded
// Quick-fidelity Figure 8 sweep byte-for-byte (rendered through the same
// dse CSV writer).
func TestFig8QuickGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full Fig8 sweeps")
	}
	s, err := Load("../../examples/scenarios/fig8-quick.json")
	if err != nil {
		t.Fatal(err)
	}

	// The scenario file must stay in lockstep with dse.Fig8Options(Quick),
	// otherwise the "reproduces Fig8" claim silently decays.
	want := dse.Fig8Options(dse.Quick)
	if s.Jacobi.N != want.N {
		t.Errorf("fig8-quick.json n = %d, dse says %d", s.Jacobi.N, want.N)
	}
	if !reflect.DeepEqual(s.Jacobi.Cores, want.Cores) {
		t.Errorf("fig8-quick.json cores = %v, dse says %v", s.Jacobi.Cores, want.Cores)
	}
	if !reflect.DeepEqual(s.Jacobi.CacheKB, want.CachesKB) {
		t.Errorf("fig8-quick.json cache_kb = %v, dse says %v", s.Jacobi.CacheKB, want.CachesKB)
	}
	if len(want.Policies) != 1 || want.Policies[0] != cache.WriteBack ||
		!reflect.DeepEqual(s.Jacobi.Policies, []string{"write-back"}) {
		t.Errorf("fig8-quick.json policies = %v, dse says %v", s.Jacobi.Policies, want.Policies)
	}

	results, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	gotCSV := dse.PointsCSV(DSEPoints(results))

	pts, err := dse.Sweep(want)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := dse.PointsCSV(pts)

	if gotCSV != wantCSV {
		t.Errorf("scenario sweep diverges from dse.Fig8(Quick):\n--- scenario ---\n%s--- dse ---\n%s",
			gotCSV, wantCSV)
	}
	// The scenario's own CSV renderer must agree byte-for-byte too (same
	// columns, same verbs), so CLI output is directly comparable.
	if own := CSV(results); own != wantCSV {
		t.Errorf("scenario.CSV diverges from dse.PointsCSV:\n--- scenario ---\n%s--- dse ---\n%s",
			own, wantCSV)
	}
}
