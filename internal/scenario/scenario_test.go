package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Scenario {
	t.Helper()
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func parseErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Parse([]byte(src))
	if err == nil {
		t.Fatalf("Parse accepted invalid scenario:\n%s", src)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Errorf("error %q does not mention %q", err, wantSub)
	}
}

const validNoC = `{
	"name": "t",
	"workload": "noc-synthetic",
	"noc": {"width": 4, "height": 4, "patterns": ["uniform"], "rates": [0.1]}
}`

func TestParseValid(t *testing.T) {
	s := mustParse(t, validNoC)
	if s.Workload != WorkloadNoC.String() || s.NoC.Width != 4 {
		t.Errorf("bad decode: %+v", s)
	}
	if s.NumPoints() != 1 {
		t.Errorf("NumPoints = %d, want 1", s.NumPoints())
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"unknown field", `{"workload": "noc-synthetic", "nocc": {}}`, "nocc"},
		{"missing workload", `{"noc": {}}`, `missing "workload"`},
		{"bad workload", `{"workload": "fft"}`, "unknown workload"},
		{"noc without section", `{"workload": "noc-synthetic"}`, `needs a "noc" section`},
		{"jacobi without section", `{"workload": "jacobi"}`, `needs a "jacobi" section`},
		{"matmul without section", `{"workload": "matmul"}`, `needs a "kernel" section`},
		{"wrong section", `{"workload": "jacobi",
			"jacobi": {"n": 30, "cores": [2], "cache_kb": [16]},
			"noc": {"width": 4, "height": 4, "patterns": ["uniform"], "rates": [0.1]}}`,
			"no effect"},
		{"bad pattern", `{"workload": "noc-synthetic",
			"noc": {"width": 4, "height": 4, "patterns": ["zigzag"], "rates": [0.1]}}`,
			"unknown pattern"},
		{"bit pattern on non-pow2", `{"workload": "noc-synthetic",
			"noc": {"width": 5, "height": 3, "patterns": ["bit-reversal"], "rates": [0.1]}}`,
			"power-of-two"},
		{"duplicate pattern", `{"workload": "noc-synthetic",
			"noc": {"width": 4, "height": 4, "patterns": ["uniform", "uniform"], "rates": [0.1]}}`,
			"twice"},
		{"bad rate", `{"workload": "noc-synthetic",
			"noc": {"width": 4, "height": 4, "patterns": ["uniform"], "rates": [1.5]}}`,
			"outside (0, 1]"},
		{"hotspot out of range", `{"workload": "noc-synthetic",
			"noc": {"width": 4, "height": 4, "patterns": ["hotspot"], "rates": [0.1], "hotspot_node": 16}}`,
			"hotspot_node"},
		{"bad burst", `{"workload": "noc-synthetic",
			"noc": {"width": 4, "height": 4, "patterns": ["uniform"], "rates": [0.1],
			        "burst": {"mean_on": 0, "mean_off": 10}}}`,
			"burst"},
		{"seeds and replications", `{"workload": "noc-synthetic", "seeds": [1], "replications": 2,
			"noc": {"width": 4, "height": 4, "patterns": ["uniform"], "rates": [0.1]}}`,
			"not both"},
		{"jacobi with seeds", `{"workload": "jacobi", "seeds": [1, 2],
			"jacobi": {"n": 30, "cores": [2], "cache_kb": [16]}}`,
			"deterministic"},
		{"jacobi bad cores", `{"workload": "jacobi",
			"jacobi": {"n": 30, "cores": [99], "cache_kb": [16]}}`,
			"2..15"},
		{"jacobi bad variant", `{"workload": "jacobi",
			"jacobi": {"n": 30, "variant": "mpi", "cores": [2], "cache_kb": [16]}}`,
			"unknown variant"},
		{"jacobi bad policy", `{"workload": "jacobi",
			"jacobi": {"n": 30, "cores": [2], "cache_kb": [16], "policies": ["lru"]}}`,
			"unknown cache policy"},
		{"bad output", `{"workload": "noc-synthetic", "output": "xml",
			"noc": {"width": 4, "height": 4, "patterns": ["uniform"], "rates": [0.1]}}`,
			"output format"},
		{"workload and workloads", `{"workload": "jacobi", "workloads": ["matmul"],
			"kernel": {"n": 16, "cores": [2], "cache_kb": [8]}}`,
			"not both"},
		{"noc in workloads", `{"workloads": ["jacobi", "noc-synthetic"],
			"kernel": {"n": 16, "cores": [2], "cache_kb": [8]}}`,
			"kernel workloads"},
		{"duplicate workload", `{"workloads": ["matmul", "matmul"],
			"kernel": {"n": 16, "cores": [2], "cache_kb": [8]}}`,
			"twice"},
		{"kernel and jacobi sections", `{"workload": "jacobi",
			"kernel": {"n": 16, "cores": [2], "cache_kb": [8]},
			"jacobi": {"n": 16, "cores": [2], "cache_kb": [8]}}`,
			"not both"},
		{"jacobi alias without jacobi", `{"workload": "matmul",
			"jacobi": {"n": 16, "cores": [2], "cache_kb": [8]}}`,
			"alias"},
		{"variant and variants", `{"workload": "jacobi",
			"jacobi": {"n": 16, "variant": "pure-sm", "variants": ["hybrid-full"], "cores": [2], "cache_kb": [8]}}`,
			"not both"},
		{"duplicate variant", `{"workload": "jacobi",
			"jacobi": {"n": 16, "variants": ["pure-sm", "pure-sm"], "cores": [2], "cache_kb": [8]}}`,
			"twice"},
		{"bad variant in variants", `{"workload": "jacobi",
			"jacobi": {"n": 16, "variants": ["mpi"], "cores": [2], "cache_kb": [8]}}`,
			"unknown variant"},
		{"syncbench hybrid-sync", `{"workloads": ["syncbench"],
			"kernel": {"variants": ["hybrid-sync"], "cores": [2], "cache_kb": [8]}}`,
			"no hybrid-sync variant"},
		{"matmul n out of range", `{"workload": "matmul",
			"kernel": {"n": 80, "cores": [2], "cache_kb": [8]}}`,
			"2..64"},
		{"n for syncbench only", `{"workload": "syncbench",
			"kernel": {"n": 16, "cores": [2], "cache_kb": [8]}}`,
			"no effect"},
		{"rounds without syncbench", `{"workload": "matmul",
			"kernel": {"n": 16, "rounds": 5, "cores": [2], "cache_kb": [8]}}`,
			"syncbench"},
		{"warmup without jacobi", `{"workload": "matmul",
			"kernel": {"n": 16, "warmup": 1, "cores": [2], "cache_kb": [8]}}`,
			"jacobi"},
		{"matmul with seeds", `{"workload": "matmul", "seeds": [1],
			"kernel": {"n": 16, "cores": [2], "cache_kb": [8]}}`,
			"deterministic"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { parseErr(t, c.src, c.wantSub) })
	}
}

func TestSeedList(t *testing.T) {
	s := mustParse(t, validNoC)
	if got := s.seedList(); !reflect.DeepEqual(got, []int64{1}) {
		t.Errorf("default seeds = %v, want [1]", got)
	}
	s.Replications = 3
	s.BaseSeed = 10
	if got := s.seedList(); !reflect.DeepEqual(got, []int64{10, 11, 12}) {
		t.Errorf("replicated seeds = %v", got)
	}
	s.Seeds = []int64{5, 9}
	if got := s.seedList(); !reflect.DeepEqual(got, []int64{5, 9}) {
		t.Errorf("explicit seeds = %v", got)
	}
}

func TestRunNoCDeterministicAndOrdered(t *testing.T) {
	src := `{
		"name": "det",
		"workload": "noc-synthetic",
		"noc": {"width": 4, "height": 4,
		        "patterns": ["bit-complement", "shuffle", "bit-reversal", "tornado"],
		        "rates": [0.1, 0.3], "warmup_cycles": 200, "measure_cycles": 1500},
		"seeds": [3, 8]
	}`
	s := mustParse(t, src)
	if s.NumPoints() != 16 {
		t.Fatalf("NumPoints = %d, want 16", s.NumPoints())
	}
	r1, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Parallelism = 1 // different interleaving must not change anything
	r2, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("results differ between parallel and serial execution")
	}
	// Axis order: patterns outermost, then rates, then seeds.
	if r1[0].Pattern != "bit-complement" || r1[0].Rate != 0.1 || r1[0].Seed != 3 {
		t.Errorf("first point = %+v", r1[0])
	}
	if r1[1].Seed != 8 || r1[2].Rate != 0.3 || r1[4].Pattern != "shuffle" {
		t.Errorf("axis order broken: %+v %+v %+v", r1[1], r1[2], r1[4])
	}
	for _, r := range r1 {
		if r.Delivered <= 0 || r.Throughput <= 0 || r.MeanLatency <= 0 {
			t.Errorf("empty metrics in %+v", r)
		}
		if r.P99Latency < r.MeanLatency {
			t.Errorf("p99 %.1f below mean %.1f in %+v", r.P99Latency, r.MeanLatency, r)
		}
	}
}

func TestRunBurstyScenario(t *testing.T) {
	src := `{
		"name": "bursty",
		"workload": "noc-synthetic",
		"noc": {"width": 4, "height": 4, "patterns": ["uniform"], "rates": [0.4],
		        "burst": {"mean_on": 25, "mean_off": 75}, "measure_cycles": 4000}
	}`
	bursty, err := Run(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bursty, again) {
		t.Error("bursty scenario not deterministic per seed")
	}
	plain, err := Run(mustParse(t, strings.Replace(src,
		`"burst": {"mean_on": 25, "mean_off": 75}, `, "", 1)))
	if err != nil {
		t.Fatal(err)
	}
	if !bursty[0].Bursty || plain[0].Bursty {
		t.Error("Bursty flag not propagated")
	}
	ratio := bursty[0].Throughput / plain[0].Throughput
	if ratio < 0.15 || ratio > 0.40 {
		t.Errorf("bursty/plain throughput ratio %.3f, want ~0.25 (duty cycle)", ratio)
	}
}

func TestRenderFormats(t *testing.T) {
	s := mustParse(t, validNoC)
	results, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	table, err := Render(results, "")
	if err != nil || !strings.Contains(table, "pattern") || !strings.Contains(table, "uniform") {
		t.Errorf("table render: %v\n%s", err, table)
	}
	csv, err := Render(results, FormatCSV)
	if err != nil || !strings.HasPrefix(csv, "pattern,rate,seed,") {
		t.Errorf("csv render: %v\n%s", err, csv)
	}
	js, err := Render(results, FormatJSON)
	if err != nil || !strings.Contains(js, `"workload": "noc-synthetic"`) {
		t.Errorf("json render: %v\n%s", err, js)
	}
	if _, err := Render(results, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}
