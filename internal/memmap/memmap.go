// Package memmap defines the MEDEA global shared-memory layout: the single
// memory-mapped address space served by the MPMMU is divided into N private
// segments (one per core, cacheable without coherency concerns because only
// the owner touches them) and one shared segment (where software manages
// coherency explicitly with flush/invalidate and lock/unlock, as described
// in the paper's programming-model section).
package memmap

import "fmt"

// Segment classifies an address.
type Segment int

const (
	// Private is a per-core segment; cacheable with no coherency actions.
	Private Segment = iota
	// Shared is the single shared segment; software-managed coherency.
	Shared
	// Unmapped addresses are a programming error.
	Unmapped
)

// String implements fmt.Stringer.
func (s Segment) String() string {
	switch s {
	case Private:
		return "private"
	case Shared:
		return "shared"
	}
	return "unmapped"
}

// Map is the address-space layout. All segments live in the MPMMU's DDR.
type Map struct {
	NumCores    int    // number of compute cores (private segments)
	PrivateBase uint32 // base of core 0's private segment
	PrivateSize uint32 // bytes per private segment
	SharedBase  uint32 // base of the shared segment
	SharedSize  uint32 // bytes of shared segment
}

// DefaultMap returns the layout used by the reproduction: 1 MiB of private
// space per core starting at 16 MiB, and 1 MiB of shared space above the
// private segments.
func DefaultMap(numCores int) Map {
	const mib = 1 << 20
	m := Map{
		NumCores:    numCores,
		PrivateBase: 16 * mib,
		PrivateSize: mib,
	}
	m.SharedBase = m.PrivateBase + uint32(numCores)*m.PrivateSize
	m.SharedSize = mib
	return m
}

// Validate checks internal consistency.
func (m Map) Validate() error {
	if m.NumCores <= 0 {
		return fmt.Errorf("memmap: need at least one core, got %d", m.NumCores)
	}
	if m.PrivateSize == 0 || m.SharedSize == 0 {
		return fmt.Errorf("memmap: zero-sized segment")
	}
	privEnd := uint64(m.PrivateBase) + uint64(m.NumCores)*uint64(m.PrivateSize)
	if privEnd > 1<<32 {
		return fmt.Errorf("memmap: private segments overflow the 32-bit space")
	}
	if uint64(m.SharedBase) < privEnd {
		return fmt.Errorf("memmap: shared segment overlaps private segments")
	}
	if uint64(m.SharedBase)+uint64(m.SharedSize) > 1<<32 {
		return fmt.Errorf("memmap: shared segment overflows the 32-bit space")
	}
	return nil
}

// PrivateAddr returns the absolute address of offset off in core's private
// segment.
func (m Map) PrivateAddr(core int, off uint32) uint32 {
	if core < 0 || core >= m.NumCores {
		panic(fmt.Sprintf("memmap: core %d out of range", core))
	}
	if off >= m.PrivateSize {
		panic(fmt.Sprintf("memmap: private offset %#x out of range", off))
	}
	return m.PrivateBase + uint32(core)*m.PrivateSize + off
}

// SharedAddr returns the absolute address of offset off in the shared
// segment.
func (m Map) SharedAddr(off uint32) uint32 {
	if off >= m.SharedSize {
		panic(fmt.Sprintf("memmap: shared offset %#x out of range", off))
	}
	return m.SharedBase + off
}

// Classify returns the segment an address belongs to and, for private
// addresses, the owning core.
func (m Map) Classify(addr uint32) (Segment, int) {
	if addr >= m.PrivateBase {
		off := addr - m.PrivateBase
		core := int(off / m.PrivateSize)
		if core < m.NumCores {
			return Private, core
		}
	}
	if addr >= m.SharedBase && addr-m.SharedBase < m.SharedSize {
		return Shared, -1
	}
	return Unmapped, -1
}
