package memmap

import (
	"testing"
	"testing/quick"
)

func TestDefaultMapValid(t *testing.T) {
	for _, n := range []int{1, 2, 15} {
		m := DefaultMap(n)
		if err := m.Validate(); err != nil {
			t.Errorf("DefaultMap(%d): %v", n, err)
		}
	}
}

func TestValidateRejectsBad(t *testing.T) {
	cases := []Map{
		{NumCores: 0, PrivateBase: 0, PrivateSize: 1, SharedBase: 1, SharedSize: 1},
		{NumCores: 1, PrivateBase: 0, PrivateSize: 0, SharedBase: 1, SharedSize: 1},
		// Shared overlaps private:
		{NumCores: 2, PrivateBase: 0, PrivateSize: 0x1000, SharedBase: 0x1000, SharedSize: 0x1000},
		// Private segments overflow 32 bits:
		{NumCores: 16, PrivateBase: 0xF000_0000, PrivateSize: 0x1000_0000, SharedBase: 0, SharedSize: 1},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d should be invalid: %+v", i, m)
		}
	}
}

func TestAddressConstruction(t *testing.T) {
	m := DefaultMap(4)
	a0 := m.PrivateAddr(0, 0)
	if a0 != m.PrivateBase {
		t.Errorf("core 0 offset 0 = %#x", a0)
	}
	a3 := m.PrivateAddr(3, 0x10)
	if a3 != m.PrivateBase+3*m.PrivateSize+0x10 {
		t.Errorf("core 3 addr = %#x", a3)
	}
	s := m.SharedAddr(0x20)
	if s != m.SharedBase+0x20 {
		t.Errorf("shared addr = %#x", s)
	}
}

func TestClassify(t *testing.T) {
	m := DefaultMap(3)
	for core := 0; core < 3; core++ {
		seg, owner := m.Classify(m.PrivateAddr(core, 123))
		if seg != Private || owner != core {
			t.Errorf("core %d private classified as %v/%d", core, seg, owner)
		}
	}
	seg, _ := m.Classify(m.SharedAddr(0))
	if seg != Shared {
		t.Errorf("shared classified as %v", seg)
	}
	seg, _ = m.Classify(0x10)
	if seg != Unmapped {
		t.Errorf("low address classified as %v", seg)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := DefaultMap(2)
	for _, fn := range []func(){
		func() { m.PrivateAddr(2, 0) },
		func() { m.PrivateAddr(-1, 0) },
		func() { m.PrivateAddr(0, m.PrivateSize) },
		func() { m.SharedAddr(m.SharedSize) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range address should panic")
				}
			}()
			fn()
		}()
	}
}

// TestClassifyRoundTripQuick: every constructed private/shared address
// classifies back to its segment and owner.
func TestClassifyRoundTripQuick(t *testing.T) {
	m := DefaultMap(7)
	fn := func(core uint8, off uint32) bool {
		c := int(core) % m.NumCores
		po := off % m.PrivateSize
		seg, owner := m.Classify(m.PrivateAddr(c, po))
		if seg != Private || owner != c {
			return false
		}
		so := off % m.SharedSize
		seg, _ = m.Classify(m.SharedAddr(so))
		return seg == Shared
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSegmentString(t *testing.T) {
	if Private.String() != "private" || Shared.String() != "shared" || Unmapped.String() != "unmapped" {
		t.Error("segment strings wrong")
	}
}
