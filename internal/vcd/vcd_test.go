package vcd

import (
	"strings"
	"testing"
)

func TestHeaderAndChanges(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	clk := w.Declare("clk", 1)
	bus := w.Declare("bus", 8)
	if err := w.Start("medea"); err != nil {
		t.Fatal(err)
	}
	if err := w.Emit(0, clk, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Emit(0, bus, 0xA5); err != nil {
		t.Fatal(err)
	}
	if err := w.Emit(1, clk, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module medea $end",
		"$var wire 1",
		"$var wire 8",
		"$enddefinitions $end",
		"#0",
		"b10100101",
		"#1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDeduplication(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	s := w.Declare("x", 1)
	w.Start("m")
	w.Emit(0, s, 1)
	before := b.Len()
	w.Emit(1, s, 1) // same value: no output
	if b.Len() != before {
		t.Error("duplicate value emitted")
	}
	w.Emit(2, s, 0)
	if b.Len() == before {
		t.Error("changed value suppressed")
	}
}

func TestTimeMonotonic(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	s := w.Declare("x", 1)
	w.Start("m")
	w.Emit(5, s, 1)
	if err := w.Emit(3, s, 0); err == nil {
		t.Error("time going backwards should error")
	}
}

func TestEmitBeforeStart(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	s := w.Declare("x", 1)
	if err := w.Emit(0, s, 1); err == nil {
		t.Error("Emit before Start should error")
	}
}

func TestDeclareAfterStartPanics(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Start("m")
	defer func() {
		if recover() == nil {
			t.Error("Declare after Start should panic")
		}
	}()
	w.Declare("late", 1)
}

func TestIDsAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := idFor(i)
		if seen[id] {
			t.Fatalf("id %q repeated at %d", id, i)
		}
		seen[id] = true
	}
}
