// Package vcd writes minimal Value Change Dump (IEEE 1364) waveform files
// so NoC and node activity can be inspected in a standard waveform viewer
// (GTKWave etc.). Only the subset needed for debugging the simulator is
// implemented: scalar and vector wires, one timescale, value changes.
package vcd

import (
	"fmt"
	"io"
	"sort"
)

// Writer emits a VCD file. Declare all signals, call Start, then Emit
// values cycle by cycle; identical consecutive values are deduplicated.
type Writer struct {
	w       io.Writer
	signals []*Signal
	started bool
	curTime int64
	timeSet bool
	err     error
}

// Signal is one declared wire.
type Signal struct {
	name  string
	width int
	id    string
	last  uint64
	valid bool
}

// NewWriter creates a VCD writer targeting w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// Declare registers a signal with the given name and bit width (1..64)
// before Start is called.
func (v *Writer) Declare(name string, width int) *Signal {
	if v.started {
		panic("vcd: Declare after Start")
	}
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("vcd: width %d out of range", width))
	}
	s := &Signal{name: name, width: width, id: idFor(len(v.signals))}
	v.signals = append(v.signals, s)
	return s
}

// idFor produces the short printable identifier VCD uses for signals.
func idFor(n int) string {
	const alpha = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	id := ""
	for {
		id = string(alpha[n%len(alpha)]) + id
		n = n/len(alpha) - 1
		if n < 0 {
			return id
		}
	}
}

// Start writes the header. The timescale is 1 ns per simulator cycle.
func (v *Writer) Start(module string) error {
	if v.started {
		return fmt.Errorf("vcd: already started")
	}
	v.started = true
	v.printf("$timescale 1ns $end\n$scope module %s $end\n", module)
	sigs := append([]*Signal(nil), v.signals...)
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].name < sigs[j].name })
	for _, s := range sigs {
		v.printf("$var wire %d %s %s $end\n", s.width, s.id, s.name)
	}
	v.printf("$upscope $end\n$enddefinitions $end\n")
	return v.err
}

// Emit records a signal value at the given cycle. Values equal to the
// previous emission are suppressed.
func (v *Writer) Emit(cycle int64, s *Signal, value uint64) error {
	if !v.started {
		return fmt.Errorf("vcd: Emit before Start")
	}
	if s.valid && s.last == value {
		return v.err
	}
	if !v.timeSet || cycle != v.curTime {
		if v.timeSet && cycle < v.curTime {
			return fmt.Errorf("vcd: time went backwards (%d after %d)", cycle, v.curTime)
		}
		v.printf("#%d\n", cycle)
		v.curTime = cycle
		v.timeSet = true
	}
	s.last, s.valid = value, true
	if s.width == 1 {
		v.printf("%d%s\n", value&1, s.id)
		return v.err
	}
	v.printf("b%b %s\n", value, s.id)
	return v.err
}

// Close finalizes the stream (VCD needs no trailer; this flushes errors).
func (v *Writer) Close() error { return v.err }

func (v *Writer) printf(format string, args ...any) {
	if v.err != nil {
		return
	}
	_, v.err = fmt.Fprintf(v.w, format, args...)
}
