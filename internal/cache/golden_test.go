package cache

import (
	"encoding/binary"
	"testing"

	"repro/internal/sim"
)

// TestGoldenModel property-tests the cache against a flat memory model
// under a random stream of reads, writes, flushes and invalidates, for
// both policies. The combined system (cache + backing memory with
// write-back on eviction) must always return what the flat model returns.
func TestGoldenModel(t *testing.T) {
	for _, pol := range []Policy{WriteBack, WriteThrough} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			const memWords = 1 << 12 // 16 KiB footprint, 2 KiB cache: heavy conflicts
			golden := make([]uint32, memWords)
			backing := make([]uint32, memWords)
			c := mustNew(t, 2, pol)

			readLine := func(addr uint32) []byte {
				b := make([]byte, LineBytes)
				for i := 0; i < 4; i++ {
					binary.LittleEndian.PutUint32(b[4*i:], backing[addr/4+uint32(i)])
				}
				return b
			}
			writeLine := func(addr uint32, data []byte) {
				for i := 0; i < 4; i++ {
					backing[addr/4+uint32(i)] = binary.LittleEndian.Uint32(data[4*i:])
				}
			}
			ensure := func(addr uint32) {
				if !c.Probe(addr) {
					line := LineAddr(addr)
					if v := c.VictimFor(line); v.NeedsWriteback {
						writeLine(v.Addr, v.Data)
					}
					c.Fill(line, readLine(line))
				}
			}

			rng := sim.NewRNG(2024)
			for i := 0; i < 200000; i++ {
				addr := uint32(rng.Intn(memWords)) * 4
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // read
					ensure(addr)
					if got := c.ReadWord(addr); got != golden[addr/4] {
						t.Fatalf("op %d: read %#x = %#x, want %#x", i, addr, got, golden[addr/4])
					}
				case 4, 5, 6: // write
					v := uint32(rng.Uint64())
					ensure(addr)
					c.WriteWord(addr, v)
					if pol == WriteThrough {
						backing[addr/4] = v
					}
					golden[addr/4] = v
				case 7: // flush
					if data, dirty := c.FlushLine(addr); dirty {
						writeLine(LineAddr(addr), data)
					}
				case 8: // invalidate: only safe when the line is clean in
					// the golden sense (write-back dirty data would be
					// lost, which is the documented hazard of DII), so
					// flush first.
					if data, dirty := c.FlushLine(addr); dirty {
						writeLine(LineAddr(addr), data)
					}
					c.InvalidateLine(addr)
				case 9: // re-read after invalidate to check memory path
					if data, dirty := c.FlushLine(addr); dirty {
						writeLine(LineAddr(addr), data)
					}
					c.InvalidateLine(addr)
					ensure(addr)
					if got := c.ReadWord(addr); got != golden[addr/4] {
						t.Fatalf("op %d: post-DII read %#x = %#x, want %#x", i, addr, got, golden[addr/4])
					}
				}
			}

			// Drain: flush everything and compare backing to golden.
			for _, a := range c.DirtyLines() {
				if data, dirty := c.FlushLine(a); dirty {
					writeLine(a, data)
				}
			}
			for w := range golden {
				if golden[w] != backing[w] {
					t.Fatalf("word %d: backing %#x, golden %#x", w, backing[w], golden[w])
				}
			}
		})
	}
}
