package cache

import "testing"

func benchCache(b *testing.B) *Cache {
	b.Helper()
	c, err := New(KB(16, WriteBack))
	if err != nil {
		b.Fatal(err)
	}
	line := make([]byte, LineBytes)
	for i := range line {
		line[i] = byte(i)
	}
	for addr := uint32(0); addr < 1024; addr += LineBytes {
		c.Fill(addr, line)
	}
	return c
}

// BenchmarkCacheAccess measures the simulator's hottest loop: word reads
// and writes against resident lines. The read path must not allocate.
func BenchmarkCacheAccess(b *testing.B) {
	b.Run("ReadWord", func(b *testing.B) {
		c := benchCache(b)
		b.ReportAllocs()
		b.ResetTimer()
		var sink uint32
		for i := 0; i < b.N; i++ {
			sink += c.ReadWord(uint32(i%256) * 4)
		}
		_ = sink
	})
	b.Run("ReadUint", func(b *testing.B) {
		c := benchCache(b)
		b.ReportAllocs()
		b.ResetTimer()
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += c.ReadUint(uint32(i%128)*8, 8)
		}
		_ = sink
	})
	b.Run("WriteUint", func(b *testing.B) {
		c := benchCache(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.WriteUint(uint32(i%128)*8, 8, uint64(i))
		}
	})
}
