package cache

import (
	"encoding/binary"
	"testing"

	"repro/internal/sim"
)

func mustNewWays(t *testing.T, kb, ways int, p Policy) *Cache {
	t.Helper()
	c, err := New(Config{SizeBytes: kb << 10, Policy: p, Ways: ways})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestWaysValidation(t *testing.T) {
	for _, ways := range []int{3, -1, 256} {
		if _, err := New(Config{SizeBytes: 2048, Ways: ways}); err == nil {
			t.Errorf("ways=%d accepted", ways)
		}
	}
	c := mustNewWays(t, 2, 2, WriteBack)
	if c.Ways() != 2 {
		t.Errorf("Ways() = %d", c.Ways())
	}
	if d := mustNew(t, 2, WriteBack); d.Ways() != 1 {
		t.Error("default must be direct-mapped")
	}
}

func TestTwoWayHoldsConflictingLines(t *testing.T) {
	// Two addresses that conflict in a direct-mapped cache coexist in a
	// 2-way cache.
	dm := mustNew(t, 2, WriteBack)
	tw := mustNewWays(t, 2, 2, WriteBack)
	a := uint32(0x0000)
	b := a + 2048 // same direct-mapped index
	for _, c := range []*Cache{dm, tw} {
		c.Fill(a, line16(1))
		c.Fill(b, line16(2))
	}
	if dm.Probe(a) {
		t.Error("direct-mapped kept both conflicting lines")
	}
	if !tw.Probe(a) || !tw.Probe(b) {
		t.Error("2-way cache evicted a line it had room for")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := mustNewWays(t, 2, 2, WriteBack)
	// Three same-set addresses (set stride = numSets*LineBytes = 1 kB for
	// a 2 kB 2-way cache).
	a, b, d := uint32(0), uint32(1024), uint32(2048)
	c.Fill(a, line16(1))
	c.Fill(b, line16(2))
	c.ReadWord(a) // touch a: b becomes LRU
	c.Fill(d, line16(3))
	if !c.Probe(a) {
		t.Error("recently used line evicted")
	}
	if c.Probe(b) {
		t.Error("LRU line survived")
	}
	if !c.Probe(d) {
		t.Error("filled line absent")
	}
}

func TestVictimForAgreesWithFill(t *testing.T) {
	c := mustNewWays(t, 2, 4, WriteBack)
	// 2 kB, 4 ways: 128 lines / 4 = 32 sets, so same-set addresses are
	// numSets*LineBytes = 512 bytes apart.
	const setStride = 32 * LineBytes
	base := uint32(0)
	for w := uint32(0); w < 4; w++ {
		c.Fill(base+w*setStride, line16(byte(w)))
	}
	c.WriteWord(base, 0xDD) // dirty way holding 'base', also makes it MRU
	v := c.VictimFor(base + 4*setStride)
	if v.NeedsWriteback {
		t.Fatal("victim should be a clean LRU way, not the dirty MRU one")
	}
	c.Fill(base+4*setStride, line16(9))
	if !c.Probe(base) {
		t.Error("dirty MRU line was evicted despite clean LRU candidates")
	}
}

// TestGoldenModelAssociative replays the golden-model property test for
// 2- and 4-way configurations.
func TestGoldenModelAssociative(t *testing.T) {
	for _, ways := range []int{2, 4} {
		for _, pol := range []Policy{WriteBack, WriteThrough} {
			ways, pol := ways, pol
			t.Run(pol.String()+"-"+string(rune('0'+ways))+"w", func(t *testing.T) {
				const memWords = 1 << 11
				golden := make([]uint32, memWords)
				backing := make([]uint32, memWords)
				c := mustNewWays(t, 2, ways, pol)
				readLine := func(addr uint32) []byte {
					b := make([]byte, LineBytes)
					for i := 0; i < 4; i++ {
						binary.LittleEndian.PutUint32(b[4*i:], backing[addr/4+uint32(i)])
					}
					return b
				}
				writeLine := func(addr uint32, data []byte) {
					for i := 0; i < 4; i++ {
						backing[addr/4+uint32(i)] = binary.LittleEndian.Uint32(data[4*i:])
					}
				}
				ensure := func(addr uint32) {
					if !c.Probe(addr) {
						ln := LineAddr(addr)
						if v := c.VictimFor(ln); v.NeedsWriteback {
							writeLine(v.Addr, v.Data)
						}
						c.Fill(ln, readLine(ln))
					}
				}
				rng := sim.NewRNG(int64(ways * 77))
				for i := 0; i < 60000; i++ {
					addr := uint32(rng.Intn(memWords)) * 4
					if rng.Intn(2) == 0 {
						ensure(addr)
						if got := c.ReadWord(addr); got != golden[addr/4] {
							t.Fatalf("op %d: read %#x = %#x want %#x", i, addr, got, golden[addr/4])
						}
					} else {
						v := uint32(rng.Uint64())
						ensure(addr)
						c.WriteWord(addr, v)
						if pol == WriteThrough {
							backing[addr/4] = v
						}
						golden[addr/4] = v
					}
				}
				for _, a := range c.DirtyLines() {
					if data, dirty := c.FlushLine(a); dirty {
						writeLine(a, data)
					}
				}
				for w := range golden {
					if golden[w] != backing[w] {
						t.Fatalf("word %d: %#x != %#x", w, backing[w], golden[w])
					}
				}
			})
		}
	}
}
