// Package cache models the per-core L1 data cache: direct-mapped, 16-byte
// lines (the paper's Xtensa configuration), configurable capacity from 2 kB
// to 64 kB, and either write-back or write-through policy. The cache holds
// real data bytes; coherency for the shared segment is managed by software
// through the FlushLine and InvalidateLine operations (the Xtensa DII
// instruction), exactly as the paper's programming model prescribes.
package cache

import (
	"encoding/binary"
	"fmt"

	"repro/internal/stats"
)

// Policy selects the write policy.
type Policy int

const (
	// WriteBack allocates on write miss and writes dirty victims back on
	// eviction.
	WriteBack Policy = iota
	// WriteThrough sends every store to memory and never holds dirty
	// data; write misses do not allocate.
	WriteThrough
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == WriteBack {
		return "WB"
	}
	return "WT"
}

// LineBytes is the fixed cache-line size: 16 bytes = four 32-bit words,
// matching the paper's block transfers.
const LineBytes = 16

// Config sizes a cache.
type Config struct {
	SizeBytes int
	Policy    Policy
	// Ways is the set associativity with LRU replacement; 0 or 1 means
	// direct-mapped (the reproduction's default — the paper does not
	// state the Xtensa configuration's associativity, and all calibrated
	// experiments use direct-mapped). Higher associativity is provided
	// for architecture exploration (see BenchmarkAssociativity).
	Ways int
}

// KB is a convenience constructor for a direct-mapped Config with size in
// kilobytes.
func KB(kb int, p Policy) Config { return Config{SizeBytes: kb << 10, Policy: p} }

// Stats counts cache events.
type Stats struct {
	Hits        stats.Counter
	Misses      stats.Counter
	Evictions   stats.Counter // total victims replaced
	Writebacks  stats.Counter // dirty victims written back
	Flushes     stats.Counter
	Invalidates stats.Counter
}

// MissRate returns misses / (hits + misses), or 0 with no accesses.
func (s *Stats) MissRate() float64 {
	total := s.Hits.Value() + s.Misses.Value()
	if total == 0 {
		return 0
	}
	return float64(s.Misses.Value()) / float64(total)
}

type line struct {
	valid, dirty bool
	tag          uint32
	lastUse      uint64
	data         [LineBytes]byte
}

// Cache is a set-associative L1 cache with LRU replacement (direct-mapped
// in the default 1-way configuration).
type Cache struct {
	cfg      Config
	ways     int
	numSets  int
	numLines int
	tick     uint64
	lines    []line // [set*ways + way]

	Stats Stats
}

// New builds a cache. SizeBytes must be a positive multiple of LineBytes,
// the line count a power of two (all paper configurations are), and the
// way count a power-of-two divisor of the line count.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.SizeBytes%LineBytes != 0 {
		return nil, fmt.Errorf("cache: size %d not a positive multiple of %d", cfg.SizeBytes, LineBytes)
	}
	n := cfg.SizeBytes / LineBytes
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("cache: %d lines is not a power of two", n)
	}
	ways := cfg.Ways
	if ways == 0 {
		ways = 1
	}
	if ways < 0 || ways&(ways-1) != 0 || n%ways != 0 || n/ways < 1 {
		return nil, fmt.Errorf("cache: %d ways invalid for %d lines", ways, n)
	}
	return &Cache{cfg: cfg, ways: ways, numSets: n / ways, numLines: n, lines: make([]line, n)}, nil
}

// Ways returns the configured associativity.
func (c *Cache) Ways() int { return c.ways }

// Policy returns the configured write policy.
func (c *Cache) Policy() Policy { return c.cfg.Policy }

// SizeBytes returns the configured capacity.
func (c *Cache) SizeBytes() int { return c.cfg.SizeBytes }

// LineAddr returns the line-aligned base address containing addr.
func LineAddr(addr uint32) uint32 { return addr &^ (LineBytes - 1) }

func (c *Cache) set(addr uint32) int {
	return int(addr/LineBytes) & (c.numSets - 1)
}

func (c *Cache) tag(addr uint32) uint32 {
	return addr / LineBytes / uint32(c.numSets)
}

// find returns the resident line holding addr, or nil.
func (c *Cache) find(addr uint32) *line {
	set, tag := c.set(addr), c.tag(addr)
	for w := 0; w < c.ways; w++ {
		l := &c.lines[set*c.ways+w]
		if l.valid && l.tag == tag {
			return l
		}
	}
	return nil
}

// victimSlot returns the slot a fill of addr would use: an invalid way if
// one exists, else the least-recently-used way of the set.
func (c *Cache) victimSlot(addr uint32) *line {
	set := c.set(addr)
	var victim *line
	for w := 0; w < c.ways; w++ {
		l := &c.lines[set*c.ways+w]
		if !l.valid {
			return l
		}
		if victim == nil || l.lastUse < victim.lastUse {
			victim = l
		}
	}
	return victim
}

// Probe reports whether addr hits in the cache without updating stats.
func (c *Cache) Probe(addr uint32) bool {
	return c.find(addr) != nil
}

// Lookup reports a hit or miss for addr and updates statistics. It does not
// change cache contents.
func (c *Cache) Lookup(addr uint32) bool {
	if c.Probe(addr) {
		c.Stats.Hits.Inc()
		return true
	}
	c.Stats.Misses.Inc()
	return false
}

// Victim describes the line that a Fill of addr would replace.
type Victim struct {
	// NeedsWriteback is true when the victim is valid and dirty: its data
	// must be written back to memory before the fill.
	NeedsWriteback bool
	// Addr is the victim line's base address (valid only when the slot
	// holds a valid line).
	Addr uint32
	// Data is a copy of the victim's bytes (valid with NeedsWriteback).
	Data []byte
}

// VictimFor returns information about the line a Fill of addr would evict.
// It allocates the victim data; hot paths should use VictimInto.
func (c *Cache) VictimFor(addr uint32) Victim {
	l := c.victimSlot(addr)
	if !l.valid {
		return Victim{}
	}
	base := (l.tag*uint32(c.numSets) + uint32(c.set(addr))) * LineBytes
	v := Victim{Addr: base}
	if l.dirty {
		v.NeedsWriteback = true
		v.Data = append([]byte(nil), l.data[:]...)
	}
	return v
}

// VictimInto is the allocation-free form of VictimFor for callers that only
// care about the write-back: when the line a Fill of addr would replace is
// valid and dirty, its bytes are copied into dst (len(dst) >= LineBytes)
// and its base address returned with needsWriteback true.
func (c *Cache) VictimInto(addr uint32, dst []byte) (victimAddr uint32, needsWriteback bool) {
	l := c.victimSlot(addr)
	if !l.valid || !l.dirty {
		return 0, false
	}
	base := (l.tag*uint32(c.numSets) + uint32(c.set(addr))) * LineBytes
	copy(dst[:LineBytes], l.data[:])
	return base, true
}

// Fill installs the 16-byte line containing addr into the slot VictimFor
// reported. data must be the full line at LineAddr(addr). The caller is
// responsible for writing back the victim first (see VictimFor).
func (c *Cache) Fill(addr uint32, data []byte) {
	if len(data) != LineBytes {
		panic(fmt.Sprintf("cache: fill with %d bytes", len(data)))
	}
	l := c.victimSlot(addr)
	if l.valid {
		c.Stats.Evictions.Inc()
		if l.dirty {
			c.Stats.Writebacks.Inc()
		}
	}
	l.valid = true
	l.dirty = false
	l.tag = c.tag(addr)
	c.tick++
	l.lastUse = c.tick
	copy(l.data[:], data)
}

// mustLine returns the hitting line for addr (touching its LRU state) or
// panics: callers must have established a hit first.
func (c *Cache) mustLine(addr uint32) *line {
	l := c.find(addr)
	if l == nil {
		panic(fmt.Sprintf("cache: access to non-resident address %#x", addr))
	}
	c.tick++
	l.lastUse = c.tick
	return l
}

// ReadInto copies len(dst) bytes at addr out of a resident line into dst
// without allocating. addr..addr+len(dst) must stay inside one line. It is
// the hot-path form of Read.
func (c *Cache) ReadInto(addr uint32, dst []byte) {
	checkSpan(addr, len(dst))
	l := c.mustLine(addr)
	off := addr & (LineBytes - 1)
	copy(dst, l.data[off:int(off)+len(dst)])
}

// Read copies n bytes at addr out of a resident line. addr..addr+n must
// stay inside one line. It allocates the result; hot paths should use
// ReadInto or ReadUint instead.
func (c *Cache) Read(addr uint32, n int) []byte {
	out := make([]byte, n)
	c.ReadInto(addr, out)
	return out
}

// Write stores bytes into a resident line. For WriteBack the line is marked
// dirty; for WriteThrough the caller must also send the store to memory.
func (c *Cache) Write(addr uint32, b []byte) {
	checkSpan(addr, len(b))
	l := c.mustLine(addr)
	off := addr & (LineBytes - 1)
	copy(l.data[off:int(off)+len(b)], b)
	if c.cfg.Policy == WriteBack {
		l.dirty = true
	}
}

// ReadWord reads a resident 32-bit word without allocating.
func (c *Cache) ReadWord(addr uint32) uint32 {
	return uint32(c.ReadUint(addr, 4))
}

// ReadUint reads a resident 4- or 8-byte value without allocating; it is
// the simulator's hot path.
func (c *Cache) ReadUint(addr uint32, size int) uint64 {
	checkSpan(addr, size)
	l := c.mustLine(addr)
	off := addr & (LineBytes - 1)
	if size == 8 {
		return binary.LittleEndian.Uint64(l.data[off:])
	}
	return uint64(binary.LittleEndian.Uint32(l.data[off:]))
}

// WriteUint writes a resident 4- or 8-byte value without allocating. For
// WriteBack the line is marked dirty; for WriteThrough the caller must
// also send the store to memory.
func (c *Cache) WriteUint(addr uint32, size int, v uint64) {
	checkSpan(addr, size)
	l := c.mustLine(addr)
	off := addr & (LineBytes - 1)
	if size == 8 {
		binary.LittleEndian.PutUint64(l.data[off:], v)
	} else {
		binary.LittleEndian.PutUint32(l.data[off:], uint32(v))
	}
	if c.cfg.Policy == WriteBack {
		l.dirty = true
	}
}

// WriteWord writes a resident 32-bit word.
func (c *Cache) WriteWord(addr uint32, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.Write(addr, b[:])
}

// FlushLineInto implements the software cache-flush of a line without
// allocating: if the line containing addr is resident and dirty, its bytes
// are copied into dst (len(dst) >= LineBytes) for write-back and the line
// is marked clean (it stays valid). ok reports whether a write-back is
// required.
func (c *Cache) FlushLineInto(addr uint32, dst []byte) (ok bool) {
	c.Stats.Flushes.Inc()
	l := c.find(addr)
	if l == nil || !l.dirty {
		return false
	}
	l.dirty = false
	copy(dst[:LineBytes], l.data[:])
	return true
}

// FlushLine is the allocating form of FlushLineInto, kept for call sites
// off the per-cycle path.
func (c *Cache) FlushLine(addr uint32) (data []byte, ok bool) {
	var buf [LineBytes]byte
	if !c.FlushLineInto(addr, buf[:]) {
		return nil, false
	}
	return append([]byte(nil), buf[:]...), true
}

// InvalidateLine implements the DII instruction: the line containing addr
// is dropped without write-back, forcing the next access to fetch from
// system memory. It reports whether a line was actually invalidated.
func (c *Cache) InvalidateLine(addr uint32) bool {
	c.Stats.Invalidates.Inc()
	l := c.find(addr)
	if l == nil {
		return false
	}
	l.valid = false
	l.dirty = false
	return true
}

// DirtyLines returns the base addresses of all dirty lines, in set order.
// Used by tests and end-of-run flushes.
func (c *Cache) DirtyLines() []uint32 {
	var out []uint32
	for i := range c.lines {
		l := &c.lines[i]
		if l.valid && l.dirty {
			set := uint32(i / c.ways)
			out = append(out, (l.tag*uint32(c.numSets)+set)*LineBytes)
		}
	}
	return out
}

// LineData returns a copy of the resident line containing addr.
func (c *Cache) LineData(addr uint32) []byte {
	l := c.mustLine(addr)
	return append([]byte(nil), l.data[:]...)
}

func checkSpan(addr uint32, n int) {
	if n <= 0 || int(addr&(LineBytes-1))+n > LineBytes {
		panic(fmt.Sprintf("cache: access at %#x size %d crosses a line", addr, n))
	}
}
