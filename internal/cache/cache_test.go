package cache

import (
	"bytes"
	"testing"
)

func mustNew(t *testing.T, kb int, p Policy) *Cache {
	t.Helper()
	c, err := New(KB(kb, p))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func line16(seed byte) []byte {
	b := make([]byte, LineBytes)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{SizeBytes: 0}); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := New(Config{SizeBytes: 24}); err == nil {
		t.Error("non-multiple of line size should fail")
	}
	if _, err := New(Config{SizeBytes: 48}); err == nil {
		t.Error("non-power-of-two line count should fail")
	}
	c := mustNew(t, 2, WriteBack)
	if c.SizeBytes() != 2048 || c.Policy() != WriteBack {
		t.Error("config accessors wrong")
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0x1237) != 0x1230 {
		t.Errorf("LineAddr(0x1237) = %#x", LineAddr(0x1237))
	}
}

func TestFillLookupRead(t *testing.T) {
	c := mustNew(t, 2, WriteBack)
	addr := uint32(0x1000)
	if c.Lookup(addr) {
		t.Fatal("empty cache must miss")
	}
	c.Fill(addr, line16(7))
	if !c.Lookup(addr) {
		t.Fatal("fill then lookup must hit")
	}
	got := c.Read(addr+4, 4)
	want := line16(7)[4:8]
	if !bytes.Equal(got, want) {
		t.Errorf("Read = %v, want %v", got, want)
	}
	if c.Stats.Hits.Value() != 1 || c.Stats.Misses.Value() != 1 {
		t.Errorf("stats hits=%d misses=%d", c.Stats.Hits.Value(), c.Stats.Misses.Value())
	}
}

func TestConflictEviction(t *testing.T) {
	c := mustNew(t, 2, WriteBack) // 128 lines
	a := uint32(0x0000)
	b := a + 2048 // same index, different tag
	c.Fill(a, line16(1))
	c.WriteWord(a, 0xAABBCCDD) // dirty
	v := c.VictimFor(b)
	if !v.NeedsWriteback || v.Addr != a {
		t.Fatalf("victim = %+v, want dirty line at %#x", v, a)
	}
	if got := v.Data[0:4]; binaryWord(got) != 0xAABBCCDD {
		t.Error("victim data must reflect the dirty write")
	}
	c.Fill(b, line16(9))
	if c.Probe(a) {
		t.Error("evicted line still resident")
	}
	if !c.Probe(b) {
		t.Error("new line not resident")
	}
	if c.Stats.Evictions.Value() != 1 || c.Stats.Writebacks.Value() != 1 {
		t.Error("eviction stats not recorded")
	}
}

func binaryWord(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func TestWritePolicyDirtyBit(t *testing.T) {
	wb := mustNew(t, 2, WriteBack)
	wt := mustNew(t, 2, WriteThrough)
	addr := uint32(0x40)
	for _, c := range []*Cache{wb, wt} {
		c.Fill(addr, line16(0))
		c.WriteWord(addr, 1)
	}
	if _, dirty := wb.FlushLine(addr); !dirty {
		t.Error("write-back store must mark the line dirty")
	}
	if _, dirty := wt.FlushLine(addr); dirty {
		t.Error("write-through store must not mark the line dirty")
	}
}

func TestFlushLine(t *testing.T) {
	c := mustNew(t, 2, WriteBack)
	addr := uint32(0x80)
	c.Fill(addr, line16(3))
	c.WriteWord(addr+8, 0x11223344)
	data, dirty := c.FlushLine(addr)
	if !dirty {
		t.Fatal("flush of dirty line must return data")
	}
	if binaryWord(data[8:12]) != 0x11223344 {
		t.Error("flushed data wrong")
	}
	// Line stays resident but clean.
	if !c.Probe(addr) {
		t.Error("flush must keep the line resident")
	}
	if _, dirty := c.FlushLine(addr); dirty {
		t.Error("second flush must be clean")
	}
}

func TestInvalidateLine(t *testing.T) {
	c := mustNew(t, 2, WriteBack)
	addr := uint32(0xC0)
	c.Fill(addr, line16(5))
	if !c.InvalidateLine(addr) {
		t.Fatal("invalidate of resident line must report true")
	}
	if c.Probe(addr) {
		t.Error("invalidated line still resident")
	}
	if c.InvalidateLine(addr) {
		t.Error("invalidate of absent line must report false")
	}
}

func TestDirtyLines(t *testing.T) {
	c := mustNew(t, 2, WriteBack)
	addrs := []uint32{0x100, 0x200, 0x300}
	for _, a := range addrs {
		c.Fill(a, line16(byte(a)))
	}
	c.WriteWord(0x100, 1)
	c.WriteWord(0x300, 1)
	d := c.DirtyLines()
	if len(d) != 2 || d[0] != 0x100 || d[1] != 0x300 {
		t.Errorf("DirtyLines = %#x", d)
	}
}

func TestCrossLinePanics(t *testing.T) {
	c := mustNew(t, 2, WriteBack)
	c.Fill(0, line16(0))
	defer func() {
		if recover() == nil {
			t.Error("cross-line access should panic")
		}
	}()
	c.Read(12, 8) // bytes 12..20 cross the 16-byte boundary
}

func TestNonResidentAccessPanics(t *testing.T) {
	c := mustNew(t, 2, WriteBack)
	defer func() {
		if recover() == nil {
			t.Error("access to non-resident line should panic")
		}
	}()
	c.ReadWord(0x500)
}

func TestMissRate(t *testing.T) {
	c := mustNew(t, 2, WriteBack)
	if c.Stats.MissRate() != 0 {
		t.Error("no accesses: miss rate 0")
	}
	c.Lookup(0) // miss
	c.Fill(0, line16(0))
	c.Lookup(0) // hit
	c.Lookup(4) // hit
	if mr := c.Stats.MissRate(); mr < 0.32 || mr > 0.34 {
		t.Errorf("miss rate %v, want 1/3", mr)
	}
}

func TestWordRoundTrip(t *testing.T) {
	c := mustNew(t, 2, WriteBack)
	c.Fill(0x40, make([]byte, LineBytes))
	c.WriteWord(0x44, 0xCAFEBABE)
	if got := c.ReadWord(0x44); got != 0xCAFEBABE {
		t.Errorf("got %#x", got)
	}
	if got := c.ReadWord(0x40); got != 0 {
		t.Errorf("neighbouring word clobbered: %#x", got)
	}
}

func TestLineData(t *testing.T) {
	c := mustNew(t, 2, WriteBack)
	want := line16(0x20)
	c.Fill(0x40, want)
	if !bytes.Equal(c.LineData(0x48), want) {
		t.Error("LineData mismatch")
	}
}

func TestPolicyString(t *testing.T) {
	if WriteBack.String() != "WB" || WriteThrough.String() != "WT" {
		t.Error("policy strings wrong")
	}
}
