package empi

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/pe"
)

func buildSys(t *testing.T, n int) *core.System {
	t.Helper()
	sys, err := core.Build(core.DefaultConfig(n, 8, cache.WriteBack))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func runAll(t *testing.T, sys *core.System, progs []pe.Program) {
	t.Helper()
	sys.Launch(progs)
	if err := sys.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if n := sys.IntegrityErrors(); n != 0 {
		t.Fatalf("%d integrity errors", n)
	}
}

func TestSendRecvSmall(t *testing.T) {
	sys := buildSys(t, 2)
	nodes := sys.RankNodes()
	var got []uint32
	runAll(t, sys, []pe.Program{
		func(env *pe.Env) {
			c, _ := New(env, nodes)
			c.Send(1, []uint32{1, 2, 3})
		},
		func(env *pe.Env) {
			c, _ := New(env, nodes)
			got = c.Recv(0, 3)
		},
	})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSendRecvLargeFragmented(t *testing.T) {
	sys := buildSys(t, 2)
	nodes := sys.RankNodes()
	const n = 100 // 100 words: 6 full fragments + 1 partial
	msg := make([]uint32, n)
	for i := range msg {
		msg[i] = uint32(i * 3)
	}
	var got []uint32
	runAll(t, sys, []pe.Program{
		func(env *pe.Env) {
			c, _ := New(env, nodes)
			c.Send(1, msg)
		},
		func(env *pe.Env) {
			c, _ := New(env, nodes)
			got = c.Recv(0, n)
		},
	})
	if len(got) != n {
		t.Fatalf("got %d words", len(got))
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatalf("word %d = %d, want %d", i, got[i], msg[i])
		}
	}
}

func TestDoublesRoundTrip(t *testing.T) {
	sys := buildSys(t, 2)
	nodes := sys.RankNodes()
	vals := []float64{3.14, -2.5, 1e-300, 0, 6.02e23}
	var got []float64
	runAll(t, sys, []pe.Program{
		func(env *pe.Env) {
			c, _ := New(env, nodes)
			c.SendDoubles(1, vals)
		},
		func(env *pe.Env) {
			c, _ := New(env, nodes)
			got = c.RecvDoubles(0, len(vals))
		},
	})
	for i, v := range vals {
		if got[i] != v {
			t.Fatalf("double %d = %v, want %v", i, got[i], v)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const P = 5
	sys := buildSys(t, P)
	nodes := sys.RankNodes()
	before := make([]int64, P)
	after := make([]int64, P)
	progs := make([]pe.Program, P)
	for i := range progs {
		rank := i
		progs[i] = func(env *pe.Env) {
			c, _ := New(env, nodes)
			// Stagger arrivals: rank r computes r*500 cycles first.
			env.Compute(int64(rank)*500 + 1)
			before[rank] = env.Now()
			c.Barrier()
			after[rank] = env.Now()
		}
	}
	runAll(t, sys, progs)
	// Every rank must leave the barrier after every rank entered it.
	var maxBefore int64
	for _, b := range before {
		if b > maxBefore {
			maxBefore = b
		}
	}
	for r, a := range after {
		if a < maxBefore {
			t.Errorf("rank %d left the barrier at %d before the last arrival at %d", r, a, maxBefore)
		}
	}
}

func TestRepeatedBarriers(t *testing.T) {
	const P, iters = 4, 20
	sys := buildSys(t, P)
	nodes := sys.RankNodes()
	counts := make([][]int64, P)
	progs := make([]pe.Program, P)
	for i := range progs {
		rank := i
		counts[rank] = make([]int64, 0, iters)
		progs[i] = func(env *pe.Env) {
			c, _ := New(env, nodes)
			for k := 0; k < iters; k++ {
				env.Compute(int64((rank*7+k*13)%97) + 1) // deterministic skew
				c.Barrier()
				counts[rank] = append(counts[rank], env.Now())
			}
		}
	}
	runAll(t, sys, progs)
	// Barrier episodes must not interleave: everyone's k-th exit precedes
	// everyone's (k+1)-th exit... which is implied by exit[k] ordering per
	// rank; the cross-rank check: max exit of episode k <= min exit of
	// episode k+1 + (release flight time). We check the strong invariant
	// that no rank's episode k+1 exit precedes another rank's episode k
	// exit by more than the release broadcast skew.
	for k := 0; k < iters-1; k++ {
		var maxK int64
		for r := 0; r < P; r++ {
			if counts[r][k] > maxK {
				maxK = counts[r][k]
			}
		}
		for r := 0; r < P; r++ {
			if counts[r][k+1] < maxK-int64(P*20) {
				t.Fatalf("episode %d of rank %d at %d overlaps episode %d ending %d",
					k+1, r, counts[r][k+1], k, maxK)
			}
		}
	}
}

func TestSendTokenRecvToken(t *testing.T) {
	sys := buildSys(t, 2)
	nodes := sys.RankNodes()
	var tok uint32
	runAll(t, sys, []pe.Program{
		func(env *pe.Env) {
			c, _ := New(env, nodes)
			c.SendToken(1, 0x51C)
		},
		func(env *pe.Env) {
			c, _ := New(env, nodes)
			tok = c.RecvToken(0)
		},
	})
	if tok != 0x51C {
		t.Fatalf("token %#x", tok)
	}
}

func TestCommValidation(t *testing.T) {
	sys := buildSys(t, 2)
	nodes := sys.RankNodes()
	var err1, err2 error
	runAll(t, sys, []pe.Program{
		func(env *pe.Env) {
			_, err1 = New(env, nil) // rank outside empty communicator
			_, err2 = New(env, []int{99, 98})
		},
		func(env *pe.Env) {},
	})
	if err1 == nil {
		t.Error("empty communicator accepted")
	}
	if err2 == nil {
		t.Error("wrong node mapping accepted")
	}
	_ = nodes
}

func TestManyToOneTraffic(t *testing.T) {
	// All ranks send distinct payloads to rank 0, which receives from each
	// specific source. Exercises the any-order arrival matching.
	const P = 6
	sys := buildSys(t, P)
	nodes := sys.RankNodes()
	got := make([]uint32, P)
	progs := make([]pe.Program, P)
	progs[0] = func(env *pe.Env) {
		c, _ := New(env, nodes)
		for src := P - 1; src >= 1; src-- { // receive in reverse send order
			got[src] = c.Recv(src, 1)[0]
		}
	}
	for i := 1; i < P; i++ {
		rank := i
		progs[i] = func(env *pe.Env) {
			c, _ := New(env, nodes)
			c.Send(0, []uint32{uint32(rank * 11)})
		}
	}
	runAll(t, sys, progs)
	for r := 1; r < P; r++ {
		if got[r] != uint32(r*11) {
			t.Errorf("from rank %d got %d", r, got[r])
		}
	}
}
