// Package empi implements the paper's embedded-MPI subset: MPI_send,
// MPI_receive and MPI_barrier layered directly on the TIE message-passing
// port, so cores synchronize and exchange data without touching the global
// shared memory.
//
// Data messages travel as Data-class logical packets of up to 16 words;
// longer messages are fragmented and reassembled in order (the NoC's
// double-buffered receive interface preserves per-source packet order).
// Synchronization uses Req-class single-flit token packets; Barrier is a
// linear gather at rank 0 followed by a broadcast release.
package empi

import (
	"fmt"
	"math"

	"repro/internal/flit"
	"repro/internal/pe"
	"repro/internal/tie"
)

// Comm is one core's view of the communicator spanning all compute cores.
type Comm struct {
	env    *pe.Env
	nodeOf []int // rank -> NoC node id
	rank   int
}

// New creates the communicator for the calling core. nodeOf maps every
// rank to its NoC node id and must be identical on all cores.
func New(env *pe.Env, nodeOf []int) (*Comm, error) {
	rank := env.Rank()
	if rank < 0 || rank >= len(nodeOf) {
		return nil, fmt.Errorf("empi: rank %d outside communicator of size %d", rank, len(nodeOf))
	}
	if nodeOf[rank] != env.NodeID() {
		return nil, fmt.Errorf("empi: rank %d maps to node %d but is running on node %d",
			rank, nodeOf[rank], env.NodeID())
	}
	return &Comm{env: env, nodeOf: append([]int(nil), nodeOf...), rank: rank}, nil
}

// Rank returns the calling core's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.nodeOf) }

// Send transmits words to dst (MPI_send). The message is fragmented into
// logical packets of at most 16 words.
func (c *Comm) Send(dst int, words []uint32) {
	node := c.nodeOf[dst]
	for len(words) > 0 {
		n := len(words)
		if n > flit.MaxLogicalPacket {
			n = flit.MaxLogicalPacket
		}
		c.env.Send(node, tie.Data, words[:n])
		words = words[n:]
	}
}

// Recv receives exactly n words from src (MPI_receive), blocking until the
// full message has arrived.
func (c *Comm) Recv(src int, n int) []uint32 {
	node := c.nodeOf[src]
	out := make([]uint32, 0, n)
	for len(out) < n {
		remaining := n - len(out)
		want := remaining
		if want > flit.MaxLogicalPacket {
			want = flit.MaxLogicalPacket
		}
		pkt := c.env.Recv(node, tie.Data)
		if len(pkt.Words) < want {
			panic(fmt.Sprintf("empi: fragment of %d words, expected at least %d", len(pkt.Words), want))
		}
		out = append(out, pkt.Words[:want]...)
	}
	return out
}

// SendDoubles transmits float64 values (two words each, low word first).
func (c *Comm) SendDoubles(dst int, vals []float64) {
	words := make([]uint32, 0, 2*len(vals))
	for _, v := range vals {
		b := math.Float64bits(v)
		words = append(words, uint32(b), uint32(b>>32))
	}
	c.Send(dst, words)
}

// RecvDoubles receives n float64 values from src.
func (c *Comm) RecvDoubles(src int, n int) []float64 {
	words := c.Recv(src, 2*n)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(uint64(words[2*i]) | uint64(words[2*i+1])<<32)
	}
	return out
}

// SendToken sends a single-flit Req-class synchronization token to dst.
func (c *Comm) SendToken(dst int, token uint32) {
	c.env.Send(c.nodeOf[dst], tie.Req, []uint32{token})
}

// RecvToken receives a synchronization token from src.
func (c *Comm) RecvToken(src int) uint32 {
	pkt := c.env.Recv(c.nodeOf[src], tie.Req)
	return pkt.Words[0]
}

// Barrier synchronizes all ranks (MPI_barrier): non-root ranks send a
// token to rank 0 and wait for the release token; rank 0 gathers Size()-1
// tokens and broadcasts the release. All traffic is Req-class and never
// touches shared memory.
func (c *Comm) Barrier() {
	const barrierToken = 0xBA77
	if c.rank == 0 {
		for i := 1; i < c.Size(); i++ {
			c.env.RecvAny(tie.Req)
		}
		for r := 1; r < c.Size(); r++ {
			c.SendToken(r, barrierToken)
		}
		return
	}
	c.SendToken(0, barrierToken)
	c.RecvToken(0)
}
