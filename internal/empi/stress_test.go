package empi

import (
	"fmt"
	"testing"

	"repro/internal/pe"
	"repro/internal/sim"
)

// TestRandomizedAllToAll is the message-layer chaos test: every rank sends
// a deterministic-random schedule of messages (random sizes, random
// ordering) to every other rank and verifies every word. It exercises
// fragmentation, reassembly, interleaving from multiple sources and the
// packet-index ring under irregular traffic.
func TestRandomizedAllToAll(t *testing.T) {
	const P = 6
	const msgsPerPair = 8
	sys := buildSys(t, P)
	nodes := sys.RankNodes()

	// Deterministic per-pair message sizes.
	sizeOf := func(src, dst, k int) int {
		r := sim.NewRNG(int64(src*1000 + dst*100 + k))
		return 1 + r.Intn(40)
	}
	wordOf := func(src, dst, k, i int) uint32 {
		return uint32(src<<24 | dst<<16 | k<<8 | i)
	}

	errs := make(chan error, P*P*msgsPerPair)
	progs := make([]pe.Program, P)
	for i := range progs {
		rank := i
		progs[i] = func(env *pe.Env) {
			c, err := New(env, nodes)
			if err != nil {
				panic(err)
			}
			// Phase 1: everyone sends everything (fire-and-forget).
			for dst := 0; dst < P; dst++ {
				if dst == rank {
					continue
				}
				for k := 0; k < msgsPerPair; k++ {
					n := sizeOf(rank, dst, k)
					words := make([]uint32, n)
					for w := range words {
						words[w] = wordOf(rank, dst, k, w)
					}
					c.Send(dst, words)
				}
			}
			// Phase 2: receive and verify, sources in a rank-dependent
			// order so receive order differs from send order.
			for off := 1; off < P; off++ {
				src := (rank + off) % P
				for k := 0; k < msgsPerPair; k++ {
					n := sizeOf(src, rank, k)
					got := c.Recv(src, n)
					for w := range got {
						if got[w] != wordOf(src, rank, k, w) {
							errs <- fmt.Errorf("rank %d msg %d from %d word %d: got %#x want %#x",
								rank, k, src, w, got[w], wordOf(src, rank, k, w))
							return
						}
					}
				}
			}
			c.Barrier()
		}
	}
	runAll(t, sys, progs)
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
