package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value should be 0")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("got %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Error("reset failed")
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) should panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestRunning(t *testing.T) {
	var r Running
	if r.Mean() != 0 {
		t.Error("empty mean should be 0")
	}
	for _, v := range []float64{4, 2, 6} {
		r.Observe(v)
	}
	if r.Count() != 3 || r.Sum() != 12 || r.Mean() != 4 || r.Min() != 2 || r.Max() != 6 {
		t.Errorf("unexpected aggregates: %v", r.String())
	}
}

// TestRunningQuick checks that Running matches a naive computation for
// random inputs.
func TestRunningQuick(t *testing.T) {
	fn := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = float64(i)
			}
		}
		var r Running
		min, max, sum := math.Inf(1), math.Inf(-1), 0.0
		for _, v := range vals {
			r.Observe(v)
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if len(vals) == 0 {
			return r.Count() == 0
		}
		return r.Min() == min && r.Max() == max && r.Sum() == sum
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 10) // buckets [0,10) .. [90,100)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 10 {
			t.Errorf("bucket %d: %d, want 10", i, h.Bucket(i))
		}
	}
	h.Observe(1e9)
	if h.Overflow() != 1 {
		t.Errorf("overflow %d, want 1", h.Overflow())
	}
	p50 := h.Quantile(0.5)
	if p50 < 40 || p50 > 60 {
		t.Errorf("p50 = %v, want ~50", p50)
	}
	if h.String() == "" {
		t.Error("empty String()")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(4, 1)
	h.Observe(-5)
	if h.Bucket(0) != 1 {
		t.Error("negative observations should land in bucket 0")
	}
}

func TestHistogramBadConstruction(t *testing.T) {
	for _, c := range []struct {
		n int
		w float64
	}{{0, 1}, {1, 0}, {-1, 1}} {
		func() {
			defer func() { _ = recover() }()
			NewHistogram(c.n, c.w)
			t.Errorf("NewHistogram(%d, %v) should panic", c.n, c.w)
		}()
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram(4, 1)
	if h.Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestQuantileRangePanics(t *testing.T) {
	h := NewHistogram(4, 1)
	defer func() {
		if recover() == nil {
			t.Error("Quantile(2) should panic")
		}
	}()
	h.Quantile(2)
}

func TestPercentile(t *testing.T) {
	s := []float64{5, 1, 3, 2, 4}
	if got := Percentile(s, 50); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := Percentile(s, 100); got != 5 {
		t.Errorf("p100 = %v, want 5", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	// Input must not be modified.
	if s[0] != 5 {
		t.Error("Percentile modified its input")
	}
}
