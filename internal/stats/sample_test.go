package stats

import "testing"

func TestSample(t *testing.T) {
	var s Sample
	if s.Count() != 0 || s.Mean() != 0 || s.Percentile(99) != 0 {
		t.Error("zero-value Sample should report zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Observe(v)
	}
	if s.Count() != 5 {
		t.Errorf("count = %d, want 5", s.Count())
	}
	if s.Mean() != 3 {
		t.Errorf("mean = %v, want 3", s.Mean())
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 = %v, want 5", got)
	}
	if got := s.Max(); got != 5 {
		t.Errorf("max = %v, want 5", got)
	}
	// Observing after a percentile query must re-sort.
	s.Observe(10)
	if got := s.Percentile(100); got != 10 {
		t.Errorf("p100 after new observation = %v, want 10", got)
	}
}

func TestSamplePercentileAgreesWithFreeFunction(t *testing.T) {
	var s Sample
	vals := []float64{9, 2, 7, 7, 1, 4, 8, 3}
	for _, v := range vals {
		s.Observe(v)
	}
	for _, p := range []float64{0, 10, 50, 90, 99, 100} {
		if got, want := s.Percentile(p), Percentile(vals, p); got != want {
			t.Errorf("p%.0f = %v, want %v", p, got, want)
		}
	}
}

func TestSamplePercentileRangePanics(t *testing.T) {
	var s Sample
	defer func() {
		if recover() == nil {
			t.Error("Percentile(101) should panic")
		}
	}()
	s.Percentile(101)
}
