package stats

import "testing"

func TestSample(t *testing.T) {
	var s Sample
	if s.Count() != 0 || s.Mean() != 0 || s.Percentile(99) != 0 {
		t.Error("zero-value Sample should report zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Observe(v)
	}
	if s.Count() != 5 {
		t.Errorf("count = %d, want 5", s.Count())
	}
	if s.Mean() != 3 {
		t.Errorf("mean = %v, want 3", s.Mean())
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 = %v, want 5", got)
	}
	if got := s.Max(); got != 5 {
		t.Errorf("max = %v, want 5", got)
	}
	// Observing after a percentile query must re-sort.
	s.Observe(10)
	if got := s.Percentile(100); got != 10 {
		t.Errorf("p100 after new observation = %v, want 10", got)
	}
}

func TestSamplePercentileAgreesWithFreeFunction(t *testing.T) {
	var s Sample
	vals := []float64{9, 2, 7, 7, 1, 4, 8, 3}
	for _, v := range vals {
		s.Observe(v)
	}
	for _, p := range []float64{0, 10, 50, 90, 99, 100} {
		if got, want := s.Percentile(p), Percentile(vals, p); got != want {
			t.Errorf("p%.0f = %v, want %v", p, got, want)
		}
	}
}

// TestSampleEdgeCases pins the nearest-rank boundary behaviour: empty
// samples report zeros, a single element is every percentile, all-equal
// values are flat, and p0/p100 clamp to the extreme ranks (p0 rounds the
// rank up to 1, i.e. the minimum; p100 is the maximum).
func TestSampleEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		p    float64
		want float64
	}{
		{"empty p0", nil, 0, 0},
		{"empty p50", nil, 50, 0},
		{"empty p100", nil, 100, 0},
		{"single p0", []float64{7}, 0, 7},
		{"single p50", []float64{7}, 50, 7},
		{"single p100", []float64{7}, 100, 7},
		{"all-equal p0", []float64{4, 4, 4, 4}, 0, 4},
		{"all-equal p99", []float64{4, 4, 4, 4}, 99, 4},
		{"p0 is the minimum", []float64{9, 2, 5}, 0, 2},
		{"p100 is the maximum", []float64{9, 2, 5}, 100, 9},
		// Nearest rank with n=4: rank = ceil(p/100*4), so p25 -> rank 1,
		// p25.01 -> rank 2, p75 -> rank 3, p75.01 -> rank 4.
		{"rank boundary p25", []float64{1, 2, 3, 4}, 25, 1},
		{"rank boundary p25+eps", []float64{1, 2, 3, 4}, 25.01, 2},
		{"rank boundary p75", []float64{1, 2, 3, 4}, 75, 3},
		{"rank boundary p75+eps", []float64{1, 2, 3, 4}, 75.01, 4},
		// Tiny p must still clamp the rank up to 1, not index vals[-1].
		{"tiny p clamps to rank 1", []float64{8, 6}, 0.0001, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s Sample
			for _, v := range tc.vals {
				s.Observe(v)
			}
			if got := s.Percentile(tc.p); got != tc.want {
				t.Errorf("Percentile(%v) over %v = %v, want %v", tc.p, tc.vals, got, tc.want)
			}
		})
	}
}

// TestSampleMeanEdgeCases covers the running-sum mean on the same corner
// inputs.
func TestSampleMeanEdgeCases(t *testing.T) {
	var empty Sample
	if got := empty.Mean(); got != 0 {
		t.Errorf("empty mean = %v", got)
	}
	var one Sample
	one.Observe(-3.5)
	if got := one.Mean(); got != -3.5 {
		t.Errorf("single-element mean = %v, want -3.5", got)
	}
	var eq Sample
	for i := 0; i < 5; i++ {
		eq.Observe(2.5)
	}
	if got := eq.Mean(); got != 2.5 {
		t.Errorf("all-equal mean = %v, want 2.5", got)
	}
	if got := eq.Max(); got != 2.5 {
		t.Errorf("all-equal max = %v, want 2.5", got)
	}
}

func TestSamplePercentileRangePanics(t *testing.T) {
	var s Sample
	defer func() {
		if recover() == nil {
			t.Error("Percentile(101) should panic")
		}
	}()
	s.Percentile(101)
}
